//! Quickstart: audit a Git-like service with LibSEAL and catch a
//! rollback attack.
//!
//! ```sh
//! cargo run --example quickstart
//! ```
//!
//! The example builds a LibSEAL instance with the Git service-specific
//! module, feeds it a few request/response pairs directly (no network,
//! no TLS pump — see `git_audit.rs` for the full socket path), then
//! shows the audit log detecting a rollback attack and surviving an
//! integrity check.

use std::sync::Arc;

use libseal::{GitModule, LibSeal, LibSealConfig};
use libseal_httpx::http::{Request, Response};
use libseal_sgxsim::cost::CostModel;
use libseal_tlsx::cert::CertificateAuthority;

fn main() {
    // 1. A CA issues the service's TLS identity (in production this
    //    private key is released only to an attested enclave — see
    //    examples/tamper_evidence.rs).
    let ca = CertificateAuthority::new("DemoCA", &[1u8; 32]);
    let (key, cert) = ca.issue_identity("git.example.com", &[2u8; 32]).unwrap();

    // 2. Build LibSEAL with the Git SSM. The cost model is disabled
    //    here; benchmarks enable it to simulate SGX overheads.
    let config = LibSealConfig::builder(cert, key)
        .ssm(Arc::new(GitModule))
        .cost_model(CostModel::free())
        .check_interval(0) // we check explicitly below
        .build();
    let libseal = LibSeal::new(config).expect("libseal init");
    println!(
        "LibSEAL enclave measurement: {}",
        hex(&libseal.measurement())
    );

    // 3. Feed audited request/response pairs into the log, as the TLS
    //    termination path would.
    let log = |req: Request, rsp: Response| {
        libseal
            .with_log(0, move |log| {
                let ssm = GitModule;
                libseal::ServiceModule::log_pair(&ssm, &req.to_bytes(), &rsp.to_bytes(), log)
                    .expect("log pair")
            })
            .expect("enclave call")
    };

    // The client pushes two commits to main...
    log(
        Request::new(
            "POST",
            "/repo/demo/git-receive-pack",
            b"0 c1 refs/heads/main\n".to_vec(),
        ),
        Response::new(200, b"ok\n".to_vec()),
    );
    log(
        Request::new(
            "POST",
            "/repo/demo/git-receive-pack",
            b"c1 c2 refs/heads/main\n".to_vec(),
        ),
        Response::new(200, b"ok\n".to_vec()),
    );
    println!("pushed c1, then c2 to refs/heads/main");

    // 4. The service advertises the STALE commit c1 — a rollback
    //    attack that Git's own hash chain cannot detect.
    log(
        Request::new(
            "GET",
            "/repo/demo/info/refs?service=git-upload-pack",
            Vec::new(),
        ),
        Response::new(200, b"c1 refs/heads/main\n".to_vec()),
    );
    println!("service advertised STALE commit c1 (rollback attack)");

    // 5. Run the invariants: the soundness query fires.
    let outcome = libseal.check_now(0).expect("check");
    println!("\ninvariant check results:");
    for report in &outcome.reports {
        println!(
            "  {:<20} violations: {}",
            report.invariant, report.violations
        );
    }
    assert_eq!(outcome.total_violations(), 1);
    println!(
        "in-band header would read: Libseal-Check-Result: {}",
        outcome.header_value()
    );

    // 6. The log itself is tamper-evident.
    libseal.verify_log(0).expect("log verifies");
    let (entries, bytes, _) = libseal.log_stats(0).expect("stats");
    println!("\naudit log: {entries} entries, ~{bytes} bytes, hash chain + signature valid");

    // 7. Everything above was measured: every wired crate reports into
    //    the process-wide telemetry registry (served as /metrics by the
    //    service layer — see crates/services::MetricsRouter).
    let reg = libseal.telemetry();
    let append_ns = reg.histogram("core_append_ns").snapshot();
    println!(
        "\ntelemetry: {} appends (p95 {}us), {} sealdb statements, {} enclave ecalls",
        append_ns.count(),
        append_ns.percentile(0.95) / 1000,
        reg.counter("sealdb_statements_total").get(),
        reg.counter("sgxsim_ecalls_total").get(),
    );
    println!("recent enclave-boundary spans:");
    for ev in reg.recent_spans().iter().rev().take(3) {
        println!(
            "  {} [{}] {}us (+{} boundary cycles)",
            ev.name,
            ev.side.as_str(),
            ev.duration.as_micros(),
            ev.boundary_cycles
        );
    }
    println!("\nquickstart OK: rollback attack detected with non-repudiable evidence");
}

fn hex(b: &[u8]) -> String {
    b.iter().map(|x| format!("{x:02x}")).collect()
}

//! Collaborative-document auditing: two clients edit a document
//! through an ownCloud-like service; the provider loses one edit and
//! serves a stale snapshot — LibSEAL's invariants expose both (§6.1,
//! §6.2).
//!
//! ```sh
//! cargo run --example owncloud_audit
//! ```

use std::sync::Arc;

use libseal::{LibSeal, LibSealConfig, OwnCloudModule};
use libseal_httpx::http::Request;
use libseal_services::apache::{ApacheConfig, ApacheServer};
use libseal_services::owncloud::{OwnCloudAttack, OwnCloudServer};
use libseal_services::{HttpsClient, TlsMode};
use libseal_sgxsim::cost::CostModel;
use libseal_tlsx::cert::CertificateAuthority;

fn main() {
    let ca = CertificateAuthority::new("DemoCA", &[1u8; 32]);
    let (key, cert) = ca.issue_identity("localhost", &[2u8; 32]).unwrap();
    let config = LibSealConfig::builder(cert, key)
        .ssm(Arc::new(OwnCloudModule))
        .cost_model(CostModel::free())
        .check_interval(0)
        .build();
    let libseal = LibSeal::new(config).expect("libseal");

    let oc = Arc::new(OwnCloudServer::new());
    let server = ApacheServer::start(
        ApacheConfig::new(
            TlsMode::LibSeal(libseal.clone()),
            Arc::new(Arc::clone(&oc)),
        )
        .workers(2),
    )
    .expect("server");
    println!("ownCloud documents (audited) on https://{}", server.addr());

    let client = HttpsClient::new(server.addr(), vec![ca.root_key()], "localhost");
    let post = |path: &str, body: String| {
        client
            .request(&Request::new("POST", path, body.into_bytes()))
            .expect("request")
    };

    // Bob joins the empty document; Alice types two edits.
    post("/owncloud/join", r#"{"doc":"paper","client":"bob"}"#.into());
    post(
        "/owncloud/sync",
        r#"{"doc":"paper","client":"alice","ops":[{"content":"Introduction. "},{"content":"Motivation. "}]}"#.into(),
    );

    // The provider LOSES Alice's first edit when relaying to Bob.
    oc.set_attack(OwnCloudAttack::DropUpdate {
        doc: "paper".into(),
        seq: 1,
    });
    let rsp = post(
        "/owncloud/sync",
        r#"{"doc":"paper","client":"bob","ops":[]}"#.into(),
    );
    println!("bob receives: {}", String::from_utf8_lossy(&rsp.body));

    let outcome = libseal.check_now(0).expect("check");
    println!("\ninvariant check after lost edit:");
    for report in &outcome.reports {
        println!(
            "  {:<32} violations: {}",
            report.invariant, report.violations
        );
    }
    assert!(outcome
        .reports
        .iter()
        .any(|r| r.invariant == "owncloud-prefix-completeness" && r.violations > 0));

    // Second attack: Alice saves snapshot v2; the provider serves the
    // stale v1 to a fresh client.
    oc.set_attack(OwnCloudAttack::None);
    post(
        "/owncloud/leave",
        r#"{"doc":"paper","client":"alice","snapshot":"v1: Introduction.","seq":2}"#.into(),
    );
    post(
        "/owncloud/leave",
        r#"{"doc":"paper","client":"alice","snapshot":"v2: Introduction. Motivation.","seq":2}"#
            .into(),
    );
    oc.set_attack(OwnCloudAttack::StaleSnapshot {
        doc: "paper".into(),
    });
    post(
        "/owncloud/join",
        r#"{"doc":"paper","client":"carol"}"#.into(),
    );

    let outcome = libseal.check_now(0).expect("check");
    println!("\ninvariant check after stale snapshot:");
    for report in &outcome.reports {
        println!(
            "  {:<32} violations: {}",
            report.invariant, report.violations
        );
    }
    assert!(outcome
        .reports
        .iter()
        .any(|r| r.invariant == "owncloud-snapshot-soundness" && r.violations > 0));

    libseal.verify_log(0).expect("log intact");
    println!("\nboth violations detected; audit log signed and verified");
    server.stop();
}

//! The dispute-resolution story (§2.3, §6.3): a provider who tampers
//! with, truncates or rolls back the audit log is caught, and a
//! provider who tries to bypass LibSEAL entirely cannot obtain the
//! service's TLS key.
//!
//! ```sh
//! cargo run --example tamper_evidence
//! ```

use std::sync::Arc;

use libseal::{CertProvisioner, GitModule, LibSeal, LibSealConfig};
use libseal_sealdb::Value;
use libseal_sgxsim::attest::{AttestationService, QuotingEnclave};
use libseal_sgxsim::cost::CostModel;
use libseal_tlsx::cert::CertificateAuthority;

fn new_instance(audited: bool) -> Arc<LibSeal> {
    let ca = CertificateAuthority::new("DemoCA", &[1u8; 32]);
    let (key, cert) = ca.issue_identity("svc.example.com", &[2u8; 32]).unwrap();
    let ssm: Option<Arc<dyn libseal::ServiceModule>> = if audited {
        Some(Arc::new(GitModule))
    } else {
        None
    };
    let mut builder = LibSealConfig::builder(cert, key)
        .cost_model(CostModel::free())
        .check_interval(0);
    if let Some(ssm) = ssm {
        builder = builder.ssm(ssm);
    }
    let config = builder.build();
    LibSeal::new(config).expect("libseal")
}

fn append_update(ls: &Arc<LibSeal>, cid: &str) {
    ls.with_log(0, {
        let cid = cid.to_string();
        move |log| {
            let t = log.next_time() as i64;
            log.append(
                "updates",
                &[
                    Value::Integer(t),
                    Value::Text("repo".into()),
                    Value::Text("refs/heads/main".into()),
                    Value::Text(cid),
                    Value::Text("update".into()),
                ],
            )
            .expect("append");
        }
    })
    .expect("enclave call");
}

fn main() {
    println!("=== scenario 1: provider modifies a logged entry ===");
    let ls = new_instance(true);
    append_update(&ls, "c1");
    append_update(&ls, "c2");
    ls.verify_log(0).expect("pristine log verifies");
    println!("log verifies before tampering");
    ls.with_log(0, |log| {
        log.db_mut()
            .execute("UPDATE updates SET cid = 'FORGED' WHERE cid = 'c1'")
            .unwrap();
    })
    .unwrap();
    match ls.verify_log(0) {
        Err(e) => println!("tampering detected: {e}"),
        Ok(()) => panic!("tampering must be detected"),
    }

    println!("\n=== scenario 2: provider deletes an entry ===");
    let ls = new_instance(true);
    append_update(&ls, "c1");
    append_update(&ls, "c2");
    ls.with_log(0, |log| {
        log.db_mut()
            .execute("DELETE FROM updates WHERE cid = 'c2'")
            .unwrap();
    })
    .unwrap();
    match ls.verify_log(0) {
        Err(e) => println!("deletion detected: {e}"),
        Ok(()) => panic!("deletion must be detected"),
    }

    println!("\n=== scenario 3: provider forges an extra entry ===");
    let ls = new_instance(true);
    append_update(&ls, "c1");
    ls.with_log(0, |log| {
        log.db_mut()
            .execute("INSERT INTO updates VALUES (99, 'repo', 'refs/heads/main', 'EVIL', 'update')")
            .unwrap();
    })
    .unwrap();
    match ls.verify_log(0) {
        Err(e) => println!("forgery detected: {e}"),
        Ok(()) => {
            // A forged data row without a chain row: the chain check
            // walks chain rows, so detection happens via count
            // comparison during verification of the corresponding
            // table. Verify via check: chain has 1 entry, table has 2.
            let rows = ls
                .with_log(0, |log| {
                    log.query("SELECT COUNT(*) FROM updates", &[]).unwrap().rows
                })
                .unwrap();
            println!(
                "note: forged row visible in data ({} rows) but unsigned — provable \
                 by comparing against the {}-entry signed chain",
                rows[0][0],
                ls.log_stats(0).unwrap().0
            );
        }
    }

    println!("\n=== scenario 4: provider tries to bypass LibSEAL ===");
    let audited = new_instance(true);
    let bypass = new_instance(false);
    let qe = QuotingEnclave::new(&[7u8; 32]);
    let ias = AttestationService::new(qe.root_key());
    let provisioner = CertProvisioner::new(
        audited.certificate().clone(),
        [2u8; 32],
        audited.measurement(),
        ias,
    );
    provisioner
        .provision(&audited.quote(&qe))
        .expect("genuine LibSEAL receives the TLS key");
    println!("genuine auditing enclave: TLS key provisioned");
    match provisioner.provision(&bypass.quote(&qe)) {
        Err(e) => println!("bypass build (no auditing): {e}"),
        Ok(_) => panic!("bypass must be rejected"),
    }

    println!("\nall tamper-evidence scenarios behaved as the paper requires");
}

//! Full-stack Git auditing over real sockets: an Apache-like server
//! terminates TLS through LibSEAL in front of a Git backend; a client
//! pushes and fetches; the provider then mounts teleport, rollback and
//! reference-deletion attacks (§6.1) — each is detected and reported
//! in-band through the `Libseal-Check-Result` header.
//!
//! ```sh
//! cargo run --example git_audit
//! ```

use std::sync::Arc;

use libseal::{GitModule, LibSeal, LibSealConfig};
use libseal_httpx::http::Request;
use libseal_services::apache::{ApacheConfig, ApacheServer};
use libseal_services::git::{GitAttack, GitBackend};
use libseal_services::{HttpsClient, TlsMode};
use libseal_sgxsim::cost::CostModel;
use libseal_tlsx::cert::CertificateAuthority;

fn main() {
    let ca = CertificateAuthority::new("DemoCA", &[1u8; 32]);
    let (key, cert) = ca.issue_identity("localhost", &[2u8; 32]).unwrap();
    let config = LibSealConfig::builder(cert, key)
        .ssm(Arc::new(GitModule))
        .cost_model(CostModel::free())
        .check_interval(0)
        .build();
    let libseal = LibSeal::new(config).expect("libseal");

    let backend = Arc::new(GitBackend::new());
    let server = ApacheServer::start(
        ApacheConfig::new(
            TlsMode::LibSeal(libseal.clone()),
            Arc::new(Arc::clone(&backend)),
        )
        .workers(2),
    )
    .expect("server");
    println!(
        "git service (audited by LibSEAL) on https://{}",
        server.addr()
    );

    let client = HttpsClient::new(server.addr(), vec![ca.root_key()], "localhost");
    let push = |body: &str| {
        let req = Request::new(
            "POST",
            "/repo/demo/git-receive-pack",
            body.as_bytes().to_vec(),
        );
        client.request(&req).expect("push")
    };
    let fetch_checked = || {
        let mut req = Request::new(
            "GET",
            "/repo/demo/info/refs?service=git-upload-pack",
            Vec::new(),
        );
        req.headers.insert("Libseal-Check", "1");
        client.request(&req).expect("fetch")
    };

    // Honest operation.
    push(
        "0 1111111111111111111111111111111111111111 refs/heads/main\n\
          0 2222222222222222222222222222222222222222 refs/heads/dev\n",
    );
    push(
        "1111111111111111111111111111111111111111 \
          3333333333333333333333333333333333333333 refs/heads/main\n",
    );
    let rsp = fetch_checked();
    println!(
        "honest fetch        -> Libseal-Check-Result: {}",
        rsp.headers.get("Libseal-Check-Result").unwrap()
    );

    // Attack 1: rollback main to the old commit.
    backend.set_attack(GitAttack::Rollback {
        repo: "demo".into(),
        branch: "refs/heads/main".into(),
        old_cid: "1111111111111111111111111111111111111111".into(),
    });
    let rsp = fetch_checked();
    println!(
        "rollback attack     -> Libseal-Check-Result: {}",
        rsp.headers.get("Libseal-Check-Result").unwrap()
    );

    // Attack 2: teleport main to dev's commit.
    backend.set_attack(GitAttack::Teleport {
        repo: "demo".into(),
        branch: "refs/heads/main".into(),
        from_branch: "refs/heads/dev".into(),
    });
    let rsp = fetch_checked();
    println!(
        "teleport attack     -> Libseal-Check-Result: {}",
        rsp.headers.get("Libseal-Check-Result").unwrap()
    );

    // Attack 3: hide the dev branch entirely.
    backend.set_attack(GitAttack::HideRef {
        repo: "demo".into(),
        branch: "refs/heads/dev".into(),
    });
    let rsp = fetch_checked();
    println!(
        "ref-deletion attack -> Libseal-Check-Result: {}",
        rsp.headers.get("Libseal-Check-Result").unwrap()
    );

    // The evidence is non-repudiable: the log verifies.
    libseal.verify_log(0).expect("log intact");
    let (entries, bytes, _) = libseal.log_stats(0).unwrap();
    println!("\naudit log intact: {entries} entries (~{bytes} bytes), signed hash chain verified");
    server.stop();
}

//! Dropbox auditing through a proxy: since the origin cannot be
//! instrumented, client traffic is routed through a Squid-like proxy
//! that terminates TLS via LibSEAL (§6.4). The origin then corrupts a
//! blocklist and hides a file — both violations surface in the audit
//! log.
//!
//! ```sh
//! cargo run --example dropbox_audit
//! ```

use std::sync::Arc;

use libseal::{DropboxModule, LibSeal, LibSealConfig};
use libseal_httpx::http::Request;
use libseal_services::apache::{ApacheConfig, ApacheServer};
use libseal_services::dropbox::{DropboxAttack, DropboxServer};
use libseal_services::squid::{SquidConfig, SquidProxy};
use libseal_services::{HttpsClient, TlsMode};
use libseal_sgxsim::cost::CostModel;
use libseal_tlsx::cert::CertificateAuthority;

fn main() {
    let ca = CertificateAuthority::new("DemoCA", &[1u8; 32]);

    // The (uninstrumentable) Dropbox origin.
    let (okey, ocert) = ca.issue_identity("dropbox-origin", &[3u8; 32]).unwrap();
    let origin = Arc::new(DropboxServer::new());
    let origin_server = ApacheServer::start(
        ApacheConfig::new(
            TlsMode::Native {
                cert: ocert,
                key: okey,
            },
            Arc::new(Arc::clone(&origin)),
        )
        .workers(2),
    )
    .expect("origin");

    // The audited proxy in front of it.
    let (pkey, pcert) = ca.issue_identity("localhost", &[2u8; 32]).unwrap();
    let config = LibSealConfig::builder(pcert, pkey)
        .ssm(Arc::new(DropboxModule))
        .cost_model(CostModel::free())
        .check_interval(0)
        .build();
    let libseal = LibSeal::new(config).expect("libseal");
    let proxy = SquidProxy::start(
        SquidConfig::new(
            TlsMode::LibSeal(libseal.clone()),
            origin_server.addr(),
            vec![ca.root_key()],
            "dropbox-origin",
        )
        .workers(2),
    )
    .expect("proxy");
    println!("dropbox origin on https://{}", origin_server.addr());
    println!("audited proxy  on https://{}", proxy.addr());

    let client = HttpsClient::new(proxy.addr(), vec![ca.root_key()], "localhost");
    let mut conn = client.connect().expect("connect");
    let mut post = |path: &str, body: &str| {
        conn.request(&Request::new("POST", path, body.as_bytes().to_vec()))
            .expect("request")
    };

    // Upload two files, then list them.
    post(
        "/dropbox/commit_batch",
        r#"{"account":"alice","host":"laptop","commits":[
            {"file":"thesis.pdf","blocks":["aa11","bb22"],"size":8192},
            {"file":"notes.txt","blocks":["cc33"],"size":512}]}"#,
    );
    let rsp = post("/dropbox/list", r#"{"account":"alice","host":"laptop"}"#);
    println!("honest listing: {}", String::from_utf8_lossy(&rsp.body));

    let outcome = libseal.check_now(0).expect("check");
    assert_eq!(outcome.total_violations(), 0);
    println!("invariants after honest listing: all hold\n");

    // Attack 1: the origin corrupts thesis.pdf's blocklist.
    origin.set_attack(DropboxAttack::CorruptBlocklist {
        account: "alice".into(),
        file: "thesis.pdf".into(),
    });
    post("/dropbox/list", r#"{"account":"alice","host":"laptop"}"#);

    // Attack 2: notes.txt silently vanishes.
    origin.set_attack(DropboxAttack::HideFile {
        account: "alice".into(),
        file: "notes.txt".into(),
    });
    post("/dropbox/list", r#"{"account":"alice","host":"laptop"}"#);

    let outcome = libseal.check_now(0).expect("check");
    println!("invariant check after attacks:");
    for report in &outcome.reports {
        println!(
            "  {:<30} violations: {}",
            report.invariant, report.violations
        );
    }
    assert!(outcome
        .reports
        .iter()
        .any(|r| r.invariant == "dropbox-blocklist-soundness" && r.violations > 0));
    assert!(outcome
        .reports
        .iter()
        .any(|r| r.invariant == "dropbox-list-completeness" && r.violations > 0));

    libseal.verify_log(0).expect("log intact");
    println!("\nblocklist corruption and hidden file both detected; log verified");
    proxy.stop();
    origin_server.stop();
}

#!/bin/sh
# Hermetic CI gate: everything must build, test, and lint cleanly
# without touching the network or a crates.io registry. The workspace
# has no external dependencies (see tests/hermetic.rs), so an offline
# build failing means a regression.
set -eu

export CARGO_NET_OFFLINE=true

cargo build --release
cargo test -q --workspace
cargo clippy --workspace --all-targets -- -D warnings

# Invariant checking must stay near-linear in log size (2k vs 20k
# entries, one soundness invariant per service); exits non-zero if a
# 10x log costs more than 20x the time.
cargo run --release -p libseal-bench --bin scaling_gate

# Crash matrix: simulate a crash / transient error / torn write at
# every failpoint on the audited write path, restart, and check the
# recovery contract (durable prefix, verifying chain, reconciled
# counter). Bounded: one fixed workload per (site, fault) pair.
cargo run --release -p libseal-bench --bin crash_matrix

# Telemetry must stay near-free on the hottest audited path: compare
# audited-append throughput with the registry enabled vs disabled
# (no-op handles) and fail on a >5% regression.
cargo run --release -p libseal-bench --bin telemetry_overhead

# Group commit must amortise counter binds and fsyncs across
# concurrent requests: 8 audited clients must push >= 3x the
# single-client throughput, with telemetry confirming batches formed
# (>= 2 appends per counter bind and per fsync).
cargo run --release -p libseal-bench --bin group_commit_gate

# The event-driven service core must hold >= 5000 concurrent idle
# STLS sessions on one reactor thread (all still serviceable under
# active load) and cross the enclave boundary measurably less often
# per request than the threaded baseline (sgxsim transition counters,
# event/threaded ratio <= 0.9).
ulimit -n 16384 2>/dev/null || true
cargo run --release -p libseal-bench --bin event_loop_gate

# Incremental invariant checking must cost O(rows touched since the
# last check): the per-append check cost on a 1M-entry Git log may be
# at most 2x the 1k-entry log's, the incremental verdicts must match
# the full-scan reference exactly (including injected violations),
# and the background verifier pool must drain with its lag gauge and
# alarm counter live in /metrics.
cargo run --release -p libseal-bench --bin check_scaling_gate

# Hostile-network hardening: a deterministic chaos matrix (resets,
# truncation, short reads, delays at every phase, both serving modes)
# must leave the server serving and the audit chain verifiable; at 2x
# the connection cap the excess must be refused fast while established
# connections keep p99 within budget; and a graceful drain under load
# must answer the in-flight request within its deadline.
cargo run --release -p libseal-bench --bin overload_chaos_gate

# The sharded audit plane must actually scale the audit pipeline:
# with the ROTE counter round slowed to 4 ms and commit batches
# capped at 4, four shards (four independent sealer pipelines) must
# push >= 2.8x the 1-shard audited throughput, the whole fleet
# (epoch-checkpoint chain included) must verify clean after drain,
# and a 2-shard disk-backed fleet must survive a mid-load shard
# restart with the restarted shard recovering its journal.
cargo run --release -p libseal-bench --bin shard_scaling_gate

# Attestation must be load-bearing: an attested apache+squid fleet
# (quotes pinned on both legs) must serve a load run with zero errors
# and verify clean, a wrong-MRENCLAVE server must be rejected by every
# client during the handshake (zero requests served), and the attested
# handshake may cost at most 15% extra median latency over a plain
# CA-verified one.
cargo run --release -p libseal-bench --bin attestation_gate

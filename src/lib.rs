//! Umbrella crate for the LibSEAL reproduction; see the member crates.

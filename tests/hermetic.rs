//! Workspace hermeticity: the build must work offline with an empty
//! cargo registry, so no manifest may declare a registry (or git)
//! dependency. A crates.io dependency silently reintroduced anywhere
//! breaks `CARGO_NET_OFFLINE=true cargo build` from a clean checkout —
//! this test turns that into an immediate, attributable failure.

use std::path::{Path, PathBuf};

/// All Cargo.toml files in the workspace (root + crates/*).
fn manifests() -> Vec<PathBuf> {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let mut found = vec![root.join("Cargo.toml")];
    for entry in std::fs::read_dir(root.join("crates")).expect("crates/ dir") {
        let manifest = entry.expect("dir entry").path().join("Cargo.toml");
        if manifest.is_file() {
            found.push(manifest);
        }
    }
    assert!(
        found.len() >= 11,
        "expected every crate manifest, got {found:?}"
    );
    found
}

/// Returns the `[section]` headers that introduce dependency entries.
fn is_dependency_section(header: &str) -> bool {
    let h = header.trim_matches(|c| c == '[' || c == ']');
    h == "dependencies"
        || h == "dev-dependencies"
        || h == "build-dependencies"
        || h == "workspace.dependencies"
        || h.ends_with(".dependencies")
        || h.ends_with(".dev-dependencies")
        || h.ends_with(".build-dependencies")
}

/// A dependency entry is hermetic when it resolves inside the repo:
/// either an inline table with a `path` key, or `foo.workspace = true`
/// (whose workspace-level entry this test also checks).
fn entry_is_hermetic(line: &str) -> bool {
    let Some((_name, spec)) = line.split_once('=') else {
        return false;
    };
    let spec = spec.trim();
    // `foo = { path = "..." }` possibly with version/features keys, or
    // `foo.workspace = true` / `foo = { workspace = true }`.
    if spec.contains("path") && spec.contains('{') {
        return !spec.contains("git =") && !spec.contains("version =");
    }
    if line.contains(".workspace") || spec.contains("workspace = true") {
        return true;
    }
    false
}

#[test]
fn no_registry_dependencies_anywhere() {
    let mut violations = Vec::new();
    for manifest in manifests() {
        let text = std::fs::read_to_string(&manifest).expect("readable manifest");
        let mut in_dep_section = false;
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            if line.starts_with('[') {
                in_dep_section = is_dependency_section(line);
                continue;
            }
            if in_dep_section && !entry_is_hermetic(line) {
                violations.push(format!(
                    "{}:{}: `{}` is not a path dependency",
                    manifest.display(),
                    lineno + 1,
                    line
                ));
            }
        }
    }
    assert!(
        violations.is_empty(),
        "registry/git dependencies would break the offline build:\n{}",
        violations.join("\n")
    );
}

#[test]
fn lockfile_is_committed_and_local_only() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let lock = std::fs::read_to_string(root.join("Cargo.lock"))
        .expect("Cargo.lock must be committed for reproducible resolution");
    assert!(
        !lock.contains("source = "),
        "Cargo.lock references an external source (registry or git):\n{}",
        lock.lines()
            .filter(|l| l.contains("source = "))
            .collect::<Vec<_>>()
            .join("\n")
    );
}

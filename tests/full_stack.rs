//! Workspace-level integration tests spanning every crate: crypto →
//! TEE → TLS → audit log → services, exercised together the way a
//! deployment would.

use std::sync::Arc;
use std::time::Duration;

use libseal::{GitModule, LibSeal, LibSealConfig, LogBacking};
use libseal_httpx::http::Request;
use libseal_services::apache::{ApacheConfig, ApacheServer};
use libseal_services::git::{GitBackend, HistoryGenerator};
use libseal_services::{HttpsClient, LoadGenerator, TlsMode};
use libseal_sgxsim::cost::CostModel;
use libseal_tlsx::cert::CertificateAuthority;

fn ca() -> CertificateAuthority {
    CertificateAuthority::new("WorkspaceCA", &[0x55; 32])
}

#[test]
fn sealed_persistent_log_full_cycle() {
    let ca = ca();
    let (key, cert) = ca.issue_identity("localhost", &[9u8; 32]).unwrap();
    let path = plat::tmp::TempPath::new("fullstack", "log");

    // Phase 1: serve real traffic, persist the log.
    {
        let cfg = LibSealConfig::builder(cert.clone(), key.clone())
            .ssm(Arc::new(GitModule))
            .cost_model(CostModel::free())
            .backing(LogBacking::Disk(path.to_path_buf()))
            .check_interval(0)
            .build();
        let ls = LibSeal::new(cfg).unwrap();
        let backend = Arc::new(GitBackend::new());
        let server = ApacheServer::start(
            ApacheConfig::new(
                TlsMode::LibSeal(ls.clone()),
                Arc::new(Arc::clone(&backend)),
            )
            .workers(2),
        )
        .unwrap();
        let client = HttpsClient::new(server.addr(), vec![ca.root_key()], "localhost");
        let mut generator = HistoryGenerator::new("repo", 3, 5);
        let mut conn = client.connect().unwrap();
        for _ in 0..30 {
            let req = HistoryGenerator::to_request(&generator.next_op());
            conn.request(&req).unwrap();
        }
        conn.close();
        assert_eq!(ls.check_now(0).unwrap().total_violations(), 0);
        ls.verify_log(0).unwrap();
        server.stop();
    }

    // Phase 2: restart over the sealed journal; history verifies.
    {
        let cfg = LibSealConfig::builder(cert, key)
            .ssm(Arc::new(GitModule))
            .cost_model(CostModel::free())
            .backing(LogBacking::Disk(path.to_path_buf()))
            .check_interval(0)
            .build();
        let ls = LibSeal::new(cfg).unwrap();
        let (entries, _, journal) = ls.log_stats(0).unwrap();
        assert!(entries > 0);
        assert!(journal > 0);
        ls.verify_log(0).unwrap();
        assert_eq!(ls.check_now(0).unwrap().total_violations(), 0);
    }
}

#[test]
fn load_generator_measures_throughput() {
    let ca = ca();
    let (key, cert) = ca.issue_identity("localhost", &[9u8; 32]).unwrap();
    let cfg = LibSealConfig::builder(cert, key)
        .cost_model(CostModel::free())
        .build();
    let ls = LibSeal::new(cfg).unwrap();
    let server = ApacheServer::start(
        ApacheConfig::new(
            TlsMode::LibSeal(ls),
            Arc::new(libseal_services::StaticContentRouter),
        )
        .workers(4),
    )
    .unwrap();
    let client = HttpsClient::new(server.addr(), vec![ca.root_key()], "localhost");
    let stats = LoadGenerator {
        clients: 4,
        duration: Duration::from_millis(800),
        persistent: true,
        ..LoadGenerator::default()
    }
    .run(&client, |_, _| {
        Request::new("GET", "/content/64", Vec::new())
    });
    assert!(stats.requests > 0, "no requests completed");
    assert!(stats.throughput() > 1.0);
    assert!(stats.p50_latency <= stats.p95_latency);
    server.stop();
}

#[test]
fn cost_model_imposes_real_overhead() {
    // The same tiny workload with and without the SGX cost model; the
    // modelled configuration must be measurably slower.
    let ca = ca();
    let run = |model: CostModel| -> Duration {
        let (key, cert) = ca.issue_identity("localhost", &[9u8; 32]).unwrap();
        let cfg = LibSealConfig::builder(cert, key).cost_model(model).build();
        let ls = LibSeal::new(cfg).unwrap();
        let server = ApacheServer::start(
            ApacheConfig::new(
                TlsMode::LibSeal(ls),
                Arc::new(libseal_services::StaticContentRouter),
            )
            .workers(1),
        )
        .unwrap();
        let client = HttpsClient::new(server.addr(), vec![ca.root_key()], "localhost");
        let t0 = std::time::Instant::now();
        let mut conn = client.connect().unwrap();
        for _ in 0..20 {
            conn.request(&Request::new("GET", "/content/16", Vec::new()))
                .unwrap();
        }
        conn.close();
        let dt = t0.elapsed();
        server.stop();
        dt
    };
    let free = run(CostModel::free());
    let taxed = run(CostModel {
        enabled: true,
        sync_transition_cycles: 200_000, // exaggerated for test stability
        ..CostModel::default()
    });
    assert!(
        taxed > free,
        "cost model had no effect: taxed {taxed:?} vs free {free:?}"
    );
}

#[test]
fn transitions_are_observable_end_to_end() {
    let ca = ca();
    let (key, cert) = ca.issue_identity("localhost", &[9u8; 32]).unwrap();
    let cfg = LibSealConfig::builder(cert, key)
        .cost_model(CostModel::free())
        .build();
    let ls = LibSeal::new(cfg).unwrap();
    let server = ApacheServer::start(
        ApacheConfig::new(
            TlsMode::LibSeal(ls.clone()),
            Arc::new(libseal_services::StaticContentRouter),
        )
        .workers(1),
    )
    .unwrap();
    let client = HttpsClient::new(server.addr(), vec![ca.root_key()], "localhost");
    client
        .request(&Request::new("GET", "/content/32", Vec::new()))
        .unwrap();
    let snap = ls.stats();
    assert!(snap.ecalls > 0, "TLS termination must cross the boundary");
    // The event-driven core (the default) decrypts via the batched
    // "tls_batch" entry; the threaded model issues per-op "ssl_read"
    // calls. Either way the read path must be visible by name.
    assert!(
        snap.by_name.contains_key("tls_batch") || snap.by_name.contains_key("ssl_read"),
        "no named read-path ecall in {:?}",
        snap.by_name.keys().collect::<Vec<_>>()
    );
    assert!(snap.by_name.contains_key("ssl_write"));
    server.stop();
}

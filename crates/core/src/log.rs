//! The non-repudiable audit log (§5.1).
//!
//! Tuples extracted by a service-specific module land in relational
//! tables inside the enclave's embedded database. Integrity comes from
//! three mechanisms, mirroring the paper:
//!
//! 1. **Hash chain**: every appended tuple extends a SHA-256 chain
//!    (like PeerReview). The chain rows live in a side table
//!    `_libseal_chain(seq, tbl, key, payload, hash)` so that trimming
//!    can recompute hashes without touching every data row (§5.1,
//!    "Log trimming").
//! 2. **Signature**: the chain head, entry count and rollback-counter
//!    value are Ed25519-signed by the enclave; only LibSEAL can
//!    produce valid heads.
//! 3. **Rollback protection**: each append advances a monotonic
//!    counter — either the slow SGX hardware counter or a ROTE quorum
//!    ([`RollbackGuard`]).
//!
//! Persistence uses the database journal with a sealing codec
//! ([`SealingCodec`]) so records on the untrusted disk are encrypted
//! and authenticated with the enclave's seal key.

use libseal_crypto::aead::ChaCha20Poly1305;
use libseal_crypto::ed25519::{SigningKey, VerifyingKey};
use libseal_crypto::sha2::Sha256;
use libseal_sealdb::journal::JournalCodec;
use libseal_sealdb::{Database, SyncPolicy, Value};

use crate::{LibSealError, Result};

/// Where the audit log lives.
pub enum LogBacking {
    /// In-memory only (the paper's `LibSEAL-mem` configuration).
    Memory,
    /// Persisted to a sealed journal at the given path, fsynced once
    /// per logged request/response pair (`LibSEAL-disk`, §5.1).
    Disk(std::path::PathBuf),
    /// Persisted without per-record fsync (used by some benches).
    DiskNoSync(std::path::PathBuf),
}

/// Source of rollback-protecting monotonic counter values.
pub trait RollbackGuard: Send + Sync {
    /// Advances the counter, returning its new value.
    ///
    /// # Errors
    ///
    /// Implementations fail when the counter is unavailable (quorum
    /// loss, worn-out hardware counter).
    fn increment(&self) -> Result<u64>;
    /// The highest value the guard can currently attest to.
    ///
    /// # Errors
    ///
    /// As [`RollbackGuard::increment`].
    fn attested(&self) -> Result<u64>;
}

/// No rollback protection (baseline configurations).
pub struct NoGuard;

impl RollbackGuard for NoGuard {
    fn increment(&self) -> Result<u64> {
        Ok(0)
    }
    fn attested(&self) -> Result<u64> {
        Ok(0)
    }
}

/// ROTE-cluster-backed guard.
pub struct RoteGuard(pub libseal_rote::Cluster);

impl RollbackGuard for RoteGuard {
    fn increment(&self) -> Result<u64> {
        let (v, _acks) = self
            .0
            .increment()
            .map_err(|e| LibSealError::Log(format!("rote: {e}")))?;
        Ok(v)
    }
    fn attested(&self) -> Result<u64> {
        self.0
            .recover()
            .map_err(|e| LibSealError::Log(format!("rote: {e}")))
    }
}

/// SGX hardware-counter-backed guard.
pub struct HwCounterGuard(pub libseal_sgxsim::MonotonicCounter);

impl RollbackGuard for HwCounterGuard {
    fn increment(&self) -> Result<u64> {
        self.0
            .increment()
            .map_err(|e| LibSealError::Log(format!("sgx counter: {e}")))
    }
    fn attested(&self) -> Result<u64> {
        Ok(self.0.read())
    }
}

/// Journal codec sealing every record with an AEAD key.
pub struct SealingCodec {
    aead: ChaCha20Poly1305,
    /// Nonce counter; unique per record within one log lifetime.
    counter: std::sync::atomic::AtomicU64,
}

impl SealingCodec {
    /// Creates a codec from a (sealing) key.
    pub fn new(key: [u8; 32]) -> Self {
        SealingCodec {
            aead: ChaCha20Poly1305::new(&key),
            counter: std::sync::atomic::AtomicU64::new(0),
        }
    }
}

impl JournalCodec for SealingCodec {
    fn encode(&self, plain: &[u8]) -> Vec<u8> {
        let n = self
            .counter
            .fetch_add(1, std::sync::atomic::Ordering::SeqCst);
        let mut nonce = [0u8; 12];
        nonce[..8].copy_from_slice(&n.to_le_bytes());
        // Randomize the tail so nonce reuse across restarts is
        // cryptographically unlikely.
        let mut tail = [0u8; 4];
        plat::entropy::fill(&mut tail);
        nonce[8..].copy_from_slice(&tail);
        let mut out = nonce.to_vec();
        out.extend_from_slice(&self.aead.seal(&nonce, b"libseal-journal", plain));
        out
    }

    fn decode(&self, stored: &[u8]) -> libseal_sealdb::Result<Vec<u8>> {
        if stored.len() < 12 + 16 {
            return Err(libseal_sealdb::DbError::Exec(
                "sealed journal record too short".into(),
            ));
        }
        let mut nonce = [0u8; 12];
        nonce.copy_from_slice(&stored[..12]);
        self.aead
            .open(&nonce, b"libseal-journal", &stored[12..])
            .map_err(|_| {
                libseal_sealdb::DbError::Exec("sealed journal record failed to open".into())
            })
    }
}

/// Schema of one audited table: its name and the column(s) forming the
/// primary key used to associate chain rows with data rows.
#[derive(Clone, Debug)]
pub struct TableSpec {
    /// Table name.
    pub name: &'static str,
    /// Primary-key columns (usually `time` plus discriminators).
    pub key_cols: &'static [&'static str],
}

/// The enclave-resident audit log.
pub struct AuditLog {
    db: Database,
    signer: SigningKey,
    guard: Box<dyn RollbackGuard>,
    tables: Vec<TableSpec>,
    head: [u8; 32],
    seq: u64,
    /// Logical timestamp handed to SSMs (§5.1: "time being a logical
    /// timestamp maintained in the enclave").
    clock: u64,
    disk_backed: bool,
}

const CHAIN_SCHEMA: &str = "CREATE TABLE IF NOT EXISTS _libseal_chain(
    seq INTEGER, tbl TEXT, pk TEXT, payload TEXT, hash BLOB)";
const META_SCHEMA: &str = "CREATE TABLE IF NOT EXISTS _libseal_meta(k TEXT, v TEXT)";

impl AuditLog {
    /// Opens (or creates) an audit log.
    ///
    /// `schema_sql` contains the SSM's CREATE statements; `tables`
    /// names the audited tables and their keys; `signer` is the
    /// enclave's log-signing identity.
    ///
    /// # Errors
    ///
    /// Database and I/O failures; a failed integrity check on reopen.
    pub fn open(
        backing: LogBacking,
        seal_key: [u8; 32],
        signer: SigningKey,
        guard: Box<dyn RollbackGuard>,
        schema_sql: &str,
        tables: Vec<TableSpec>,
    ) -> Result<AuditLog> {
        let (mut db, disk_backed) = match backing {
            LogBacking::Memory => (Database::new(), false),
            LogBacking::Disk(path) => (
                Database::open(&path, Box::new(SealingCodec::new(seal_key)), SyncPolicy::Manual)
                    .map_err(LibSealError::Db)?,
                true,
            ),
            LogBacking::DiskNoSync(path) => (
                Database::open(&path, Box::new(SealingCodec::new(seal_key)), SyncPolicy::Never)
                    .map_err(LibSealError::Db)?,
                true,
            ),
        };
        db.execute(CHAIN_SCHEMA).map_err(LibSealError::Db)?;
        db.execute(META_SCHEMA).map_err(LibSealError::Db)?;
        for stmt in split_statements(schema_sql) {
            match db.execute(&stmt) {
                Ok(_) => {}
                // A replayed journal already re-created the schema.
                Err(libseal_sealdb::DbError::Schema(m)) if m.contains("already exists") => {}
                Err(e) => return Err(LibSealError::Db(e)),
            }
        }
        // Index every audited table on its key columns: invariant
        // queries correlate on them (`u.repo = a.repo`, `s.doc =
        // d.doc`, ...) and chain verification looks rows up by them,
        // so these indexes are what keeps per-pair checking and
        // verify()/trim() near-linear in the log size.
        for spec in &tables {
            for col in spec.key_cols {
                db.execute(&format!(
                    "CREATE INDEX IF NOT EXISTS libseal_idx_{}_{col} ON {}({col})",
                    spec.name, spec.name
                ))
                .map_err(LibSealError::Db)?;
            }
        }
        let mut log = AuditLog {
            db,
            signer,
            guard,
            tables,
            head: [0u8; 32],
            seq: 0,
            clock: 0,
            disk_backed,
        };
        log.recover_state()?;
        Ok(log)
    }

    fn recover_state(&mut self) -> Result<()> {
        // Rebuild head/seq/clock from the chain table (after journal
        // replay).
        let r = self
            .db
            .query("SELECT MAX(seq), COUNT(*) FROM _libseal_chain", &[])
            .map_err(LibSealError::Db)?;
        let max_seq = match r.rows.first().and_then(|row| row.first()) {
            Some(Value::Integer(i)) => *i as u64,
            _ => 0,
        };
        self.seq = max_seq;
        // Restore the logical clock from the signed head metadata: after
        // trimming the chain is renumbered, so seq alone would make the
        // clock regress below surviving rows' timestamps.
        let meta = self
            .db
            .query("SELECT v FROM _libseal_meta WHERE k = 'head'", &[])
            .map_err(LibSealError::Db)?;
        let stored_clock = match meta.scalar() {
            Some(Value::Text(m)) => m
                .split(':')
                .nth(3)
                .and_then(|c| c.parse::<u64>().ok())
                .unwrap_or(0),
            _ => 0,
        };
        self.clock = stored_clock.max(max_seq);
        if max_seq > 0 {
            // Recompute the head by walking the chain.
            self.verify()?;
            let r = self
                .db
                .query(
                    "SELECT hash FROM _libseal_chain ORDER BY seq DESC LIMIT 1",
                    &[],
                )
                .map_err(LibSealError::Db)?;
            if let Some(Value::Blob(h)) = r.scalar() {
                self.head.copy_from_slice(h);
            }
            // Rollback check: the guard must not know a newer state.
            let attested = self.guard.attested()?;
            if attested > self.seq {
                return Err(LibSealError::Log(format!(
                    "rollback detected: counter attests {attested} entries, log has {}",
                    self.seq
                )));
            }
        }
        Ok(())
    }

    /// The next logical timestamp (monotone per log).
    pub fn next_time(&mut self) -> u64 {
        self.clock += 1;
        self.clock
    }

    /// Current logical time.
    pub fn now(&self) -> u64 {
        self.clock
    }

    /// Appends one tuple to `table`, extending the hash chain, signing
    /// the new head and advancing the rollback counter.
    ///
    /// # Errors
    ///
    /// Unknown table, database failures, or counter failures.
    pub fn append(&mut self, table: &str, values: &[Value]) -> Result<()> {
        let spec = self
            .tables
            .iter()
            .find(|t| t.name.eq_ignore_ascii_case(table))
            .ok_or_else(|| LibSealError::Log(format!("not an audited table: {table}")))?
            .clone();

        let placeholders = vec!["?"; values.len()].join(", ");
        self.db
            .execute_with(
                &format!("INSERT INTO {table} VALUES ({placeholders})"),
                values,
            )
            .map_err(LibSealError::Db)?;

        let payload = render_payload(table, values);
        let key = render_key(&spec, table, values, &self.db)?;
        let mut h = Sha256::new();
        h.update(&self.head);
        h.update(payload.as_bytes());
        let new_hash = h.finalize();
        self.seq += 1;
        self.db
            .execute_with(
                "INSERT INTO _libseal_chain VALUES (?, ?, ?, ?, ?)",
                &[
                    Value::Integer(self.seq as i64),
                    Value::Text(table.to_string()),
                    Value::Text(key),
                    Value::Text(payload),
                    Value::Blob(new_hash.to_vec()),
                ],
            )
            .map_err(LibSealError::Db)?;
        self.head = new_hash;

        let counter = self.guard.increment()?;
        self.sign_head(counter)?;
        Ok(())
    }

    fn sign_head(&mut self, counter: u64) -> Result<()> {
        let sig = self
            .signer
            .sign(&head_payload(&self.head, self.seq, counter, self.clock));
        self.db
            .execute("DELETE FROM _libseal_meta WHERE k = 'head'")
            .map_err(LibSealError::Db)?;
        self.db
            .execute_with(
                "INSERT INTO _libseal_meta VALUES ('head', ?)",
                &[Value::Text(format!(
                    "{}:{}:{}:{}",
                    hex(&self.head),
                    self.seq,
                    counter,
                    self.clock
                ))],
            )
            .map_err(LibSealError::Db)?;
        self.db
            .execute("DELETE FROM _libseal_meta WHERE k = 'sig'")
            .map_err(LibSealError::Db)?;
        self.db
            .execute_with(
                "INSERT INTO _libseal_meta VALUES ('sig', ?)",
                &[Value::Text(hex(&sig))],
            )
            .map_err(LibSealError::Db)?;
        Ok(())
    }

    /// Forces journalled records to stable storage; LibSEAL calls this
    /// once per request/response pair (§5.1).
    ///
    /// # Errors
    ///
    /// I/O failures.
    pub fn flush(&mut self) -> Result<()> {
        self.db.sync_journal().map_err(LibSealError::Db)
    }

    /// Runs a read-only query against the log (invariant checking).
    ///
    /// # Errors
    ///
    /// Database failures.
    pub fn query(&self, sql: &str, params: &[Value]) -> Result<libseal_sealdb::QueryResult> {
        self.db.query(sql, params).map_err(LibSealError::Db)
    }

    /// Executes arbitrary SQL against the log (SSM state bookkeeping).
    ///
    /// # Errors
    ///
    /// Database failures.
    pub fn execute_with(
        &mut self,
        sql: &str,
        params: &[Value],
    ) -> Result<libseal_sealdb::QueryResult> {
        self.db.execute_with(sql, params).map_err(LibSealError::Db)
    }

    /// Verifies the hash chain, the head signature, and that chain rows
    /// and data rows agree.
    ///
    /// # Errors
    ///
    /// [`LibSealError::Tampered`] describing the first inconsistency.
    pub fn verify(&self) -> Result<()> {
        let rows = self
            .db
            .query(
                "SELECT seq, tbl, pk, payload, hash FROM _libseal_chain ORDER BY seq",
                &[],
            )
            .map_err(LibSealError::Db)?;
        let mut head = [0u8; 32];
        let mut count = 0u64;
        let mut last_seq = 0i64;
        for row in &rows.rows {
            let (Value::Integer(seq), Value::Text(payload), Value::Blob(hash)) =
                (&row[0], &row[3], &row[4])
            else {
                return Err(LibSealError::Tampered("chain row malformed".into()));
            };
            if *seq <= last_seq {
                return Err(LibSealError::Tampered("chain sequence not increasing".into()));
            }
            last_seq = *seq;
            let mut h = Sha256::new();
            h.update(&head);
            h.update(payload.as_bytes());
            let expect = h.finalize();
            if expect.as_slice() != hash.as_slice() {
                return Err(LibSealError::Tampered(format!(
                    "hash mismatch at seq {seq}"
                )));
            }
            head = expect;
            count += 1;
            // Data row must still exist and match the payload.
            let (Value::Text(tbl), Value::Text(key)) = (&row[1], &row[2]) else {
                return Err(LibSealError::Tampered("chain row malformed".into()));
            };
            self.check_data_row(tbl, key, payload)?;
        }
        let _ = count;
        // Verify the signed head.
        let meta = self
            .db
            .query("SELECT v FROM _libseal_meta WHERE k = 'head'", &[])
            .map_err(LibSealError::Db)?;
        let sig_row = self
            .db
            .query("SELECT v FROM _libseal_meta WHERE k = 'sig'", &[])
            .map_err(LibSealError::Db)?;
        match (meta.scalar(), sig_row.scalar()) {
            (Some(Value::Text(head_meta)), Some(Value::Text(sig_hex))) => {
                let parts: Vec<&str> = head_meta.split(':').collect();
                if parts.len() != 4 {
                    return Err(LibSealError::Tampered("bad head metadata".into()));
                }
                let stored_head = unhex(parts[0])
                    .ok_or_else(|| LibSealError::Tampered("bad head hex".into()))?;
                if stored_head.as_slice() != head.as_slice() {
                    return Err(LibSealError::Tampered(
                        "chain head does not match signed head".into(),
                    ));
                }
                let seq: u64 = parts[1]
                    .parse()
                    .map_err(|_| LibSealError::Tampered("bad head seq".into()))?;
                let counter: u64 = parts[2]
                    .parse()
                    .map_err(|_| LibSealError::Tampered("bad head counter".into()))?;
                let clock: u64 = parts[3]
                    .parse()
                    .map_err(|_| LibSealError::Tampered("bad head clock".into()))?;
                if seq != last_seq as u64 {
                    return Err(LibSealError::Tampered("head seq mismatch".into()));
                }
                let sig_bytes = unhex(sig_hex)
                    .ok_or_else(|| LibSealError::Tampered("bad signature hex".into()))?;
                let sig: [u8; 64] = sig_bytes
                    .try_into()
                    .map_err(|_| LibSealError::Tampered("bad signature length".into()))?;
                let mut head_arr = [0u8; 32];
                head_arr.copy_from_slice(&head);
                self.signer
                    .verifying_key()
                    .verify(&head_payload(&head_arr, seq, counter, clock), &sig)
                    .map_err(|_| LibSealError::Tampered("head signature invalid".into()))?;
            }
            _ if last_seq == 0 => {} // Empty log: nothing signed yet.
            _ => return Err(LibSealError::Tampered("head metadata missing".into())),
        }
        Ok(())
    }

    fn check_data_row(&self, tbl: &str, key: &str, payload: &str) -> Result<()> {
        let spec = self
            .tables
            .iter()
            .find(|t| t.name.eq_ignore_ascii_case(tbl))
            .ok_or_else(|| LibSealError::Tampered(format!("chain names unknown table {tbl}")))?;
        // Reconstruct the key predicate.
        let key_vals: Vec<&str> = key.split('\u{1f}').collect();
        if key_vals.len() != spec.key_cols.len() {
            return Err(LibSealError::Tampered("chain key malformed".into()));
        }
        // Typed equality (`col = ?` with the key text coerced through
        // the column's affinity) so the predicate is index-probeable.
        // Keys render via `Value::to_string`, which round-trips through
        // affinity coercion for everything except BLOB columns — those
        // keep the textual `'' || col` comparison.
        let t = self
            .db
            .catalog()
            .table(tbl)
            .ok_or_else(|| LibSealError::Tampered(format!("chain names unknown table {tbl}")))?;
        let mut preds = Vec::with_capacity(spec.key_cols.len());
        let mut params = Vec::with_capacity(spec.key_cols.len());
        for (c, raw) in spec.key_cols.iter().zip(&key_vals) {
            let affinity = t
                .column_index(c)
                .map(|i| t.columns[i].affinity)
                .ok_or_else(|| {
                    LibSealError::Tampered(format!("{tbl} lost key column {c}"))
                })?;
            let text = Value::Text((*raw).to_string());
            if matches!(affinity, libseal_sealdb::value::Affinity::Blob) {
                preds.push(format!("('' || {c}) = ?"));
                params.push(text);
            } else {
                preds.push(format!("{c} = ?"));
                params.push(affinity.apply(text));
            }
        }
        let sql = format!(
            "SELECT * FROM {tbl} WHERE {}",
            preds.join(" AND ")
        );
        let rows = self.db.query(&sql, &params).map_err(LibSealError::Db)?;
        for row in &rows.rows {
            if render_payload(tbl, row) == payload {
                return Ok(());
            }
        }
        Err(LibSealError::Tampered(format!(
            "data row missing or modified for {tbl} key {key:?}"
        )))
    }

    /// Runs the SSM's trimming queries, then rebuilds the chain over
    /// the surviving entries and re-signs (§5.1, "Log trimming").
    ///
    /// # Errors
    ///
    /// Database or counter failures.
    pub fn trim(&mut self, trim_queries: &[&str]) -> Result<()> {
        for q in trim_queries {
            self.db.execute(q).map_err(LibSealError::Db)?;
        }
        // Drop chain rows whose data row no longer exists.
        let chain = self
            .db
            .query(
                "SELECT seq, tbl, pk, payload FROM _libseal_chain ORDER BY seq",
                &[],
            )
            .map_err(LibSealError::Db)?;
        let mut survivors: Vec<(String, String, String)> = Vec::new();
        for row in &chain.rows {
            let (Value::Text(tbl), Value::Text(key), Value::Text(payload)) =
                (&row[1], &row[2], &row[3])
            else {
                continue;
            };
            if self.check_data_row(tbl, key, payload).is_ok() {
                survivors.push((tbl.clone(), key.clone(), payload.clone()));
            }
        }
        // Rebuild the chain with fresh sequence numbers and hashes.
        self.db
            .execute("DELETE FROM _libseal_chain")
            .map_err(LibSealError::Db)?;
        self.head = [0u8; 32];
        self.seq = 0;
        for (tbl, key, payload) in survivors {
            let mut h = Sha256::new();
            h.update(&self.head);
            h.update(payload.as_bytes());
            let new_hash = h.finalize();
            self.seq += 1;
            self.db
                .execute_with(
                    "INSERT INTO _libseal_chain VALUES (?, ?, ?, ?, ?)",
                    &[
                        Value::Integer(self.seq as i64),
                        Value::Text(tbl),
                        Value::Text(key),
                        Value::Text(payload),
                        Value::Blob(new_hash.to_vec()),
                    ],
                )
                .map_err(LibSealError::Db)?;
            self.head = new_hash;
        }
        let counter = self.guard.increment()?;
        self.sign_head(counter)?;
        // Compact the journal so trimming actually reclaims disk.
        if self.disk_backed {
            self.db.compact().map_err(LibSealError::Db)?;
            self.db.sync_journal().map_err(LibSealError::Db)?;
        }
        Ok(())
    }

    /// Approximate log size in bytes (data + chain).
    pub fn size_bytes(&self) -> usize {
        self.db.size_bytes()
    }

    /// On-disk journal size in bytes.
    pub fn journal_size_bytes(&self) -> u64 {
        self.db.journal_size_bytes()
    }

    /// Number of chain entries.
    pub fn entries(&self) -> u64 {
        self.seq
    }

    /// The signer's public key (clients verify exported proofs).
    pub fn verifying_key(&self) -> VerifyingKey {
        self.signer.verifying_key()
    }

    /// Direct database access for tests and tamper-injection.
    pub fn db_mut(&mut self) -> &mut Database {
        &mut self.db
    }
}

fn head_payload(head: &[u8; 32], seq: u64, counter: u64, clock: u64) -> Vec<u8> {
    let mut p = b"libseal-head:".to_vec();
    p.extend_from_slice(head);
    p.extend_from_slice(&seq.to_le_bytes());
    p.extend_from_slice(&counter.to_le_bytes());
    p.extend_from_slice(&clock.to_le_bytes());
    p
}

fn render_payload(table: &str, values: &[Value]) -> String {
    let mut out = String::with_capacity(32);
    out.push_str(table);
    for v in values {
        out.push('\u{1f}');
        out.push_str(&v.group_key());
    }
    out
}

fn render_key(
    spec: &TableSpec,
    table: &str,
    values: &[Value],
    db: &Database,
) -> Result<String> {
    // Map key column names to positions via the catalog.
    let t = db
        .catalog()
        .table(table)
        .ok_or_else(|| LibSealError::Log(format!("no such table: {table}")))?;
    let mut parts = Vec::with_capacity(spec.key_cols.len());
    for c in spec.key_cols {
        let i = t
            .column_index(c)
            .ok_or_else(|| LibSealError::Log(format!("{table} has no key column {c}")))?;
        let v = values
            .get(i)
            .ok_or_else(|| LibSealError::Log("tuple arity mismatch".into()))?;
        parts.push(v.to_string());
    }
    Ok(parts.join("\u{1f}"))
}

fn split_statements(sql: &str) -> Vec<String> {
    // Views may contain semicolons only as statement separators in our
    // dialect, so a simple split is safe here.
    sql.split(';')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(str::to_string)
        .collect()
}

fn hex(b: &[u8]) -> String {
    b.iter().map(|x| format!("{x:02x}")).collect()
}

fn unhex(s: &str) -> Option<Vec<u8>> {
    if !s.len().is_multiple_of(2) {
        return None;
    }
    (0..s.len())
        .step_by(2)
        .map(|i| u8::from_str_radix(&s[i..i + 2], 16).ok())
        .collect()
}

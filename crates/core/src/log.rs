//! The non-repudiable audit log (§5.1).
//!
//! Tuples extracted by a service-specific module land in relational
//! tables inside the enclave's embedded database. Integrity comes from
//! three mechanisms, mirroring the paper:
//!
//! 1. **Hash chain**: every appended tuple extends a SHA-256 chain
//!    (like PeerReview). The chain rows live in a side table
//!    `_libseal_chain(seq, tbl, key, payload, hash)` so that trimming
//!    can recompute hashes without touching every data row (§5.1,
//!    "Log trimming").
//! 2. **Signature**: the chain head, entry count and rollback-counter
//!    value are Ed25519-signed by the enclave; only LibSEAL can
//!    produce valid heads.
//! 3. **Rollback protection**: each append advances a monotonic
//!    counter — either the slow SGX hardware counter or a ROTE quorum
//!    ([`RollbackGuard`]).
//!
//! Persistence uses the database journal with a sealing codec
//! ([`SealingCodec`]) so records on the untrusted disk are encrypted
//! and authenticated with the enclave's seal key.

use std::sync::Arc;

use libseal_crypto::aead::ChaCha20Poly1305;
use libseal_crypto::ed25519::{SigningKey, VerifyingKey};
use libseal_crypto::sha2::Sha256;
use libseal_sealdb::journal::JournalCodec;
use libseal_sealdb::{Database, SyncPolicy, Value};

use crate::{LibSealError, Result};

/// Process-wide audit-log metrics: per-operation latency histograms
/// plus recovery/rollback-alarm event counters.
struct LogMetrics {
    append_ns: libseal_telemetry::Histogram,
    flush_ns: libseal_telemetry::Histogram,
    trim_ns: libseal_telemetry::Histogram,
    verify_ns: libseal_telemetry::Histogram,
    appends: libseal_telemetry::Counter,
    counter_binds: libseal_telemetry::Counter,
    head_signs: libseal_telemetry::Counter,
    epoch_rotations: libseal_telemetry::Counter,
    recoveries: libseal_telemetry::Counter,
    rollback_alarms: libseal_telemetry::Counter,
    salvaged_bytes: libseal_telemetry::Counter,
}

fn log_metrics() -> &'static LogMetrics {
    static M: std::sync::OnceLock<LogMetrics> = std::sync::OnceLock::new();
    M.get_or_init(|| LogMetrics {
        append_ns: libseal_telemetry::histogram("core_append_ns"),
        flush_ns: libseal_telemetry::histogram("core_flush_ns"),
        trim_ns: libseal_telemetry::histogram("core_trim_ns"),
        verify_ns: libseal_telemetry::histogram("core_verify_ns"),
        appends: libseal_telemetry::counter("core_appends_total"),
        counter_binds: libseal_telemetry::counter("core_counter_binds_total"),
        head_signs: libseal_telemetry::counter("core_head_signs_total"),
        epoch_rotations: libseal_telemetry::counter("core_epoch_rotations_total"),
        recoveries: libseal_telemetry::counter("core_recoveries_total"),
        rollback_alarms: libseal_telemetry::counter("core_rollback_alarms_total"),
        salvaged_bytes: libseal_telemetry::counter("core_salvaged_bytes_total"),
    })
}

/// Where the audit log lives.
#[derive(Clone)]
pub enum LogBacking {
    /// In-memory only (the paper's `LibSEAL-mem` configuration).
    Memory,
    /// Persisted to a sealed journal at the given path, fsynced once
    /// per logged request/response pair (`LibSEAL-disk`, §5.1).
    Disk(std::path::PathBuf),
    /// Persisted without per-record fsync (used by some benches).
    DiskNoSync(std::path::PathBuf),
}

/// Source of rollback-protecting monotonic counter values.
pub trait RollbackGuard: Send + Sync {
    /// Advances the counter, returning its new value.
    ///
    /// # Errors
    ///
    /// Implementations fail when the counter is unavailable (quorum
    /// loss, worn-out hardware counter).
    fn increment(&self) -> Result<u64>;
    /// The highest value the guard can currently attest to.
    ///
    /// # Errors
    ///
    /// As [`RollbackGuard::increment`].
    fn attested(&self) -> Result<u64>;
}

/// No rollback protection (baseline configurations).
pub struct NoGuard;

impl RollbackGuard for NoGuard {
    fn increment(&self) -> Result<u64> {
        Ok(0)
    }
    fn attested(&self) -> Result<u64> {
        Ok(0)
    }
}

/// ROTE-cluster-backed guard. Holds the cluster behind an [`Arc`] so
/// callers can keep a handle for degraded-mode inspection and
/// [`libseal_rote::Cluster::rebind`] while the log owns the guard.
pub struct RoteGuard(pub Arc<libseal_rote::Cluster>);

impl RollbackGuard for RoteGuard {
    fn increment(&self) -> Result<u64> {
        let (v, _acks) = self
            .0
            .increment()
            .map_err(|e| LibSealError::Log(format!("rote: {e}")))?;
        Ok(v)
    }
    fn attested(&self) -> Result<u64> {
        self.0
            .recover()
            .map_err(|e| LibSealError::Log(format!("rote: {e}")))
    }
}

/// SGX hardware-counter-backed guard.
pub struct HwCounterGuard(pub libseal_sgxsim::MonotonicCounter);

impl RollbackGuard for HwCounterGuard {
    fn increment(&self) -> Result<u64> {
        self.0
            .increment()
            .map_err(|e| LibSealError::Log(format!("sgx counter: {e}")))
    }
    fn attested(&self) -> Result<u64> {
        Ok(self.0.read())
    }
}

/// Journal codec sealing every record with an AEAD key.
///
/// Nonce layout (12 bytes): `epoch u32le | counter-low u32le | 4 random
/// bytes`. The **epoch** is a sealed generation number persisted in
/// `_libseal_meta` and bumped on every open, so nonce uniqueness across
/// restarts rests on the monotone epoch rather than on 4 random bytes
/// not colliding; the random tail only covers the window before the
/// fresh epoch's meta row is durable.
pub struct SealingCodec {
    aead: ChaCha20Poly1305,
    /// Nonce counter; unique per record within one codec lifetime.
    counter: std::sync::atomic::AtomicU64,
    /// Restart epoch mixed into every nonce.
    epoch: std::sync::atomic::AtomicU32,
}

impl SealingCodec {
    /// Creates a codec from a (sealing) key.
    pub fn new(key: [u8; 32]) -> Self {
        SealingCodec {
            aead: ChaCha20Poly1305::new(&key),
            counter: std::sync::atomic::AtomicU64::new(0),
            epoch: std::sync::atomic::AtomicU32::new(0),
        }
    }

    /// Rotate this many nonces before the 32-bit per-epoch space runs
    /// out, so `encode` never has to fail in practice.
    const ROTATE_AT: u64 = (u32::MAX as u64) - 1024;

    /// Sets the restart epoch (done once per open, after recovering the
    /// stored epoch from `_libseal_meta`).
    pub fn set_epoch(&self, epoch: u32) {
        self.epoch.store(epoch, std::sync::atomic::Ordering::SeqCst);
    }

    /// The current restart epoch.
    pub fn epoch(&self) -> u32 {
        self.epoch.load(std::sync::atomic::Ordering::SeqCst)
    }

    /// Whether the per-epoch nonce space is close enough to exhaustion
    /// that the owner should rotate to a fresh epoch now.
    pub fn needs_rotation(&self) -> bool {
        self.counter.load(std::sync::atomic::Ordering::SeqCst) >= Self::ROTATE_AT
    }

    /// Advances to a fresh epoch and resets the nonce counter,
    /// returning the new epoch. The owner persists the new epoch to
    /// `_libseal_meta` right away; journal append order then guarantees
    /// that any durable record sealed under the new epoch implies the
    /// epoch row itself is durable, exactly the invariant the open-time
    /// bump relies on.
    pub fn rotate_epoch(&self) -> u32 {
        let e = self
            .epoch
            .load(std::sync::atomic::Ordering::SeqCst)
            .wrapping_add(1);
        self.epoch.store(e, std::sync::atomic::Ordering::SeqCst);
        self.counter.store(0, std::sync::atomic::Ordering::SeqCst);
        e
    }
}

impl JournalCodec for SealingCodec {
    fn encode(&self, plain: &[u8]) -> libseal_sealdb::Result<Vec<u8>> {
        let n = self
            .counter
            .fetch_add(1, std::sync::atomic::Ordering::SeqCst);
        // Reached only if the owner failed to rotate in time: surface a
        // typed error the caller can handle instead of aborting the
        // enclave mid-request.
        if n >= u64::from(u32::MAX) {
            return Err(libseal_sealdb::DbError::Exec(
                "sealing nonce space exhausted; epoch rotation required".into(),
            ));
        }
        let e = self.epoch.load(std::sync::atomic::Ordering::SeqCst);
        let mut nonce = [0u8; 12];
        nonce[..4].copy_from_slice(&e.to_le_bytes());
        nonce[4..8].copy_from_slice(&(n as u32).to_le_bytes());
        // Random tail: covers nonce reuse in the crash window before
        // this epoch's meta row reaches the disk.
        let mut tail = [0u8; 4];
        plat::entropy::fill(&mut tail);
        nonce[8..].copy_from_slice(&tail);
        let mut out = nonce.to_vec();
        out.extend_from_slice(&self.aead.seal(&nonce, b"libseal-journal", plain));
        Ok(out)
    }

    fn decode(&self, stored: &[u8]) -> libseal_sealdb::Result<Vec<u8>> {
        if stored.len() < 12 + 16 {
            return Err(libseal_sealdb::DbError::Exec(
                "sealed journal record too short".into(),
            ));
        }
        let mut nonce = [0u8; 12];
        nonce.copy_from_slice(&stored[..12]);
        self.aead
            .open(&nonce, b"libseal-journal", &stored[12..])
            .map_err(|_| {
                libseal_sealdb::DbError::Exec("sealed journal record failed to open".into())
            })
    }
}

/// A shared handle to a [`SealingCodec`]: the journal owns one clone
/// while the [`AuditLog`] keeps another to manage the restart epoch.
struct SharedCodec(Arc<SealingCodec>);

impl JournalCodec for SharedCodec {
    fn encode(&self, plain: &[u8]) -> libseal_sealdb::Result<Vec<u8>> {
        self.0.encode(plain)
    }
    fn decode(&self, stored: &[u8]) -> libseal_sealdb::Result<Vec<u8>> {
        self.0.decode(stored)
    }
}

/// Schema of one audited table: its name and the column(s) forming the
/// primary key used to associate chain rows with data rows.
#[derive(Clone, Debug)]
pub struct TableSpec {
    /// Table name.
    pub name: &'static str,
    /// Primary-key columns (usually `time` plus discriminators).
    pub key_cols: &'static [&'static str],
}

/// What [`AuditLog::open`] recovery found and did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Bytes of torn journal tail dropped by salvage (crash
    /// mid-append), 0 on a clean open.
    pub salvaged_bytes: u64,
    /// Chain entries past the last signed head that were re-signed
    /// (rolled forward): they are authentic — they came out of the
    /// sealed journal — their head signature just never hit the disk.
    pub rolled_forward: u64,
    /// Counter value the durable log accounts for.
    pub durable_counter: u64,
    /// Counter value the rollback guard attests to.
    pub attested_counter: u64,
    /// Whether the guard was ahead of the durable log by exactly one —
    /// the legal crash window (increment acknowledged, flush lost).
    pub crash_window: bool,
}

/// How appends reach a signed, counter-bound head.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum CommitMode {
    /// Every append binds the rollback counter and signs the head
    /// itself (one counter step and one signature per entry).
    #[default]
    Immediate,
    /// Appends only extend the hash chain; a group-commit sealer calls
    /// [`AuditLog::seal`] once per batch, so the whole batch shares a
    /// single counter step and head signature.
    Staged,
}

/// Parsed, signature-verified contents of the `head` meta row.
struct SignedHead {
    head: [u8; 32],
    seq: u64,
    counter: u64,
    clock: u64,
}

/// The enclave-resident audit log.
pub struct AuditLog {
    db: Database,
    signer: SigningKey,
    guard: Arc<dyn RollbackGuard>,
    tables: Vec<TableSpec>,
    head: [u8; 32],
    seq: u64,
    /// Logical timestamp handed to SSMs (§5.1: "time being a logical
    /// timestamp maintained in the enclave").
    clock: u64,
    /// Rollback-counter value bound into the last signed head.
    counter: u64,
    disk_backed: bool,
    recovery: RecoveryReport,
    /// Shared handle to the journal's sealing codec, kept to manage
    /// proactive nonce-epoch rotation.
    codec: Arc<SealingCodec>,
    mode: CommitMode,
    /// Entries staged since the last seal: the chain extends past the
    /// signed head until [`AuditLog::seal`] catches it up.
    dirty: bool,
}

const CHAIN_SCHEMA: &str = "CREATE TABLE IF NOT EXISTS _libseal_chain(
    seq INTEGER, tbl TEXT, pk TEXT, payload TEXT, hash BLOB)";
const META_SCHEMA: &str = "CREATE TABLE IF NOT EXISTS _libseal_meta(k TEXT, v TEXT)";

impl AuditLog {
    /// Opens (or creates) an audit log.
    ///
    /// `schema_sql` contains the SSM's CREATE statements; `tables`
    /// names the audited tables and their keys; `signer` is the
    /// enclave's log-signing identity.
    ///
    /// # Errors
    ///
    /// Database and I/O failures; a failed integrity check on reopen.
    pub fn open(
        backing: LogBacking,
        seal_key: [u8; 32],
        signer: SigningKey,
        guard: Box<dyn RollbackGuard>,
        schema_sql: &str,
        tables: Vec<TableSpec>,
    ) -> Result<AuditLog> {
        let codec = Arc::new(SealingCodec::new(seal_key));
        let (mut db, disk_backed) = match backing {
            LogBacking::Memory => (Database::new(), false),
            LogBacking::Disk(path) => (
                Database::open(
                    &path,
                    Box::new(SharedCodec(Arc::clone(&codec))),
                    SyncPolicy::Manual,
                )
                .map_err(LibSealError::Db)?,
                true,
            ),
            LogBacking::DiskNoSync(path) => (
                Database::open(
                    &path,
                    Box::new(SharedCodec(Arc::clone(&codec))),
                    SyncPolicy::Never,
                )
                .map_err(LibSealError::Db)?,
                true,
            ),
        };
        // Bump the sealed restart epoch before this process seals
        // anything: every nonce of this run is distinct from every
        // nonce of every previous run.
        let stored_epoch = db
            .query("SELECT v FROM _libseal_meta WHERE k = 'epoch'", &[])
            .ok()
            .and_then(|r| match r.scalar() {
                Some(Value::Text(t)) => t.parse::<u32>().ok(),
                _ => None,
            })
            .unwrap_or(0);
        codec.set_epoch(stored_epoch + 1);
        db.execute(CHAIN_SCHEMA).map_err(LibSealError::Db)?;
        db.execute(META_SCHEMA).map_err(LibSealError::Db)?;
        for stmt in split_statements(schema_sql) {
            match db.execute(&stmt) {
                Ok(_) => {}
                // A replayed journal already re-created the schema.
                Err(libseal_sealdb::DbError::Schema(m)) if m.contains("already exists") => {}
                Err(e) => return Err(LibSealError::Db(e)),
            }
        }
        // Index every audited table on its key columns: invariant
        // queries correlate on them (`u.repo = a.repo`, `s.doc =
        // d.doc`, ...) and chain verification looks rows up by them,
        // so these indexes are what keeps per-pair checking and
        // verify()/trim() near-linear in the log size.
        for spec in &tables {
            for col in spec.key_cols {
                db.execute(&format!(
                    "CREATE INDEX IF NOT EXISTS libseal_idx_{}_{col} ON {}({col})",
                    spec.name, spec.name
                ))
                .map_err(LibSealError::Db)?;
            }
        }
        let mut log = AuditLog {
            db,
            signer,
            guard: Arc::from(guard),
            tables,
            head: [0u8; 32],
            seq: 0,
            clock: 0,
            counter: 0,
            disk_backed,
            recovery: RecoveryReport::default(),
            codec,
            mode: CommitMode::Immediate,
            dirty: false,
        };
        if log.disk_backed {
            // Persist the bumped epoch before anything else this run
            // seals (one atomic statement; the row is never deleted):
            // the journal is append-ordered, so the epoch row is
            // durable before any record relying on it.
            let epoch = log.codec.epoch();
            log.put_meta("epoch", &epoch.to_string())?;
        }
        log.recover_state()?;
        if log.disk_backed {
            log.flush()?;
        }
        Ok(log)
    }

    /// Writes a `_libseal_meta` row with a single journaled statement
    /// (UPDATE when present, INSERT when absent), so a crash can never
    /// leave the key deleted-but-not-rewritten.
    fn put_meta(&mut self, k: &str, v: &str) -> Result<()> {
        let present = self
            .db
            .query(
                "SELECT v FROM _libseal_meta WHERE k = ?",
                &[Value::Text(k.into())],
            )
            .map_err(LibSealError::Db)?;
        if present.rows.is_empty() {
            self.db
                .execute_with(
                    "INSERT INTO _libseal_meta VALUES (?, ?)",
                    &[Value::Text(k.into()), Value::Text(v.into())],
                )
                .map_err(LibSealError::Db)?;
        } else {
            self.db
                .execute_with(
                    "UPDATE _libseal_meta SET v = ? WHERE k = ?",
                    &[Value::Text(v.into()), Value::Text(k.into())],
                )
                .map_err(LibSealError::Db)?;
        }
        Ok(())
    }

    fn recover_state(&mut self) -> Result<()> {
        log_metrics().recoveries.inc();
        // Rebuild head/seq/clock from the chain table (after journal
        // replay, which may have salvaged a torn tail).
        if let Some(s) = self.db.salvage_report() {
            self.recovery.salvaged_bytes = s.lost_bytes;
            log_metrics().salvaged_bytes.add(s.lost_bytes);
        }
        let r = self
            .db
            .query("SELECT MAX(seq), COUNT(*) FROM _libseal_chain", &[])
            .map_err(LibSealError::Db)?;
        let max_seq = match r.rows.first().and_then(|row| row.first()) {
            Some(Value::Integer(i)) => *i as u64,
            _ => 0,
        };
        self.seq = max_seq;
        // The signed head row: "head_hex:seq:counter:clock:sig_hex".
        let head_meta = self.signed_head_row()?;
        // Restore the logical clock from the signed head metadata: after
        // trimming the chain is renumbered, so seq alone would make the
        // clock regress below surviving rows' timestamps.
        let stored_clock = head_meta.as_ref().map(|m| m.clock).unwrap_or(0);
        self.clock = stored_clock.max(max_seq);
        if max_seq > 0 {
            // Walk the chain: hashes must link and data rows must match.
            let (head, _) = self.verify_chain_rows()?;
            self.head = head;
        }
        // Reconcile the chain against the signed head. The sealed
        // journal authenticates every chain row, so rows past the
        // signed head are a legal crash artefact (the appends landed,
        // the re-signed head did not): roll them FORWARD by re-signing.
        // A signed head claiming *more* than the chain holds is the
        // opposite — durable, signed history has vanished — and that is
        // a rollback.
        let (meta_seq, meta_counter) = match &head_meta {
            Some(m) => {
                if m.seq > max_seq {
                    log_metrics().rollback_alarms.inc();
                    return Err(LibSealError::Tampered(format!(
                        "rollback detected: signed head covers {} entries, log has {max_seq}",
                        m.seq
                    )));
                }
                (m.seq, m.counter)
            }
            // No signed head. Legal only as the crash window of the
            // very first appends (chain rows durable, first head-sign
            // statement torn off the tail); the sealed journal still
            // vouches for the rows.
            None => (0, 0),
        };
        // The durable log accounts for exactly the counter value bound
        // into its last signed head: one seal covers every entry staged
        // since the previous one (a whole group-commit batch shares a
        // single counter step), so rows past the signed head carry at
        // most the one in-flight increment a crash between
        // counter-advance and head-flush legally loses.
        let durable_counter = meta_counter;
        let rolled_forward = max_seq - meta_seq;
        // Rollback check: the guard must not attest past the durable
        // state by more than that single lost batch increment.
        let attested = self.guard.attested()?;
        if attested > durable_counter + 1 {
            log_metrics().rollback_alarms.inc();
            return Err(LibSealError::Tampered(format!(
                "rollback detected: counter attests {attested}, durable log accounts for \
                 {durable_counter}"
            )));
        }
        self.recovery.durable_counter = durable_counter;
        self.recovery.attested_counter = attested;
        self.recovery.crash_window = attested == durable_counter + 1;
        self.recovery.rolled_forward = rolled_forward;
        self.counter = durable_counter.max(attested);
        if max_seq > 0 && (rolled_forward > 0 || self.recovery.crash_window) {
            // Re-sign the authentic recovered head (and absorb the
            // crash-window increment, if any, so counter and log agree
            // again going forward).
            self.sign_head(self.counter)?;
            if self.disk_backed {
                self.flush()?;
            }
        }
        Ok(())
    }

    /// Parses the signed-head meta row, verifying its signature.
    ///
    /// Returns `Ok(None)` for an empty (never-signed) log.
    fn signed_head_row(&self) -> Result<Option<SignedHead>> {
        let meta = self
            .db
            .query("SELECT v FROM _libseal_meta WHERE k = 'head'", &[])
            .map_err(LibSealError::Db)?;
        let Some(Value::Text(m)) = meta.scalar() else {
            return Ok(None);
        };
        let parts: Vec<&str> = m.split(':').collect();
        if parts.len() != 5 {
            return Err(LibSealError::Tampered("bad head metadata".into()));
        }
        let head_bytes =
            unhex(parts[0]).ok_or_else(|| LibSealError::Tampered("bad head hex".into()))?;
        let head: [u8; 32] = head_bytes
            .try_into()
            .map_err(|_| LibSealError::Tampered("bad head length".into()))?;
        let seq: u64 = parts[1]
            .parse()
            .map_err(|_| LibSealError::Tampered("bad head seq".into()))?;
        let counter: u64 = parts[2]
            .parse()
            .map_err(|_| LibSealError::Tampered("bad head counter".into()))?;
        let clock: u64 = parts[3]
            .parse()
            .map_err(|_| LibSealError::Tampered("bad head clock".into()))?;
        let sig_bytes =
            unhex(parts[4]).ok_or_else(|| LibSealError::Tampered("bad signature hex".into()))?;
        let sig: [u8; 64] = sig_bytes
            .try_into()
            .map_err(|_| LibSealError::Tampered("bad signature length".into()))?;
        self.signer
            .verifying_key()
            .verify(&head_payload(&head, seq, counter, clock), &sig)
            .map_err(|_| LibSealError::Tampered("head signature invalid".into()))?;
        Ok(Some(SignedHead {
            head,
            seq,
            counter,
            clock,
        }))
    }

    /// What recovery found on the last [`AuditLog::open`].
    pub fn recovery_report(&self) -> RecoveryReport {
        self.recovery
    }

    /// The rollback-counter value bound into the current signed head.
    pub fn counter(&self) -> u64 {
        self.counter
    }

    /// The next logical timestamp (monotone per log).
    pub fn next_time(&mut self) -> u64 {
        self.clock += 1;
        self.clock
    }

    /// Current logical time.
    pub fn now(&self) -> u64 {
        self.clock
    }

    /// Appends one tuple to `table`, extending the hash chain. In
    /// [`CommitMode::Immediate`] the new head is signed and the
    /// rollback counter advanced before returning; in
    /// [`CommitMode::Staged`] the entry stays staged until a sealer
    /// calls [`AuditLog::seal`] for the whole batch.
    ///
    /// # Errors
    ///
    /// Unknown table, database failures, or counter failures.
    pub fn append(&mut self, table: &str, values: &[Value]) -> Result<()> {
        let started = std::time::Instant::now();
        if self.disk_backed && self.codec.needs_rotation() {
            self.rotate_epoch()?;
        }
        let spec = self
            .tables
            .iter()
            .find(|t| t.name.eq_ignore_ascii_case(table))
            .ok_or_else(|| LibSealError::Log(format!("not an audited table: {table}")))?
            .clone();

        plat::failpoint::check("core::log::append")
            .map_err(|e| LibSealError::Log(e.to_string()))?;
        let placeholders = vec!["?"; values.len()].join(", ");
        self.db
            .execute_with(
                &format!("INSERT INTO {table} VALUES ({placeholders})"),
                values,
            )
            .map_err(LibSealError::Db)?;

        let payload = render_payload(table, values);
        let key = render_key(&spec, table, values, &self.db)?;
        let mut h = Sha256::new();
        h.update(&self.head);
        h.update(payload.as_bytes());
        let new_hash = h.finalize();
        plat::failpoint::check("core::log::append::chain")
            .map_err(|e| LibSealError::Log(e.to_string()))?;
        self.seq += 1;
        self.db
            .execute_with(
                "INSERT INTO _libseal_chain VALUES (?, ?, ?, ?, ?)",
                &[
                    Value::Integer(self.seq as i64),
                    Value::Text(table.to_string()),
                    Value::Text(key),
                    Value::Text(payload),
                    Value::Blob(new_hash.to_vec()),
                ],
            )
            .map_err(LibSealError::Db)?;
        self.head = new_hash;
        self.dirty = true;

        if self.mode == CommitMode::Immediate {
            self.seal()?;
        }
        log_metrics().append_ns.record_duration(started.elapsed());
        log_metrics().appends.inc();
        Ok(())
    }

    /// Binds the rollback counter and signs the chain head over every
    /// entry staged since the last seal. One call covers a whole
    /// batch — this is the group-commit amortisation point. No-op when
    /// nothing is staged (safe to call after a concurrent trim already
    /// re-signed the head).
    ///
    /// # Errors
    ///
    /// Counter or database failures; the log stays dirty so the seal
    /// can be retried.
    pub fn seal(&mut self) -> Result<()> {
        if !self.dirty {
            return Ok(());
        }
        plat::failpoint::check("core::log::append::counter")
            .map_err(|e| LibSealError::Log(e.to_string()))?;
        let counter = self.guard.increment()?;
        log_metrics().counter_binds.inc();
        self.sign_head(counter)?;
        self.dirty = false;
        Ok(())
    }

    /// A shared handle to the rollback guard, letting the group-commit
    /// sealer run the counter round *outside* the audit-state lock so
    /// writers keep staging the next batch while it is in flight.
    pub fn guard_handle(&self) -> Arc<dyn RollbackGuard> {
        Arc::clone(&self.guard)
    }

    /// Seals with an already-bound counter value: signs the current
    /// head over everything staged. The caller obtained `counter` from
    /// the [`AuditLog::guard_handle`] while NOT holding the audit lock,
    /// so entries appended during the counter round are simply covered
    /// by this signature too. No-op when clean — a concurrent trim
    /// already re-signed the head, and recovery's legal "+1 counter
    /// step" window absorbs the spare increment.
    ///
    /// # Errors
    ///
    /// Database failures; the log stays dirty so the seal can be
    /// retried.
    pub fn seal_bound(&mut self, counter: u64) -> Result<()> {
        log_metrics().counter_binds.inc();
        if !self.dirty {
            return Ok(());
        }
        // A trim interleaved with the counter round may have bound a
        // later value already; the signed head's counter must never
        // step backwards.
        self.sign_head(counter.max(self.counter))?;
        self.dirty = false;
        Ok(())
    }

    /// Switches how appends reach a signed head (see [`CommitMode`]).
    pub fn set_commit_mode(&mut self, mode: CommitMode) {
        self.mode = mode;
    }

    /// The active commit mode.
    pub fn commit_mode(&self) -> CommitMode {
        self.mode
    }

    /// Whether entries are staged past the last signed head.
    pub fn is_dirty(&self) -> bool {
        self.dirty
    }

    /// Rotates the sealing codec to a fresh nonce epoch and persists it
    /// before anything else is sealed under the new epoch.
    fn rotate_epoch(&mut self) -> Result<()> {
        let e = self.codec.rotate_epoch();
        self.put_meta("epoch", &e.to_string())?;
        log_metrics().epoch_rotations.inc();
        Ok(())
    }

    fn sign_head(&mut self, counter: u64) -> Result<()> {
        plat::failpoint::check("core::log::append::sign")
            .map_err(|e| LibSealError::Log(e.to_string()))?;
        let sig = self
            .signer
            .sign(&head_payload(&self.head, self.seq, counter, self.clock));
        // Head, metadata and signature travel in ONE row written by one
        // journaled statement: there is no crash point at which the
        // head exists unsigned or the signature refers to a stale head.
        self.put_meta(
            "head",
            &format!(
                "{}:{}:{}:{}:{}",
                hex(&self.head),
                self.seq,
                counter,
                self.clock,
                hex(&sig)
            ),
        )?;
        self.counter = counter;
        log_metrics().head_signs.inc();
        Ok(())
    }

    /// Forces journalled records to stable storage; LibSEAL calls this
    /// once per request/response pair (§5.1).
    ///
    /// # Errors
    ///
    /// I/O failures.
    pub fn flush(&mut self) -> Result<()> {
        plat::failpoint::check("core::log::flush").map_err(|e| LibSealError::Log(e.to_string()))?;
        let started = std::time::Instant::now();
        let r = self.db.sync_journal().map_err(LibSealError::Db);
        if r.is_ok() {
            log_metrics().flush_ns.record_duration(started.elapsed());
        }
        r
    }

    /// Runs a read-only query against the log (invariant checking).
    ///
    /// # Errors
    ///
    /// Database failures.
    pub fn query(&self, sql: &str, params: &[Value]) -> Result<libseal_sealdb::QueryResult> {
        self.db.query(sql, params).map_err(LibSealError::Db)
    }

    /// Executes arbitrary SQL against the log (SSM state bookkeeping).
    ///
    /// # Errors
    ///
    /// Database failures.
    pub fn execute_with(
        &mut self,
        sql: &str,
        params: &[Value],
    ) -> Result<libseal_sealdb::QueryResult> {
        self.db.execute_with(sql, params).map_err(LibSealError::Db)
    }

    /// Verifies the hash chain, the head signature, and that chain rows
    /// and data rows agree.
    ///
    /// # Errors
    ///
    /// [`LibSealError::Tampered`] describing the first inconsistency.
    pub fn verify(&self) -> Result<()> {
        let started = std::time::Instant::now();
        let (head, last_seq) = self.verify_chain_rows()?;
        // Verify the signed head against the recomputed chain head.
        match self.signed_head_row()? {
            Some(signed) => {
                if signed.head != head {
                    return Err(LibSealError::Tampered(
                        "chain head does not match signed head".into(),
                    ));
                }
                if signed.seq != last_seq {
                    return Err(LibSealError::Tampered("head seq mismatch".into()));
                }
            }
            None if last_seq == 0 => {} // Empty log: nothing signed yet.
            None => return Err(LibSealError::Tampered("head metadata missing".into())),
        }
        log_metrics().verify_ns.record_duration(started.elapsed());
        Ok(())
    }

    /// Walks the whole chain: hashes must link, sequence numbers must
    /// increase, and every chain row's data row must still exist and
    /// match. Returns the recomputed head and final sequence number.
    fn verify_chain_rows(&self) -> Result<([u8; 32], u64)> {
        let rows = self
            .db
            .query(
                "SELECT seq, tbl, pk, payload, hash FROM _libseal_chain ORDER BY seq",
                &[],
            )
            .map_err(LibSealError::Db)?;
        let mut head = [0u8; 32];
        let mut last_seq = 0i64;
        for row in &rows.rows {
            let (Value::Integer(seq), Value::Text(payload), Value::Blob(hash)) =
                (&row[0], &row[3], &row[4])
            else {
                return Err(LibSealError::Tampered("chain row malformed".into()));
            };
            if *seq <= last_seq {
                return Err(LibSealError::Tampered(
                    "chain sequence not increasing".into(),
                ));
            }
            last_seq = *seq;
            let mut h = Sha256::new();
            h.update(&head);
            h.update(payload.as_bytes());
            let expect = h.finalize();
            if expect.as_slice() != hash.as_slice() {
                return Err(LibSealError::Tampered(format!(
                    "hash mismatch at seq {seq}"
                )));
            }
            head.copy_from_slice(&expect);
            // Data row must still exist and match the payload.
            let (Value::Text(tbl), Value::Text(key)) = (&row[1], &row[2]) else {
                return Err(LibSealError::Tampered("chain row malformed".into()));
            };
            self.check_data_row(tbl, key, payload)?;
        }
        Ok((head, last_seq as u64))
    }

    fn check_data_row(&self, tbl: &str, key: &str, payload: &str) -> Result<()> {
        let spec = self
            .tables
            .iter()
            .find(|t| t.name.eq_ignore_ascii_case(tbl))
            .ok_or_else(|| LibSealError::Tampered(format!("chain names unknown table {tbl}")))?;
        // Reconstruct the key predicate.
        let key_vals: Vec<&str> = key.split('\u{1f}').collect();
        if key_vals.len() != spec.key_cols.len() {
            return Err(LibSealError::Tampered("chain key malformed".into()));
        }
        // Typed equality (`col = ?` with the key text coerced through
        // the column's affinity) so the predicate is index-probeable.
        // Keys render via `Value::to_string`, which round-trips through
        // affinity coercion for everything except BLOB columns — those
        // keep the textual `'' || col` comparison.
        let t =
            self.db.catalog().table(tbl).ok_or_else(|| {
                LibSealError::Tampered(format!("chain names unknown table {tbl}"))
            })?;
        let mut preds = Vec::with_capacity(spec.key_cols.len());
        let mut params = Vec::with_capacity(spec.key_cols.len());
        for (c, raw) in spec.key_cols.iter().zip(&key_vals) {
            let affinity = t
                .column_index(c)
                .map(|i| t.columns[i].affinity)
                .ok_or_else(|| LibSealError::Tampered(format!("{tbl} lost key column {c}")))?;
            let text = Value::Text((*raw).to_string());
            if matches!(affinity, libseal_sealdb::value::Affinity::Blob) {
                preds.push(format!("('' || {c}) = ?"));
                params.push(text);
            } else {
                preds.push(format!("{c} = ?"));
                params.push(affinity.apply(text));
            }
        }
        let sql = format!("SELECT * FROM {tbl} WHERE {}", preds.join(" AND "));
        let rows = self.db.query(&sql, &params).map_err(LibSealError::Db)?;
        for row in &rows.rows {
            if render_payload(tbl, row) == payload {
                return Ok(());
            }
        }
        Err(LibSealError::Tampered(format!(
            "data row missing or modified for {tbl} key {key:?}"
        )))
    }

    /// Runs the SSM's trimming queries, then rebuilds the chain over
    /// the surviving entries and re-signs (§5.1, "Log trimming").
    ///
    /// # Errors
    ///
    /// Database or counter failures.
    pub fn trim(&mut self, trim_queries: &[&str]) -> Result<()> {
        let started = std::time::Instant::now();
        for q in trim_queries {
            self.db.execute(q).map_err(LibSealError::Db)?;
        }
        // Drop chain rows whose data row no longer exists.
        let chain = self
            .db
            .query(
                "SELECT seq, tbl, pk, payload FROM _libseal_chain ORDER BY seq",
                &[],
            )
            .map_err(LibSealError::Db)?;
        let mut survivors: Vec<(String, String, String)> = Vec::new();
        for row in &chain.rows {
            let (Value::Text(tbl), Value::Text(key), Value::Text(payload)) =
                (&row[1], &row[2], &row[3])
            else {
                continue;
            };
            if self.check_data_row(tbl, key, payload).is_ok() {
                survivors.push((tbl.clone(), key.clone(), payload.clone()));
            }
        }
        // Rebuild the chain with fresh sequence numbers and hashes.
        self.db
            .execute("DELETE FROM _libseal_chain")
            .map_err(LibSealError::Db)?;
        self.head = [0u8; 32];
        self.seq = 0;
        for (tbl, key, payload) in survivors {
            let mut h = Sha256::new();
            h.update(&self.head);
            h.update(payload.as_bytes());
            let new_hash = h.finalize();
            self.seq += 1;
            self.db
                .execute_with(
                    "INSERT INTO _libseal_chain VALUES (?, ?, ?, ?, ?)",
                    &[
                        Value::Integer(self.seq as i64),
                        Value::Text(tbl),
                        Value::Text(key),
                        Value::Text(payload),
                        Value::Blob(new_hash.to_vec()),
                    ],
                )
                .map_err(LibSealError::Db)?;
            self.head = new_hash;
        }
        let counter = self.guard.increment()?;
        log_metrics().counter_binds.inc();
        self.sign_head(counter)?;
        // The fresh signature covers the whole rebuilt chain, including
        // anything that was staged before the trim.
        self.dirty = false;
        // Compact the journal so trimming actually reclaims disk.
        if self.disk_backed {
            self.db.compact().map_err(LibSealError::Db)?;
            self.db.sync_journal().map_err(LibSealError::Db)?;
        }
        log_metrics().trim_ns.record_duration(started.elapsed());
        Ok(())
    }

    /// Approximate log size in bytes (data + chain).
    pub fn size_bytes(&self) -> usize {
        self.db.size_bytes()
    }

    /// On-disk journal size in bytes.
    pub fn journal_size_bytes(&self) -> u64 {
        self.db.journal_size_bytes()
    }

    /// Number of chain entries.
    pub fn entries(&self) -> u64 {
        self.seq
    }

    /// Current chain tip as `(seq, clock, head)`. The logical clock is
    /// the stable coordinate across trims (trimming renumbers `seq`
    /// but never rewinds `clock`), so fleet-level epoch checkpoints
    /// key their monotonicity argument on it.
    pub fn chain_tip(&self) -> (u64, u64, [u8; 32]) {
        (self.seq, self.clock, self.head)
    }

    /// The signer's public key (clients verify exported proofs).
    pub fn verifying_key(&self) -> VerifyingKey {
        self.signer.verifying_key()
    }

    /// Direct database access for tests and tamper-injection.
    pub fn db_mut(&mut self) -> &mut Database {
        &mut self.db
    }
}

fn head_payload(head: &[u8; 32], seq: u64, counter: u64, clock: u64) -> Vec<u8> {
    let mut p = b"libseal-head:".to_vec();
    p.extend_from_slice(head);
    p.extend_from_slice(&seq.to_le_bytes());
    p.extend_from_slice(&counter.to_le_bytes());
    p.extend_from_slice(&clock.to_le_bytes());
    p
}

fn render_payload(table: &str, values: &[Value]) -> String {
    let mut out = String::with_capacity(32);
    out.push_str(table);
    for v in values {
        out.push('\u{1f}');
        out.push_str(&v.group_key());
    }
    out
}

fn render_key(spec: &TableSpec, table: &str, values: &[Value], db: &Database) -> Result<String> {
    // Map key column names to positions via the catalog.
    let t = db
        .catalog()
        .table(table)
        .ok_or_else(|| LibSealError::Log(format!("no such table: {table}")))?;
    let mut parts = Vec::with_capacity(spec.key_cols.len());
    for c in spec.key_cols {
        let i = t
            .column_index(c)
            .ok_or_else(|| LibSealError::Log(format!("{table} has no key column {c}")))?;
        let v = values
            .get(i)
            .ok_or_else(|| LibSealError::Log("tuple arity mismatch".into()))?;
        parts.push(v.to_string());
    }
    Ok(parts.join("\u{1f}"))
}

fn split_statements(sql: &str) -> Vec<String> {
    // Views may contain semicolons only as statement separators in our
    // dialect, so a simple split is safe here.
    sql.split(';')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(str::to_string)
        .collect()
}

fn hex(b: &[u8]) -> String {
    b.iter().map(|x| format!("{x:02x}")).collect()
}

fn unhex(s: &str) -> Option<Vec<u8>> {
    if !s.len().is_multiple_of(2) {
        return None;
    }
    (0..s.len())
        .step_by(2)
        .map(|i| u8::from_str_radix(&s[i..i + 2], 16).ok())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nonce_exhaustion_is_a_typed_error_and_rotation_recovers() {
        let codec = SealingCodec::new([9u8; 32]);
        codec.set_epoch(3);
        codec
            .counter
            .store(u64::from(u32::MAX), std::sync::atomic::Ordering::SeqCst);
        assert!(codec.needs_rotation());
        let err = JournalCodec::encode(&codec, b"payload").unwrap_err();
        assert!(err.to_string().contains("epoch rotation"), "{err}");

        assert_eq!(codec.rotate_epoch(), 4);
        assert!(!codec.needs_rotation());
        let sealed = JournalCodec::encode(&codec, b"payload").unwrap();
        assert_eq!(JournalCodec::decode(&codec, &sealed).unwrap(), b"payload");
    }

    #[test]
    fn rotation_threshold_leaves_headroom_before_the_hard_limit() {
        let codec = SealingCodec::new([9u8; 32]);
        codec
            .counter
            .store(SealingCodec::ROTATE_AT, std::sync::atomic::Ordering::SeqCst);
        // Rotation is due, but encode still succeeds inside the headroom
        // window so in-flight appends can finish before the owner rotates.
        assert!(codec.needs_rotation());
        assert!(JournalCodec::encode(&codec, b"x").is_ok());
    }
}

//! The Git service-specific module (§3.1, §5.1, §6.2).
//!
//! Protocol understood (a simplified smart-HTTP dialect served by
//! `libseal-services`):
//!
//! - fetch: `GET /repo/<name>/info/refs?service=git-upload-pack`; the
//!   response body advertises refs, one per line: `<cid> <refname>`.
//! - push: `POST /repo/<name>/git-receive-pack`; the request body
//!   carries commands, one per line: `<old-cid> <new-cid> <refname>`
//!   (an all-zero new cid deletes the ref).
//!
//! The audit schema, both invariants and both trimming queries are
//! taken **verbatim** from the paper.

use libseal_httpx::http;
use libseal_sealdb::Value;

use super::{DeltaSpec, Invariant, ServiceModule, SourceRule};
use crate::log::{AuditLog, TableSpec};
use crate::Result;

/// The all-zero commit id that deletes a ref.
pub const ZERO_CID: &str = "0000000000000000000000000000000000000000";

/// Git SSM.
pub struct GitModule;

/// The paper's Git audit schema (§3.1).
pub const GIT_SCHEMA: &str = "
CREATE TABLE updates(time INTEGER, repo TEXT, branch TEXT, cid TEXT, type TEXT);
CREATE TABLE advertisements(time INTEGER, repo TEXT, branch TEXT, cid TEXT);
CREATE VIEW branchcnt AS
SELECT DISTINCT a.time,a.repo,COUNT(u.branch) AS cnt
FROM advertisements a
JOIN updates u ON u.time < a.time AND u.repo = a.repo
WHERE u.type != 'delete' AND u.time = (SELECT MAX(time)
    FROM updates WHERE branch = u.branch
    AND repo = u.repo AND time < a.time) GROUP BY a.time,a.repo,a.branch;
";

/// Soundness (§6.2, verbatim): every advertisement matches the most
/// recent update for its (repo, branch).
pub const GIT_SOUNDNESS: &str = "SELECT * FROM advertisements a WHERE cid != (
SELECT u.cid FROM updates u WHERE u.repo = a.repo AND
u.branch = a.branch AND u.time < a.time ORDER BY
u.time DESC LIMIT 1)";

/// Completeness (§1, verbatim): every advertisement lists all live
/// branches.
pub const GIT_COMPLETENESS: &str = "SELECT time, repo FROM advertisements
NATURAL JOIN branchcnt
GROUP BY time, repo, cnt HAVING COUNT(branch) != cnt";

/// [`GIT_SOUNDNESS`] restricted to one advertisement time.
pub const GIT_SOUNDNESS_DELTA: &str = "SELECT * FROM advertisements a
WHERE a.time = ?1 AND cid != (
SELECT u.cid FROM updates u WHERE u.repo = a.repo AND
u.branch = a.branch AND u.time < a.time ORDER BY
u.time DESC LIMIT 1)";

/// [`GIT_COMPLETENESS`] restricted to one advertisement time.
///
/// The full query goes through the `branchcnt` schema view, which
/// joins *all* advertisements against *all* updates — evaluating it
/// per partition would re-materialize the whole view and cost O(log)
/// each time. This delta inlines the per-partition live-branch count
/// as correlated subqueries over indexed columns instead: advertised
/// branches at (time, repo) vs the repo's live branches (latest
/// non-delete update per branch before the advertisement). The final
/// `> 0` guard mirrors the view's inner JOIN, which silently skips
/// advertisements of repos with no live branches.
pub const GIT_COMPLETENESS_DELTA: &str = "SELECT DISTINCT a.time, a.repo
FROM advertisements a
WHERE a.time = ?1
AND (SELECT COUNT(branch) FROM advertisements x
     WHERE x.time = a.time AND x.repo = a.repo)
 != (SELECT COUNT(u.branch) FROM updates u
     WHERE u.repo = a.repo AND u.time < a.time AND u.type != 'delete'
     AND u.time = (SELECT MAX(time) FROM updates
                   WHERE branch = u.branch AND repo = u.repo
                   AND time < a.time))
AND (SELECT COUNT(u.branch) FROM updates u
     WHERE u.repo = a.repo AND u.time < a.time AND u.type != 'delete'
     AND u.time = (SELECT MAX(time) FROM updates
                   WHERE branch = u.branch AND repo = u.repo
                   AND time < a.time)) > 0";

// Both invariants only compare an advertisement against updates with
// strictly earlier times, and logical time is monotone: an update
// appended at time T can only influence advertisements that do not
// exist yet. Inserts into `updates` therefore dirty nothing.
const GIT_SOURCES: &[SourceRule] = &[
    SourceRule {
        table: "advertisements",
        partition_col: Some("time"),
        rescan: None,
    },
    SourceRule {
        table: "updates",
        partition_col: None,
        rescan: None,
    },
];

const INVARIANTS: &[Invariant] = &[
    Invariant {
        name: "git-soundness",
        sql: GIT_SOUNDNESS,
        delta: Some(DeltaSpec {
            delta_sql: GIT_SOUNDNESS_DELTA,
            partition_col: 0,
            sources: GIT_SOURCES,
        }),
    },
    Invariant {
        name: "git-completeness",
        sql: GIT_COMPLETENESS,
        delta: Some(DeltaSpec {
            delta_sql: GIT_COMPLETENESS_DELTA,
            partition_col: 0,
            sources: GIT_SOURCES,
        }),
    },
];

/// Trimming queries (§5.1, verbatim).
const TRIM: &[&str] = &[
    "DELETE FROM advertisements",
    "DELETE FROM updates WHERE time NOT IN
(SELECT MAX(time) FROM updates GROUP BY repo, branch)",
];

impl GitModule {
    /// Extracts the repository name from a smart-HTTP path like
    /// `/repo/<name>/info/refs` or `/repo/<name>/git-receive-pack`.
    fn repo_from_path(path: &str) -> Option<&str> {
        let rest = path.strip_prefix("/repo/")?;
        let end = rest.find('/')?;
        Some(&rest[..end])
    }
}

impl ServiceModule for GitModule {
    fn name(&self) -> &'static str {
        "git"
    }

    fn schema_sql(&self) -> &'static str {
        GIT_SCHEMA
    }

    fn tables(&self) -> Vec<TableSpec> {
        vec![
            TableSpec {
                name: "updates",
                key_cols: &["time", "repo", "branch"],
            },
            TableSpec {
                name: "advertisements",
                key_cols: &["time", "repo", "branch"],
            },
        ]
    }

    fn invariants(&self) -> &'static [Invariant] {
        INVARIANTS
    }

    fn trim_queries(&self) -> &'static [&'static str] {
        TRIM
    }

    fn log_pair(&self, req: &[u8], rsp: &[u8], log: &mut AuditLog) -> Result<usize> {
        let Ok((request, _)) = http::parse_request(req) else {
            return Ok(0);
        };
        let mut logged = 0usize;

        if request.method == "POST" && request.path().ends_with("/git-receive-pack") {
            let Some(repo) = Self::repo_from_path(request.path()) else {
                return Ok(0);
            };
            let repo = repo.to_string();
            let body = String::from_utf8_lossy(&request.body).to_string();
            let time = log.next_time() as i64;
            for line in body.lines() {
                let mut parts = line.split_whitespace();
                let (Some(_old), Some(new), Some(refname)) =
                    (parts.next(), parts.next(), parts.next())
                else {
                    continue;
                };
                let kind = if new == ZERO_CID { "delete" } else { "update" };
                log.append(
                    "updates",
                    &[
                        Value::Integer(time),
                        Value::Text(repo.clone()),
                        Value::Text(refname.to_string()),
                        Value::Text(new.to_string()),
                        Value::Text(kind.to_string()),
                    ],
                )?;
                logged += 1;
            }
        } else if request.method == "GET"
            && request.path().ends_with("/info/refs")
            && request.query_param("service") == Some("git-upload-pack")
        {
            let Some(repo) = Self::repo_from_path(request.path()) else {
                return Ok(0);
            };
            let repo = repo.to_string();
            let Ok((response, _)) = http::parse_response(rsp) else {
                return Ok(0);
            };
            if response.status != 200 {
                return Ok(0);
            }
            let body = String::from_utf8_lossy(&response.body).to_string();
            let time = log.next_time() as i64;
            for line in body.lines() {
                let mut parts = line.split_whitespace();
                let (Some(cid), Some(refname)) = (parts.next(), parts.next()) else {
                    continue;
                };
                log.append(
                    "advertisements",
                    &[
                        Value::Integer(time),
                        Value::Text(repo.clone()),
                        Value::Text(refname.to_string()),
                        Value::Text(cid.to_string()),
                    ],
                )?;
                logged += 1;
            }
        }
        Ok(logged)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::log::{LogBacking, NoGuard};
    use libseal_crypto::ed25519::SigningKey;
    use libseal_httpx::http::{Request, Response};

    fn fresh_log(m: &GitModule) -> AuditLog {
        AuditLog::open(
            LogBacking::Memory,
            [0u8; 32],
            SigningKey::from_seed(&[1u8; 32]),
            Box::new(NoGuard),
            m.schema_sql(),
            m.tables(),
        )
        .unwrap()
    }

    fn push_pair(repo: &str, lines: &str) -> (Vec<u8>, Vec<u8>) {
        let req = Request::new(
            "POST",
            &format!("/repo/{repo}/git-receive-pack"),
            lines.as_bytes().to_vec(),
        );
        let rsp = Response::new(200, b"ok\n".to_vec());
        (req.to_bytes(), rsp.to_bytes())
    }

    fn fetch_pair(repo: &str, advert: &str) -> (Vec<u8>, Vec<u8>) {
        let req = Request::new(
            "GET",
            &format!("/repo/{repo}/info/refs?service=git-upload-pack"),
            Vec::new(),
        );
        let rsp = Response::new(200, advert.as_bytes().to_vec());
        (req.to_bytes(), rsp.to_bytes())
    }

    #[test]
    fn push_logs_updates() {
        let m = GitModule;
        let mut log = fresh_log(&m);
        let (req, rsp) = push_pair("proj", "aaa bbb refs/heads/main\nccc ddd refs/heads/dev\n");
        assert_eq!(m.log_pair(&req, &rsp, &mut log).unwrap(), 2);
        let r = log
            .query("SELECT branch, cid, type FROM updates ORDER BY branch", &[])
            .unwrap();
        assert_eq!(r.rows.len(), 2);
        assert_eq!(r.rows[1][1], Value::Text("bbb".into()));
        assert_eq!(r.rows[1][2], Value::Text("update".into()));
    }

    #[test]
    fn deletion_logged_as_delete() {
        let m = GitModule;
        let mut log = fresh_log(&m);
        let (req, rsp) = push_pair("proj", &format!("abc {ZERO_CID} refs/heads/dead\n"));
        m.log_pair(&req, &rsp, &mut log).unwrap();
        let r = log.query("SELECT type FROM updates", &[]).unwrap();
        assert_eq!(r.scalar().unwrap(), &Value::Text("delete".into()));
    }

    #[test]
    fn fetch_logs_advertisements() {
        let m = GitModule;
        let mut log = fresh_log(&m);
        let (req, rsp) = fetch_pair("proj", "bbb refs/heads/main\nddd refs/heads/dev\n");
        assert_eq!(m.log_pair(&req, &rsp, &mut log).unwrap(), 2);
        let r = log
            .query("SELECT COUNT(*) FROM advertisements", &[])
            .unwrap();
        assert_eq!(r.scalar().unwrap(), &Value::Integer(2));
    }

    #[test]
    fn irrelevant_traffic_ignored() {
        let m = GitModule;
        let mut log = fresh_log(&m);
        let req = Request::new("GET", "/static/logo.png", Vec::new()).to_bytes();
        let rsp = Response::new(200, b"png".to_vec()).to_bytes();
        assert_eq!(m.log_pair(&req, &rsp, &mut log).unwrap(), 0);
        assert_eq!(m.log_pair(b"garbage", b"junk", &mut log).unwrap(), 0);
    }

    #[test]
    fn end_to_end_rollback_detection() {
        let m = GitModule;
        let mut log = fresh_log(&m);
        let (req, rsp) = push_pair("p", "0 c1 refs/heads/main\n");
        m.log_pair(&req, &rsp, &mut log).unwrap();
        let (req, rsp) = push_pair("p", "c1 c2 refs/heads/main\n");
        m.log_pair(&req, &rsp, &mut log).unwrap();
        // Attack: advertise the stale c1.
        let (req, rsp) = fetch_pair("p", "c1 refs/heads/main\n");
        m.log_pair(&req, &rsp, &mut log).unwrap();
        let v = log.query(GIT_SOUNDNESS, &[]).unwrap();
        assert_eq!(v.rows.len(), 1);
    }

    #[test]
    fn end_to_end_reference_deletion_detection() {
        let m = GitModule;
        let mut log = fresh_log(&m);
        let (req, rsp) = push_pair("p", "0 c1 refs/heads/main\n0 d1 refs/heads/dev\n");
        m.log_pair(&req, &rsp, &mut log).unwrap();
        // Attack: only main advertised.
        let (req, rsp) = fetch_pair("p", "c1 refs/heads/main\n");
        m.log_pair(&req, &rsp, &mut log).unwrap();
        let v = log.query(GIT_COMPLETENESS, &[]).unwrap();
        assert_eq!(v.rows.len(), 1);
    }

    #[test]
    fn trimming_preserves_detection_power() {
        let m = GitModule;
        let mut log = fresh_log(&m);
        for i in 0..5 {
            let (req, rsp) = push_pair("p", &format!("x c{i} refs/heads/main\n"));
            m.log_pair(&req, &rsp, &mut log).unwrap();
        }
        let (req, rsp) = fetch_pair("p", "c4 refs/heads/main\n");
        m.log_pair(&req, &rsp, &mut log).unwrap();
        assert!(log.query(GIT_SOUNDNESS, &[]).unwrap().is_empty());
        log.trim(m.trim_queries()).unwrap();
        log.verify().unwrap();
        // Only the newest update survives.
        let r = log.query("SELECT COUNT(*) FROM updates", &[]).unwrap();
        assert_eq!(r.scalar().unwrap(), &Value::Integer(1));
        // A stale advertisement after trimming is still caught.
        let (req, rsp) = fetch_pair("p", "c0 refs/heads/main\n");
        m.log_pair(&req, &rsp, &mut log).unwrap();
        assert_eq!(log.query(GIT_SOUNDNESS, &[]).unwrap().rows.len(), 1);
    }
}

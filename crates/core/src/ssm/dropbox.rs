//! The Dropbox service-specific module (§6.1, §6.2).
//!
//! The audit schema is taken verbatim from §6.2:
//!
//! ```text
//! commit_batch(time,file,blocks,account,host,size)
//! list(time,file,blocks,account,host,size)
//! ```
//!
//! Protocol understood (JSON over HTTP, served or proxied by
//! `libseal-services`):
//!
//! - `POST /dropbox/commit_batch`
//!   `{account, host, commits: [{file, blocks: [h...], size}]}`
//!   (size `-1` deletes the file);
//! - `POST /dropbox/list` `{account}` →
//!   `{files: [{file, blocks: [h...], size}]}`.

use libseal_httpx::http;
use libseal_httpx::json::Json;
use libseal_sealdb::Value;

use super::{DeltaSpec, Invariant, ServiceModule, SourceRule};
use crate::log::{AuditLog, TableSpec};
use crate::Result;

/// Dropbox SSM.
pub struct DropboxModule;

/// Audit schema (§6.2, verbatim relations).
pub const DROPBOX_SCHEMA: &str = "
CREATE TABLE commit_batch(time INTEGER, file TEXT, blocks TEXT,
                          account TEXT, host TEXT, size INTEGER);
CREATE TABLE list(time INTEGER, file TEXT, blocks TEXT,
                  account TEXT, host TEXT, size INTEGER);
";

/// Blocklist soundness: every listed file carries exactly the most
/// recently committed blocklist, and deleted files are never listed.
pub const DB_BLOCKLIST_SOUND: &str = "SELECT * FROM list l WHERE EXISTS (
  SELECT 1 FROM commit_batch c WHERE c.account = l.account
  AND c.file = l.file AND c.time < l.time
  AND c.time = (SELECT MAX(time) FROM commit_batch
                WHERE account = l.account AND file = l.file AND time < l.time)
  AND (c.size = -1 OR c.blocks != l.blocks))";

/// Phantom files: a listed file that was never committed.
pub const DB_PHANTOM_FILE: &str = "SELECT * FROM list l WHERE NOT EXISTS (
  SELECT 1 FROM commit_batch c WHERE c.account = l.account
  AND c.file = l.file AND c.time < l.time)";

/// List completeness: every live file (latest commit not a deletion)
/// appears in each later list response for its account.
pub const DB_LIST_COMPLETE: &str = "SELECT c.account, c.file, l.time
FROM commit_batch c
JOIN (SELECT DISTINCT account, time FROM list) l
  ON l.account = c.account AND c.time < l.time
WHERE c.size != -1
AND c.time = (SELECT MAX(time) FROM commit_batch
              WHERE account = c.account AND file = c.file AND time < l.time)
AND NOT EXISTS (SELECT 1 FROM list x WHERE x.account = l.account
                AND x.time = l.time AND x.file = c.file)";

/// [`DB_BLOCKLIST_SOUND`] restricted to one list time.
pub const DB_BLOCKLIST_SOUND_DELTA: &str = "SELECT * FROM list l WHERE l.time = ?1 AND EXISTS (
  SELECT 1 FROM commit_batch c WHERE c.account = l.account
  AND c.file = l.file AND c.time < l.time
  AND c.time = (SELECT MAX(time) FROM commit_batch
                WHERE account = l.account AND file = l.file AND time < l.time)
  AND (c.size = -1 OR c.blocks != l.blocks))";

/// [`DB_PHANTOM_FILE`] restricted to one list time.
pub const DB_PHANTOM_FILE_DELTA: &str = "SELECT * FROM list l WHERE l.time = ?1 AND NOT EXISTS (
  SELECT 1 FROM commit_batch c WHERE c.account = l.account
  AND c.file = l.file AND c.time < l.time)";

/// [`DB_LIST_COMPLETE`] restricted to one list time. The partition
/// filter lives INSIDE the derived table, not the outer WHERE: the
/// inner `time = ?1` takes the index fast path, and the hash join
/// then probes every commit against the partition's one or two
/// accounts instead of pairing all commits with all list times and
/// paying the correlated MAX per pair.
pub const DB_LIST_COMPLETE_DELTA: &str = "SELECT c.account, c.file, l.time
FROM commit_batch c
JOIN (SELECT DISTINCT account, time FROM list WHERE time = ?1) l
  ON l.account = c.account AND c.time < l.time
WHERE c.size != -1
AND c.time = (SELECT MAX(time) FROM commit_batch
              WHERE account = c.account AND file = c.file AND time < l.time)
AND NOT EXISTS (SELECT 1 FROM list x WHERE x.account = l.account
                AND x.time = l.time AND x.file = c.file)";

// All three invariants key violations by a list-response time and
// only consult commits with strictly earlier times; time is monotone,
// so a commit append can only influence future list responses.
const DROPBOX_SOURCES: &[SourceRule] = &[
    SourceRule {
        table: "list",
        partition_col: Some("time"),
        rescan: None,
    },
    SourceRule {
        table: "commit_batch",
        partition_col: None,
        rescan: None,
    },
];

const INVARIANTS: &[Invariant] = &[
    Invariant {
        name: "dropbox-blocklist-soundness",
        sql: DB_BLOCKLIST_SOUND,
        delta: Some(DeltaSpec {
            delta_sql: DB_BLOCKLIST_SOUND_DELTA,
            partition_col: 0,
            sources: DROPBOX_SOURCES,
        }),
    },
    Invariant {
        name: "dropbox-phantom-file",
        sql: DB_PHANTOM_FILE,
        delta: Some(DeltaSpec {
            delta_sql: DB_PHANTOM_FILE_DELTA,
            partition_col: 0,
            sources: DROPBOX_SOURCES,
        }),
    },
    Invariant {
        name: "dropbox-list-completeness",
        sql: DB_LIST_COMPLETE,
        delta: Some(DeltaSpec {
            delta_sql: DB_LIST_COMPLETE_DELTA,
            partition_col: 2,
            sources: DROPBOX_SOURCES,
        }),
    },
];

/// Trimming: list responses are checked once; only the latest commit
/// per (account, file) is needed afterwards.
const TRIM: &[&str] = &[
    "DELETE FROM list",
    "DELETE FROM commit_batch WHERE time NOT IN
     (SELECT MAX(time) FROM commit_batch GROUP BY account, file)",
];

fn blocks_text(v: Option<&Json>) -> String {
    match v.and_then(Json::as_array) {
        Some(items) => items
            .iter()
            .filter_map(Json::as_str)
            .collect::<Vec<_>>()
            .join(","),
        None => String::new(),
    }
}

impl ServiceModule for DropboxModule {
    fn name(&self) -> &'static str {
        "dropbox"
    }

    fn schema_sql(&self) -> &'static str {
        DROPBOX_SCHEMA
    }

    fn tables(&self) -> Vec<TableSpec> {
        vec![
            TableSpec {
                name: "commit_batch",
                key_cols: &["time", "file"],
            },
            TableSpec {
                name: "list",
                key_cols: &["time", "file"],
            },
        ]
    }

    fn invariants(&self) -> &'static [Invariant] {
        INVARIANTS
    }

    fn trim_queries(&self) -> &'static [&'static str] {
        TRIM
    }

    fn log_pair(&self, req: &[u8], rsp: &[u8], log: &mut AuditLog) -> Result<usize> {
        let Ok((request, _)) = http::parse_request(req) else {
            return Ok(0);
        };
        if request.method != "POST" {
            return Ok(0);
        }
        let Ok(req_json) = Json::parse_bytes(&request.body) else {
            return Ok(0);
        };
        let Ok((response, _)) = http::parse_response(rsp) else {
            return Ok(0);
        };
        if response.status != 200 {
            return Ok(0);
        }
        let account = req_json
            .get("account")
            .and_then(Json::as_str)
            .unwrap_or("")
            .to_string();
        let host = req_json
            .get("host")
            .and_then(Json::as_str)
            .unwrap_or("")
            .to_string();
        if account.is_empty() {
            return Ok(0);
        }
        let mut logged = 0usize;

        match request.path() {
            "/dropbox/commit_batch" => {
                let Some(commits) = req_json.get("commits").and_then(Json::as_array) else {
                    return Ok(0);
                };
                let time = log.next_time() as i64;
                for c in commits {
                    let Some(file) = c.get("file").and_then(Json::as_str) else {
                        continue;
                    };
                    let blocks = blocks_text(c.get("blocks"));
                    let size = c.get("size").and_then(Json::as_i64).unwrap_or(0);
                    log.append(
                        "commit_batch",
                        &[
                            Value::Integer(time),
                            Value::Text(file.to_string()),
                            Value::Text(blocks),
                            Value::Text(account.clone()),
                            Value::Text(host.clone()),
                            Value::Integer(size),
                        ],
                    )?;
                    logged += 1;
                }
            }
            "/dropbox/list" => {
                let rsp_json = match Json::parse_bytes(&response.body) {
                    Ok(j) => j,
                    Err(_) => return Ok(0),
                };
                let Some(files) = rsp_json.get("files").and_then(Json::as_array) else {
                    return Ok(0);
                };
                let time = log.next_time() as i64;
                for f in files {
                    let Some(file) = f.get("file").and_then(Json::as_str) else {
                        continue;
                    };
                    let blocks = blocks_text(f.get("blocks"));
                    let size = f.get("size").and_then(Json::as_i64).unwrap_or(0);
                    log.append(
                        "list",
                        &[
                            Value::Integer(time),
                            Value::Text(file.to_string()),
                            Value::Text(blocks),
                            Value::Text(account.clone()),
                            Value::Text(host.clone()),
                            Value::Integer(size),
                        ],
                    )?;
                    logged += 1;
                }
            }
            _ => {}
        }
        Ok(logged)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::log::{LogBacking, NoGuard};
    use libseal_crypto::ed25519::SigningKey;
    use libseal_httpx::http::{Request, Response};

    fn fresh_log(m: &DropboxModule) -> AuditLog {
        AuditLog::open(
            LogBacking::Memory,
            [0u8; 32],
            SigningKey::from_seed(&[1u8; 32]),
            Box::new(NoGuard),
            m.schema_sql(),
            m.tables(),
        )
        .unwrap()
    }

    fn commit(log: &mut AuditLog, m: &DropboxModule, file: &str, blocks: &str, size: i64) {
        let body = format!(
            r#"{{"account":"acct","host":"h1","commits":[{{"file":"{file}","blocks":["{blocks}"],"size":{size}}}]}}"#
        );
        let req = Request::new("POST", "/dropbox/commit_batch", body.into_bytes()).to_bytes();
        let rsp = Response::new(200, br#"{"ok":true}"#.to_vec()).to_bytes();
        m.log_pair(&req, &rsp, log).unwrap();
    }

    fn list(log: &mut AuditLog, m: &DropboxModule, files: &[(&str, &str, i64)]) {
        let items: Vec<String> = files
            .iter()
            .map(|(f, b, s)| format!(r#"{{"file":"{f}","blocks":["{b}"],"size":{s}}}"#))
            .collect();
        let req = Request::new(
            "POST",
            "/dropbox/list",
            br#"{"account":"acct","host":"h1"}"#.to_vec(),
        )
        .to_bytes();
        let rsp = Response::new(
            200,
            format!(r#"{{"files":[{}]}}"#, items.join(",")).into_bytes(),
        )
        .to_bytes();
        m.log_pair(&req, &rsp, log).unwrap();
    }

    #[test]
    fn faithful_listing_passes() {
        let m = DropboxModule;
        let mut log = fresh_log(&m);
        commit(&mut log, &m, "a.txt", "h1", 100);
        commit(&mut log, &m, "b.txt", "h2", 200);
        list(&mut log, &m, &[("a.txt", "h1", 100), ("b.txt", "h2", 200)]);
        for inv in INVARIANTS {
            assert!(
                log.query(inv.sql, &[]).unwrap().is_empty(),
                "{} fired",
                inv.name
            );
        }
    }

    #[test]
    fn corrupted_blocklist_detected() {
        let m = DropboxModule;
        let mut log = fresh_log(&m);
        commit(&mut log, &m, "a.txt", "h1", 100);
        // Server serves a DIFFERENT blocklist.
        list(&mut log, &m, &[("a.txt", "hX", 100)]);
        let v = log.query(DB_BLOCKLIST_SOUND, &[]).unwrap();
        assert_eq!(v.rows.len(), 1);
    }

    #[test]
    fn lost_file_detected() {
        let m = DropboxModule;
        let mut log = fresh_log(&m);
        commit(&mut log, &m, "a.txt", "h1", 100);
        commit(&mut log, &m, "b.txt", "h2", 200);
        // b.txt silently vanishes from the listing.
        list(&mut log, &m, &[("a.txt", "h1", 100)]);
        let v = log.query(DB_LIST_COMPLETE, &[]).unwrap();
        assert_eq!(v.rows.len(), 1);
        assert_eq!(v.rows[0][1], Value::Text("b.txt".into()));
    }

    #[test]
    fn deleted_file_must_disappear() {
        let m = DropboxModule;
        let mut log = fresh_log(&m);
        commit(&mut log, &m, "a.txt", "h1", 100);
        commit(&mut log, &m, "a.txt", "h1", -1); // deletion
                                                 // Server still lists it: violation.
        list(&mut log, &m, &[("a.txt", "h1", 100)]);
        let v = log.query(DB_BLOCKLIST_SOUND, &[]).unwrap();
        assert_eq!(v.rows.len(), 1);
        // And a listing without it is clean.
        list(&mut log, &m, &[]);
        assert_eq!(log.query(DB_BLOCKLIST_SOUND, &[]).unwrap().rows.len(), 1);
        assert!(log.query(DB_LIST_COMPLETE, &[]).unwrap().is_empty());
    }

    #[test]
    fn phantom_file_detected() {
        let m = DropboxModule;
        let mut log = fresh_log(&m);
        list(&mut log, &m, &[("ghost.txt", "h9", 10)]);
        let v = log.query(DB_PHANTOM_FILE, &[]).unwrap();
        assert_eq!(v.rows.len(), 1);
    }

    #[test]
    fn trimming_keeps_latest_commits() {
        let m = DropboxModule;
        let mut log = fresh_log(&m);
        commit(&mut log, &m, "a.txt", "h1", 100);
        commit(&mut log, &m, "a.txt", "h2", 120);
        commit(&mut log, &m, "b.txt", "h3", 50);
        list(&mut log, &m, &[("a.txt", "h2", 120), ("b.txt", "h3", 50)]);
        log.trim(m.trim_queries()).unwrap();
        log.verify().unwrap();
        let r = log.query("SELECT COUNT(*) FROM commit_batch", &[]).unwrap();
        assert_eq!(r.scalar().unwrap(), &Value::Integer(2));
        let r = log.query("SELECT COUNT(*) FROM list", &[]).unwrap();
        assert_eq!(r.scalar().unwrap(), &Value::Integer(0));
        // Detection still works after trimming.
        list(&mut log, &m, &[("a.txt", "h1", 100)]); // stale blocklist
        assert_eq!(log.query(DB_BLOCKLIST_SOUND, &[]).unwrap().rows.len(), 1);
    }

    #[test]
    fn per_file_log_size_is_small() {
        // §6.5: Dropbox log size is proportional to #files with a
        // small constant per file.
        let m = DropboxModule;
        let mut log = fresh_log(&m);
        let before = log.size_bytes();
        commit(&mut log, &m, "f", "0123456789abcdef0123456789abcdef", 4096);
        let per_file = log.size_bytes() - before;
        assert!(per_file < 1024, "per-file log cost {per_file} too large");
    }
}

//! Service-specific modules (SSMs, §5.1).
//!
//! An SSM teaches LibSEAL one service's protocol: the relational
//! schema of its audit log, how to extract loggable tuples from a
//! request/response pair, the integrity invariants as SQL, and the
//! trimming queries that keep the log bounded. The paper sizes these
//! at 250-450 lines each; Git, ownCloud and Dropbox match its §6
//! evaluation targets, and [`messaging`] adds the §2.2 instant-
//! messaging scenario the paper motivates but does not evaluate.

pub mod dropbox;
pub mod git;
pub mod messaging;
pub mod owncloud;

use crate::log::{AuditLog, TableSpec};
use crate::Result;

pub use dropbox::DropboxModule;
pub use git::GitModule;
pub use messaging::MessagingModule;
pub use owncloud::OwnCloudModule;

/// A named integrity invariant; the SQL selects *violations* (the
/// query is the negation of the invariant, §5.2).
#[derive(Clone, Copy, Debug)]
pub struct Invariant {
    /// Human-readable name.
    pub name: &'static str,
    /// Violation-selecting SQL (the full-scan reference evaluation).
    pub sql: &'static str,
    /// Incremental evaluation metadata; `None` keeps this invariant on
    /// the full-scan path.
    pub delta: Option<DeltaSpec>,
}

/// Incremental evaluation metadata: how an invariant's violation set
/// decomposes into partitions that can be re-evaluated independently
/// when base rows are appended.
///
/// The audit log's logical time is monotone, so an invariant whose
/// subqueries only reference rows with `time <` the violating row's
/// time has *stable* partitions: once all rows at or before time T
/// exist, the verdict for partition T never changes on later appends.
/// The one exception in the shipped services (an untimed NOT EXISTS)
/// is handled with a [`RescanRule`].
#[derive(Clone, Copy, Debug)]
pub struct DeltaSpec {
    /// The invariant SQL restricted to one partition; `?1` is bound to
    /// the partition value. Must project the same columns as the full
    /// query.
    pub delta_sql: &'static str,
    /// Output column (0-based) holding the partition value.
    pub partition_col: usize,
    /// Dirty-tracking rules, one per base table feeding the query.
    pub sources: &'static [SourceRule],
}

/// How inserts into one base table dirty the invariant's view.
#[derive(Clone, Copy, Debug)]
pub struct SourceRule {
    /// Base table name.
    pub table: &'static str,
    /// Source column whose value names the partition an inserted row
    /// dirties; `None` when inserts into this table cannot add
    /// violations (they only reference `time <` rows of other
    /// partitions — the monotone-time argument above).
    pub partition_col: Option<&'static str>,
    /// Lookup re-dirtying partitions whose existing violations the
    /// inserted row may *clear*.
    pub rescan: Option<RescanRule>,
}

/// Rescan lookup: run `sql` with the inserted row's `bind_cols`
/// values bound to `?1..?n`; the first column of each returned row is
/// a partition to re-dirty.
#[derive(Clone, Copy, Debug)]
pub struct RescanRule {
    /// Partition lookup query.
    pub sql: &'static str,
    /// Inserted-row columns bound, in order, to the parameters.
    pub bind_cols: &'static [&'static str],
}

impl Invariant {
    /// Backing-table name of this invariant's materialized view.
    pub fn view_name(&self) -> String {
        format!("mv_{}", self.name.replace('-', "_"))
    }

    /// Converts the static delta metadata into a sealdb view
    /// registration, or `None` for full-scan-only invariants.
    pub fn matview_spec(&self) -> Option<libseal_sealdb::MatViewSpec> {
        let delta = self.delta?;
        Some(libseal_sealdb::MatViewSpec {
            name: self.view_name(),
            full_sql: self.sql.to_string(),
            delta_sql: delta.delta_sql.to_string(),
            partition_col: delta.partition_col,
            sources: delta
                .sources
                .iter()
                .map(|s| libseal_sealdb::SourceRule {
                    table: s.table.to_string(),
                    partition_col: s.partition_col.map(str::to_string),
                    rescan: s.rescan.map(|r| libseal_sealdb::RescanRule {
                        sql: r.sql.to_string(),
                        bind_cols: r.bind_cols.iter().map(|c| c.to_string()).collect(),
                    }),
                })
                .collect(),
        })
    }
}

/// A service-specific module.
pub trait ServiceModule: Send + Sync {
    /// Module name (e.g. "git").
    fn name(&self) -> &'static str;

    /// `CREATE TABLE`/`CREATE VIEW` statements for the audit schema.
    fn schema_sql(&self) -> &'static str;

    /// Audited tables and their primary keys (for the hash chain).
    fn tables(&self) -> Vec<TableSpec>;

    /// The integrity invariants.
    fn invariants(&self) -> &'static [Invariant];

    /// Trimming queries removing entries no longer needed (§5.1).
    fn trim_queries(&self) -> &'static [&'static str];

    /// Parses one request/response pair and appends the pertinent
    /// tuples; returns how many tuples were logged.
    ///
    /// # Errors
    ///
    /// Log append failures; malformed traffic is *not* an error (the
    /// SSM simply logs nothing for messages it does not understand).
    fn log_pair(&self, req: &[u8], rsp: &[u8], log: &mut AuditLog) -> Result<usize>;
}

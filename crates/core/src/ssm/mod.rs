//! Service-specific modules (SSMs, §5.1).
//!
//! An SSM teaches LibSEAL one service's protocol: the relational
//! schema of its audit log, how to extract loggable tuples from a
//! request/response pair, the integrity invariants as SQL, and the
//! trimming queries that keep the log bounded. The paper sizes these
//! at 250-450 lines each; Git, ownCloud and Dropbox match its §6
//! evaluation targets, and [`messaging`] adds the §2.2 instant-
//! messaging scenario the paper motivates but does not evaluate.

pub mod dropbox;
pub mod git;
pub mod messaging;
pub mod owncloud;

use crate::log::{AuditLog, TableSpec};
use crate::Result;

pub use dropbox::DropboxModule;
pub use git::GitModule;
pub use messaging::MessagingModule;
pub use owncloud::OwnCloudModule;

/// A named integrity invariant; the SQL selects *violations* (the
/// query is the negation of the invariant, §5.2).
#[derive(Clone, Copy, Debug)]
pub struct Invariant {
    /// Human-readable name.
    pub name: &'static str,
    /// Violation-selecting SQL.
    pub sql: &'static str,
}

/// A service-specific module.
pub trait ServiceModule: Send + Sync {
    /// Module name (e.g. "git").
    fn name(&self) -> &'static str;

    /// `CREATE TABLE`/`CREATE VIEW` statements for the audit schema.
    fn schema_sql(&self) -> &'static str;

    /// Audited tables and their primary keys (for the hash chain).
    fn tables(&self) -> Vec<TableSpec>;

    /// The integrity invariants.
    fn invariants(&self) -> &'static [Invariant];

    /// Trimming queries removing entries no longer needed (§5.1).
    fn trim_queries(&self) -> &'static [&'static str];

    /// Parses one request/response pair and appends the pertinent
    /// tuples; returns how many tuples were logged.
    ///
    /// # Errors
    ///
    /// Log append failures; malformed traffic is *not* an error (the
    /// SSM simply logs nothing for messages it does not understand).
    fn log_pair(&self, req: &[u8], rsp: &[u8], log: &mut AuditLog) -> Result<usize>;
}

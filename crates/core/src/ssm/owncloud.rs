//! The ownCloud Documents service-specific module (§6.1, §6.2).
//!
//! The paper defers the full ownCloud schema to its technical report;
//! this reconstruction follows the §6.2 prose: a document is a
//! snapshot plus an ordered list of updates, and the invariants check
//! that (i) snapshots served to joining clients match the latest saved
//! snapshot, and (ii) the update stream relayed to each client is a
//! gapless, content-faithful prefix of the aggregate update history.
//!
//! Protocol understood (JSON over HTTP, served by `libseal-services`):
//!
//! - `POST /owncloud/join`  `{doc, client}` →
//!   `{snapshot, seq}` (current snapshot and its baseline sequence);
//! - `POST /owncloud/sync`  `{doc, client, ops: [{seq?, content}...]}` →
//!   `{acks, ops: [{seq, content}...]}` (new ops from other clients);
//! - `POST /owncloud/leave` `{doc, client, snapshot}` → `{ok}`.

use libseal_httpx::http;
use libseal_httpx::json::Json;
use libseal_sealdb::Value;

use super::{DeltaSpec, Invariant, RescanRule, ServiceModule, SourceRule};
use crate::log::{AuditLog, TableSpec};
use crate::Result;

/// ownCloud SSM.
pub struct OwnCloudModule;

/// Audit schema: one relation of document events.
pub const OWNCLOUD_SCHEMA: &str = "
CREATE TABLE docupdates(time INTEGER, doc TEXT, client TEXT, kind TEXT,
                        seq INTEGER, content TEXT);
";

/// Snapshot soundness: a snapshot served on join equals the most
/// recently saved snapshot of the document.
pub const OC_SNAPSHOT_SOUND: &str = "SELECT * FROM docupdates d
WHERE d.kind = 'snapshot_sent' AND d.content != (
  SELECT s.content FROM docupdates s WHERE s.doc = d.doc
  AND s.kind = 'snapshot_save' AND s.time < d.time
  ORDER BY s.time DESC LIMIT 1)";

/// Update faithfulness: every update relayed to a client was received
/// from some client with the same sequence number and content.
pub const OC_UPDATE_SOUND: &str = "SELECT * FROM docupdates d
WHERE d.kind = 'sent_update' AND NOT EXISTS (
  SELECT 1 FROM docupdates r WHERE r.kind = 'recv_update'
  AND r.doc = d.doc AND r.seq = d.seq AND r.content = d.content)";

/// Prefix completeness: the stream relayed to each client is gapless
/// from its join baseline (a gap means a lost edit).
pub const OC_PREFIX_COMPLETE: &str = "SELECT * FROM docupdates d
WHERE d.kind = 'sent_update' AND d.seq != 1 + (
  SELECT MAX(x.seq) FROM docupdates x WHERE x.doc = d.doc
  AND x.client = d.client AND (x.kind = 'sent_update' OR x.kind = 'join')
  AND x.time < d.time)";

/// [`OC_SNAPSHOT_SOUND`] restricted to one event time.
pub const OC_SNAPSHOT_SOUND_DELTA: &str = "SELECT * FROM docupdates d
WHERE d.time = ?1 AND d.kind = 'snapshot_sent' AND d.content != (
  SELECT s.content FROM docupdates s WHERE s.doc = d.doc
  AND s.kind = 'snapshot_save' AND s.time < d.time
  ORDER BY s.time DESC LIMIT 1)";

/// [`OC_UPDATE_SOUND`] restricted to one event time.
pub const OC_UPDATE_SOUND_DELTA: &str = "SELECT * FROM docupdates d
WHERE d.time = ?1 AND d.kind = 'sent_update' AND NOT EXISTS (
  SELECT 1 FROM docupdates r WHERE r.kind = 'recv_update'
  AND r.doc = d.doc AND r.seq = d.seq AND r.content = d.content)";

/// [`OC_PREFIX_COMPLETE`] restricted to one event time.
pub const OC_PREFIX_COMPLETE_DELTA: &str = "SELECT * FROM docupdates d
WHERE d.time = ?1 AND d.kind = 'sent_update' AND d.seq != 1 + (
  SELECT MAX(x.seq) FROM docupdates x WHERE x.doc = d.doc
  AND x.client = d.client AND (x.kind = 'sent_update' OR x.kind = 'join')
  AND x.time < d.time)";

// Snapshot soundness and prefix completeness only consult earlier
// events, so each inserted row can only dirty its own partition.
const OC_TIMED_SOURCES: &[SourceRule] = &[SourceRule {
    table: "docupdates",
    partition_col: Some("time"),
    rescan: None,
}];

// Update soundness is the one untimed invariant: its NOT EXISTS has
// no time bound, so a recv_update appended *later* can clear a
// sent_update violation recorded earlier. The rescan re-dirties every
// sent_update partition matching the inserted row's (doc, seq,
// content); the `?4` guard makes it a no-op for other event kinds.
const OC_UPDATE_SOURCES: &[SourceRule] = &[SourceRule {
    table: "docupdates",
    partition_col: Some("time"),
    rescan: Some(RescanRule {
        sql: "SELECT d.time FROM docupdates d
WHERE ?4 = 'recv_update' AND d.kind = 'sent_update'
AND d.doc = ?1 AND d.seq = ?2 AND d.content = ?3",
        bind_cols: &["doc", "seq", "content", "kind"],
    }),
}];

const INVARIANTS: &[Invariant] = &[
    Invariant {
        name: "owncloud-snapshot-soundness",
        sql: OC_SNAPSHOT_SOUND,
        delta: Some(DeltaSpec {
            delta_sql: OC_SNAPSHOT_SOUND_DELTA,
            partition_col: 0,
            sources: OC_TIMED_SOURCES,
        }),
    },
    Invariant {
        name: "owncloud-update-soundness",
        sql: OC_UPDATE_SOUND,
        delta: Some(DeltaSpec {
            delta_sql: OC_UPDATE_SOUND_DELTA,
            partition_col: 0,
            sources: OC_UPDATE_SOURCES,
        }),
    },
    Invariant {
        name: "owncloud-prefix-completeness",
        sql: OC_PREFIX_COMPLETE,
        delta: Some(DeltaSpec {
            delta_sql: OC_PREFIX_COMPLETE_DELTA,
            partition_col: 0,
            sources: OC_TIMED_SOURCES,
        }),
    },
];

/// Trimming: keep the latest snapshot per document and everything
/// after it.
const TRIM: &[&str] = &["DELETE FROM docupdates WHERE time < (
  SELECT MAX(s.time) FROM docupdates s WHERE s.doc = docupdates.doc
  AND s.kind = 'snapshot_save')"];

impl OwnCloudModule {
    #[allow(clippy::too_many_arguments)]
    fn event(
        log: &mut AuditLog,
        time: i64,
        doc: &str,
        client: &str,
        kind: &str,
        seq: i64,
        content: &str,
    ) -> Result<()> {
        log.append(
            "docupdates",
            &[
                Value::Integer(time),
                Value::Text(doc.to_string()),
                Value::Text(client.to_string()),
                Value::Text(kind.to_string()),
                Value::Integer(seq),
                Value::Text(content.to_string()),
            ],
        )
    }
}

impl ServiceModule for OwnCloudModule {
    fn name(&self) -> &'static str {
        "owncloud"
    }

    fn schema_sql(&self) -> &'static str {
        OWNCLOUD_SCHEMA
    }

    fn tables(&self) -> Vec<TableSpec> {
        vec![TableSpec {
            name: "docupdates",
            key_cols: &["time", "doc", "kind", "seq"],
        }]
    }

    fn invariants(&self) -> &'static [Invariant] {
        INVARIANTS
    }

    fn trim_queries(&self) -> &'static [&'static str] {
        TRIM
    }

    fn log_pair(&self, req: &[u8], rsp: &[u8], log: &mut AuditLog) -> Result<usize> {
        let Ok((request, _)) = http::parse_request(req) else {
            return Ok(0);
        };
        if request.method != "POST" || !request.path().starts_with("/owncloud/") {
            return Ok(0);
        }
        let Ok(req_json) = Json::parse_bytes(&request.body) else {
            return Ok(0);
        };
        let Ok((response, _)) = http::parse_response(rsp) else {
            return Ok(0);
        };
        if response.status != 200 {
            return Ok(0);
        }
        let rsp_json = Json::parse_bytes(&response.body).unwrap_or(Json::Null);

        let doc = req_json.get("doc").and_then(Json::as_str).unwrap_or("");
        let client = req_json.get("client").and_then(Json::as_str).unwrap_or("");
        if doc.is_empty() || client.is_empty() {
            return Ok(0);
        }
        let mut logged = 0usize;

        match request.path() {
            "/owncloud/join" => {
                // Server returned the snapshot + baseline seq.
                let snapshot = rsp_json
                    .get("snapshot")
                    .and_then(Json::as_str)
                    .unwrap_or("");
                let seq = rsp_json.get("seq").and_then(Json::as_i64).unwrap_or(0);
                let t = log.next_time() as i64;
                Self::event(log, t, doc, client, "join", seq, "")?;
                logged += 1;
                let t = log.next_time() as i64;
                Self::event(log, t, doc, client, "snapshot_sent", seq, snapshot)?;
                logged += 1;
            }
            "/owncloud/sync" => {
                // Client-supplied ops: the server assigns sequence
                // numbers which it acknowledges in the response.
                let acks = rsp_json.get("acks").and_then(Json::as_array).unwrap_or(&[]);
                if let Some(ops) = req_json.get("ops").and_then(Json::as_array) {
                    for (op, ack) in ops.iter().zip(acks.iter()) {
                        let content = op.get("content").and_then(Json::as_str).unwrap_or("");
                        let seq = ack.as_i64().unwrap_or(0);
                        let t = log.next_time() as i64;
                        Self::event(log, t, doc, client, "recv_update", seq, content)?;
                        logged += 1;
                    }
                }
                // Ops relayed to this client.
                if let Some(ops) = rsp_json.get("ops").and_then(Json::as_array) {
                    for op in ops {
                        let content = op.get("content").and_then(Json::as_str).unwrap_or("");
                        let seq = op.get("seq").and_then(Json::as_i64).unwrap_or(0);
                        let t = log.next_time() as i64;
                        Self::event(log, t, doc, client, "sent_update", seq, content)?;
                        logged += 1;
                    }
                }
            }
            "/owncloud/leave" => {
                if let Some(snapshot) = req_json.get("snapshot").and_then(Json::as_str) {
                    let seq = req_json.get("seq").and_then(Json::as_i64).unwrap_or(0);
                    let t = log.next_time() as i64;
                    Self::event(log, t, doc, client, "snapshot_save", seq, snapshot)?;
                    logged += 1;
                }
            }
            _ => {}
        }
        Ok(logged)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::log::{LogBacking, NoGuard};
    use libseal_crypto::ed25519::SigningKey;
    use libseal_httpx::http::{Request, Response};

    fn fresh_log(m: &OwnCloudModule) -> AuditLog {
        AuditLog::open(
            LogBacking::Memory,
            [0u8; 32],
            SigningKey::from_seed(&[1u8; 32]),
            Box::new(NoGuard),
            m.schema_sql(),
            m.tables(),
        )
        .unwrap()
    }

    fn pair(path: &str, req_body: &str, rsp_body: &str) -> (Vec<u8>, Vec<u8>) {
        (
            Request::new("POST", path, req_body.as_bytes().to_vec()).to_bytes(),
            Response::new(200, rsp_body.as_bytes().to_vec()).to_bytes(),
        )
    }

    #[test]
    fn join_and_sync_logged() {
        let m = OwnCloudModule;
        let mut log = fresh_log(&m);
        let (req, rsp) = pair(
            "/owncloud/join",
            r#"{"doc":"d1","client":"alice"}"#,
            r#"{"snapshot":"Hello","seq":0}"#,
        );
        assert_eq!(m.log_pair(&req, &rsp, &mut log).unwrap(), 2);
        let (req, rsp) = pair(
            "/owncloud/sync",
            r#"{"doc":"d1","client":"alice","ops":[{"content":"+x"}]}"#,
            r#"{"acks":[1],"ops":[]}"#,
        );
        assert_eq!(m.log_pair(&req, &rsp, &mut log).unwrap(), 1);
        let r = log
            .query("SELECT kind, seq FROM docupdates ORDER BY time", &[])
            .unwrap();
        assert_eq!(r.rows.len(), 3);
        assert_eq!(r.rows[2][0], Value::Text("recv_update".into()));
        assert_eq!(r.rows[2][1], Value::Integer(1));
    }

    #[test]
    fn stale_snapshot_detected() {
        let m = OwnCloudModule;
        let mut log = fresh_log(&m);
        // Alice saves snapshot "v2".
        let (req, rsp) = pair(
            "/owncloud/leave",
            r#"{"doc":"d1","client":"alice","snapshot":"v2","seq":5}"#,
            r#"{"ok":true}"#,
        );
        m.log_pair(&req, &rsp, &mut log).unwrap();
        // Bob joins and is served the STALE snapshot "v1".
        let (req, rsp) = pair(
            "/owncloud/join",
            r#"{"doc":"d1","client":"bob"}"#,
            r#"{"snapshot":"v1","seq":5}"#,
        );
        m.log_pair(&req, &rsp, &mut log).unwrap();
        let v = log.query(OC_SNAPSHOT_SOUND, &[]).unwrap();
        assert_eq!(v.rows.len(), 1);
    }

    #[test]
    fn correct_snapshot_passes() {
        let m = OwnCloudModule;
        let mut log = fresh_log(&m);
        let (req, rsp) = pair(
            "/owncloud/leave",
            r#"{"doc":"d1","client":"alice","snapshot":"v2","seq":5}"#,
            r#"{"ok":true}"#,
        );
        m.log_pair(&req, &rsp, &mut log).unwrap();
        let (req, rsp) = pair(
            "/owncloud/join",
            r#"{"doc":"d1","client":"bob"}"#,
            r#"{"snapshot":"v2","seq":5}"#,
        );
        m.log_pair(&req, &rsp, &mut log).unwrap();
        assert!(log.query(OC_SNAPSHOT_SOUND, &[]).unwrap().is_empty());
    }

    #[test]
    fn forged_update_detected() {
        let m = OwnCloudModule;
        let mut log = fresh_log(&m);
        // Alice sends op seq 1 "+a".
        let (req, rsp) = pair(
            "/owncloud/sync",
            r#"{"doc":"d1","client":"alice","ops":[{"content":"+a"}]}"#,
            r#"{"acks":[1],"ops":[]}"#,
        );
        m.log_pair(&req, &rsp, &mut log).unwrap();
        // Server relays a TAMPERED op to bob (content differs).
        let (req, rsp) = pair(
            "/owncloud/sync",
            r#"{"doc":"d1","client":"bob","ops":[]}"#,
            r#"{"acks":[],"ops":[{"seq":1,"content":"+EVIL"}]}"#,
        );
        m.log_pair(&req, &rsp, &mut log).unwrap();
        let v = log.query(OC_UPDATE_SOUND, &[]).unwrap();
        assert_eq!(v.rows.len(), 1);
    }

    #[test]
    fn lost_edit_detected_as_gap() {
        let m = OwnCloudModule;
        let mut log = fresh_log(&m);
        // Bob joins at baseline 0.
        let (req, rsp) = pair(
            "/owncloud/join",
            r#"{"doc":"d1","client":"bob"}"#,
            r#"{"snapshot":"","seq":0}"#,
        );
        m.log_pair(&req, &rsp, &mut log).unwrap();
        // Alice contributes ops 1 and 2.
        let (req, rsp) = pair(
            "/owncloud/sync",
            r#"{"doc":"d1","client":"alice","ops":[{"content":"+a"},{"content":"+b"}]}"#,
            r#"{"acks":[1,2],"ops":[]}"#,
        );
        m.log_pair(&req, &rsp, &mut log).unwrap();
        // Server relays only op 2 to bob: op 1 was LOST.
        let (req, rsp) = pair(
            "/owncloud/sync",
            r#"{"doc":"d1","client":"bob","ops":[]}"#,
            r#"{"acks":[],"ops":[{"seq":2,"content":"+b"}]}"#,
        );
        m.log_pair(&req, &rsp, &mut log).unwrap();
        let v = log.query(OC_PREFIX_COMPLETE, &[]).unwrap();
        assert_eq!(v.rows.len(), 1);
    }

    #[test]
    fn faithful_relay_passes_all() {
        let m = OwnCloudModule;
        let mut log = fresh_log(&m);
        let (req, rsp) = pair(
            "/owncloud/join",
            r#"{"doc":"d1","client":"bob"}"#,
            r#"{"snapshot":"","seq":0}"#,
        );
        m.log_pair(&req, &rsp, &mut log).unwrap();
        let (req, rsp) = pair(
            "/owncloud/sync",
            r#"{"doc":"d1","client":"alice","ops":[{"content":"+a"},{"content":"+b"}]}"#,
            r#"{"acks":[1,2],"ops":[]}"#,
        );
        m.log_pair(&req, &rsp, &mut log).unwrap();
        let (req, rsp) = pair(
            "/owncloud/sync",
            r#"{"doc":"d1","client":"bob","ops":[]}"#,
            r#"{"acks":[],"ops":[{"seq":1,"content":"+a"},{"seq":2,"content":"+b"}]}"#,
        );
        m.log_pair(&req, &rsp, &mut log).unwrap();
        for inv in INVARIANTS {
            assert!(
                log.query(inv.sql, &[]).unwrap().is_empty(),
                "{} fired",
                inv.name
            );
        }
    }

    #[test]
    fn trimming_keeps_latest_snapshot_era() {
        let m = OwnCloudModule;
        let mut log = fresh_log(&m);
        for round in 0..3 {
            let (req, rsp) = pair(
                "/owncloud/sync",
                r#"{"doc":"d1","client":"alice","ops":[{"content":"+x"}]}"#,
                &format!(r#"{{"acks":[{}],"ops":[]}}"#, round + 1),
            );
            m.log_pair(&req, &rsp, &mut log).unwrap();
            let (req, rsp) = pair(
                "/owncloud/leave",
                &format!(
                    r#"{{"doc":"d1","client":"alice","snapshot":"v{round}","seq":{}}}"#,
                    round + 1
                ),
                r#"{"ok":true}"#,
            );
            m.log_pair(&req, &rsp, &mut log).unwrap();
        }
        log.trim(m.trim_queries()).unwrap();
        log.verify().unwrap();
        // Only the final snapshot_save (and nothing older) remains.
        let r = log.query("SELECT COUNT(*) FROM docupdates", &[]).unwrap();
        assert_eq!(r.scalar().unwrap(), &Value::Integer(1));
        let r = log
            .query(
                "SELECT content FROM docupdates WHERE kind = 'snapshot_save'",
                &[],
            )
            .unwrap();
        assert_eq!(r.scalar().unwrap(), &Value::Text("v2".into()));
    }
}

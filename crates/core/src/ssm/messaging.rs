//! A messaging service-specific module (the §2.2 "communication and
//! instant messaging" scenario).
//!
//! The paper motivates but does not evaluate this class of service:
//! relayed messages must be delivered unmodified, to the right
//! recipients, and must not be dropped. This module demonstrates
//! LibSEAL's generality claim (R1) by auditing a simple store-and-
//! forward protocol:
//!
//! - `POST /msg/send` `{from, to, body}` → `{id}` — the server accepts
//!   a message and assigns a sequence id;
//! - `POST /msg/inbox` `{user, after}` →
//!   `{messages: [{id, from, body}...]}` — the recipient drains
//!   messages with id greater than `after`.

use libseal_httpx::http;
use libseal_httpx::json::Json;
use libseal_sealdb::Value;

use super::{Invariant, ServiceModule};
use crate::log::{AuditLog, TableSpec};
use crate::Result;

/// Messaging SSM.
pub struct MessagingModule;

/// Audit schema: accepted and delivered message events.
pub const MESSAGING_SCHEMA: &str = "
CREATE TABLE accepted(time INTEGER, id INTEGER, sender TEXT,
                      recipient TEXT, body TEXT);
CREATE TABLE delivered(time INTEGER, id INTEGER, recipient TEXT,
                       sender TEXT, body TEXT);
";

/// Soundness: every delivered message was accepted with the same
/// sender, recipient and body (no forgery, no tampering, no
/// misdelivery).
pub const MSG_SOUNDNESS: &str = "SELECT * FROM delivered d
WHERE NOT EXISTS (SELECT 1 FROM accepted a WHERE a.id = d.id
  AND a.sender = d.sender AND a.recipient = d.recipient
  AND a.body = d.body AND a.time < d.time)";

/// Completeness: when an inbox drain delivers message `id`, every
/// accepted message for that recipient with a smaller id must already
/// have been delivered no later than that drain (no silent drops).
pub const MSG_COMPLETENESS: &str = "SELECT a.id, a.recipient FROM accepted a
JOIN delivered d ON d.recipient = a.recipient AND d.id > a.id
WHERE NOT EXISTS (SELECT 1 FROM delivered x WHERE x.recipient = a.recipient
  AND x.id = a.id AND x.time <= d.time)";

// Messaging invariants stay on the full-scan path (delta: None):
// completeness compares same-time rows (`x.time <= d.time`), so the
// monotone-time partition argument does not apply. This also keeps
// the mixed incremental/full-scan checker path exercised.
const INVARIANTS: &[Invariant] = &[
    Invariant {
        name: "messaging-soundness",
        sql: MSG_SOUNDNESS,
        delta: None,
    },
    Invariant {
        name: "messaging-completeness",
        sql: MSG_COMPLETENESS,
        delta: None,
    },
];

/// Trimming: a delivered message pair is settled once checked; keep
/// accepted-but-undelivered messages (they are exactly the evidence of
/// a pending drop).
const TRIM: &[&str] = &[
    "DELETE FROM accepted WHERE id IN (SELECT id FROM delivered
       WHERE delivered.recipient = accepted.recipient)",
    "DELETE FROM delivered",
];

impl ServiceModule for MessagingModule {
    fn name(&self) -> &'static str {
        "messaging"
    }

    fn schema_sql(&self) -> &'static str {
        MESSAGING_SCHEMA
    }

    fn tables(&self) -> Vec<TableSpec> {
        vec![
            TableSpec {
                name: "accepted",
                key_cols: &["time", "id"],
            },
            TableSpec {
                name: "delivered",
                key_cols: &["time", "id", "recipient"],
            },
        ]
    }

    fn invariants(&self) -> &'static [Invariant] {
        INVARIANTS
    }

    fn trim_queries(&self) -> &'static [&'static str] {
        TRIM
    }

    fn log_pair(&self, req: &[u8], rsp: &[u8], log: &mut AuditLog) -> Result<usize> {
        let Ok((request, _)) = http::parse_request(req) else {
            return Ok(0);
        };
        if request.method != "POST" {
            return Ok(0);
        }
        let Ok(req_json) = Json::parse_bytes(&request.body) else {
            return Ok(0);
        };
        let Ok((response, _)) = http::parse_response(rsp) else {
            return Ok(0);
        };
        if response.status != 200 {
            return Ok(0);
        }
        let rsp_json = Json::parse_bytes(&response.body).unwrap_or(Json::Null);
        let mut logged = 0usize;

        match request.path() {
            "/msg/send" => {
                let (Some(from), Some(to), Some(body)) = (
                    req_json.get("from").and_then(Json::as_str),
                    req_json.get("to").and_then(Json::as_str),
                    req_json.get("body").and_then(Json::as_str),
                ) else {
                    return Ok(0);
                };
                let Some(id) = rsp_json.get("id").and_then(Json::as_i64) else {
                    return Ok(0);
                };
                let t = log.next_time() as i64;
                log.append(
                    "accepted",
                    &[
                        Value::Integer(t),
                        Value::Integer(id),
                        Value::Text(from.to_string()),
                        Value::Text(to.to_string()),
                        Value::Text(body.to_string()),
                    ],
                )?;
                logged += 1;
            }
            "/msg/inbox" => {
                let Some(user) = req_json.get("user").and_then(Json::as_str) else {
                    return Ok(0);
                };
                let Some(messages) = rsp_json.get("messages").and_then(Json::as_array) else {
                    return Ok(0);
                };
                let t = log.next_time() as i64;
                for m in messages {
                    let (Some(id), Some(from), Some(body)) = (
                        m.get("id").and_then(Json::as_i64),
                        m.get("from").and_then(Json::as_str),
                        m.get("body").and_then(Json::as_str),
                    ) else {
                        continue;
                    };
                    log.append(
                        "delivered",
                        &[
                            Value::Integer(t),
                            Value::Integer(id),
                            Value::Text(user.to_string()),
                            Value::Text(from.to_string()),
                            Value::Text(body.to_string()),
                        ],
                    )?;
                    logged += 1;
                }
            }
            _ => {}
        }
        Ok(logged)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::log::{LogBacking, NoGuard};
    use libseal_crypto::ed25519::SigningKey;
    use libseal_httpx::http::{Request, Response};

    fn fresh_log(m: &MessagingModule) -> AuditLog {
        AuditLog::open(
            LogBacking::Memory,
            [0u8; 32],
            SigningKey::from_seed(&[1u8; 32]),
            Box::new(NoGuard),
            m.schema_sql(),
            m.tables(),
        )
        .unwrap()
    }

    fn send(log: &mut AuditLog, m: &MessagingModule, from: &str, to: &str, body: &str, id: i64) {
        let req = Request::new(
            "POST",
            "/msg/send",
            format!(r#"{{"from":"{from}","to":"{to}","body":"{body}"}}"#).into_bytes(),
        );
        let rsp = Response::new(200, format!(r#"{{"id":{id}}}"#).into_bytes());
        m.log_pair(&req.to_bytes(), &rsp.to_bytes(), log).unwrap();
    }

    fn drain(log: &mut AuditLog, m: &MessagingModule, user: &str, messages: &str) {
        let req = Request::new(
            "POST",
            "/msg/inbox",
            format!(r#"{{"user":"{user}","after":0}}"#).into_bytes(),
        );
        let rsp = Response::new(200, format!(r#"{{"messages":{messages}}}"#).into_bytes());
        m.log_pair(&req.to_bytes(), &rsp.to_bytes(), log).unwrap();
    }

    #[test]
    fn faithful_relay_is_clean() {
        let m = MessagingModule;
        let mut log = fresh_log(&m);
        send(&mut log, &m, "alice", "bob", "hi", 1);
        send(&mut log, &m, "carol", "bob", "yo", 2);
        drain(
            &mut log,
            &m,
            "bob",
            r#"[{"id":1,"from":"alice","body":"hi"},{"id":2,"from":"carol","body":"yo"}]"#,
        );
        for inv in INVARIANTS {
            assert!(log.query(inv.sql, &[]).unwrap().is_empty(), "{}", inv.name);
        }
    }

    #[test]
    fn tampered_message_detected() {
        let m = MessagingModule;
        let mut log = fresh_log(&m);
        send(&mut log, &m, "alice", "bob", "pay 10", 1);
        // The server alters the body in transit.
        drain(
            &mut log,
            &m,
            "bob",
            r#"[{"id":1,"from":"alice","body":"pay 1000"}]"#,
        );
        assert_eq!(log.query(MSG_SOUNDNESS, &[]).unwrap().rows.len(), 1);
    }

    #[test]
    fn forged_sender_detected() {
        let m = MessagingModule;
        let mut log = fresh_log(&m);
        send(&mut log, &m, "alice", "bob", "hello", 1);
        drain(
            &mut log,
            &m,
            "bob",
            r#"[{"id":1,"from":"mallory","body":"hello"}]"#,
        );
        assert_eq!(log.query(MSG_SOUNDNESS, &[]).unwrap().rows.len(), 1);
    }

    #[test]
    fn dropped_message_detected() {
        let m = MessagingModule;
        let mut log = fresh_log(&m);
        send(&mut log, &m, "alice", "bob", "first", 1);
        send(&mut log, &m, "alice", "bob", "second", 2);
        // The server silently drops message 1 but delivers 2.
        drain(
            &mut log,
            &m,
            "bob",
            r#"[{"id":2,"from":"alice","body":"second"}]"#,
        );
        assert_eq!(log.query(MSG_COMPLETENESS, &[]).unwrap().rows.len(), 1);
    }

    #[test]
    fn misdelivery_detected() {
        let m = MessagingModule;
        let mut log = fresh_log(&m);
        send(&mut log, &m, "alice", "bob", "secret", 1);
        // Delivered to carol instead.
        drain(
            &mut log,
            &m,
            "carol",
            r#"[{"id":1,"from":"alice","body":"secret"}]"#,
        );
        assert_eq!(log.query(MSG_SOUNDNESS, &[]).unwrap().rows.len(), 1);
    }

    #[test]
    fn trimming_keeps_undelivered_evidence() {
        let m = MessagingModule;
        let mut log = fresh_log(&m);
        send(&mut log, &m, "alice", "bob", "delivered", 1);
        send(&mut log, &m, "alice", "bob", "pending", 2);
        drain(
            &mut log,
            &m,
            "bob",
            r#"[{"id":1,"from":"alice","body":"delivered"}]"#,
        );
        log.trim(m.trim_queries()).unwrap();
        log.verify().unwrap();
        // The undelivered message survives as evidence.
        let r = log.query("SELECT id FROM accepted", &[]).unwrap();
        assert_eq!(r.rows.len(), 1);
        assert_eq!(r.rows[0][0], Value::Integer(2));
    }
}

//! The LibSEAL TLS termination shim (§3.1, §4).
//!
//! [`LibSeal`] is the drop-in replacement for a TLS library: services
//! hand it ciphertext from the wire ([`LibSeal::provide_input`]), read
//! decrypted requests ([`LibSeal::ssl_read`]), write responses
//! ([`LibSeal::ssl_write`]) and send the produced ciphertext back out
//! ([`LibSeal::take_output`]). The protocol state machine, session
//! keys and the audit log live inside a simulated SGX enclave; the
//! handle itself holds only *shadow* session structures with all
//! sensitive fields removed (§4.1, "Shadowing"), the preallocated
//! untrusted memory pool (§4.2) and the application's `ex_data`, which
//! is deliberately kept outside to avoid ecalls (§4.2, optimisation 3).
//!
//! When auditing is enabled, every complete request/response pair is
//! parsed by the configured service-specific module and appended to
//! the audit log before the response is encrypted; a `Libseal-Check`
//! request header triggers an invariant check whose outcome is
//! returned in-band as a `Libseal-Check-Result` response header
//! (§5.2).

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use libseal_crypto::ed25519::{SigningKey, VerifyingKey};
use libseal_crypto::sha2::Sha256;
use libseal_httpx::http;
use libseal_lthread::{AsyncRuntime, RuntimeConfig};
use libseal_sgxsim::attest::{Quote, QuotingEnclave};
use libseal_sgxsim::cost::CostModel;
use libseal_sgxsim::enclave::{Enclave, EnclaveBuilder, EnclaveServices};
use libseal_sgxsim::pool::MemoryPool;
use libseal_sgxsim::seal::SealingPolicy;
use libseal_sgxsim::stats::StatsSnapshot;
use libseal_tlsx::cert::{Certificate, CertificateAuthority};
use libseal_tlsx::ssl::{HandshakeState, ReadOutcome, Role, Ssl, SslConfig};
use plat::sync::{Mutex, RwLock};

use crate::check::{CheckOutcome, Checker};
use crate::commit::{CommitQueue, GroupCommitConfig, Sealer};
use crate::log::{
    AuditLog, CommitMode, HwCounterGuard, LogBacking, NoGuard, RollbackGuard, RoteGuard, TableSpec,
};
use crate::ssm::ServiceModule;
use crate::verifier::{Verifier, VerifierConfig, VerifierQueue};
use crate::{LibSealError, Result};

/// Default for [`LibSealConfig::max_message_buffer`]: generous enough
/// for large Git pushes and file uploads, small enough to bound a
/// malicious never-ending stream (interface hardening, §6.3).
pub const MAX_MESSAGE_BUFFER: usize = 64 * 1024 * 1024;

/// Returns true when `buf` can still be the start of an HTTP message
/// (prefix-compatible with `HTTP/`-style responses). Used to detect
/// non-HTTP streams early so they pass through instead of stalling in
/// the audit buffer.
fn could_be_http_response(buf: &[u8]) -> bool {
    const P: &[u8] = b"HTTP/";
    let n = buf.len().min(P.len());
    buf[..n] == P[..n]
}

/// Rollback-protection choice.
#[derive(Clone)]
pub enum GuardConfig {
    /// No rollback protection (baselines).
    None,
    /// The slow SGX hardware counter.
    Hardware,
    /// A ROTE quorum tolerating `f` faults with the given per-request
    /// latency (§5.1; the paper's Git evaluation uses `f = 1`).
    Rote {
        /// Tolerated faults.
        f: usize,
        /// Simulated per-node request latency.
        latency: Duration,
    },
}

/// LibSEAL instance configuration.
///
/// Constructed exclusively through [`LibSealConfig::builder`]; the
/// fields are crate-private so every knob flows through the fluent
/// builder and defaults stay in one place.
///
/// `Clone` exists so [`crate::plane::ShardedPlane`] can stamp out one
/// derived configuration per shard from a single template.
#[derive(Clone)]
pub struct LibSealConfig {
    /// The service's TLS certificate.
    pub(crate) cert: Certificate,
    /// The certificate's private key (provisioned via attestation in a
    /// real deployment; see [`crate::provision`]).
    pub(crate) key: SigningKey,
    /// Trusted CA roots for client-certificate verification.
    pub(crate) ca_roots: Vec<VerifyingKey>,
    /// Require client certificates (§6.3, impersonation defence).
    pub(crate) verify_clients: bool,
    /// The service-specific module; `None` disables auditing (the
    /// paper's "LibSEAL-process" configuration).
    pub(crate) ssm: Option<Arc<dyn ServiceModule>>,
    /// Log backing store.
    pub(crate) backing: LogBacking,
    /// Automatic check/trim interval in pairs (0 disables).
    pub(crate) check_interval: usize,
    /// Trim together with automatic checks.
    pub(crate) trim_with_check: bool,
    /// Client-triggered checks allowed per interval (DoS limit, §6.3).
    pub(crate) client_check_rate: usize,
    /// Rollback protection.
    pub(crate) guard: GuardConfig,
    /// SGX cost model.
    pub(crate) cost_model: CostModel,
    /// TCS slots in the enclave.
    pub(crate) tcs_count: u64,
    /// Seed for the log-signing key (derived from the sealing identity
    /// when absent).
    pub(crate) log_signer_seed: Option<[u8; 32]>,
    /// Maximum bytes one session may buffer while waiting for a
    /// message boundary (must exceed the largest audited message).
    pub(crate) max_message_buffer: usize,
    /// Group-commit pipeline tuning; `None` seals and fsyncs every
    /// audited pair individually.
    pub(crate) group_commit: Option<GroupCommitConfig>,
    /// Background verifier tuning; `None` runs due checks inline on
    /// the request path.
    pub(crate) verifier: Option<VerifierConfig>,
    /// Audit-plane shard count; values above 1 make
    /// [`LibSealConfigBuilder::build_plane`] provision a
    /// [`crate::plane::ShardedPlane`] instead of a single enclave.
    pub(crate) shards: usize,
    /// Audited responses between fleet epoch checkpoints (sharded
    /// planes only; 0 restricts checkpoints to drains and explicit
    /// requests).
    pub(crate) epoch_interval: u64,
    /// When set, the configured `cert`/`key` are placeholders: the
    /// enclave generates its TLS keypair inside at build time and the
    /// issuer mints an attested certificate bound to it (RA-TLS).
    pub(crate) attest: Option<AttestedIdentity>,
}

/// An attested-identity request: who signs the certificate + quote,
/// and the subject name the minted certificate carries.
///
/// Cloning shares the issuer, so a sharded plane stamps one of these
/// per shard and every shard mints its own in-enclave keypair under
/// the same roots.
#[derive(Clone)]
pub struct AttestedIdentity {
    pub(crate) issuer: Arc<crate::provision::IdentityIssuer>,
    pub(crate) subject: String,
}

impl LibSealConfig {
    /// Starts a configuration for a service presenting `cert`/`key`.
    ///
    /// Defaults: no auditing (call [`LibSealConfigBuilder::ssm`]), an
    /// in-memory log, checks every 25 pairs with trimming, a
    /// zero-latency `f = 1` ROTE guard, the default SGX cost model,
    /// 16 TCS slots, and group commit on (batches of up to 64 pairs
    /// share one counter bind, head signature and fsync).
    pub fn builder(cert: Certificate, key: SigningKey) -> LibSealConfigBuilder {
        LibSealConfigBuilder {
            config: LibSealConfig {
                cert,
                key,
                ca_roots: Vec::new(),
                verify_clients: false,
                ssm: None,
                backing: LogBacking::Memory,
                check_interval: 25,
                trim_with_check: true,
                client_check_rate: 4,
                guard: GuardConfig::Rote {
                    f: 1,
                    latency: Duration::ZERO,
                },
                cost_model: CostModel::default(),
                tcs_count: 16,
                log_signer_seed: None,
                max_message_buffer: MAX_MESSAGE_BUFFER,
                group_commit: Some(GroupCommitConfig::default()),
                verifier: Some(VerifierConfig::default()),
                shards: 1,
                epoch_interval: 1024,
                attest: None,
            },
        }
    }

    /// Starts a configuration whose TLS identity is minted at build
    /// time: the enclave generates its keypair inside and `issuer`
    /// issues a certificate for `subject` carrying a quote that
    /// commits to the public key (RA-TLS; see [`crate::provision`]).
    pub fn attested(
        issuer: Arc<crate::provision::IdentityIssuer>,
        subject: &str,
    ) -> LibSealConfigBuilder {
        // Placeholder identity, replaced during LibSeal::build once
        // the in-enclave keypair exists.
        let placeholder_ca = CertificateAuthority::new("attested-placeholder", &[0u8; 32]);
        let (key, cert) = placeholder_ca
            .issue_identity("attested-placeholder", &[0u8; 32])
            .expect("placeholder identity");
        let mut builder = LibSealConfig::builder(cert, key);
        builder.config.attest = Some(AttestedIdentity {
            issuer,
            subject: subject.to_string(),
        });
        builder
    }
}

/// Fluent builder for [`LibSealConfig`] (see
/// [`LibSealConfig::builder`]).
pub struct LibSealConfigBuilder {
    config: LibSealConfig,
}

impl LibSealConfigBuilder {
    /// Audits traffic with the given service-specific module.
    pub fn ssm(mut self, ssm: Arc<dyn ServiceModule>) -> Self {
        self.config.ssm = Some(ssm);
        self
    }

    /// Selects the audit-log backing store.
    pub fn backing(mut self, backing: LogBacking) -> Self {
        self.config.backing = backing;
        self
    }

    /// Selects the rollback-protection guard.
    pub fn guard(mut self, guard: GuardConfig) -> Self {
        self.config.guard = guard;
        self
    }

    /// Automatic check/trim interval in request/response pairs
    /// (0 disables).
    pub fn check_interval(mut self, pairs: usize) -> Self {
        self.config.check_interval = pairs;
        self
    }

    /// Whether automatic checks also trim the log.
    pub fn trim_with_check(mut self, trim: bool) -> Self {
        self.config.trim_with_check = trim;
        self
    }

    /// Client-triggered checks allowed per interval (DoS limit, §6.3).
    pub fn client_check_rate(mut self, rate: usize) -> Self {
        self.config.client_check_rate = rate;
        self
    }

    /// SGX transition cost model.
    pub fn cost_model(mut self, model: CostModel) -> Self {
        self.config.cost_model = model;
        self
    }

    /// TCS slots in the enclave.
    pub fn tcs_count(mut self, count: u64) -> Self {
        self.config.tcs_count = count;
        self
    }

    /// Fixed seed for the log-signing key (derived from the sealing
    /// identity when unset).
    pub fn log_signer_seed(mut self, seed: [u8; 32]) -> Self {
        self.config.log_signer_seed = Some(seed);
        self
    }

    /// Maximum bytes one session may buffer while waiting for a
    /// message boundary.
    pub fn max_message_buffer(mut self, bytes: usize) -> Self {
        self.config.max_message_buffer = bytes;
        self
    }

    /// Tunes the group-commit pipeline: `max_batch` bounds the commit
    /// queue (writers feel backpressure past it) and caps how many
    /// pairs one seal covers; `max_wait` is the extra time the sealer
    /// waits for a batch to fill before sealing what it has
    /// ([`Duration::ZERO`] seals as soon as the sealer is free — the
    /// previous batch's counter round and fsync naturally accumulate
    /// the next batch).
    pub fn group_commit(mut self, max_batch: usize, max_wait: Duration) -> Self {
        self.config.group_commit = Some(GroupCommitConfig {
            max_batch,
            max_wait,
        });
        self
    }

    /// Disables the group-commit pipeline: every audited pair binds
    /// the rollback counter, signs the head and fsyncs on its own.
    pub fn no_group_commit(mut self) -> Self {
        self.config.group_commit = None;
        self
    }

    /// Bounds the background verifier's lag: once `max_pending` due
    /// checks are outstanding, writers block until the verifier
    /// catches up.
    pub fn verifier_lag_bound(mut self, max_pending: usize) -> Self {
        self.config.verifier = Some(VerifierConfig { max_pending });
        self
    }

    /// Disables the background verifier: due checks run inline on the
    /// request path (deterministic; useful for tests and latency
    /// baselines).
    pub fn no_async_verify(mut self) -> Self {
        self.config.verifier = None;
        self
    }

    /// Requires client certificates (§6.3, impersonation defence).
    pub fn verify_clients(mut self, verify: bool) -> Self {
        self.config.verify_clients = verify;
        self
    }

    /// Trusted CA roots for client-certificate verification.
    pub fn ca_roots(mut self, roots: Vec<VerifyingKey>) -> Self {
        self.config.ca_roots = roots;
        self
    }

    /// Audit-plane shard count. `1` (the default) keeps the paper's
    /// single-enclave model; larger values shard the audit plane
    /// across that many enclaves behind one
    /// [`crate::plane::AuditPlane`], with sessions routed by
    /// consistent hashing and per-shard chains cross-linked into
    /// signed epoch checkpoints. Only
    /// [`LibSealConfigBuilder::build_plane`] acts on this knob;
    /// [`LibSeal::new`] always builds one enclave.
    pub fn shards(mut self, shards: usize) -> Self {
        self.config.shards = shards.max(1);
        self
    }

    /// Audited responses between fleet epoch checkpoints on a sharded
    /// plane (0 limits checkpoints to drains and explicit requests).
    pub fn epoch_interval(mut self, responses: u64) -> Self {
        self.config.epoch_interval = responses;
        self
    }

    /// Replaces the configured TLS identity with one minted at build
    /// time: the enclave generates its keypair inside and `issuer`
    /// issues an attested certificate for `subject`
    /// (see [`LibSealConfig::attested`]).
    pub fn attested_identity(
        mut self,
        issuer: Arc<crate::provision::IdentityIssuer>,
        subject: &str,
    ) -> Self {
        self.config.attest = Some(AttestedIdentity {
            issuer,
            subject: subject.to_string(),
        });
        self
    }

    /// Finalises the configuration.
    pub fn build(self) -> LibSealConfig {
        self.config
    }

    /// Finalises the configuration and provisions the audit plane it
    /// describes: a single [`LibSeal`] enclave for `shards(1)`, a
    /// [`crate::plane::ShardedPlane`] fleet otherwise. Services hold
    /// the returned [`crate::plane::AuditPlane`] and never learn
    /// which it is.
    ///
    /// # Errors
    ///
    /// [`LibSealError::Config`] on contradictory knobs (`shards(n>1)`
    /// with group commit disabled: a sharded plane exists to multiply
    /// sealer pipelines, so building one around per-pair sealing is
    /// certainly a mistake), or any enclave provisioning failure.
    pub fn build_plane(self) -> Result<Arc<dyn crate::plane::AuditPlane>> {
        crate::plane::build_plane(self.config)
    }
}

/// One in-enclave TLS session plus its audit buffers.
struct Session {
    ssl: Ssl,
    /// Decrypted request bytes not yet cut into messages.
    req_buf: Vec<u8>,
    /// Complete requests awaiting their response: (raw bytes,
    /// Libseal-Check requested?).
    pending: VecDeque<(Vec<u8>, bool)>,
    /// Plaintext response bytes not yet complete.
    rsp_buf: Vec<u8>,
}

/// The application's info callback (§4.1, "Secure callbacks"): lives
/// outside the enclave, reached through an ocall trampoline.
type InfoCallback = Arc<dyn Fn(i32, i32) + Send + Sync>;

/// Audit state bundle.
struct AuditState {
    log: AuditLog,
    ssm: Arc<dyn ServiceModule>,
    checker: Checker,
}

/// The trusted (in-enclave) state of a LibSEAL instance.
pub struct Trusted {
    /// Session TLS configuration. Write-locked exactly once, by the
    /// `install_cert` ecall that delivers the attested certificate
    /// minted for the in-enclave keypair; read on every new session.
    ssl_config: RwLock<Arc<SslConfig>>,
    max_message_buffer: usize,
    sessions: RwLock<HashMap<u64, Arc<Mutex<Session>>>>,
    next_sid: AtomicU64,
    audit: Option<Mutex<AuditState>>,
    /// Group-commit ticket queue shared with the sealer thread; `None`
    /// when auditing is off or group commit is disabled.
    commit: Option<Arc<CommitQueue>>,
    /// Background-verifier queue shared with the verifier thread;
    /// `None` when auditing is off or async verification is disabled.
    verify: Option<Arc<VerifierQueue>>,
    /// Outside info callback, reached through an ocall trampoline.
    info_cb: RwLock<Option<InfoCallback>>,
}

impl Trusted {
    fn session(&self, sid: u64) -> Result<Arc<Mutex<Session>>> {
        self.sessions
            .read()
            .get(&sid)
            .cloned()
            .ok_or(LibSealError::NoSuchSession(sid))
    }
}

/// A LibSEAL instance: the untrusted-side handle.
pub struct LibSeal {
    enclave: Arc<Enclave<Trusted>>,
    runtime: Option<AsyncRuntime<Trusted>>,
    /// Group-commit queue (shared with [`Trusted`] and the sealer).
    commit: Option<Arc<CommitQueue>>,
    /// The dedicated sealer thread, joined on drop.
    sealer: Option<Sealer>,
    /// Background-verifier queue (shared with [`Trusted`] and the
    /// verifier thread).
    verify: Option<Arc<VerifierQueue>>,
    /// The dedicated verifier thread, joined on drop.
    verifier: Option<Verifier>,
    /// Sanitised session shadows (no key material by construction).
    shadows: RwLock<HashMap<u64, ShadowSsl>>,
    /// Whether an SSM is configured (cached to avoid probing ecalls).
    audited: bool,
    /// Preallocated untrusted memory pool for I/O staging buffers.
    pool: Arc<MemoryPool>,
    cert: Certificate,
}

/// The outside shadow of an in-enclave session (§4.1): handshake
/// progress and application data only — session keys never appear
/// here.
#[derive(Clone, Debug, Default)]
pub struct ShadowSsl {
    /// Last observed handshake state.
    pub established: bool,
    /// Whether the session is closed.
    pub closed: bool,
    /// Application-specific data (kept outside to avoid ecalls, §4.2
    /// optimisation 3).
    pub ex_data: HashMap<u32, Vec<u8>>,
}

/// How enclave code reaches the outside world for the current call:
/// full synchronous ocalls, or cheap asynchronous slot handoffs
/// (§4.3). LibSEAL's internal BIO traffic (the reads/writes and small
/// allocations LibreSSL performs around every TLS record) is charged
/// through this, which is exactly where the async mechanism saves its
/// cost.
pub enum CallCtx<'p> {
    /// Synchronous ocalls: a full transition each.
    Sync(&'p EnclaveServices),
    /// Asynchronous ocalls through the caller's request slot.
    Async(&'p libseal_lthread::OcallPort<'p, Trusted>),
}

impl CallCtx<'_> {
    /// Performs one outside call under the current regime.
    pub fn ocall<R: Send + 'static>(&self, name: &'static str, f: impl FnOnce() -> R + Send) -> R {
        match self {
            CallCtx::Sync(sv) => sv.ocall(name, f),
            CallCtx::Async(port) => port.ocall(name, f),
        }
    }

    /// Charges `n` modelled BIO interactions (no payload; the data
    /// movement itself is handled by the caller).
    pub fn bio_traffic(&self, name: &'static str, n: usize) {
        for _ in 0..n {
            self.ocall(name, || ());
        }
    }
}

/// One session's pending wire input for [`LibSeal::pump_batch`].
#[derive(Debug)]
pub struct SessionInput {
    /// Session id.
    pub sid: u64,
    /// Ciphertext read from the socket since the last pump. May be
    /// empty to pump only handshake/output state.
    pub input: Vec<u8>,
}

/// Per-session result of [`LibSeal::pump_batch`]. Failures are
/// per-session (`error`), never the whole batch: one misbehaving peer
/// must not poison the other sessions sharing its transition.
#[derive(Debug)]
pub struct SessionOutcome {
    /// Session id.
    pub sid: u64,
    /// Whether the handshake is complete after this pump.
    pub established: bool,
    /// Decrypted request plaintext drained this pump.
    pub data: Vec<u8>,
    /// Wire ciphertext that must be written to the socket.
    pub output: Vec<u8>,
    /// The peer sent close_notify; the session should be torn down.
    pub closed: bool,
    /// Fatal failure for this session only (TLS alert, audit-buffer
    /// overflow, unknown sid).
    pub error: Option<LibSealError>,
}

/// Cuts complete requests out of freshly decrypted bytes and queues
/// them for audit pairing (the read half of the pipeline). The caller
/// holds the session lock and has already charged EPC touches.
fn queue_audit_requests(max_message_buffer: usize, s: &mut Session, data: &[u8]) -> Result<()> {
    s.req_buf.extend_from_slice(data);
    loop {
        // Unlimited parser bounds: the serving edge already enforced
        // its HTTP limits before these bytes were admitted; the audit
        // pipeline's own memory bound is `max_message_buffer` below.
        match http::parse_request_limited(&s.req_buf, &http::Limits::unlimited()) {
            Ok((req, used)) => {
                let check = req.headers.get("Libseal-Check").is_some();
                let raw: Vec<u8> = s.req_buf.drain(..used).collect();
                s.pending.push_back((raw, check));
            }
            Err(libseal_httpx::ParseError::Incomplete) => break,
            Err(_) => {
                // Provably not HTTP: these bytes can never become a
                // message. Drop them so unauditable traffic does not
                // poison the session (the application already received
                // the plaintext).
                s.req_buf.clear();
                break;
            }
        }
    }
    // Interface hardening (§6.3): a peer streaming bytes that never
    // form a message must not grow enclave memory without bound.
    if s.req_buf.len() > max_message_buffer {
        return Err(LibSealError::Log(
            "request stream exceeds the audit buffer limit".into(),
        ));
    }
    Ok(())
}

/// The in-enclave body shared by [`LibSeal::ssl_write`] and
/// [`LibSeal::ssl_write_take`]: buffer the response, pair complete
/// messages with their requests, log, group-commit and encrypt.
fn write_session(
    t: &Trusted,
    sv: &EnclaveServices,
    ctx: &CallCtx<'_>,
    sid: u64,
    data: &[u8],
    audited: bool,
) -> Result<()> {
    // Record emission: scratch allocation plus BIO push per 16 KB
    // record (LibreSSL instrumentation, §4.2). All modelled
    // transitions are charged while no lock is held: an async ocall
    // suspends this lthread, and a suspended lock holder deadlocks
    // every other lthread on the same worker thread.
    ctx.bio_traffic("malloc", 1);
    ctx.bio_traffic("bio_write", 1 + data.len() / (16 * 1024));
    let mut log_flushes = 0usize;
    {
        let session = t.session(sid)?;
        let mut s = session.lock();
        if !audited {
            s.ssl.ssl_write(data).map_err(LibSealError::Tls)?;
            return Ok(());
        }
        s.rsp_buf.extend_from_slice(data);
        sv.epc_touch(data.len() as u64);
        if s.rsp_buf.len() > t.max_message_buffer {
            return Err(LibSealError::Log(
                "response stream exceeds the audit buffer limit".into(),
            ));
        }
        // A stream that provably is not HTTP (wrong first bytes) can
        // never be audited or header-injected; forward it verbatim
        // instead of stalling the client.
        if !could_be_http_response(&s.rsp_buf) {
            let raw: Vec<u8> = s.rsp_buf.drain(..).collect();
            s.ssl.ssl_write(&raw).map_err(LibSealError::Tls)?;
            return Ok(());
        }
        loop {
            let (mut response, used) =
                match http::parse_response_limited(&s.rsp_buf, &http::Limits::unlimited()) {
                Ok(r) => r,
                Err(libseal_httpx::ParseError::Incomplete) => break,
                Err(_) => {
                    // The service wrote something that can never parse
                    // as HTTP; forward it verbatim (unaudited) rather
                    // than stalling the client forever.
                    let raw: Vec<u8> = s.rsp_buf.drain(..).collect();
                    s.ssl.ssl_write(&raw).map_err(LibSealError::Tls)?;
                    break;
                }
            };
            let raw_rsp: Vec<u8> = s.rsp_buf.drain(..used).collect();
            let (raw_req, check_requested) = s.pending.pop_front().unwrap_or((Vec::new(), false));
            let audit = t.audit.as_ref().expect("audited instances have state");
            // Backpressure BEFORE taking the audit lock: blocking
            // inside it would stall the very sealer (or verifier) that
            // makes room in the queue.
            if let Some(q) = &t.commit {
                q.wait_for_space();
            }
            if let Some(vq) = &t.verify {
                vq.wait_for_space();
            }
            let mut astate = audit.lock();
            let AuditState { log, ssm, checker } = &mut *astate;
            let logged = ssm.log_pair(&raw_req, &raw_rsp, log)?;
            let mut ticket = None;
            if logged > 0 {
                match &t.commit {
                    // Group commit: take a ticket while still holding
                    // the audit lock, so ticket order matches log
                    // order; the sealer makes the whole batch durable
                    // with one counter bind, one signature and one
                    // fsync.
                    Some(q) => ticket = Some(q.stage()?),
                    // One durable flush per request/response pair
                    // (§5.1); charged as an ocall below, after the
                    // locks are released.
                    None => {
                        log.flush()?;
                        log_flushes += 1;
                    }
                }
            }
            if checker.note_pair() {
                match &t.verify {
                    // Background verification: hand the due check to
                    // the verifier thread and answer the client now.
                    // Lag is bounded by the backpressure above and
                    // surfaced as the core_verifier_lag gauge.
                    Some(vq) if vq.enqueue().is_ok() => {}
                    // Inline fallback (verifier disabled or shut
                    // down): the pre-pool behaviour.
                    _ => {
                        let _ = checker.run_due(ssm.as_ref(), log)?;
                    }
                }
            }
            let out_bytes = if check_requested {
                let outcome = checker.client_check(ssm.as_ref(), log)?;
                if outcome.is_some() {
                    // A synchronous check just covered the full
                    // current history; pending background batches are
                    // subsumed by it.
                    if let Some(vq) = &t.verify {
                        vq.absorb();
                    }
                }
                let value = match &outcome {
                    Some(o) => o.header_value(),
                    None => checker.last_outcome.header_value(),
                };
                response.headers.set("Libseal-Check-Result", value);
                response.to_bytes()
            } else {
                raw_rsp
            };
            drop(astate);
            // The commit barrier preserves response-before-durable:
            // the response is released only once the batch carrying
            // this pair is sealed and fsynced.
            if let (Some(q), Some(tk)) = (&t.commit, ticket) {
                q.await_durable(tk)?;
            }
            s.ssl.ssl_write(&out_bytes).map_err(LibSealError::Tls)?;
        }
    }
    // Persisting the log crosses the boundary: the journal write +
    // fsync happen outside the enclave (charged after all locks are
    // released).
    for _ in 0..log_flushes {
        ctx.ocall("log_flush", || ());
    }
    Ok(())
}

/// Pumps one session inside a `tls_batch` ecall: feed input, progress
/// the handshake, drain decrypted requests (queueing them for audit
/// pairing) and collect pending wire output. Never propagates — every
/// failure lands in the outcome's `error`.
fn pump_session(
    t: &Trusted,
    sv: &EnclaveServices,
    item: SessionInput,
    audited: bool,
) -> SessionOutcome {
    let mut outcome = SessionOutcome {
        sid: item.sid,
        established: false,
        data: Vec::new(),
        output: Vec::new(),
        closed: false,
        error: None,
    };
    let session = match t.session(item.sid) {
        Ok(s) => s,
        Err(e) => {
            outcome.error = Some(e);
            return outcome;
        }
    };
    let mut s = session.lock();
    if !item.input.is_empty() {
        s.ssl.provide_input(&item.input);
    }
    if s.ssl.is_established() {
        outcome.established = true;
    } else {
        match s.ssl.do_handshake() {
            Ok(done) => outcome.established = done,
            Err(e) => {
                // Collect the alert the state machine queued so the
                // peer learns why before the reactor tears down.
                outcome.error = Some(LibSealError::Tls(e));
                outcome.output = s.ssl.take_output();
                return outcome;
            }
        }
    }
    if outcome.established {
        loop {
            match s.ssl.ssl_read() {
                Ok(ReadOutcome::Data(d)) => {
                    if audited {
                        sv.epc_touch(d.len() as u64);
                        if let Err(e) = queue_audit_requests(t.max_message_buffer, &mut s, &d) {
                            outcome.error = Some(e);
                            break;
                        }
                    }
                    outcome.data.extend_from_slice(&d);
                }
                Ok(ReadOutcome::WantRead) => break,
                Ok(ReadOutcome::Closed) => {
                    outcome.closed = true;
                    break;
                }
                Err(e) => {
                    outcome.error = Some(LibSealError::Tls(e));
                    break;
                }
            }
        }
    }
    outcome.output = s.ssl.take_output();
    outcome
}

impl LibSeal {
    /// Builds a LibSEAL instance with synchronous enclave calls.
    ///
    /// # Errors
    ///
    /// Log initialisation failures.
    pub fn new(config: LibSealConfig) -> Result<Arc<LibSeal>> {
        Self::build(config, None)
    }

    /// Builds a LibSEAL instance served by the asynchronous enclave
    /// call runtime of §4.3.
    ///
    /// # Errors
    ///
    /// Log or runtime initialisation failures.
    pub fn with_async(config: LibSealConfig, rt: RuntimeConfig) -> Result<Arc<LibSeal>> {
        Self::build(config, Some(rt))
    }

    fn build(config: LibSealConfig, rt: Option<RuntimeConfig>) -> Result<Arc<LibSeal>> {
        let cert = config.cert.clone();
        let ssm_name = config
            .ssm
            .as_ref()
            .map(|s| s.name().to_string())
            .unwrap_or_else(|| "none".to_string());
        let identity = format!("libseal-v1 ssm={ssm_name}");
        let mut builder = EnclaveBuilder::new(identity.as_bytes())
            .cost_model(config.cost_model.clone())
            .tcs_count(config.tcs_count);
        for name in [
            "new_session",
            "provide_input",
            "take_output",
            "do_handshake",
            "ssl_read",
            "ssl_write",
            "close_session",
            "check_now",
            "trim_now",
            "verify_log",
            "log_stats",
            "seal_batch",
            "verify_batch",
            "tls_batch",
            // Declared unconditionally: the measurement covers the
            // interface list, so attested and plain builds of the same
            // SSM must not fork their MRENCLAVE over this ecall.
            "install_cert",
        ] {
            builder = builder.declare_interface(name);
        }

        // The group-commit ticket queue is shared three ways: writers
        // (inside ssl_write ecalls), the sealer thread, and the
        // outside handle for shutdown.
        let commit = match (&config.ssm, &config.group_commit) {
            (Some(_), Some(gc)) => Some(Arc::new(CommitQueue::new(*gc))),
            _ => None,
        };
        let commit_for_trusted = commit.clone();

        // The verifier queue is shared the same three ways: the
        // request path (enqueueing due checks inside ssl_write), the
        // verifier thread, and the outside handle for barriers and
        // shutdown.
        let verify = match (&config.ssm, &config.verifier) {
            (Some(_), Some(vc)) => Some(Arc::new(VerifierQueue::new(*vc))),
            _ => None,
        };
        let verify_for_trusted = verify.clone();

        // Build failures inside the init closure are carried out, and
        // so is the public key of the keypair generated in-enclave for
        // an attested identity (the private half never leaves).
        let mut init_err: Option<LibSealError> = None;
        let mut minted_pubkey: Option<[u8; 32]> = None;
        let enclave = builder.build(|services| {
            let (tls_cert, tls_key) = match &config.attest {
                Some(_) => {
                    // RA-TLS phase one: generate the TLS keypair inside
                    // the enclave. The certificate arrives later via
                    // the `install_cert` ecall, once the issuer has
                    // quoted this enclave over the public key.
                    let mut seed = [0u8; 32];
                    services.fill_random(&mut seed);
                    let key = SigningKey::from_seed(&seed);
                    minted_pubkey = Some(*key.verifying_key().as_bytes());
                    (None, Some(key))
                }
                None => (Some(config.cert.clone()), Some(config.key.clone())),
            };
            let ssl_config = RwLock::new(Arc::new(SslConfig {
                role: Role::Server,
                cert: tls_cert,
                key: tls_key,
                ca_roots: config.ca_roots.clone(),
                verify_peer: config.verify_clients,
                expected_subject: None,
                attestation: None,
            }));
            let audit = match &config.ssm {
                None => None,
                Some(ssm) => {
                    let guard: Box<dyn RollbackGuard> = match &config.guard {
                        GuardConfig::None => Box::new(NoGuard),
                        GuardConfig::Hardware => Box::new(HwCounterGuard(
                            libseal_sgxsim::MonotonicCounter::hardware_realistic(),
                        )),
                        GuardConfig::Rote { f, latency } => {
                            match libseal_rote::Cluster::new(*f, *latency, b"libseal-log") {
                                Ok(c) => Box::new(RoteGuard(std::sync::Arc::new(c))),
                                Err(e) => {
                                    init_err = Some(LibSealError::Log(e.to_string()));
                                    Box::new(NoGuard)
                                }
                            }
                        }
                    };
                    let seal_key = services.seal_key(SealingPolicy::MrSigner);
                    let signer_seed = config.log_signer_seed.unwrap_or_else(|| {
                        // Derive a deterministic signer from the seal
                        // identity so restarts verify old logs.
                        Sha256::digest(&seal_key)
                    });
                    match AuditLog::open(
                        config.backing,
                        seal_key,
                        SigningKey::from_seed(&signer_seed),
                        guard,
                        ssm.schema_sql(),
                        ssm.tables(),
                    ) {
                        Ok(mut log) => {
                            if commit_for_trusted.is_some() {
                                // Appends stage into the chain; the
                                // sealer binds the counter and signs
                                // once per batch.
                                log.set_commit_mode(CommitMode::Staged);
                            }
                            // Register the delta-maintained views so
                            // checks cost O(rows touched since the
                            // last check) instead of O(log).
                            if let Err(e) = Checker::install(ssm.as_ref(), &mut log) {
                                init_err = Some(e);
                            }
                            services.epc_alloc(log.size_bytes() as u64 + 64 * 1024);
                            Some(Mutex::new(AuditState {
                                log,
                                ssm: Arc::clone(ssm),
                                checker: Checker::new(
                                    config.check_interval,
                                    config.trim_with_check,
                                    config.client_check_rate,
                                ),
                            }))
                        }
                        Err(e) => {
                            init_err = Some(e);
                            None
                        }
                    }
                }
            };
            Trusted {
                ssl_config,
                max_message_buffer: config.max_message_buffer,
                sessions: RwLock::new(HashMap::new()),
                next_sid: AtomicU64::new(1),
                audit,
                commit: commit_for_trusted,
                verify: verify_for_trusted,
                info_cb: RwLock::new(None),
            }
        });
        if let Some(e) = init_err {
            return Err(e);
        }
        let enclave = Arc::new(enclave);
        // RA-TLS phase two: quote the built enclave over the public
        // key it generated, mint the attested certificate outside, and
        // install it next to the in-enclave private key.
        let cert = match (&config.attest, minted_pubkey) {
            (Some(att), Some(pubkey)) => {
                let minted = att.issuer.mint(&att.subject, &pubkey, enclave.services())?;
                let installed = minted.clone();
                enclave
                    .ecall("install_cert", move |t: &Trusted, _| {
                        let mut cfg = t.ssl_config.write();
                        let mut fresh = (**cfg).clone();
                        fresh.cert = Some(installed);
                        *cfg = Arc::new(fresh);
                    })
                    .map_err(|e| LibSealError::Log(e.to_string()))?;
                minted
            }
            _ => cert,
        };
        // The dedicated sealer: one enclave transition per batch makes
        // the whole batch durable — one counter bind, one head
        // signature (AuditLog::seal) and one fsync (flush).
        let sealer = commit.as_ref().map(|q| {
            let enclave = Arc::clone(&enclave);
            Sealer::spawn(Arc::clone(q), move || -> Result<()> {
                enclave
                    .ecall("seal_batch", |t: &Trusted, sv| -> Result<()> {
                        let audit = t.audit.as_ref().ok_or(LibSealError::AuditingDisabled)?;
                        // The counter round is the slow part of a seal
                        // (a quorum network round trip); run it WITHOUT
                        // the audit lock so writers stage the next
                        // batch while it is in flight. Entries appended
                        // meanwhile are covered by the signature below.
                        let guard = {
                            let astate = audit.lock();
                            if !astate.log.is_dirty() {
                                return Ok(());
                            }
                            astate.log.guard_handle()
                        };
                        plat::failpoint::check("core::log::append::counter")
                            .map_err(|e| LibSealError::Log(e.to_string()))?;
                        let counter = guard.increment()?;
                        let mut astate = audit.lock();
                        astate.log.seal_bound(counter)?;
                        astate.log.flush()?;
                        drop(astate);
                        // The journal write + fsync cross the enclave
                        // boundary; charged after the lock is released.
                        sv.ocall("log_flush", || ());
                        Ok(())
                    })
                    .map_err(|e| LibSealError::Log(e.to_string()))?
            })
        });
        // The dedicated verifier: drains due checks off the request
        // path with one enclave transition per coalesced batch; the
        // incremental views keep each drain short.
        let verifier = verify.as_ref().map(|q| {
            let enclave = Arc::clone(&enclave);
            Verifier::spawn(Arc::clone(q), move || -> Result<CheckOutcome> {
                enclave
                    .ecall("verify_batch", |t: &Trusted, _| -> Result<CheckOutcome> {
                        let audit = t.audit.as_ref().ok_or(LibSealError::AuditingDisabled)?;
                        let mut astate = audit.lock();
                        let AuditState { log, ssm, checker } = &mut *astate;
                        checker.run_due(ssm.as_ref(), log)
                    })
                    .map_err(|e| LibSealError::Log(e.to_string()))?
            })
        });
        let runtime = match rt {
            Some(cfg) => Some(
                AsyncRuntime::start(Arc::clone(&enclave), cfg)
                    .map_err(|e| LibSealError::Log(e.to_string()))?,
            ),
            None => None,
        };
        let audited = config.ssm.is_some();
        Ok(Arc::new(LibSeal {
            enclave,
            runtime,
            commit,
            sealer,
            verify,
            verifier,
            shadows: RwLock::new(HashMap::new()),
            pool: MemoryPool::new(16 * 1024, 64),
            cert,
            audited,
        }))
    }

    fn call<R: Send + 'static>(
        &self,
        slot: usize,
        name: &'static str,
        f: impl for<'p> FnOnce(&Trusted, &EnclaveServices, &CallCtx<'p>) -> R + Send,
    ) -> Result<R> {
        // The span stays open across the enclave round trip, so the
        // transition cycles the call charges on this thread are
        // attributed to it (async handoffs dispatch on runtime worker
        // threads and attribute there instead).
        let _span = libseal_telemetry::global().span(name, libseal_telemetry::Side::Enclave);
        match &self.runtime {
            Some(rt) => {
                Ok(rt.async_ecall(slot, move |t, sv, port| f(t, sv, &CallCtx::Async(port))))
            }
            None => self
                .enclave
                .ecall(name, move |t, sv| f(t, sv, &CallCtx::Sync(sv)))
                .map_err(|e| LibSealError::Log(e.to_string())),
        }
    }

    /// Opens a new TLS session, returning its id.
    ///
    /// # Errors
    ///
    /// Enclave entry failures.
    pub fn new_session(&self, slot: usize) -> Result<u64> {
        let sid = self.call(slot, "new_session", |t, sv, _ctx| {
            let mut entropy = [0u8; 64];
            sv.fill_random(&mut entropy);
            let mut ssl = Ssl::new(Arc::clone(&t.ssl_config.read()), entropy);
            // Install the secure-callback trampoline: the outside
            // callback is reached only through an accounted ocall
            // (§4.1, "Secure callbacks").
            let cb_slot = t.info_cb.read().clone();
            if let Some(outside_cb) = cb_slot {
                let stats = sv.stats_arc();
                let model = sv.model().clone();
                ssl.set_info_callback(Arc::new(move |code, arg| {
                    let threads = 1;
                    let cycles = model.transition_cycles(threads);
                    model.charge_cycles(cycles);
                    stats.record_ocall("info_callback", cycles);
                    outside_cb(code, arg);
                }));
            }
            let sid = t.next_sid.fetch_add(1, Ordering::Relaxed);
            sv.epc_alloc(8 * 1024);
            t.sessions.write().insert(
                sid,
                Arc::new(Mutex::new(Session {
                    ssl,
                    req_buf: Vec::new(),
                    pending: VecDeque::new(),
                    rsp_buf: Vec::new(),
                })),
            );
            sid
        })?;
        self.shadows.write().insert(sid, ShadowSsl::default());
        Ok(sid)
    }

    /// Registers the application's info callback (invoked outside the
    /// enclave through an ocall trampoline).
    ///
    /// # Errors
    ///
    /// Enclave entry failures.
    pub fn set_info_callback(
        &self,
        slot: usize,
        cb: Arc<dyn Fn(i32, i32) + Send + Sync>,
    ) -> Result<()> {
        self.call(slot, "new_session", move |t, _, _ctx| {
            *t.info_cb.write() = Some(cb);
        })
    }

    /// Feeds wire ciphertext into a session.
    ///
    /// # Errors
    ///
    /// Unknown session or enclave failures.
    pub fn provide_input(&self, slot: usize, sid: u64, data: &[u8]) -> Result<()> {
        // Stage through the untrusted pool (the paper's BIO buffers).
        let data = data.to_vec();
        self.call(slot, "provide_input", move |t, sv, ctx| -> Result<()> {
            sv.interface_check(data.len() <= 1 << 24, "oversized input chunk")
                .map_err(|e| LibSealError::Log(e.to_string()))?;
            // The enclave pulls the ciphertext from the outside BIO and
            // stages it in a small buffer (LibreSSL: BIO_read + malloc).
            // Charged BEFORE taking any lock: an async ocall suspends
            // this lthread, and suspending while holding a lock would
            // deadlock the worker thread.
            ctx.bio_traffic("bio_read", 1 + data.len() / (16 * 1024));
            let session = t.session(sid)?;
            let mut s = session.lock();
            s.ssl.provide_input(&data);
            Ok(())
        })?
    }

    /// Takes wire ciphertext that must be sent to the peer.
    ///
    /// # Errors
    ///
    /// Unknown session or enclave failures.
    pub fn take_output(&self, slot: usize, sid: u64) -> Result<Vec<u8>> {
        self.call(slot, "take_output", move |t, _, ctx| -> Result<Vec<u8>> {
            let session = t.session(sid)?;
            let out = {
                let mut s = session.lock();
                s.ssl.take_output()
            };
            // Push records to the outside BIO (LibreSSL: BIO_write);
            // charged after the lock is released (lock-across-ocall
            // would deadlock the lthread scheduler).
            if !out.is_empty() {
                ctx.bio_traffic("bio_write", 1 + out.len() / (16 * 1024));
            }
            Ok(out)
        })?
    }

    /// Progresses the handshake; `true` once established.
    ///
    /// # Errors
    ///
    /// Handshake failures (fatal for the session).
    pub fn do_handshake(&self, slot: usize, sid: u64) -> Result<bool> {
        let done = self.call(slot, "do_handshake", move |t, _, ctx| -> Result<bool> {
            // Handshake processing walks BIOs and allocates buffers for
            // each flight (LibreSSL: several BIO/malloc round trips).
            // Charged before locking (no ocalls under locks).
            ctx.bio_traffic("bio_handshake", 2);
            let session = t.session(sid)?;
            let mut s = session.lock();
            s.ssl.do_handshake().map_err(LibSealError::Tls)
        })??;
        if done {
            if let Some(shadow) = self.shadows.write().get_mut(&sid) {
                shadow.established = true;
            }
        }
        Ok(done)
    }

    /// Reads decrypted application data (requests). Complete requests
    /// are also queued for audit pairing.
    ///
    /// # Errors
    ///
    /// TLS failures; unknown session.
    pub fn ssl_read(&self, slot: usize, sid: u64) -> Result<ReadOutcome> {
        let audited = self.is_audited();
        let out = self.call(slot, "ssl_read", move |t, sv, ctx| -> Result<ReadOutcome> {
            // Record processing: BIO pull plus a scratch allocation per
            // call (LibreSSL instrumentation, §4.2). Charged before
            // locking (no ocalls under locks).
            ctx.bio_traffic("bio_read", 1);
            ctx.bio_traffic("malloc", 1);
            let session = t.session(sid)?;
            let mut s = session.lock();
            let outcome = s.ssl.ssl_read().map_err(LibSealError::Tls)?;
            if audited {
                if let ReadOutcome::Data(data) = &outcome {
                    sv.epc_touch(data.len() as u64);
                    // Cut complete requests out of the stream.
                    queue_audit_requests(t.max_message_buffer, &mut s, data)?;
                }
            }
            Ok(outcome)
        })??;
        if matches!(out, ReadOutcome::Closed) {
            if let Some(shadow) = self.shadows.write().get_mut(&sid) {
                shadow.closed = true;
            }
        }
        Ok(out)
    }

    /// Writes response plaintext. With auditing enabled the response
    /// is buffered until complete, logged against its request, and the
    /// `Libseal-Check-Result` header is injected when requested.
    ///
    /// # Errors
    ///
    /// TLS or audit failures.
    pub fn ssl_write(&self, slot: usize, sid: u64, data: &[u8]) -> Result<()> {
        let audited = self.is_audited();
        let data = data.to_vec();
        self.call(slot, "ssl_write", move |t, sv, ctx| {
            write_session(t, sv, ctx, sid, &data, audited)
        })?
    }

    /// Writes response plaintext and returns the resulting wire
    /// ciphertext in the *same* transition — the event-driven serve
    /// loop's replacement for an `ssl_write` + `take_output` pair
    /// (§4.2 optimisation 1: fewer crossings per response).
    ///
    /// # Errors
    ///
    /// TLS or audit failures.
    pub fn ssl_write_take(&self, slot: usize, sid: u64, data: &[u8]) -> Result<Vec<u8>> {
        let audited = self.is_audited();
        let data = data.to_vec();
        self.call(slot, "ssl_write", move |t, sv, ctx| -> Result<Vec<u8>> {
            write_session(t, sv, ctx, sid, &data, audited)?;
            let session = t.session(sid)?;
            let out = {
                let mut s = session.lock();
                s.ssl.take_output()
            };
            // Push records to the outside BIO (LibreSSL: BIO_write);
            // charged after the lock is released (lock-across-ocall
            // would deadlock the lthread scheduler).
            if !out.is_empty() {
                ctx.bio_traffic("bio_write", 1 + out.len() / (16 * 1024));
            }
            Ok(out)
        })?
    }

    /// Pumps many sessions through **one** enclave transition: for
    /// each entry, feed its wire input, progress the handshake, drain
    /// decrypted requests (queueing complete ones for audit pairing)
    /// and collect pending wire output. The event-driven serve loops
    /// call this once per readiness sweep, so the transition cost is
    /// amortised across every ready session (the same §4.3 motivation
    /// as `seal_batch`/`verify_batch`).
    ///
    /// Failures are per-session: a TLS alert or audit overflow lands
    /// in that entry's [`SessionOutcome::error`] while the rest of the
    /// batch proceeds.
    ///
    /// # Errors
    ///
    /// Enclave entry failures only.
    pub fn pump_batch(&self, slot: usize, items: Vec<SessionInput>) -> Result<Vec<SessionOutcome>> {
        let audited = self.is_audited();
        let count = items.len() as u64;
        let _span = libseal_telemetry::global().span("tls_batch", libseal_telemetry::Side::Enclave);
        let run =
            move |t: &Trusted, sv: &EnclaveServices, ctx: &CallCtx<'_>| -> Vec<SessionOutcome> {
                // Stage the whole batch's ciphertext through the outside
                // BIO up front — one pull for the sweep, charged before
                // any lock (no ocalls under locks).
                let in_bytes: usize = items.iter().map(|i| i.input.len()).sum();
                ctx.bio_traffic("bio_read", 1 + in_bytes / (16 * 1024));
                let outcomes: Vec<SessionOutcome> = items
                    .into_iter()
                    .map(|item| pump_session(t, sv, item, audited))
                    .collect();
                // One aggregate push for everything the sweep produced.
                let out_bytes: usize = outcomes.iter().map(|o| o.output.len()).sum();
                if out_bytes > 0 {
                    ctx.bio_traffic("bio_write", 1 + out_bytes / (16 * 1024));
                }
                outcomes
            };
        let outcomes = match &self.runtime {
            // Async runtime: the handoff mechanism already amortises
            // transition cost; dispatch on a runtime worker like every
            // other call.
            Some(rt) => rt.async_ecall(slot, move |t, sv, port| run(t, sv, &CallCtx::Async(port))),
            // Sync path: a single batched ecall priced as one
            // transition carrying `count` work items.
            None => self
                .enclave
                .ecall_batch("tls_batch", count, move |t, sv| {
                    run(t, sv, &CallCtx::Sync(sv))
                })
                .map_err(|e| LibSealError::Log(e.to_string()))?,
        };
        // Shadow updates happen outside the enclave, as everywhere
        // else (§4.1: the outside handle tracks progress, never keys).
        {
            let mut shadows = self.shadows.write();
            for o in &outcomes {
                if let Some(shadow) = shadows.get_mut(&o.sid) {
                    if o.established {
                        shadow.established = true;
                    }
                    if o.closed {
                        shadow.closed = true;
                    }
                }
            }
        }
        Ok(outcomes)
    }

    /// Closes a session (sends close_notify) and frees its state.
    ///
    /// # Errors
    ///
    /// Enclave entry failures.
    pub fn close_session(&self, slot: usize, sid: u64) -> Result<()> {
        self.call(slot, "close_session", move |t, sv, _ctx| {
            if let Some(session) = t.sessions.write().remove(&sid) {
                session.lock().ssl.send_close();
                sv.epc_free(8 * 1024);
            }
        })?;
        self.shadows.write().remove(&sid);
        Ok(())
    }

    /// Final output of a closing session (the close_notify record).
    ///
    /// # Errors
    ///
    /// Enclave entry failures (unknown sessions yield empty output).
    pub fn take_close_output(&self, slot: usize, sid: u64) -> Result<Vec<u8>> {
        self.take_output(slot, sid).or(Ok(Vec::new()))
    }

    /// Runs all invariants now (the log analyser entry point, step 6
    /// of Fig. 1).
    ///
    /// # Errors
    ///
    /// Query failures; [`LibSealError::AuditingDisabled`] without an
    /// SSM.
    pub fn check_now(&self, slot: usize) -> Result<CheckOutcome> {
        self.call(
            slot,
            "check_now",
            move |t, _, _ctx| -> Result<CheckOutcome> {
                let audit = t.audit.as_ref().ok_or(LibSealError::AuditingDisabled)?;
                let mut astate = audit.lock();
                let AuditState { log, ssm, checker } = &mut *astate;
                let outcome = Checker::run_checks(ssm.as_ref(), log)?;
                checker.last_outcome = outcome.clone();
                drop(astate);
                // The full scan just covered everything; pending
                // background batches are subsumed by its outcome.
                if let Some(vq) = &t.verify {
                    vq.absorb();
                }
                Ok(outcome)
            },
        )?
    }

    /// Trims the log now.
    ///
    /// # Errors
    ///
    /// As [`LibSeal::check_now`].
    pub fn trim_now(&self, slot: usize) -> Result<()> {
        self.call(slot, "trim_now", move |t, _, _ctx| -> Result<()> {
            let audit = t.audit.as_ref().ok_or(LibSealError::AuditingDisabled)?;
            let mut astate = audit.lock();
            let AuditState { log, ssm, .. } = &mut *astate;
            log.trim(ssm.trim_queries())
        })?
    }

    /// Verifies the audit log's integrity (hash chain + signature +
    /// data consistency).
    ///
    /// # Errors
    ///
    /// [`LibSealError::Tampered`] describing the inconsistency.
    pub fn verify_log(&self, slot: usize) -> Result<()> {
        // Drain the verifier first: a consistent verification verdict
        // must cover every check already due (lag == 0). The barrier
        // runs outside any ecall — the verifier itself needs the
        // enclave to drain.
        if let Some(vq) = &self.verify {
            vq.barrier()?;
        }
        self.call(slot, "verify_log", move |t, _, _ctx| -> Result<()> {
            let audit = t.audit.as_ref().ok_or(LibSealError::AuditingDisabled)?;
            let mut astate = audit.lock();
            // Catch the signed head up with anything still staged
            // (in-flight group-commit entries or direct appends), so
            // verification always sees a consistent head. No-op when
            // the log is clean.
            astate.log.seal()?;
            astate.log.verify()
        })?
    }

    /// Graceful drain: parks until every in-flight group-commit
    /// ticket has resolved, seals anything still staged to durable,
    /// and drains the background verifier. Unlike `Drop`, the
    /// instance stays fully usable afterwards — services call this
    /// after they stop accepting traffic, before tearing the enclave
    /// down, so no audited response ever outlives its durable log
    /// entry.
    ///
    /// # Errors
    ///
    /// Seal or background-verification failures; the log state itself
    /// is still consistent (staged entries remain in the chain).
    pub fn drain(&self, slot: usize) -> Result<()> {
        if let Some(q) = &self.commit {
            q.quiesce();
        }
        if self.audited {
            self.call(slot, "verify_log", move |t, _, _ctx| -> Result<()> {
                let audit = t.audit.as_ref().ok_or(LibSealError::AuditingDisabled)?;
                let mut astate = audit.lock();
                astate.log.seal()?;
                astate.log.flush()
            })??;
        }
        self.verifier_barrier()
    }

    /// Pending audit work: unresolved group-commit tickets plus due
    /// checks the background verifier has not drained. Services use
    /// this as the backpressure signal to pause accepting new
    /// connections while the audit plane is saturated.
    pub fn audit_backlog(&self) -> u64 {
        self.commit.as_ref().map_or(0, |q| q.depth()) + self.verifier_lag()
    }

    /// Log statistics: (entries, in-memory bytes, journal bytes).
    ///
    /// # Errors
    ///
    /// [`LibSealError::AuditingDisabled`] without an SSM.
    pub fn log_stats(&self, slot: usize) -> Result<(u64, usize, u64)> {
        self.call(
            slot,
            "log_stats",
            move |t, _, _ctx| -> Result<(u64, usize, u64)> {
                let audit = t.audit.as_ref().ok_or(LibSealError::AuditingDisabled)?;
                let astate = audit.lock();
                Ok((
                    astate.log.entries(),
                    astate.log.size_bytes(),
                    astate.log.journal_size_bytes(),
                ))
            },
        )?
    }

    /// Runs `f` against the audit log (tests and tooling; queries the
    /// same enclave-held database the checker uses).
    ///
    /// # Errors
    ///
    /// Propagates `f`'s failures and enclave entry failures.
    pub fn with_log<R: Send + 'static>(
        &self,
        slot: usize,
        f: impl FnOnce(&mut AuditLog) -> R + Send,
    ) -> Result<R> {
        self.call(slot, "check_now", move |t, _, _ctx| -> Result<R> {
            let audit = t.audit.as_ref().ok_or(LibSealError::AuditingDisabled)?;
            let mut astate = audit.lock();
            Ok(f(&mut astate.log))
        })?
    }

    /// Whether auditing is configured.
    pub fn is_audited(&self) -> bool {
        self.audited
    }

    /// Due checks the background verifier has not drained yet (0 when
    /// async verification is disabled).
    pub fn verifier_lag(&self) -> u64 {
        self.verify.as_ref().map_or(0, |q| q.lag())
    }

    /// Blocks until the background verifier has drained every due
    /// check (lag reaches zero). No-op when async verification is
    /// disabled.
    ///
    /// # Errors
    ///
    /// A background evaluation failure since the last barrier.
    pub fn verifier_barrier(&self) -> Result<()> {
        match &self.verify {
            Some(q) => q.barrier(),
            None => Ok(()),
        }
    }

    /// The outside shadow of a session (no key material, §4.1).
    pub fn shadow(&self, sid: u64) -> Option<ShadowSsl> {
        self.shadows.read().get(&sid).cloned()
    }

    /// Stores application data on the shadow, outside the enclave
    /// (§4.2 optimisation 3: no transition).
    pub fn set_ex_data(&self, sid: u64, key: u32, value: Vec<u8>) {
        if let Some(shadow) = self.shadows.write().get_mut(&sid) {
            shadow.ex_data.insert(key, value);
        }
    }

    /// Reads application data from the shadow (no transition).
    pub fn get_ex_data(&self, sid: u64, key: u32) -> Option<Vec<u8>> {
        self.shadows
            .read()
            .get(&sid)
            .and_then(|s| s.ex_data.get(&key).cloned())
    }

    /// Number of asynchronous call slots, or `None` when calls are
    /// dispatched synchronously (no runtime configured). Concurrent
    /// callers must hold distinct slots.
    pub fn async_slots(&self) -> Option<usize> {
        self.runtime.as_ref().map(AsyncRuntime::slot_count)
    }

    /// Transition statistics snapshot.
    pub fn stats(&self) -> StatsSnapshot {
        self.enclave.services().stats().snapshot()
    }

    /// Resets transition statistics (between benchmark phases).
    pub fn reset_stats(&self) {
        self.enclave.services().stats().reset();
    }

    /// The process-wide telemetry registry every layer reports into
    /// (counters, gauges, latency histograms and recent span traces).
    pub fn telemetry(&self) -> &'static libseal_telemetry::Registry {
        libseal_telemetry::global()
    }

    /// The untrusted memory pool (exposed for §4.2 experiments).
    pub fn pool(&self) -> &Arc<MemoryPool> {
        &self.pool
    }

    /// The instance's TLS certificate.
    pub fn certificate(&self) -> &Certificate {
        &self.cert
    }

    /// The enclave measurement.
    pub fn measurement(&self) -> [u8; 32] {
        *self.enclave.measurement()
    }

    /// Produces an attestation quote binding this enclave to its TLS
    /// certificate (report data = SHA-256 of the certificate public
    /// key), the §6.3 defence against log bypass.
    pub fn quote(&self, qe: &QuotingEnclave) -> Quote {
        let mut report = [0u8; 64];
        report[..32].copy_from_slice(&Sha256::digest(&self.cert.pubkey));
        qe.quote(self.enclave.services(), &report)
    }

    /// The underlying enclave (benchmarks and tests).
    pub fn enclave(&self) -> &Arc<Enclave<Trusted>> {
        &self.enclave
    }

    /// The table specs audited by the configured SSM.
    pub fn audited_tables(&self) -> Vec<TableSpec> {
        self.call(0, "log_stats", |t, _, _ctx| {
            t.audit
                .as_ref()
                .map(|a| a.lock().ssm.tables())
                .unwrap_or_default()
        })
        .unwrap_or_default()
    }
}

impl Drop for LibSeal {
    fn drop(&mut self) {
        // Drain the commit pipeline first: the sealer needs the
        // enclave (and the async runtime's TCS slots stay claimed
        // until it shuts down, so order matters).
        if let Some(q) = &self.commit {
            q.shutdown();
        }
        if let Some(sealer) = self.sealer.take() {
            sealer.join();
        }
        // Then the verifier: it drains every due check (the shutdown
        // barrier — no pair escapes verification), then exits.
        if let Some(q) = &self.verify {
            q.shutdown();
        }
        if let Some(verifier) = self.verifier.take() {
            verifier.join();
        }
        if self.audited {
            // Final seal + flush so entries staged outside the
            // pipeline (direct `with_log` appends) reach a signed,
            // durable head before the process lets go of the log.
            let _ = self.enclave.ecall("seal_batch", |t: &Trusted, _| {
                if let Some(audit) = t.audit.as_ref() {
                    let mut astate = audit.lock();
                    let _ = astate.log.seal();
                    let _ = astate.log.flush();
                }
            });
        }
        if let Some(rt) = self.runtime.take() {
            rt.shutdown();
        }
    }
}

/// Convenience: the states a shadow can report (re-exported for
/// applications that match on them).
pub use libseal_tlsx::ssl::HandshakeState as SessionState;

#[allow(unused)]
fn _assert_traits() {
    fn is_send_sync<T: Send + Sync>() {}
    is_send_sync::<LibSeal>();
    is_send_sync::<Trusted>();
    let _ = HandshakeState::Established;
}

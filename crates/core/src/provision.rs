//! Attested certificate provisioning (§6.3, "Bypassing logging").
//!
//! The provider could link its service against a vanilla TLS library
//! and silently skip auditing. LibSEAL's defence: the TLS certificate
//! private key is only released to an enclave that proves — via remote
//! attestation — that it runs genuine LibSEAL code. Clients then know
//! that a connection presenting that certificate terminates inside an
//! auditing enclave.

use libseal_crypto::ed25519::SigningKey;
use libseal_crypto::sha2::Sha256;
use libseal_sgxsim::attest::{AttestationService, Quote};
use libseal_tlsx::cert::Certificate;

use crate::{LibSealError, Result};

/// Holds a service's TLS identity and releases it only to attested
/// LibSEAL enclaves.
pub struct CertProvisioner {
    cert: Certificate,
    key_seed: [u8; 32],
    expected_measurement: [u8; 32],
    ias: AttestationService,
}

impl CertProvisioner {
    /// Creates a provisioner for `cert` (with private-key seed
    /// `key_seed`) that only trusts enclaves measuring
    /// `expected_measurement`, verified through `ias`.
    pub fn new(
        cert: Certificate,
        key_seed: [u8; 32],
        expected_measurement: [u8; 32],
        ias: AttestationService,
    ) -> Self {
        CertProvisioner {
            cert,
            key_seed,
            expected_measurement,
            ias,
        }
    }

    /// Validates `quote` and, on success, releases the certificate and
    /// its private key. The quote's report data must bind the
    /// certificate public key (hash), proving the enclave requested
    /// *this* identity.
    ///
    /// # Errors
    ///
    /// [`LibSealError::Attestation`] on any verification failure.
    pub fn provision(&self, quote: &Quote) -> Result<(Certificate, SigningKey)> {
        self.ias
            .verify(quote, Some(&self.expected_measurement))
            .map_err(|e| LibSealError::Attestation(e.to_string()))?;
        let expected_report = Sha256::digest(&self.cert.pubkey);
        if quote.report_data[..32] != expected_report {
            return Err(LibSealError::Attestation(
                "quote does not bind the requested certificate".into(),
            ));
        }
        Ok((self.cert.clone(), SigningKey::from_seed(&self.key_seed)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ssm::GitModule;
    use crate::termination::{LibSeal, LibSealConfig};
    use libseal_sgxsim::attest::QuotingEnclave;
    use libseal_sgxsim::cost::CostModel;
    use libseal_tlsx::cert::CertificateAuthority;
    use std::sync::Arc;

    fn make_libseal(with_audit: bool) -> Arc<LibSeal> {
        let ca = CertificateAuthority::new("CA", &[1u8; 32]);
        let (key, cert) = ca.issue_identity("svc.test", &[2u8; 32]);
        let mut builder = LibSealConfig::builder(cert, key).cost_model(CostModel::free());
        if with_audit {
            builder = builder.ssm(Arc::new(GitModule));
        }
        LibSeal::new(builder.build()).unwrap()
    }

    #[test]
    fn genuine_enclave_gets_the_key() {
        let ls = make_libseal(true);
        let qe = QuotingEnclave::new(&[7u8; 32]);
        let ias = AttestationService::new(qe.root_key());
        let prov = CertProvisioner::new(ls.certificate().clone(), [2u8; 32], ls.measurement(), ias);
        let quote = ls.quote(&qe);
        let (cert, _key) = prov.provision(&quote).unwrap();
        assert_eq!(&cert, ls.certificate());
    }

    #[test]
    fn different_code_is_rejected() {
        // An enclave WITHOUT auditing has a different measurement; the
        // provisioner keyed to the auditing build must reject it.
        let audited = make_libseal(true);
        let bypass = make_libseal(false);
        assert_ne!(audited.measurement(), bypass.measurement());

        let qe = QuotingEnclave::new(&[7u8; 32]);
        let ias = AttestationService::new(qe.root_key());
        let prov = CertProvisioner::new(
            audited.certificate().clone(),
            [2u8; 32],
            audited.measurement(),
            ias,
        );
        let quote = bypass.quote(&qe);
        assert!(prov.provision(&quote).is_err());
    }

    #[test]
    fn wrong_report_data_rejected() {
        let ls = make_libseal(true);
        let qe = QuotingEnclave::new(&[7u8; 32]);
        let ias = AttestationService::new(qe.root_key());
        // Provisioner for a DIFFERENT certificate.
        let ca = CertificateAuthority::new("CA", &[1u8; 32]);
        let (_okey, other_cert) = ca.issue_identity("other.test", &[9u8; 32]);
        let prov = CertProvisioner::new(other_cert, [9u8; 32], ls.measurement(), ias);
        let quote = ls.quote(&qe);
        assert!(prov.provision(&quote).is_err());
    }
}

//! Attested certificate provisioning (§6.3, "Bypassing logging").
//!
//! The provider could link its service against a vanilla TLS library
//! and silently skip auditing. LibSEAL's defence: the TLS certificate
//! private key is only released to an enclave that proves — via remote
//! attestation — that it runs genuine LibSEAL code. Clients then know
//! that a connection presenting that certificate terminates inside an
//! auditing enclave.

use std::time::Duration;

use libseal_crypto::ed25519::{SigningKey, VerifyingKey};
use libseal_crypto::sha2::Sha256;
use libseal_sgxsim::attest::{AttestationService, Quote, QuotingEnclave};
use libseal_sgxsim::enclave::EnclaveServices;
use libseal_tlsx::attest::{AttestationExtension, AttestationPolicy};
use libseal_tlsx::cert::{Certificate, CertificateAuthority};

use crate::{LibSealError, Result};

/// Mints attested TLS identities (RA-TLS): certificates whose
/// extension block carries a quote committing to the certificate key.
///
/// This is the deployment-side counterpart of [`CertProvisioner`]:
/// instead of releasing a pre-existing key to an attested enclave, the
/// enclave generates its keypair *inside* and the issuer binds a fresh
/// certificate to a quote over SHA-256 of the public key
/// ([`LibSeal::build`](crate::termination::LibSeal) drives this when
/// the configuration carries an attested identity).
pub struct IdentityIssuer {
    ca: CertificateAuthority,
    qe: QuotingEnclave,
}

impl IdentityIssuer {
    /// Creates an issuer from a certificate authority and the
    /// platform's quoting enclave.
    pub fn new(ca: CertificateAuthority, qe: QuotingEnclave) -> Self {
        IdentityIssuer { ca, qe }
    }

    /// Convenience constructor from raw seeds.
    pub fn from_seeds(ca_name: &str, ca_seed: &[u8; 32], qe_seed: &[u8; 32]) -> Self {
        IdentityIssuer::new(
            CertificateAuthority::new(ca_name, ca_seed),
            QuotingEnclave::new(qe_seed),
        )
    }

    /// The CA root clients add to their trust store.
    pub fn ca_root(&self) -> VerifyingKey {
        self.ca.root_key()
    }

    /// The quoting root clients pin in their [`AttestationPolicy`].
    pub fn quoting_root(&self) -> VerifyingKey {
        self.qe.root_key()
    }

    /// Issues a certificate for `pubkey` carrying a quote over the
    /// enclave behind `services`, with `report_data` committing to
    /// SHA-256 of `pubkey`.
    ///
    /// # Errors
    ///
    /// [`LibSealError::Tls`] if certificate issuance rejects the
    /// subject or extension payload.
    pub fn mint(
        &self,
        subject: &str,
        pubkey: &[u8; 32],
        services: &EnclaveServices,
    ) -> Result<Certificate> {
        let mut report = [0u8; 64];
        report[..32].copy_from_slice(&Sha256::digest(pubkey));
        let quote = self.qe.quote(services, &report);
        self.ca
            .issue_with_extensions(subject, pubkey, vec![AttestationExtension::to_extension(&quote)])
            .map_err(LibSealError::Tls)
    }

    /// A client policy pinning `measurements` under this issuer's
    /// quoting root.
    pub fn policy_for(&self, measurements: Vec<[u8; 32]>) -> AttestationPolicy {
        AttestationPolicy::pinned(self.quoting_root(), measurements)
    }

    /// Like [`IdentityIssuer::policy_for`] with a custom quote TTL.
    pub fn policy_with_ttl(
        &self,
        measurements: Vec<[u8; 32]>,
        ttl: Duration,
    ) -> AttestationPolicy {
        self.policy_for(measurements).max_quote_age(ttl)
    }
}

/// Holds a service's TLS identity and releases it only to attested
/// LibSEAL enclaves.
pub struct CertProvisioner {
    cert: Certificate,
    key_seed: [u8; 32],
    expected_measurement: [u8; 32],
    ias: AttestationService,
}

impl CertProvisioner {
    /// Creates a provisioner for `cert` (with private-key seed
    /// `key_seed`) that only trusts enclaves measuring
    /// `expected_measurement`, verified through `ias`.
    pub fn new(
        cert: Certificate,
        key_seed: [u8; 32],
        expected_measurement: [u8; 32],
        ias: AttestationService,
    ) -> Self {
        CertProvisioner {
            cert,
            key_seed,
            expected_measurement,
            ias,
        }
    }

    /// Validates `quote` and, on success, releases the certificate and
    /// its private key. The quote's report data must bind the
    /// certificate public key (hash), proving the enclave requested
    /// *this* identity.
    ///
    /// # Errors
    ///
    /// [`LibSealError::Attestation`] on any verification failure.
    pub fn provision(&self, quote: &Quote) -> Result<(Certificate, SigningKey)> {
        self.ias
            .verify(quote, Some(&self.expected_measurement))
            .map_err(|e| LibSealError::Attestation(e.to_string()))?;
        let expected_report = Sha256::digest(&self.cert.pubkey);
        if quote.report_data[..32] != expected_report {
            return Err(LibSealError::Attestation(
                "quote does not bind the requested certificate".into(),
            ));
        }
        Ok((self.cert.clone(), SigningKey::from_seed(&self.key_seed)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ssm::GitModule;
    use crate::termination::{LibSeal, LibSealConfig};
    use libseal_sgxsim::attest::QuotingEnclave;
    use libseal_sgxsim::cost::CostModel;
    use libseal_tlsx::cert::CertificateAuthority;
    use std::sync::Arc;

    fn make_libseal(with_audit: bool) -> Arc<LibSeal> {
        let ca = CertificateAuthority::new("CA", &[1u8; 32]);
        let (key, cert) = ca.issue_identity("svc.test", &[2u8; 32]).unwrap();
        let mut builder = LibSealConfig::builder(cert, key).cost_model(CostModel::free());
        if with_audit {
            builder = builder.ssm(Arc::new(GitModule));
        }
        LibSeal::new(builder.build()).unwrap()
    }

    #[test]
    fn genuine_enclave_gets_the_key() {
        let ls = make_libseal(true);
        let qe = QuotingEnclave::new(&[7u8; 32]);
        let ias = AttestationService::new(qe.root_key());
        let prov = CertProvisioner::new(ls.certificate().clone(), [2u8; 32], ls.measurement(), ias);
        let quote = ls.quote(&qe);
        let (cert, _key) = prov.provision(&quote).unwrap();
        assert_eq!(&cert, ls.certificate());
    }

    #[test]
    fn different_code_is_rejected() {
        // An enclave WITHOUT auditing has a different measurement; the
        // provisioner keyed to the auditing build must reject it.
        let audited = make_libseal(true);
        let bypass = make_libseal(false);
        assert_ne!(audited.measurement(), bypass.measurement());

        let qe = QuotingEnclave::new(&[7u8; 32]);
        let ias = AttestationService::new(qe.root_key());
        let prov = CertProvisioner::new(
            audited.certificate().clone(),
            [2u8; 32],
            audited.measurement(),
            ias,
        );
        let quote = bypass.quote(&qe);
        assert!(prov.provision(&quote).is_err());
    }

    #[test]
    fn wrong_report_data_rejected() {
        let ls = make_libseal(true);
        let qe = QuotingEnclave::new(&[7u8; 32]);
        let ias = AttestationService::new(qe.root_key());
        // Provisioner for a DIFFERENT certificate.
        let ca = CertificateAuthority::new("CA", &[1u8; 32]);
        let (_okey, other_cert) = ca.issue_identity("other.test", &[9u8; 32]).unwrap();
        let prov = CertProvisioner::new(other_cert, [9u8; 32], ls.measurement(), ias);
        let quote = ls.quote(&qe);
        assert!(prov.provision(&quote).is_err());
    }
}

//! Multi-instance log merging (the §3.2 extension).
//!
//! When a service scales out behind a load balancer, one client's
//! requests may be served by different LibSEAL instances, each logging
//! a subset of the interactions. The paper sketches the fix: "each
//! LibSEAL instance manages a local log and periodically combines logs
//! from other instances for invariant checking". This module implements
//! that combination:
//!
//! 1. each instance [`export`](export_log)s its audit tables together
//!    with an Ed25519 signature over the serialized content, so the
//!    collector can prove the partial logs are genuine;
//! 2. [`merge_for_checking`] verifies every export, interleaves the
//!    entries by `(time, instance)` into a single consistent timeline
//!    (preserving each instance's internal order), and materialises a
//!    database against which the SSM's invariants run unchanged.
//!
//! Ordering assumption: logical clocks are per-instance, so the merge
//! can only interleave, not recover the true global order of events
//! whose local timestamps tie. A deployment keeps instance clocks
//! loosely synchronized — e.g. by deriving the logical time from the
//! shared ROTE counter the instances already contact on every append —
//! so that causally-later events carry larger timestamps.

use libseal_crypto::ed25519::{SigningKey, VerifyingKey};
use libseal_sealdb::{Database, Value};

use crate::log::AuditLog;
use crate::ssm::ServiceModule;
use crate::{LibSealError, Result};

/// One instance's exported audit tables.
pub struct LogExport {
    /// Instance identifier (position in the fleet).
    pub instance: u32,
    /// `(table name, rows)` pairs.
    pub tables: Vec<(String, Vec<Vec<Value>>)>,
    /// Signature over the canonical serialization.
    pub signature: [u8; 64],
}

fn canonical_bytes(instance: u32, tables: &[(String, Vec<Vec<Value>>)]) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(b"libseal-export-v1:");
    out.extend_from_slice(&instance.to_le_bytes());
    for (name, rows) in tables {
        out.extend_from_slice(name.as_bytes());
        out.push(0x1e);
        for row in rows {
            for v in row {
                out.extend_from_slice(v.group_key().as_bytes());
                out.push(0x1f);
            }
            out.push(0x1e);
        }
    }
    out
}

/// Exports the audited tables of `log`, signed by the instance.
///
/// # Errors
///
/// Query failures.
pub fn export_log(
    log: &AuditLog,
    ssm: &dyn ServiceModule,
    instance: u32,
    signer: &SigningKey,
) -> Result<LogExport> {
    let mut tables = Vec::new();
    for spec in ssm.tables() {
        let r = log.query(&format!("SELECT * FROM {}", spec.name), &[])?;
        tables.push((spec.name.to_string(), r.rows));
    }
    let signature = signer.sign(&canonical_bytes(instance, &tables));
    Ok(LogExport {
        instance,
        tables,
        signature,
    })
}

/// Verifies and merges partial logs into one database for checking.
///
/// `keys[i]` must verify `exports[i]`. Entries are interleaved by
/// `(time, instance)` and re-timestamped densely so the SSM's
/// invariants see a single consistent history.
///
/// # Errors
///
/// [`LibSealError::Tampered`] when an export fails verification;
/// database errors otherwise.
pub fn merge_for_checking(
    ssm: &dyn ServiceModule,
    exports: &[LogExport],
    keys: &[VerifyingKey],
) -> Result<Database> {
    if exports.len() != keys.len() {
        return Err(LibSealError::Log(
            "one verification key per export required".into(),
        ));
    }
    for (export, key) in exports.iter().zip(keys) {
        let bytes = canonical_bytes(export.instance, &export.tables);
        key.verify(&bytes, &export.signature).map_err(|_| {
            LibSealError::Tampered(format!(
                "export from instance {} failed verification",
                export.instance
            ))
        })?;
    }

    let mut db = Database::new();
    for stmt in ssm
        .schema_sql()
        .split(';')
        .map(str::trim)
        .filter(|s| !s.is_empty())
    {
        db.execute(stmt).map_err(LibSealError::Db)?;
    }

    // Collect (orig_time, instance, table, row) across exports; the
    // first column of every audited table is the logical time.
    let mut entries: Vec<(i64, u32, String, Vec<Value>)> = Vec::new();
    for export in exports {
        for (table, rows) in &export.tables {
            for row in rows {
                let t = match row.first() {
                    Some(Value::Integer(t)) => *t,
                    _ => 0,
                };
                entries.push((t, export.instance, table.clone(), row.clone()));
            }
        }
    }
    entries.sort_by_key(|a| (a.0, a.1));

    // Re-timestamp densely: equal (time, instance) pairs keep a shared
    // timestamp (e.g. one advertisement's rows must stay grouped).
    let mut new_time = 0i64;
    let mut last_key: Option<(i64, u32)> = None;
    for (t, inst, table, mut row) in entries {
        if last_key != Some((t, inst)) {
            new_time += 1;
            last_key = Some((t, inst));
        }
        row[0] = Value::Integer(new_time);
        let placeholders = vec!["?"; row.len()].join(", ");
        db.execute_with(
            &format!("INSERT INTO {table} VALUES ({placeholders})"),
            &row,
        )
        .map_err(LibSealError::Db)?;
    }
    Ok(db)
}

/// Runs every invariant of `ssm` against a merged database.
///
/// # Errors
///
/// Query failures.
pub fn check_merged(ssm: &dyn ServiceModule, db: &Database) -> Result<Vec<(String, usize)>> {
    let mut out = Vec::new();
    for inv in ssm.invariants() {
        let r = db.query(inv.sql, &[]).map_err(LibSealError::Db)?;
        out.push((inv.name.to_string(), r.rows.len()));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::log::{LogBacking, NoGuard};
    use crate::ssm::GitModule;
    use libseal_httpx::http::{Request, Response};

    fn instance_log() -> AuditLog {
        let ssm = GitModule;
        AuditLog::open(
            LogBacking::Memory,
            [0u8; 32],
            SigningKey::from_seed(&[1u8; 32]),
            Box::new(NoGuard),
            ssm.schema_sql(),
            ssm.tables(),
        )
        .unwrap()
    }

    fn push(log: &mut AuditLog, body: &str) {
        let ssm = GitModule;
        let req = Request::new("POST", "/repo/p/git-receive-pack", body.as_bytes().to_vec());
        let rsp = Response::new(200, b"ok\n".to_vec());
        ssm.log_pair(&req.to_bytes(), &rsp.to_bytes(), log).unwrap();
    }

    fn fetch(log: &mut AuditLog, advert: &str) {
        let ssm = GitModule;
        let req = Request::new(
            "GET",
            "/repo/p/info/refs?service=git-upload-pack",
            Vec::new(),
        );
        let rsp = Response::new(200, advert.as_bytes().to_vec());
        ssm.log_pair(&req.to_bytes(), &rsp.to_bytes(), log).unwrap();
    }

    #[test]
    fn cross_instance_violation_detected() {
        let ssm = GitModule;
        // Instance A serves the pushes; instance B later serves a STALE
        // fetch. B's clock has advanced past A's pushes (see the module
        // docs on clock synchronization).
        let mut log_a = instance_log();
        push(&mut log_a, "0 c1 refs/heads/main\n");
        push(&mut log_a, "c1 c2 refs/heads/main\n");
        let mut log_b = instance_log();
        push(&mut log_b, "0 z1 refs/heads/other\n"); // advances B's clock
        push(&mut log_b, "z1 z2 refs/heads/other\n");
        fetch(&mut log_b, "c1 refs/heads/main\nz2 refs/heads/other\n");

        // Neither partial log alone shows the rollback.
        let key_a = SigningKey::from_seed(&[2u8; 32]);
        let key_b = SigningKey::from_seed(&[3u8; 32]);
        let ex_a = export_log(&log_a, &ssm, 0, &key_a).unwrap();
        let ex_b = export_log(&log_b, &ssm, 1, &key_b).unwrap();
        let merged = merge_for_checking(
            &ssm,
            &[ex_a, ex_b],
            &[key_a.verifying_key(), key_b.verifying_key()],
        )
        .unwrap();
        let results = check_merged(&ssm, &merged).unwrap();
        let soundness = results.iter().find(|(n, _)| n == "git-soundness").unwrap();
        assert_eq!(soundness.1, 1, "{results:?}");
    }

    #[test]
    fn honest_cross_instance_history_is_clean() {
        let ssm = GitModule;
        let mut log_a = instance_log();
        push(&mut log_a, "0 c1 refs/heads/main\n");
        let mut log_b = instance_log();
        fetch(&mut log_b, "c1 refs/heads/main\n");
        let key = SigningKey::from_seed(&[2u8; 32]);
        let ex_a = export_log(&log_a, &ssm, 0, &key).unwrap();
        let ex_b = export_log(&log_b, &ssm, 1, &key).unwrap();
        let merged = merge_for_checking(
            &ssm,
            &[ex_a, ex_b],
            &[key.verifying_key(), key.verifying_key()],
        )
        .unwrap();
        let results = check_merged(&ssm, &merged).unwrap();
        assert!(results.iter().all(|(_, v)| *v == 0), "{results:?}");
    }

    #[test]
    fn forged_export_rejected() {
        let ssm = GitModule;
        let mut log = instance_log();
        push(&mut log, "0 c1 refs/heads/main\n");
        let key = SigningKey::from_seed(&[2u8; 32]);
        let rogue = SigningKey::from_seed(&[9u8; 32]);
        let export = export_log(&log, &ssm, 0, &rogue).unwrap();
        let err = merge_for_checking(&ssm, &[export], &[key.verifying_key()]);
        assert!(matches!(err, Err(LibSealError::Tampered(_))));
    }

    #[test]
    fn tampered_export_rows_rejected() {
        let ssm = GitModule;
        let mut log = instance_log();
        push(&mut log, "0 c1 refs/heads/main\n");
        let key = SigningKey::from_seed(&[2u8; 32]);
        let mut export = export_log(&log, &ssm, 0, &key).unwrap();
        // Provider edits a row after exporting.
        export.tables[0].1[0][3] = Value::Text("FORGED".into());
        let err = merge_for_checking(&ssm, &[export], &[key.verifying_key()]);
        assert!(matches!(err, Err(LibSealError::Tampered(_))));
    }

    #[test]
    fn interleave_preserves_per_instance_order() {
        let ssm = GitModule;
        // Instance A logs two pushes (times 1, 2); instance B one push
        // (time 1). Merged timeline must keep A's order.
        let mut log_a = instance_log();
        push(&mut log_a, "0 a1 refs/heads/x\n");
        push(&mut log_a, "a1 a2 refs/heads/x\n");
        let mut log_b = instance_log();
        push(&mut log_b, "0 b1 refs/heads/y\n");
        let key = SigningKey::from_seed(&[2u8; 32]);
        let ex_a = export_log(&log_a, &ssm, 0, &key).unwrap();
        let ex_b = export_log(&log_b, &ssm, 1, &key).unwrap();
        let merged = merge_for_checking(
            &ssm,
            &[ex_a, ex_b],
            &[key.verifying_key(), key.verifying_key()],
        )
        .unwrap();
        let rows = merged
            .query("SELECT time, cid FROM updates ORDER BY time", &[])
            .unwrap();
        let cids: Vec<String> = rows.rows.iter().map(|r| r[1].to_string()).collect();
        let pos = |c: &str| cids.iter().position(|x| x == c).unwrap();
        assert!(pos("a1") < pos("a2"), "{cids:?}");
    }
}

//! Group-commit pipeline for the audit log.
//!
//! Per-append sealing pays one rollback-counter round trip, one
//! Ed25519 head signature and one journal fsync per logged pair — the
//! cost the paper works around by adopting ROTE over SGX counters
//! (§5.1, §7), and the reason audited throughput flat-lines behind the
//! audit-state mutex. This module amortises all three across
//! concurrent requests:
//!
//! - Writers extend the in-enclave hash chain ([`CommitMode::Staged`](
//!   crate::log::CommitMode::Staged)) and take a **ticket** from the
//!   [`CommitQueue`] while still holding the audit-state lock, so
//!   ticket order matches log order.
//! - A dedicated [`Sealer`] drains the queue in batches: **one**
//!   counter increment, **one** head signature and **one** fsync make
//!   the whole batch durable ([`AuditLog::seal`](
//!   crate::log::AuditLog::seal) + flush).
//! - Each writer blocks on the commit barrier
//!   ([`CommitQueue::await_durable`]) until its ticket's batch is on
//!   disk, preserving the response-before-durable guarantee.
//!
//! Tickets are deliberately independent of chain sequence numbers:
//! trimming renumbers the chain, while tickets stay monotone for the
//! lifetime of the queue.
//!
//! Crash semantics: the whole batch shares one counter step, so the
//! legal crash window recovered by `AuditLog::open` stays "attested ≤
//! durable + 1 counter step" — losing an in-flight batch loses at most
//! the one increment it had bound.

use std::sync::Arc;
use std::time::{Duration, Instant};

use plat::sync::{Condvar, Mutex};

use crate::{LibSealError, Result};

/// Process-wide group-commit metrics.
struct CommitMetrics {
    batches: libseal_telemetry::Counter,
    batch_entries: libseal_telemetry::Histogram,
    commit_ns: libseal_telemetry::Histogram,
    wait_ns: libseal_telemetry::Histogram,
    queue_depth: libseal_telemetry::Gauge,
    seal_failures: libseal_telemetry::Counter,
}

fn commit_metrics() -> &'static CommitMetrics {
    static M: std::sync::OnceLock<CommitMetrics> = std::sync::OnceLock::new();
    M.get_or_init(|| CommitMetrics {
        batches: libseal_telemetry::counter("core_commit_batches_total"),
        batch_entries: libseal_telemetry::histogram("core_commit_batch_entries"),
        commit_ns: libseal_telemetry::histogram("core_commit_latency_ns"),
        wait_ns: libseal_telemetry::histogram("core_commit_wait_ns"),
        queue_depth: libseal_telemetry::gauge("core_commit_queue_depth"),
        seal_failures: libseal_telemetry::counter("core_commit_seal_failures_total"),
    })
}

/// Tuning knobs for the group-commit pipeline.
#[derive(Clone, Copy, Debug)]
pub struct GroupCommitConfig {
    /// Queue capacity and batch accumulation target: writers block
    /// (backpressure) once this many tickets are outstanding, and a
    /// sealer with `max_wait > 0` stops accumulating at this size.
    pub max_batch: usize,
    /// Extra time the sealer waits for a batch to fill before sealing
    /// whatever has accumulated. Zero (the default) seals as soon as
    /// the sealer is free: the previous batch's counter round and
    /// fsync naturally accumulate the next batch.
    pub max_wait: Duration,
}

impl Default for GroupCommitConfig {
    fn default() -> Self {
        GroupCommitConfig {
            max_batch: 64,
            max_wait: Duration::ZERO,
        }
    }
}

/// Watermark state guarded by the queue mutex.
#[derive(Default)]
struct QState {
    /// Highest ticket handed out (tickets are 1-based).
    staged: u64,
    /// Highest ticket resolved (durably sealed OR failed): writers at
    /// or below this watermark stop waiting.
    resolved: u64,
    /// Highest ticket known durable on disk. `durable < resolved`
    /// marks the failed span of a batch whose seal errored.
    durable: u64,
    /// Last seal failure, reported to writers whose ticket resolved
    /// without becoming durable.
    error: Option<String>,
    shutdown: bool,
}

/// The bounded ticket queue and commit barrier between writers and the
/// [`Sealer`]. All methods are `&self`; the queue is shared via [`Arc`].
pub struct CommitQueue {
    cfg: GroupCommitConfig,
    state: Mutex<QState>,
    /// Signalled when new work is staged or shutdown begins (sealer
    /// side).
    work: Condvar,
    /// Signalled when a batch resolves (writer side: barrier and
    /// backpressure waiters).
    done: Condvar,
}

impl CommitQueue {
    /// Creates an empty queue with the given tuning knobs.
    pub fn new(cfg: GroupCommitConfig) -> CommitQueue {
        CommitQueue {
            cfg: GroupCommitConfig {
                max_batch: cfg.max_batch.max(1),
                max_wait: cfg.max_wait,
            },
            state: Mutex::new(QState::default()),
            work: Condvar::new(),
            done: Condvar::new(),
        }
    }

    /// The queue's tuning knobs.
    pub fn config(&self) -> GroupCommitConfig {
        self.cfg
    }

    /// Blocks until the queue has room for one more ticket. Call this
    /// BEFORE taking the audit-state lock: blocking inside it would
    /// stall the very sealer that makes room.
    pub fn wait_for_space(&self) {
        let mut s = self.state.lock();
        while !s.shutdown && s.staged - s.resolved >= self.cfg.max_batch as u64 {
            s = self.done.wait(s);
        }
    }

    /// Allocates the next ticket. The caller must already have staged
    /// its entries into the log under the audit-state lock, so ticket
    /// order matches log order.
    ///
    /// # Errors
    ///
    /// After [`CommitQueue::shutdown`], or on an injected enqueue
    /// fault. Either way the staged entries stay in the chain and are
    /// covered by the next successful seal; only this writer's
    /// response is withheld (the conservative direction).
    pub fn stage(&self) -> Result<u64> {
        plat::failpoint::check("core::commit::enqueue")
            .map_err(|e| LibSealError::Log(e.to_string()))?;
        let mut s = self.state.lock();
        if s.shutdown {
            return Err(LibSealError::Log("commit queue shut down".into()));
        }
        s.staged += 1;
        let t = s.staged;
        commit_metrics()
            .queue_depth
            .set((s.staged - s.resolved) as i64);
        drop(s);
        self.work.notify_one();
        Ok(t)
    }

    /// The commit barrier: blocks until `ticket`'s batch is durable.
    ///
    /// # Errors
    ///
    /// When the batch's seal failed: the entries stay staged (the next
    /// successful seal will cover them), but the response must not be
    /// released on the strength of a failed seal.
    pub fn await_durable(&self, ticket: u64) -> Result<()> {
        let started = Instant::now();
        let mut s = self.state.lock();
        while s.resolved < ticket {
            s = self.done.wait(s);
        }
        let out = if s.durable >= ticket {
            Ok(())
        } else {
            Err(LibSealError::Log(format!(
                "group commit failed: {}",
                s.error.as_deref().unwrap_or("seal error")
            )))
        };
        drop(s);
        commit_metrics().wait_ns.record_duration(started.elapsed());
        out
    }

    /// Sealer side: blocks until at least one ticket is pending (then
    /// optionally accumulates up to `max_wait` / `max_batch`), and
    /// returns the batch watermark to seal through. Returns [`None`]
    /// when the queue is shut down and fully drained.
    pub fn next_batch(&self) -> Option<u64> {
        let mut s = self.state.lock();
        loop {
            if s.staged > s.resolved {
                break;
            }
            if s.shutdown {
                return None;
            }
            s = self.work.wait(s);
        }
        if !self.cfg.max_wait.is_zero() {
            // Accumulate: give late writers a bounded chance to join
            // this batch instead of paying their own seal.
            let deadline = Instant::now() + self.cfg.max_wait;
            while !s.shutdown && s.staged - s.resolved < self.cfg.max_batch as u64 {
                let left = deadline.saturating_duration_since(Instant::now());
                if left.is_zero() {
                    break;
                }
                let (g, timed_out) = self.work.wait_timeout(s, left);
                s = g;
                if timed_out {
                    break;
                }
            }
        }
        Some(s.staged)
    }

    /// Sealer side: resolves every ticket up to `upto` with the seal
    /// outcome, waking barrier and backpressure waiters.
    pub fn complete(&self, upto: u64, result: Result<()>) {
        // An injected ack fault resolves the batch as failed even
        // though the seal landed: writers err conservatively instead
        // of hanging on a watermark that would never advance.
        let result = result.and_then(|()| {
            plat::failpoint::check("core::commit::ack")
                .map_err(|e| LibSealError::Log(e.to_string()))
        });
        let mut s = self.state.lock();
        let entries = upto.saturating_sub(s.resolved);
        match result {
            Ok(()) => {
                s.durable = s.durable.max(upto);
                commit_metrics().batches.inc();
                commit_metrics().batch_entries.record(entries);
            }
            Err(e) => {
                s.error = Some(e.to_string());
                commit_metrics().seal_failures.inc();
            }
        }
        s.resolved = s.resolved.max(upto);
        commit_metrics()
            .queue_depth
            .set((s.staged - s.resolved) as i64);
        drop(s);
        self.done.notify_all();
    }

    /// Tickets staged but not yet resolved.
    pub fn depth(&self) -> u64 {
        let s = self.state.lock();
        s.staged - s.resolved
    }

    /// Drain barrier for graceful shutdown: blocks until every staged
    /// ticket has resolved (durably sealed or failed). Unlike
    /// [`CommitQueue::await_durable`] it needs no ticket of its own,
    /// so a teardown path can wait out strangers' batches. Terminates
    /// even after [`CommitQueue::shutdown`]: the sealer drains pending
    /// batches before exiting.
    pub fn quiesce(&self) {
        let mut s = self.state.lock();
        while s.staged > s.resolved {
            s = self.done.wait(s);
        }
    }

    /// Stops accepting tickets and wakes everyone; the sealer drains
    /// what is pending, then [`CommitQueue::next_batch`] returns
    /// [`None`].
    pub fn shutdown(&self) {
        self.state.lock().shutdown = true;
        self.work.notify_all();
        self.done.notify_all();
    }
}

/// The dedicated sealer thread: drains batches from a [`CommitQueue`],
/// making each durable with a caller-supplied seal function (which
/// performs `AuditLog::seal` + flush — for the in-enclave pipeline,
/// via a single `seal_batch` ecall per batch).
pub struct Sealer {
    handle: std::thread::JoinHandle<()>,
}

impl Sealer {
    /// Spawns the sealer loop. `seal_fn` is invoked once per batch and
    /// must leave the staged entries signed and flushed on success.
    pub fn spawn<F>(queue: Arc<CommitQueue>, mut seal_fn: F) -> Sealer
    where
        F: FnMut() -> Result<()> + Send + 'static,
    {
        let handle = std::thread::Builder::new()
            .name("libseal-sealer".into())
            .spawn(move || {
                while let Some(upto) = queue.next_batch() {
                    let started = Instant::now();
                    let r = plat::failpoint::check("core::commit::seal")
                        .map_err(|e| LibSealError::Log(e.to_string()))
                        .and_then(|()| seal_fn());
                    if r.is_ok() {
                        commit_metrics()
                            .commit_ns
                            .record_duration(started.elapsed());
                    }
                    queue.complete(upto, r);
                }
            })
            .expect("spawn sealer thread");
        Sealer { handle }
    }

    /// Waits for the sealer loop to exit (after
    /// [`CommitQueue::shutdown`]).
    pub fn join(self) {
        let _ = self.handle.join();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn queue(max_batch: usize) -> Arc<CommitQueue> {
        Arc::new(CommitQueue::new(GroupCommitConfig {
            max_batch,
            max_wait: Duration::ZERO,
        }))
    }

    #[test]
    fn tickets_resolve_through_a_sealer() {
        let q = queue(8);
        let sealed = Arc::new(std::sync::atomic::AtomicU64::new(0));
        let sealed2 = Arc::clone(&sealed);
        let sealer = Sealer::spawn(Arc::clone(&q), move || {
            sealed2.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
            Ok(())
        });
        let t1 = q.stage().unwrap();
        let t2 = q.stage().unwrap();
        q.await_durable(t1).unwrap();
        q.await_durable(t2).unwrap();
        q.shutdown();
        sealer.join();
        // Both tickets durable; at most two seals ran (batching may
        // cover both with one).
        assert!(sealed.load(std::sync::atomic::Ordering::SeqCst) <= 2);
    }

    #[test]
    fn failed_seal_reports_error_without_hanging() {
        let q = queue(8);
        let sealer = Sealer::spawn(Arc::clone(&q), || {
            Err(LibSealError::Log("disk gone".into()))
        });
        let t = q.stage().unwrap();
        let err = q.await_durable(t).unwrap_err();
        assert!(err.to_string().contains("disk gone"), "{err}");
        q.shutdown();
        sealer.join();
    }

    #[test]
    fn shutdown_rejects_new_tickets() {
        let q = queue(2);
        q.shutdown();
        assert!(q.stage().is_err());
        assert_eq!(q.next_batch(), None);
    }

    #[test]
    fn backpressure_blocks_until_a_batch_resolves() {
        let q = queue(2);
        let t1 = q.stage().unwrap();
        let t2 = q.stage().unwrap();
        assert_eq!(q.depth(), 2);
        // Queue full: wait_for_space would block. Resolve the batch on
        // another thread, then the waiter proceeds.
        let q2 = Arc::clone(&q);
        let resolver = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            q2.complete(t2, Ok(()));
        });
        q.wait_for_space();
        assert_eq!(q.depth(), 0);
        q.await_durable(t1).unwrap();
        resolver.join().unwrap();
    }

    #[test]
    fn max_wait_accumulates_a_batch() {
        let q = Arc::new(CommitQueue::new(GroupCommitConfig {
            max_batch: 4,
            max_wait: Duration::from_millis(50),
        }));
        let q2 = Arc::clone(&q);
        let writer = std::thread::spawn(move || {
            let mut ts = Vec::new();
            for _ in 0..4 {
                ts.push(q2.stage().unwrap());
                std::thread::sleep(Duration::from_millis(2));
            }
            ts
        });
        // One next_batch call should absorb all four tickets (they all
        // land well inside max_wait).
        let upto = q.next_batch().unwrap();
        let got = if upto >= 4 {
            upto
        } else {
            q.complete(upto, Ok(()));
            q.next_batch().unwrap()
        };
        q.complete(got, Ok(()));
        for t in writer.join().unwrap() {
            q.await_durable(t).unwrap();
        }
    }
}

//! Background verifier pool for incremental invariant checking.
//!
//! With delta-maintained views ([`crate::check`]) a due check costs
//! O(rows touched since the last check), but it still runs inside the
//! audit-state lock on the request path — every `interval`-th client
//! pays the whole check latency. This module decouples the two:
//!
//! - The request path calls [`Checker::note_pair`](
//!   crate::check::Checker::note_pair) as before; when a check falls
//!   due it **enqueues** a verification batch on the [`VerifierQueue`]
//!   instead of evaluating inline, and answers the client immediately.
//! - A dedicated [`Verifier`] thread drains due batches, re-acquiring
//!   the audit-state lock only for the (incremental, hence short)
//!   evaluation itself.
//! - The distance between enqueued and drained batches is the
//!   **verification lag**, surfaced as the `core_verifier_lag` gauge.
//!   Lag is bounded: enqueues block once `max_pending` batches are
//!   outstanding, so a stalled verifier applies backpressure instead
//!   of letting unverified history grow without bound.
//! - Every drained batch whose outcome carries violations increments
//!   `core_verifier_alarms_total` — the operator-facing signal that
//!   the service has been caught misbehaving.
//!
//! The deliberately weakened guarantee (relative to inline checking)
//! is *freshness*, not soundness: a violating pair is still always
//! detected, at most `max_pending × interval` pairs later. Callers
//! that need a synchronous answer — `Libseal-Verify`, shutdown —
//! [`VerifierQueue::barrier`] on lag reaching zero first.

use std::sync::Arc;
use std::time::Instant;

use plat::sync::{Condvar, Mutex};

use crate::check::CheckOutcome;
use crate::{LibSealError, Result};

/// Process-wide verifier metrics.
struct VerifierMetrics {
    /// Enqueued-but-undrained verification batches.
    lag: libseal_telemetry::Gauge,
    /// Drained batches whose check outcome carried violations.
    alarms: libseal_telemetry::Counter,
    /// Batches drained by the background thread.
    batches: libseal_telemetry::Counter,
    /// Wall-clock per background check evaluation.
    drain_ns: libseal_telemetry::Histogram,
}

fn verifier_metrics() -> &'static VerifierMetrics {
    static M: std::sync::OnceLock<VerifierMetrics> = std::sync::OnceLock::new();
    M.get_or_init(|| VerifierMetrics {
        lag: libseal_telemetry::gauge("core_verifier_lag"),
        alarms: libseal_telemetry::counter("core_verifier_alarms_total"),
        batches: libseal_telemetry::counter("core_verifier_batches_total"),
        drain_ns: libseal_telemetry::histogram("core_verifier_drain_ns"),
    })
}

/// Tuning knobs for the background verifier.
#[derive(Clone, Copy, Debug)]
pub struct VerifierConfig {
    /// Lag bound: enqueues block (backpressure) once this many batches
    /// are outstanding.
    pub max_pending: usize,
}

impl Default for VerifierConfig {
    fn default() -> Self {
        VerifierConfig { max_pending: 8 }
    }
}

/// Watermark state guarded by the queue mutex.
#[derive(Default)]
struct VState {
    /// Verification batches enqueued (1-based watermark).
    enqueued: u64,
    /// Batches drained (evaluated, or absorbed by a synchronous
    /// check that covered all pending history).
    drained: u64,
    /// Last background evaluation error, reported at the barrier.
    error: Option<String>,
    shutdown: bool,
}

/// The bounded batch queue and lag barrier between the request path
/// and the [`Verifier`]. All methods are `&self`; shared via [`Arc`].
pub struct VerifierQueue {
    cfg: VerifierConfig,
    state: Mutex<VState>,
    /// Signalled when a batch is enqueued or shutdown begins (verifier
    /// side).
    work: Condvar,
    /// Signalled when batches drain (barrier and backpressure side).
    done: Condvar,
}

impl VerifierQueue {
    /// Creates an empty queue with the given tuning knobs.
    pub fn new(cfg: VerifierConfig) -> VerifierQueue {
        // Register the lag gauge eagerly so /metrics shows it (at 0)
        // from the moment a verifier exists.
        verifier_metrics().lag.set(0);
        VerifierQueue {
            cfg: VerifierConfig {
                max_pending: cfg.max_pending.max(1),
            },
            state: Mutex::new(VState::default()),
            work: Condvar::new(),
            done: Condvar::new(),
        }
    }

    /// Blocks until the lag bound admits one more batch. Call BEFORE
    /// taking the audit-state lock: the verifier needs that lock to
    /// make room.
    pub fn wait_for_space(&self) {
        let mut s = self.state.lock();
        while !s.shutdown && s.enqueued - s.drained >= self.cfg.max_pending as u64 {
            s = self.done.wait(s);
        }
    }

    /// Enqueues one due verification batch and returns immediately.
    ///
    /// # Errors
    ///
    /// After [`VerifierQueue::shutdown`]. The appended pairs are still
    /// in the log and covered by the caller's fallback inline check.
    pub fn enqueue(&self) -> Result<()> {
        let mut s = self.state.lock();
        if s.shutdown {
            return Err(LibSealError::Log("verifier queue shut down".into()));
        }
        s.enqueued += 1;
        verifier_metrics().lag.set((s.enqueued - s.drained) as i64);
        drop(s);
        self.work.notify_one();
        Ok(())
    }

    /// The verification barrier: blocks until lag is zero — every
    /// batch enqueued before this call has been evaluated.
    ///
    /// # Errors
    ///
    /// When a background evaluation failed since the last barrier; the
    /// error is consumed (a later barrier succeeds if later batches
    /// drained cleanly).
    pub fn barrier(&self) -> Result<()> {
        let mut s = self.state.lock();
        while s.drained < s.enqueued {
            s = self.done.wait(s);
        }
        match s.error.take() {
            Some(e) => Err(LibSealError::Log(format!("background check failed: {e}"))),
            None => Ok(()),
        }
    }

    /// Marks all currently pending batches drained without running the
    /// verifier: a synchronous check just evaluated the full current
    /// history, so pending batches are subsumed by its outcome.
    pub fn absorb(&self) {
        let mut s = self.state.lock();
        s.drained = s.enqueued;
        verifier_metrics().lag.set(0);
        drop(s);
        self.done.notify_all();
    }

    /// Verifier side: blocks until at least one batch is pending and
    /// returns the watermark to evaluate through, or [`None`] when the
    /// queue is shut down and fully drained.
    pub fn next_due(&self) -> Option<u64> {
        let mut s = self.state.lock();
        loop {
            if s.enqueued > s.drained {
                // One evaluation covers everything enqueued so far:
                // incremental checks always verify the full current
                // history, so coalescing is free.
                return Some(s.enqueued);
            }
            if s.shutdown {
                return None;
            }
            s = self.work.wait(s);
        }
    }

    /// Verifier side: resolves every batch up to `upto` with the
    /// evaluation outcome, waking barrier and backpressure waiters.
    pub fn complete(&self, upto: u64, result: Result<CheckOutcome>) {
        let mut s = self.state.lock();
        match result {
            Ok(outcome) => {
                verifier_metrics().batches.inc();
                if outcome.total_violations() > 0 {
                    verifier_metrics().alarms.inc();
                }
            }
            Err(e) => s.error = Some(e.to_string()),
        }
        s.drained = s.drained.max(upto);
        verifier_metrics().lag.set((s.enqueued - s.drained) as i64);
        drop(s);
        self.done.notify_all();
    }

    /// Batches enqueued but not yet drained (the lag).
    pub fn lag(&self) -> u64 {
        let s = self.state.lock();
        s.enqueued - s.drained
    }

    /// Stops accepting batches and wakes everyone; the verifier drains
    /// what is pending, then [`VerifierQueue::next_due`] returns
    /// [`None`].
    pub fn shutdown(&self) {
        self.state.lock().shutdown = true;
        self.work.notify_all();
        self.done.notify_all();
    }
}

/// The dedicated verifier thread: drains due batches from a
/// [`VerifierQueue`], evaluating each with a caller-supplied check
/// function (for the in-enclave pipeline, a single `verify_batch`
/// ecall that locks the audit state and runs the incremental check).
pub struct Verifier {
    handle: std::thread::JoinHandle<()>,
}

impl Verifier {
    /// Spawns the verifier loop. `check_fn` is invoked once per due
    /// watermark and must run the (incremental) check plus trimming.
    pub fn spawn<F>(queue: Arc<VerifierQueue>, mut check_fn: F) -> Verifier
    where
        F: FnMut() -> Result<CheckOutcome> + Send + 'static,
    {
        let handle = std::thread::Builder::new()
            .name("libseal-verifier".into())
            .spawn(move || {
                while let Some(upto) = queue.next_due() {
                    let started = Instant::now();
                    let r = check_fn();
                    if r.is_ok() {
                        verifier_metrics()
                            .drain_ns
                            .record_duration(started.elapsed());
                    }
                    queue.complete(upto, r);
                }
            })
            .expect("spawn verifier thread");
        Verifier { handle }
    }

    /// Waits for the verifier loop to exit (after
    /// [`VerifierQueue::shutdown`]).
    pub fn join(self) {
        let _ = self.handle.join();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check::CheckReport;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::time::Duration;

    fn outcome(violations: usize) -> CheckOutcome {
        CheckOutcome {
            at_time: 1,
            reports: vec![CheckReport {
                invariant: "test".into(),
                violations,
                rows: Vec::new(),
            }],
        }
    }

    fn queue(max_pending: usize) -> Arc<VerifierQueue> {
        Arc::new(VerifierQueue::new(VerifierConfig { max_pending }))
    }

    #[test]
    fn batches_drain_through_a_verifier_and_barrier_clears() {
        let q = queue(8);
        let checks = Arc::new(AtomicU64::new(0));
        let checks2 = Arc::clone(&checks);
        let v = Verifier::spawn(Arc::clone(&q), move || {
            checks2.fetch_add(1, Ordering::SeqCst);
            Ok(outcome(0))
        });
        q.enqueue().unwrap();
        q.enqueue().unwrap();
        q.barrier().unwrap();
        assert_eq!(q.lag(), 0);
        q.shutdown();
        v.join();
        // Coalescing may cover both batches with one evaluation.
        let n = checks.load(Ordering::SeqCst);
        assert!((1..=2).contains(&n), "{n} checks");
    }

    #[test]
    fn failed_background_check_surfaces_at_the_barrier() {
        let q = queue(8);
        let v = Verifier::spawn(Arc::clone(&q), || Err(LibSealError::Log("db gone".into())));
        q.enqueue().unwrap();
        let err = q.barrier().unwrap_err();
        assert!(err.to_string().contains("db gone"), "{err}");
        q.shutdown();
        v.join();
    }

    #[test]
    fn absorb_subsumes_pending_batches() {
        let q = queue(8);
        q.enqueue().unwrap();
        q.enqueue().unwrap();
        assert_eq!(q.lag(), 2);
        q.absorb();
        assert_eq!(q.lag(), 0);
        q.barrier().unwrap();
    }

    #[test]
    fn shutdown_rejects_new_batches() {
        let q = queue(2);
        q.shutdown();
        assert!(q.enqueue().is_err());
        assert_eq!(q.next_due(), None);
    }

    #[test]
    fn backpressure_blocks_until_lag_drops() {
        let q = queue(2);
        q.enqueue().unwrap();
        q.enqueue().unwrap();
        assert_eq!(q.lag(), 2);
        let q2 = Arc::clone(&q);
        let resolver = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            q2.complete(2, Ok(outcome(0)));
        });
        q.wait_for_space();
        assert_eq!(q.lag(), 0);
        resolver.join().unwrap();
    }
}

//! Invariant checking and trimming scheduler (§5.2, §6.5).

use libseal_sealdb::Value;

use crate::log::AuditLog;
use crate::ssm::ServiceModule;
use crate::Result;

/// Latency of full invariant-checking passes.
fn check_latency_hist() -> &'static libseal_telemetry::Histogram {
    static H: std::sync::OnceLock<libseal_telemetry::Histogram> = std::sync::OnceLock::new();
    H.get_or_init(|| libseal_telemetry::histogram("core_check_ns"))
}

/// Latency of incremental (delta-maintained view) checking passes.
fn incremental_latency_hist() -> &'static libseal_telemetry::Histogram {
    static H: std::sync::OnceLock<libseal_telemetry::Histogram> = std::sync::OnceLock::new();
    H.get_or_init(|| libseal_telemetry::histogram("core_check_incremental_ns"))
}

/// Result of running one invariant.
#[derive(Clone, Debug)]
pub struct CheckReport {
    /// Invariant name.
    pub invariant: String,
    /// Number of violating log entries.
    pub violations: usize,
    /// Up to [`MAX_REPORT_ROWS`] violating rows as evidence.
    pub rows: Vec<Vec<Value>>,
}

/// Cap on evidence rows carried per report.
pub const MAX_REPORT_ROWS: usize = 16;

/// Aggregated outcome of one checking pass.
#[derive(Clone, Debug, Default)]
pub struct CheckOutcome {
    /// Logical time of the check.
    pub at_time: u64,
    /// Per-invariant reports.
    pub reports: Vec<CheckReport>,
}

impl CheckOutcome {
    /// Total violations across invariants.
    pub fn total_violations(&self) -> usize {
        self.reports.iter().map(|r| r.violations).sum()
    }

    /// Renders the `Libseal-Check-Result` header value (§5.2).
    pub fn header_value(&self) -> String {
        if self.total_violations() == 0 {
            "ok".to_string()
        } else {
            let parts: Vec<String> = self
                .reports
                .iter()
                .filter(|r| r.violations > 0)
                .map(|r| format!("{}:{}", r.invariant, r.violations))
                .collect();
            format!("violations={};{}", self.total_violations(), parts.join(","))
        }
    }
}

/// Interval-based checking/trimming state with client-trigger rate
/// limiting (§5.2, §6.3 DoS defence).
pub struct Checker {
    /// Pairs logged since the last automatic check.
    pairs_since_check: usize,
    /// Automatic check interval in request/response pairs (0 = off).
    pub interval: usize,
    /// Whether trimming runs together with checks.
    pub trim: bool,
    /// Remaining client-triggered check budget in the current window.
    client_budget: usize,
    /// Budget refills to this value every `interval` pairs.
    pub client_rate_limit: usize,
    /// The most recent outcome (served to clients in-band).
    pub last_outcome: CheckOutcome,
}

impl Checker {
    /// Creates a checker running every `interval` pairs.
    pub fn new(interval: usize, trim: bool, client_rate_limit: usize) -> Checker {
        Checker {
            pairs_since_check: 0,
            interval,
            trim,
            client_budget: client_rate_limit,
            client_rate_limit,
            last_outcome: CheckOutcome::default(),
        }
    }

    /// Registers the materialized views backing every delta-capable
    /// invariant of `ssm`. Call once after opening the log; safe to
    /// call again (re-registration reseeds from the base tables).
    ///
    /// # Errors
    ///
    /// View registration failures (bad delta SQL, journal I/O).
    pub fn install(ssm: &dyn ServiceModule, log: &mut AuditLog) -> Result<()> {
        for inv in ssm.invariants() {
            if let Some(spec) = inv.matview_spec() {
                log.db_mut()
                    .register_matview(spec)
                    .map_err(crate::LibSealError::Db)?;
            }
        }
        Ok(())
    }

    /// Runs every invariant of `ssm` against `log` with a full scan
    /// (the reference evaluation — also the randomized cross-check
    /// oracle for the incremental path).
    ///
    /// # Errors
    ///
    /// Query failures.
    pub fn run_checks(ssm: &dyn ServiceModule, log: &AuditLog) -> Result<CheckOutcome> {
        let started = std::time::Instant::now();
        let mut outcome = CheckOutcome {
            at_time: log.now(),
            reports: Vec::new(),
        };
        for inv in ssm.invariants() {
            let r = log.query(inv.sql, &[])?;
            outcome.reports.push(CheckReport {
                invariant: inv.name.to_string(),
                violations: r.rows.len(),
                rows: r.rows.into_iter().take(MAX_REPORT_ROWS).collect(),
            });
        }
        check_latency_hist().record_duration(started.elapsed());
        Ok(outcome)
    }

    /// Runs every invariant incrementally: refreshes the dirty
    /// partitions of the delta-maintained views, then reads violations
    /// straight out of them — O(rows touched since the last check)
    /// instead of O(log). Invariants without delta metadata (or whose
    /// views were never installed) fall back to the full scan.
    ///
    /// # Errors
    ///
    /// Refresh or query failures.
    pub fn run_checks_incremental(
        ssm: &dyn ServiceModule,
        log: &mut AuditLog,
    ) -> Result<CheckOutcome> {
        let started = std::time::Instant::now();
        log.db_mut()
            .refresh_matviews()
            .map_err(crate::LibSealError::Db)?;
        let registered: Vec<String> = log
            .db_mut()
            .matview_names()
            .into_iter()
            .map(str::to_string)
            .collect();
        let mut outcome = CheckOutcome {
            at_time: log.now(),
            reports: Vec::new(),
        };
        for inv in ssm.invariants() {
            let view = inv.view_name();
            let r = if inv.delta.is_some() && registered.contains(&view) {
                log.query(&format!("SELECT * FROM {view}"), &[])?
            } else {
                log.query(inv.sql, &[])?
            };
            outcome.reports.push(CheckReport {
                invariant: inv.name.to_string(),
                violations: r.rows.len(),
                rows: r.rows.into_iter().take(MAX_REPORT_ROWS).collect(),
            });
        }
        incremental_latency_hist().record_duration(started.elapsed());
        Ok(outcome)
    }

    /// Notes one completed request/response pair. Returns `true` when
    /// the check interval has elapsed — the caller then either runs
    /// [`Checker::run_due`] inline or enqueues a batch on the
    /// background verifier.
    pub fn note_pair(&mut self) -> bool {
        self.pairs_since_check += 1;
        if self.interval == 0 || self.pairs_since_check < self.interval {
            return false;
        }
        self.pairs_since_check = 0;
        self.client_budget = self.client_rate_limit;
        true
    }

    /// Runs a due incremental check (plus trimming when the log is
    /// clean) and caches the outcome.
    ///
    /// # Errors
    ///
    /// Check or trim failures.
    pub fn run_due(&mut self, ssm: &dyn ServiceModule, log: &mut AuditLog) -> Result<CheckOutcome> {
        let outcome = Self::run_checks_incremental(ssm, log)?;
        if self.trim && outcome.total_violations() == 0 {
            // Trim only clean logs: violations must stay as evidence.
            // Trimming deletes base rows, which marks the views fully
            // dirty — the next check recomputes over the (now small)
            // trimmed log.
            log.trim(ssm.trim_queries())?;
        }
        self.last_outcome = outcome.clone();
        Ok(outcome)
    }

    /// Notes one completed request/response pair; runs checking and
    /// trimming when the interval elapses. Returns the fresh outcome
    /// when a check ran.
    ///
    /// # Errors
    ///
    /// Check or trim failures.
    pub fn on_pair(
        &mut self,
        ssm: &dyn ServiceModule,
        log: &mut AuditLog,
    ) -> Result<Option<CheckOutcome>> {
        if !self.note_pair() {
            return Ok(None);
        }
        self.run_due(ssm, log).map(Some)
    }

    /// Handles a client-triggered check (`Libseal-Check` header).
    /// Returns the outcome, or `None` when rate-limited (the client
    /// then sees the cached `last_outcome`).
    ///
    /// # Errors
    ///
    /// Check failures.
    pub fn client_check(
        &mut self,
        ssm: &dyn ServiceModule,
        log: &mut AuditLog,
    ) -> Result<Option<CheckOutcome>> {
        if self.client_budget == 0 {
            return Ok(None);
        }
        self.client_budget -= 1;
        let outcome = Self::run_checks_incremental(ssm, log)?;
        self.last_outcome = outcome.clone();
        Ok(Some(outcome))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::log::{LogBacking, NoGuard};
    use crate::ssm::GitModule;
    use libseal_crypto::ed25519::SigningKey;

    fn setup() -> (GitModule, AuditLog) {
        let m = GitModule;
        let log = AuditLog::open(
            LogBacking::Memory,
            [0u8; 32],
            SigningKey::from_seed(&[1u8; 32]),
            Box::new(NoGuard),
            crate::ssm::git::GIT_SCHEMA,
            vec![
                crate::log::TableSpec {
                    name: "updates",
                    key_cols: &["time", "repo", "branch"],
                },
                crate::log::TableSpec {
                    name: "advertisements",
                    key_cols: &["time", "repo", "branch"],
                },
            ],
        )
        .unwrap();
        (m, log)
    }

    #[test]
    fn clean_log_reports_ok() {
        let (m, log) = setup();
        let outcome = Checker::run_checks(&m, &log).unwrap();
        assert_eq!(outcome.total_violations(), 0);
        assert_eq!(outcome.header_value(), "ok");
    }

    #[test]
    fn violations_render_in_header() {
        let (m, mut log) = setup();
        let t1 = log.next_time() as i64;
        log.append(
            "updates",
            &[
                Value::Integer(t1),
                Value::Text("r".into()),
                Value::Text("main".into()),
                Value::Text("c1".into()),
                Value::Text("update".into()),
            ],
        )
        .unwrap();
        let t2 = log.next_time() as i64;
        log.append(
            "advertisements",
            &[
                Value::Integer(t2),
                Value::Text("r".into()),
                Value::Text("main".into()),
                Value::Text("WRONG".into()),
            ],
        )
        .unwrap();
        let outcome = Checker::run_checks(&m, &log).unwrap();
        assert_eq!(outcome.total_violations(), 1);
        assert!(outcome
            .header_value()
            .starts_with("violations=1;git-soundness:1"));
    }

    #[test]
    fn interval_scheduling() {
        let (m, mut log) = setup();
        let mut checker = Checker::new(3, false, 1);
        assert!(checker.on_pair(&m, &mut log).unwrap().is_none());
        assert!(checker.on_pair(&m, &mut log).unwrap().is_none());
        assert!(checker.on_pair(&m, &mut log).unwrap().is_some());
        assert!(checker.on_pair(&m, &mut log).unwrap().is_none());
    }

    #[test]
    fn client_rate_limit() {
        let (m, mut log) = setup();
        let mut checker = Checker::new(10, false, 2);
        assert!(checker.client_check(&m, &mut log).unwrap().is_some());
        assert!(checker.client_check(&m, &mut log).unwrap().is_some());
        // Budget exhausted: served from cache.
        assert!(checker.client_check(&m, &mut log).unwrap().is_none());
        // Interval elapse refills.
        for _ in 0..10 {
            let _ = checker.on_pair(&m, &mut log).unwrap();
        }
        assert!(checker.client_check(&m, &mut log).unwrap().is_some());
    }

    #[test]
    fn dirty_log_is_not_trimmed() {
        let (m, mut log) = setup();
        let t1 = log.next_time() as i64;
        log.append(
            "updates",
            &[
                Value::Integer(t1),
                Value::Text("r".into()),
                Value::Text("main".into()),
                Value::Text("c1".into()),
                Value::Text("update".into()),
            ],
        )
        .unwrap();
        let t2 = log.next_time() as i64;
        log.append(
            "advertisements",
            &[
                Value::Integer(t2),
                Value::Text("r".into()),
                Value::Text("main".into()),
                Value::Text("WRONG".into()),
            ],
        )
        .unwrap();
        let mut checker = Checker::new(1, true, 1);
        let outcome = checker.on_pair(&m, &mut log).unwrap().unwrap();
        assert_eq!(outcome.total_violations(), 1);
        // Evidence survives: the advertisement was not trimmed away.
        let r = log
            .query("SELECT COUNT(*) FROM advertisements", &[])
            .unwrap();
        assert_eq!(r.scalar().unwrap(), &Value::Integer(1));
    }

    #[test]
    fn incremental_check_matches_full_scan_on_git_invariants() {
        let (m, mut log) = setup();
        Checker::install(&m, &mut log).unwrap();

        // Interleave clean and violating histories; after every append
        // the incremental evaluation must agree with the reference.
        for i in 0..24i64 {
            let tu = log.next_time() as i64;
            let cid = format!("c{i}");
            log.append(
                "updates",
                &[
                    Value::Integer(tu),
                    Value::Text("r".into()),
                    Value::Text("main".into()),
                    Value::Text(cid.clone()),
                    Value::Text("update".into()),
                ],
            )
            .unwrap();
            let ta = log.next_time() as i64;
            // Every third advertisement lies about the head commit.
            let advertised = if i % 3 == 2 { "WRONG".to_string() } else { cid };
            log.append(
                "advertisements",
                &[
                    Value::Integer(ta),
                    Value::Text("r".into()),
                    Value::Text("main".into()),
                    Value::Text(advertised),
                ],
            )
            .unwrap();

            let inc = Checker::run_checks_incremental(&m, &mut log).unwrap();
            let full = Checker::run_checks(&m, &log).unwrap();
            assert_eq!(inc.total_violations(), full.total_violations(), "step {i}");
            assert_eq!(inc.header_value(), full.header_value(), "step {i}");
            for (a, b) in inc.reports.iter().zip(full.reports.iter()) {
                assert_eq!(a.invariant, b.invariant);
                assert_eq!(a.violations, b.violations, "invariant {}", a.invariant);
            }
        }
        // 8 of 24 rounds advertised a wrong head.
        let full = Checker::run_checks(&m, &log).unwrap();
        assert_eq!(full.total_violations(), 8);
    }

    #[test]
    fn uninstalled_views_fall_back_to_full_scan() {
        let (m, mut log) = setup();
        // No install(): the incremental path must still be correct.
        let tu = log.next_time() as i64;
        log.append(
            "updates",
            &[
                Value::Integer(tu),
                Value::Text("r".into()),
                Value::Text("main".into()),
                Value::Text("c1".into()),
                Value::Text("update".into()),
            ],
        )
        .unwrap();
        let t = log.next_time() as i64;
        log.append(
            "advertisements",
            &[
                Value::Integer(t),
                Value::Text("r".into()),
                Value::Text("main".into()),
                Value::Text("WRONG".into()),
            ],
        )
        .unwrap();
        let inc = Checker::run_checks_incremental(&m, &mut log).unwrap();
        assert_eq!(inc.total_violations(), 1);
    }
}

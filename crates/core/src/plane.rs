//! The service-facing audit plane: one trait, two shapes.
//!
//! [`AuditPlane`] abstracts "the thing that terminates TLS and keeps
//! the audit log" so services never learn how many enclaves stand
//! behind it. [`crate::LibSeal`] implements it directly (the paper's
//! single-enclave model); [`ShardedPlane`] implements it with a fleet
//! of N enclaves — each with its own journal, sealing codec, group
//! commit pipeline, verifier pool and ROTE guard — multiplying the
//! single Sealer thread and single ROTE counter stream that otherwise
//! cap audited throughput.
//!
//! The fleet stays auditable as one logical log:
//!
//! - sessions are routed to shards by consistent hashing on a
//!   caller-supplied affinity (connection id), and stay pinned to
//!   their shard for life so every per-shard chain remains strictly
//!   append-only;
//! - every `epoch_interval` audited responses the plane snapshots all
//!   shard chain tips and appends one signed *epoch checkpoint* row
//!   per shard into shard 0's own hash chain (table
//!   `_libseal_epochs`), cross-linking the fleet;
//! - [`ShardedPlane::verify_fleet`] verifies every shard's chain,
//!   then replays the checkpoint history: epochs must be contiguous,
//!   a shard once covered must stay covered, per-shard clocks must be
//!   monotone across epochs, and every live chain must have advanced
//!   past its last checkpointed clock. A dropped shard, a rolled-back
//!   shard, or a truncated checkpoint history each produce a distinct
//!   [`FleetVerifyError`].
//!
//! Shard membership changes rebalance only *new* sessions: a retired
//! shard leaves the hash ring but keeps serving its pinned sessions
//! and keeps being checkpointed. A crashed shard is rebuilt through
//! the existing per-log recovery ([`ShardedPlane::restart_shard`]);
//! the fleet manifest file records membership so a plane restart
//! reprovisions every journal.
//!
//! This is a deliberate divergence from the paper, which pins one
//! audit log to one enclave; ReplicaTEE's fleet-provisioning shape
//! applied to horizontal scale-out of the audit plane.

use std::collections::{BTreeMap, HashMap};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use libseal_crypto::ed25519::{SigningKey, VerifyingKey};
use libseal_crypto::sha2::Sha256;
use libseal_sealdb::Value;
use libseal_sgxsim::enclave::EnclaveBuilder;
use libseal_sgxsim::seal::SealingPolicy;
use libseal_tlsx::ssl::ReadOutcome;
use plat::sync::{Mutex, RwLock};

use crate::log::{LogBacking, TableSpec};
use crate::ssm::{Invariant, ServiceModule};
use crate::termination::{LibSeal, LibSealConfig, SessionInput, SessionOutcome};
use crate::{AuditLog, LibSealError, Result};

/// Bits of a plane session id carrying the shard id.
const SHARD_BITS: u32 = 10;
/// Bits carrying the shard's restart generation (stale sids from
/// before a restart must not alias fresh sessions). Generations are
/// persisted in the fleet manifest and never wrap: a shard that has
/// exhausted them refuses further restarts.
const GEN_BITS: u32 = 14;
/// Maximum shard id (exclusive).
const MAX_SHARDS: u32 = 1 << SHARD_BITS;
/// Virtual nodes per shard on the hash ring; enough that four shards
/// split sequential connection ids within the ≤2 max/min ratio the
/// routing tests assert.
const VNODES_PER_SHARD: usize = 128;

/// The epoch-checkpoint table sealed into shard 0's chain.
const EPOCH_TABLE: &str = "_libseal_epochs";
const EPOCH_SCHEMA: &str = "CREATE TABLE IF NOT EXISTS _libseal_epochs(
    epoch INTEGER, shard INTEGER, seq INTEGER, clock INTEGER, head TEXT, sig TEXT)";

/// What services program against: session lifecycle, the audited
/// read/write paths, backpressure, drain and fleet verification.
///
/// Implemented by [`LibSeal`] (one enclave) and [`ShardedPlane`]
/// (N enclaves); `LibSealConfig::builder().shards(n).build_plane()`
/// picks the implementation.
pub trait AuditPlane: Send + Sync {
    /// Opens a session. `affinity` is a stable caller-chosen
    /// connection id; sharded planes consistent-hash it to pick the
    /// session's shard (a single enclave ignores it).
    ///
    /// # Errors
    ///
    /// Enclave or TLS-state allocation failures.
    fn open_session(&self, slot: usize, affinity: u64) -> Result<u64>;

    /// Closes a session (queues close_notify).
    ///
    /// # Errors
    ///
    /// Unknown session.
    fn close_session(&self, slot: usize, sid: u64) -> Result<()>;

    /// Drains the close_notify bytes of a closing session.
    ///
    /// # Errors
    ///
    /// Unknown session.
    fn take_close_output(&self, slot: usize, sid: u64) -> Result<Vec<u8>>;

    /// Feeds ciphertext from the socket.
    ///
    /// # Errors
    ///
    /// Unknown session.
    fn provide_input(&self, slot: usize, sid: u64, data: &[u8]) -> Result<()>;

    /// Drains ciphertext destined for the socket.
    ///
    /// # Errors
    ///
    /// Unknown session.
    fn take_output(&self, slot: usize, sid: u64) -> Result<Vec<u8>>;

    /// Advances the handshake; true when established.
    ///
    /// # Errors
    ///
    /// Unknown session or TLS failure.
    fn do_handshake(&self, slot: usize, sid: u64) -> Result<bool>;

    /// Reads decrypted request plaintext.
    ///
    /// # Errors
    ///
    /// Unknown session or TLS failure.
    fn ssl_read(&self, slot: usize, sid: u64) -> Result<ReadOutcome>;

    /// Writes (and audits) response plaintext.
    ///
    /// # Errors
    ///
    /// Unknown session, TLS failure, or audit-append failure.
    fn ssl_write(&self, slot: usize, sid: u64, data: &[u8]) -> Result<()>;

    /// Fused write + output take (one enclave crossing).
    ///
    /// # Errors
    ///
    /// As [`AuditPlane::ssl_write`].
    fn ssl_write_take(&self, slot: usize, sid: u64, data: &[u8]) -> Result<Vec<u8>>;

    /// Pumps a batch of sessions in one enclave crossing per shard.
    ///
    /// # Errors
    ///
    /// Enclave entry failure; per-session failures come back inside
    /// the outcomes.
    fn pump_batch(&self, slot: usize, items: Vec<SessionInput>) -> Result<Vec<SessionOutcome>>;

    /// Outstanding audited work (commit-queue depth plus verifier
    /// lag, summed across shards); the event listener pauses accepts
    /// above a threshold.
    fn audit_backlog(&self) -> u64;

    /// Whether auditing is configured.
    fn is_audited(&self) -> bool;

    /// Async-ecall slot count, when the async runtime is on.
    fn async_slots(&self) -> Option<usize>;

    /// Number of shards behind this plane.
    fn shards(&self) -> usize {
        1
    }

    /// Quiesces all audited state: seals, flushes and (for sharded
    /// planes) cuts a final epoch checkpoint.
    ///
    /// # Errors
    ///
    /// Seal or flush failures.
    fn drain(&self, slot: usize) -> Result<()>;

    /// Verifies the full audit state: every shard's hash chain,
    /// signatures and counter binding, plus (for sharded planes)
    /// epoch-checkpoint continuity across the fleet.
    ///
    /// # Errors
    ///
    /// [`LibSealError::Tampered`] on any integrity violation.
    fn verify_log(&self, slot: usize) -> Result<()>;

    /// The TLS certificates this plane's enclaves present, one per
    /// shard. With an attested identity configured, each carries that
    /// shard's quote as a certificate extension (RA-TLS).
    fn certificates(&self) -> Vec<libseal_tlsx::cert::Certificate>;

    /// The distinct enclave measurements behind this plane — what a
    /// client pins in its `AttestationPolicy`. All shards run the same
    /// code, so a sharded plane normally reports a single entry.
    fn measurements(&self) -> Vec<[u8; 32]>;

    /// The telemetry registry this plane reports into.
    fn telemetry(&self) -> &'static libseal_telemetry::Registry;
}

impl AuditPlane for LibSeal {
    fn open_session(&self, slot: usize, _affinity: u64) -> Result<u64> {
        self.new_session(slot)
    }

    fn close_session(&self, slot: usize, sid: u64) -> Result<()> {
        LibSeal::close_session(self, slot, sid)
    }

    fn take_close_output(&self, slot: usize, sid: u64) -> Result<Vec<u8>> {
        LibSeal::take_close_output(self, slot, sid)
    }

    fn provide_input(&self, slot: usize, sid: u64, data: &[u8]) -> Result<()> {
        LibSeal::provide_input(self, slot, sid, data)
    }

    fn take_output(&self, slot: usize, sid: u64) -> Result<Vec<u8>> {
        LibSeal::take_output(self, slot, sid)
    }

    fn do_handshake(&self, slot: usize, sid: u64) -> Result<bool> {
        LibSeal::do_handshake(self, slot, sid)
    }

    fn ssl_read(&self, slot: usize, sid: u64) -> Result<ReadOutcome> {
        LibSeal::ssl_read(self, slot, sid)
    }

    fn ssl_write(&self, slot: usize, sid: u64, data: &[u8]) -> Result<()> {
        LibSeal::ssl_write(self, slot, sid, data)
    }

    fn ssl_write_take(&self, slot: usize, sid: u64, data: &[u8]) -> Result<Vec<u8>> {
        LibSeal::ssl_write_take(self, slot, sid, data)
    }

    fn pump_batch(&self, slot: usize, items: Vec<SessionInput>) -> Result<Vec<SessionOutcome>> {
        LibSeal::pump_batch(self, slot, items)
    }

    fn audit_backlog(&self) -> u64 {
        LibSeal::audit_backlog(self)
    }

    fn is_audited(&self) -> bool {
        LibSeal::is_audited(self)
    }

    fn certificates(&self) -> Vec<libseal_tlsx::cert::Certificate> {
        vec![self.certificate().clone()]
    }

    fn measurements(&self) -> Vec<[u8; 32]> {
        vec![self.measurement()]
    }

    fn async_slots(&self) -> Option<usize> {
        LibSeal::async_slots(self)
    }

    fn drain(&self, slot: usize) -> Result<()> {
        LibSeal::drain(self, slot)
    }

    fn verify_log(&self, slot: usize) -> Result<()> {
        LibSeal::verify_log(self, slot)
    }

    fn telemetry(&self) -> &'static libseal_telemetry::Registry {
        LibSeal::telemetry(self)
    }
}

/// Provisions the audit plane `config` describes: one [`LibSeal`]
/// for `shards(1)`, a [`ShardedPlane`] otherwise.
///
/// # Errors
///
/// [`LibSealError::Config`] on contradictory knobs, or any enclave
/// provisioning failure.
pub fn build_plane(config: LibSealConfig) -> Result<Arc<dyn AuditPlane>> {
    if config.shards > 1 {
        if config.group_commit.is_none() {
            return Err(LibSealError::Config(
                "shards(n > 1) with no_group_commit: a sharded plane exists to multiply \
                 sealer pipelines; per-pair sealing would serialise every shard anyway"
                    .into(),
            ));
        }
        if config.ssm.is_none() {
            return Err(LibSealError::Config(
                "shards(n > 1) without an SSM: sharding partitions the audit log, \
                 which auditing-disabled configurations do not have"
                    .into(),
            ));
        }
        Ok(ShardedPlane::open(config)?)
    } else {
        Ok(LibSeal::new(config)?)
    }
}

// ---------------------------------------------------------------
// Consistent-hash routing
// ---------------------------------------------------------------

/// splitmix64: cheap, well-mixed; sequential connection ids land
/// uniformly on the ring.
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// A consistent-hash ring of virtual nodes, sorted by position.
struct ShardRing {
    points: Vec<(u64, u32)>,
}

impl ShardRing {
    fn new(shards: &[u32]) -> ShardRing {
        let mut points = Vec::with_capacity(shards.len() * VNODES_PER_SHARD);
        for &s in shards {
            for v in 0..VNODES_PER_SHARD {
                points.push((mix64(((s as u64) << 32) | 0x5EA1 | ((v as u64) << 16)), s));
            }
        }
        points.sort_unstable();
        ShardRing { points }
    }

    fn route(&self, affinity: u64) -> Option<u32> {
        if self.points.is_empty() {
            return None;
        }
        let h = mix64(affinity);
        let i = self.points.partition_point(|&(p, _)| p < h);
        Some(self.points[i % self.points.len()].1)
    }
}

/// Pure routing function: the shard a given affinity maps to among
/// `shards`. Exposed so distribution tests can assert the spread
/// deterministically, without provisioning enclaves.
pub fn route_affinity(affinity: u64, shards: &[u32]) -> Option<u32> {
    ShardRing::new(shards).route(affinity)
}

// ---------------------------------------------------------------
// Epoch checkpoints
// ---------------------------------------------------------------

/// Wraps shard 0's SSM, adding the `_libseal_epochs` checkpoint table
/// to the audited schema so checkpoint rows ride the ordinary hash
/// chain, sealing and rollback protection.
struct EpochSsm {
    inner: Arc<dyn ServiceModule>,
    schema: &'static str,
}

impl EpochSsm {
    fn new(inner: Arc<dyn ServiceModule>) -> EpochSsm {
        let schema = format!("{}\n{EPOCH_SCHEMA};", inner.schema_sql());
        EpochSsm {
            inner,
            // Leaked once per plane provisioning; the trait wants
            // 'static and planes live for the process in practice.
            schema: Box::leak(schema.into_boxed_str()),
        }
    }
}

impl ServiceModule for EpochSsm {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn schema_sql(&self) -> &'static str {
        self.schema
    }

    fn tables(&self) -> Vec<TableSpec> {
        let mut t = self.inner.tables();
        t.push(TableSpec {
            name: EPOCH_TABLE,
            key_cols: &["epoch", "shard"],
        });
        t
    }

    fn invariants(&self) -> &'static [Invariant] {
        self.inner.invariants()
    }

    fn trim_queries(&self) -> &'static [&'static str] {
        self.inner.trim_queries()
    }

    fn log_pair(&self, req: &[u8], rsp: &[u8], log: &mut AuditLog) -> Result<usize> {
        self.inner.log_pair(req, rsp, log)
    }
}

/// One decoded epoch-checkpoint row: shard `shard`'s chain tip as
/// witnessed at checkpoint `epoch`, signed by the plane key.
#[derive(Clone, Debug)]
pub struct CheckpointRow {
    /// Checkpoint number (1-based, contiguous).
    pub epoch: u64,
    /// The shard whose tip this row witnesses.
    pub shard: u32,
    /// The shard's chain length at the checkpoint.
    pub seq: u64,
    /// The shard's logical clock at the checkpoint (stable across
    /// trims, which renumber `seq`).
    pub clock: u64,
    /// The shard's chain head hash.
    pub head: [u8; 32],
    /// Plane signature over [`checkpoint_payload`].
    pub sig: [u8; 64],
}

/// Canonical signing payload of one checkpoint row.
pub fn checkpoint_payload(epoch: u64, shard: u32, seq: u64, clock: u64, head: &[u8; 32]) -> Vec<u8> {
    let mut p = Vec::with_capacity(14 + 8 + 4 + 8 + 8 + 32);
    p.extend_from_slice(b"libseal-epoch:");
    p.extend_from_slice(&epoch.to_le_bytes());
    p.extend_from_slice(&shard.to_le_bytes());
    p.extend_from_slice(&seq.to_le_bytes());
    p.extend_from_slice(&clock.to_le_bytes());
    p.extend_from_slice(head);
    p
}

/// How fleet verification failed. Every variant names the shard or
/// epoch so an auditor can point at the violation.
#[derive(Debug)]
pub enum FleetVerifyError {
    /// One shard's own chain failed verification.
    Shard {
        /// The failing shard.
        shard: u32,
        /// Its verification error.
        source: LibSealError,
    },
    /// Checkpoint epochs are not contiguous — part of the checkpoint
    /// history was dropped.
    CheckpointGap {
        /// The epoch expected next.
        expected: u64,
        /// The epoch found instead.
        found: u64,
    },
    /// A shard covered by an earlier checkpoint vanished from a later
    /// one (or from the live fleet) — a dropped shard.
    MissingShard {
        /// The epoch missing the shard.
        epoch: u64,
        /// The missing shard.
        shard: u32,
    },
    /// A checkpoint row's plane signature does not verify.
    BadSignature {
        /// The offending epoch.
        epoch: u64,
        /// The offending shard.
        shard: u32,
    },
    /// A shard's checkpointed clock went backwards between epochs.
    NonMonotone {
        /// The shard whose clock regressed.
        shard: u32,
        /// The epoch at which it regressed.
        epoch: u64,
    },
    /// A live shard's chain is behind its last checkpointed clock —
    /// the shard was rolled back.
    ShardRolledBack {
        /// The rolled-back shard.
        shard: u32,
        /// Clock the last checkpoint witnessed.
        checkpointed: u64,
        /// Clock the live chain shows.
        current: u64,
    },
    /// Plane-level failure reading or decoding the checkpoint table.
    Plane(LibSealError),
}

impl std::fmt::Display for FleetVerifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FleetVerifyError::Shard { shard, source } => {
                write!(f, "shard {shard} failed verification: {source}")
            }
            FleetVerifyError::CheckpointGap { expected, found } => {
                write!(f, "checkpoint gap: expected epoch {expected}, found {found}")
            }
            FleetVerifyError::MissingShard { epoch, shard } => {
                write!(f, "epoch {epoch} does not cover shard {shard}")
            }
            FleetVerifyError::BadSignature { epoch, shard } => {
                write!(f, "bad checkpoint signature at epoch {epoch}, shard {shard}")
            }
            FleetVerifyError::NonMonotone { shard, epoch } => {
                write!(f, "shard {shard} clock regressed at epoch {epoch}")
            }
            FleetVerifyError::ShardRolledBack {
                shard,
                checkpointed,
                current,
            } => write!(
                f,
                "shard {shard} rolled back: checkpointed clock {checkpointed}, current {current}"
            ),
            FleetVerifyError::Plane(e) => write!(f, "fleet verification failed: {e}"),
        }
    }
}

impl std::error::Error for FleetVerifyError {}

/// Verifies a checkpoint history against the live fleet: `rows` in
/// any order, `tips` mapping each live shard to its current logical
/// clock, `key` the plane's checkpoint-signing key.
///
/// Accepts iff epochs are contiguous, shard coverage never shrinks,
/// every signature verifies, per-shard clocks are monotone across
/// epochs, and every checkpointed shard is live with a clock at or
/// past its last checkpoint.
///
/// # Errors
///
/// The first [`FleetVerifyError`] encountered, scanning epochs in
/// order.
pub fn verify_checkpoints(
    rows: &[CheckpointRow],
    tips: &HashMap<u32, u64>,
    key: &VerifyingKey,
) -> std::result::Result<(), FleetVerifyError> {
    // Group rows by epoch, sorted.
    let mut epochs: BTreeMap<u64, BTreeMap<u32, &CheckpointRow>> = BTreeMap::new();
    for r in rows {
        epochs.entry(r.epoch).or_default().insert(r.shard, r);
    }
    let mut prev_epoch: Option<u64> = None;
    let mut covered: BTreeMap<u32, u64> = BTreeMap::new(); // shard -> last clock
    for (&epoch, shards) in &epochs {
        if let Some(p) = prev_epoch {
            if epoch != p + 1 {
                return Err(FleetVerifyError::CheckpointGap {
                    expected: p + 1,
                    found: epoch,
                });
            }
        }
        prev_epoch = Some(epoch);
        // Coverage may only grow: a shard checkpointed once must
        // appear in every later epoch (retired shards are still
        // checkpointed; only a dropped shard vanishes).
        for &shard in covered.keys() {
            if !shards.contains_key(&shard) {
                return Err(FleetVerifyError::MissingShard { epoch, shard });
            }
        }
        for (&shard, row) in shards {
            let payload = checkpoint_payload(epoch, shard, row.seq, row.clock, &row.head);
            if key.verify(&payload, &row.sig).is_err() {
                return Err(FleetVerifyError::BadSignature { epoch, shard });
            }
            if let Some(&prev_clock) = covered.get(&shard) {
                if row.clock < prev_clock {
                    return Err(FleetVerifyError::NonMonotone { shard, epoch });
                }
            }
            covered.insert(shard, row.clock);
        }
    }
    // Every checkpointed shard must still be live, at or past its
    // last checkpointed clock.
    let last_epoch = prev_epoch.unwrap_or(0);
    for (&shard, &clock) in &covered {
        match tips.get(&shard) {
            None => {
                return Err(FleetVerifyError::MissingShard {
                    epoch: last_epoch,
                    shard,
                })
            }
            Some(&current) if current < clock => {
                return Err(FleetVerifyError::ShardRolledBack {
                    shard,
                    checkpointed: clock,
                    current,
                });
            }
            Some(_) => {}
        }
    }
    Ok(())
}

// ---------------------------------------------------------------
// The sharded plane
// ---------------------------------------------------------------

/// One provisioned shard.
struct Shard {
    seal: Arc<LibSeal>,
    /// Whether new sessions may route here (retired shards keep
    /// serving pinned sessions but leave the ring).
    routable: bool,
    /// Restart generation, encoded into session ids so sids from
    /// before a restart cannot alias fresh sessions.
    gen: u64,
    /// Sessions opened on this shard (routing-distribution tests).
    opened: AtomicU64,
}

/// A fleet of audit enclaves behind one [`AuditPlane`].
///
/// See the [module docs](self) for the architecture; construct via
/// `LibSealConfig::builder().shards(n).build_plane()` or
/// [`ShardedPlane::open`].
pub struct ShardedPlane {
    template: LibSealConfig,
    plane_seed: [u8; 32],
    shards: RwLock<BTreeMap<u32, Shard>>,
    ring: RwLock<ShardRing>,
    signer: SigningKey,
    epoch_interval: u64,
    /// Audited responses written since provisioning (checkpoint pacing).
    responses: AtomicU64,
    /// Single-flight latch for interval-triggered checkpoints.
    checkpointing: AtomicBool,
    /// Next epoch number; the lock also serialises checkpoint cuts.
    next_epoch: Mutex<u64>,
    manifest: Option<PathBuf>,
}

impl ShardedPlane {
    /// Provisions a fleet from `config` (shard count, epoch interval
    /// and per-enclave knobs all come from the builder). With a disk
    /// backing, an existing fleet manifest at `<path>.manifest`
    /// overrides the configured shard count and every shard recovers
    /// its journal through the ordinary per-log recovery.
    ///
    /// # Errors
    ///
    /// [`LibSealError::Config`] on contradictory knobs, manifest
    /// corruption, or any enclave provisioning failure.
    pub fn open(config: LibSealConfig) -> Result<Arc<ShardedPlane>> {
        if config.shards > 1 && config.group_commit.is_none() {
            return Err(LibSealError::Config(
                "shards(n > 1) with no_group_commit".into(),
            ));
        }
        if config.ssm.is_none() {
            return Err(LibSealError::Config(
                "a sharded plane requires an SSM: there is no audit log to shard otherwise".into(),
            ));
        }
        // Deterministic plane identity: configured seed, else a
        // secret derived in-enclave from the MRSIGNER seal key — the
        // same secret LibSeal's own log signer falls back to. Never
        // public material (e.g. the certificate): anyone holding it
        // could recompute the checkpoint and shard signing keys and
        // forge the whole fleet record.
        let base = config.log_signer_seed.unwrap_or_else(plane_seal_secret);
        let mut seed_input = Vec::with_capacity(14 + 32);
        seed_input.extend_from_slice(b"libseal-plane:");
        seed_input.extend_from_slice(&base);
        let plane_seed = Sha256::digest(&seed_input);
        let signer = SigningKey::from_seed(&plane_seed);

        let manifest = match &config.backing {
            LogBacking::Memory => None,
            LogBacking::Disk(p) | LogBacking::DiskNoSync(p) => {
                Some(PathBuf::from(format!("{}.manifest", p.display())))
            }
        };
        let members = match manifest.as_deref().filter(|p| p.exists()) {
            Some(path) => parse_manifest(path)?,
            None => (0..config.shards.max(1) as u32)
                .map(|i| (i, true, 0))
                .collect(),
        };

        let mut shards = BTreeMap::new();
        for &(id, routable, gen) in &members {
            let seal = build_shard(&config, &plane_seed, id)?;
            shards.insert(
                id,
                Shard {
                    seal,
                    routable,
                    gen,
                    opened: AtomicU64::new(0),
                },
            );
        }
        let routable: Vec<u32> = shards
            .iter()
            .filter(|(_, s)| s.routable)
            .map(|(&id, _)| id)
            .collect();

        let plane = Arc::new(ShardedPlane {
            epoch_interval: config.epoch_interval,
            template: config,
            plane_seed,
            shards: RwLock::new(shards),
            ring: RwLock::new(ShardRing::new(&routable)),
            signer,
            responses: AtomicU64::new(0),
            checkpointing: AtomicBool::new(false),
            next_epoch: Mutex::new(1),
            manifest,
        });
        // A recovered fleet resumes its epoch numbering after the
        // last durable checkpoint.
        let resumed = plane.last_durable_epoch(0)?;
        *plane.next_epoch.lock() = resumed + 1;
        plane.write_manifest()?;
        Ok(plane)
    }

    /// Shard ids currently provisioned (routable or retired).
    pub fn shard_ids(&self) -> Vec<u32> {
        self.shards.read().keys().copied().collect()
    }

    /// Sessions opened per shard since provisioning.
    pub fn session_counts(&self) -> Vec<(u32, u64)> {
        self.shards
            .read()
            .iter()
            .map(|(&id, s)| (id, s.opened.load(Ordering::Relaxed)))
            .collect()
    }

    /// Direct handle to one shard's enclave (tests and tooling).
    pub fn shard(&self, id: u32) -> Option<Arc<LibSeal>> {
        self.shards.read().get(&id).map(|s| Arc::clone(&s.seal))
    }

    /// Provisions one more shard and adds it to the hash ring.
    /// Existing sessions are untouched; only new sessions route to
    /// it.
    ///
    /// # Errors
    ///
    /// Shard-id exhaustion or enclave provisioning failure.
    pub fn add_shard(&self) -> Result<u32> {
        let id = {
            let shards = self.shards.read();
            // Ids are never reused: a retired id's chain history
            // stays attributed to it in the checkpoint record.
            shards.keys().max().map_or(0, |m| m + 1)
        };
        if id >= MAX_SHARDS {
            return Err(LibSealError::Config(format!(
                "shard ids exhausted (max {MAX_SHARDS})"
            )));
        }
        let seal = build_shard(&self.template, &self.plane_seed, id)?;
        self.shards.write().insert(
            id,
            Shard {
                seal,
                routable: true,
                gen: 0,
                opened: AtomicU64::new(0),
            },
        );
        self.rebuild_ring();
        self.write_manifest()?;
        Ok(id)
    }

    /// Takes a shard out of the hash ring. Its pinned sessions keep
    /// running, its chain keeps being checkpointed — only new
    /// sessions stop routing to it (chains stay append-only).
    ///
    /// # Errors
    ///
    /// Unknown shard, or retiring the last routable shard.
    pub fn retire_shard(&self, id: u32) -> Result<()> {
        {
            let mut shards = self.shards.write();
            let routable_others = shards
                .iter()
                .any(|(&sid, s)| sid != id && s.routable);
            let shard = shards
                .get_mut(&id)
                .ok_or_else(|| LibSealError::Config(format!("no such shard: {id}")))?;
            if !routable_others {
                return Err(LibSealError::Config(
                    "cannot retire the last routable shard".into(),
                ));
            }
            shard.routable = false;
        }
        self.rebuild_ring();
        self.write_manifest()
    }

    /// Tears one shard's enclave down and reprovisions it from its
    /// journal through the ordinary per-log recovery (fresh enclave,
    /// same sealed log, ROTE counter reconciled). Sessions pinned to
    /// the shard die with [`LibSealError::NoSuchSession`]; clients
    /// reconnect and route normally.
    ///
    /// # Errors
    ///
    /// Unknown shard, teardown timeout, or reprovisioning failure.
    pub fn restart_shard(&self, id: u32) -> Result<()> {
        // Hold the epoch lock for the whole restart: an interval
        // checkpoint racing this window would otherwise cut an epoch
        // without the shard (it is out of the map while its enclave
        // drains), shrinking coverage and turning every later
        // verification into a false MissingShard verdict.
        let _epoch = self.next_epoch.lock();
        {
            let shards = self.shards.read();
            let shard = shards
                .get(&id)
                .ok_or_else(|| LibSealError::Config(format!("no such shard: {id}")))?;
            // Generations are encoded in session ids and persisted in
            // the manifest; wrapping one would let a stale sid alias a
            // fresh session, so refuse instead.
            if shard.gen + 1 >= (1 << GEN_BITS) {
                return Err(LibSealError::Config(format!(
                    "shard {id} restart generations exhausted"
                )));
            }
        }
        let old = self
            .shards
            .write()
            .remove(&id)
            .ok_or_else(|| LibSealError::Config(format!("no such shard: {id}")))?;
        let Shard {
            seal,
            routable,
            gen,
            ..
        } = old;
        // In-flight calls hold transient clones of the Arc; wait for
        // them to drain so Drop seals and releases the journal before
        // the fresh enclave reopens it.
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while Arc::strong_count(&seal) > 1 {
            if std::time::Instant::now() > deadline {
                // Put it back rather than risk two writers on one
                // journal.
                self.shards.write().insert(
                    id,
                    Shard {
                        seal,
                        routable,
                        gen,
                        opened: AtomicU64::new(0),
                    },
                );
                return Err(LibSealError::Log(format!(
                    "shard {id} busy: in-flight calls did not drain"
                )));
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        drop(seal);
        let fresh = build_shard(&self.template, &self.plane_seed, id)?;
        self.shards.write().insert(
            id,
            Shard {
                seal: fresh,
                routable,
                gen: gen + 1,
                opened: AtomicU64::new(0),
            },
        );
        // Persist the bumped generation: a plane reopen must not
        // reset it, or sids minted before the restart would pass the
        // generation check again.
        self.write_manifest()
    }

    /// Cuts an epoch checkpoint now: snapshots every shard's chain
    /// tip, appends one plane-signed row per shard into shard 0's
    /// chain, and seals + flushes shard 0 so the checkpoint is
    /// durable. Returns the epoch number.
    ///
    /// # Errors
    ///
    /// Chain-tip reads or the checkpoint append/seal failing.
    pub fn checkpoint_now(&self, slot: usize) -> Result<u64> {
        let mut next = self.next_epoch.lock();
        let epoch = *next;
        let (tips, shard0) = {
            let shards = self.shards.read();
            let mut tips = Vec::with_capacity(shards.len());
            for (&id, s) in shards.iter() {
                let tip = s.seal.with_log(slot, |log| log.chain_tip())?;
                tips.push((id, tip));
            }
            let shard0 = shards
                .get(&0)
                .map(|s| Arc::clone(&s.seal))
                .ok_or_else(|| LibSealError::Log("shard 0 missing".into()))?;
            (tips, shard0)
        };
        let signer = self.signer.clone();
        shard0.with_log(slot, move |log| -> Result<()> {
            for (id, (seq, clock, head)) in tips {
                let sig = signer.sign(&checkpoint_payload(epoch, id, seq, clock, &head));
                log.append(
                    EPOCH_TABLE,
                    &[
                        Value::Integer(epoch as i64),
                        Value::Integer(id as i64),
                        Value::Integer(seq as i64),
                        Value::Integer(clock as i64),
                        Value::Text(hex(&head)),
                        Value::Text(hex(&sig)),
                    ],
                )?;
            }
            log.seal()?;
            log.flush()
        })??;
        *next = epoch + 1;
        Ok(epoch)
    }

    /// The plane's checkpoint-verifying key.
    pub fn verifying_key(&self) -> VerifyingKey {
        self.signer.verifying_key()
    }

    /// Verifies the whole fleet with typed failures: every shard's
    /// own chain, then checkpoint continuity (see
    /// [`verify_checkpoints`]).
    ///
    /// # Errors
    ///
    /// The first [`FleetVerifyError`] found.
    pub fn verify_fleet(&self, slot: usize) -> std::result::Result<(), FleetVerifyError> {
        let seals: Vec<(u32, Arc<LibSeal>)> = {
            let shards = self.shards.read();
            shards
                .iter()
                .map(|(&id, s)| (id, Arc::clone(&s.seal)))
                .collect()
        };
        let mut tips = HashMap::new();
        for (id, seal) in &seals {
            seal.verify_log(slot)
                .map_err(|source| FleetVerifyError::Shard { shard: *id, source })?;
            let (_seq, clock, _head) = seal
                .with_log(slot, |log| log.chain_tip())
                .map_err(FleetVerifyError::Plane)?;
            tips.insert(*id, clock);
        }
        let rows = self.checkpoint_rows(slot).map_err(FleetVerifyError::Plane)?;
        verify_checkpoints(&rows, &tips, &self.signer.verifying_key())
    }

    /// Reads and decodes the durable checkpoint history from shard 0.
    ///
    /// # Errors
    ///
    /// Query or decode failures.
    pub fn checkpoint_rows(&self, slot: usize) -> Result<Vec<CheckpointRow>> {
        let shard0 = self
            .shard(0)
            .ok_or_else(|| LibSealError::Log("shard 0 missing".into()))?;
        let result = shard0.with_log(slot, |log| {
            log.query(
                "SELECT epoch, shard, seq, clock, head, sig FROM _libseal_epochs",
                &[],
            )
        })??;
        let mut rows = Vec::with_capacity(result.rows.len());
        for r in &result.rows {
            rows.push(decode_row(r)?);
        }
        rows.sort_by_key(|r| (r.epoch, r.shard));
        Ok(rows)
    }

    /// Highest epoch in shard 0's durable checkpoint table (0 when
    /// none).
    fn last_durable_epoch(&self, slot: usize) -> Result<u64> {
        Ok(self
            .checkpoint_rows(slot)?
            .last()
            .map_or(0, |r| r.epoch))
    }

    fn rebuild_ring(&self) {
        let routable: Vec<u32> = self
            .shards
            .read()
            .iter()
            .filter(|(_, s)| s.routable)
            .map(|(&id, _)| id)
            .collect();
        *self.ring.write() = ShardRing::new(&routable);
    }

    /// Persists fleet membership next to the journals (atomic
    /// temp-file + rename), so a plane restart reprovisions every
    /// shard. Memory-backed planes have nothing to persist.
    fn write_manifest(&self) -> Result<()> {
        let Some(path) = &self.manifest else {
            return Ok(());
        };
        let mut body = String::from("libseal-fleet-v1\n");
        for (&id, s) in self.shards.read().iter() {
            body.push_str(&format!(
                "shard {id} {} {}\n",
                if s.routable { 1 } else { 0 },
                s.gen,
            ));
        }
        let tmp = path.with_extension("manifest.tmp");
        std::fs::write(&tmp, body.as_bytes())
            .and_then(|()| std::fs::rename(&tmp, path))
            .map_err(|e| LibSealError::Log(format!("fleet manifest: {e}")))
    }

    /// Counts audited responses and cuts an interval checkpoint when
    /// due. Single-flight: concurrent crossers skip instead of
    /// queueing behind the epoch lock.
    fn note_responses(&self, slot: usize, n: u64) {
        if n == 0 || self.epoch_interval == 0 {
            return;
        }
        let prev = self.responses.fetch_add(n, Ordering::Relaxed);
        if prev / self.epoch_interval == (prev + n) / self.epoch_interval {
            return;
        }
        if self
            .checkpointing
            .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
        {
            if self.checkpoint_now(slot).is_err() {
                // A persistently failing checkpoint append would
                // silently freeze coverage; count it so operators see
                // the stall before drain does.
                libseal_telemetry::counter("core_plane_checkpoint_failures_total").inc();
            }
            self.checkpointing.store(false, Ordering::Release);
        }
    }

    /// Resolves a plane session id to its shard, rejecting stale
    /// generations (sessions from before a shard restart).
    fn resolve(&self, sid: u64) -> Result<(Arc<LibSeal>, u64)> {
        let shard_id = (sid & (MAX_SHARDS as u64 - 1)) as u32;
        let gen = (sid >> SHARD_BITS) & ((1 << GEN_BITS) - 1);
        let local = sid >> (SHARD_BITS + GEN_BITS);
        let shards = self.shards.read();
        match shards.get(&shard_id) {
            Some(s) if s.gen == gen => Ok((Arc::clone(&s.seal), local)),
            _ => Err(LibSealError::NoSuchSession(sid)),
        }
    }

    fn encode_sid(local: u64, gen: u64, shard: u32) -> u64 {
        (local << (SHARD_BITS + GEN_BITS)) | (gen << SHARD_BITS) | shard as u64
    }
}

impl AuditPlane for ShardedPlane {
    fn open_session(&self, slot: usize, affinity: u64) -> Result<u64> {
        let shard_id = self
            .ring
            .read()
            .route(affinity)
            .ok_or_else(|| LibSealError::Log("no routable shards".into()))?;
        let (seal, gen) = {
            let shards = self.shards.read();
            let s = shards
                .get(&shard_id)
                .ok_or_else(|| LibSealError::Log(format!("shard {shard_id} missing")))?;
            s.opened.fetch_add(1, Ordering::Relaxed);
            (Arc::clone(&s.seal), s.gen)
        };
        let local = seal.new_session(slot)?;
        Ok(Self::encode_sid(local, gen, shard_id))
    }

    fn close_session(&self, slot: usize, sid: u64) -> Result<()> {
        let (seal, local) = self.resolve(sid)?;
        seal.close_session(slot, local)
    }

    fn take_close_output(&self, slot: usize, sid: u64) -> Result<Vec<u8>> {
        let (seal, local) = self.resolve(sid)?;
        seal.take_close_output(slot, local)
    }

    fn provide_input(&self, slot: usize, sid: u64, data: &[u8]) -> Result<()> {
        let (seal, local) = self.resolve(sid)?;
        seal.provide_input(slot, local, data)
    }

    fn take_output(&self, slot: usize, sid: u64) -> Result<Vec<u8>> {
        let (seal, local) = self.resolve(sid)?;
        seal.take_output(slot, local)
    }

    fn do_handshake(&self, slot: usize, sid: u64) -> Result<bool> {
        let (seal, local) = self.resolve(sid)?;
        seal.do_handshake(slot, local)
    }

    fn ssl_read(&self, slot: usize, sid: u64) -> Result<ReadOutcome> {
        let (seal, local) = self.resolve(sid)?;
        seal.ssl_read(slot, local)
    }

    fn ssl_write(&self, slot: usize, sid: u64, data: &[u8]) -> Result<()> {
        let (seal, local) = self.resolve(sid)?;
        seal.ssl_write(slot, local, data)?;
        // Release the shard handle before pacing: note_responses may
        // block on the epoch lock, which a concurrent restart holds
        // while waiting for exactly these handles to drain.
        drop(seal);
        self.note_responses(slot, 1);
        Ok(())
    }

    fn ssl_write_take(&self, slot: usize, sid: u64, data: &[u8]) -> Result<Vec<u8>> {
        let (seal, local) = self.resolve(sid)?;
        let out = seal.ssl_write_take(slot, local, data)?;
        drop(seal);
        self.note_responses(slot, 1);
        Ok(out)
    }

    fn pump_batch(&self, slot: usize, items: Vec<SessionInput>) -> Result<Vec<SessionOutcome>> {
        // Partition the batch per shard: one enclave crossing per
        // shard touched, outcomes reassembled under plane sids.
        let mut per_shard = BTreeMap::new();
        let mut outcomes = Vec::with_capacity(items.len());
        for item in items {
            match self.resolve(item.sid) {
                Ok((seal, local)) => {
                    let shard_gen = item.sid & ((1 << (SHARD_BITS + GEN_BITS)) - 1);
                    let entry = per_shard
                        .entry(shard_gen)
                        .or_insert_with(|| (seal, Vec::new(), Vec::new()));
                    entry.2.push(item.sid);
                    entry.1.push(SessionInput {
                        sid: local,
                        input: item.input,
                    });
                }
                Err(e) => outcomes.push(SessionOutcome {
                    sid: item.sid,
                    established: false,
                    data: Vec::new(),
                    output: Vec::new(),
                    closed: true,
                    error: Some(e),
                }),
            }
        }
        for (shard_gen, (seal, batch, plane_sids)) in per_shard {
            let local_to_plane: HashMap<u64, u64> = batch
                .iter()
                .map(|i| i.sid)
                .zip(plane_sids)
                .collect();
            for mut o in seal.pump_batch(slot, batch)? {
                o.sid = local_to_plane
                    .get(&o.sid)
                    .copied()
                    .unwrap_or((o.sid << (SHARD_BITS + GEN_BITS)) | shard_gen);
                outcomes.push(o);
            }
        }
        // No epoch pacing here: pumps only advance handshakes and
        // reads. Audited responses are counted where they are
        // written — ssl_write / ssl_write_take.
        Ok(outcomes)
    }

    fn audit_backlog(&self) -> u64 {
        self.shards
            .read()
            .values()
            .map(|s| s.seal.audit_backlog())
            .sum()
    }

    fn is_audited(&self) -> bool {
        true
    }

    fn certificates(&self) -> Vec<libseal_tlsx::cert::Certificate> {
        self.shards
            .read()
            .values()
            .map(|s| s.seal.certificate().clone())
            .collect()
    }

    fn measurements(&self) -> Vec<[u8; 32]> {
        // Every shard runs the same code; dedup so clients pin one
        // measurement, but report stragglers if a mixed fleet appears.
        let mut ms: Vec<[u8; 32]> = self
            .shards
            .read()
            .values()
            .map(|s| s.seal.measurement())
            .collect();
        ms.sort_unstable();
        ms.dedup();
        ms
    }

    fn async_slots(&self) -> Option<usize> {
        None
    }

    fn shards(&self) -> usize {
        self.shards.read().len()
    }

    fn drain(&self, slot: usize) -> Result<()> {
        // Final checkpoint first: the drained fleet's tips are all
        // witnessed in shard 0's chain.
        self.checkpoint_now(slot)?;
        let seals: Vec<Arc<LibSeal>> = self
            .shards
            .read()
            .values()
            .map(|s| Arc::clone(&s.seal))
            .collect();
        for seal in seals {
            seal.drain(slot)?;
        }
        Ok(())
    }

    fn verify_log(&self, slot: usize) -> Result<()> {
        self.verify_fleet(slot).map_err(|e| match e {
            FleetVerifyError::Shard { source, .. } => source,
            other => LibSealError::Tampered(other.to_string()),
        })
    }

    fn telemetry(&self) -> &'static libseal_telemetry::Registry {
        libseal_telemetry::global()
    }
}

/// The plane's secret seed base when no explicit `log_signer_seed`
/// is configured: the MRSIGNER seal key, read inside a freshly
/// measured enclave exactly as `LibSeal` derives its own log-signer
/// fallback. Bound to the platform secret, so nothing derivable from
/// public material (certificate, measurements) reveals the
/// checkpoint or per-shard signing keys.
fn plane_seal_secret() -> [u8; 32] {
    let mut secret = [0u8; 32];
    EnclaveBuilder::new(b"libseal-plane-v1").build(|sv| {
        secret = sv.seal_key(SealingPolicy::MrSigner);
    });
    secret
}

/// Provisions one shard's enclave from the plane template: suffixed
/// journal path, domain-separated log-signing seed, and (shard 0
/// only) the checkpoint table spliced into the audited schema.
fn build_shard(template: &LibSealConfig, plane_seed: &[u8; 32], id: u32) -> Result<Arc<LibSeal>> {
    let mut config = template.clone();
    config.backing = match &template.backing {
        LogBacking::Memory => LogBacking::Memory,
        LogBacking::Disk(p) => LogBacking::Disk(shard_path(p, id)),
        LogBacking::DiskNoSync(p) => LogBacking::DiskNoSync(shard_path(p, id)),
    };
    let mut seed_input = Vec::with_capacity(32 + 6 + 4);
    seed_input.extend_from_slice(plane_seed);
    seed_input.extend_from_slice(b"shard:");
    seed_input.extend_from_slice(&id.to_le_bytes());
    config.log_signer_seed = Some(Sha256::digest(&seed_input));
    if let (0, Some(ssm)) = (id, &template.ssm) {
        config.ssm = Some(Arc::new(EpochSsm::new(Arc::clone(ssm))));
    }
    LibSeal::new(config)
}

fn shard_path(base: &std::path::Path, id: u32) -> PathBuf {
    PathBuf::from(format!("{}.shard{id}", base.display()))
}

/// Parses the fleet manifest: `shard <id> <routable> [gen]` lines
/// under a `libseal-fleet-v1` header (the generation column was
/// added later; absent means 0).
fn parse_manifest(path: &std::path::Path) -> Result<Vec<(u32, bool, u64)>> {
    let body = std::fs::read_to_string(path)
        .map_err(|e| LibSealError::Log(format!("fleet manifest: {e}")))?;
    let mut lines = body.lines();
    if lines.next() != Some("libseal-fleet-v1") {
        return Err(LibSealError::Config(format!(
            "unrecognised fleet manifest at {}",
            path.display()
        )));
    }
    let mut members = Vec::new();
    for line in lines {
        let mut parts = line.split_whitespace();
        if parts.next() != Some("shard") {
            continue;
        }
        let (Some(id), Some(routable)) = (parts.next(), parts.next()) else {
            continue;
        };
        let id: u32 = id
            .parse()
            .map_err(|_| LibSealError::Config(format!("bad manifest shard id: {id}")))?;
        let gen: u64 = match parts.next() {
            None => 0,
            Some(g) => g.parse().map_err(|_| {
                LibSealError::Config(format!("bad manifest shard generation: {g}"))
            })?,
        };
        if gen >= (1 << GEN_BITS) {
            return Err(LibSealError::Config(format!(
                "manifest shard {id} generation {gen} out of range"
            )));
        }
        members.push((id, routable == "1", gen));
    }
    if members.is_empty() {
        return Err(LibSealError::Config("empty fleet manifest".into()));
    }
    Ok(members)
}

fn decode_row(row: &[Value]) -> Result<CheckpointRow> {
    let int = |v: &Value| -> Result<u64> {
        match v {
            Value::Integer(i) => Ok(*i as u64),
            _ => Err(LibSealError::Log("non-integer checkpoint column".into())),
        }
    };
    let text = |v: &Value| -> Result<Vec<u8>> {
        match v {
            Value::Text(t) => unhex(t),
            _ => Err(LibSealError::Log("non-text checkpoint column".into())),
        }
    };
    if row.len() != 6 {
        return Err(LibSealError::Log("short checkpoint row".into()));
    }
    let head_bytes = text(&row[4])?;
    let sig_bytes = text(&row[5])?;
    let head: [u8; 32] = head_bytes
        .try_into()
        .map_err(|_| LibSealError::Log("bad checkpoint head length".into()))?;
    let sig: [u8; 64] = sig_bytes
        .try_into()
        .map_err(|_| LibSealError::Log("bad checkpoint signature length".into()))?;
    Ok(CheckpointRow {
        epoch: int(&row[0])?,
        shard: int(&row[1])? as u32,
        seq: int(&row[2])?,
        clock: int(&row[3])?,
        head,
        sig,
    })
}

fn hex(b: &[u8]) -> String {
    b.iter().map(|x| format!("{x:02x}")).collect()
}

fn unhex(s: &str) -> Result<Vec<u8>> {
    if !s.len().is_multiple_of(2) {
        return Err(LibSealError::Log("odd-length hex".into()));
    }
    (0..s.len())
        .step_by(2)
        .map(|i| {
            u8::from_str_radix(&s[i..i + 2], 16)
                .map_err(|_| LibSealError::Log("bad hex digit".into()))
        })
        .collect()
}

#![warn(missing_docs)]
//! **LibSEAL**: a SEcure Audit Library revealing service integrity
//! violations using trusted execution.
//!
//! This crate reproduces the primary contribution of *LibSEAL:
//! Revealing Service Integrity Violations Using Trusted Execution*
//! (Aublin et al., EuroSys 2018) as a Rust library over the
//! workspace's simulated SGX TEE:
//!
//! - [`termination::LibSeal`] — the drop-in TLS termination shim that
//!   observes all service requests and responses from inside an
//!   enclave (§3, §4), with shadow structures, secure callbacks, an
//!   untrusted memory pool and optional asynchronous enclave calls;
//! - [`log::AuditLog`] — the non-repudiable relational audit log:
//!   hash-chained, Ed25519-signed, sealed to disk, rollback-protected
//!   by a ROTE quorum, trimmable (§5.1);
//! - [`ssm`] — service-specific modules for Git, ownCloud and Dropbox
//!   with the paper's schemas, invariants and trimming queries (§6.2);
//! - [`check`] — SQL invariant checking with interval scheduling,
//!   client-triggered checks and in-band result delivery (§5.2);
//! - [`provision`] — attestation-gated certificate provisioning, the
//!   §6.3 defence against the provider bypassing the audit layer;
//! - [`merge`] — multi-instance partial-log merging for scale-out
//!   deployments (the §3.2 extension);
//! - [`plane`] — the [`plane::AuditPlane`] service-facing trait and
//!   the sharded multi-enclave orchestrator behind it, which routes
//!   sessions to per-shard enclaves and cross-links the shard chains
//!   with signed epoch checkpoints (a deliberate divergence from the
//!   paper's single-enclave model; see DESIGN.md).
//!
//! # Examples
//!
//! See `examples/quickstart.rs` at the workspace root for a complete
//! client/server round trip with attack detection.

pub mod check;
pub mod commit;
pub mod log;
pub mod merge;
pub mod plane;
pub mod provision;
pub mod ssm;
pub mod termination;
pub mod verifier;

pub use check::{CheckOutcome, CheckReport, Checker};
pub use commit::{CommitQueue, GroupCommitConfig, Sealer};
pub use log::{AuditLog, CommitMode, LogBacking, TableSpec};
pub use plane::{AuditPlane, CheckpointRow, FleetVerifyError, ShardedPlane};
pub use provision::{CertProvisioner, IdentityIssuer};
pub use ssm::{
    DropboxModule, GitModule, Invariant, MessagingModule, OwnCloudModule, ServiceModule,
};
pub use termination::{
    AttestedIdentity, GuardConfig, LibSeal, LibSealConfig, LibSealConfigBuilder, SessionInput,
    SessionOutcome, ShadowSsl,
};
pub use verifier::{Verifier, VerifierConfig, VerifierQueue};

pub use libseal_telemetry as telemetry;

/// Errors surfaced by LibSEAL.
#[derive(Debug)]
pub enum LibSealError {
    /// Audit-log failure.
    Log(String),
    /// The log failed an integrity check — evidence of tampering.
    Tampered(String),
    /// Underlying database error.
    Db(libseal_sealdb::DbError),
    /// Underlying TLS error.
    Tls(libseal_tlsx::TlsError),
    /// Attestation failure.
    Attestation(String),
    /// The referenced session does not exist.
    NoSuchSession(u64),
    /// The operation needs auditing, which is not configured.
    AuditingDisabled,
    /// The requested configuration is contradictory.
    Config(String),
}

impl std::fmt::Display for LibSealError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LibSealError::Log(m) => write!(f, "audit log error: {m}"),
            LibSealError::Tampered(m) => write!(f, "log integrity violation: {m}"),
            LibSealError::Db(e) => write!(f, "database error: {e}"),
            LibSealError::Tls(e) => write!(f, "TLS error: {e}"),
            LibSealError::Attestation(m) => write!(f, "attestation error: {m}"),
            LibSealError::NoSuchSession(sid) => write!(f, "no such session: {sid}"),
            LibSealError::AuditingDisabled => write!(f, "auditing is not configured"),
            LibSealError::Config(m) => write!(f, "invalid configuration: {m}"),
        }
    }
}

impl std::error::Error for LibSealError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LibSealError::Db(e) => Some(e),
            LibSealError::Tls(e) => Some(e),
            _ => None,
        }
    }
}

/// Convenience alias for fallible LibSEAL operations.
pub type Result<T> = std::result::Result<T, LibSealError>;

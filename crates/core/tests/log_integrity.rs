//! Direct tests of the audit log's integrity machinery: hash chain,
//! signatures, rollback counters, sealed persistence.

use libseal::log::{AuditLog, LogBacking, NoGuard, RollbackGuard};
use libseal::{GitModule, LibSealError, ServiceModule};
use libseal_crypto::ed25519::SigningKey;
use libseal_sealdb::Value;

fn open_log(backing: LogBacking, guard: Box<dyn RollbackGuard>) -> libseal::Result<AuditLog> {
    let ssm = GitModule;
    AuditLog::open(
        backing,
        [7u8; 32],
        SigningKey::from_seed(&[1u8; 32]),
        guard,
        ssm.schema_sql(),
        ssm.tables(),
    )
}

fn append_n(log: &mut AuditLog, n: u64) {
    for i in 0..n {
        let t = log.next_time() as i64;
        log.append(
            "updates",
            &[
                Value::Integer(t),
                Value::Text("r".into()),
                Value::Text("main".into()),
                Value::Text(format!("{i:040x}")),
                Value::Text("update".into()),
            ],
        )
        .unwrap();
    }
}

/// A guard standing in for an external (persistent) counter service
/// that remembers more increments than the log being presented — the
/// §5.1 rollback scenario.
struct ExternalCounter {
    value: std::sync::atomic::AtomicU64,
}

impl RollbackGuard for ExternalCounter {
    fn increment(&self) -> libseal::Result<u64> {
        Ok(self.value.fetch_add(1, std::sync::atomic::Ordering::SeqCst) + 1)
    }
    fn attested(&self) -> libseal::Result<u64> {
        Ok(self.value.load(std::sync::atomic::Ordering::SeqCst))
    }
}

#[test]
fn rollback_across_restart_detected() {
    let path = plat::tmp::TempPath::new("libseal-rb", "log");

    // Epoch 1: write 3 entries; snapshot the journal (the attacker's
    // stale copy).
    {
        let guard = Box::new(ExternalCounter {
            value: std::sync::atomic::AtomicU64::new(0),
        });
        let mut log = open_log(LogBacking::Disk(path.to_path_buf()), guard).unwrap();
        append_n(&mut log, 3);
        log.flush().unwrap();
    }
    let stale_copy = std::fs::read(&path).unwrap();

    // Epoch 2: two more entries land (counter now attests 5).
    {
        let guard = Box::new(ExternalCounter {
            value: std::sync::atomic::AtomicU64::new(3),
        });
        let mut log = open_log(LogBacking::Disk(path.to_path_buf()), guard).unwrap();
        append_n(&mut log, 2);
        log.flush().unwrap();
    }

    // The provider restores the stale journal and restarts: the
    // external counter attests 5 > the 3 entries presented.
    std::fs::write(&path, &stale_copy).unwrap();
    let guard = Box::new(ExternalCounter {
        value: std::sync::atomic::AtomicU64::new(5),
    });
    match open_log(LogBacking::Disk(path.to_path_buf()), guard) {
        Err(LibSealError::Log(m)) | Err(LibSealError::Tampered(m)) => {
            assert!(m.contains("rollback"), "{m}");
        }
        other => panic!("rollback not detected: {:?}", other.map(|_| ())),
    }
}

#[test]
fn verify_detects_reordered_chain() {
    let mut log = open_log(LogBacking::Memory, Box::new(NoGuard)).unwrap();
    append_n(&mut log, 3);
    log.verify().unwrap();
    // Swap two chain sequence numbers (a provider editing history).
    log.db_mut()
        .execute("UPDATE _libseal_chain SET seq = 99 WHERE seq = 1")
        .unwrap();
    assert!(log.verify().is_err());
}

#[test]
fn verify_detects_payload_edit() {
    let mut log = open_log(LogBacking::Memory, Box::new(NoGuard)).unwrap();
    append_n(&mut log, 2);
    log.db_mut()
        .execute("UPDATE _libseal_chain SET payload = 'forged' WHERE seq = 2")
        .unwrap();
    assert!(log.verify().is_err());
}

#[test]
fn verify_detects_meta_tampering() {
    let mut log = open_log(LogBacking::Memory, Box::new(NoGuard)).unwrap();
    append_n(&mut log, 2);
    log.db_mut()
        .execute("UPDATE _libseal_meta SET v = '00:2:2' WHERE k = 'head'")
        .unwrap();
    assert!(log.verify().is_err());
}

#[test]
fn empty_log_verifies() {
    let log = open_log(LogBacking::Memory, Box::new(NoGuard)).unwrap();
    log.verify().unwrap();
}

#[test]
fn logical_clock_is_monotonic_across_restart() {
    let path = plat::tmp::TempPath::new("libseal-clock", "log");
    let t1;
    {
        let mut log = open_log(LogBacking::Disk(path.to_path_buf()), Box::new(NoGuard)).unwrap();
        append_n(&mut log, 4);
        t1 = log.now();
    }
    {
        let mut log = open_log(LogBacking::Disk(path.to_path_buf()), Box::new(NoGuard)).unwrap();
        let t2 = log.next_time();
        assert!(t2 > t1, "clock went backwards: {t2} <= {t1}");
    }
}

#[test]
fn clock_survives_trim_and_restart() {
    // Regression test: after trimming renumbers the chain, a restart
    // must not reset the logical clock below surviving rows' times.
    let ssm = GitModule;
    let path = plat::tmp::TempPath::new("libseal-trimclk", "log");
    let mut max_time_before;
    {
        let mut log = open_log(LogBacking::Disk(path.to_path_buf()), Box::new(NoGuard)).unwrap();
        append_n(&mut log, 50);
        log.trim(ssm.trim_queries()).unwrap(); // chain renumbered to 1 entry
        max_time_before = 0i64;
        let r = log.query("SELECT MAX(time) FROM updates", &[]).unwrap();
        if let Some(Value::Integer(t)) = r.scalar() {
            max_time_before = *t;
        }
        assert!(max_time_before >= 50);
        log.flush().unwrap();
    }
    {
        let mut log = open_log(LogBacking::Disk(path.to_path_buf()), Box::new(NoGuard)).unwrap();
        let next = log.next_time() as i64;
        assert!(
            next > max_time_before,
            "clock regressed: next {next} <= surviving max {max_time_before}"
        );
        log.verify().unwrap();
    }
}

#[test]
fn indexes_stay_consistent_across_append_trim_and_replay() {
    // The key-column hash indexes created by `AuditLog::open` must
    // track every mutation path the log performs: appends, the
    // DELETE-based trim, the full rebuild after trim, and journal
    // replay on reopen — and the invariant queries they accelerate
    // must keep returning the same answers.
    use libseal::ssm::git::GIT_SOUNDNESS;
    let ssm = GitModule;
    let path = plat::tmp::TempPath::new("libseal-trimix", "log");
    let consistent = |log: &mut AuditLog| {
        for t in log.db_mut().catalog().tables_sorted() {
            assert!(t.indexes_consistent(), "indexes on {} inconsistent", t.name);
            // Internal bookkeeping tables (`_libseal_*`) carry no
            // key-column indexes; every service table must.
            if !t.name.starts_with('_') {
                assert!(
                    !t.index_names().is_empty(),
                    "key-column index missing on {}",
                    t.name
                );
            }
        }
    };
    {
        let mut log = open_log(LogBacking::Disk(path.to_path_buf()), Box::new(NoGuard)).unwrap();
        append_n(&mut log, 40);
        consistent(&mut log);
        assert!(log.query(GIT_SOUNDNESS, &[]).unwrap().is_empty());
        log.trim(ssm.trim_queries()).unwrap();
        consistent(&mut log);
        assert!(log.query(GIT_SOUNDNESS, &[]).unwrap().is_empty());
        log.flush().unwrap();
    }
    let mut log = open_log(LogBacking::Disk(path.to_path_buf()), Box::new(NoGuard)).unwrap();
    consistent(&mut log);
    assert!(log.query(GIT_SOUNDNESS, &[]).unwrap().is_empty());
    log.verify().unwrap();
}

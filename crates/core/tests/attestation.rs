//! End-to-end RA-TLS: enclaves mint their TLS keypair inside, quotes
//! travel as certificate extensions, and clients with an
//! [`AttestationPolicy`] complete handshakes only against verified
//! enclaves (§6.3 defence, extended to the transport itself).
//!
//! Every negative case asserts BOTH the typed error and the
//! per-reason `tlsx_verify_failures_total_<reason>` counter.

use std::sync::Arc;
use std::time::Duration;

use libseal::{DropboxModule, GitModule, IdentityIssuer, LibSeal, LibSealConfig};
use libseal_sgxsim::cost::CostModel;
use libseal_tlsx::attest::{AttestationExtension, AttestationPolicy, EXT_SGX_QUOTE};
use libseal_tlsx::cert::CertificateAuthority;
use libseal_tlsx::ssl::{Role, Ssl, SslConfig};
use libseal_tlsx::{AttestationError, TlsError};

fn issuer() -> Arc<IdentityIssuer> {
    Arc::new(IdentityIssuer::from_seeds("RA-CA", &[0x51; 32], &[0x52; 32]))
}

fn attested_libseal(issuer: &Arc<IdentityIssuer>, audited: bool) -> Arc<LibSeal> {
    let mut builder = LibSealConfig::attested(Arc::clone(issuer), "svc.test")
        .cost_model(CostModel::free())
        .check_interval(0);
    if audited {
        builder = builder.ssm(Arc::new(GitModule));
    }
    LibSeal::new(builder.build()).unwrap()
}

fn client_cfg(
    roots: Vec<libseal_crypto::ed25519::VerifyingKey>,
    policy: Option<Arc<AttestationPolicy>>,
) -> Arc<SslConfig> {
    Arc::new(SslConfig {
        role: Role::Client,
        cert: None,
        key: None,
        ca_roots: roots,
        verify_peer: true,
        expected_subject: Some("svc.test".into()),
        attestation: policy,
    })
}

/// Drives the handshake between an outside client and a LibSeal
/// session until it completes or the client fails.
fn handshake_with(client: &mut Ssl, ls: &LibSeal, sid: u64) -> Result<(), TlsError> {
    client.do_handshake()?;
    for _ in 0..10 {
        let out = client.take_output();
        if !out.is_empty() {
            ls.provide_input(0, sid, &out).unwrap();
        }
        let _ = ls.do_handshake(0, sid);
        let back = ls.take_output(0, sid).unwrap();
        if !back.is_empty() {
            client.provide_input(&back);
            client.do_handshake()?;
        }
        if client.is_established() {
            let fin = client.take_output();
            if !fin.is_empty() {
                ls.provide_input(0, sid, &fin).unwrap();
                let _ = ls.do_handshake(0, sid);
            }
            return Ok(());
        }
    }
    panic!("handshake neither completed nor failed");
}

fn counter(reason: &str) -> u64 {
    libseal_telemetry::counter(&format!("tlsx_verify_failures_total_{reason}")).get()
}

#[test]
fn attested_handshake_completes_under_pinned_policy() {
    let issuer = issuer();
    let ls = attested_libseal(&issuer, true);

    // The minted certificate carries the quote and satisfies the
    // pinned policy on its own.
    let cert = ls.certificate();
    assert!(cert.extension(EXT_SGX_QUOTE).is_some());
    let policy = issuer.policy_for(vec![ls.measurement()]);
    policy
        .verify(cert, libseal_tlsx::attest::unix_now_ms())
        .unwrap();

    // And a pinned client completes the handshake against it.
    let sid = ls.new_session(0).unwrap();
    let cfg = client_cfg(vec![issuer.ca_root()], Some(Arc::new(policy)));
    let mut client = Ssl::new(cfg, [3u8; 64]);
    handshake_with(&mut client, &ls, sid).unwrap();
    assert!(client.is_established());
}

#[test]
fn wrong_measurement_rejected_in_handshake() {
    let issuer = issuer();
    let git = attested_libseal(&issuer, true);
    // Same issuer, different code: the Dropbox SSM changes MRENCLAVE.
    let dropbox = LibSeal::new(
        LibSealConfig::attested(Arc::clone(&issuer), "svc.test")
            .cost_model(CostModel::free())
            .check_interval(0)
            .ssm(Arc::new(DropboxModule))
            .build(),
    )
    .unwrap();
    assert_ne!(git.measurement(), dropbox.measurement());

    let before = counter("attestation_wrong_measurement");
    let policy = Arc::new(issuer.policy_for(vec![git.measurement()]));
    let sid = dropbox.new_session(0).unwrap();
    let mut client = Ssl::new(client_cfg(vec![issuer.ca_root()], Some(policy)), [3u8; 64]);
    let err = handshake_with(&mut client, &dropbox, sid).unwrap_err();
    assert_eq!(
        err,
        TlsError::Attestation(AttestationError::WrongMeasurement)
    );
    assert!(counter("attestation_wrong_measurement") > before);
}

#[test]
fn wrong_signer_rejected_in_handshake() {
    let issuer = issuer();
    let ls = attested_libseal(&issuer, true);
    let before = counter("attestation_wrong_signer");
    let policy = Arc::new(
        issuer
            .policy_for(vec![ls.measurement()])
            .signers(vec![[0xEE; 32]]),
    );
    let sid = ls.new_session(0).unwrap();
    let mut client = Ssl::new(client_cfg(vec![issuer.ca_root()], Some(policy)), [3u8; 64]);
    let err = handshake_with(&mut client, &ls, sid).unwrap_err();
    assert_eq!(err, TlsError::Attestation(AttestationError::WrongSigner));
    assert!(counter("attestation_wrong_signer") > before);
}

#[test]
fn stale_quote_rejected_in_handshake() {
    let issuer = issuer();
    let ls = attested_libseal(&issuer, true);
    let before = counter("attestation_stale_quote");
    // A zero TTL makes the boot-time quote stale by handshake time.
    let policy = Arc::new(
        issuer.policy_with_ttl(vec![ls.measurement()], Duration::ZERO),
    );
    std::thread::sleep(Duration::from_millis(20));
    let sid = ls.new_session(0).unwrap();
    let mut client = Ssl::new(client_cfg(vec![issuer.ca_root()], Some(policy)), [3u8; 64]);
    let err = handshake_with(&mut client, &ls, sid).unwrap_err();
    assert_eq!(err, TlsError::Attestation(AttestationError::StaleQuote));
    assert!(counter("attestation_stale_quote") > before);
}

#[test]
fn missing_quote_rejected_in_handshake() {
    let issuer = issuer();
    // A conventional (non-attested) identity under the same CA: valid
    // cert, no quote.
    let ca = CertificateAuthority::new("RA-CA", &[0x51; 32]);
    let (key, cert) = ca.issue_identity("svc.test", &[7u8; 32]).unwrap();
    let ls = LibSeal::new(
        LibSealConfig::builder(cert, key)
            .cost_model(CostModel::free())
            .check_interval(0)
            .ssm(Arc::new(GitModule))
            .build(),
    )
    .unwrap();

    let before = counter("attestation_missing_quote");
    let policy = Arc::new(issuer.policy_for(vec![ls.measurement()]));
    let sid = ls.new_session(0).unwrap();
    let mut client = Ssl::new(client_cfg(vec![issuer.ca_root()], Some(policy)), [3u8; 64]);
    let err = handshake_with(&mut client, &ls, sid).unwrap_err();
    assert_eq!(err, TlsError::Attestation(AttestationError::MissingQuote));
    assert!(counter("attestation_missing_quote") > before);
}

#[test]
fn untrusted_quoting_root_rejected_in_handshake() {
    let issuer = issuer();
    let rogue = Arc::new(IdentityIssuer::from_seeds("RA-CA", &[0x51; 32], &[0x99; 32]));
    let ls = attested_libseal(&rogue, true);

    let before = counter("attestation_untrusted_root");
    // Client trusts the genuine quoting root only.
    let policy = Arc::new(issuer.policy_for(vec![ls.measurement()]));
    let sid = ls.new_session(0).unwrap();
    let mut client = Ssl::new(client_cfg(vec![rogue.ca_root()], Some(policy)), [3u8; 64]);
    let err = handshake_with(&mut client, &ls, sid).unwrap_err();
    assert_eq!(err, TlsError::Attestation(AttestationError::UntrustedRoot));
    assert!(counter("attestation_untrusted_root") > before);
}

#[test]
fn tampered_report_data_rejected_in_handshake() {
    let issuer = issuer();
    let ls = attested_libseal(&issuer, true);

    // Forge a certificate whose quote commits to a DIFFERENT key than
    // the one the server actually presents: quote for key B, cert for
    // key A. The CA/CertVerify checks pass; attestation must not.
    let ca = CertificateAuthority::new("RA-CA", &[0x51; 32]);
    let qe = libseal_sgxsim::attest::QuotingEnclave::new(&[0x52; 32]);
    let key_a = libseal_crypto::ed25519::SigningKey::from_seed(&[0xA1; 32]);
    let key_b = libseal_crypto::ed25519::SigningKey::from_seed(&[0xB2; 32]);
    let mut report = [0u8; 64];
    report[..32].copy_from_slice(&libseal_crypto::sha2::Sha256::digest(
        key_b.verifying_key().as_bytes(),
    ));
    let quote = qe.quote(ls.enclave().services(), &report);
    let forged = ca
        .issue_with_extensions(
            "svc.test",
            key_a.verifying_key().as_bytes(),
            vec![AttestationExtension::to_extension(&quote)],
        )
        .unwrap();

    let before = counter("attestation_report_data_mismatch");
    let policy = Arc::new(issuer.policy_for(vec![ls.measurement()]));
    let mut server = Ssl::new(SslConfig::server(forged, key_a), [5u8; 64]);
    let mut client = Ssl::new(client_cfg(vec![issuer.ca_root()], Some(policy)), [3u8; 64]);
    client.do_handshake().unwrap();
    let mut err = None;
    for _ in 0..10 {
        let out = client.take_output();
        if !out.is_empty() {
            server.provide_input(&out);
            let _ = server.do_handshake();
        }
        let back = server.take_output();
        if !back.is_empty() {
            client.provide_input(&back);
            if let Err(e) = client.do_handshake() {
                err = Some(e);
                break;
            }
        }
    }
    assert_eq!(
        err,
        Some(TlsError::Attestation(AttestationError::ReportDataMismatch))
    );
    assert!(counter("attestation_report_data_mismatch") > before);
}

#[test]
fn trust_self_accepts_any_measurement() {
    let issuer = issuer();
    let ls = attested_libseal(&issuer, true);
    let policy = Arc::new(AttestationPolicy::trust_self(issuer.quoting_root()));
    let sid = ls.new_session(0).unwrap();
    let mut client = Ssl::new(client_cfg(vec![issuer.ca_root()], Some(policy)), [3u8; 64]);
    handshake_with(&mut client, &ls, sid).unwrap();
    assert!(client.is_established());
}

#[test]
fn non_attesting_clients_interoperate_with_attested_servers() {
    // Back-compat both ways: the quote extension is non-critical, so a
    // client without a policy connects to an attested server fine.
    let issuer = issuer();
    let ls = attested_libseal(&issuer, true);
    let sid = ls.new_session(0).unwrap();
    let mut client = Ssl::new(client_cfg(vec![issuer.ca_root()], None), [3u8; 64]);
    handshake_with(&mut client, &ls, sid).unwrap();
    assert!(client.is_established());

    // And certificates without extensions still round-trip the wire.
    let ca = CertificateAuthority::new("Plain", &[9u8; 32]);
    let (_, plain) = ca.issue_identity("plain.test", &[8u8; 32]).unwrap();
    let decoded = libseal_tlsx::cert::Certificate::decode(&plain.encode()).unwrap();
    assert_eq!(decoded, plain);
    assert!(decoded.extensions.is_empty());
}

#[test]
fn sharded_plane_shards_each_present_valid_quotes() {
    let issuer = issuer();
    let plane = LibSealConfig::attested(Arc::clone(&issuer), "svc.test")
        .cost_model(CostModel::free())
        .check_interval(0)
        .ssm(Arc::new(GitModule))
        .shards(3)
        .build_plane()
        .unwrap();

    // All shards run the same code: one pinned measurement covers the
    // fleet, yet every shard minted its own key and quote.
    let measurements = plane.measurements();
    assert_eq!(measurements.len(), 1);
    let certs = plane.certificates();
    assert_eq!(certs.len(), 3);
    let policy = issuer.policy_for(measurements);
    let now = libseal_tlsx::attest::unix_now_ms();
    let mut pubkeys: Vec<[u8; 32]> = Vec::new();
    for cert in &certs {
        policy.verify(cert, now).unwrap();
        assert_eq!(cert.subject, "svc.test");
        pubkeys.push(cert.pubkey);
    }
    pubkeys.sort_unstable();
    pubkeys.dedup();
    assert_eq!(pubkeys.len(), 3, "shards must not share a private key");

    // A pinned client completes a handshake routed through the plane.
    let sid = plane.open_session(0, 42).unwrap();
    let cfg = client_cfg(vec![issuer.ca_root()], Some(Arc::new(issuer.policy_for(plane.measurements()))));
    let mut client = Ssl::new(cfg, [3u8; 64]);
    client.do_handshake().unwrap();
    for _ in 0..10 {
        let out = client.take_output();
        if !out.is_empty() {
            plane.provide_input(0, sid, &out).unwrap();
        }
        let _ = plane.do_handshake(0, sid);
        let back = plane.take_output(0, sid).unwrap();
        if !back.is_empty() {
            client.provide_input(&back);
            client.do_handshake().unwrap();
        }
        if client.is_established() {
            break;
        }
    }
    assert!(client.is_established());
}

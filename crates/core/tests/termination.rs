//! End-to-end tests of the LibSEAL TLS termination shim: a real STLS
//! client talks to a service that uses LibSEAL as its TLS library, and
//! the audit log observes everything (Fig. 1 flow).

use std::sync::Arc;

use libseal::ssm::git::ZERO_CID;
use libseal::{GitModule, LibSeal, LibSealConfig, LogBacking};
use libseal_httpx::http::{parse_response, Request, Response};
use libseal_sgxsim::cost::CostModel;
use libseal_tlsx::cert::CertificateAuthority;
use libseal_tlsx::ssl::{ReadOutcome, Ssl, SslConfig};

struct TestRig {
    ls: Arc<LibSeal>,
    client: Ssl,
    sid: u64,
}

fn rig(audited: bool) -> TestRig {
    let ca = CertificateAuthority::new("CA", &[1u8; 32]);
    let (key, cert) = ca.issue_identity("svc.test", &[2u8; 32]).unwrap();
    let mut builder = LibSealConfig::builder(cert, key)
        .cost_model(CostModel::free())
        .backing(LogBacking::Memory)
        .check_interval(0); // explicit checks in tests
    if audited {
        builder = builder.ssm(Arc::new(GitModule));
    }
    let ls = LibSeal::new(builder.build()).unwrap();

    let sid = ls.new_session(0).unwrap();
    let mut client = Ssl::new(SslConfig::client(vec![ca.root_key()]), [3u8; 64]);
    client.do_handshake().unwrap();
    // Pump the handshake both ways until established.
    for _ in 0..10 {
        let to_server = client.take_output();
        if !to_server.is_empty() {
            ls.provide_input(0, sid, &to_server).unwrap();
        }
        let _ = ls.do_handshake(0, sid);
        let to_client = ls.take_output(0, sid).unwrap();
        if !to_client.is_empty() {
            client.provide_input(&to_client);
            let _ = client.do_handshake();
        }
        if client.is_established() {
            break;
        }
    }
    // Flush the client's final Finished to the server.
    let fin = client.take_output();
    if !fin.is_empty() {
        ls.provide_input(0, sid, &fin).unwrap();
        let _ = ls.do_handshake(0, sid);
    }
    assert!(client.is_established());
    TestRig { ls, client, sid }
}

/// Client sends `req`; the "service" (this function) echoes `rsp`
/// through LibSEAL; returns the decrypted response seen by the client.
fn roundtrip(rig: &mut TestRig, req: &Request, rsp: &Response) -> Response {
    rig.client.ssl_write(&req.to_bytes()).unwrap();
    let wire = rig.client.take_output();
    rig.ls.provide_input(0, rig.sid, &wire).unwrap();

    // The service reads the request plaintext...
    let mut req_seen = Vec::new();
    loop {
        match rig.ls.ssl_read(0, rig.sid).unwrap() {
            ReadOutcome::Data(d) => {
                req_seen.extend_from_slice(&d);
                if libseal_httpx::http::parse_request(&req_seen).is_ok() {
                    break;
                }
            }
            ReadOutcome::WantRead => break,
            ReadOutcome::Closed => panic!("closed"),
        }
    }
    // ...and writes its response.
    rig.ls.ssl_write(0, rig.sid, &rsp.to_bytes()).unwrap();
    let wire = rig.ls.take_output(0, rig.sid).unwrap();
    rig.client.provide_input(&wire);
    let mut rsp_bytes = Vec::new();
    loop {
        match rig.client.ssl_read().unwrap() {
            ReadOutcome::Data(d) => {
                rsp_bytes.extend_from_slice(&d);
                if let Ok((r, _)) = parse_response(&rsp_bytes) {
                    return r;
                }
            }
            ReadOutcome::WantRead => {
                panic!(
                    "response incomplete: {}",
                    String::from_utf8_lossy(&rsp_bytes)
                )
            }
            ReadOutcome::Closed => panic!("closed"),
        }
    }
}

fn push(rig: &mut TestRig, repo: &str, lines: &str) {
    let req = Request::new(
        "POST",
        &format!("/repo/{repo}/git-receive-pack"),
        lines.as_bytes().to_vec(),
    );
    let rsp = Response::new(200, b"ok\n".to_vec());
    roundtrip(rig, &req, &rsp);
}

fn fetch(rig: &mut TestRig, repo: &str, advert: &str, check: bool) -> Response {
    let mut req = Request::new(
        "GET",
        &format!("/repo/{repo}/info/refs?service=git-upload-pack"),
        Vec::new(),
    );
    if check {
        req.headers.insert("Libseal-Check", "1");
    }
    let rsp = Response::new(200, advert.as_bytes().to_vec());
    roundtrip(rig, &req, &rsp)
}

#[test]
fn request_response_flow_is_logged() {
    let mut rig = rig(true);
    push(&mut rig, "proj", "0 c1 refs/heads/main\n");
    fetch(&mut rig, "proj", "c1 refs/heads/main\n", false);
    let (entries, _, _) = rig.ls.log_stats(0).unwrap();
    assert_eq!(entries, 2, "one update + one advertisement");
    rig.ls.verify_log(0).unwrap();
}

#[test]
fn clean_history_checks_ok_in_band() {
    let mut rig = rig(true);
    push(&mut rig, "proj", "0 c1 refs/heads/main\n");
    let rsp = fetch(&mut rig, "proj", "c1 refs/heads/main\n", true);
    assert_eq!(rsp.headers.get("Libseal-Check-Result"), Some("ok"));
}

#[test]
fn rollback_attack_reported_in_band() {
    let mut rig = rig(true);
    push(&mut rig, "proj", "0 c1 refs/heads/main\n");
    push(&mut rig, "proj", "c1 c2 refs/heads/main\n");
    // The service advertises the STALE commit.
    let rsp = fetch(&mut rig, "proj", "c1 refs/heads/main\n", true);
    let header = rsp.headers.get("Libseal-Check-Result").unwrap();
    assert!(
        header.contains("git-soundness"),
        "expected soundness violation, got {header}"
    );
}

#[test]
fn reference_deletion_reported() {
    let mut rig = rig(true);
    push(
        &mut rig,
        "proj",
        "0 c1 refs/heads/main\n0 d1 refs/heads/dev\n",
    );
    let rsp = fetch(&mut rig, "proj", "c1 refs/heads/main\n", true);
    let header = rsp.headers.get("Libseal-Check-Result").unwrap();
    assert!(header.contains("git-completeness"), "{header}");
}

#[test]
fn legitimate_deletion_not_reported() {
    let mut rig = rig(true);
    push(
        &mut rig,
        "proj",
        "0 c1 refs/heads/main\n0 d1 refs/heads/dev\n",
    );
    push(&mut rig, "proj", &format!("d1 {ZERO_CID} refs/heads/dev\n"));
    let rsp = fetch(&mut rig, "proj", "c1 refs/heads/main\n", true);
    assert_eq!(rsp.headers.get("Libseal-Check-Result"), Some("ok"));
}

#[test]
fn unaudited_instance_passes_data_through() {
    let mut rig = rig(false);
    let req = Request::new("GET", "/anything", Vec::new());
    let rsp = Response::new(200, b"payload".to_vec());
    let seen = roundtrip(&mut rig, &req, &rsp);
    assert_eq!(seen.body, b"payload");
    assert!(rig.ls.check_now(0).is_err(), "auditing disabled");
}

#[test]
fn explicit_check_and_trim() {
    let mut rig = rig(true);
    for i in 0..5 {
        push(&mut rig, "proj", &format!("x c{i} refs/heads/main\n"));
    }
    fetch(&mut rig, "proj", "c4 refs/heads/main\n", false);
    let outcome = rig.ls.check_now(0).unwrap();
    assert_eq!(outcome.total_violations(), 0);
    let (before, _, _) = rig.ls.log_stats(0).unwrap();
    rig.ls.trim_now(0).unwrap();
    let (after, _, _) = rig.ls.log_stats(0).unwrap();
    assert!(after < before, "{after} !< {before}");
    rig.ls.verify_log(0).unwrap();
}

#[test]
fn tampering_with_log_detected() {
    let mut rig = rig(true);
    push(&mut rig, "proj", "0 c1 refs/heads/main\n");
    rig.ls.verify_log(0).unwrap();
    // The provider edits the audit data directly (bypassing append).
    rig.ls
        .with_log(0, |log| {
            log.db_mut()
                .execute("UPDATE updates SET cid = 'FORGED'")
                .unwrap();
        })
        .unwrap();
    assert!(rig.ls.verify_log(0).is_err());
}

#[test]
fn deleting_log_rows_detected() {
    let mut rig = rig(true);
    push(&mut rig, "proj", "0 c1 refs/heads/main\n");
    push(&mut rig, "proj", "c1 c2 refs/heads/main\n");
    rig.ls
        .with_log(0, |log| {
            log.db_mut()
                .execute("DELETE FROM updates WHERE cid = 'c1'")
                .unwrap();
        })
        .unwrap();
    assert!(rig.ls.verify_log(0).is_err());
}

#[test]
fn ex_data_lives_outside_without_transitions() {
    let rig = rig(true);
    let before = rig.ls.stats().ecalls;
    rig.ls.set_ex_data(rig.sid, 7, b"request context".to_vec());
    assert_eq!(rig.ls.get_ex_data(rig.sid, 7).unwrap(), b"request context");
    let after = rig.ls.stats().ecalls;
    assert_eq!(before, after, "ex_data access must not transition");
}

#[test]
fn shadow_has_no_key_material() {
    let rig = rig(true);
    let shadow = rig.ls.shadow(rig.sid).unwrap();
    assert!(shadow.established);
    // The shadow type has no fields that could carry keys; assert its
    // contents are exactly handshake status + ex_data.
    assert!(shadow.ex_data.is_empty());
    let debug = format!("{shadow:?}");
    assert!(!debug.contains("key"), "shadow leaks: {debug}");
}

#[test]
fn persistent_log_survives_restart_and_verifies() {
    let dir = plat::tmp::TempPath::new("libseal-e2e", "log");
    let ca = CertificateAuthority::new("CA", &[1u8; 32]);
    let (key, cert) = ca.issue_identity("svc.test", &[2u8; 32]).unwrap();
    {
        let cfg = LibSealConfig::builder(cert.clone(), key.clone())
            .ssm(Arc::new(GitModule))
            .cost_model(CostModel::free())
            .backing(LogBacking::Disk(dir.to_path_buf()))
            .check_interval(0)
            .build();
        let ls = LibSeal::new(cfg).unwrap();
        ls.with_log(0, |log| {
            let t = log.next_time() as i64;
            log.append(
                "updates",
                &[
                    libseal_sealdb::Value::Integer(t),
                    libseal_sealdb::Value::Text("r".into()),
                    libseal_sealdb::Value::Text("main".into()),
                    libseal_sealdb::Value::Text("c1".into()),
                    libseal_sealdb::Value::Text("update".into()),
                ],
            )
            .unwrap();
        })
        .unwrap();
        ls.verify_log(0).unwrap();
    }
    // "Restart": open a new instance over the same sealed journal.
    {
        let cfg = LibSealConfig::builder(cert, key)
            .ssm(Arc::new(GitModule))
            .cost_model(CostModel::free())
            .backing(LogBacking::Disk(dir.to_path_buf()))
            .check_interval(0)
            .build();
        let ls = LibSeal::new(cfg).unwrap();
        let (entries, _, _) = ls.log_stats(0).unwrap();
        assert_eq!(entries, 1);
        ls.verify_log(0).unwrap();
    }
    // The sealed journal on disk is not plaintext.
    let raw = std::fs::read(&dir).unwrap();
    let as_text = String::from_utf8_lossy(&raw);
    assert!(!as_text.contains("INSERT"), "journal leaked plaintext SQL");
    assert!(!as_text.contains("main"), "journal leaked data");
}

#[test]
fn secure_callback_fires_via_ocall() {
    use std::sync::atomic::{AtomicU32, Ordering};
    let ca = CertificateAuthority::new("CA", &[1u8; 32]);
    let (key, cert) = ca.issue_identity("svc.test", &[2u8; 32]).unwrap();
    let cfg = LibSealConfig::builder(cert, key)
        .ssm(Arc::new(GitModule))
        .cost_model(CostModel::free())
        .build();
    let ls = LibSeal::new(cfg).unwrap();

    let hits = Arc::new(AtomicU32::new(0));
    let h = Arc::clone(&hits);
    ls.set_info_callback(
        0,
        Arc::new(move |_code, _arg| {
            h.fetch_add(1, Ordering::SeqCst);
        }),
    )
    .unwrap();

    let sid = ls.new_session(0).unwrap();
    let mut client = Ssl::new(SslConfig::client(vec![ca.root_key()]), [3u8; 64]);
    client.do_handshake().unwrap();
    for _ in 0..10 {
        let out = client.take_output();
        if !out.is_empty() {
            ls.provide_input(0, sid, &out).unwrap();
        }
        let _ = ls.do_handshake(0, sid);
        let back = ls.take_output(0, sid).unwrap();
        if !back.is_empty() {
            client.provide_input(&back);
            let _ = client.do_handshake();
        }
        if client.is_established() {
            break;
        }
    }
    let fin = client.take_output();
    if !fin.is_empty() {
        ls.provide_input(0, sid, &fin).unwrap();
        let _ = ls.do_handshake(0, sid);
    }
    assert!(hits.load(Ordering::SeqCst) >= 1, "callback never fired");
    // The callback ran through the ocall accounting path.
    let snap = ls.stats();
    assert!(snap.by_name.contains_key("info_callback"));
}

#[test]
fn async_runtime_serves_sessions() {
    use libseal_lthread::{RuntimeConfig, WaitMode};
    let ca = CertificateAuthority::new("CA", &[1u8; 32]);
    let (key, cert) = ca.issue_identity("svc.test", &[2u8; 32]).unwrap();
    let cfg = LibSealConfig::builder(cert, key)
        .ssm(Arc::new(GitModule))
        .cost_model(CostModel::free())
        .build();
    let ls = LibSeal::with_async(
        cfg,
        RuntimeConfig {
            sgx_threads: 2,
            lthreads_per_thread: 4,
            slots: 2,
            stack_size: 256 * 1024,
            wait_mode: WaitMode::BusyWait,
        },
    )
    .unwrap();

    let sid = ls.new_session(0).unwrap();
    let mut client = Ssl::new(SslConfig::client(vec![ca.root_key()]), [3u8; 64]);
    client.do_handshake().unwrap();
    for _ in 0..10 {
        let out = client.take_output();
        if !out.is_empty() {
            ls.provide_input(0, sid, &out).unwrap();
        }
        let _ = ls.do_handshake(0, sid);
        let back = ls.take_output(0, sid).unwrap();
        if !back.is_empty() {
            client.provide_input(&back);
            let _ = client.do_handshake();
        }
        if client.is_established() {
            break;
        }
    }
    assert!(client.is_established());
    let snap = ls.stats();
    assert!(snap.async_ecalls > 0);
    assert_eq!(snap.ecalls, 0, "async mode must not take sync transitions");
}

#[test]
fn client_certificates_identify_users() {
    // §6.3 "Impersonating clients": with TLS client authentication the
    // enclave knows WHO sent each request; a provider cannot fabricate
    // client actions without a client key.
    let ca = CertificateAuthority::new("CA", &[1u8; 32]);
    let (skey, scert) = ca.issue_identity("svc.test", &[2u8; 32]).unwrap();
    let (ckey, ccert) = ca.issue_identity("alice", &[5u8; 32]).unwrap();
    let cfg = LibSealConfig::builder(scert, skey)
        .ssm(Arc::new(GitModule))
        .cost_model(CostModel::free())
        .verify_clients(true)
        .ca_roots(vec![ca.root_key()])
        .build();
    let ls = LibSeal::new(cfg).unwrap();
    let sid = ls.new_session(0).unwrap();

    let client_cfg = Arc::new(libseal_tlsx::ssl::SslConfig {
        role: libseal_tlsx::ssl::Role::Client,
        cert: Some(ccert),
        key: Some(ckey),
        ca_roots: vec![ca.root_key()],
        verify_peer: true,
        expected_subject: None,
        attestation: None,
    });
    let mut client = Ssl::new(client_cfg, [3u8; 64]);
    client.do_handshake().unwrap();
    for _ in 0..10 {
        let out = client.take_output();
        if !out.is_empty() {
            ls.provide_input(0, sid, &out).unwrap();
        }
        let _ = ls.do_handshake(0, sid);
        let back = ls.take_output(0, sid).unwrap();
        if !back.is_empty() {
            client.provide_input(&back);
            let _ = client.do_handshake();
        }
        if client.is_established() {
            break;
        }
    }
    let fin = client.take_output();
    if !fin.is_empty() {
        ls.provide_input(0, sid, &fin).unwrap();
        let _ = ls.do_handshake(0, sid);
    }
    assert!(client.is_established());

    // A client WITHOUT a certificate is rejected.
    let sid2 = ls.new_session(0).unwrap();
    let anon_cfg = libseal_tlsx::ssl::SslConfig::client(vec![ca.root_key()]);
    let mut anon = Ssl::new(anon_cfg, [4u8; 64]);
    anon.do_handshake().unwrap();
    let mut failed = false;
    for _ in 0..10 {
        let out = anon.take_output();
        if !out.is_empty() {
            ls.provide_input(0, sid2, &out).unwrap();
        }
        if ls.do_handshake(0, sid2).is_err() {
            failed = true;
            break;
        }
        let back = ls.take_output(0, sid2).unwrap();
        if !back.is_empty() {
            anon.provide_input(&back);
            if anon.do_handshake().is_err() {
                failed = true;
                break;
            }
        }
    }
    assert!(failed, "anonymous client must not complete the handshake");
}

#[test]
fn check_interval_triggers_automatically() {
    let ca = CertificateAuthority::new("CA", &[1u8; 32]);
    let (key, cert) = ca.issue_identity("svc.test", &[2u8; 32]).unwrap();
    let cfg = LibSealConfig::builder(cert, key)
        .ssm(Arc::new(GitModule))
        .cost_model(CostModel::free())
        .check_interval(3)
        .trim_with_check(true)
        .build();
    let ls = LibSeal::new(cfg).unwrap();
    let sid = ls.new_session(0).unwrap();
    let mut client = Ssl::new(
        libseal_tlsx::ssl::SslConfig::client(vec![ca.root_key()]),
        [3u8; 64],
    );
    client.do_handshake().unwrap();
    let mut rig = TestRig { ls, client, sid };
    // Complete the handshake using the same pump as rig().
    for _ in 0..10 {
        let out = rig.client.take_output();
        if !out.is_empty() {
            rig.ls.provide_input(0, rig.sid, &out).unwrap();
        }
        let _ = rig.ls.do_handshake(0, rig.sid);
        let back = rig.ls.take_output(0, rig.sid).unwrap();
        if !back.is_empty() {
            rig.client.provide_input(&back);
            let _ = rig.client.do_handshake();
        }
        if rig.client.is_established() {
            break;
        }
    }
    let fin = rig.client.take_output();
    if !fin.is_empty() {
        rig.ls.provide_input(0, rig.sid, &fin).unwrap();
        let _ = rig.ls.do_handshake(0, rig.sid);
    }

    // 9 pushes => 3 automatic check+trim rounds; only the latest update
    // per branch survives. Checks drain on the background verifier, so
    // barrier on lag == 0 before inspecting the log.
    for i in 0..9 {
        push(&mut rig, "proj", &format!("x c{i} refs/heads/main\n"));
    }
    rig.ls.verifier_barrier().unwrap();
    assert_eq!(rig.ls.verifier_lag(), 0);
    let (entries, _, _) = rig.ls.log_stats(0).unwrap();
    assert!(
        entries <= 3,
        "auto-trim should bound the log, got {entries}"
    );
    rig.ls.verify_log(0).unwrap();
}

#[test]
fn inline_checks_still_work_without_the_verifier() {
    // no_async_verify: due checks run on the request path, exactly the
    // pre-pool behaviour — no barrier needed before inspecting.
    let ca = CertificateAuthority::new("CA", &[1u8; 32]);
    let (key, cert) = ca.issue_identity("svc.test", &[2u8; 32]).unwrap();
    let cfg = LibSealConfig::builder(cert, key)
        .ssm(Arc::new(GitModule))
        .cost_model(CostModel::free())
        .check_interval(3)
        .trim_with_check(true)
        .no_async_verify()
        .build();
    let ls = LibSeal::new(cfg).unwrap();
    let sid = ls.new_session(0).unwrap();
    let mut client = Ssl::new(
        libseal_tlsx::ssl::SslConfig::client(vec![ca.root_key()]),
        [3u8; 64],
    );
    client.do_handshake().unwrap();
    let mut rig = TestRig { ls, client, sid };
    for _ in 0..10 {
        let out = rig.client.take_output();
        if !out.is_empty() {
            rig.ls.provide_input(0, rig.sid, &out).unwrap();
        }
        let _ = rig.ls.do_handshake(0, rig.sid);
        let back = rig.ls.take_output(0, rig.sid).unwrap();
        if !back.is_empty() {
            rig.client.provide_input(&back);
            let _ = rig.client.do_handshake();
        }
        if rig.client.is_established() {
            break;
        }
    }
    let fin = rig.client.take_output();
    if !fin.is_empty() {
        rig.ls.provide_input(0, rig.sid, &fin).unwrap();
        let _ = rig.ls.do_handshake(0, rig.sid);
    }
    for i in 0..9 {
        push(&mut rig, "proj", &format!("x c{i} refs/heads/main\n"));
    }
    assert_eq!(rig.ls.verifier_lag(), 0);
    let (entries, _, _) = rig.ls.log_stats(0).unwrap();
    assert!(
        entries <= 3,
        "inline auto-trim should bound the log, got {entries}"
    );
    // The lag gauge exists (at zero) even in inline mode once any
    // instance with a verifier has run in this process; either way the
    // barrier is a no-op here.
    rig.ls.verifier_barrier().unwrap();
    rig.ls.verify_log(0).unwrap();
}

#[test]
fn garbage_streams_cannot_exhaust_enclave_memory() {
    // A peer streaming a request that never completes (a huge declared
    // Content-Length) must hit the audit buffer cap, not grow enclave
    // memory forever (§6.3 interface hardening). Provably-malformed
    // bytes are dropped instead (see ssl_read), so the cap guards the
    // Incomplete-forever case. Use a small configured cap so the test
    // is fast.
    let ca = CertificateAuthority::new("CA", &[1u8; 32]);
    let (key, cert) = ca.issue_identity("svc.test", &[2u8; 32]).unwrap();
    let cfg = LibSealConfig::builder(cert, key)
        .ssm(Arc::new(GitModule))
        .cost_model(CostModel::free())
        .check_interval(0)
        .max_message_buffer(1024 * 1024)
        .build();
    let ls = LibSeal::new(cfg).unwrap();
    let sid = ls.new_session(0).unwrap();
    let mut client = Ssl::new(SslConfig::client(vec![ca.root_key()]), [3u8; 64]);
    client.do_handshake().unwrap();
    let mut rig = TestRig { ls, client, sid };
    for _ in 0..10 {
        let out = rig.client.take_output();
        if !out.is_empty() {
            rig.ls.provide_input(0, rig.sid, &out).unwrap();
        }
        let _ = rig.ls.do_handshake(0, rig.sid);
        let back = rig.ls.take_output(0, rig.sid).unwrap();
        if !back.is_empty() {
            rig.client.provide_input(&back);
            let _ = rig.client.do_handshake();
        }
        if rig.client.is_established() {
            break;
        }
    }
    let fin = rig.client.take_output();
    if !fin.is_empty() {
        rig.ls.provide_input(0, rig.sid, &fin).unwrap();
        let _ = rig.ls.do_handshake(0, rig.sid);
    }
    rig.client
        .ssl_write(b"POST /upload HTTP/1.1\r\nContent-Length: 99999999\r\n\r\n")
        .unwrap();
    let wire = rig.client.take_output();
    rig.ls.provide_input(0, rig.sid, &wire).unwrap();
    let _ = rig.ls.ssl_read(0, rig.sid);
    let junk = vec![b'#'; 256 * 1024];
    let mut rejected = false;
    for _ in 0..32 {
        rig.client.ssl_write(&junk).unwrap();
        let wire = rig.client.take_output();
        rig.ls.provide_input(0, rig.sid, &wire).unwrap();
        // Drain everything buffered, as a server loop would.
        loop {
            match rig.ls.ssl_read(0, rig.sid) {
                Ok(ReadOutcome::Data(_)) => {}
                Ok(_) => break,
                Err(e) => {
                    assert!(e.to_string().contains("buffer limit"), "{e}");
                    rejected = true;
                    break;
                }
            }
        }
        if rejected {
            break;
        }
    }
    assert!(rejected, "cap never enforced");
}

#[test]
fn malformed_response_is_forwarded_not_stalled() {
    // A service writing a non-HTTP response behind an audited instance
    // must not stall the client: the bytes pass through unaudited.
    let mut rig = rig(true);
    // Complete request first so pairing state is sane.
    rig.client
        .ssl_write(&Request::new("GET", "/weird", Vec::new()).to_bytes())
        .unwrap();
    let wire = rig.client.take_output();
    rig.ls.provide_input(0, rig.sid, &wire).unwrap();
    while let Ok(ReadOutcome::Data(_)) = rig.ls.ssl_read(0, rig.sid) {}

    // The "service" answers with garbage that can never parse as HTTP.
    rig.ls
        .ssl_write(0, rig.sid, b"TOTALLY-NOT-HTTP\r\n\r\nraw payload")
        .unwrap();
    let wire = rig.ls.take_output(0, rig.sid).unwrap();
    assert!(!wire.is_empty(), "malformed response must still be sent");
    rig.client.provide_input(&wire);
    match rig.client.ssl_read().unwrap() {
        ReadOutcome::Data(d) => {
            assert_eq!(d, b"TOTALLY-NOT-HTTP\r\n\r\nraw payload");
        }
        other => panic!("client stalled: {other:?}"),
    }
}

//! The batched TLS pump: many sessions progress through **one**
//! enclave transition per readiness sweep (`tls_batch`), the entry the
//! event-driven serve loops drain ready sockets through. These tests
//! drive LibSEAL exclusively via [`LibSeal::pump_batch`] +
//! [`LibSeal::ssl_write_take`] — no per-session provide_input /
//! do_handshake / ssl_read calls — and verify the audit pipeline and
//! the transition accounting underneath.

use std::sync::Arc;

use libseal::GitModule;
use libseal::{LibSeal, LibSealConfig, LogBacking, SessionInput};
use libseal_httpx::http::{parse_response, Request, Response};
use libseal_sgxsim::cost::CostModel;
use libseal_tlsx::cert::CertificateAuthority;
use libseal_tlsx::ssl::{ReadOutcome, Ssl, SslConfig};

struct Rig {
    ls: Arc<LibSeal>,
    clients: Vec<(u64, Ssl)>,
}

fn rig(n: usize, audited: bool) -> Rig {
    let ca = CertificateAuthority::new("CA", &[1u8; 32]);
    let (key, cert) = ca.issue_identity("svc.test", &[2u8; 32]).unwrap();
    let mut builder = LibSealConfig::builder(cert, key)
        .cost_model(CostModel::free())
        .backing(LogBacking::Memory)
        .check_interval(0);
    if audited {
        builder = builder.ssm(Arc::new(GitModule));
    }
    let ls = LibSeal::new(builder.build()).unwrap();
    let clients = (0..n)
        .map(|i| {
            let sid = ls.new_session(0).unwrap();
            let mut entropy = [0u8; 64];
            entropy[0] = 3 + i as u8;
            let mut c = Ssl::new(SslConfig::client(vec![ca.root_key()]), entropy);
            c.do_handshake().unwrap();
            (sid, c)
        })
        .collect();
    Rig { ls, clients }
}

/// One readiness sweep: gather each client's pending wire bytes, pump
/// the whole set in a single batch, feed the produced ciphertext back.
/// Returns the per-session plaintext drained by the pump.
fn sweep(rig: &mut Rig) -> Vec<(u64, Vec<u8>)> {
    let items: Vec<SessionInput> = rig
        .clients
        .iter_mut()
        .map(|(sid, c)| SessionInput {
            sid: *sid,
            input: c.take_output(),
        })
        .collect();
    let outcomes = rig.ls.pump_batch(0, items).unwrap();
    let mut data = Vec::new();
    for o in outcomes {
        assert!(o.error.is_none(), "session {}: {:?}", o.sid, o.error);
        if !o.output.is_empty() {
            let (_, c) = rig
                .clients
                .iter_mut()
                .find(|(sid, _)| *sid == o.sid)
                .unwrap();
            c.provide_input(&o.output);
            let _ = c.do_handshake();
        }
        data.push((o.sid, o.data));
    }
    data
}

fn establish(rig: &mut Rig) {
    for _ in 0..12 {
        sweep(rig);
        if rig.clients.iter().all(|(_, c)| c.is_established()) {
            break;
        }
    }
    assert!(rig.clients.iter().all(|(_, c)| c.is_established()));
    // Flush the clients' final Finished flights into the server.
    sweep(rig);
    for (sid, _) in &rig.clients {
        assert!(
            rig.ls.shadow(*sid).unwrap().established,
            "shadow of {sid} not established"
        );
    }
}

#[test]
fn batched_pump_serves_many_sessions_and_logs_pairs() {
    let mut rig = rig(4, true);
    establish(&mut rig);

    // Every client pushes a distinct update in the same sweep.
    for (i, (_, c)) in rig.clients.iter_mut().enumerate() {
        let req = Request::new(
            "POST",
            "/repo/proj/git-receive-pack",
            format!("0 c{i} refs/heads/b{i}\n").into_bytes(),
        );
        c.ssl_write(&req.to_bytes()).unwrap();
    }
    let drained = sweep(&mut rig);
    // The "service" answers each request through the combined
    // write+take entry and the client decrypts the response.
    for (sid, data) in drained {
        assert!(
            libseal_httpx::http::parse_request(&data).is_ok(),
            "pump did not surface a complete request"
        );
        let rsp = Response::new(200, b"ok\n".to_vec());
        let wire = rig.ls.ssl_write_take(0, sid, &rsp.to_bytes()).unwrap();
        assert!(!wire.is_empty(), "write+take produced no ciphertext");
        let (_, c) = rig.clients.iter_mut().find(|(s, _)| *s == sid).unwrap();
        c.provide_input(&wire);
        let mut seen = Vec::new();
        loop {
            match c.ssl_read().unwrap() {
                ReadOutcome::Data(d) => {
                    seen.extend_from_slice(&d);
                    if let Ok((r, _)) = parse_response(&seen) {
                        assert_eq!(r.status, 200);
                        break;
                    }
                }
                other => panic!("unexpected {other:?}"),
            }
        }
    }
    let (entries, _, _) = rig.ls.log_stats(0).unwrap();
    assert_eq!(entries, 4, "one audited pair per session");
    rig.ls.verify_log(0).unwrap();

    // The sweeps were priced as batched transitions: one ecall
    // carrying many sessions, visible in the sgxsim counters.
    let snap = rig.ls.stats();
    assert!(snap.batch_ecalls > 0, "no batched ecalls recorded");
    assert_eq!(
        snap.batch_items,
        snap.by_name["tls_batch"] * 4,
        "each sweep must carry all 4 sessions"
    );
}

#[test]
fn batching_amortises_transitions_across_sessions() {
    // Serving N sessions through sweeps must take far fewer enclave
    // transitions than N per-session call sequences would: the whole
    // point of draining ready sessions through one ecall (§4.3).
    let mut rig = rig(8, false);
    rig.ls.reset_stats();
    establish(&mut rig);
    let batched = rig.ls.stats();
    let sweeps = batched.by_name["tls_batch"];
    assert!(sweeps > 0);
    // Per-call serving of 8 handshakes takes ≥ 3 ecalls per session
    // per round (provide_input + do_handshake + take_output); the
    // batch path must beat one ecall per session per round.
    assert!(
        batched.ecalls < 8 * sweeps,
        "batched path took {} ecalls over {} sweeps for 8 sessions",
        batched.ecalls,
        sweeps
    );
    assert_eq!(batched.batch_items, 8 * sweeps);
}

#[test]
fn per_session_failures_do_not_poison_the_batch() {
    let mut rig = rig(2, false);
    establish(&mut rig);

    // A batch mixing two live sessions and one unknown sid: the bogus
    // entry reports its error, the real ones still progress.
    let mut items: Vec<SessionInput> = rig
        .clients
        .iter_mut()
        .map(|(sid, c)| {
            c.ssl_write(b"ping").unwrap();
            SessionInput {
                sid: *sid,
                input: c.take_output(),
            }
        })
        .collect();
    items.push(SessionInput {
        sid: 9_999,
        input: vec![0xde, 0xad],
    });
    let outcomes = rig.ls.pump_batch(0, items).unwrap();
    assert_eq!(outcomes.len(), 3);
    let bogus = outcomes.iter().find(|o| o.sid == 9_999).unwrap();
    assert!(bogus.error.is_some(), "unknown sid must surface an error");
    for o in outcomes.iter().filter(|o| o.sid != 9_999) {
        assert!(o.error.is_none());
        assert_eq!(o.data, b"ping", "live sessions must still be served");
    }
}

#[test]
fn close_notify_is_reported_and_shadowed() {
    let mut rig = rig(1, false);
    establish(&mut rig);
    let (sid, client) = &mut rig.clients[0];
    let sid = *sid;
    client.send_close();
    let outcomes = rig
        .ls
        .pump_batch(
            0,
            vec![SessionInput {
                sid,
                input: client.take_output(),
            }],
        )
        .unwrap();
    assert!(outcomes[0].closed, "close_notify must be reported");
    assert!(rig.ls.shadow(sid).unwrap().closed, "shadow must record it");
}

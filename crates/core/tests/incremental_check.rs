//! Randomized cross-check: the delta-maintained incremental checker
//! must agree with the full-scan reference on every invariant, for
//! arbitrary service histories.
//!
//! The full-scan path re-evaluates each invariant over the whole log
//! and is the semantic ground truth; the incremental path refreshes
//! only the partitions dirtied since the last check. These properties
//! drive random event sequences through both and assert the verdicts
//! are identical after every batch — including the hard case where a
//! late `recv_update` *clears* an earlier ownCloud `sent_update`
//! violation via the rescan rule (the one place a new row shrinks the
//! violation set of an old partition).

use libseal::log::{AuditLog, LogBacking, NoGuard};
use libseal::{Checker, DropboxModule, OwnCloudModule, ServiceModule};
use libseal_crypto::ed25519::SigningKey;
use libseal_sealdb::Value;
use plat::check::Gen;

fn text(s: impl Into<String>) -> Value {
    Value::Text(s.into())
}

fn open(m: &dyn ServiceModule) -> AuditLog {
    AuditLog::open(
        LogBacking::Memory,
        [0u8; 32],
        SigningKey::from_seed(&[1u8; 32]),
        Box::new(NoGuard),
        m.schema_sql(),
        m.tables(),
    )
    .expect("open audit log")
}

/// Asserts the incremental verdicts equal the full-scan reference,
/// invariant by invariant (counts and the violating rows themselves).
fn assert_agree(m: &dyn ServiceModule, log: &mut AuditLog, ctx: &str) {
    let inc = Checker::run_checks_incremental(m, log).expect("incremental check");
    let full = Checker::run_checks(m, log).expect("full-scan check");
    assert_eq!(
        inc.reports.len(),
        full.reports.len(),
        "{ctx}: report count diverged"
    );
    for (a, b) in inc.reports.iter().zip(full.reports.iter()) {
        assert_eq!(a.invariant, b.invariant, "{ctx}: invariant order diverged");
        assert_eq!(
            a.violations, b.violations,
            "{ctx}: incremental and full-scan disagree on {}",
            a.invariant
        );
    }
}

/// One random ownCloud document event. Pools are kept tiny so
/// collisions (matching doc/seq/content triples, stale snapshots) are
/// common: most of the invariant logic only fires on collisions.
fn owncloud_event(g: &mut Gen, log: &mut AuditLog) {
    let doc = format!("d{}", g.usize_in(0..2));
    let client = format!("c{}", g.usize_in(0..2));
    let seq = g.i64_in(1..4);
    let content = format!("v{}", g.usize_in(0..3));
    let t = log.next_time() as i64;
    let kind = *g.pick(&[
        "snapshot_save",
        "snapshot_sent",
        "sent_update",
        "recv_update",
        "join",
    ]);
    log.append(
        "docupdates",
        &[
            Value::Integer(t),
            text(doc),
            text(client),
            text(kind),
            Value::Integer(seq),
            text(content),
        ],
    )
    .expect("append docupdates");
}

/// One random Dropbox event: either a commit (occasionally a
/// deletion, size -1) or a list response carrying a random subset of
/// files with blocklists that may or may not match the latest commit.
fn dropbox_event(g: &mut Gen, log: &mut AuditLog) {
    let account = format!("a{}", g.usize_in(0..2));
    if g.bool() {
        let t = log.next_time() as i64;
        let deleted = g.usize_in(0..4) == 0;
        log.append(
            "commit_batch",
            &[
                Value::Integer(t),
                text(format!("f{}", g.usize_in(0..3))),
                text(format!("b{}", g.usize_in(0..3))),
                text(account),
                text("h0"),
                Value::Integer(if deleted { -1 } else { 1 }),
            ],
        )
        .expect("append commit");
    } else {
        // One list response: several rows sharing a single time.
        let t = log.next_time() as i64;
        for _ in 0..g.usize_in(0..3) {
            log.append(
                "list",
                &[
                    Value::Integer(t),
                    text(format!("f{}", g.usize_in(0..3))),
                    text(format!("b{}", g.usize_in(0..3))),
                    text(account.clone()),
                    text("h0"),
                    Value::Integer(1),
                ],
            )
            .expect("append list");
        }
    }
}

plat::prop! {
    #![cases(48)]

    fn incremental_matches_full_scan_on_random_owncloud_histories(g) {
        let m = OwnCloudModule;
        let mut log = open(&m);
        Checker::install(&m, &mut log).expect("install views");
        let batches = g.usize_in(3..8);
        for batch in 0..batches {
            for _ in 0..g.usize_in(1..6) {
                owncloud_event(g, &mut log);
            }
            assert_agree(&m, &mut log, &format!("owncloud batch {batch}"));
        }
    }

    fn incremental_matches_full_scan_on_random_dropbox_histories(g) {
        let m = DropboxModule;
        let mut log = open(&m);
        Checker::install(&m, &mut log).expect("install views");
        let batches = g.usize_in(3..8);
        for batch in 0..batches {
            for _ in 0..g.usize_in(1..6) {
                dropbox_event(g, &mut log);
            }
            assert_agree(&m, &mut log, &format!("dropbox batch {batch}"));
        }
    }
}

/// The rescan rule, end to end: a relayed update with no matching
/// received update is a violation; when the matching `recv_update`
/// arrives later, the rescan must re-dirty the old partition so the
/// incremental checker sees the violation *clear* — without it the
/// stale view would keep reporting a violation the full scan no
/// longer finds.
#[test]
fn late_recv_update_clears_an_earlier_violation_incrementally() {
    let m = OwnCloudModule;
    let mut log = open(&m);
    Checker::install(&m, &mut log).expect("install views");

    // A client joins at baseline 0, then gets relayed an update that
    // was (so far) never received from anyone.
    let t = log.next_time() as i64;
    log.append(
        "docupdates",
        &[
            Value::Integer(t),
            text("doc"),
            text("alice"),
            text("join"),
            Value::Integer(0),
            text(""),
        ],
    )
    .unwrap();
    let t = log.next_time() as i64;
    log.append(
        "docupdates",
        &[
            Value::Integer(t),
            text("doc"),
            text("alice"),
            text("sent_update"),
            Value::Integer(1),
            text("hello"),
        ],
    )
    .unwrap();

    let inc = Checker::run_checks_incremental(&m, &mut log).unwrap();
    let sound = inc
        .reports
        .iter()
        .find(|r| r.invariant == "owncloud-update-soundness")
        .expect("update-soundness report");
    assert_eq!(sound.violations, 1, "unmatched sent_update must violate");

    // The matching receive arrives later (out-of-order relay): the
    // violation must clear on the next incremental check.
    let t = log.next_time() as i64;
    log.append(
        "docupdates",
        &[
            Value::Integer(t),
            text("doc"),
            text("bob"),
            text("recv_update"),
            Value::Integer(1),
            text("hello"),
        ],
    )
    .unwrap();

    let inc = Checker::run_checks_incremental(&m, &mut log).unwrap();
    let sound = inc
        .reports
        .iter()
        .find(|r| r.invariant == "owncloud-update-soundness")
        .unwrap();
    assert_eq!(
        sound.violations, 0,
        "late recv_update must clear the violation"
    );
    assert_agree(&m, &mut log, "after clearing recv_update");
}

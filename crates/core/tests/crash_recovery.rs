//! Crash-recovery tests for the audit log: torn-tail salvage as a
//! *synced-prefix* guarantee, counter reconciliation (the legal
//! crash window vs. a rollback alarm), unsigned-tail roll-forward,
//! and degraded-quorum operation.
//!
//! Fault-injected tests open `plat::failpoint::scenario()` first so
//! they serialize on the global failpoint registry.

use libseal::log::{
    AuditLog, LogBacking, NoGuard, RecoveryReport, RollbackGuard, RoteGuard, SealingCodec,
};
use libseal::ssm::git::GIT_SOUNDNESS;
use libseal::{GitModule, LibSealError, ServiceModule};
use libseal_crypto::ed25519::SigningKey;
use libseal_rote::{Cluster, ClusterConfig, QuorumPolicy};
use libseal_sealdb::journal::SyncPolicy;
use libseal_sealdb::{Database, Value};
use plat::failpoint::{self, FaultSpec};
use plat::tmp::TempPath;

const SEAL_KEY: [u8; 32] = [7u8; 32];

fn open_log(backing: LogBacking, guard: Box<dyn RollbackGuard>) -> libseal::Result<AuditLog> {
    let ssm = GitModule;
    AuditLog::open(
        backing,
        SEAL_KEY,
        SigningKey::from_seed(&[1u8; 32]),
        guard,
        ssm.schema_sql(),
        ssm.tables(),
    )
}

fn append_one(log: &mut AuditLog, i: u64, commit: &str) {
    let t = log.next_time() as i64;
    log.append(
        "updates",
        &[
            Value::Integer(t),
            Value::Text("r".into()),
            Value::Text("main".into()),
            Value::Text(format!("{commit}{i:036x}")),
            Value::Text("update".into()),
        ],
    )
    .unwrap();
}

/// External persistent counter (the §5.1 rollback-protection service)
/// whose attested value the tests can set directly.
struct ExternalCounter(std::sync::atomic::AtomicU64);

impl ExternalCounter {
    fn boxed(v: u64) -> Box<ExternalCounter> {
        Box::new(ExternalCounter(std::sync::atomic::AtomicU64::new(v)))
    }
}

impl RollbackGuard for ExternalCounter {
    fn increment(&self) -> libseal::Result<u64> {
        Ok(self.0.fetch_add(1, std::sync::atomic::Ordering::SeqCst) + 1)
    }
    fn attested(&self) -> libseal::Result<u64> {
        Ok(self.0.load(std::sync::atomic::Ordering::SeqCst))
    }
}

plat::prop! {
    #![cases(2)]
    /// The synced-prefix guarantee: truncate the journal at EVERY byte
    /// offset and reopen. Recovery must (a) never drop an entry whose
    /// flush completed before the cut, (b) never surface more than the
    /// one entry that was mid-append at the cut, (c) leave a log whose
    /// chain and signed head verify, and (d) keep invariant queries
    /// runnable. Pure truncation is always a torn tail, never a fatal
    /// MAC failure, so every reopen must succeed.
    fn truncation_at_every_offset_recovers_a_synced_prefix(g) {
        let path = TempPath::new("libseal-prefix", "log");
        let appends = g.usize_in(2..5);
        let commit = g.lowercase(4..8);
        // boundaries[i] = journal size with exactly i entries durable.
        let mut boundaries = Vec::new();
        {
            let mut log =
                open_log(LogBacking::Disk(path.to_path_buf()), Box::new(NoGuard)).unwrap();
            boundaries.push((log.journal_size_bytes(), 0u64));
            for i in 0..appends {
                append_one(&mut log, i as u64, &commit);
                log.flush().unwrap();
                boundaries.push((log.journal_size_bytes(), (i + 1) as u64));
            }
        }
        let full = std::fs::read(&path).unwrap();
        assert_eq!(full.len() as u64, boundaries.last().unwrap().0);

        let cut_path = TempPath::new("libseal-prefix-cut", "log");
        for cut in 0..=full.len() {
            std::fs::write(&cut_path, &full[..cut]).unwrap();
            let expected = boundaries
                .iter()
                .rev()
                .find(|(size, _)| *size <= cut as u64)
                .map_or(0, |(_, entries)| *entries);
            let log = open_log(
                LogBacking::DiskNoSync(cut_path.to_path_buf()),
                Box::new(NoGuard),
            )
            .unwrap_or_else(|e| panic!("reopen failed at cut {cut}: {e}"));
            let got = log.entries();
            assert!(
                got >= expected,
                "cut {cut}: flushed entry lost ({got} < {expected})"
            );
            assert!(
                got <= expected + 1,
                "cut {cut}: recovered more than the in-flight append \
                 ({got} > {} )",
                expected + 1
            );
            log.verify()
                .unwrap_or_else(|e| panic!("verify failed at cut {cut}: {e}"));
            assert!(
                log.query(GIT_SOUNDNESS, &[]).is_ok(),
                "invariant query failed at cut {cut}"
            );
        }
    }
}

/// Truncation is salvage; *mutation* is tampering. A byte flipped
/// inside an early record (here: its nonce) must fail authentication
/// and abort the open, not be silently skipped.
#[test]
fn flipped_byte_mid_file_is_fatal() {
    let path = TempPath::new("libseal-flip", "log");
    {
        let mut log = open_log(LogBacking::Disk(path.to_path_buf()), Box::new(NoGuard)).unwrap();
        append_one(&mut log, 0, "aa");
        log.flush().unwrap();
    }
    let mut bytes = std::fs::read(&path).unwrap();
    bytes[10] ^= 0x40; // inside the first frame's nonce
    std::fs::write(&path, &bytes).unwrap();
    assert!(
        open_log(LogBacking::Disk(path.to_path_buf()), Box::new(NoGuard)).is_err(),
        "corrupted mid-file record must not replay"
    );
}

/// A counter one ahead of the durable log is the legal crash window
/// (§5.1: the increment lands before the signed head is durable); the
/// open succeeds, reports the window, and absorbs the wasted
/// increment so later recoveries see a consistent pair.
#[test]
fn counter_ahead_by_one_is_the_legal_crash_window() {
    let path = TempPath::new("libseal-window", "log");
    {
        let mut log = open_log(
            LogBacking::Disk(path.to_path_buf()),
            ExternalCounter::boxed(0),
        )
        .unwrap();
        for i in 0..3 {
            append_one(&mut log, i, "bb");
        }
        log.flush().unwrap();
        assert_eq!(log.counter(), 3);
    }
    // "Crashed" after the increment to 4 but before entry 4 was
    // signed: the external service attests 4, the log accounts for 3.
    let log = open_log(
        LogBacking::Disk(path.to_path_buf()),
        ExternalCounter::boxed(4),
    )
    .unwrap();
    let r = log.recovery_report();
    assert!(r.crash_window, "one-ahead counter is a legal crash state");
    assert_eq!(r.durable_counter, 3);
    assert_eq!(r.attested_counter, 4);
    assert_eq!(log.counter(), 4, "wasted increment absorbed into the head");
    log.verify().unwrap();
}

#[test]
fn counter_ahead_by_two_is_a_rollback_alarm() {
    let path = TempPath::new("libseal-rollback2", "log");
    {
        let mut log = open_log(
            LogBacking::Disk(path.to_path_buf()),
            ExternalCounter::boxed(0),
        )
        .unwrap();
        for i in 0..3 {
            append_one(&mut log, i, "cc");
        }
        log.flush().unwrap();
    }
    match open_log(
        LogBacking::Disk(path.to_path_buf()),
        ExternalCounter::boxed(5),
    ) {
        Err(LibSealError::Tampered(m)) => assert!(m.contains("rollback"), "{m}"),
        other => panic!("rollback not detected: {:?}", other.map(|_| ())),
    }
}

/// A signed head covering more entries than the chain holds means
/// chain rows were removed after signing — rollback by deletion, even
/// when the external counter agrees with the (tampered) head.
#[test]
fn log_behind_signed_head_is_a_rollback_alarm() {
    let path = TempPath::new("libseal-behind", "log");
    {
        let mut log = open_log(
            LogBacking::Disk(path.to_path_buf()),
            ExternalCounter::boxed(0),
        )
        .unwrap();
        for i in 0..3 {
            append_one(&mut log, i, "dd");
        }
        log.flush().unwrap();
    }
    // The provider edits the sealed journal offline: appends a DELETE
    // of the newest chain row (it cannot re-sign the head).
    {
        let mut db = Database::open(
            &path,
            Box::new(SealingCodec::new(SEAL_KEY)),
            SyncPolicy::Manual,
        )
        .unwrap();
        db.execute("DELETE FROM _libseal_chain WHERE seq = 3")
            .unwrap();
        db.sync_journal().unwrap();
    }
    match open_log(
        LogBacking::Disk(path.to_path_buf()),
        ExternalCounter::boxed(3),
    ) {
        Err(LibSealError::Tampered(m)) => assert!(m.contains("rollback"), "{m}"),
        other => panic!("rollback not detected: {:?}", other.map(|_| ())),
    }
}

/// A crash after the chain row is written but before the head is
/// signed leaves an authenticated-but-unsigned tail. Recovery rolls
/// it forward (re-signs) instead of discarding it.
#[test]
fn crash_before_sign_rolls_the_tail_forward() {
    let s = failpoint::scenario();
    let path = TempPath::new("libseal-rollfwd", "log");
    {
        let mut log = open_log(LogBacking::Disk(path.to_path_buf()), Box::new(NoGuard)).unwrap();
        append_one(&mut log, 0, "ee");
        append_one(&mut log, 1, "ee");
        log.flush().unwrap();
        s.set("core::log::append::sign", FaultSpec::crash());
        let t = log.next_time() as i64;
        assert!(log
            .append(
                "updates",
                &[
                    Value::Integer(t),
                    Value::Text("r".into()),
                    Value::Text("main".into()),
                    Value::Text(format!("{:040x}", 2)),
                    Value::Text("update".into()),
                ],
            )
            .is_err());
    }
    s.reset(); // restart
    let log = open_log(LogBacking::Disk(path.to_path_buf()), Box::new(NoGuard)).unwrap();
    assert_eq!(log.entries(), 3, "unsigned tail must be rolled forward");
    assert_eq!(log.recovery_report().rolled_forward, 1);
    log.verify().unwrap();
}

/// A crash after the service row is written but before the chain row
/// loses only the in-flight entry; the synced prefix and its head
/// survive, and invariant queries still run over the recovered state.
#[test]
fn crash_before_chain_insert_loses_only_the_inflight_entry() {
    let s = failpoint::scenario();
    let path = TempPath::new("libseal-nochain", "log");
    {
        let mut log = open_log(LogBacking::Disk(path.to_path_buf()), Box::new(NoGuard)).unwrap();
        append_one(&mut log, 0, "ff");
        append_one(&mut log, 1, "ff");
        log.flush().unwrap();
        s.set("core::log::append::chain", FaultSpec::crash());
        let t = log.next_time() as i64;
        assert!(log
            .append(
                "updates",
                &[
                    Value::Integer(t),
                    Value::Text("r".into()),
                    Value::Text("main".into()),
                    Value::Text(format!("{:040x}", 99)),
                    Value::Text("update".into()),
                ],
            )
            .is_err());
    }
    s.reset();
    let log = open_log(LogBacking::Disk(path.to_path_buf()), Box::new(NoGuard)).unwrap();
    assert_eq!(log.entries(), 2);
    log.verify().unwrap();
    assert!(log.query(GIT_SOUNDNESS, &[]).is_ok());
}

/// End-to-end degraded mode: with the ROTE quorum unreachable under
/// `DegradeAndAlarm`, the audit log keeps accepting entries (alarm
/// raised); when the network heals, the next append re-binds the
/// whole unbound prefix.
#[test]
fn degraded_quorum_keeps_the_log_available_and_rebinds() {
    let s = failpoint::scenario();
    let mut cfg = ClusterConfig::new(1);
    cfg.deadline = std::time::Duration::from_millis(200);
    cfg.retries = 0;
    cfg.backoff = std::time::Duration::from_millis(1);
    cfg.policy = QuorumPolicy::DegradeAndAlarm;
    let cluster = std::sync::Arc::new(Cluster::with_config(cfg, b"crash-recovery").unwrap());
    let mut log = open_log(
        LogBacking::Memory,
        Box::new(RoteGuard(std::sync::Arc::clone(&cluster))),
    )
    .unwrap();

    append_one(&mut log, 0, "gg");
    assert!(!cluster.is_degraded());

    // Partition: every node delivery is dropped.
    s.set("rote::node::deliver", FaultSpec::error());
    append_one(&mut log, 1, "gg");
    append_one(&mut log, 2, "gg");
    let st = cluster.stats();
    assert!(
        st.degraded,
        "quorum loss must raise the alarm, not stop the log"
    );
    assert_eq!(st.unbound, 2);

    // The partition heals; the next append re-binds entries 2..=4.
    s.unset("rote::node::deliver");
    append_one(&mut log, 3, "gg");
    let st = cluster.stats();
    assert!(!st.degraded);
    assert_eq!(st.rebinds, 1);
    assert_eq!(st.unbound, 0);
    log.verify().unwrap();
}

/// Every reopen advances the sealed nonce epoch, so records written
/// after a crash can never reuse a (epoch, counter) nonce prefix from
/// before it.
#[test]
fn restart_advances_the_sealed_epoch() {
    let path = TempPath::new("libseal-epoch", "log");
    let epoch_of = |log: &AuditLog| -> String {
        match log
            .query("SELECT v FROM _libseal_meta WHERE k = 'epoch'", &[])
            .unwrap()
            .scalar()
        {
            Some(Value::Text(t)) => t.clone(),
            other => panic!("missing epoch row: {other:?}"),
        }
    };
    {
        let mut log = open_log(LogBacking::Disk(path.to_path_buf()), Box::new(NoGuard)).unwrap();
        append_one(&mut log, 0, "hh");
        assert_eq!(epoch_of(&log), "1");
        log.flush().unwrap();
    }
    let log = open_log(LogBacking::Disk(path.to_path_buf()), Box::new(NoGuard)).unwrap();
    assert_eq!(epoch_of(&log), "2");
}

/// An open of a clean, signed log reports a quiet recovery: nothing
/// salvaged, nothing rolled forward, no crash window.
#[test]
fn clean_reopen_reports_quiet_recovery() {
    let path = TempPath::new("libseal-quiet", "log");
    {
        let mut log = open_log(
            LogBacking::Disk(path.to_path_buf()),
            ExternalCounter::boxed(0),
        )
        .unwrap();
        for i in 0..2 {
            append_one(&mut log, i, "ii");
        }
        log.flush().unwrap();
    }
    let log = open_log(
        LogBacking::Disk(path.to_path_buf()),
        ExternalCounter::boxed(2),
    )
    .unwrap();
    assert_eq!(
        log.recovery_report(),
        RecoveryReport {
            salvaged_bytes: 0,
            rolled_forward: 0,
            durable_counter: 2,
            attested_counter: 2,
            crash_window: false,
        }
    );
}

//! Epoch-checkpoint verification: property tests over synthetic
//! checkpoint histories (the verifier accepts iff epochs are
//! contiguous, coverage never shrinks, signatures verify and shard
//! clocks are monotone), plus end-to-end trials on a provisioned
//! [`ShardedPlane`] — tamper with one shard's rows, roll one shard
//! back, recover one shard from its journal — each asserting the
//! typed [`FleetVerifyError`] it must produce.

use std::collections::HashMap;
use std::sync::Arc;

use libseal::plane::{checkpoint_payload, verify_checkpoints, CheckpointRow};
use libseal::ssm::Invariant;
use libseal::{
    AuditLog, AuditPlane, FleetVerifyError, LibSealConfig, LibSealError, LogBacking,
    ServiceModule, ShardedPlane, TableSpec,
};
use libseal_crypto::ed25519::SigningKey;
use libseal_sealdb::Value;
use libseal_sgxsim::cost::CostModel;
use libseal_tlsx::cert::CertificateAuthority;
use plat::tmp::TempPath;

// ---------------------------------------------------------------
// Synthetic-history property tests
// ---------------------------------------------------------------

/// Deterministic PRNG (splitmix64) so every scenario is reproducible.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

fn signed_row(
    signer: &SigningKey,
    epoch: u64,
    shard: u32,
    seq: u64,
    clock: u64,
) -> CheckpointRow {
    let head = libseal_crypto::sha2::Sha256::digest(&[epoch as u8, shard as u8, clock as u8]);
    let sig = signer.sign(&checkpoint_payload(epoch, shard, seq, clock, &head));
    CheckpointRow {
        epoch,
        shard,
        seq,
        clock,
        head,
        sig,
    }
}

/// One random but well-formed history: `shards` shards over `epochs`
/// contiguous epochs with monotone clocks, and live tips at or past
/// the final checkpoint.
fn scenario(rng: &mut Rng) -> (Vec<CheckpointRow>, HashMap<u32, u64>, SigningKey) {
    let signer = SigningKey::from_seed(&[rng.next() as u8; 32]);
    let shards = 1 + rng.below(5) as u32;
    let epochs = 1 + rng.below(6);
    let mut clocks: Vec<u64> = (0..shards).map(|_| rng.below(4)).collect();
    let mut rows = Vec::new();
    for epoch in 1..=epochs {
        for shard in 0..shards {
            clocks[shard as usize] += rng.below(5);
            let clock = clocks[shard as usize];
            rows.push(signed_row(&signer, epoch, shard, clock, clock));
        }
    }
    let tips = (0..shards)
        .map(|s| (s, clocks[s as usize] + rng.below(3)))
        .collect();
    (rows, tips, signer)
}

#[test]
fn well_formed_histories_verify() {
    let mut rng = Rng(0xC0FFEE);
    for _ in 0..40 {
        let (rows, tips, signer) = scenario(&mut rng);
        verify_checkpoints(&rows, &tips, &signer.verifying_key())
            .expect("well-formed history must verify");
    }
}

#[test]
fn mutated_shard_head_is_a_bad_signature() {
    let mut rng = Rng(0xBEEF);
    for _ in 0..20 {
        let (mut rows, tips, signer) = scenario(&mut rng);
        let victim = rng.below(rows.len() as u64) as usize;
        rows[victim].head[0] ^= 0x80;
        let (epoch, shard) = (rows[victim].epoch, rows[victim].shard);
        match verify_checkpoints(&rows, &tips, &signer.verifying_key()) {
            Err(FleetVerifyError::BadSignature { epoch: e, shard: s }) => {
                assert_eq!(e, epoch);
                assert_eq!(s, shard);
            }
            other => panic!("expected BadSignature, got {other:?}"),
        }
    }
}

#[test]
fn dropped_checkpoint_is_a_gap() {
    let mut rng = Rng(0xD00D);
    let mut tried = 0;
    while tried < 20 {
        let (rows, tips, signer) = scenario(&mut rng);
        let last = rows.last().expect("non-empty").epoch;
        if last < 3 {
            continue;
        }
        tried += 1;
        // Drop a middle epoch entirely (never the first or the last,
        // which contiguity alone cannot see).
        let victim = 2 + rng.below(last - 2);
        let rows: Vec<CheckpointRow> = rows
            .into_iter()
            .filter(|r| r.epoch != victim)
            .collect();
        match verify_checkpoints(&rows, &tips, &signer.verifying_key()) {
            Err(FleetVerifyError::CheckpointGap { expected, found }) => {
                assert_eq!(expected, victim);
                assert_eq!(found, victim + 1);
            }
            other => panic!("expected CheckpointGap, got {other:?}"),
        }
    }
}

#[test]
fn rolled_back_shard_is_detected() {
    let mut rng = Rng(0xFADE);
    let mut tried = 0;
    while tried < 20 {
        let (rows, mut tips, signer) = scenario(&mut rng);
        let last = rows.last().expect("non-empty").epoch;
        let victim = rng.below(tips.len() as u64) as u32;
        let checkpointed = rows
            .iter()
            .filter(|r| r.epoch == last && r.shard == victim)
            .map(|r| r.clock)
            .next()
            .expect("victim covered");
        if checkpointed == 0 {
            continue;
        }
        tried += 1;
        tips.insert(victim, checkpointed - 1);
        match verify_checkpoints(&rows, &tips, &signer.verifying_key()) {
            Err(FleetVerifyError::ShardRolledBack {
                shard, current, ..
            }) => {
                assert_eq!(shard, victim);
                assert_eq!(current, checkpointed - 1);
            }
            other => panic!("expected ShardRolledBack, got {other:?}"),
        }
    }
}

#[test]
fn shrinking_coverage_is_a_missing_shard() {
    let mut rng = Rng(0x5EED);
    let mut tried = 0;
    while tried < 20 {
        let (rows, tips, signer) = scenario(&mut rng);
        let last = rows.last().expect("non-empty").epoch;
        // A single-shard history would lose its whole last epoch with
        // the victim row, which reads as a (legal) shorter history.
        if last < 2 || tips.len() < 2 {
            continue;
        }
        tried += 1;
        let victim = rng.below(tips.len() as u64) as u32;
        // The shard is covered by earlier epochs but vanishes from the
        // final one — a dropped shard.
        let rows: Vec<CheckpointRow> = rows
            .into_iter()
            .filter(|r| !(r.epoch == last && r.shard == victim))
            .collect();
        match verify_checkpoints(&rows, &tips, &signer.verifying_key()) {
            Err(FleetVerifyError::MissingShard { epoch, shard }) => {
                assert_eq!(epoch, last);
                assert_eq!(shard, victim);
            }
            other => panic!("expected MissingShard, got {other:?}"),
        }
    }
}

#[test]
fn vanished_live_shard_is_a_missing_shard() {
    let mut rng = Rng(0xACE);
    for _ in 0..10 {
        let (rows, mut tips, signer) = scenario(&mut rng);
        let victim = rng.below(tips.len() as u64) as u32;
        tips.remove(&victim);
        match verify_checkpoints(&rows, &tips, &signer.verifying_key()) {
            Err(FleetVerifyError::MissingShard { shard, .. }) => assert_eq!(shard, victim),
            other => panic!("expected MissingShard, got {other:?}"),
        }
    }
}

#[test]
fn regressing_clock_is_non_monotone() {
    let mut rng = Rng(0xF00D);
    let mut tried = 0;
    while tried < 20 {
        let (mut rows, tips, signer) = scenario(&mut rng);
        let last = rows.last().expect("non-empty").epoch;
        if last < 2 {
            continue;
        }
        let victim_shard = rng.below(tips.len() as u64) as u32;
        let prev_clock = rows
            .iter()
            .filter(|r| r.epoch == last - 1 && r.shard == victim_shard)
            .map(|r| r.clock)
            .next()
            .expect("covered");
        if prev_clock == 0 {
            continue;
        }
        tried += 1;
        // Re-sign the final row with a regressed clock: the signature
        // verifies, so only the monotonicity check can object.
        for r in &mut rows {
            if r.epoch == last && r.shard == victim_shard {
                *r = signed_row(&signer, last, victim_shard, r.seq, prev_clock - 1);
            }
        }
        match verify_checkpoints(&rows, &tips, &signer.verifying_key()) {
            Err(FleetVerifyError::NonMonotone { shard, epoch }) => {
                assert_eq!(shard, victim_shard);
                assert_eq!(epoch, last);
            }
            // The regressed clock may also trip the live-tip check
            // first when the mutated row is the shard's last word.
            Err(FleetVerifyError::ShardRolledBack { .. }) => {
                panic!("monotonicity must be checked during the epoch scan")
            }
            other => panic!("expected NonMonotone, got {other:?}"),
        }
    }
}

// ---------------------------------------------------------------
// End-to-end fleet trials
// ---------------------------------------------------------------

/// A minimal SSM: one audited table, no invariants; tests append
/// through `with_log` directly rather than speaking a protocol.
struct EventsSsm;

const EVENTS_SCHEMA: &str = "CREATE TABLE IF NOT EXISTS events(time INTEGER, v TEXT);";

impl ServiceModule for EventsSsm {
    fn name(&self) -> &'static str {
        "events"
    }

    fn schema_sql(&self) -> &'static str {
        EVENTS_SCHEMA
    }

    fn tables(&self) -> Vec<TableSpec> {
        vec![TableSpec {
            name: "events",
            key_cols: &["time"],
        }]
    }

    fn invariants(&self) -> &'static [Invariant] {
        &[]
    }

    fn trim_queries(&self) -> &'static [&'static str] {
        &[]
    }

    fn log_pair(&self, _req: &[u8], _rsp: &[u8], _log: &mut AuditLog) -> libseal::Result<usize> {
        Ok(0)
    }
}

fn fleet_config(backing: LogBacking, shards: usize) -> LibSealConfig {
    let ca = CertificateAuthority::new("CA", &[1u8; 32]);
    let (key, cert) = ca.issue_identity("svc.test", &[2u8; 32]).unwrap();
    LibSealConfig::builder(cert, key)
        .ssm(Arc::new(EventsSsm))
        .backing(backing)
        .check_interval(0)
        .cost_model(CostModel::free())
        .shards(shards)
        .epoch_interval(0)
        .build()
}

fn append_events(plane: &ShardedPlane, shard: u32, n: usize) {
    let seal = plane.shard(shard).expect("shard exists");
    for i in 0..n {
        seal.with_log(0, move |log| {
            let t = log.next_time();
            log.append(
                "events",
                &[Value::Integer(t as i64), Value::Text(format!("v{i}"))],
            )
        })
        .expect("enclave entry")
        .expect("append");
    }
}

/// Best-effort removal of the per-shard journals and manifest derived
/// from a base path.
fn cleanup_fleet(base: &std::path::Path) {
    for suffix in ["shard0", "shard1", "shard2", "manifest"] {
        let _ = std::fs::remove_file(format!("{}.{suffix}", base.display()));
    }
}

#[test]
fn healthy_fleet_verifies_end_to_end() {
    let plane = ShardedPlane::open(fleet_config(LogBacking::Memory, 3)).expect("provision");
    for shard in 0..3 {
        append_events(&plane, shard, 4);
    }
    assert_eq!(plane.checkpoint_now(0).expect("checkpoint"), 1);
    append_events(&plane, 1, 3);
    assert_eq!(plane.checkpoint_now(0).expect("checkpoint"), 2);
    plane.verify_fleet(0).expect("healthy fleet verifies");
    let rows = plane.checkpoint_rows(0).expect("rows");
    // Two epochs, three shards each.
    assert_eq!(rows.len(), 6);
}

#[test]
fn tampered_shard_rows_fail_shard_verification() {
    let plane = ShardedPlane::open(fleet_config(LogBacking::Memory, 2)).expect("provision");
    append_events(&plane, 0, 3);
    append_events(&plane, 1, 3);
    plane.checkpoint_now(0).expect("checkpoint");
    plane.verify_fleet(0).expect("clean before tampering");
    let seal = plane.shard(1).expect("shard 1");
    seal.with_log(0, |log| {
        log.db_mut()
            .execute("UPDATE events SET v = 'forged'")
            .expect("tamper")
    })
    .expect("enclave entry");
    match plane.verify_fleet(0) {
        Err(FleetVerifyError::Shard { shard, source }) => {
            assert_eq!(shard, 1);
            assert!(matches!(source, LibSealError::Tampered(_)));
        }
        other => panic!("expected Shard failure, got {other:?}"),
    }
}

#[test]
fn memory_shard_restart_is_a_rollback() {
    let plane = ShardedPlane::open(fleet_config(LogBacking::Memory, 2)).expect("provision");
    append_events(&plane, 0, 2);
    append_events(&plane, 1, 5);
    plane.checkpoint_now(0).expect("checkpoint");
    // A memory-backed shard restart loses its journal: the rebuilt
    // chain starts from clock 0, behind its checkpointed clock — the
    // fleet must read that as a rollback.
    plane.restart_shard(1).expect("restart");
    match plane.verify_fleet(0) {
        Err(FleetVerifyError::ShardRolledBack { shard, current, .. }) => {
            assert_eq!(shard, 1);
            assert_eq!(current, 0);
        }
        other => panic!("expected ShardRolledBack, got {other:?}"),
    }
}

#[test]
fn disk_shard_restart_recovers_and_verifies() {
    let base = TempPath::new("libseal-fleet-restart", "log");
    let plane =
        ShardedPlane::open(fleet_config(LogBacking::Disk(base.to_path_buf()), 2)).expect("provision");
    append_events(&plane, 0, 3);
    append_events(&plane, 1, 4);
    plane.checkpoint_now(0).expect("checkpoint");
    // Disk-backed restart: the fresh enclave recovers the sealed
    // journal, so the chain resumes at its checkpointed clock and the
    // fleet stays verifiable.
    plane.restart_shard(1).expect("restart");
    plane.verify_fleet(0).expect("recovered fleet verifies");
    append_events(&plane, 1, 2);
    plane.checkpoint_now(0).expect("checkpoint after recovery");
    plane.verify_fleet(0).expect("still verifies");
    drop(plane);
    cleanup_fleet(&base);
}

#[test]
fn plane_restart_resumes_from_the_manifest() {
    let base = TempPath::new("libseal-fleet-reopen", "log");
    let cfg = || fleet_config(LogBacking::Disk(base.to_path_buf()), 2);
    let first_epoch = {
        let plane = ShardedPlane::open(cfg()).expect("provision");
        append_events(&plane, 0, 2);
        append_events(&plane, 1, 2);
        let e = plane.checkpoint_now(0).expect("checkpoint");
        plane.drain(0).expect("drain");
        e
    };
    // Reopen: the manifest reprovisions both shards from their
    // journals and epoch numbering resumes after the durable history.
    let plane = ShardedPlane::open(cfg()).expect("reopen");
    assert_eq!(plane.shard_ids(), vec![0, 1]);
    plane.verify_fleet(0).expect("recovered fleet verifies");
    let next = plane.checkpoint_now(0).expect("checkpoint");
    // Draining cut one more checkpoint after `first_epoch`.
    assert_eq!(next, first_epoch + 2);
    plane.verify_fleet(0).expect("verifies after resume");
    drop(plane);
    cleanup_fleet(&base);
}

#[test]
fn plane_keys_are_not_derivable_from_the_certificate() {
    // The plane seed must come from secret material. Re-run the
    // (removed) public derivation — Sha256(cert.pubkey) under the
    // plane's domain separation — and assert it does NOT yield the
    // checkpoint-verifying key, i.e. holding the service certificate
    // is not enough to forge epoch checkpoints.
    let ca = CertificateAuthority::new("CA", &[1u8; 32]);
    let (key, cert) = ca.issue_identity("svc.test", &[2u8; 32]).unwrap();
    let pubkey = cert.pubkey;
    let plane = ShardedPlane::open(
        LibSealConfig::builder(cert, key)
            .ssm(Arc::new(EventsSsm))
            .check_interval(0)
            .cost_model(CostModel::free())
            .shards(2)
            .epoch_interval(0)
            .build(),
    )
    .expect("provision");
    let mut forged_input = Vec::new();
    forged_input.extend_from_slice(b"libseal-plane:");
    forged_input.extend_from_slice(&libseal_crypto::sha2::Sha256::digest(&pubkey));
    let forged_seed = libseal_crypto::sha2::Sha256::digest(&forged_input);
    let forged = SigningKey::from_seed(&forged_seed).verifying_key();
    assert_ne!(
        forged.as_bytes(),
        plane.verifying_key().as_bytes(),
        "plane checkpoint key must not be derivable from the public certificate"
    );
}

/// Opens sessions until one lands on `shard`, returning its plane
/// sid.
fn open_session_on(plane: &ShardedPlane, shard: u32) -> u64 {
    let count_on = |p: &ShardedPlane| {
        p.session_counts()
            .iter()
            .find(|&&(id, _)| id == shard)
            .map_or(0, |&(_, n)| n)
    };
    for affinity in 0..10_000u64 {
        let before = count_on(plane);
        let sid = plane.open_session(0, affinity).expect("open session");
        if count_on(plane) > before {
            return sid;
        }
        plane.close_session(0, sid).expect("close session");
    }
    panic!("no affinity routed to shard {shard}");
}

#[test]
fn stale_generations_stay_dead_across_plane_reopen() {
    let base = TempPath::new("libseal-fleet-gen", "log");
    let cfg = || fleet_config(LogBacking::Disk(base.to_path_buf()), 2);
    let stale_sid = {
        let plane = ShardedPlane::open(cfg()).expect("provision");
        append_events(&plane, 1, 2);
        plane.checkpoint_now(0).expect("checkpoint");
        let sid = open_session_on(&plane, 1);
        // Restart bumps the generation: the pinned session dies.
        plane.restart_shard(1).expect("restart");
        assert!(
            matches!(
                plane.close_session(0, sid),
                Err(LibSealError::NoSuchSession(_))
            ),
            "sid from before the restart must be stale"
        );
        plane.drain(0).expect("drain");
        sid
    };
    // Reopen from the manifest: the bumped generation must have been
    // persisted, so the pre-restart sid still cannot alias a fresh
    // session on the reprovisioned shard.
    let plane = ShardedPlane::open(cfg()).expect("reopen");
    assert!(
        matches!(
            plane.close_session(0, stale_sid),
            Err(LibSealError::NoSuchSession(_))
        ),
        "plane reopen must not resurrect pre-restart generations"
    );
    // Fresh sessions on the restarted shard route and resolve.
    let fresh = open_session_on(&plane, 1);
    plane.close_session(0, fresh).expect("fresh session resolves");
    drop(plane);
    cleanup_fleet(&base);
}

#[test]
fn checkpoints_racing_a_restart_never_shrink_coverage() {
    // A checkpoint cut while a shard is mid-restart must not drop the
    // shard from coverage (which would be a permanent false
    // MissingShard verdict). Hammer checkpoint_now from another
    // thread across several restarts and require a clean fleet.
    let base = TempPath::new("libseal-fleet-race", "log");
    let plane = ShardedPlane::open(fleet_config(LogBacking::Disk(base.to_path_buf()), 2))
        .expect("provision");
    append_events(&plane, 0, 2);
    append_events(&plane, 1, 2);
    plane.checkpoint_now(0).expect("checkpoint");
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let checkpointer = {
        let plane = Arc::clone(&plane);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                plane.checkpoint_now(0).expect("racing checkpoint");
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
        })
    };
    for _ in 0..5 {
        plane.restart_shard(1).expect("restart under checkpoint load");
    }
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    checkpointer.join().expect("checkpointer");
    plane
        .verify_fleet(0)
        .expect("coverage must survive restarts racing checkpoints");
    drop(plane);
    cleanup_fleet(&base);
}

#[test]
fn shard_join_and_retire_rebalance_only_new_sessions() {
    let plane = ShardedPlane::open(fleet_config(LogBacking::Memory, 2)).expect("provision");
    append_events(&plane, 0, 1);
    append_events(&plane, 1, 1);
    plane.checkpoint_now(0).expect("checkpoint");
    let new_shard = plane.add_shard().expect("join");
    assert_eq!(new_shard, 2);
    append_events(&plane, new_shard, 2);
    plane.checkpoint_now(0).expect("checkpoint covers joiner");
    plane.verify_fleet(0).expect("fleet with joiner verifies");
    // Retiring keeps the shard checkpointed (its chain history must
    // stay covered), it only leaves the routing ring.
    plane.retire_shard(1).expect("retire");
    plane.checkpoint_now(0).expect("checkpoint after retire");
    plane.verify_fleet(0).expect("fleet with retiree verifies");
    assert_eq!(plane.shard_ids(), vec![0, 1, 2]);
}

//! Group-commit pipeline tests: concurrent appends through the full
//! `LibSeal` stack, the `CommitQueue`/`Sealer` pipeline over a staged
//! audit log, and crash/error trials at the pipeline's failpoint sites
//! (enqueue, seal, ack) holding the recovery contract: reopen
//! succeeds, the chain verifies, and the counter stays inside the
//! legal "attested ≤ durable + 1" crash window.
//!
//! Fault-injected tests open `plat::failpoint::scenario()` first so
//! they serialize on the global failpoint registry.

use std::sync::Arc;
use std::time::Duration;

use libseal::log::{AuditLog, LogBacking, RollbackGuard, RoteGuard};
use libseal::ssm::git::GIT_SOUNDNESS;
use libseal::{
    CommitMode, CommitQueue, GitModule, GroupCommitConfig, LibSeal, LibSealConfig, Sealer,
    ServiceModule,
};
use libseal_crypto::ed25519::SigningKey;
use libseal_rote::{Cluster, ClusterConfig, QuorumPolicy};
use libseal_sealdb::Value;
use libseal_sgxsim::cost::CostModel;
use libseal_tlsx::cert::CertificateAuthority;
use plat::failpoint::{self, FaultSpec};
use plat::sync::Mutex;
use plat::tmp::TempPath;

const SEAL_KEY: [u8; 32] = [7u8; 32];

fn open_log(path: &TempPath, guard: Box<dyn RollbackGuard>) -> libseal::Result<AuditLog> {
    let ssm = GitModule;
    AuditLog::open(
        LogBacking::Disk(path.to_path_buf()),
        SEAL_KEY,
        SigningKey::from_seed(&[1u8; 32]),
        guard,
        ssm.schema_sql(),
        ssm.tables(),
    )
}

fn update_row(t: i64, worker: usize, i: usize) -> Vec<Value> {
    vec![
        Value::Integer(t),
        Value::Text("r".into()),
        Value::Text("main".into()),
        Value::Text(format!("{worker:02x}{i:038x}")),
        Value::Text("update".into()),
    ]
}

/// N worker threads hammer `with_log` appends on one audited `LibSeal`
/// (group commit on by default). The chain must verify and hold a
/// gap-free 1..=N*M sequence afterwards.
#[test]
fn concurrent_appends_verify_with_a_gap_free_chain() {
    const WORKERS: usize = 4;
    const APPENDS: usize = 25;
    let path = TempPath::new("libseal-gc-stress", "log");
    let ca = CertificateAuthority::new("CA", &[1u8; 32]);
    let (key, cert) = ca.issue_identity("svc.test", &[2u8; 32]).unwrap();
    let cfg = LibSealConfig::builder(cert, key)
        .cost_model(CostModel::free())
        .ssm(Arc::new(GitModule))
        .backing(LogBacking::Disk(path.to_path_buf()))
        .check_interval(0)
        .group_commit(16, Duration::ZERO)
        .build();
    let ls = LibSeal::new(cfg).unwrap();

    let handles: Vec<_> = (0..WORKERS)
        .map(|w| {
            let ls = Arc::clone(&ls);
            std::thread::spawn(move || {
                for i in 0..APPENDS {
                    ls.with_log(0, move |log| {
                        let t = log.next_time() as i64;
                        log.append("updates", &update_row(t, w, i)).unwrap();
                    })
                    .unwrap();
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }

    ls.verify_log(0).unwrap();
    let seqs = ls
        .with_log(0, |log| {
            log.query("SELECT seq FROM _libseal_chain ORDER BY seq", &[])
                .unwrap()
                .rows
                .iter()
                .map(|r| match &r[0] {
                    Value::Integer(s) => *s,
                    other => panic!("non-integer seq: {other:?}"),
                })
                .collect::<Vec<i64>>()
        })
        .unwrap();
    let want: Vec<i64> = (1..=(WORKERS * APPENDS) as i64).collect();
    assert_eq!(seqs, want, "chain sequence must be gap-free");
}

fn cluster() -> Arc<Cluster> {
    let mut cfg = ClusterConfig::new(1);
    cfg.deadline = Duration::from_millis(200);
    cfg.retries = 0;
    cfg.backoff = Duration::from_millis(1);
    cfg.policy = QuorumPolicy::FailStop;
    Arc::new(Cluster::with_config(cfg, b"group-commit-tests").unwrap())
}

/// Runs the staged pipeline — writers stage appends and block on the
/// commit barrier, a `Sealer` drains batches — and returns how many
/// appends were acknowledged durable.
fn pipeline_trial(path: &TempPath, cluster: &Arc<Cluster>, writers: usize, appends: usize) -> u64 {
    let Ok(mut log) = open_log(path, Box::new(RoteGuard(Arc::clone(cluster)))) else {
        return 0;
    };
    log.set_commit_mode(CommitMode::Staged);
    let log = Arc::new(Mutex::new(log));
    let queue = Arc::new(CommitQueue::new(GroupCommitConfig {
        max_batch: 4,
        max_wait: Duration::ZERO,
    }));
    let sealer = {
        let log = Arc::clone(&log);
        Sealer::spawn(Arc::clone(&queue), move || {
            // Production pattern: the counter round runs outside the
            // audit lock so writers stage the next batch during it.
            let guard = {
                let g = log.lock();
                if !g.is_dirty() {
                    return Ok(());
                }
                g.guard_handle()
            };
            let counter = guard.increment()?;
            let mut g = log.lock();
            g.seal_bound(counter)?;
            g.flush()
        })
    };
    let handles: Vec<_> = (0..writers)
        .map(|w| {
            let log = Arc::clone(&log);
            let queue = Arc::clone(&queue);
            std::thread::spawn(move || {
                let mut acked = 0u64;
                for i in 0..appends {
                    // Backpressure BEFORE the audit lock: blocking
                    // inside it would stall the sealer itself.
                    queue.wait_for_space();
                    let ticket = {
                        let mut g = log.lock();
                        let t = g.next_time() as i64;
                        if g.append("updates", &update_row(t, w, i)).is_err() {
                            continue;
                        }
                        match queue.stage() {
                            Ok(t) => t,
                            Err(_) => continue,
                        }
                    };
                    if queue.await_durable(ticket).is_ok() {
                        acked += 1;
                    }
                }
                acked
            })
        })
        .collect();
    let acked = handles.into_iter().map(|h| h.join().unwrap()).sum();
    queue.shutdown();
    sealer.join();
    acked
}

/// Fault-free pipeline: every append is acknowledged, and a reopen
/// sees a quiet recovery with all entries present.
#[test]
fn pipeline_stress_acks_everything_and_reopens_clean() {
    let _s = failpoint::scenario(); // serialize with fault-injected tests
    let path = TempPath::new("libseal-gc-pipeline", "log");
    let cl = cluster();
    let acked = pipeline_trial(&path, &cl, 4, 10);
    assert_eq!(acked, 40, "fault-free pipeline must ack every append");

    let log = open_log(&path, Box::new(RoteGuard(Arc::clone(&cl)))).unwrap();
    assert_eq!(log.entries(), 40);
    log.verify().unwrap();
    let r = log.recovery_report();
    assert!(
        r.attested_counter <= r.durable_counter + 1,
        "counter outside the legal crash window: {r:?}"
    );
}

/// Crash and transient-error trials at each pipeline failpoint site.
/// The contract after reopen: no durably-acknowledged entry is lost,
/// nothing beyond the workload appears, the chain verifies, invariant
/// queries run, and the counter stays within "attested ≤ durable + 1".
#[test]
fn commit_failpoints_recover_without_rollback_alarm() {
    let s = failpoint::scenario();
    let sites = [
        "core::commit::enqueue",
        "core::commit::seal",
        "core::commit::ack",
    ];
    type MakeSpec = fn() -> FaultSpec;
    let specs: [(&str, MakeSpec); 2] = [
        ("crash", FaultSpec::crash),
        ("error", || FaultSpec::error().times(1)),
    ];
    for site in sites {
        for (flavor, spec) in specs {
            s.reset();
            let path = TempPath::new("libseal-gc-fault", "log");
            let cl = cluster(); // outlives the "crash": attested counter survives
            s.set(site, spec());
            let acked = pipeline_trial(&path, &cl, 2, 3);
            s.reset(); // restart
            let log = open_log(&path, Box::new(RoteGuard(Arc::clone(&cl))))
                .unwrap_or_else(|e| panic!("{site}/{flavor}: reopen failed: {e}"));
            let entries = log.entries();
            assert!(
                entries >= acked,
                "{site}/{flavor}: acknowledged entry lost ({entries} < {acked})"
            );
            assert!(
                entries <= 6,
                "{site}/{flavor}: phantom entries ({entries} > 6)"
            );
            log.verify()
                .unwrap_or_else(|e| panic!("{site}/{flavor}: verify failed: {e}"));
            assert!(
                log.query(GIT_SOUNDNESS, &[]).is_ok(),
                "{site}/{flavor}: invariant query failed"
            );
            let r = log.recovery_report();
            assert!(
                r.attested_counter <= r.durable_counter + 1,
                "{site}/{flavor}: rollback alarm: {r:?}"
            );
        }
    }
}

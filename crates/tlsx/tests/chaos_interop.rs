//! STLS under a hostile transport: the `plat::chaos` fault-injecting
//! stream wrapper composes under the non-blocking session driver, and
//! every injected fault class (short reads, WouldBlock stalls,
//! connection resets, silent truncation) surfaces as a clean outcome —
//! progress, a typed error, or a stall — never a panic or corrupted
//! plaintext.

use libseal_tlsx::cert::CertificateAuthority;
use libseal_tlsx::ssl::SslConfig;
use libseal_tlsx::{NbRead, NbSslStream, NbStatus, TlsError};
use plat::chaos::{ChaosConfig, ChaosStream};
use std::cell::RefCell;
use std::collections::VecDeque;
use std::io::{self, ErrorKind, Read, Write};
use std::rc::Rc;

type Pipe = Rc<RefCell<VecDeque<u8>>>;

/// One endpoint over shared in-memory queues; WouldBlock when empty.
struct Mem {
    rx: Pipe,
    tx: Pipe,
}

fn mem_pair() -> (Mem, Mem) {
    let a_to_b: Pipe = Rc::new(RefCell::new(VecDeque::new()));
    let b_to_a: Pipe = Rc::new(RefCell::new(VecDeque::new()));
    (
        Mem {
            rx: b_to_a.clone(),
            tx: a_to_b.clone(),
        },
        Mem {
            rx: a_to_b,
            tx: b_to_a,
        },
    )
}

impl Read for Mem {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let mut rx = self.rx.borrow_mut();
        if rx.is_empty() {
            return Err(io::Error::new(ErrorKind::WouldBlock, "empty"));
        }
        let n = buf.len().min(rx.len());
        for b in buf.iter_mut().take(n) {
            *b = rx.pop_front().unwrap();
        }
        Ok(n)
    }
}

impl Write for Mem {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.tx.borrow_mut().extend(buf.iter().copied());
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

fn chaos_pair(
    client_cfg: ChaosConfig,
    server_cfg: ChaosConfig,
) -> (
    NbSslStream<ChaosStream<Mem>>,
    NbSslStream<ChaosStream<Mem>>,
) {
    let ca = CertificateAuthority::new("RootCA", &[0x33; 32]);
    let (key, cert) = ca.issue_identity("localhost", &[4u8; 32]).unwrap();
    let (ct, st) = mem_pair();
    let client = NbSslStream::new(
        SslConfig::client(vec![ca.root_key()]),
        [1u8; 64],
        ChaosStream::new(ct, client_cfg),
    );
    let server = NbSslStream::new(
        SslConfig::server(cert, key),
        [2u8; 64],
        ChaosStream::new(st, server_cfg),
    );
    (client, server)
}

/// Drives both handshakes; Ok(true) when established, Ok(false) when
/// the iteration budget ran out without progress (a stalled link).
fn drive_handshake(
    client: &mut NbSslStream<ChaosStream<Mem>>,
    server: &mut NbSslStream<ChaosStream<Mem>>,
) -> Result<bool, TlsError> {
    for _ in 0..200_000 {
        let mut ready = true;
        for side in [&mut *client, &mut *server] {
            match side.handshake()? {
                NbStatus::Ready => {}
                NbStatus::WantRead | NbStatus::WantWrite => ready = false,
            }
        }
        if ready && client.is_established() && server.is_established() {
            return Ok(true);
        }
    }
    Ok(false)
}

/// Pumps a payload client->server across the chaotic link. `write`
/// encrypts the whole payload once; the loop then flushes the
/// buffered ciphertext through the chaotic transport and drains the
/// server until everything arrived.
fn echo_roundtrip(
    client: &mut NbSslStream<ChaosStream<Mem>>,
    server: &mut NbSslStream<ChaosStream<Mem>>,
    payload: &[u8],
) -> Result<Vec<u8>, TlsError> {
    client.write(payload)?;
    let mut got = Vec::new();
    for _ in 0..500_000 {
        let _ = client.flush()?;
        if let NbRead::Data(d) = server.read()? {
            got.extend_from_slice(&d);
        }
        if got.len() >= payload.len() {
            break;
        }
    }
    Ok(got)
}

#[test]
fn handshake_and_data_survive_shorts_and_stalls() {
    // Heavy but non-fatal chaos on both sides: 30 % short reads/writes
    // and 20 % stalls. The session must establish and deliver the
    // payload intact — faults only slow it down.
    let (mut client, mut server) = chaos_pair(
        ChaosConfig::new(7).shorts(300).stalls(200),
        ChaosConfig::new(11).shorts(300).stalls(200),
    );
    assert!(
        drive_handshake(&mut client, &mut server).expect("no fatal error"),
        "handshake must converge under non-fatal chaos"
    );
    let payload: Vec<u8> = (0..20_000u32).map(|i| (i % 251) as u8).collect();
    let got = echo_roundtrip(&mut client, &mut server, &payload).expect("no fatal error");
    assert_eq!(got, payload, "payload corrupted by chaotic transport");
}

#[test]
fn chaos_schedule_is_deterministic_end_to_end() {
    // Same seeds => byte-identical outcome, including how many
    // transport ops the handshake needed. This is what makes chaos
    // regressions reproducible in CI.
    let run = || {
        let (mut client, mut server) = chaos_pair(
            ChaosConfig::new(42).shorts(250).stalls(150),
            ChaosConfig::new(43).shorts(250).stalls(150),
        );
        let ok = drive_handshake(&mut client, &mut server).expect("no fatal error");
        (ok, client.get_ref().ops(), server.get_ref().ops())
    };
    assert_eq!(run(), run());
}

#[test]
fn reset_mid_handshake_is_an_error_not_a_panic() {
    // The client's transport dies on its 3rd op — mid-flight. The
    // driver must surface a TLS error (or fail to converge), never
    // panic or report an established session.
    let (mut client, mut server) = chaos_pair(
        ChaosConfig::new(3).reset_at(3),
        ChaosConfig::new(4),
    );
    if let Ok(true) = drive_handshake(&mut client, &mut server) {
        panic!("handshake cannot complete over a reset transport");
    }
}

#[test]
fn truncation_mid_handshake_stalls_cleanly() {
    // The server's transport black-holes everything from its first
    // op (reads hit early end-of-stream, writes vanish). The
    // handshake must stall or fail cleanly, not loop into a panic or
    // a bogus Ready.
    let (mut client, mut server) = chaos_pair(
        ChaosConfig::new(5),
        ChaosConfig::new(6).truncate_at(1),
    );
    if let Ok(true) = drive_handshake(&mut client, &mut server) {
        panic!("handshake cannot complete over a truncated transport");
    }
    assert!(!client.is_established() || !server.is_established());
}

//! Property-based tests for the STLS transport.

use std::sync::Arc;

use libseal_tlsx::cert::CertificateAuthority;
use libseal_tlsx::record::{frame, parse, ContentType, RecordKeys};
use libseal_tlsx::ssl::{ReadOutcome, Ssl, SslConfig};
use proptest::prelude::*;

fn pump(a: &mut Ssl, b: &mut Ssl) {
    for _ in 0..12 {
        let out = a.take_output();
        if !out.is_empty() {
            b.provide_input(&out);
        }
        let _ = b.do_handshake();
        let back = b.take_output();
        if !back.is_empty() {
            a.provide_input(&back);
        }
        let _ = a.do_handshake();
        if a.is_established() && b.is_established() {
            return;
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn record_frame_parse_roundtrip(payload in proptest::collection::vec(any::<u8>(), 0..4000)) {
        let framed = frame(ContentType::AppData, &payload);
        let (rec, used) = parse(&framed).unwrap().unwrap();
        prop_assert_eq!(used, framed.len());
        prop_assert_eq!(rec.payload, payload);
    }

    #[test]
    fn record_keys_roundtrip_sequences(
        key in any::<[u8; 32]>(),
        iv in any::<[u8; 12]>(),
        messages in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..200), 1..8),
    ) {
        let mut tx = RecordKeys::new(&key, &iv);
        let mut rx = RecordKeys::new(&key, &iv);
        for m in &messages {
            let sealed = tx.seal(ContentType::AppData, m);
            prop_assert_eq!(&rx.open(ContentType::AppData, &sealed).unwrap(), m);
        }
    }

    #[test]
    fn data_transfer_any_sizes(
        entropy_c in any::<[u8; 64]>(),
        entropy_s in any::<[u8; 64]>(),
        payload in proptest::collection::vec(any::<u8>(), 1..60_000),
    ) {
        let ca = CertificateAuthority::new("PropCA", &[0x61; 32]);
        let (key, cert) = ca.issue_identity("prop", &[0x62; 32]);
        let mut client = Ssl::new(SslConfig::client(vec![ca.root_key()]), entropy_c);
        let mut server = Ssl::new(SslConfig::server(cert, key), entropy_s);
        client.do_handshake().unwrap();
        pump(&mut client, &mut server);
        prop_assert!(client.is_established() && server.is_established());

        client.ssl_write(&payload).unwrap();
        server.provide_input(&client.take_output());
        let mut got = Vec::new();
        while got.len() < payload.len() {
            match server.ssl_read().unwrap() {
                ReadOutcome::Data(d) => got.extend_from_slice(&d),
                other => prop_assert!(false, "unexpected {other:?}"),
            }
        }
        prop_assert_eq!(got, payload);
    }

    #[test]
    fn fragmented_delivery_reassembles(
        chunk in 1usize..97,
        payload in proptest::collection::vec(any::<u8>(), 1..3000),
    ) {
        let ca = CertificateAuthority::new("PropCA", &[0x61; 32]);
        let (key, cert) = ca.issue_identity("prop", &[0x62; 32]);
        let mut client = Ssl::new(SslConfig::client(vec![ca.root_key()]), [1u8; 64]);
        let mut server = Ssl::new(SslConfig::server(cert, key), [2u8; 64]);
        client.do_handshake().unwrap();
        pump(&mut client, &mut server);

        client.ssl_write(&payload).unwrap();
        let wire = client.take_output();
        let mut got = Vec::new();
        // Deliver the ciphertext in tiny chunks: the record layer must
        // reassemble regardless of TCP segmentation.
        for piece in wire.chunks(chunk) {
            server.provide_input(piece);
            loop {
                match server.ssl_read().unwrap() {
                    ReadOutcome::Data(d) => got.extend_from_slice(&d),
                    ReadOutcome::WantRead => break,
                    ReadOutcome::Closed => prop_assert!(false, "closed"),
                }
            }
        }
        prop_assert_eq!(got, payload);
    }

    #[test]
    fn corrupted_wire_never_yields_wrong_plaintext(
        payload in proptest::collection::vec(any::<u8>(), 1..500),
        flip_at in any::<prop::sample::Index>(),
        flip_bit in 0u8..8,
    ) {
        let ca = CertificateAuthority::new("PropCA", &[0x61; 32]);
        let (key, cert) = ca.issue_identity("prop", &[0x62; 32]);
        let mut client = Ssl::new(SslConfig::client(vec![ca.root_key()]), [1u8; 64]);
        let mut server = Ssl::new(SslConfig::server(cert, key), [2u8; 64]);
        client.do_handshake().unwrap();
        pump(&mut client, &mut server);

        client.ssl_write(&payload).unwrap();
        let mut wire = client.take_output();
        let idx = flip_at.index(wire.len());
        wire[idx] ^= 1 << flip_bit;
        server.provide_input(&wire);
        // Whatever happens, it must not be acceptance of wrong bytes:
        // either a decrypt/protocol error or (header-length damage) a
        // starved WantRead — never Data != payload.
        match server.ssl_read() {
            Ok(ReadOutcome::Data(d)) => prop_assert_eq!(d, payload),
            Ok(_) | Err(_) => {}
        }
    }
}

/// Arc import is used by SslConfig constructors in non-prop tests.
#[allow(unused)]
fn _keep_arc_used(_: Arc<()>) {}

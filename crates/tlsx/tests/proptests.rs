//! Property-based tests for the STLS transport (deterministic
//! `plat::check` harness; same properties and case counts as the
//! original proptest suite).

use libseal_tlsx::cert::{Certificate, CertificateAuthority};
use libseal_tlsx::record::{frame, parse, ContentType, RecordKeys};
use libseal_tlsx::ssl::{ReadOutcome, Ssl, SslConfig};

fn pump(a: &mut Ssl, b: &mut Ssl) {
    for _ in 0..12 {
        let out = a.take_output();
        if !out.is_empty() {
            b.provide_input(&out);
        }
        let _ = b.do_handshake();
        let back = b.take_output();
        if !back.is_empty() {
            a.provide_input(&back);
        }
        let _ = a.do_handshake();
        if a.is_established() && b.is_established() {
            return;
        }
    }
}

plat::prop! {
    #![cases(24)]

    fn issue_enforces_name_bound_and_roundtrips(g) {
        // Subject names at and around the decode cap: issuance must
        // accept exactly the lengths decode can represent (satellite
        // regression: `issue` used to mint certs longer than 4096
        // bytes that `decode` then refused).
        let len = g.usize_in(libseal_tlsx::cert::MAX_NAME_LEN - 8..libseal_tlsx::cert::MAX_NAME_LEN + 8);
        let subject = "n".repeat(len);
        let pubkey = g.byte_array::<32>();
        let ca = CertificateAuthority::new("PropCA", &[0x61; 32]);
        match ca.issue(&subject, &pubkey) {
            Ok(cert) => {
                assert!(len <= libseal_tlsx::cert::MAX_NAME_LEN);
                let decoded = Certificate::decode(&cert.encode()).unwrap();
                assert_eq!(decoded, cert);
                decoded.verify(&ca.root_key()).unwrap();
            }
            Err(_) => assert!(len > libseal_tlsx::cert::MAX_NAME_LEN),
        }
        // The issuer name is bounded by the same cap.
        let ca_name = "i".repeat(len);
        let long_ca = CertificateAuthority::new(&ca_name, &[0x62; 32]);
        assert_eq!(
            long_ca.issue("svc", &pubkey).is_ok(),
            len <= libseal_tlsx::cert::MAX_NAME_LEN
        );
    }

    fn record_frame_parse_roundtrip(g) {
        let payload = g.bytes(0..4000);
        let framed = frame(ContentType::AppData, &payload);
        let (rec, used) = parse(&framed).unwrap().unwrap();
        assert_eq!(used, framed.len());
        assert_eq!(rec.payload, payload);
    }

    fn record_keys_roundtrip_sequences(g) {
        let key = g.byte_array::<32>();
        let iv = g.byte_array::<12>();
        let messages: Vec<Vec<u8>> = (0..g.usize_in(1..8)).map(|_| g.bytes(0..200)).collect();
        let mut tx = RecordKeys::new(&key, &iv);
        let mut rx = RecordKeys::new(&key, &iv);
        for m in &messages {
            let sealed = tx.seal(ContentType::AppData, m);
            assert_eq!(&rx.open(ContentType::AppData, &sealed).unwrap(), m);
        }
    }

    fn data_transfer_any_sizes(g) {
        let entropy_c = g.byte_array::<64>();
        let entropy_s = g.byte_array::<64>();
        let payload = g.bytes(1..60_000);
        let ca = CertificateAuthority::new("PropCA", &[0x61; 32]);
        let (key, cert) = ca.issue_identity("prop", &[0x62; 32]).unwrap();
        let mut client = Ssl::new(SslConfig::client(vec![ca.root_key()]), entropy_c);
        let mut server = Ssl::new(SslConfig::server(cert, key), entropy_s);
        client.do_handshake().unwrap();
        pump(&mut client, &mut server);
        assert!(client.is_established() && server.is_established());

        client.ssl_write(&payload).unwrap();
        server.provide_input(&client.take_output());
        let mut got = Vec::new();
        while got.len() < payload.len() {
            match server.ssl_read().unwrap() {
                ReadOutcome::Data(d) => got.extend_from_slice(&d),
                other => panic!("unexpected {other:?}"),
            }
        }
        assert_eq!(got, payload);
    }

    fn fragmented_delivery_reassembles(g) {
        let chunk = g.usize_in(1..97);
        let payload = g.bytes(1..3000);
        let ca = CertificateAuthority::new("PropCA", &[0x61; 32]);
        let (key, cert) = ca.issue_identity("prop", &[0x62; 32]).unwrap();
        let mut client = Ssl::new(SslConfig::client(vec![ca.root_key()]), [1u8; 64]);
        let mut server = Ssl::new(SslConfig::server(cert, key), [2u8; 64]);
        client.do_handshake().unwrap();
        pump(&mut client, &mut server);

        client.ssl_write(&payload).unwrap();
        let wire = client.take_output();
        let mut got = Vec::new();
        // Deliver the ciphertext in tiny chunks: the record layer must
        // reassemble regardless of TCP segmentation.
        for piece in wire.chunks(chunk) {
            server.provide_input(piece);
            loop {
                match server.ssl_read().unwrap() {
                    ReadOutcome::Data(d) => got.extend_from_slice(&d),
                    ReadOutcome::WantRead => break,
                    ReadOutcome::Closed => panic!("closed"),
                }
            }
        }
        assert_eq!(got, payload);
    }

    fn corrupted_wire_never_yields_wrong_plaintext(g) {
        let payload = g.bytes(1..500);
        let ca = CertificateAuthority::new("PropCA", &[0x61; 32]);
        let (key, cert) = ca.issue_identity("prop", &[0x62; 32]).unwrap();
        let mut client = Ssl::new(SslConfig::client(vec![ca.root_key()]), [1u8; 64]);
        let mut server = Ssl::new(SslConfig::server(cert, key), [2u8; 64]);
        client.do_handshake().unwrap();
        pump(&mut client, &mut server);

        client.ssl_write(&payload).unwrap();
        let mut wire = client.take_output();
        let idx = g.index(wire.len());
        wire[idx] ^= 1 << g.usize_in(0..8);
        server.provide_input(&wire);
        // Whatever happens, it must not be acceptance of wrong bytes:
        // either a decrypt/protocol error or (header-length damage) a
        // starved WantRead — never Data != payload.
        if let Ok(ReadOutcome::Data(d)) = server.ssl_read() {
            assert_eq!(d, payload);
        }
    }

    // sealdb-style no-panic fuzz, extended to wire decoding: network
    // bytes must produce typed errors, never a panic inside the
    // enclave (an unwind there is an availability violation the audit
    // log cannot record).

    fn cert_decode_never_panics(g) {
        let bytes = match g.usize_in(0..3) {
            0 => g.bytes(0..300),
            1 => {
                // Mutated valid certificate: reaches past the length
                // guards into the field parsing.
                let ca = CertificateAuthority::new("PropCA", &[0x61; 32]);
                let (_, cert) = ca.issue_identity("prop", &[0x62; 32]).unwrap();
                let mut b = cert.encode();
                for _ in 0..g.usize_in(1..5) {
                    let idx = g.index(b.len());
                    b[idx] = b[idx].wrapping_add(1 + g.usize_in(0..255) as u8);
                }
                b
            }
            _ => {
                // Truncations of a valid certificate at every prefix.
                let ca = CertificateAuthority::new("PropCA", &[0x61; 32]);
                let (_, cert) = ca.issue_identity("prop", &[0x62; 32]).unwrap();
                let b = cert.encode();
                b[..g.index(b.len() + 1)].to_vec()
            }
        };
        // Must return Ok or a typed TlsError — never panic.
        let _ = Certificate::decode(&bytes);
    }

    fn handshake_decode_never_panics_on_garbage(g) {
        use libseal_tlsx::record::{frame, ContentType};
        let ca = CertificateAuthority::new("PropCA", &[0x61; 32]);
        let (key, cert) = ca.issue_identity("prop", &[0x62; 32]).unwrap();
        let mut peer = if g.usize_in(0..2) == 0 {
            Ssl::new(SslConfig::server(cert, key), [2u8; 64])
        } else {
            let mut c = Ssl::new(SslConfig::client(vec![ca.root_key()]), [1u8; 64]);
            let _ = c.do_handshake();
            let _ = c.take_output();
            c
        };
        // Garbage framed as handshake records reaches the message
        // parser (incl. the short-ClientHello/ServerHello paths the
        // key-share extraction guards); raw noise exercises record
        // parsing itself.
        for _ in 0..g.usize_in(1..4) {
            let noise = match g.usize_in(0..3) {
                0 => g.bytes(0..80),
                1 => {
                    // Correctly-framed handshake message (type + 3-byte
                    // big-endian length) with an arbitrary body.
                    let mut msg = vec![g.usize_in(1..8) as u8];
                    let body = g.bytes(0..40);
                    msg.extend_from_slice(&(body.len() as u32).to_be_bytes()[1..4]);
                    msg.extend_from_slice(&body);
                    frame(ContentType::Handshake, &msg)
                }
                _ => frame(ContentType::Handshake, &g.bytes(0..60)),
            };
            peer.provide_input(&noise);
            let _ = peer.do_handshake();
            let _ = peer.ssl_read();
            let _ = peer.take_output();
        }
    }

    fn handshake_truncated_flights_never_panic(g) {
        // A real server flight truncated at an arbitrary byte: the
        // client must error or starve (WantRead), never panic.
        let ca = CertificateAuthority::new("PropCA", &[0x61; 32]);
        let (key, cert) = ca.issue_identity("prop", &[0x62; 32]).unwrap();
        let mut client = Ssl::new(SslConfig::client(vec![ca.root_key()]), [1u8; 64]);
        let mut server = Ssl::new(SslConfig::server(cert, key), [2u8; 64]);
        client.do_handshake().unwrap();
        server.provide_input(&client.take_output());
        let _ = server.do_handshake();
        let flight = server.take_output();
        let cut = g.index(flight.len() + 1);
        client.provide_input(&flight[..cut]);
        let _ = client.do_handshake();
        let _ = client.ssl_read();
    }
}

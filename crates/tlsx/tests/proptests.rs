//! Property-based tests for the STLS transport (deterministic
//! `plat::check` harness; same properties and case counts as the
//! original proptest suite).

use libseal_tlsx::cert::CertificateAuthority;
use libseal_tlsx::record::{frame, parse, ContentType, RecordKeys};
use libseal_tlsx::ssl::{ReadOutcome, Ssl, SslConfig};

fn pump(a: &mut Ssl, b: &mut Ssl) {
    for _ in 0..12 {
        let out = a.take_output();
        if !out.is_empty() {
            b.provide_input(&out);
        }
        let _ = b.do_handshake();
        let back = b.take_output();
        if !back.is_empty() {
            a.provide_input(&back);
        }
        let _ = a.do_handshake();
        if a.is_established() && b.is_established() {
            return;
        }
    }
}

plat::prop! {
    #![cases(24)]

    fn record_frame_parse_roundtrip(g) {
        let payload = g.bytes(0..4000);
        let framed = frame(ContentType::AppData, &payload);
        let (rec, used) = parse(&framed).unwrap().unwrap();
        assert_eq!(used, framed.len());
        assert_eq!(rec.payload, payload);
    }

    fn record_keys_roundtrip_sequences(g) {
        let key = g.byte_array::<32>();
        let iv = g.byte_array::<12>();
        let messages: Vec<Vec<u8>> = (0..g.usize_in(1..8)).map(|_| g.bytes(0..200)).collect();
        let mut tx = RecordKeys::new(&key, &iv);
        let mut rx = RecordKeys::new(&key, &iv);
        for m in &messages {
            let sealed = tx.seal(ContentType::AppData, m);
            assert_eq!(&rx.open(ContentType::AppData, &sealed).unwrap(), m);
        }
    }

    fn data_transfer_any_sizes(g) {
        let entropy_c = g.byte_array::<64>();
        let entropy_s = g.byte_array::<64>();
        let payload = g.bytes(1..60_000);
        let ca = CertificateAuthority::new("PropCA", &[0x61; 32]);
        let (key, cert) = ca.issue_identity("prop", &[0x62; 32]);
        let mut client = Ssl::new(SslConfig::client(vec![ca.root_key()]), entropy_c);
        let mut server = Ssl::new(SslConfig::server(cert, key), entropy_s);
        client.do_handshake().unwrap();
        pump(&mut client, &mut server);
        assert!(client.is_established() && server.is_established());

        client.ssl_write(&payload).unwrap();
        server.provide_input(&client.take_output());
        let mut got = Vec::new();
        while got.len() < payload.len() {
            match server.ssl_read().unwrap() {
                ReadOutcome::Data(d) => got.extend_from_slice(&d),
                other => panic!("unexpected {other:?}"),
            }
        }
        assert_eq!(got, payload);
    }

    fn fragmented_delivery_reassembles(g) {
        let chunk = g.usize_in(1..97);
        let payload = g.bytes(1..3000);
        let ca = CertificateAuthority::new("PropCA", &[0x61; 32]);
        let (key, cert) = ca.issue_identity("prop", &[0x62; 32]);
        let mut client = Ssl::new(SslConfig::client(vec![ca.root_key()]), [1u8; 64]);
        let mut server = Ssl::new(SslConfig::server(cert, key), [2u8; 64]);
        client.do_handshake().unwrap();
        pump(&mut client, &mut server);

        client.ssl_write(&payload).unwrap();
        let wire = client.take_output();
        let mut got = Vec::new();
        // Deliver the ciphertext in tiny chunks: the record layer must
        // reassemble regardless of TCP segmentation.
        for piece in wire.chunks(chunk) {
            server.provide_input(piece);
            loop {
                match server.ssl_read().unwrap() {
                    ReadOutcome::Data(d) => got.extend_from_slice(&d),
                    ReadOutcome::WantRead => break,
                    ReadOutcome::Closed => panic!("closed"),
                }
            }
        }
        assert_eq!(got, payload);
    }

    fn corrupted_wire_never_yields_wrong_plaintext(g) {
        let payload = g.bytes(1..500);
        let ca = CertificateAuthority::new("PropCA", &[0x61; 32]);
        let (key, cert) = ca.issue_identity("prop", &[0x62; 32]);
        let mut client = Ssl::new(SslConfig::client(vec![ca.root_key()]), [1u8; 64]);
        let mut server = Ssl::new(SslConfig::server(cert, key), [2u8; 64]);
        client.do_handshake().unwrap();
        pump(&mut client, &mut server);

        client.ssl_write(&payload).unwrap();
        let mut wire = client.take_output();
        let idx = g.index(wire.len());
        wire[idx] ^= 1 << g.usize_in(0..8);
        server.provide_input(&wire);
        // Whatever happens, it must not be acceptance of wrong bytes:
        // either a decrypt/protocol error or (header-length damage) a
        // starved WantRead — never Data != payload.
        if let Ok(ReadOutcome::Data(d)) = server.ssl_read() {
            assert_eq!(d, payload);
        }
    }
}

//! Non-blocking STLS driver: handshake and data transfer must resume
//! across WantRead/WantWrite at *every* transport boundary. The
//! trickle transport below delivers one byte per read and accepts one
//! byte per write — with a WouldBlock before every accepted byte — so
//! the state machines hit a want-state at every record boundary (and
//! every byte inside every record).

use libseal_tlsx::cert::CertificateAuthority;
use libseal_tlsx::ssl::SslConfig;
use libseal_tlsx::{NbRead, NbSslStream, NbStatus, TlsError};
use std::cell::RefCell;
use std::collections::VecDeque;
use std::io::{self, ErrorKind, Read, Write};
use std::rc::Rc;

type Pipe = Rc<RefCell<VecDeque<u8>>>;

/// One direction-pair endpoint over shared in-memory queues.
struct Trickle {
    rx: Pipe,
    tx: Pipe,
    /// Alternates WouldBlock / 1-byte-accepted on writes.
    write_ok: bool,
    /// Alternates WouldBlock / 1-byte-delivered on reads.
    read_ok: bool,
    peer_gone: bool,
}

fn trickle_pair() -> (Trickle, Trickle) {
    let a_to_b: Pipe = Rc::new(RefCell::new(VecDeque::new()));
    let b_to_a: Pipe = Rc::new(RefCell::new(VecDeque::new()));
    let a = Trickle {
        rx: b_to_a.clone(),
        tx: a_to_b.clone(),
        write_ok: false,
        read_ok: false,
        peer_gone: false,
    };
    let b = Trickle {
        rx: a_to_b,
        tx: b_to_a,
        write_ok: false,
        read_ok: false,
        peer_gone: false,
    };
    (a, b)
}

impl Read for Trickle {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if self.rx.borrow().is_empty() {
            if self.peer_gone {
                return Ok(0);
            }
            return Err(io::Error::new(ErrorKind::WouldBlock, "empty"));
        }
        self.read_ok = !self.read_ok;
        if !self.read_ok {
            return Err(io::Error::new(ErrorKind::WouldBlock, "trickle"));
        }
        buf[0] = self.rx.borrow_mut().pop_front().unwrap();
        Ok(1)
    }
}

impl Write for Trickle {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.write_ok = !self.write_ok;
        if !self.write_ok {
            return Err(io::Error::new(ErrorKind::WouldBlock, "trickle"));
        }
        self.tx.borrow_mut().push_back(buf[0]);
        Ok(1)
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

fn pair() -> (NbSslStream<Trickle>, NbSslStream<Trickle>) {
    let ca = CertificateAuthority::new("RootCA", &[0x33; 32]);
    let (key, cert) = ca.issue_identity("localhost", &[4u8; 32]).unwrap();
    let (ct, st) = trickle_pair();
    let client = NbSslStream::new(SslConfig::client(vec![ca.root_key()]), [1u8; 64], ct);
    let server = NbSslStream::new(SslConfig::server(cert, key), [2u8; 64], st);
    (client, server)
}

/// Drives both handshakes to completion strictly through want-states.
fn drive_handshake(
    client: &mut NbSslStream<Trickle>,
    server: &mut NbSslStream<Trickle>,
) -> (u32, u32) {
    let mut wants = (0u32, 0u32); // (WantRead, WantWrite) observations
    for _ in 0..200_000 {
        let mut ready = true;
        for side in [&mut *client, &mut *server] {
            match side.handshake().expect("handshake step") {
                NbStatus::Ready => {}
                NbStatus::WantRead => {
                    wants.0 += 1;
                    ready = false;
                }
                NbStatus::WantWrite => {
                    wants.1 += 1;
                    ready = false;
                }
            }
        }
        if ready && client.is_established() && server.is_established() {
            return wants;
        }
    }
    panic!("handshake did not converge");
}

#[test]
fn handshake_resumes_across_want_states_at_every_byte() {
    let (mut client, mut server) = pair();
    let (want_read, want_write) = drive_handshake(&mut client, &mut server);
    // A multi-record handshake forced through a 1-byte transport must
    // have parked on readiness many times in both directions.
    assert!(want_read > 50, "only {want_read} WantRead");
    assert!(want_write > 50, "only {want_write} WantWrite");
}

#[test]
fn app_data_resumes_across_want_states() {
    let (mut client, mut server) = pair();
    drive_handshake(&mut client, &mut server);

    // Multi-record payload: MAX_RECORD-sized chunking plus the
    // 1-byte transport exercises a want-state at every boundary.
    let payload: Vec<u8> = (0..40_000u32).map(|i| (i % 253) as u8).collect();
    let mut write_waits = 0u32;
    assert_eq!(client.write(&payload).unwrap(), NbStatus::WantWrite);
    for _ in 0..2_000_000 {
        // Server drains while the client keeps flushing — the queues
        // are unbounded but the transport moves one byte per call.
        match client.flush().unwrap() {
            NbStatus::Ready => break,
            _ => write_waits += 1,
        }
    }
    let mut got = Vec::new();
    let mut read_waits = 0u32;
    while got.len() < payload.len() {
        match server.read().unwrap() {
            NbRead::Data(d) => got.extend_from_slice(&d),
            NbRead::WantRead | NbRead::WantWrite => read_waits += 1,
            NbRead::Closed => panic!("premature close"),
        }
    }
    assert_eq!(got, payload);
    assert!(write_waits > 100, "only {write_waits} write waits");
    // Reads pull whatever is available per call; the trickle read
    // side still forces plenty of WantRead parks.
    assert!(read_waits == 0 || got == payload);

    // Close flows through the same resumable machinery.
    let mut status = client.close().unwrap();
    for _ in 0..2_000_000 {
        if status == NbStatus::Ready {
            break;
        }
        status = client.flush().unwrap();
    }
    assert_eq!(status, NbStatus::Ready);
    loop {
        match server.read().unwrap() {
            NbRead::Closed => break,
            NbRead::Data(_) => panic!("data after close"),
            _ => {}
        }
    }
}

#[test]
fn bidirectional_interleaved_requests() {
    let (mut client, mut server) = pair();
    drive_handshake(&mut client, &mut server);

    for round in 0..5u8 {
        let req = vec![round; 700];
        client.write(&req).unwrap();
        let mut got = Vec::new();
        let mut steps = 0u64;
        while got.len() < req.len() {
            let _ = client.flush().unwrap();
            match server.read().unwrap() {
                NbRead::Data(d) => got.extend_from_slice(&d),
                NbRead::Closed => panic!("closed"),
                _ => {}
            }
            steps += 1;
            assert!(steps < 1_000_000, "no progress");
        }
        assert_eq!(got, req);

        // Echo back the other way.
        server.write(&got).unwrap();
        let mut back = Vec::new();
        let mut steps = 0u64;
        while back.len() < req.len() {
            let _ = server.flush().unwrap();
            match client.read().unwrap() {
                NbRead::Data(d) => back.extend_from_slice(&d),
                NbRead::Closed => panic!("closed"),
                _ => {}
            }
            steps += 1;
            assert!(steps < 1_000_000, "no progress");
        }
        assert_eq!(back, req);
    }
}

#[test]
fn untrusted_ca_failure_counted_on_nonblocking_path() {
    // The per-reason rejection counters live on the shared
    // Ssl::do_handshake choke point, so the resumable non-blocking
    // driver charges them too.
    let ca = CertificateAuthority::new("RootCA", &[0x33; 32]);
    let rogue = CertificateAuthority::new("RogueCA", &[0x44; 32]);
    let (key, cert) = rogue.issue_identity("localhost", &[4u8; 32]).unwrap();
    let (ct, st) = trickle_pair();
    let mut client = NbSslStream::new(SslConfig::client(vec![ca.root_key()]), [1u8; 64], ct);
    let mut server = NbSslStream::new(SslConfig::server(cert, key), [2u8; 64], st);
    let before = libseal_telemetry::counter("tlsx_verify_failures_total_untrusted_ca").get();
    let mut failed = false;
    for _ in 0..200_000 {
        let _ = server.handshake();
        match client.handshake() {
            Ok(_) => {}
            Err(TlsError::Verification(_)) => {
                failed = true;
                break;
            }
            Err(e) => panic!("unexpected: {e}"),
        }
    }
    assert!(failed, "rogue-CA handshake must fail verification");
    assert!(libseal_telemetry::counter("tlsx_verify_failures_total_untrusted_ca").get() > before);
}

#[test]
fn eof_mid_handshake_is_a_typed_close() {
    // The peer hangs up before replying: once the client's hello is
    // flushed and the transport reports EOF, the resumable handshake
    // must surface TlsError::Closed, not spin or panic.
    let ca = CertificateAuthority::new("RootCA", &[0x33; 32]);
    let (mut ct, _gone) = trickle_pair();
    ct.peer_gone = true;
    let mut client = NbSslStream::new(SslConfig::client(vec![ca.root_key()]), [1u8; 64], ct);
    let mut saw_closed = false;
    for _ in 0..10_000 {
        match client.handshake() {
            Ok(_) => {}
            Err(TlsError::Closed) => {
                saw_closed = true;
                break;
            }
            Err(e) => panic!("unexpected: {e}"),
        }
    }
    assert!(saw_closed, "EOF mid-handshake must surface as Closed");
}

//! Blocking stream wrapper: STLS over any `Read + Write` transport.

use std::io::{Read, Write};
use std::sync::Arc;

use crate::ssl::{ReadOutcome, Ssl, SslConfig};
use crate::{Result, TlsError};

/// A blocking STLS connection over `S` (typically a `TcpStream`).
pub struct SslStream<S: Read + Write> {
    ssl: Ssl,
    stream: S,
}

impl<S: Read + Write> SslStream<S> {
    /// Performs a full handshake over `stream`.
    ///
    /// # Errors
    ///
    /// Handshake failures and transport I/O errors.
    pub fn handshake(config: Arc<SslConfig>, entropy: [u8; 64], mut stream: S) -> Result<Self> {
        let mut ssl = Ssl::new(config, entropy);
        loop {
            if ssl.do_handshake()? {
                break;
            }
            flush_output(&mut ssl, &mut stream)?;
            if ssl.is_established() {
                break;
            }
            read_some(&mut ssl, &mut stream)?;
        }
        // Send any trailing flight (e.g. the client Finished).
        flush_output(&mut ssl, &mut stream)?;
        Ok(SslStream { ssl, stream })
    }

    /// Encrypts and sends `data`.
    ///
    /// # Errors
    ///
    /// Protocol or transport failures.
    pub fn write_all(&mut self, data: &[u8]) -> Result<()> {
        self.ssl.ssl_write(data)?;
        flush_output(&mut self.ssl, &mut self.stream)
    }

    /// Receives and decrypts the next chunk of application data.
    ///
    /// # Errors
    ///
    /// [`TlsError::Closed`] on clean close; other variants on failure.
    pub fn read_some(&mut self) -> Result<Vec<u8>> {
        loop {
            match self.ssl.ssl_read()? {
                ReadOutcome::Data(d) => return Ok(d),
                ReadOutcome::Closed => return Err(TlsError::Closed),
                ReadOutcome::WantRead => {
                    flush_output(&mut self.ssl, &mut self.stream)?;
                    read_some(&mut self.ssl, &mut self.stream)?;
                }
            }
        }
    }

    /// Reads until `pred` says the accumulated buffer is complete.
    ///
    /// # Errors
    ///
    /// As [`SslStream::read_some`].
    pub fn read_until(&mut self, buf: &mut Vec<u8>, mut pred: impl FnMut(&[u8]) -> bool) -> Result<()> {
        while !pred(buf) {
            let chunk = self.read_some()?;
            buf.extend_from_slice(&chunk);
        }
        Ok(())
    }

    /// Sends close_notify and flushes.
    pub fn close(&mut self) {
        self.ssl.send_close();
        let _ = flush_output(&mut self.ssl, &mut self.stream);
    }

    /// The inner protocol state.
    pub fn ssl(&self) -> &Ssl {
        &self.ssl
    }

    /// The inner protocol state, mutably.
    pub fn ssl_mut(&mut self) -> &mut Ssl {
        &mut self.ssl
    }

    /// The underlying transport.
    pub fn get_ref(&self) -> &S {
        &self.stream
    }
}

fn flush_output<S: Read + Write>(ssl: &mut Ssl, stream: &mut S) -> Result<()> {
    let out = ssl.take_output();
    if !out.is_empty() {
        stream
            .write_all(&out)
            .map_err(|e| TlsError::Io(e.to_string()))?;
        stream.flush().map_err(|e| TlsError::Io(e.to_string()))?;
    }
    Ok(())
}

fn read_some<S: Read + Write>(ssl: &mut Ssl, stream: &mut S) -> Result<()> {
    let mut buf = [0u8; 16 * 1024];
    let n = stream
        .read(&mut buf)
        .map_err(|e| TlsError::Io(e.to_string()))?;
    if n == 0 {
        return Err(TlsError::Closed);
    }
    ssl.provide_input(&buf[..n]);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cert::CertificateAuthority;
    use std::net::{TcpListener, TcpStream};

    #[test]
    fn tcp_echo_roundtrip() {
        let ca = CertificateAuthority::new("RootCA", &[0x33; 32]);
        let (key, cert) = ca.issue_identity("localhost", &[4u8; 32]);
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();

        let server_cfg = SslConfig::server(cert, key);
        let handle = std::thread::spawn(move || {
            let (sock, _) = listener.accept().unwrap();
            let mut tls = SslStream::handshake(server_cfg, [9u8; 64], sock).unwrap();
            let data = tls.read_some().unwrap();
            tls.write_all(&data).unwrap();
        });

        let client_cfg = SslConfig::client(vec![ca.root_key()]);
        let sock = TcpStream::connect(addr).unwrap();
        let mut tls = SslStream::handshake(client_cfg, [7u8; 64], sock).unwrap();
        tls.write_all(b"ping over tcp").unwrap();
        let echoed = tls.read_some().unwrap();
        assert_eq!(echoed, b"ping over tcp");
        handle.join().unwrap();
    }

    #[test]
    fn large_payload_over_tcp() {
        let ca = CertificateAuthority::new("RootCA", &[0x33; 32]);
        let (key, cert) = ca.issue_identity("localhost", &[4u8; 32]);
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let payload: Vec<u8> = (0..300_000u32).map(|i| (i % 251) as u8).collect();
        let expected = payload.clone();

        let server_cfg = SslConfig::server(cert, key);
        let handle = std::thread::spawn(move || {
            let (sock, _) = listener.accept().unwrap();
            let mut tls = SslStream::handshake(server_cfg, [9u8; 64], sock).unwrap();
            tls.write_all(&payload).unwrap();
            tls.close();
        });

        let client_cfg = SslConfig::client(vec![ca.root_key()]);
        let sock = TcpStream::connect(addr).unwrap();
        let mut tls = SslStream::handshake(client_cfg, [7u8; 64], sock).unwrap();
        let mut got = Vec::new();
        loop {
            match tls.read_some() {
                Ok(d) => got.extend_from_slice(&d),
                Err(TlsError::Closed) => break,
                Err(e) => panic!("{e}"),
            }
        }
        assert_eq!(got, expected);
        handle.join().unwrap();
    }
}

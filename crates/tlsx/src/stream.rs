//! Stream wrappers: STLS over any `Read + Write` transport.
//!
//! Two drivers share the sans-IO [`Ssl`] state machine:
//!
//! - [`SslStream`] — the blocking wrapper servers and clients have
//!   always used. Partial writes are buffered in a [`WireBuf`], so a
//!   socket that turns non-blocking (or times out mid-record) yields
//!   [`TlsError::WantWrite`] with the unsent ciphertext retained — the
//!   next `write_all`/`flush_pending` resumes instead of re-encrypting.
//! - [`NbSslStream`] — the non-blocking driver for readiness-based
//!   serving (`plat::reactor`): `handshake`/`read`/`write` are
//!   resumable state machines returning [`NbStatus::WantRead`] /
//!   [`NbStatus::WantWrite`] instead of blocking.
//!
//! Both retry `ErrorKind::Interrupted` (EINTR) everywhere; a signal
//! delivery must never tear down a session.

use std::io::{self, ErrorKind, Read, Write};
use std::sync::Arc;

use crate::ssl::{ReadOutcome, Ssl, SslConfig};
use crate::{Result, TlsError};

/// Outcome of a [`WireBuf::flush_to`] attempt.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FlushOutcome {
    /// Everything buffered reached the transport.
    Done,
    /// The transport would block; unsent bytes remain buffered.
    WantWrite,
}

/// Ciphertext awaiting transmission, resumable across partial writes.
///
/// A non-blocking socket can accept half a TLS record and then return
/// `WouldBlock`; re-encrypting on retry would corrupt the record
/// stream (sequence-number nonces). This buffer owns the wire bytes
/// until the kernel takes them, retrying EINTR and compacting lazily.
#[derive(Default)]
pub struct WireBuf {
    buf: Vec<u8>,
    pos: usize,
}

impl WireBuf {
    /// An empty buffer.
    pub fn new() -> WireBuf {
        WireBuf::default()
    }

    /// Queues `bytes` behind whatever is still unsent.
    pub fn push(&mut self, bytes: &[u8]) {
        if bytes.is_empty() {
            return;
        }
        // Compact before growing so pos never drifts unboundedly.
        if self.pos > 0 {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Unsent byte count.
    pub fn len(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// True when nothing awaits transmission.
    pub fn is_empty(&self) -> bool {
        self.pos >= self.buf.len()
    }

    /// Writes as much as the transport accepts. EINTR is retried;
    /// `WouldBlock` returns [`FlushOutcome::WantWrite`] with the
    /// remainder kept for the next call.
    ///
    /// # Errors
    ///
    /// Transport errors other than EINTR/WouldBlock.
    pub fn flush_to(&mut self, w: &mut impl Write) -> io::Result<FlushOutcome> {
        while self.pos < self.buf.len() {
            match w.write(&self.buf[self.pos..]) {
                Ok(0) => {
                    return Err(io::Error::new(
                        ErrorKind::WriteZero,
                        "transport accepted zero bytes",
                    ))
                }
                Ok(n) => self.pos += n,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(e) if e.kind() == ErrorKind::WouldBlock => return Ok(FlushOutcome::WantWrite),
                Err(e) => return Err(e),
            }
        }
        self.buf.clear();
        self.pos = 0;
        loop {
            match w.flush() {
                Ok(()) => return Ok(FlushOutcome::Done),
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                // Bytes are with the OS; nothing left for us to hold.
                Err(e) if e.kind() == ErrorKind::WouldBlock => return Ok(FlushOutcome::Done),
                Err(e) => return Err(e),
            }
        }
    }
}

/// EINTR-safe read: retries `Interrupted`, maps `WouldBlock` to
/// `Ok(None)`, and returns `Ok(Some(0))` on EOF.
///
/// # Errors
///
/// Transport errors other than EINTR/WouldBlock.
pub fn read_wire(r: &mut impl Read, buf: &mut [u8]) -> io::Result<Option<usize>> {
    loop {
        match r.read(buf) {
            Ok(n) => return Ok(Some(n)),
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(e) if e.kind() == ErrorKind::WouldBlock => return Ok(None),
            Err(e) => return Err(e),
        }
    }
}

fn io_err(e: io::Error) -> TlsError {
    TlsError::Io(e.to_string())
}

/// A blocking STLS connection over `S` (typically a `TcpStream`).
pub struct SslStream<S: Read + Write> {
    ssl: Ssl,
    stream: S,
    pending: WireBuf,
}

impl<S: Read + Write> SslStream<S> {
    /// Performs a full handshake over `stream`.
    ///
    /// # Errors
    ///
    /// Handshake failures and transport I/O errors.
    pub fn handshake(config: Arc<SslConfig>, entropy: [u8; 64], mut stream: S) -> Result<Self> {
        let mut ssl = Ssl::new(config, entropy);
        let mut pending = WireBuf::new();
        loop {
            if ssl.do_handshake()? {
                break;
            }
            flush_output(&mut ssl, &mut pending, &mut stream)?;
            if ssl.is_established() {
                break;
            }
            read_some(&mut ssl, &mut stream)?;
        }
        // Send any trailing flight (e.g. the client Finished).
        flush_output(&mut ssl, &mut pending, &mut stream)?;
        Ok(SslStream {
            ssl,
            stream,
            pending,
        })
    }

    /// Encrypts and sends `data`. If an earlier call left unsent
    /// ciphertext (see [`TlsError::WantWrite`]), that is flushed
    /// first; `data` is encrypted exactly once either way.
    ///
    /// # Errors
    ///
    /// Protocol or transport failures; [`TlsError::WantWrite`] when
    /// the transport would block (ciphertext retained for resume).
    pub fn write_all(&mut self, data: &[u8]) -> Result<()> {
        self.ssl.ssl_write(data)?;
        flush_output(&mut self.ssl, &mut self.pending, &mut self.stream)
    }

    /// Retries transmission of ciphertext a previous call could not
    /// fully send.
    ///
    /// # Errors
    ///
    /// As [`SslStream::write_all`].
    pub fn flush_pending(&mut self) -> Result<()> {
        flush_output(&mut self.ssl, &mut self.pending, &mut self.stream)
    }

    /// Receives and decrypts the next chunk of application data.
    ///
    /// # Errors
    ///
    /// [`TlsError::Closed`] on clean close; other variants on failure.
    pub fn read_some(&mut self) -> Result<Vec<u8>> {
        loop {
            match self.ssl.ssl_read()? {
                ReadOutcome::Data(d) => return Ok(d),
                ReadOutcome::Closed => return Err(TlsError::Closed),
                ReadOutcome::WantRead => {
                    flush_output(&mut self.ssl, &mut self.pending, &mut self.stream)?;
                    read_some(&mut self.ssl, &mut self.stream)?;
                }
            }
        }
    }

    /// Reads until `pred` says the accumulated buffer is complete.
    ///
    /// # Errors
    ///
    /// As [`SslStream::read_some`].
    pub fn read_until(
        &mut self,
        buf: &mut Vec<u8>,
        mut pred: impl FnMut(&[u8]) -> bool,
    ) -> Result<()> {
        while !pred(buf) {
            let chunk = self.read_some()?;
            buf.extend_from_slice(&chunk);
        }
        Ok(())
    }

    /// Sends close_notify and flushes.
    pub fn close(&mut self) {
        self.ssl.send_close();
        let _ = flush_output(&mut self.ssl, &mut self.pending, &mut self.stream);
    }

    /// The inner protocol state.
    pub fn ssl(&self) -> &Ssl {
        &self.ssl
    }

    /// The inner protocol state, mutably.
    pub fn ssl_mut(&mut self) -> &mut Ssl {
        &mut self.ssl
    }

    /// The underlying transport.
    pub fn get_ref(&self) -> &S {
        &self.stream
    }
}

fn flush_output<S: Read + Write>(
    ssl: &mut Ssl,
    pending: &mut WireBuf,
    stream: &mut S,
) -> Result<()> {
    pending.push(&ssl.take_output());
    if pending.is_empty() {
        return Ok(());
    }
    match pending.flush_to(stream).map_err(io_err)? {
        FlushOutcome::Done => Ok(()),
        FlushOutcome::WantWrite => Err(TlsError::WantWrite),
    }
}

fn read_some<S: Read + Write>(ssl: &mut Ssl, stream: &mut S) -> Result<()> {
    let mut buf = [0u8; 16 * 1024];
    loop {
        match stream.read(&mut buf) {
            Ok(0) => return Err(TlsError::Closed),
            Ok(n) => {
                ssl.provide_input(&buf[..n]);
                return Ok(());
            }
            // A signal interrupted the read; the session is fine.
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            // On a blocking socket WouldBlock means the read timeout
            // elapsed — surface it, don't spin.
            Err(e) => return Err(io_err(e)),
        }
    }
}

/// Result of a non-blocking state-machine step.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NbStatus {
    /// The operation completed.
    Ready,
    /// Blocked until the transport becomes readable.
    WantRead,
    /// Blocked until the transport becomes writable.
    WantWrite,
}

/// Result of a non-blocking read step.
#[derive(Debug, PartialEq, Eq)]
pub enum NbRead {
    /// Decrypted application bytes.
    Data(Vec<u8>),
    /// No complete record yet; wait for readability.
    WantRead,
    /// Ciphertext output is blocked; wait for writability.
    WantWrite,
    /// The peer closed the connection.
    Closed,
}

/// Non-blocking STLS driver over a non-blocking transport.
///
/// Every method is a resumable state machine: call it, and when it
/// reports [`NbStatus::WantRead`] / [`NbStatus::WantWrite`], wait for
/// the corresponding readiness (e.g. via `plat::reactor`) and call it
/// again. Unsent ciphertext — including a partially-written record —
/// is carried in an internal [`WireBuf`] across calls.
pub struct NbSslStream<S: Read + Write> {
    ssl: Ssl,
    stream: S,
    out: WireBuf,
    peer_eof: bool,
}

impl<S: Read + Write> NbSslStream<S> {
    /// Wraps a transport already in non-blocking mode. No bytes are
    /// exchanged until [`handshake`] is driven.
    ///
    /// [`handshake`]: NbSslStream::handshake
    pub fn new(config: Arc<SslConfig>, entropy: [u8; 64], stream: S) -> Self {
        NbSslStream {
            ssl: Ssl::new(config, entropy),
            stream,
            out: WireBuf::new(),
            peer_eof: false,
        }
    }

    /// Advances the handshake as far as current readiness allows.
    /// Returns [`NbStatus::Ready`] once established (with the final
    /// flight flushed).
    ///
    /// # Errors
    ///
    /// Handshake failures, transport errors, [`TlsError::Closed`] on
    /// EOF mid-handshake.
    pub fn handshake(&mut self) -> Result<NbStatus> {
        loop {
            let done = self.ssl.do_handshake()?;
            if self.flush_wire()? == FlushOutcome::WantWrite {
                return Ok(NbStatus::WantWrite);
            }
            if done || self.ssl.is_established() {
                // One more pass: the flight queued by the finishing
                // do_handshake (client Finished) must go out.
                if self.flush_wire()? == FlushOutcome::WantWrite {
                    return Ok(NbStatus::WantWrite);
                }
                return Ok(NbStatus::Ready);
            }
            if !self.fill_input()? {
                if self.peer_eof {
                    return Err(TlsError::Closed);
                }
                return Ok(NbStatus::WantRead);
            }
        }
    }

    /// True once the handshake has completed.
    pub fn is_established(&self) -> bool {
        self.ssl.is_established()
    }

    /// Attempts to decrypt the next chunk of application data,
    /// reading whatever the transport has available.
    ///
    /// # Errors
    ///
    /// Protocol or transport failures.
    pub fn read(&mut self) -> Result<NbRead> {
        if !self.ssl.is_established() {
            match self.handshake()? {
                NbStatus::Ready => {}
                NbStatus::WantRead => return Ok(NbRead::WantRead),
                NbStatus::WantWrite => return Ok(NbRead::WantWrite),
            }
        }
        loop {
            match self.ssl.ssl_read()? {
                ReadOutcome::Data(d) => return Ok(NbRead::Data(d)),
                ReadOutcome::Closed => return Ok(NbRead::Closed),
                ReadOutcome::WantRead => {
                    // Responses the state machine queued (e.g. its
                    // half of a close) should not rot in the buffer.
                    if self.flush_wire()? == FlushOutcome::WantWrite {
                        return Ok(NbRead::WantWrite);
                    }
                    if !self.fill_input()? {
                        if self.peer_eof {
                            return Ok(NbRead::Closed);
                        }
                        return Ok(NbRead::WantRead);
                    }
                }
            }
        }
    }

    /// Encrypts `data` (exactly once) and sends as much as the
    /// transport accepts; [`NbStatus::WantWrite`] means ciphertext
    /// remains buffered — resume with [`flush`] or the next `write`.
    ///
    /// # Errors
    ///
    /// Protocol or transport failures.
    ///
    /// [`flush`]: NbSslStream::flush
    pub fn write(&mut self, data: &[u8]) -> Result<NbStatus> {
        if !self.ssl.is_established() {
            let st = self.handshake()?;
            if st != NbStatus::Ready {
                return Ok(st);
            }
        }
        self.ssl.ssl_write(data)?;
        self.flush()
    }

    /// Pushes buffered ciphertext toward the transport.
    ///
    /// # Errors
    ///
    /// Transport failures.
    pub fn flush(&mut self) -> Result<NbStatus> {
        match self.flush_wire()? {
            FlushOutcome::Done => Ok(NbStatus::Ready),
            FlushOutcome::WantWrite => Ok(NbStatus::WantWrite),
        }
    }

    /// Unsent ciphertext bytes currently buffered.
    pub fn pending_output(&self) -> usize {
        self.out.len()
    }

    /// Queues close_notify and attempts to flush it.
    ///
    /// # Errors
    ///
    /// Transport failures.
    pub fn close(&mut self) -> Result<NbStatus> {
        self.ssl.send_close();
        self.flush()
    }

    /// The inner protocol state.
    pub fn ssl(&self) -> &Ssl {
        &self.ssl
    }

    /// The underlying transport.
    pub fn get_ref(&self) -> &S {
        &self.stream
    }

    fn flush_wire(&mut self) -> Result<FlushOutcome> {
        self.out.push(&self.ssl.take_output());
        if self.out.is_empty() {
            return Ok(FlushOutcome::Done);
        }
        self.out.flush_to(&mut self.stream).map_err(io_err)
    }

    /// Reads everything currently available, feeding the state
    /// machine. Returns true when any bytes arrived.
    fn fill_input(&mut self) -> Result<bool> {
        let mut any = false;
        let mut buf = [0u8; 16 * 1024];
        loop {
            match read_wire(&mut self.stream, &mut buf).map_err(io_err)? {
                Some(0) => {
                    self.peer_eof = true;
                    return Ok(any);
                }
                Some(n) => {
                    self.ssl.provide_input(&buf[..n]);
                    any = true;
                    if n < buf.len() {
                        return Ok(any);
                    }
                }
                None => return Ok(any),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cert::CertificateAuthority;
    use std::net::{TcpListener, TcpStream};

    #[test]
    fn tcp_echo_roundtrip() {
        let ca = CertificateAuthority::new("RootCA", &[0x33; 32]);
        let (key, cert) = ca.issue_identity("localhost", &[4u8; 32]).unwrap();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();

        let server_cfg = SslConfig::server(cert, key);
        let handle = std::thread::spawn(move || {
            let (sock, _) = listener.accept().unwrap();
            let mut tls = SslStream::handshake(server_cfg, [9u8; 64], sock).unwrap();
            let data = tls.read_some().unwrap();
            tls.write_all(&data).unwrap();
        });

        let client_cfg = SslConfig::client(vec![ca.root_key()]);
        let sock = TcpStream::connect(addr).unwrap();
        let mut tls = SslStream::handshake(client_cfg, [7u8; 64], sock).unwrap();
        tls.write_all(b"ping over tcp").unwrap();
        let echoed = tls.read_some().unwrap();
        assert_eq!(echoed, b"ping over tcp");
        handle.join().unwrap();
    }

    #[test]
    fn large_payload_over_tcp() {
        let ca = CertificateAuthority::new("RootCA", &[0x33; 32]);
        let (key, cert) = ca.issue_identity("localhost", &[4u8; 32]).unwrap();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let payload: Vec<u8> = (0..300_000u32).map(|i| (i % 251) as u8).collect();
        let expected = payload.clone();

        let server_cfg = SslConfig::server(cert, key);
        let handle = std::thread::spawn(move || {
            let (sock, _) = listener.accept().unwrap();
            let mut tls = SslStream::handshake(server_cfg, [9u8; 64], sock).unwrap();
            tls.write_all(&payload).unwrap();
            tls.close();
        });

        let client_cfg = SslConfig::client(vec![ca.root_key()]);
        let sock = TcpStream::connect(addr).unwrap();
        let mut tls = SslStream::handshake(client_cfg, [7u8; 64], sock).unwrap();
        let mut got = Vec::new();
        loop {
            match tls.read_some() {
                Ok(d) => got.extend_from_slice(&d),
                Err(TlsError::Closed) => break,
                Err(e) => panic!("{e}"),
            }
        }
        assert_eq!(got, expected);
        handle.join().unwrap();
    }

    /// A transport that fails reads/writes with EINTR on a schedule:
    /// the wrappers must ride through every one of them.
    struct Flaky<S> {
        inner: S,
        countdown: u32,
        every: u32,
    }

    impl<S> Flaky<S> {
        fn new(inner: S, every: u32) -> Self {
            Flaky {
                inner,
                countdown: every,
                every,
            }
        }

        fn interrupt_now(&mut self) -> bool {
            if self.countdown == 0 {
                self.countdown = self.every;
                true
            } else {
                self.countdown -= 1;
                false
            }
        }
    }

    impl<S: Read> Read for Flaky<S> {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            if self.interrupt_now() {
                return Err(io::Error::new(ErrorKind::Interrupted, "signal"));
            }
            self.inner.read(buf)
        }
    }

    impl<S: Write> Write for Flaky<S> {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            if self.interrupt_now() {
                return Err(io::Error::new(ErrorKind::Interrupted, "signal"));
            }
            // Partial writes too: at most 7 bytes per call.
            let n = buf.len().min(7);
            self.inner.write(&buf[..n])
        }

        fn flush(&mut self) -> io::Result<()> {
            if self.interrupt_now() {
                return Err(io::Error::new(ErrorKind::Interrupted, "signal"));
            }
            self.inner.flush()
        }
    }

    #[test]
    fn eintr_and_partial_writes_are_survived() {
        let ca = CertificateAuthority::new("RootCA", &[0x33; 32]);
        let (key, cert) = ca.issue_identity("localhost", &[4u8; 32]).unwrap();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();

        let server_cfg = SslConfig::server(cert, key);
        let handle = std::thread::spawn(move || {
            let (sock, _) = listener.accept().unwrap();
            let flaky = Flaky::new(sock, 2);
            let mut tls = SslStream::handshake(server_cfg, [9u8; 64], flaky).unwrap();
            let mut req = Vec::new();
            tls.read_until(&mut req, |b| b.len() >= 1000).unwrap();
            tls.write_all(&req).unwrap();
        });

        let client_cfg = SslConfig::client(vec![ca.root_key()]);
        let sock = TcpStream::connect(addr).unwrap();
        let flaky = Flaky::new(sock, 3);
        let mut tls = SslStream::handshake(client_cfg, [7u8; 64], flaky).unwrap();
        let payload: Vec<u8> = (0..1000u32).map(|i| (i % 241) as u8).collect();
        tls.write_all(&payload).unwrap();
        let mut got = Vec::new();
        tls.read_until(&mut got, |b| b.len() >= 1000).unwrap();
        assert_eq!(got, payload);
        handle.join().unwrap();
    }

    #[test]
    fn wirebuf_resumes_after_partial_write() {
        struct OneByte {
            taken: Vec<u8>,
            budget: usize,
        }
        impl Write for OneByte {
            fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
                if self.budget == 0 {
                    return Err(io::Error::new(ErrorKind::WouldBlock, "full"));
                }
                self.budget -= 1;
                self.taken.push(buf[0]);
                Ok(1)
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }

        let mut w = WireBuf::new();
        w.push(b"hello world");
        let mut sink = OneByte {
            taken: Vec::new(),
            budget: 4,
        };
        assert_eq!(w.flush_to(&mut sink).unwrap(), FlushOutcome::WantWrite);
        assert_eq!(w.len(), 7);
        // More data queued behind the unsent remainder keeps order.
        w.push(b"!");
        sink.budget = 100;
        assert_eq!(w.flush_to(&mut sink).unwrap(), FlushOutcome::Done);
        assert_eq!(sink.taken, b"hello world!");
        assert!(w.is_empty());
    }
}

//! Certificates: Ed25519 identities signed by a certificate authority.
//!
//! Clients verify that the endpoint terminating STLS presents a
//! certificate chaining to a CA they trust; LibSEAL additionally binds
//! the certificate key to an attested enclave (§6.3, "Bypassing
//! logging") — that binding lives in the `libseal` crate.

use libseal_crypto::ed25519::{SigningKey, VerifyingKey};

use crate::{Result, TlsError};

/// An STLS certificate: a subject name and Ed25519 key, signed by an
/// issuer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Certificate {
    /// Subject (e.g. host name).
    pub subject: String,
    /// The subject's public key.
    pub pubkey: [u8; 32],
    /// Issuer name.
    pub issuer: String,
    /// Issuer's signature over the TBS bytes.
    pub signature: [u8; 64],
}

impl Certificate {
    fn tbs(subject: &str, pubkey: &[u8; 32], issuer: &str) -> Vec<u8> {
        let mut out = Vec::with_capacity(64 + subject.len() + issuer.len());
        out.extend_from_slice(b"stls-cert-v1\0");
        out.extend_from_slice(&(subject.len() as u32).to_le_bytes());
        out.extend_from_slice(subject.as_bytes());
        out.extend_from_slice(pubkey);
        out.extend_from_slice(&(issuer.len() as u32).to_le_bytes());
        out.extend_from_slice(issuer.as_bytes());
        out
    }

    /// Verifies this certificate against a trusted CA key.
    ///
    /// # Errors
    ///
    /// [`TlsError::Verification`] when the signature does not check
    /// out under `ca`.
    pub fn verify(&self, ca: &VerifyingKey) -> Result<()> {
        let tbs = Self::tbs(&self.subject, &self.pubkey, &self.issuer);
        ca.verify(&tbs, &self.signature)
            .map_err(|_| TlsError::Verification(format!("bad certificate for {}", self.subject)))
    }

    /// Serializes to wire format.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&(self.subject.len() as u32).to_le_bytes());
        out.extend_from_slice(self.subject.as_bytes());
        out.extend_from_slice(&self.pubkey);
        out.extend_from_slice(&(self.issuer.len() as u32).to_le_bytes());
        out.extend_from_slice(self.issuer.as_bytes());
        out.extend_from_slice(&self.signature);
        out
    }

    /// Parses from wire format.
    ///
    /// # Errors
    ///
    /// [`TlsError::Protocol`] on malformed bytes.
    pub fn decode(buf: &[u8]) -> Result<Certificate> {
        let mut i = 0usize;
        let take = |i: &mut usize, n: usize| -> Result<&[u8]> {
            let s = buf
                .get(*i..*i + n)
                .ok_or_else(|| TlsError::Protocol("certificate truncated".into()))?;
            *i += n;
            Ok(s)
        };
        // Network-supplied bytes: every fixed-width field converts
        // through a typed error, never an unwrap.
        fn arr<const N: usize>(s: &[u8]) -> Result<[u8; N]> {
            s.try_into()
                .map_err(|_| TlsError::Protocol("certificate field truncated".into()))
        }
        let slen = u32::from_le_bytes(arr(take(&mut i, 4)?)?) as usize;
        if slen > 4096 {
            return Err(TlsError::Protocol("subject too long".into()));
        }
        let subject = String::from_utf8(take(&mut i, slen)?.to_vec())
            .map_err(|_| TlsError::Protocol("subject not UTF-8".into()))?;
        let pubkey: [u8; 32] = arr(take(&mut i, 32)?)?;
        let ilen = u32::from_le_bytes(arr(take(&mut i, 4)?)?) as usize;
        if ilen > 4096 {
            return Err(TlsError::Protocol("issuer too long".into()));
        }
        let issuer = String::from_utf8(take(&mut i, ilen)?.to_vec())
            .map_err(|_| TlsError::Protocol("issuer not UTF-8".into()))?;
        let signature: [u8; 64] = arr(take(&mut i, 64)?)?;
        if i != buf.len() {
            return Err(TlsError::Protocol("trailing certificate bytes".into()));
        }
        Ok(Certificate {
            subject,
            pubkey,
            issuer,
            signature,
        })
    }
}

/// A certificate authority that issues STLS certificates.
pub struct CertificateAuthority {
    name: String,
    key: SigningKey,
}

impl CertificateAuthority {
    /// Creates a CA with a deterministic key from `seed`.
    pub fn new(name: &str, seed: &[u8; 32]) -> Self {
        CertificateAuthority {
            name: name.to_string(),
            key: SigningKey::from_seed(seed),
        }
    }

    /// The CA's verification key, to be distributed to clients.
    pub fn root_key(&self) -> VerifyingKey {
        self.key.verifying_key()
    }

    /// Issues a certificate binding `subject` to `pubkey`.
    pub fn issue(&self, subject: &str, pubkey: &[u8; 32]) -> Certificate {
        let tbs = Certificate::tbs(subject, pubkey, &self.name);
        Certificate {
            subject: subject.to_string(),
            pubkey: *pubkey,
            issuer: self.name.clone(),
            signature: self.key.sign(&tbs),
        }
    }

    /// Issues an identity: a fresh signing key plus its certificate.
    pub fn issue_identity(&self, subject: &str, seed: &[u8; 32]) -> (SigningKey, Certificate) {
        let key = SigningKey::from_seed(seed);
        let cert = self.issue(subject, key.verifying_key().as_bytes());
        (key, cert)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn issue_and_verify() {
        let ca = CertificateAuthority::new("TestCA", &[1u8; 32]);
        let (key, cert) = ca.issue_identity("example.com", &[2u8; 32]);
        cert.verify(&ca.root_key()).unwrap();
        assert_eq!(&cert.pubkey, key.verifying_key().as_bytes());
    }

    #[test]
    fn forged_cert_rejected() {
        let ca = CertificateAuthority::new("TestCA", &[1u8; 32]);
        let rogue = CertificateAuthority::new("TestCA", &[9u8; 32]);
        let (_, cert) = rogue.issue_identity("example.com", &[2u8; 32]);
        assert!(cert.verify(&ca.root_key()).is_err());
    }

    #[test]
    fn tampered_subject_rejected() {
        let ca = CertificateAuthority::new("TestCA", &[1u8; 32]);
        let (_, mut cert) = ca.issue_identity("example.com", &[2u8; 32]);
        cert.subject = "evil.com".to_string();
        assert!(cert.verify(&ca.root_key()).is_err());
    }

    #[test]
    fn encode_decode_roundtrip() {
        let ca = CertificateAuthority::new("TestCA", &[1u8; 32]);
        let (_, cert) = ca.issue_identity("example.com", &[2u8; 32]);
        let bytes = cert.encode();
        let parsed = Certificate::decode(&bytes).unwrap();
        assert_eq!(parsed, cert);
        assert!(Certificate::decode(&bytes[..bytes.len() - 1]).is_err());
    }
}

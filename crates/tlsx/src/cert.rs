//! Certificates: Ed25519 identities signed by a certificate authority.
//!
//! Clients verify that the endpoint terminating STLS presents a
//! certificate chaining to a CA they trust; LibSEAL additionally binds
//! the certificate key to an attested enclave (§6.3, "Bypassing
//! logging") — the quote rides in the certificate's extension block
//! (see [`crate::attest`]) the way RA-TLS embeds SGX quotes in X.509
//! extensions.

use libseal_crypto::ed25519::{SigningKey, VerifyingKey};

use crate::{Result, TlsError};

/// Longest subject or issuer name a certificate may carry; `decode`
/// has always enforced this bound on the wire, and `issue` refuses to
/// mint certificates that would exceed it (a certificate that encodes
/// but can never be decoded by a peer is worse than useless).
pub const MAX_NAME_LEN: usize = 4096;

/// Most extensions one certificate may carry.
pub const MAX_EXTENSIONS: usize = 16;

/// Largest single extension payload.
pub const MAX_EXTENSION_LEN: usize = 16 * 1024;

/// Version tag leading a certificate's extension block on the wire.
const EXT_BLOCK_VERSION: u16 = 1;

/// Flag bit marking an extension critical.
const EXT_FLAG_CRITICAL: u8 = 0x01;

/// A typed certificate extension: X.509-style `(type, critical,
/// bytes)`, carried in a versioned length-prefixed block after the
/// signature and covered by it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Extension {
    /// Extension type (see [`crate::attest::EXT_SGX_QUOTE`]).
    pub ext_type: u16,
    /// Critical extensions must be understood by the verifier; a peer
    /// seeing an unknown critical extension rejects the certificate.
    pub critical: bool,
    /// Opaque payload, interpreted per `ext_type`.
    pub data: Vec<u8>,
}

/// An STLS certificate: a subject name and Ed25519 key, signed by an
/// issuer, optionally carrying typed extensions.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Certificate {
    /// Subject (e.g. host name).
    pub subject: String,
    /// The subject's public key.
    pub pubkey: [u8; 32],
    /// Issuer name.
    pub issuer: String,
    /// Extensions (e.g. an enclave quote); covered by the signature.
    pub extensions: Vec<Extension>,
    /// Issuer's signature over the TBS bytes.
    pub signature: [u8; 64],
}

/// Serializes an extension block (`version, count, (type, flags, len,
/// bytes)*`). Shared by the wire encoding and the TBS bytes so the
/// signature covers the extensions exactly as transmitted.
fn encode_extensions(exts: &[Extension]) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&EXT_BLOCK_VERSION.to_le_bytes());
    out.extend_from_slice(&(exts.len() as u16).to_le_bytes());
    for e in exts {
        out.extend_from_slice(&e.ext_type.to_le_bytes());
        out.push(if e.critical { EXT_FLAG_CRITICAL } else { 0 });
        out.extend_from_slice(&(e.data.len() as u32).to_le_bytes());
        out.extend_from_slice(&e.data);
    }
    out
}

impl Certificate {
    fn tbs(subject: &str, pubkey: &[u8; 32], issuer: &str, extensions: &[Extension]) -> Vec<u8> {
        let mut out = Vec::with_capacity(64 + subject.len() + issuer.len());
        out.extend_from_slice(b"stls-cert-v1\0");
        out.extend_from_slice(&(subject.len() as u32).to_le_bytes());
        out.extend_from_slice(subject.as_bytes());
        out.extend_from_slice(pubkey);
        out.extend_from_slice(&(issuer.len() as u32).to_le_bytes());
        out.extend_from_slice(issuer.as_bytes());
        // Extension-free certificates keep the original TBS bytes, so
        // signatures minted before extensions existed stay valid.
        if !extensions.is_empty() {
            out.extend_from_slice(&encode_extensions(extensions));
        }
        out
    }

    /// Verifies this certificate against a trusted CA key.
    ///
    /// # Errors
    ///
    /// [`TlsError::Verification`] when the signature does not check
    /// out under `ca`.
    pub fn verify(&self, ca: &VerifyingKey) -> Result<()> {
        let tbs = Self::tbs(&self.subject, &self.pubkey, &self.issuer, &self.extensions);
        ca.verify(&tbs, &self.signature)
            .map_err(|_| TlsError::Verification(format!("bad certificate for {}", self.subject)))
    }

    /// The first extension of the given type, if present.
    pub fn extension(&self, ext_type: u16) -> Option<&Extension> {
        self.extensions.iter().find(|e| e.ext_type == ext_type)
    }

    /// The type of the first critical extension the caller does not
    /// recognise, if any. Verifiers must reject certificates carrying
    /// one (X.509 criticality semantics).
    pub fn unknown_critical(&self, known: &[u16]) -> Option<u16> {
        self.extensions
            .iter()
            .find(|e| e.critical && !known.contains(&e.ext_type))
            .map(|e| e.ext_type)
    }

    /// Serializes to wire format.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&(self.subject.len() as u32).to_le_bytes());
        out.extend_from_slice(self.subject.as_bytes());
        out.extend_from_slice(&self.pubkey);
        out.extend_from_slice(&(self.issuer.len() as u32).to_le_bytes());
        out.extend_from_slice(self.issuer.as_bytes());
        out.extend_from_slice(&self.signature);
        // Absent block = no extensions: a pre-extension decoder would
        // reject trailing bytes, and a pre-extension encoder stops
        // here, so extension-free certificates round-trip both ways.
        if !self.extensions.is_empty() {
            out.extend_from_slice(&encode_extensions(&self.extensions));
        }
        out
    }

    /// Parses from wire format.
    ///
    /// # Errors
    ///
    /// [`TlsError::Protocol`] on malformed bytes.
    pub fn decode(buf: &[u8]) -> Result<Certificate> {
        let mut i = 0usize;
        let take = |i: &mut usize, n: usize| -> Result<&[u8]> {
            let s = buf
                .get(*i..*i + n)
                .ok_or_else(|| TlsError::Protocol("certificate truncated".into()))?;
            *i += n;
            Ok(s)
        };
        // Network-supplied bytes: every fixed-width field converts
        // through a typed error, never an unwrap.
        fn arr<const N: usize>(s: &[u8]) -> Result<[u8; N]> {
            s.try_into()
                .map_err(|_| TlsError::Protocol("certificate field truncated".into()))
        }
        let slen = u32::from_le_bytes(arr(take(&mut i, 4)?)?) as usize;
        if slen > MAX_NAME_LEN {
            return Err(TlsError::Protocol("subject too long".into()));
        }
        let subject = String::from_utf8(take(&mut i, slen)?.to_vec())
            .map_err(|_| TlsError::Protocol("subject not UTF-8".into()))?;
        let pubkey: [u8; 32] = arr(take(&mut i, 32)?)?;
        let ilen = u32::from_le_bytes(arr(take(&mut i, 4)?)?) as usize;
        if ilen > MAX_NAME_LEN {
            return Err(TlsError::Protocol("issuer too long".into()));
        }
        let issuer = String::from_utf8(take(&mut i, ilen)?.to_vec())
            .map_err(|_| TlsError::Protocol("issuer not UTF-8".into()))?;
        let signature: [u8; 64] = arr(take(&mut i, 64)?)?;
        // Optional extension block; certificates minted before
        // extensions existed end exactly at the signature.
        let mut extensions = Vec::new();
        if i != buf.len() {
            let version = u16::from_le_bytes(arr(take(&mut i, 2)?)?);
            if version != EXT_BLOCK_VERSION {
                return Err(TlsError::Protocol(format!(
                    "unsupported certificate extension block version {version}"
                )));
            }
            let count = u16::from_le_bytes(arr(take(&mut i, 2)?)?) as usize;
            if count > MAX_EXTENSIONS {
                return Err(TlsError::Protocol("too many certificate extensions".into()));
            }
            for _ in 0..count {
                let ext_type = u16::from_le_bytes(arr(take(&mut i, 2)?)?);
                let flags = take(&mut i, 1)?[0];
                let len = u32::from_le_bytes(arr(take(&mut i, 4)?)?) as usize;
                if len > MAX_EXTENSION_LEN {
                    return Err(TlsError::Protocol("certificate extension too long".into()));
                }
                let data = take(&mut i, len)?.to_vec();
                extensions.push(Extension {
                    ext_type,
                    critical: flags & EXT_FLAG_CRITICAL != 0,
                    data,
                });
            }
        }
        if i != buf.len() {
            return Err(TlsError::Protocol("trailing certificate bytes".into()));
        }
        Ok(Certificate {
            subject,
            pubkey,
            issuer,
            extensions,
            signature,
        })
    }
}

/// A certificate authority that issues STLS certificates.
pub struct CertificateAuthority {
    name: String,
    key: SigningKey,
}

impl CertificateAuthority {
    /// Creates a CA with a deterministic key from `seed`.
    pub fn new(name: &str, seed: &[u8; 32]) -> Self {
        CertificateAuthority {
            name: name.to_string(),
            key: SigningKey::from_seed(seed),
        }
    }

    /// The CA's verification key, to be distributed to clients.
    pub fn root_key(&self) -> VerifyingKey {
        self.key.verifying_key()
    }

    /// Issues a certificate binding `subject` to `pubkey`.
    ///
    /// # Errors
    ///
    /// [`TlsError::Protocol`] when the subject (or this CA's name)
    /// exceeds [`MAX_NAME_LEN`] — the bound `decode` enforces, so
    /// issuance refuses certificates no peer could ever parse.
    pub fn issue(&self, subject: &str, pubkey: &[u8; 32]) -> Result<Certificate> {
        self.issue_with_extensions(subject, pubkey, Vec::new())
    }

    /// Issues a certificate carrying `extensions` (e.g. an enclave
    /// quote; see [`crate::attest::AttestationExtension`]).
    ///
    /// # Errors
    ///
    /// [`TlsError::Protocol`] when the subject or issuer exceeds
    /// [`MAX_NAME_LEN`], or the extensions exceed [`MAX_EXTENSIONS`] /
    /// [`MAX_EXTENSION_LEN`] — the same bounds `decode` enforces.
    pub fn issue_with_extensions(
        &self,
        subject: &str,
        pubkey: &[u8; 32],
        extensions: Vec<Extension>,
    ) -> Result<Certificate> {
        if subject.len() > MAX_NAME_LEN {
            return Err(TlsError::Protocol("subject too long".into()));
        }
        if self.name.len() > MAX_NAME_LEN {
            return Err(TlsError::Protocol("issuer too long".into()));
        }
        if extensions.len() > MAX_EXTENSIONS {
            return Err(TlsError::Protocol("too many certificate extensions".into()));
        }
        if extensions.iter().any(|e| e.data.len() > MAX_EXTENSION_LEN) {
            return Err(TlsError::Protocol("certificate extension too long".into()));
        }
        let tbs = Certificate::tbs(subject, pubkey, &self.name, &extensions);
        Ok(Certificate {
            subject: subject.to_string(),
            pubkey: *pubkey,
            issuer: self.name.clone(),
            extensions,
            signature: self.key.sign(&tbs),
        })
    }

    /// Issues an identity: a fresh signing key plus its certificate.
    ///
    /// # Errors
    ///
    /// Same bounds as [`CertificateAuthority::issue`].
    pub fn issue_identity(&self, subject: &str, seed: &[u8; 32]) -> Result<(SigningKey, Certificate)> {
        let key = SigningKey::from_seed(seed);
        let cert = self.issue(subject, key.verifying_key().as_bytes())?;
        Ok((key, cert))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn issue_and_verify() {
        let ca = CertificateAuthority::new("TestCA", &[1u8; 32]);
        let (key, cert) = ca.issue_identity("example.com", &[2u8; 32]).unwrap();
        cert.verify(&ca.root_key()).unwrap();
        assert_eq!(&cert.pubkey, key.verifying_key().as_bytes());
    }

    #[test]
    fn forged_cert_rejected() {
        let ca = CertificateAuthority::new("TestCA", &[1u8; 32]);
        let rogue = CertificateAuthority::new("TestCA", &[9u8; 32]);
        let (_, cert) = rogue.issue_identity("example.com", &[2u8; 32]).unwrap();
        assert!(cert.verify(&ca.root_key()).is_err());
    }

    #[test]
    fn tampered_subject_rejected() {
        let ca = CertificateAuthority::new("TestCA", &[1u8; 32]);
        let (_, mut cert) = ca.issue_identity("example.com", &[2u8; 32]).unwrap();
        cert.subject = "evil.com".to_string();
        assert!(cert.verify(&ca.root_key()).is_err());
    }

    #[test]
    fn encode_decode_roundtrip() {
        let ca = CertificateAuthority::new("TestCA", &[1u8; 32]);
        let (_, cert) = ca.issue_identity("example.com", &[2u8; 32]).unwrap();
        let bytes = cert.encode();
        let parsed = Certificate::decode(&bytes).unwrap();
        assert_eq!(parsed, cert);
        assert!(Certificate::decode(&bytes[..bytes.len() - 1]).is_err());
    }

    #[test]
    fn extension_roundtrip_and_signature_coverage() {
        let ca = CertificateAuthority::new("TestCA", &[1u8; 32]);
        let key = SigningKey::from_seed(&[2u8; 32]);
        let exts = vec![
            Extension {
                ext_type: 7,
                critical: false,
                data: b"quote-bytes".to_vec(),
            },
            Extension {
                ext_type: 9,
                critical: true,
                data: vec![0xAB; 300],
            },
        ];
        let cert = ca
            .issue_with_extensions("example.com", key.verifying_key().as_bytes(), exts)
            .unwrap();
        cert.verify(&ca.root_key()).unwrap();
        let parsed = Certificate::decode(&cert.encode()).unwrap();
        assert_eq!(parsed, cert);
        parsed.verify(&ca.root_key()).unwrap();
        assert_eq!(parsed.extension(7).unwrap().data, b"quote-bytes");
        assert_eq!(parsed.unknown_critical(&[7, 9]), None);
        assert_eq!(parsed.unknown_critical(&[7]), Some(9));

        // Tampering with extension bytes breaks the signature.
        let mut tampered = parsed;
        tampered.extensions[0].data[0] ^= 1;
        assert!(tampered.verify(&ca.root_key()).is_err());
    }

    #[test]
    fn no_extension_certs_have_stable_wire_format() {
        // Back-compat: an extension-free certificate must end exactly
        // at the signature (the pre-extension wire format).
        let ca = CertificateAuthority::new("TestCA", &[1u8; 32]);
        let (_, cert) = ca.issue_identity("example.com", &[2u8; 32]).unwrap();
        let bytes = cert.encode();
        assert_eq!(
            bytes.len(),
            4 + cert.subject.len() + 32 + 4 + cert.issuer.len() + 64
        );
        assert!(Certificate::decode(&bytes).unwrap().extensions.is_empty());
    }

    #[test]
    fn oversized_names_refused_at_issue() {
        let ca = CertificateAuthority::new("TestCA", &[1u8; 32]);
        let at_bound = "s".repeat(MAX_NAME_LEN);
        let over = "s".repeat(MAX_NAME_LEN + 1);
        assert!(ca.issue(&at_bound, &[0u8; 32]).is_ok());
        assert!(ca.issue(&over, &[0u8; 32]).is_err());
        let long_ca = CertificateAuthority::new(&over, &[1u8; 32]);
        assert!(long_ca.issue("example.com", &[0u8; 32]).is_err());
    }

    #[test]
    fn oversized_extensions_refused_at_issue() {
        let ca = CertificateAuthority::new("TestCA", &[1u8; 32]);
        let big = Extension {
            ext_type: 1,
            critical: false,
            data: vec![0; MAX_EXTENSION_LEN + 1],
        };
        assert!(ca
            .issue_with_extensions("example.com", &[0u8; 32], vec![big])
            .is_err());
        let many: Vec<Extension> = (0..MAX_EXTENSIONS as u16 + 1)
            .map(|t| Extension {
                ext_type: t,
                critical: false,
                data: Vec::new(),
            })
            .collect();
        assert!(ca
            .issue_with_extensions("example.com", &[0u8; 32], many)
            .is_err());
    }

    #[test]
    fn malformed_extension_blocks_rejected() {
        let ca = CertificateAuthority::new("TestCA", &[1u8; 32]);
        let cert = ca
            .issue_with_extensions(
                "example.com",
                &[0u8; 32],
                vec![Extension {
                    ext_type: 7,
                    critical: false,
                    data: b"x".to_vec(),
                }],
            )
            .unwrap();
        let bytes = cert.encode();
        // Truncated inside the extension block.
        assert!(Certificate::decode(&bytes[..bytes.len() - 1]).is_err());
        // Unknown block version.
        let base = 4 + cert.subject.len() + 32 + 4 + cert.issuer.len() + 64;
        let mut wrong_version = bytes.clone();
        wrong_version[base] = 0xFF;
        assert!(Certificate::decode(&wrong_version).is_err());
        // Trailing garbage after the block.
        let mut trailing = bytes;
        trailing.push(0);
        assert!(Certificate::decode(&trailing).is_err());
    }
}

//! The STLS record layer: framing and AEAD protection.
//!
//! Records are `type (1) || len (2, big-endian) || payload`. Before
//! keys are established payloads are plaintext handshake messages;
//! afterwards they are ChaCha20-Poly1305 ciphertexts with the record
//! header as AAD and a nonce derived from a per-direction sequence
//! number.

use libseal_crypto::aead::ChaCha20Poly1305;

use crate::{Result, TlsError};

/// Record content types.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ContentType {
    /// Handshake messages.
    Handshake,
    /// Application data.
    AppData,
    /// Alerts (close_notify, failures).
    Alert,
}

impl ContentType {
    fn to_byte(self) -> u8 {
        match self {
            ContentType::Handshake => 22,
            ContentType::AppData => 23,
            ContentType::Alert => 21,
        }
    }

    fn from_byte(b: u8) -> Result<ContentType> {
        match b {
            22 => Ok(ContentType::Handshake),
            23 => Ok(ContentType::AppData),
            21 => Ok(ContentType::Alert),
            other => Err(TlsError::Protocol(format!("unknown record type {other}"))),
        }
    }
}

/// Maximum record payload size.
pub const MAX_RECORD: usize = 16 * 1024;

/// A parsed record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Record {
    /// Content type.
    pub ctype: ContentType,
    /// Payload (plaintext or ciphertext depending on layer state).
    pub payload: Vec<u8>,
}

/// Frames a record for the wire.
pub fn frame(ctype: ContentType, payload: &[u8]) -> Vec<u8> {
    debug_assert!(payload.len() <= MAX_RECORD + 16);
    let mut out = Vec::with_capacity(3 + payload.len());
    out.push(ctype.to_byte());
    out.extend_from_slice(&(payload.len() as u16).to_be_bytes());
    out.extend_from_slice(payload);
    out
}

/// Attempts to parse one record from the front of `buf`; returns the
/// record and bytes consumed, or `None` when more bytes are needed.
///
/// # Errors
///
/// [`TlsError::Protocol`] on an invalid header.
pub fn parse(buf: &[u8]) -> Result<Option<(Record, usize)>> {
    if buf.len() < 3 {
        return Ok(None);
    }
    let ctype = ContentType::from_byte(buf[0])?;
    let len = u16::from_be_bytes([buf[1], buf[2]]) as usize;
    if len > MAX_RECORD + 16 {
        return Err(TlsError::Protocol(format!("oversized record: {len}")));
    }
    if buf.len() < 3 + len {
        return Ok(None);
    }
    Ok(Some((
        Record {
            ctype,
            payload: buf[3..3 + len].to_vec(),
        },
        3 + len,
    )))
}

/// One direction's record protection state.
pub struct RecordKeys {
    aead: ChaCha20Poly1305,
    iv: [u8; 12],
    seq: u64,
}

impl RecordKeys {
    /// Creates protection state from a 32-byte key and 12-byte IV.
    pub fn new(key: &[u8; 32], iv: &[u8; 12]) -> Self {
        RecordKeys {
            aead: ChaCha20Poly1305::new(key),
            iv: *iv,
            seq: 0,
        }
    }

    fn nonce(&self) -> [u8; 12] {
        let mut n = self.iv;
        let seq = self.seq.to_be_bytes();
        for (i, b) in seq.iter().enumerate() {
            n[4 + i] ^= b;
        }
        n
    }

    /// Seals `plaintext` into a protected record payload, advancing the
    /// sequence number.
    pub fn seal(&mut self, ctype: ContentType, plaintext: &[u8]) -> Vec<u8> {
        let nonce = self.nonce();
        let aad = [ctype.to_byte()];
        let sealed = self.aead.seal(&nonce, &aad, plaintext);
        self.seq += 1;
        sealed
    }

    /// Opens a protected record payload, advancing the sequence number.
    ///
    /// # Errors
    ///
    /// [`TlsError::Decrypt`] on authentication failure.
    pub fn open(&mut self, ctype: ContentType, sealed: &[u8]) -> Result<Vec<u8>> {
        let nonce = self.nonce();
        let aad = [ctype.to_byte()];
        let out = self
            .aead
            .open(&nonce, &aad, sealed)
            .map_err(|_| TlsError::Decrypt)?;
        self.seq += 1;
        Ok(out)
    }

    /// Records protected so far in this direction.
    pub fn seq(&self) -> u64 {
        self.seq
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_parse_roundtrip() {
        let framed = frame(ContentType::AppData, b"payload");
        let (rec, used) = parse(&framed).unwrap().unwrap();
        assert_eq!(used, framed.len());
        assert_eq!(rec.ctype, ContentType::AppData);
        assert_eq!(rec.payload, b"payload");
    }

    #[test]
    fn partial_returns_none() {
        let framed = frame(ContentType::Handshake, b"abcdef");
        assert!(parse(&framed[..2]).unwrap().is_none());
        assert!(parse(&framed[..5]).unwrap().is_none());
    }

    #[test]
    fn bad_type_rejected() {
        assert!(parse(&[99, 0, 0]).is_err());
    }

    #[test]
    fn seal_open_sequence() {
        let key = [7u8; 32];
        let iv = [3u8; 12];
        let mut tx = RecordKeys::new(&key, &iv);
        let mut rx = RecordKeys::new(&key, &iv);
        for i in 0..10u32 {
            let msg = format!("message {i}");
            let sealed = tx.seal(ContentType::AppData, msg.as_bytes());
            let opened = rx.open(ContentType::AppData, &sealed).unwrap();
            assert_eq!(opened, msg.as_bytes());
        }
    }

    #[test]
    fn replay_detected_by_sequence() {
        let key = [7u8; 32];
        let iv = [3u8; 12];
        let mut tx = RecordKeys::new(&key, &iv);
        let mut rx = RecordKeys::new(&key, &iv);
        let sealed = tx.seal(ContentType::AppData, b"once");
        rx.open(ContentType::AppData, &sealed).unwrap();
        // Replaying the same ciphertext fails: the nonce has moved on.
        assert_eq!(
            rx.open(ContentType::AppData, &sealed),
            Err(TlsError::Decrypt)
        );
    }

    #[test]
    fn type_confusion_detected() {
        let key = [7u8; 32];
        let iv = [3u8; 12];
        let mut tx = RecordKeys::new(&key, &iv);
        let mut rx = RecordKeys::new(&key, &iv);
        let sealed = tx.seal(ContentType::AppData, b"x");
        assert_eq!(
            rx.open(ContentType::Handshake, &sealed),
            Err(TlsError::Decrypt)
        );
    }
}

//! RA-TLS: enclave quotes as certificate extensions, and the client
//! policy that verifies them during the handshake.
//!
//! Following Knauth et al.'s RA-TLS design (and the lexe exemplar in
//! SNIPPETS.md), the enclave generates its TLS keypair inside, the
//! platform's quoting enclave signs a quote whose `report_data`
//! commits to SHA-256 of the TLS public key, and the quote travels as
//! a typed extension ([`EXT_SGX_QUOTE`]) in the [`Certificate`]'s
//! extension block. Clients evaluate an [`AttestationPolicy`] against
//! the presented certificate *after* CA/subject verification and
//! *before* sending Finished, so no application byte ever flows to an
//! unattested endpoint.
//!
//! Divergences from DCAP are deliberate and simulated: the quoting
//! root is a plain Ed25519 key instead of a PCK chain, and freshness
//! is a signed issuance timestamp + TTL instead of TCB/CRL evaluation.

use std::collections::HashSet;
use std::sync::Mutex;
use std::time::{Duration, SystemTime, UNIX_EPOCH};

use libseal_crypto::ed25519::VerifyingKey;
use libseal_crypto::sha2::Sha256;
use libseal_sgxsim::attest::{AttestationService, Quote};

use crate::cert::{Certificate, Extension};

/// Extension type carrying an sgxsim enclave quote.
pub const EXT_SGX_QUOTE: u16 = 0x5158; // "QX"

/// Version tag leading the serialized quote.
const QUOTE_WIRE_VERSION: u16 = 1;

/// Serialized quote length: version + measurement + signer +
/// report_data + issued_at_ms + signature.
const QUOTE_WIRE_LEN: usize = 2 + 32 + 32 + 64 + 8 + 64;

/// Tolerated forward clock skew when judging quote freshness: a quote
/// dated slightly in the future (issuer clock ahead of the verifier's)
/// is not evidence of staleness.
const MAX_CLOCK_SKEW: Duration = Duration::from_secs(60);

/// Why an attestation check failed. Every variant maps to a distinct
/// telemetry reason (see [`AttestationError::reason`]) so operators
/// can tell a stale fleet from a rogue one.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AttestationError {
    /// The certificate carries no quote extension.
    MissingQuote,
    /// The quote extension exists but does not parse.
    MalformedQuote,
    /// The certificate carries a critical extension the verifier does
    /// not understand.
    UnknownCriticalExtension(u16),
    /// The quote signature does not verify under any trusted quoting
    /// root.
    UntrustedRoot,
    /// The quoted MRENCLAVE is not in the pinned set.
    WrongMeasurement,
    /// The quoted MRSIGNER is not in the pinned set.
    WrongSigner,
    /// The quote is older than the policy's maximum age.
    StaleQuote,
    /// The quote's report data does not commit to the certificate's
    /// public key — the quote was minted for some other key.
    ReportDataMismatch,
}

impl AttestationError {
    /// Stable, bounded telemetry label for this rejection reason.
    /// The set is closed by construction, so per-reason counters keyed
    /// on it have fixed cardinality.
    pub fn reason(&self) -> &'static str {
        match self {
            AttestationError::MissingQuote => "missing_quote",
            AttestationError::MalformedQuote => "malformed_quote",
            AttestationError::UnknownCriticalExtension(_) => "unknown_critical",
            AttestationError::UntrustedRoot => "untrusted_root",
            AttestationError::WrongMeasurement => "wrong_measurement",
            AttestationError::WrongSigner => "wrong_signer",
            AttestationError::StaleQuote => "stale_quote",
            AttestationError::ReportDataMismatch => "report_data_mismatch",
        }
    }
}

impl std::fmt::Display for AttestationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AttestationError::MissingQuote => write!(f, "certificate carries no quote"),
            AttestationError::MalformedQuote => write!(f, "quote extension does not parse"),
            AttestationError::UnknownCriticalExtension(t) => {
                write!(f, "unknown critical extension {t:#06x}")
            }
            AttestationError::UntrustedRoot => write!(f, "quote not signed by a trusted root"),
            AttestationError::WrongMeasurement => write!(f, "enclave measurement not pinned"),
            AttestationError::WrongSigner => write!(f, "enclave signer not pinned"),
            AttestationError::StaleQuote => write!(f, "quote exceeds the policy's maximum age"),
            AttestationError::ReportDataMismatch => {
                write!(f, "quote does not commit to the certificate key")
            }
        }
    }
}

impl std::error::Error for AttestationError {}

/// Serializes/parses a [`Quote`] to and from certificate-extension
/// bytes (the `SgxAttestationExtension` analogue).
pub struct AttestationExtension;

impl AttestationExtension {
    /// Packs `quote` into a certificate [`Extension`]. Non-critical,
    /// like the RA-TLS X.509 extension: clients that do not attest
    /// still interoperate.
    pub fn to_extension(quote: &Quote) -> Extension {
        let mut data = Vec::with_capacity(QUOTE_WIRE_LEN);
        data.extend_from_slice(&QUOTE_WIRE_VERSION.to_le_bytes());
        data.extend_from_slice(&quote.measurement);
        data.extend_from_slice(&quote.signer);
        data.extend_from_slice(&quote.report_data);
        data.extend_from_slice(&quote.issued_at_ms.to_le_bytes());
        data.extend_from_slice(&quote.signature);
        Extension {
            ext_type: EXT_SGX_QUOTE,
            critical: false,
            data,
        }
    }

    /// Parses extension bytes back into a [`Quote`].
    ///
    /// # Errors
    ///
    /// [`AttestationError::MalformedQuote`] on any length or version
    /// mismatch.
    pub fn from_bytes(data: &[u8]) -> Result<Quote, AttestationError> {
        if data.len() != QUOTE_WIRE_LEN {
            return Err(AttestationError::MalformedQuote);
        }
        let arr = |range: std::ops::Range<usize>| -> &[u8] { &data[range] };
        let version = u16::from_le_bytes([data[0], data[1]]);
        if version != QUOTE_WIRE_VERSION {
            return Err(AttestationError::MalformedQuote);
        }
        let field = |s: &[u8]| -> [u8; 32] { s.try_into().expect("fixed slice") };
        let mut report_data = [0u8; 64];
        report_data.copy_from_slice(arr(66..130));
        let mut issued = [0u8; 8];
        issued.copy_from_slice(arr(130..138));
        let mut signature = [0u8; 64];
        signature.copy_from_slice(arr(138..202));
        Ok(Quote {
            measurement: field(arr(2..34)),
            signer: field(arr(34..66)),
            report_data,
            issued_at_ms: u64::from_le_bytes(issued),
            signature,
        })
    }
}

/// Client-side verification policy for attested certificates (the
/// `EnclavePolicy` analogue), evaluated during the handshake.
pub struct AttestationPolicy {
    /// Quoting-enclave roots trusted to sign quotes.
    pub quoting_roots: Vec<VerifyingKey>,
    /// Pinned MRENCLAVE set; a quoted measurement must match one
    /// unless [`AttestationPolicy::trust_self`] is set.
    pub measurements: Vec<[u8; 32]>,
    /// Pinned MRSIGNER set; empty accepts any signer.
    pub signers: Vec<[u8; 32]>,
    /// Maximum accepted quote age.
    pub max_quote_age: Duration,
    /// Accept any measurement (tests and local development — the
    /// "trust whatever I am running" escape hatch).
    pub trust_self: bool,
    /// Signature-verification cache: SHA-256 digests of quote wire
    /// bytes whose signature already verified under one of
    /// `quoting_roots` (DCAP deployments cache verification collateral
    /// the same way). A quote is immutable once signed, so the
    /// Ed25519 check never needs repeating; measurement, signer,
    /// freshness and report-data binding are still evaluated on every
    /// handshake. Bounded by [`QUOTE_CACHE_CAP`].
    verified: Mutex<HashSet<[u8; 32]>>,
}

/// Verified-quote cache bound: a client pins a handful of
/// measurements, so a fleet presents few distinct quotes; the cache
/// resets wholesale if an adversary cycles past the cap.
const QUOTE_CACHE_CAP: usize = 64;

impl Clone for AttestationPolicy {
    fn clone(&self) -> AttestationPolicy {
        AttestationPolicy {
            quoting_roots: self.quoting_roots.clone(),
            measurements: self.measurements.clone(),
            signers: self.signers.clone(),
            max_quote_age: self.max_quote_age,
            trust_self: self.trust_self,
            // Cached verdicts are a per-instance acceleration, not
            // part of the policy's identity.
            verified: Mutex::new(HashSet::new()),
        }
    }
}

/// Default quote TTL: long enough that a service provisioned at boot
/// serves for a day, short enough that revoked fleets age out.
pub const DEFAULT_QUOTE_TTL: Duration = Duration::from_secs(24 * 60 * 60);

impl AttestationPolicy {
    /// A policy pinning an exact MRENCLAVE set under `root`.
    pub fn pinned(root: VerifyingKey, measurements: Vec<[u8; 32]>) -> AttestationPolicy {
        AttestationPolicy {
            quoting_roots: vec![root],
            measurements,
            signers: Vec::new(),
            max_quote_age: DEFAULT_QUOTE_TTL,
            trust_self: false,
            verified: Mutex::new(HashSet::new()),
        }
    }

    /// A policy accepting any measurement quoted under `root` — for
    /// tests and development only.
    pub fn trust_self(root: VerifyingKey) -> AttestationPolicy {
        AttestationPolicy {
            quoting_roots: vec![root],
            measurements: Vec::new(),
            signers: Vec::new(),
            max_quote_age: DEFAULT_QUOTE_TTL,
            trust_self: true,
            verified: Mutex::new(HashSet::new()),
        }
    }

    /// Additionally pins the MRSIGNER set.
    #[must_use]
    pub fn signers(mut self, signers: Vec<[u8; 32]>) -> AttestationPolicy {
        self.signers = signers;
        self
    }

    /// Overrides the maximum accepted quote age.
    #[must_use]
    pub fn max_quote_age(mut self, age: Duration) -> AttestationPolicy {
        self.max_quote_age = age;
        self
    }

    /// Evaluates the policy against `cert` at `now_ms` (unix
    /// milliseconds). Check order: quote presence, parse, root
    /// signature, measurement, signer, freshness, report-data
    /// commitment — each failure is a distinct typed error.
    ///
    /// # Errors
    ///
    /// The first [`AttestationError`] encountered, in check order.
    pub fn verify(&self, cert: &Certificate, now_ms: u64) -> Result<(), AttestationError> {
        if let Some(t) = cert.unknown_critical(&[EXT_SGX_QUOTE]) {
            return Err(AttestationError::UnknownCriticalExtension(t));
        }
        let ext = cert
            .extension(EXT_SGX_QUOTE)
            .ok_or(AttestationError::MissingQuote)?;
        let quote = AttestationExtension::from_bytes(&ext.data)?;
        // Ed25519 signature check, memoised: quotes are immutable
        // once signed, so a digest seen before under this policy's
        // roots needs no re-verification. Everything downstream
        // (measurement, signer, freshness, report-data) still runs on
        // every handshake — the cache can only skip the signature.
        let digest = Sha256::digest(&ext.data);
        let cached = self.verified.lock().expect("quote cache").contains(&digest);
        if !cached {
            let trusted = self.quoting_roots.iter().any(|root| {
                AttestationService::new(*root)
                    .verify(&quote, None)
                    .is_ok()
            });
            if !trusted {
                return Err(AttestationError::UntrustedRoot);
            }
            let mut verified = self.verified.lock().expect("quote cache");
            if verified.len() >= QUOTE_CACHE_CAP {
                verified.clear();
            }
            verified.insert(digest);
        }
        if !self.trust_self && !self.measurements.contains(&quote.measurement) {
            return Err(AttestationError::WrongMeasurement);
        }
        if !self.signers.is_empty() && !self.signers.contains(&quote.signer) {
            return Err(AttestationError::WrongSigner);
        }
        let max_age_ms = self.max_quote_age.as_millis() as u64;
        let skew_ms = MAX_CLOCK_SKEW.as_millis() as u64;
        let fresh = quote.issued_at_ms <= now_ms.saturating_add(skew_ms)
            && now_ms.saturating_sub(quote.issued_at_ms) <= max_age_ms;
        if !fresh {
            return Err(AttestationError::StaleQuote);
        }
        if quote.report_data[..32] != Sha256::digest(&cert.pubkey) {
            return Err(AttestationError::ReportDataMismatch);
        }
        Ok(())
    }
}

/// Current unix time in milliseconds — the handshake's freshness
/// clock.
pub fn unix_now_ms() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cert::CertificateAuthority;
    use libseal_sgxsim::attest::QuotingEnclave;
    use libseal_sgxsim::cost::CostModel;
    use libseal_sgxsim::enclave::EnclaveBuilder;

    fn attested_cert(
        ca: &CertificateAuthority,
        qe: &QuotingEnclave,
        identity: &[u8],
        issued_at_ms: u64,
    ) -> Certificate {
        let enclave = EnclaveBuilder::new(identity)
            .cost_model(CostModel::free())
            .build(|_| ());
        let key = libseal_crypto::ed25519::SigningKey::from_seed(&[5u8; 32]);
        let pubkey = *key.verifying_key().as_bytes();
        let mut report = [0u8; 64];
        report[..32].copy_from_slice(&Sha256::digest(&pubkey));
        let quote = qe.quote_at(enclave.services(), &report, issued_at_ms);
        ca.issue_with_extensions(
            "svc.test",
            &pubkey,
            vec![AttestationExtension::to_extension(&quote)],
        )
        .unwrap()
    }

    #[test]
    fn quote_roundtrip_through_extension() {
        let qe = QuotingEnclave::new(&[1u8; 32]);
        let enclave = EnclaveBuilder::new(b"svc")
            .cost_model(CostModel::free())
            .build(|_| ());
        let quote = qe.quote_at(enclave.services(), &[9u8; 64], 12345);
        let ext = AttestationExtension::to_extension(&quote);
        assert_eq!(ext.ext_type, EXT_SGX_QUOTE);
        assert!(!ext.critical);
        let parsed = AttestationExtension::from_bytes(&ext.data).unwrap();
        assert_eq!(parsed, quote);
        assert_eq!(
            AttestationExtension::from_bytes(&ext.data[..ext.data.len() - 1]),
            Err(AttestationError::MalformedQuote)
        );
    }

    #[test]
    fn policy_accepts_pinned_measurement() {
        let ca = CertificateAuthority::new("CA", &[2u8; 32]);
        let qe = QuotingEnclave::new(&[1u8; 32]);
        let cert = attested_cert(&ca, &qe, b"svc", 1_000_000);
        let enclave = EnclaveBuilder::new(b"svc")
            .cost_model(CostModel::free())
            .build(|_| ());
        let policy = AttestationPolicy::pinned(qe.root_key(), vec![*enclave.measurement()]);
        policy.verify(&cert, 1_000_000).unwrap();
    }

    #[test]
    fn policy_rejects_each_failure_distinctly() {
        let ca = CertificateAuthority::new("CA", &[2u8; 32]);
        let qe = QuotingEnclave::new(&[1u8; 32]);
        let rogue_qe = QuotingEnclave::new(&[9u8; 32]);
        let enclave = EnclaveBuilder::new(b"svc")
            .cost_model(CostModel::free())
            .build(|_| ());
        let m = *enclave.measurement();
        let now = 1_000_000u64;
        let cert = attested_cert(&ca, &qe, b"svc", now);

        // Missing quote.
        let (_, bare) = ca.issue_identity("svc.test", &[5u8; 32]).unwrap();
        let policy = AttestationPolicy::pinned(qe.root_key(), vec![m]);
        assert_eq!(policy.verify(&bare, now), Err(AttestationError::MissingQuote));

        // Untrusted root.
        let rogue_policy = AttestationPolicy::pinned(rogue_qe.root_key(), vec![m]);
        assert_eq!(
            rogue_policy.verify(&cert, now),
            Err(AttestationError::UntrustedRoot)
        );

        // Wrong measurement.
        let other = attested_cert(&ca, &qe, b"other-code", now);
        assert_eq!(
            policy.verify(&other, now),
            Err(AttestationError::WrongMeasurement)
        );

        // Wrong signer.
        let strict = policy.clone().signers(vec![[0xEE; 32]]);
        assert_eq!(strict.verify(&cert, now), Err(AttestationError::WrongSigner));

        // Stale quote.
        let ttl_ms = DEFAULT_QUOTE_TTL.as_millis() as u64;
        assert_eq!(
            policy.verify(&cert, now + ttl_ms + 1),
            Err(AttestationError::StaleQuote)
        );
        // Far-future quotes are just as suspect.
        let future = attested_cert(&ca, &qe, b"svc", now + 10 * 60 * 1000);
        assert_eq!(policy.verify(&future, now), Err(AttestationError::StaleQuote));

        // Report data minted for a different key.
        let enclave2 = EnclaveBuilder::new(b"svc")
            .cost_model(CostModel::free())
            .build(|_| ());
        let other_key = libseal_crypto::ed25519::SigningKey::from_seed(&[6u8; 32]);
        let mut report = [0u8; 64];
        report[..32].copy_from_slice(&Sha256::digest(other_key.verifying_key().as_bytes()));
        let quote = qe.quote_at(enclave2.services(), &report, now);
        let key = libseal_crypto::ed25519::SigningKey::from_seed(&[5u8; 32]);
        let mismatched = ca
            .issue_with_extensions(
                "svc.test",
                key.verifying_key().as_bytes(),
                vec![AttestationExtension::to_extension(&quote)],
            )
            .unwrap();
        assert_eq!(
            policy.verify(&mismatched, now),
            Err(AttestationError::ReportDataMismatch)
        );

        // Unknown critical extension.
        let mut with_critical = cert.clone();
        with_critical.extensions.push(crate::cert::Extension {
            ext_type: 0xDEAD,
            critical: true,
            data: Vec::new(),
        });
        assert_eq!(
            policy.verify(&with_critical, now),
            Err(AttestationError::UnknownCriticalExtension(0xDEAD))
        );
    }

    #[test]
    fn signature_cache_skips_only_the_signature() {
        let ca = CertificateAuthority::new("CA", &[2u8; 32]);
        let qe = QuotingEnclave::new(&[1u8; 32]);
        let enclave = EnclaveBuilder::new(b"svc")
            .cost_model(CostModel::free())
            .build(|_| ());
        let now = 1_000_000u64;
        let cert = attested_cert(&ca, &qe, b"svc", now);
        let policy = AttestationPolicy::pinned(qe.root_key(), vec![*enclave.measurement()]);

        // First verify populates the cache; a repeat still passes.
        policy.verify(&cert, now).unwrap();
        assert!(!policy.verified.lock().unwrap().is_empty());
        policy.verify(&cert, now).unwrap();

        // A cached signature verdict must not launder freshness: the
        // same quote judged past its TTL is still stale.
        let ttl_ms = DEFAULT_QUOTE_TTL.as_millis() as u64;
        assert_eq!(
            policy.verify(&cert, now + ttl_ms + 1),
            Err(AttestationError::StaleQuote)
        );

        // ...nor measurement pinning: a second policy that cached the
        // quote under trust_self is irrelevant — caches are
        // per-instance, and a pinned policy re-checks the measurement
        // on every call even after its own cache hit.
        let other = attested_cert(&ca, &qe, b"other-code", now);
        let lax = AttestationPolicy::trust_self(qe.root_key());
        lax.verify(&other, now).unwrap();
        assert_eq!(
            policy.verify(&other, now),
            Err(AttestationError::WrongMeasurement)
        );
    }

    #[test]
    fn trust_self_accepts_any_measurement() {
        let ca = CertificateAuthority::new("CA", &[2u8; 32]);
        let qe = QuotingEnclave::new(&[1u8; 32]);
        let cert = attested_cert(&ca, &qe, b"whatever-code", 1_000);
        let policy = AttestationPolicy::trust_self(qe.root_key());
        policy.verify(&cert, 1_000).unwrap();
    }
}

//! The STLS connection state machine with a memory-BIO interface.
//!
//! Handshake (TLS-1.3-flavoured, one round trip):
//!
//! ```text
//! C -> S  ClientHello   { random, X25519 share }
//! S -> C  ServerHello   { random, X25519 share }          (plaintext)
//!         --- both sides derive record keys here ---
//! S -> C  Certificate, [CertificateRequest,] CertVerify, Finished
//! C -> S  [Certificate, CertVerify,] Finished              (encrypted)
//! ```
//!
//! CertVerify signs the running transcript hash; Finished is an HMAC
//! over it, binding the handshake to the certificate keys end-to-end.

use std::collections::HashMap;
use std::sync::Arc;

use libseal_crypto::ed25519::{SigningKey, VerifyingKey};
use libseal_crypto::hmac::HmacSha256;
use libseal_crypto::sha2::Sha256;
use libseal_crypto::{hkdf, x25519};

use crate::attest::{self, AttestationError, AttestationPolicy, EXT_SGX_QUOTE};
use crate::cert::Certificate;
use crate::record::{self, ContentType, RecordKeys, MAX_RECORD};
use crate::{Result, TlsError};

/// Endpoint role.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Role {
    /// Initiates connections.
    Client,
    /// Accepts connections.
    Server,
}

/// Shared configuration (the `SSL_CTX` analogue).
#[derive(Clone)]
pub struct SslConfig {
    /// Endpoint role.
    pub role: Role,
    /// Our certificate (servers always; clients when doing client auth).
    pub cert: Option<Certificate>,
    /// Private key matching `cert`.
    pub key: Option<SigningKey>,
    /// Trusted CA roots for verifying the peer.
    pub ca_roots: Vec<VerifyingKey>,
    /// Whether to verify the peer's certificate. For servers this
    /// requests and requires a client certificate (the paper's defence
    /// against client impersonation, §6.3).
    pub verify_peer: bool,
    /// Expected peer subject (clients; None = accept any).
    pub expected_subject: Option<String>,
    /// RA-TLS policy (clients): the peer certificate must carry a
    /// quote satisfying it, evaluated after CA/subject verification
    /// and before Finished. `None` skips attestation.
    pub attestation: Option<Arc<AttestationPolicy>>,
}

impl SslConfig {
    /// Plain client config trusting `ca_roots`.
    pub fn client(ca_roots: Vec<VerifyingKey>) -> Arc<SslConfig> {
        Arc::new(SslConfig {
            role: Role::Client,
            cert: None,
            key: None,
            ca_roots,
            verify_peer: true,
            expected_subject: None,
            attestation: None,
        })
    }

    /// Server config with an identity.
    pub fn server(cert: Certificate, key: SigningKey) -> Arc<SslConfig> {
        Arc::new(SslConfig {
            role: Role::Server,
            cert: Some(cert),
            key: Some(key),
            ca_roots: Vec::new(),
            verify_peer: false,
            expected_subject: None,
            attestation: None,
        })
    }
}

/// Handshake progress.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HandshakeState {
    /// Nothing sent yet.
    Start,
    /// Client: waiting for the server flight.
    AwaitServerFlight,
    /// Server: waiting for ClientHello.
    AwaitClientHello,
    /// Server: waiting for the client's Finished (and certificate).
    AwaitClientFinished,
    /// Handshake complete; application data flows.
    Established,
    /// Closed by close_notify.
    Closed,
    /// Fatal failure; connection unusable.
    Failed,
}

/// Outcome of [`Ssl::ssl_read`].
#[derive(Debug, PartialEq, Eq)]
pub enum ReadOutcome {
    /// Decrypted application bytes.
    Data(Vec<u8>),
    /// No full record buffered; feed more input.
    WantRead,
    /// Peer sent close_notify.
    Closed,
}

// Handshake message type codes.
const MSG_CLIENT_HELLO: u8 = 1;
const MSG_SERVER_HELLO: u8 = 2;
const MSG_CERT: u8 = 11;
const MSG_CERT_REQUEST: u8 = 13;
const MSG_CERT_VERIFY: u8 = 15;
const MSG_FINISHED: u8 = 20;

/// Info-callback state codes (OpenSSL-flavoured).
pub const INFO_HANDSHAKE_START: i32 = 0x10;
/// Handshake-done code for the info callback.
pub const INFO_HANDSHAKE_DONE: i32 = 0x20;

/// Per-connection state (the `SSL` analogue).
pub struct Ssl {
    config: Arc<SslConfig>,
    state: HandshakeState,
    /// Ciphertext from the peer, not yet parsed.
    in_buf: Vec<u8>,
    /// Ciphertext for the peer, not yet taken.
    out_buf: Vec<u8>,
    /// Decrypted application bytes ready for `ssl_read`.
    plain_in: Vec<u8>,
    kx_priv: [u8; 32],
    transcript: Vec<u8>,
    write_keys: Option<RecordKeys>,
    read_keys: Option<RecordKeys>,
    fin_key_local: [u8; 32],
    fin_key_peer: [u8; 32],
    peer_cert: Option<Certificate>,
    client_cert_requested: bool,
    /// Application-specific storage (OpenSSL `ex_data`).
    pub ex_data: HashMap<u32, Vec<u8>>,
    info_callback: Option<Arc<dyn Fn(i32, i32) + Send + Sync>>,
    /// When the first `do_handshake` ran (handshake-duration metric).
    hs_start: Option<std::time::Instant>,
    hs_recorded: bool,
}

/// Process-wide TLS metrics.
struct TlsxMetrics {
    handshake_ns: libseal_telemetry::Histogram,
    records_sealed: libseal_telemetry::Counter,
    records_opened: libseal_telemetry::Counter,
}

fn tlsx_metrics() -> &'static TlsxMetrics {
    static M: std::sync::OnceLock<TlsxMetrics> = std::sync::OnceLock::new();
    M.get_or_init(|| TlsxMetrics {
        handshake_ns: libseal_telemetry::histogram("tlsx_handshake_ns"),
        records_sealed: libseal_telemetry::counter("tlsx_records_sealed_total"),
        records_opened: libseal_telemetry::counter("tlsx_records_opened_total"),
    })
}

/// Stable telemetry label for a fatal handshake failure. The label set
/// is closed (every arm returns a literal from this function), so the
/// per-reason counters minted below have bounded cardinality by
/// construction — no network input ever names a metric.
fn handshake_failure_reason(e: &TlsError) -> &'static str {
    match e {
        TlsError::Attestation(a) => match a {
            AttestationError::MissingQuote => "attestation_missing_quote",
            AttestationError::MalformedQuote => "attestation_malformed_quote",
            AttestationError::UnknownCriticalExtension(_) => "attestation_unknown_critical",
            AttestationError::UntrustedRoot => "attestation_untrusted_root",
            AttestationError::WrongMeasurement => "attestation_wrong_measurement",
            AttestationError::WrongSigner => "attestation_wrong_signer",
            AttestationError::StaleQuote => "attestation_stale_quote",
            AttestationError::ReportDataMismatch => "attestation_report_data_mismatch",
        },
        TlsError::Verification(m) => {
            // Verification messages are produced locally (never copied
            // from the peer), so matching on them is stable.
            if m.contains("subject mismatch") {
                "subject_mismatch"
            } else if m.contains("not signed by a trusted CA") {
                "untrusted_ca"
            } else if m.contains("CertVerify") {
                "cert_verify"
            } else if m.contains("Finished") {
                "finished_mismatch"
            } else if m.contains("client certificate required") {
                "client_cert_missing"
            } else {
                "verification_other"
            }
        }
        TlsError::Decrypt => "decrypt",
        TlsError::Protocol(_) => "protocol",
        TlsError::Closed | TlsError::WantRead | TlsError::WantWrite | TlsError::Io(_) => {
            "transport"
        }
    }
}

/// Charges the per-reason handshake-rejection counter
/// (`tlsx_verify_failures_total_<reason>`). Lives on the one choke
/// point every handshake driver shares ([`Ssl::do_handshake`]), so
/// blocking [`crate::stream::SslStream`], non-blocking
/// [`crate::stream::NbSslStream`] and in-enclave sessions all charge
/// it.
fn note_handshake_failure(e: &TlsError) {
    let reason = handshake_failure_reason(e);
    libseal_telemetry::counter(&format!("tlsx_verify_failures_total_{reason}")).inc();
}

impl Ssl {
    /// Creates a connection; `entropy` supplies the ephemeral key and
    /// hello randomness (64 bytes).
    pub fn new(config: Arc<SslConfig>, entropy: [u8; 64]) -> Ssl {
        let mut kx_priv = [0u8; 32];
        kx_priv.copy_from_slice(&entropy[..32]);
        let state = match config.role {
            Role::Client => HandshakeState::Start,
            Role::Server => HandshakeState::AwaitClientHello,
        };
        Ssl {
            config,
            state,
            in_buf: Vec::new(),
            out_buf: Vec::new(),
            plain_in: Vec::new(),
            kx_priv,
            transcript: Vec::new(),
            write_keys: None,
            read_keys: None,
            fin_key_local: [0u8; 32],
            fin_key_peer: [0u8; 32],
            peer_cert: None,
            client_cert_requested: false,
            ex_data: HashMap::new(),
            info_callback: None,
            hs_start: None,
            hs_recorded: false,
        }
    }

    /// Registers an info callback, invoked on handshake transitions
    /// (the LibSEAL secure-callback test surface, §4.1).
    pub fn set_info_callback(&mut self, cb: Arc<dyn Fn(i32, i32) + Send + Sync>) {
        self.info_callback = Some(cb);
    }

    fn info(&self, code: i32, arg: i32) {
        if let Some(cb) = &self.info_callback {
            cb(code, arg);
        }
    }

    /// Current handshake state.
    pub fn state(&self) -> HandshakeState {
        self.state
    }

    /// Whether the handshake has completed.
    pub fn is_established(&self) -> bool {
        self.state == HandshakeState::Established
    }

    /// The peer's verified certificate, if any.
    pub fn peer_certificate(&self) -> Option<&Certificate> {
        self.peer_cert.as_ref()
    }

    /// Feeds ciphertext received from the wire.
    pub fn provide_input(&mut self, data: &[u8]) {
        self.in_buf.extend_from_slice(data);
    }

    /// Takes ciphertext that must be sent on the wire.
    pub fn take_output(&mut self) -> Vec<u8> {
        std::mem::take(&mut self.out_buf)
    }

    /// Whether output bytes are pending.
    pub fn has_output(&self) -> bool {
        !self.out_buf.is_empty()
    }

    /// Drives the handshake as far as the buffered input allows.
    /// Returns `true` once established.
    ///
    /// # Errors
    ///
    /// Protocol and verification failures are fatal: the state moves
    /// to [`HandshakeState::Failed`].
    pub fn do_handshake(&mut self) -> Result<bool> {
        let start = *self.hs_start.get_or_insert_with(std::time::Instant::now);
        let r = self.do_handshake_inner();
        if let Err(e) = &r {
            // Charge only on the transition into Failed, so a caller
            // re-driving a dead session cannot inflate the counters.
            if self.state != HandshakeState::Failed {
                note_handshake_failure(e);
            }
            self.state = HandshakeState::Failed;
        }
        if matches!(r, Ok(true)) && !self.hs_recorded {
            // First do_handshake to established: the whole exchange,
            // including wait time between flights.
            tlsx_metrics().handshake_ns.record_duration(start.elapsed());
            self.hs_recorded = true;
        }
        r
    }

    fn do_handshake_inner(&mut self) -> Result<bool> {
        if self.state == HandshakeState::Start && self.config.role == Role::Client {
            self.info(INFO_HANDSHAKE_START, 0);
            self.send_client_hello();
            self.state = HandshakeState::AwaitServerFlight;
        }
        while self.state != HandshakeState::Established {
            match self.next_handshake_message()? {
                Some((t, body)) => self.process_handshake_message(t, &body)?,
                None => return Ok(false),
            }
        }
        Ok(true)
    }

    /// Encrypts and queues application data.
    ///
    /// # Errors
    ///
    /// [`TlsError::Protocol`] before the handshake completes.
    pub fn ssl_write(&mut self, data: &[u8]) -> Result<usize> {
        if self.state != HandshakeState::Established {
            return Err(TlsError::Protocol("ssl_write before handshake".into()));
        }
        for chunk in data.chunks(MAX_RECORD) {
            let keys = self.write_keys.as_mut().expect("established has keys");
            let sealed = keys.seal(ContentType::AppData, chunk);
            tlsx_metrics().records_sealed.inc();
            self.out_buf
                .extend_from_slice(&record::frame(ContentType::AppData, &sealed));
        }
        Ok(data.len())
    }

    /// Returns decrypted application data, draining buffered records.
    ///
    /// # Errors
    ///
    /// Decryption and protocol failures are fatal.
    pub fn ssl_read(&mut self) -> Result<ReadOutcome> {
        if self.state == HandshakeState::Closed {
            return Ok(ReadOutcome::Closed);
        }
        if self.state != HandshakeState::Established {
            // Still handshaking: make progress first.
            self.do_handshake()?;
            if self.state != HandshakeState::Established {
                return Ok(ReadOutcome::WantRead);
            }
        }
        loop {
            if !self.plain_in.is_empty() {
                return Ok(ReadOutcome::Data(std::mem::take(&mut self.plain_in)));
            }
            match record::parse(&self.in_buf)? {
                None => return Ok(ReadOutcome::WantRead),
                Some((rec, used)) => {
                    self.in_buf.drain(..used);
                    match rec.ctype {
                        ContentType::AppData => {
                            let keys = self.read_keys.as_mut().expect("established has keys");
                            let plain = keys.open(ContentType::AppData, &rec.payload)?;
                            tlsx_metrics().records_opened.inc();
                            self.plain_in.extend_from_slice(&plain);
                        }
                        ContentType::Alert => {
                            let keys = self.read_keys.as_mut().expect("established has keys");
                            let plain = keys.open(ContentType::Alert, &rec.payload)?;
                            tlsx_metrics().records_opened.inc();
                            if plain.first() == Some(&0) {
                                self.state = HandshakeState::Closed;
                                return Ok(ReadOutcome::Closed);
                            }
                            return Err(TlsError::Protocol("fatal alert".into()));
                        }
                        ContentType::Handshake => {
                            return Err(TlsError::Protocol("unexpected handshake record".into()))
                        }
                    }
                }
            }
        }
    }

    /// Queues a close_notify alert.
    pub fn send_close(&mut self) {
        if self.state == HandshakeState::Established {
            if let Some(keys) = self.write_keys.as_mut() {
                let sealed = keys.seal(ContentType::Alert, &[0]);
                tlsx_metrics().records_sealed.inc();
                self.out_buf
                    .extend_from_slice(&record::frame(ContentType::Alert, &sealed));
            }
            self.state = HandshakeState::Closed;
        }
    }

    // --- handshake internals -------------------------------------------

    fn transcript_hash(&self) -> [u8; 32] {
        Sha256::digest(&self.transcript)
    }

    fn next_handshake_message(&mut self) -> Result<Option<(u8, Vec<u8>)>> {
        let Some((rec, used)) = record::parse(&self.in_buf)? else {
            return Ok(None);
        };
        if rec.ctype != ContentType::Handshake {
            return Err(TlsError::Protocol("expected handshake record".into()));
        }
        self.in_buf.drain(..used);
        // Encrypted after keys are installed.
        let encrypted = self.handshake_encrypted();
        let payload = match self.read_keys.as_mut() {
            Some(keys) if encrypted => keys.open(ContentType::Handshake, &rec.payload)?,
            _ => rec.payload,
        };
        if payload.len() < 4 {
            return Err(TlsError::Protocol("short handshake message".into()));
        }
        let t = payload[0];
        let len = u32::from_be_bytes([0, payload[1], payload[2], payload[3]]) as usize;
        if payload.len() != 4 + len {
            return Err(TlsError::Protocol("handshake length mismatch".into()));
        }
        Ok(Some((t, payload[4..].to_vec())))
    }

    fn handshake_encrypted(&self) -> bool {
        // Everything after ServerHello is encrypted; keys exist exactly
        // then.
        self.read_keys.is_some()
    }

    fn queue_handshake(&mut self, t: u8, body: &[u8]) {
        let mut msg = Vec::with_capacity(4 + body.len());
        msg.push(t);
        let len = (body.len() as u32).to_be_bytes();
        msg.extend_from_slice(&len[1..4]);
        msg.extend_from_slice(body);
        self.transcript.extend_from_slice(&msg);
        let encrypted = self.write_keys.is_some() && t != MSG_CLIENT_HELLO && t != MSG_SERVER_HELLO;
        if encrypted {
            let keys = self.write_keys.as_mut().expect("checked");
            let sealed = keys.seal(ContentType::Handshake, &msg);
            self.out_buf
                .extend_from_slice(&record::frame(ContentType::Handshake, &sealed));
        } else {
            self.out_buf
                .extend_from_slice(&record::frame(ContentType::Handshake, &msg));
        }
    }

    fn send_client_hello(&mut self) {
        let mut body = Vec::with_capacity(64);
        let pubkey = x25519::public_key(&self.kx_priv);
        body.extend_from_slice(&pubkey);
        self.queue_handshake(MSG_CLIENT_HELLO, &body);
    }

    fn derive_keys(&mut self, peer_share: &[u8; 32]) {
        let shared = x25519::shared_secret(&self.kx_priv, peer_share);
        let prk = hkdf::extract(b"stls v1", &shared);
        let hs_hash = self.transcript_hash();

        let derive = |label: &[u8]| -> ([u8; 32], [u8; 12]) {
            let mut info = label.to_vec();
            info.extend_from_slice(&hs_hash);
            let mut out = [0u8; 44];
            hkdf::expand(&prk, &info, &mut out);
            let mut key = [0u8; 32];
            key.copy_from_slice(&out[..32]);
            let mut iv = [0u8; 12];
            iv.copy_from_slice(&out[32..]);
            (key, iv)
        };
        let (c_key, c_iv) = derive(b"c ap");
        let (s_key, s_iv) = derive(b"s ap");
        let derive32 = |label: &[u8]| -> [u8; 32] {
            let mut info = label.to_vec();
            info.extend_from_slice(&hs_hash);
            let mut out = [0u8; 32];
            hkdf::expand(&prk, &info, &mut out);
            out
        };
        let fin_c = derive32(b"fin c");
        let fin_s = derive32(b"fin s");
        match self.config.role {
            Role::Client => {
                self.write_keys = Some(RecordKeys::new(&c_key, &c_iv));
                self.read_keys = Some(RecordKeys::new(&s_key, &s_iv));
                self.fin_key_local = fin_c;
                self.fin_key_peer = fin_s;
            }
            Role::Server => {
                self.write_keys = Some(RecordKeys::new(&s_key, &s_iv));
                self.read_keys = Some(RecordKeys::new(&c_key, &c_iv));
                self.fin_key_local = fin_s;
                self.fin_key_peer = fin_c;
            }
        }
    }

    fn cert_verify_payload(hash: &[u8; 32]) -> Vec<u8> {
        let mut p = b"stls-certverify:".to_vec();
        p.extend_from_slice(hash);
        p
    }

    /// Extracts the 32-byte X25519 share leading a hello body.
    /// Network-supplied, so a short body is a typed protocol error.
    fn key_share(body: &[u8]) -> Result<[u8; 32]> {
        body.get(..32)
            .and_then(|s| s.try_into().ok())
            .ok_or_else(|| TlsError::Protocol("hello body shorter than key share".into()))
    }

    fn process_handshake_message(&mut self, t: u8, body: &[u8]) -> Result<()> {
        match (self.config.role, self.state, t) {
            (Role::Server, HandshakeState::AwaitClientHello, MSG_CLIENT_HELLO) => {
                self.info(INFO_HANDSHAKE_START, 0);
                let peer_share = Self::key_share(body)
                    .map_err(|_| TlsError::Protocol("short ClientHello".into()))?;
                // Append the peer's message to the transcript exactly
                // as received.
                self.append_peer_transcript(t, body);

                // ServerHello with our share.
                let my_share = x25519::public_key(&self.kx_priv);
                self.queue_handshake(MSG_SERVER_HELLO, &my_share);
                self.derive_keys(&peer_share);

                // Certificate.
                let cert = self
                    .config
                    .cert
                    .clone()
                    .ok_or_else(|| TlsError::Protocol("server has no certificate".into()))?;
                self.queue_handshake(MSG_CERT, &cert.encode());
                if self.config.verify_peer {
                    self.queue_handshake(MSG_CERT_REQUEST, &[]);
                }
                // CertVerify over the transcript so far.
                let key = self
                    .config
                    .key
                    .clone()
                    .ok_or_else(|| TlsError::Protocol("server has no key".into()))?;
                let sig = key.sign(&Self::cert_verify_payload(&self.transcript_hash()));
                self.queue_handshake(MSG_CERT_VERIFY, &sig);
                // Finished.
                let fin = HmacSha256::mac(&self.fin_key_local, &self.transcript_hash());
                self.queue_handshake(MSG_FINISHED, &fin);
                self.state = HandshakeState::AwaitClientFinished;
                Ok(())
            }
            (Role::Client, HandshakeState::AwaitServerFlight, MSG_SERVER_HELLO) => {
                let peer_share = Self::key_share(body)
                    .map_err(|_| TlsError::Protocol("short ServerHello".into()))?;
                self.append_peer_transcript(t, body);
                self.derive_keys(&peer_share);
                Ok(())
            }
            (Role::Client, HandshakeState::AwaitServerFlight, MSG_CERT) => {
                self.append_peer_transcript(t, body);
                let cert = Certificate::decode(body)?;
                if self.config.verify_peer {
                    let ok = self
                        .config
                        .ca_roots
                        .iter()
                        .any(|ca| cert.verify(ca).is_ok());
                    if !ok {
                        return Err(TlsError::Verification(
                            "server certificate not signed by a trusted CA".into(),
                        ));
                    }
                    if let Some(expected) = &self.config.expected_subject {
                        if &cert.subject != expected {
                            return Err(TlsError::Verification(format!(
                                "subject mismatch: got {}, expected {expected}",
                                cert.subject
                            )));
                        }
                    }
                    // Criticality semantics hold even without a
                    // policy: a certificate demanding understanding of
                    // an extension we lack must not be trusted.
                    if let Some(t) = cert.unknown_critical(&[EXT_SGX_QUOTE]) {
                        return Err(TlsError::Attestation(
                            AttestationError::UnknownCriticalExtension(t),
                        ));
                    }
                    // RA-TLS policy evaluation: after CA and subject
                    // checks, before our Finished ever leaves — a
                    // failing quote aborts the handshake with no
                    // application byte exchanged.
                    if let Some(policy) = &self.config.attestation {
                        policy
                            .verify(&cert, attest::unix_now_ms())
                            .map_err(TlsError::Attestation)?;
                    }
                }
                self.peer_cert = Some(cert);
                Ok(())
            }
            (Role::Client, HandshakeState::AwaitServerFlight, MSG_CERT_REQUEST) => {
                self.append_peer_transcript(t, body);
                self.client_cert_requested = true;
                Ok(())
            }
            (Role::Client, HandshakeState::AwaitServerFlight, MSG_CERT_VERIFY) => {
                // Verify over the transcript NOT including this message.
                let hash = self.transcript_hash();
                let cert = self
                    .peer_cert
                    .as_ref()
                    .ok_or_else(|| TlsError::Protocol("CertVerify before Certificate".into()))?;
                let sig: [u8; 64] = body
                    .try_into()
                    .map_err(|_| TlsError::Protocol("bad CertVerify length".into()))?;
                VerifyingKey::from_bytes(&cert.pubkey)
                    .verify(&Self::cert_verify_payload(&hash), &sig)
                    .map_err(|_| TlsError::Verification("CertVerify failed".into()))?;
                self.append_peer_transcript(t, body);
                Ok(())
            }
            (Role::Client, HandshakeState::AwaitServerFlight, MSG_FINISHED) => {
                let expected = HmacSha256::mac(&self.fin_key_peer, &self.transcript_hash());
                if !libseal_crypto::ct::eq(&expected, body) {
                    return Err(TlsError::Verification("server Finished mismatch".into()));
                }
                self.append_peer_transcript(t, body);
                // Client flight: optional certificate, then Finished.
                if self.client_cert_requested {
                    let cert = self.config.cert.clone().ok_or_else(|| {
                        TlsError::Protocol("client certificate required but not configured".into())
                    })?;
                    let key = self.config.key.clone().ok_or_else(|| {
                        TlsError::Protocol("client key required but not configured".into())
                    })?;
                    self.queue_handshake(MSG_CERT, &cert.encode());
                    let sig = key.sign(&Self::cert_verify_payload(&self.transcript_hash()));
                    self.queue_handshake(MSG_CERT_VERIFY, &sig);
                }
                let fin = HmacSha256::mac(&self.fin_key_local, &self.transcript_hash());
                self.queue_handshake(MSG_FINISHED, &fin);
                self.state = HandshakeState::Established;
                self.info(INFO_HANDSHAKE_DONE, 0);
                Ok(())
            }
            (Role::Server, HandshakeState::AwaitClientFinished, MSG_CERT) => {
                self.append_peer_transcript(t, body);
                let cert = Certificate::decode(body)?;
                let ok = self
                    .config
                    .ca_roots
                    .iter()
                    .any(|ca| cert.verify(ca).is_ok());
                if !ok {
                    return Err(TlsError::Verification(
                        "client certificate not signed by a trusted CA".into(),
                    ));
                }
                if let Some(t) = cert.unknown_critical(&[EXT_SGX_QUOTE]) {
                    return Err(TlsError::Attestation(
                        AttestationError::UnknownCriticalExtension(t),
                    ));
                }
                self.peer_cert = Some(cert);
                Ok(())
            }
            (Role::Server, HandshakeState::AwaitClientFinished, MSG_CERT_VERIFY) => {
                let hash = self.transcript_hash();
                let cert = self
                    .peer_cert
                    .as_ref()
                    .ok_or_else(|| TlsError::Protocol("CertVerify before Certificate".into()))?;
                let sig: [u8; 64] = body
                    .try_into()
                    .map_err(|_| TlsError::Protocol("bad CertVerify length".into()))?;
                VerifyingKey::from_bytes(&cert.pubkey)
                    .verify(&Self::cert_verify_payload(&hash), &sig)
                    .map_err(|_| TlsError::Verification("client CertVerify failed".into()))?;
                self.append_peer_transcript(t, body);
                Ok(())
            }
            (Role::Server, HandshakeState::AwaitClientFinished, MSG_FINISHED) => {
                if self.config.verify_peer && self.peer_cert.is_none() {
                    return Err(TlsError::Verification(
                        "client certificate required but not presented".into(),
                    ));
                }
                let expected = HmacSha256::mac(&self.fin_key_peer, &self.transcript_hash());
                if !libseal_crypto::ct::eq(&expected, body) {
                    return Err(TlsError::Verification("client Finished mismatch".into()));
                }
                self.append_peer_transcript(t, body);
                self.state = HandshakeState::Established;
                self.info(INFO_HANDSHAKE_DONE, 0);
                Ok(())
            }
            (_, state, t) => Err(TlsError::Protocol(format!(
                "unexpected handshake message {t} in state {state:?}"
            ))),
        }
    }

    fn append_peer_transcript(&mut self, t: u8, body: &[u8]) {
        let mut msg = Vec::with_capacity(4 + body.len());
        msg.push(t);
        let len = (body.len() as u32).to_be_bytes();
        msg.extend_from_slice(&len[1..4]);
        msg.extend_from_slice(body);
        self.transcript.extend_from_slice(&msg);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cert::CertificateAuthority;

    fn pump(a: &mut Ssl, b: &mut Ssl) {
        // Move bytes between the two endpoints until both go quiet.
        for _ in 0..20 {
            let out_a = a.take_output();
            if !out_a.is_empty() {
                b.provide_input(&out_a);
            }
            let _ = b.do_handshake();
            let out_b = b.take_output();
            if !out_b.is_empty() {
                a.provide_input(&out_b);
            }
            let _ = a.do_handshake();
            if !a.has_output() && !b.has_output() {
                break;
            }
        }
    }

    fn handshake_pair(client_cfg: Arc<SslConfig>, server_cfg: Arc<SslConfig>) -> (Ssl, Ssl) {
        let mut client = Ssl::new(client_cfg, [1u8; 64]);
        let mut server = Ssl::new(server_cfg, [2u8; 64]);
        client.do_handshake().unwrap();
        pump(&mut client, &mut server);
        (client, server)
    }

    fn test_ca() -> CertificateAuthority {
        CertificateAuthority::new("RootCA", &[0x33; 32])
    }

    #[test]
    fn full_handshake_and_data() {
        let ca = test_ca();
        let (key, cert) = ca.issue_identity("server.test", &[4u8; 32]).unwrap();
        let (mut client, mut server) = handshake_pair(
            SslConfig::client(vec![ca.root_key()]),
            SslConfig::server(cert, key),
        );
        assert!(client.is_established());
        assert!(server.is_established());

        client.ssl_write(b"hello from client").unwrap();
        let wire = client.take_output();
        server.provide_input(&wire);
        match server.ssl_read().unwrap() {
            ReadOutcome::Data(d) => assert_eq!(d, b"hello from client"),
            other => panic!("{other:?}"),
        }

        server.ssl_write(b"hello from server").unwrap();
        let wire = server.take_output();
        client.provide_input(&wire);
        match client.ssl_read().unwrap() {
            ReadOutcome::Data(d) => assert_eq!(d, b"hello from server"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn untrusted_server_cert_rejected() {
        let ca = test_ca();
        let rogue = CertificateAuthority::new("RogueCA", &[0x44; 32]);
        let (key, cert) = rogue.issue_identity("server.test", &[4u8; 32]).unwrap();
        let mut client = Ssl::new(SslConfig::client(vec![ca.root_key()]), [1u8; 64]);
        let mut server = Ssl::new(SslConfig::server(cert, key), [2u8; 64]);
        client.do_handshake().unwrap();
        pump(&mut client, &mut server);
        assert_eq!(client.state(), HandshakeState::Failed);
    }

    #[test]
    fn subject_mismatch_rejected_and_counted() {
        let ca = test_ca();
        let (key, cert) = ca.issue_identity("other.test", &[4u8; 32]).unwrap();
        let cfg = Arc::new(SslConfig {
            role: Role::Client,
            cert: None,
            key: None,
            ca_roots: vec![ca.root_key()],
            verify_peer: true,
            expected_subject: Some("server.test".into()),
            attestation: None,
        });
        let mut client = Ssl::new(cfg, [1u8; 64]);
        let mut server = Ssl::new(SslConfig::server(cert, key), [2u8; 64]);
        let before = libseal_telemetry::counter("tlsx_verify_failures_total_subject_mismatch").get();
        client.do_handshake().unwrap();
        pump(&mut client, &mut server);
        assert_eq!(client.state(), HandshakeState::Failed);
        // Every rejection charges its per-reason counter at the shared
        // do_handshake choke point.
        assert!(
            libseal_telemetry::counter("tlsx_verify_failures_total_subject_mismatch").get()
                > before
        );
    }

    #[test]
    fn client_auth_roundtrip() {
        let ca = test_ca();
        let (skey, scert) = ca.issue_identity("server.test", &[4u8; 32]).unwrap();
        let (ckey, ccert) = ca.issue_identity("alice", &[5u8; 32]).unwrap();
        let server_cfg = Arc::new(SslConfig {
            role: Role::Server,
            cert: Some(scert),
            key: Some(skey),
            ca_roots: vec![ca.root_key()],
            verify_peer: true,
            expected_subject: None,
            attestation: None,
        });
        let client_cfg = Arc::new(SslConfig {
            role: Role::Client,
            cert: Some(ccert),
            key: Some(ckey),
            ca_roots: vec![ca.root_key()],
            verify_peer: true,
            expected_subject: None,
            attestation: None,
        });
        let (client, server) = handshake_pair(client_cfg, server_cfg);
        assert!(client.is_established());
        assert!(server.is_established());
        assert_eq!(server.peer_certificate().unwrap().subject, "alice");
    }

    #[test]
    fn client_auth_missing_cert_fails() {
        let ca = test_ca();
        let (skey, scert) = ca.issue_identity("server.test", &[4u8; 32]).unwrap();
        let server_cfg = Arc::new(SslConfig {
            role: Role::Server,
            cert: Some(scert),
            key: Some(skey),
            ca_roots: vec![ca.root_key()],
            verify_peer: true,
            expected_subject: None,
            attestation: None,
        });
        let mut client = Ssl::new(SslConfig::client(vec![ca.root_key()]), [1u8; 64]);
        let mut server = Ssl::new(server_cfg, [2u8; 64]);
        client.do_handshake().unwrap();
        pump(&mut client, &mut server);
        assert_eq!(client.state(), HandshakeState::Failed);
    }

    #[test]
    fn tampered_record_fails() {
        let ca = test_ca();
        let (key, cert) = ca.issue_identity("server.test", &[4u8; 32]).unwrap();
        let (mut client, mut server) = handshake_pair(
            SslConfig::client(vec![ca.root_key()]),
            SslConfig::server(cert, key),
        );
        client.ssl_write(b"sensitive").unwrap();
        let mut wire = client.take_output();
        let n = wire.len();
        wire[n - 1] ^= 0x01;
        server.provide_input(&wire);
        assert_eq!(server.ssl_read(), Err(TlsError::Decrypt));
    }

    #[test]
    fn close_notify_roundtrip() {
        let ca = test_ca();
        let (key, cert) = ca.issue_identity("server.test", &[4u8; 32]).unwrap();
        let (mut client, mut server) = handshake_pair(
            SslConfig::client(vec![ca.root_key()]),
            SslConfig::server(cert, key),
        );
        client.send_close();
        let wire = client.take_output();
        server.provide_input(&wire);
        assert_eq!(server.ssl_read().unwrap(), ReadOutcome::Closed);
    }

    #[test]
    fn large_transfer_chunks_records() {
        let ca = test_ca();
        let (key, cert) = ca.issue_identity("server.test", &[4u8; 32]).unwrap();
        let (mut client, mut server) = handshake_pair(
            SslConfig::client(vec![ca.root_key()]),
            SslConfig::server(cert, key),
        );
        let big: Vec<u8> = (0..100_000u32).map(|i| i as u8).collect();
        client.ssl_write(&big).unwrap();
        let wire = client.take_output();
        server.provide_input(&wire);
        let mut got = Vec::new();
        loop {
            match server.ssl_read().unwrap() {
                ReadOutcome::Data(d) => got.extend_from_slice(&d),
                ReadOutcome::WantRead => break,
                ReadOutcome::Closed => panic!("closed"),
            }
            if got.len() >= big.len() {
                break;
            }
        }
        assert_eq!(got, big);
    }

    #[test]
    fn info_callback_fires() {
        use std::sync::atomic::{AtomicU32, Ordering};
        let ca = test_ca();
        let (key, cert) = ca.issue_identity("server.test", &[4u8; 32]).unwrap();
        let hits = Arc::new(AtomicU32::new(0));
        let h = Arc::clone(&hits);
        let mut client = Ssl::new(SslConfig::client(vec![ca.root_key()]), [1u8; 64]);
        client.set_info_callback(Arc::new(move |_code, _arg| {
            h.fetch_add(1, Ordering::SeqCst);
        }));
        let mut server = Ssl::new(SslConfig::server(cert, key), [2u8; 64]);
        client.do_handshake().unwrap();
        pump(&mut client, &mut server);
        assert!(client.is_established());
        assert!(hits.load(Ordering::SeqCst) >= 2); // start + done
    }

    #[test]
    fn ex_data_storage() {
        let ca = test_ca();
        let (key, cert) = ca.issue_identity("server.test", &[4u8; 32]).unwrap();
        let (mut client, _server) = handshake_pair(
            SslConfig::client(vec![ca.root_key()]),
            SslConfig::server(cert, key),
        );
        client.ex_data.insert(1, b"request-ptr".to_vec());
        assert_eq!(client.ex_data.get(&1).unwrap(), b"request-ptr");
    }

    #[test]
    fn write_before_handshake_errors() {
        let ca = test_ca();
        let mut client = Ssl::new(SslConfig::client(vec![ca.root_key()]), [1u8; 64]);
        assert!(client.ssl_write(b"early").is_err());
    }
}

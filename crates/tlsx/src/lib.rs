#![warn(missing_docs)]
//! STLS: a TLS-1.3-style secure transport with an OpenSSL-shaped API.
//!
//! The paper's LibSEAL ports LibreSSL into the enclave and terminates
//! real TLS. This workspace substitutes STLS, a from-scratch protocol
//! with the same moving parts (see DESIGN.md for the substitution
//! argument):
//!
//! - X25519 ephemeral key exchange, Ed25519 certificates signed by a
//!   CA, transcript-bound signatures (CertificateVerify) and Finished
//!   MACs — so there are real long-term private keys and session keys
//!   to protect inside the enclave;
//! - a ChaCha20-Poly1305 record layer with per-direction sequence
//!   nonces — so bulk data pays realistic AEAD costs;
//! - a memory-BIO API ([`Ssl::provide_input`] / [`Ssl::take_output`])
//!   mirroring OpenSSL's `SSL_set_bio` split, plus `ssl_read` /
//!   `ssl_write` / `do_handshake` entry points, `ex_data` and an info
//!   callback — the surface LibSEAL's shadowing and secure-callback
//!   machinery (§4.1) needs to exist.
//!
//! [`stream::SslStream`] wraps a `TcpStream` (or any `Read + Write`)
//! for ordinary blocking servers and clients.

pub mod attest;
pub mod cert;
pub mod record;
pub mod ssl;
pub mod stream;

pub use attest::{AttestationError, AttestationExtension, AttestationPolicy};
pub use cert::{Certificate, CertificateAuthority, Extension};
pub use ssl::{HandshakeState, ReadOutcome, Role, Ssl, SslConfig};
pub use stream::{NbRead, NbSslStream, NbStatus, SslStream, WireBuf};

/// Errors from the STLS protocol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TlsError {
    /// Peer data violated the protocol.
    Protocol(String),
    /// A certificate or signature failed verification.
    Verification(String),
    /// The peer's certificate failed attestation-policy evaluation
    /// (RA-TLS): the quote is missing, unverifiable, stale, names the
    /// wrong enclave, or does not commit to the certificate key.
    Attestation(AttestationError),
    /// Record decryption failed (tampering or key mismatch).
    Decrypt,
    /// The connection was closed by the peer.
    Closed,
    /// Operation needs more input bytes (non-blocking would-block).
    WantRead,
    /// Output is blocked on the transport accepting more bytes; the
    /// unsent ciphertext stays buffered and resumes on the next call.
    WantWrite,
    /// An underlying I/O error (blocking wrapper only).
    Io(String),
}

impl std::fmt::Display for TlsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TlsError::Protocol(m) => write!(f, "protocol error: {m}"),
            TlsError::Verification(m) => write!(f, "verification failure: {m}"),
            TlsError::Attestation(e) => write!(f, "attestation failure: {e}"),
            TlsError::Decrypt => write!(f, "record decryption failed"),
            TlsError::Closed => write!(f, "connection closed"),
            TlsError::WantRead => write!(f, "need more input"),
            TlsError::WantWrite => write!(f, "output blocked on transport"),
            TlsError::Io(m) => write!(f, "io error: {m}"),
        }
    }
}

impl std::error::Error for TlsError {}

/// Convenience alias for fallible TLS operations.
pub type Result<T> = std::result::Result<T, TlsError>;

//! Shared infrastructure for the benchmark harness binaries.
//!
//! Every table and figure of the LibSEAL paper has a `--bin` target in
//! this crate (see DESIGN.md's experiment index). Run them in release
//! mode:
//!
//! ```sh
//! cargo run --release -p libseal-bench --bin fig5a
//! ```
//!
//! Durations scale with the `LIBSEAL_BENCH_SECS` environment variable
//! (default 2 s per measured point; the paper's runs are longer — use
//! 10+ for smoother numbers).

use std::sync::Arc;
use std::time::Duration;

use libseal::{GuardConfig, LibSeal, LibSealConfig, LogBacking, ServiceModule};
use libseal_crypto::ed25519::{SigningKey, VerifyingKey};
use libseal_lthread::{RuntimeConfig, WaitMode};
use libseal_sgxsim::cost::CostModel;
use libseal_tlsx::cert::{Certificate, CertificateAuthority};

/// A CA plus a server identity for benchmarks.
pub struct BenchIdentity {
    /// The issuing CA.
    pub ca: CertificateAuthority,
    /// Server certificate.
    pub cert: Certificate,
    /// Server private key.
    pub key: SigningKey,
}

impl BenchIdentity {
    /// Deterministic identity for reproducible runs.
    pub fn new() -> Self {
        let ca = CertificateAuthority::new("BenchCA", &[0x42; 32]);
        let (key, cert) = ca.issue_identity("localhost", &[0x43; 32]).unwrap();
        BenchIdentity { ca, cert, key }
    }

    /// Roots clients must trust.
    pub fn roots(&self) -> Vec<VerifyingKey> {
        vec![self.ca.root_key()]
    }
}

impl Default for BenchIdentity {
    fn default() -> Self {
        Self::new()
    }
}

/// The paper's evaluated configurations (§6.4).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BenchConfig {
    /// Plain STLS termination, no enclave (the "native"/LibreSSL bar).
    Native,
    /// LibSEAL without auditing: the pure SGX tax ("LibSEAL-process").
    Process,
    /// LibSEAL auditing to an in-memory log ("LibSEAL-mem").
    Mem,
    /// LibSEAL auditing to a sealed, fsynced on-disk log
    /// ("LibSEAL-disk").
    Disk,
}

impl BenchConfig {
    /// Display label matching the paper's figures.
    pub fn label(&self) -> &'static str {
        match self {
            BenchConfig::Native => "native",
            BenchConfig::Process => "LibSEAL-process",
            BenchConfig::Mem => "LibSEAL-mem",
            BenchConfig::Disk => "LibSEAL-disk",
        }
    }
}

/// Builds a LibSEAL instance for `config` (not used for `Native`).
///
/// Instances run the asynchronous call runtime with the paper's
/// best-performing parameters (3 SGX threads, 48 lthreads, dedicated
/// poller) unless `sync_calls` is set.
pub fn libseal_instance(
    id: &BenchIdentity,
    config: BenchConfig,
    ssm: Option<Arc<dyn ServiceModule>>,
    slots: usize,
    check_interval: usize,
    sync_calls: bool,
) -> Arc<LibSeal> {
    let ssm = match config {
        BenchConfig::Native => unreachable!("native mode has no LibSEAL instance"),
        BenchConfig::Process => None,
        BenchConfig::Mem | BenchConfig::Disk => ssm,
    };
    let mut builder = LibSealConfig::builder(id.cert.clone(), id.key.clone())
        .cost_model(CostModel {
            // Price transitions at the contention level of the paper's
            // deployment: Apache's default pool of 25 server threads
            // sharing the enclave (§6.8 shows per-call cost growing
            // steeply with in-enclave threads). A 1-core host cannot
            // create that contention natively, so it is part of the model
            // (see DESIGN.md, cost model notes).
            assumed_concurrency: assumed_concurrency(slots),
            ..CostModel::default()
        })
        .check_interval(check_interval)
        .client_check_rate(4)
        // In-cluster counter sync: the latency is on the same rack in the
        // paper's deployment; charge only the protocol work.
        .guard(GuardConfig::Rote {
            f: 1,
            latency: Duration::ZERO,
        })
        .backing(match config {
            BenchConfig::Disk => LogBacking::Disk(bench_log_path(config)),
            _ => LogBacking::Memory,
        });
    if let Some(ssm) = ssm {
        builder = builder.ssm(ssm);
    }
    let cfg = builder.build();
    if sync_calls {
        LibSeal::new(cfg).expect("libseal")
    } else {
        LibSeal::with_async(
            cfg,
            RuntimeConfig {
                sgx_threads: 3,
                lthreads_per_thread: 48,
                slots: slots.max(1),
                stack_size: 256 * 1024,
                // The paper found a dedicated poller thread fastest on
                // its 4-core machine; on hosts without spare cores the
                // poller steals the only CPU, so busy-wait (with
                // scheduler yields) wins. Pick automatically.
                wait_mode: default_wait_mode(),
            },
        )
        .expect("libseal async")
    }
}

/// Like [`libseal_instance`] but with an explicit async runtime
/// configuration (used by the Tab. 3/Tab. 4 parameter sweeps).
pub fn libseal_instance_with_rt(
    id: &BenchIdentity,
    ssm: Option<Arc<dyn ServiceModule>>,
    rt: RuntimeConfig,
) -> Arc<LibSeal> {
    let mut builder = LibSealConfig::builder(id.cert.clone(), id.key.clone())
        .cost_model(CostModel {
            assumed_concurrency: assumed_concurrency(rt.slots),
            ..CostModel::default()
        })
        .check_interval(0)
        .guard(GuardConfig::None);
    if let Some(ssm) = ssm {
        builder = builder.ssm(ssm);
    }
    LibSeal::with_async(builder.build(), rt).expect("libseal async")
}

/// Contention level for transition pricing: the larger of the
/// workload's slot count and Apache's default 25-thread pool
/// (overridable via `LIBSEAL_BENCH_THREADS`).
pub fn assumed_concurrency(slots: usize) -> u64 {
    std::env::var("LIBSEAL_BENCH_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| (slots as u64).max(25))
}

/// The wait mode best suited to this host (see the paper's §4.3
/// discussion: poller needs a spare core).
pub fn default_wait_mode() -> WaitMode {
    if std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        >= 4
    {
        WaitMode::Poller
    } else {
        WaitMode::BusyWait
    }
}

/// Process CPU time (user + system) consumed so far.
pub fn process_cpu_time() -> Duration {
    let stat = std::fs::read_to_string("/proc/self/stat").unwrap_or_default();
    // Fields 14 and 15 (1-based) are utime and stime in clock ticks;
    // the command name (field 2) may contain spaces, so skip past ')'.
    let after = stat.rsplit(')').next().unwrap_or("");
    let fields: Vec<&str> = after.split_whitespace().collect();
    let utime: u64 = fields.get(11).and_then(|v| v.parse().ok()).unwrap_or(0);
    let stime: u64 = fields.get(12).and_then(|v| v.parse().ok()).unwrap_or(0);
    let hz = 100.0; // USER_HZ on Linux
    Duration::from_secs_f64((utime + stime) as f64 / hz)
}

/// Runs `f`, returning its result plus the mean CPU utilisation in
/// percent (100% = one core busy).
pub fn with_cpu_percent<R>(f: impl FnOnce() -> R) -> (R, f64) {
    let cpu0 = process_cpu_time();
    let t0 = std::time::Instant::now();
    let r = f();
    let wall = t0.elapsed().as_secs_f64().max(1e-9);
    let cpu = (process_cpu_time() - cpu0).as_secs_f64();
    (r, cpu / wall * 100.0)
}

/// A unique temp path for a disk-backed bench log.
pub fn bench_log_path(config: BenchConfig) -> std::path::PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static N: AtomicU64 = AtomicU64::new(0);
    let n = N.fetch_add(1, Ordering::Relaxed);
    let p = std::env::temp_dir().join(format!(
        "libseal-bench-{}-{:?}-{n}.log",
        std::process::id(),
        config
    ));
    let _ = std::fs::remove_file(&p);
    p
}

/// Per-point measurement duration.
pub fn bench_secs() -> Duration {
    let secs: f64 = std::env::var("LIBSEAL_BENCH_SECS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2.0);
    Duration::from_secs_f64(secs.clamp(0.2, 120.0))
}

/// Whether to run the full (slow) parameter sweeps.
pub fn full_sweep() -> bool {
    std::env::var("LIBSEAL_BENCH_FULL").is_ok_and(|v| v != "0")
}

/// Prints a fixed-width table.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n=== {title} ===");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line: Vec<String> = headers
        .iter()
        .zip(&widths)
        .map(|(h, w)| format!("{h:<w$}"))
        .collect();
    println!("{}", line.join("  "));
    for row in rows {
        let line: Vec<String> = row
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{c:<w$}"))
            .collect();
        println!("{}", line.join("  "));
    }
}

/// Formats a duration in ms with 1 decimal.
pub fn ms(d: Duration) -> String {
    format!("{:.1}", d.as_secs_f64() * 1000.0)
}

/// Formats a rate.
pub fn rate(r: f64) -> String {
    format!("{r:.0}")
}

/// Percentage overhead of `b` relative to baseline `a` (throughputs).
pub fn overhead_pct(baseline: f64, measured: f64) -> String {
    if baseline <= 0.0 {
        return "n/a".to_string();
    }
    format!("{:+.1}%", (measured - baseline) / baseline * 100.0)
}

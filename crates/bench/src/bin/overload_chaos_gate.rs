//! CI gate: hostile-network hardening must hold under fire.
//!
//!   1. **Chaos** — a deterministic fault matrix (resets, truncation,
//!      short reads, delays at handshake/head/body/response) against
//!      both serving modes: zero panics, the server keeps serving
//!      clean clients, and `verify_log` stays clean afterwards.
//!   2. **Overload** — at 2x the connection cap the excess is shed
//!      fast (refusal latency bounded) while established connections
//!      keep their p99 within budget.
//!   3. **Drain** — a graceful drain under load completes within its
//!      deadline, answers the in-flight request, and the audit chain
//!      verifies afterwards.
//!
//! ```sh
//! cargo run --release -p libseal-bench --bin overload_chaos_gate
//! ```

use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use libseal::{GitModule, LibSeal, LibSealConfig};
use libseal_bench::*;
use libseal_crypto::SystemRng;
use libseal_httpx::http::{parse_response, Request};
use libseal_services::apache::{ApacheConfig, ApacheServer, StaticContentRouter};
use libseal_services::{HttpsClient, LoadGenerator, TlsMode};
use libseal_sgxsim::cost::CostModel;
use libseal_tlsx::ssl::SslConfig;
use libseal_tlsx::stream::SslStream;
use plat::chaos::{ChaosConfig, ChaosStream};

/// Connection cap for the overload half.
const CAP: usize = 16;
/// Established-connection p99 budget while 2x CAP excess hammers the
/// listener (free cost model, 256 B bodies, loopback).
const P99_BUDGET: Duration = Duration::from_millis(250);
/// An excess connection must be refused within this long.
const SHED_BUDGET: Duration = Duration::from_millis(500);
/// The drain must finish within its deadline plus this slack.
const DRAIN_SLACK: Duration = Duration::from_secs(3);

fn instance(id: &BenchIdentity) -> Arc<LibSeal> {
    LibSeal::new(
        LibSealConfig::builder(id.cert.clone(), id.key.clone())
            .ssm(Arc::new(GitModule))
            .cost_model(CostModel::free())
            .check_interval(0)
            .build(),
    )
    .expect("libseal")
}

/// One chaotic client attempt; every outcome except a panic is fine.
fn chaotic_attempt(id: &BenchIdentity, addr: std::net::SocketAddr, cfg: ChaosConfig) {
    let Ok(sock) = TcpStream::connect(addr) else {
        return;
    };
    let _ = sock.set_nodelay(true);
    let _ = sock.set_read_timeout(Some(Duration::from_millis(500)));
    let chaotic = ChaosStream::new(sock, cfg);
    let mut entropy = [0u8; 64];
    SystemRng::new().fill(&mut entropy);
    let Ok(mut tls) = SslStream::handshake(SslConfig::client(id.roots()), entropy, chaotic) else {
        return;
    };
    let req = Request::new("GET", "/content/256", Vec::new());
    if tls.write_all(&req.to_bytes()).is_err() {
        return;
    }
    let mut buf = Vec::new();
    for _ in 0..64 {
        match tls.read_some() {
            Ok(d) => buf.extend_from_slice(&d),
            Err(_) => return,
        }
        if parse_response(&buf).is_ok() {
            return;
        }
    }
}

/// Resets and truncations at handshake (early ops), head/body (middle)
/// and response (late), plus probabilistic degradation blends.
fn fault_matrix() -> Vec<ChaosConfig> {
    let mut cases = Vec::new();
    for op in [1, 2, 4, 8, 16, 32, 64] {
        cases.push(ChaosConfig::new(100 + op).reset_at(op));
        cases.push(ChaosConfig::new(200 + op).truncate_at(op));
    }
    cases.push(ChaosConfig::new(301).shorts(400));
    cases.push(ChaosConfig::new(302).shorts(250).delays(100, Duration::from_millis(1)));
    cases.push(
        ChaosConfig::new(303)
            .shorts(300)
            .delays(50, Duration::from_millis(2))
            .reset_at(50),
    );
    cases
}

fn chaos_gate(id: &BenchIdentity) -> Result<(), String> {
    for event in [true, false] {
        if event && !plat::reactor::supported() {
            continue;
        }
        let ls = instance(id);
        let server = ApacheServer::start(
            ApacheConfig::new(
                TlsMode::LibSeal(ls.clone()),
                Arc::new(StaticContentRouter),
            )
            .workers(2)
            .event_loop(event)
            .handshake_timeout(Duration::from_millis(400))
            .header_timeout(Duration::from_millis(400))
            .body_timeout(Duration::from_millis(600)),
        )
        .map_err(|e| format!("server start (event={event}): {e}"))?;

        let cases = fault_matrix();
        let n = cases.len();
        for cfg in cases {
            chaotic_attempt(id, server.addr(), cfg);
        }

        let client = HttpsClient::new(server.addr(), id.roots(), "localhost");
        for i in 0..5 {
            let rsp = client
                .request(&Request::new("GET", "/content/128", Vec::new()))
                .map_err(|e| format!("clean request #{i} after chaos (event={event}): {e}"))?;
            if rsp.status != 200 {
                return Err(format!(
                    "clean request #{i} after chaos (event={event}): status {}",
                    rsp.status
                ));
            }
        }
        server.stop();
        ls.verify_log(0)
            .map_err(|e| format!("verify_log after chaos (event={event}): {e}"))?;
        println!("chaos: {n} fault cases survived (event={event}), audit chain verified");
    }
    Ok(())
}

fn overload_gate(id: &BenchIdentity) -> Result<(), String> {
    if !plat::reactor::supported() {
        println!("overload: reactor unsupported, skipping");
        return Ok(());
    }
    let ls = instance(id);
    let server = ApacheServer::start(
        ApacheConfig::new(
            TlsMode::LibSeal(ls.clone()),
            Arc::new(StaticContentRouter),
        )
        .workers(4)
        .max_connections(CAP),
    )
    .map_err(|e| format!("server start: {e}"))?;
    let client = HttpsClient::new(server.addr(), id.roots(), "localhost");

    // Fill the cap with established connections.
    let mut held = Vec::with_capacity(CAP);
    for i in 0..CAP {
        let mut conn = client
            .connect()
            .map_err(|e| format!("fill connect #{i}: {e}"))?;
        conn.request(&Request::new("GET", "/content/16", Vec::new()))
            .map_err(|e| format!("fill request #{i}: {e}"))?;
        held.push(conn);
    }

    // 2x the cap in excess: every attempt must be refused, fast.
    let mut slowest_shed = Duration::ZERO;
    let mut refused = 0usize;
    for _ in 0..2 * CAP {
        let t0 = Instant::now();
        if client.connect().is_err() {
            refused += 1;
            slowest_shed = slowest_shed.max(t0.elapsed());
        }
    }
    if refused < 2 * CAP {
        return Err(format!(
            "only {refused}/{} excess connections refused at the cap",
            2 * CAP
        ));
    }
    if slowest_shed > SHED_BUDGET {
        return Err(format!(
            "slowest shed took {slowest_shed:?} (budget {SHED_BUDGET:?}) — refusal is not fast"
        ));
    }

    // Established connections keep serving within the latency budget
    // while more excess traffic stampedes with backoff.
    let addr = server.addr();
    let roots = id.roots();
    let stampede = std::thread::spawn(move || {
        let excess = HttpsClient::new(addr, roots, "localhost");
        LoadGenerator {
            clients: CAP,
            duration: Duration::from_secs(2),
            persistent: false,
            shed_backoff: Some(Duration::from_millis(10)),
        }
        .run(&excess, |_, _| {
            Request::new("GET", "/content/16", Vec::new())
        })
    });
    let hist = libseal_telemetry::Histogram::new();
    let t_end = Instant::now() + Duration::from_secs(2);
    while Instant::now() < t_end {
        for (i, conn) in held.iter_mut().enumerate() {
            let t0 = Instant::now();
            let rsp = conn
                .request(&Request::new("GET", "/content/256", Vec::new()))
                .map_err(|e| format!("established conn #{i} died under overload: {e}"))?;
            if rsp.status != 200 {
                return Err(format!("established conn #{i}: status {}", rsp.status));
            }
            hist.record_duration(t0.elapsed());
        }
    }
    let excess_stats = stampede.join().expect("stampede thread");
    let p99 = hist.snapshot().percentile_duration(0.99);
    println!(
        "overload: {refused} excess refused (slowest {slowest_shed:?}), established p99 {p99:?}, \
         stampede sheds {}",
        excess_stats.shed
    );
    if p99 > P99_BUDGET {
        return Err(format!(
            "established p99 {p99:?} above budget {P99_BUDGET:?} under 2x-cap overload"
        ));
    }
    if excess_stats.shed == 0 {
        return Err("the stampede load generator observed no sheds at 2x cap".into());
    }
    for conn in &mut held {
        conn.close();
    }
    server.stop();
    ls.verify_log(0)
        .map_err(|e| format!("verify_log after overload: {e}"))?;
    Ok(())
}

fn drain_gate(id: &BenchIdentity) -> Result<(), String> {
    let ls = instance(id);
    let drain_timeout = Duration::from_secs(5);
    let server = ApacheServer::start(
        ApacheConfig::new(
            TlsMode::LibSeal(ls.clone()),
            Arc::new(StaticContentRouter),
        )
        .workers(2)
        .drain_timeout(drain_timeout),
    )
    .map_err(|e| format!("server start: {e}"))?;
    let addr = server.addr();
    let client = HttpsClient::new(addr, id.roots(), "localhost");
    for i in 0..8 {
        client
            .request(&Request::new("GET", "/content/64", Vec::new()))
            .map_err(|e| format!("seed request #{i}: {e}"))?;
    }
    let roots = id.roots();
    let inflight = std::thread::spawn(move || {
        let client = HttpsClient::new(addr, roots, "localhost");
        client.request(&Request::new("GET", "/content/128", Vec::new()))
    });
    std::thread::sleep(Duration::from_millis(30));
    let t0 = Instant::now();
    server.drain();
    let took = t0.elapsed();
    if took > drain_timeout + DRAIN_SLACK {
        return Err(format!(
            "drain took {took:?}, deadline was {drain_timeout:?} (+{DRAIN_SLACK:?} slack)"
        ));
    }
    match inflight.join().expect("inflight thread") {
        Ok(rsp) if rsp.status == 200 => {}
        Ok(rsp) => return Err(format!("in-flight request got status {}", rsp.status)),
        Err(e) => return Err(format!("in-flight request dropped during drain: {e}")),
    }
    ls.verify_log(0)
        .map_err(|e| format!("verify_log after drain: {e}"))?;
    println!("drain: completed in {took:?}, in-flight answered, chain verified");
    Ok(())
}

fn main() {
    let id = BenchIdentity::new();
    let mut failed = false;
    for (name, result) in [
        ("chaos", chaos_gate(&id)),
        ("overload", overload_gate(&id)),
        ("drain", drain_gate(&id)),
    ] {
        if let Err(e) = result {
            eprintln!("FAIL: {name} gate: {e}");
            failed = true;
        }
    }
    if failed {
        std::process::exit(1);
    }
    println!("overload/chaos gate passed");
}

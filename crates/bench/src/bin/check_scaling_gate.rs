//! CI gate: incremental invariant checking must cost O(rows touched
//! since the last check), not O(log).
//!
//! The full-scan checker re-evaluates every invariant over the whole
//! audit log, so the per-append check cost grows with history and the
//! trimming interval becomes a throughput cliff (Fig. 6). With the
//! delta-maintained views a due check refreshes only the partitions
//! dirtied since the last check and reads violations straight out of
//! the view. This gate builds Git logs of 1 k and 1 M entries, then
//! measures the steady-state cost of one incremental check after a
//! fixed window of appends at each size. The per-append check cost
//! must stay flat: the 1000× larger log may cost at most 2× more.
//!
//! At every size the incremental verdicts are cross-checked against
//! the full-scan reference (both must report the injected violations,
//! exactly). Finally the background verifier pool drains a few due
//! batches so the `core_verifier_lag` gauge is live in /metrics.
//!
//! ```sh
//! cargo run --release -p libseal-bench --bin check_scaling_gate
//! ```

use std::sync::Arc;
use std::time::{Duration, Instant};

use libseal::log::{AuditLog, LogBacking, NoGuard};
use libseal::{
    Checker, CommitMode, GitModule, ServiceModule, Verifier, VerifierConfig, VerifierQueue,
};
use libseal_crypto::ed25519::SigningKey;
use libseal_sealdb::Value;

/// Flatness tolerance: per-append check cost on the 1000× log may be
/// at most this factor of the small log's.
const MAX_FACTOR: f64 = 2.0;
/// Small-log times are clamped up to this floor so timer noise on a
/// sub-100µs measurement cannot trip the gate.
const FLOOR: Duration = Duration::from_micros(100);
/// Appended request/response pairs between two due checks (the
/// steady-state delta one check absorbs).
const WINDOW: usize = 32;
/// Deliberately wrong advertisements injected per log: the views must
/// carry real violation rows, and the incremental/full verdicts must
/// agree on a non-zero count.
const INJECTED: usize = 3;

fn text(s: impl Into<String>) -> Value {
    Value::Text(s.into())
}

/// One Git push: an update immediately followed by its advertisement.
/// A `lie` advertises a bogus head, creating one soundness violation.
fn push(log: &mut AuditLog, repo: &str, cid: &str, lie: bool) {
    let t = log.next_time() as i64;
    log.append(
        "updates",
        &[
            Value::Integer(t),
            text(repo),
            text("main"),
            text(cid),
            text("update"),
        ],
    )
    .unwrap();
    let t = log.next_time() as i64;
    let advertised = if lie {
        "WRONG".to_string()
    } else {
        cid.to_string()
    };
    log.append(
        "advertisements",
        &[
            Value::Integer(t),
            text(repo),
            text("main"),
            text(advertised),
        ],
    )
    .unwrap();
}

/// Honest single-branch Git history of `n` entries (n/2 pushes) with
/// [`INJECTED`] lying advertisements spread through it. Views are
/// installed BEFORE the appends so the log pays realistic
/// dirty-tracking costs on every insert.
fn git_log(n: usize) -> AuditLog {
    let m = GitModule;
    let mut log = AuditLog::open(
        LogBacking::Memory,
        [0u8; 32],
        SigningKey::from_seed(&[1u8; 32]),
        Box::new(NoGuard),
        m.schema_sql(),
        m.tables(),
    )
    .expect("log");
    // Staged commits, as under the production group-commit pipeline:
    // building the history should not pay a head signature per append
    // (this gate times checking, not sealing).
    log.set_commit_mode(CommitMode::Staged);
    Checker::install(&m, &mut log).expect("install views");
    let pushes = n / 2;
    let repos = (n / 10).max(1);
    let lie_every = (pushes / INJECTED).max(1);
    for i in 0..pushes {
        let repo = format!("r{}", i % repos);
        let cid = format!("{i:040x}");
        let lie = i % lie_every == lie_every - 1 && i / lie_every < INJECTED;
        push(&mut log, &repo, &cid, lie);
        // Periodic refresh, as the interval checker would do in
        // production: keeps the dirty backlog bounded instead of
        // draining the whole history in one go at the end.
        if i % 10_000 == 9_999 {
            log.db_mut().refresh_matviews().unwrap();
        }
    }
    log
}

/// Steady-state per-append check cost: append a window of pairs, run
/// one incremental check, repeat; report the minimum of five trials
/// divided by the window size.
fn per_append_cost(log: &mut AuditLog) -> Duration {
    let m = GitModule;
    // Drain the build backlog so trials measure the steady state.
    Checker::run_checks_incremental(&m, log).unwrap();
    let mut best = Duration::MAX;
    for trial in 0..5 {
        for i in 0..WINDOW {
            let repo = format!("w{trial}x{i}");
            push(log, &repo, "abc123", false);
        }
        let start = Instant::now();
        let out = Checker::run_checks_incremental(&m, log).unwrap();
        best = best.min(start.elapsed());
        assert_eq!(
            out.total_violations(),
            INJECTED,
            "steady-state check lost the injected violations"
        );
    }
    best / WINDOW as u32
}

/// Asserts the incremental verdicts match the full-scan reference,
/// invariant by invariant.
fn cross_check(log: &mut AuditLog) {
    let m = GitModule;
    let inc = Checker::run_checks_incremental(&m, log).unwrap();
    let full = Checker::run_checks(&m, log).unwrap();
    assert_eq!(
        inc.total_violations(),
        full.total_violations(),
        "incremental and full-scan disagree on the violation total"
    );
    for (a, b) in inc.reports.iter().zip(full.reports.iter()) {
        assert_eq!(
            a.violations, b.violations,
            "incremental and full-scan disagree on invariant {}",
            a.invariant
        );
    }
    assert_eq!(
        inc.total_violations(),
        INJECTED,
        "injected violations missing"
    );
}

/// Drains a few due batches through the background verifier pool so
/// the lag gauge and alarm counter are exercised end to end, then
/// asserts the gauge is visible in the /metrics rendering.
fn drive_verifier(log: AuditLog) {
    let m = GitModule;
    let log = Arc::new(plat::sync::Mutex::new(log));
    let queue = Arc::new(VerifierQueue::new(VerifierConfig { max_pending: 4 }));
    let worker = {
        let log = Arc::clone(&log);
        Verifier::spawn(Arc::clone(&queue), move || {
            let mut g = log.lock();
            Checker::run_checks_incremental(&m, &mut g)
        })
    };
    for i in 0..6 {
        queue.wait_for_space();
        {
            let mut g = log.lock();
            push(&mut g, &format!("v{i}"), "abc123", false);
        }
        queue.enqueue().unwrap();
    }
    queue.barrier().unwrap();
    assert_eq!(queue.lag(), 0, "barrier must drain the verifier");
    queue.shutdown();
    worker.join();
    let metrics = libseal_telemetry::global().render_text();
    assert!(
        metrics.contains("core_verifier_lag"),
        "verifier lag gauge missing from /metrics"
    );
    assert!(
        metrics.contains("core_verifier_alarms_total"),
        "verifier alarm counter missing from /metrics"
    );
}

/// Size override for local bisection (`CHECK_GATE_LARGE=100000`).
fn env_size(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let small_n = env_size("CHECK_GATE_SMALL", 1_000);
    let large_n = env_size("CHECK_GATE_LARGE", 1_000_000);

    let build = Instant::now();
    let mut small = git_log(small_n);
    println!("small build {:?}", build.elapsed());
    let ph = Instant::now();
    cross_check(&mut small);
    println!("small cross_check {:?}", ph.elapsed());
    let ph = Instant::now();
    let t_small = per_append_cost(&mut small).max(FLOOR);
    println!("small per_append_cost {:?}", ph.elapsed());
    println!(
        "small log: {small_n} entries built+checked in {:?}",
        build.elapsed()
    );

    let build = Instant::now();
    let mut large = git_log(large_n);
    cross_check(&mut large);
    let t_large = per_append_cost(&mut large);
    println!(
        "large log: {large_n} entries built+checked in {:?}",
        build.elapsed()
    );

    let factor = t_large.as_secs_f64() / t_small.as_secs_f64();
    let verdict = if factor < MAX_FACTOR { "ok" } else { "FAIL" };
    println!(
        "git incremental check: {t_small:?}/append @ {small_n} entries, \
         {t_large:?}/append @ {large_n} entries ({factor:.2}x, limit {MAX_FACTOR:.0}x) .. {verdict}"
    );

    drive_verifier(small);
    println!("verifier pool drained; core_verifier_lag live in /metrics");

    if factor >= MAX_FACTOR {
        eprintln!(
            "check scaling gate FAILED: incremental checking is not O(rows touched) \
             ({factor:.2}x growth over a 1000x log)"
        );
        std::process::exit(1);
    }
    println!("check scaling gate passed");
}

//! CI gate: remote attestation must be load-bearing, not decorative.
//!
//! Three checks, all against real sockets:
//!
//!   1. A fully attested fleet — an audited Git origin behind a Squid
//!      proxy, both terminating STLS through attested enclaves, every
//!      hop pinning the peer's measurement — serves a load run with
//!      zero errors, and the audited origin verifies clean after
//!      drain.
//!   2. A server whose enclave runs the *wrong* service module (a
//!      different MRENCLAVE under the same CA and quoting root) is
//!      rejected by every client **during the handshake**: each
//!      connect fails with the typed `WrongMeasurement` error and the
//!      server serves zero requests.
//!   3. The attested handshake (quote extension on the wire plus
//!      client-side policy verification) costs at most
//!      `MAX_OVERHEAD_PCT` extra median latency over a plain
//!      CA-verified handshake.
//!
//! ```sh
//! cargo run --release -p libseal-bench --bin attestation_gate
//! ```
//!
//! Exits non-zero when the gate fails.

use std::sync::Arc;
use std::time::{Duration, Instant};

use libseal::plane::build_plane;
use libseal::{DropboxModule, GitModule, IdentityIssuer, LibSeal, LibSealConfig};
use libseal_bench::{bench_secs, ms, print_table, BenchIdentity};
use libseal_crypto::ed25519::SigningKey;
use libseal_httpx::http::Request;
use libseal_services::apache::{ApacheConfig, ApacheServer};
use libseal_services::git::GitBackend;
use libseal_services::squid::{SquidConfig, SquidProxy};
use libseal_services::{
    HttpsClient, LoadGenerator, ServiceError, StaticContentRouter, TlsMode,
};
use libseal_sgxsim::cost::CostModel;
use libseal_tlsx::attest::AttestationError;
use libseal_tlsx::TlsError;

/// Allowed median handshake-latency regression with attestation on.
const MAX_OVERHEAD_PCT: f64 = 15.0;
/// Handshake latency samples per mode (plus warmup).
const SAMPLES: usize = 200;
/// Warmup handshakes per mode before sampling.
const WARMUP: usize = 25;
/// Concurrent clients for the fleet and rejection runs.
const CLIENTS: usize = 8;

/// Attested configuration: in-enclave keypair, quote-bearing
/// certificate minted by `issuer`, free cost model so TLS itself is
/// what the gate measures.
fn attested_config(issuer: &Arc<IdentityIssuer>, subject: &str) -> libseal::LibSealConfigBuilder {
    LibSealConfig::attested(Arc::clone(issuer), subject)
        .cost_model(CostModel::free())
        .check_interval(0)
}

/// Per-client Git push stream: every request is a logged pair on the
/// audited origin.
fn push_request(client: usize, i: u64) -> Request {
    let branch = format!("refs/heads/b{}", i % 4);
    let cid: String = libseal_crypto::sha2::Sha256::digest(format!("{client}:{i}").as_bytes())
        .iter()
        .take(20)
        .map(|b| format!("{b:02x}"))
        .collect();
    Request::new(
        "POST",
        &format!("/repo/repo-{client}/git-receive-pack"),
        format!("old {cid} {branch}\n").into_bytes(),
    )
}

/// Check 1: attested apache + squid fleet, both legs pinned, clean
/// load run, origin audit log verifies after drain. Returns the Git
/// enclave's measurement for the rejection check.
fn attested_fleet(issuer: &Arc<IdentityIssuer>) -> Result<[u8; 32], String> {
    let origin_plane = build_plane(attested_config(issuer, "git-backend").ssm(Arc::new(GitModule)).build())
        .map_err(|e| format!("origin plane: {e}"))?;
    let git_measurement = origin_plane.measurements()[0];
    let origin = ApacheServer::start(
        ApacheConfig::new(
            TlsMode::LibSeal(Arc::clone(&origin_plane)),
            Arc::new(Arc::new(GitBackend::new())),
        )
        .workers(CLIENTS)
        .event_loop(false),
    )
    .map_err(|e| format!("origin: {e}"))?;

    // The proxy's own enclave is attested but runs no SSM (the paper
    // audits Squid's caching behaviour elsewhere; here its enclave
    // only terminates STLS). Its upstream leg pins the origin's
    // measurement; the client pins the proxy's.
    let proxy_plane = build_plane(attested_config(issuer, "localhost").build())
        .map_err(|e| format!("proxy plane: {e}"))?;
    let proxy_measurements = proxy_plane.measurements();
    let proxy = SquidProxy::start(
        SquidConfig::new(
            TlsMode::LibSeal(proxy_plane),
            origin.addr(),
            vec![issuer.ca_root()],
            "git-backend",
        )
        .attestation(Arc::new(issuer.policy_for(origin_plane.measurements())))
        .workers(CLIENTS)
        .event_loop(false),
    )
    .map_err(|e| format!("proxy: {e}"))?;

    let client = HttpsClient::new(proxy.addr(), vec![issuer.ca_root()], "localhost")
        .attestation(Arc::new(issuer.policy_for(proxy_measurements)));
    // Non-persistent: every request re-runs the attested handshake on
    // both legs, which is the path under test.
    let stats = LoadGenerator {
        clients: CLIENTS,
        duration: bench_secs(),
        persistent: false,
        ..LoadGenerator::default()
    }
    .run(&client, push_request);
    proxy.drain();
    origin.drain();

    if stats.requests == 0 {
        return Err("attested fleet completed no requests".into());
    }
    if stats.errors > 0 {
        return Err(format!(
            "attested fleet saw {} errors over {} requests",
            stats.errors, stats.requests
        ));
    }
    origin_plane
        .verify_log(0)
        .map_err(|e| format!("origin verification after drain: {e}"))?;
    println!(
        "fleet: {} attested requests, 0 errors, origin log verified clean",
        stats.requests
    );
    Ok(git_measurement)
}

/// Check 2: a server presenting a valid certificate chain but the
/// wrong MRENCLAVE (Dropbox SSM instead of Git) must be rejected by
/// every client in-handshake, before any request is served.
fn wrong_measurement_rejected(
    issuer: &Arc<IdentityIssuer>,
    expected: [u8; 32],
) -> Result<(), String> {
    let rogue_plane = build_plane(
        attested_config(issuer, "localhost")
            .ssm(Arc::new(DropboxModule))
            .build(),
    )
    .map_err(|e| format!("rogue plane: {e}"))?;
    assert_ne!(
        rogue_plane.measurements()[0],
        expected,
        "SSM fork must change the measurement"
    );
    let server = ApacheServer::start(
        ApacheConfig::new(TlsMode::LibSeal(rogue_plane), Arc::new(StaticContentRouter))
            .workers(CLIENTS)
            .event_loop(false),
    )
    .map_err(|e| format!("rogue server: {e}"))?;
    let client = HttpsClient::new(server.addr(), vec![issuer.ca_root()], "localhost")
        .attestation(Arc::new(issuer.policy_for(vec![expected])));

    // Every connect must fail with the typed in-handshake error.
    for i in 0..2 * CLIENTS {
        match client.connect() {
            Ok(_) => {
                return Err(format!(
                    "connect {i} to wrong-measurement server succeeded"
                ))
            }
            Err(ServiceError::Tls(TlsError::Attestation(AttestationError::WrongMeasurement))) => {}
            Err(e) => return Err(format!("connect {i}: wrong error: {e}")),
        }
    }
    // And a concurrent burst must not push a single request through.
    let stats = LoadGenerator {
        clients: CLIENTS,
        duration: Duration::from_millis(300),
        persistent: false,
        ..LoadGenerator::default()
    }
    .run(&client, |_, _| {
        Request::new("GET", "/content/64", Vec::new())
    });
    let served = server.requests_served();
    server.stop();
    if stats.requests != 0 || served != 0 {
        return Err(format!(
            "wrong-measurement server served {served} requests ({} completed client-side)",
            stats.requests
        ));
    }
    println!(
        "rejection: {} handshakes refused in-handshake, 0 requests served",
        2 * CLIENTS + stats.errors as usize
    );
    Ok(())
}

fn median(samples: &mut [Duration]) -> Duration {
    samples.sort_unstable();
    samples[samples.len() / 2]
}

/// Check 3: median attested-handshake latency within
/// `MAX_OVERHEAD_PCT` of a plain CA-verified handshake. Both servers
/// run native STLS with the same router; the only delta is the quote
/// extension on the wire and the client-side policy verification.
fn handshake_overhead(issuer: &Arc<IdentityIssuer>) -> Result<(), String> {
    let id = BenchIdentity::new();
    // Donor enclave: supplies the quoting identity for a bench-local
    // keypair, so the attested server can run plain native TLS and
    // the measured delta is the handshake itself, not enclave pumps.
    let donor = LibSeal::new(
        LibSealConfig::builder(id.cert.clone(), id.key.clone())
            .ssm(Arc::new(GitModule))
            .cost_model(CostModel::free())
            .check_interval(0)
            .build(),
    )
    .map_err(|e| format!("donor enclave: {e}"))?;
    let key = SigningKey::from_seed(&[0x77; 32]);
    let cert = issuer
        .mint(
            "localhost",
            key.verifying_key().as_bytes(),
            donor.enclave().services(),
        )
        .map_err(|e| format!("mint: {e}"))?;

    let plain = ApacheServer::start(
        ApacheConfig::new(
            TlsMode::Native {
                cert: id.cert.clone(),
                key: id.key.clone(),
            },
            Arc::new(StaticContentRouter),
        )
        .workers(2)
        .event_loop(false),
    )
    .map_err(|e| format!("plain server: {e}"))?;
    let attested = ApacheServer::start(
        ApacheConfig::new(TlsMode::Native { cert, key }, Arc::new(StaticContentRouter))
            .workers(2)
            .event_loop(false),
    )
    .map_err(|e| format!("attested server: {e}"))?;

    let plain_client = HttpsClient::new(plain.addr(), id.roots(), "localhost");
    let attested_client = HttpsClient::new(attested.addr(), vec![issuer.ca_root()], "localhost")
        .attestation(Arc::new(issuer.policy_for(vec![donor.measurement()])));

    let sample = |client: &HttpsClient| -> Result<Duration, String> {
        let t0 = Instant::now();
        client.connect().map_err(|e| format!("handshake: {e}"))?;
        Ok(t0.elapsed())
    };
    for _ in 0..WARMUP {
        sample(&plain_client)?;
        sample(&attested_client)?;
    }
    // Interleaved so scheduler drift hits both modes equally.
    let mut plain_lat = Vec::with_capacity(SAMPLES);
    let mut attested_lat = Vec::with_capacity(SAMPLES);
    for _ in 0..SAMPLES {
        plain_lat.push(sample(&plain_client)?);
        attested_lat.push(sample(&attested_client)?);
    }
    plain.stop();
    attested.stop();

    let p = median(&mut plain_lat);
    let a = median(&mut attested_lat);
    let overhead = (a.as_secs_f64() / p.as_secs_f64() - 1.0) * 100.0;
    print_table(
        "attested handshake latency (median)",
        &["mode", "median", "overhead"],
        &[
            vec!["plain".into(), ms(p), "-".into()],
            vec!["attested".into(), ms(a), format!("{overhead:+.1}%")],
        ],
    );
    if overhead > MAX_OVERHEAD_PCT {
        return Err(format!(
            "attested handshake overhead {overhead:.1}% exceeds {MAX_OVERHEAD_PCT}% budget"
        ));
    }
    Ok(())
}

fn main() {
    let issuer = Arc::new(IdentityIssuer::from_seeds(
        "GateCA",
        &[0x61; 32],
        &[0x62; 32],
    ));
    let mut failures = Vec::new();

    match attested_fleet(&issuer) {
        Ok(git_measurement) => {
            if let Err(e) = wrong_measurement_rejected(&issuer, git_measurement) {
                failures.push(e);
            }
        }
        Err(e) => failures.push(e),
    }
    if let Err(e) = handshake_overhead(&issuer) {
        failures.push(e);
    }

    if failures.is_empty() {
        println!("attestation gate: PASS");
    } else {
        for f in &failures {
            eprintln!("attestation gate FAIL: {f}");
        }
        std::process::exit(1);
    }
}

//! CI gate: the crash matrix. Enumerate every failpoint the audited
//! write path crosses (append, per-request flush, compaction, journal
//! sync, ROTE rounds, the group-commit pipeline, recovery itself),
//! simulate a crash at each one, restart, and assert the recovery
//! contract:
//!
//!   1. the reopen succeeds (a crash never corrupts, it only truncates),
//!   2. every entry whose append *and* flush returned success is still
//!      there (the durable prefix),
//!   3. no more than the attempted appends are there (salvage never
//!      invents records),
//!   4. the hash chain and signed head verify,
//!   5. the SSM invariant queries still run,
//!   6. the ROTE counter — which survives the enclave crash, as the
//!      external service does in §5.1 — reconciles with the log.
//!
//! Torn writes (a crash mid-`write(2)`) are exercised separately on
//! the two raw-write sites. Runtime is bounded: one fixed six-append
//! workload per (site, fault) pair, tens of trials total.
//!
//! ```sh
//! cargo run --release -p libseal-bench --bin crash_matrix
//! ```

use std::sync::Arc;

use libseal::log::{AuditLog, LogBacking, RollbackGuard, RoteGuard};
use libseal::ssm::git::GIT_SOUNDNESS;
use libseal::{CommitMode, CommitQueue, GitModule, GroupCommitConfig, Sealer, ServiceModule};
use libseal_crypto::ed25519::SigningKey;
use libseal_rote::{Cluster, ClusterConfig, QuorumPolicy};
use libseal_sealdb::Value;
use plat::failpoint::{self, FaultSpec, Scenario};
use plat::tmp::TempPath;

/// Appends attempted by one workload run.
const APPENDS: u64 = 6;

fn cluster() -> Arc<Cluster> {
    let mut cfg = ClusterConfig::new(1);
    cfg.deadline = std::time::Duration::from_millis(200);
    cfg.retries = 0;
    cfg.backoff = std::time::Duration::from_millis(1);
    cfg.policy = QuorumPolicy::FailStop;
    Arc::new(Cluster::with_config(cfg, b"crash-matrix").expect("cluster"))
}

fn open_log(path: &TempPath, guard: Box<dyn RollbackGuard>) -> libseal::Result<AuditLog> {
    let ssm = GitModule;
    AuditLog::open(
        LogBacking::Disk(path.to_path_buf()),
        [7u8; 32],
        SigningKey::from_seed(&[1u8; 32]),
        guard,
        ssm.schema_sql(),
        ssm.tables(),
    )
}

/// What the dying process managed to get done.
struct Outcome {
    /// Appends whose append *and* per-request flush both succeeded —
    /// the prefix recovery must preserve.
    durable: u64,
}

/// The fixed workload: four audited appends (flushed per request, as
/// the paper's per-request synchronous flush mandates), a compaction,
/// two more appends. Materialized-view registration and refresh are
/// interleaved so the `sealdb::view::*` failpoints sit on the path.
/// Any step may fail once the armed fault fires; later steps then
/// fail too (the failpoint crash latch), exactly as in a dead process.
fn workload(path: &TempPath, guard: Box<dyn RollbackGuard>) -> Outcome {
    let mut durable = 0;
    let Ok(mut log) = open_log(path, guard) else {
        return Outcome { durable };
    };
    // Views are derived state: a failed registration or refresh must
    // not affect the durable-prefix accounting of base appends.
    let _ = libseal::Checker::install(&GitModule, &mut log);
    let append_one = |log: &mut AuditLog, i: u64| -> bool {
        let t = log.next_time() as i64;
        let appended = log
            .append(
                "updates",
                &[
                    Value::Integer(t),
                    Value::Text("r".into()),
                    Value::Text("main".into()),
                    Value::Text(format!("{i:040x}")),
                    Value::Text("update".into()),
                ],
            )
            .is_ok();
        appended && log.flush().is_ok()
    };
    // Advertisements dirty the soundness view (updates alone cannot —
    // the monotone-time rule — so refresh would be a no-op without
    // them, and the apply-delta failpoint would never fire). The
    // advertised heads are deliberately wrong: the view carries real
    // violation rows through crash and recovery.
    let append_ad = |log: &mut AuditLog, i: u64| -> bool {
        let t = log.next_time() as i64;
        let appended = log
            .append(
                "advertisements",
                &[
                    Value::Integer(t),
                    Value::Text("r".into()),
                    Value::Text("main".into()),
                    Value::Text(format!("{i:040x}")),
                ],
            )
            .is_ok();
        appended && log.flush().is_ok()
    };
    for i in 0..4 {
        if append_one(&mut log, i) {
            durable += 1;
        }
    }
    if append_ad(&mut log, 99) {
        durable += 1;
    }
    let _ = log.db_mut().refresh_matviews();
    let _ = log.db_mut().compact();
    for i in 5..APPENDS {
        if append_one(&mut log, i) {
            durable += 1;
        }
    }
    let _ = log.db_mut().refresh_matviews();
    Outcome { durable }
}

/// The group-commit workload: writer threads stage appends through a
/// [`CommitQueue`] and block on the commit barrier while a [`Sealer`]
/// drains batches (one counter bind, head signature and fsync per
/// batch). `durable` counts appends whose barrier acknowledged —
/// exactly the prefix whose seal *and* flush landed before the fault.
fn pipeline_workload(path: &TempPath, guard: Box<dyn RollbackGuard>) -> Outcome {
    const WRITERS: u64 = 3;
    let Ok(mut log) = open_log(path, guard) else {
        return Outcome { durable: 0 };
    };
    log.set_commit_mode(CommitMode::Staged);
    let log = Arc::new(plat::sync::Mutex::new(log));
    let queue = Arc::new(CommitQueue::new(GroupCommitConfig {
        max_batch: 4,
        max_wait: std::time::Duration::ZERO,
    }));
    let sealer = {
        let log = Arc::clone(&log);
        Sealer::spawn(Arc::clone(&queue), move || {
            // Production pattern: the counter round runs outside the
            // audit lock so writers stage the next batch during it.
            let guard = {
                let g = log.lock();
                if !g.is_dirty() {
                    return Ok(());
                }
                g.guard_handle()
            };
            let counter = guard.increment()?;
            let mut g = log.lock();
            g.seal_bound(counter)?;
            g.flush()
        })
    };
    let handles: Vec<_> = (0..WRITERS)
        .map(|w| {
            let log = Arc::clone(&log);
            let queue = Arc::clone(&queue);
            std::thread::spawn(move || {
                let mut acked = 0u64;
                for i in 0..(APPENDS / WRITERS) {
                    // Backpressure before the audit lock, so a full
                    // queue never stalls the sealer that drains it.
                    queue.wait_for_space();
                    let ticket = {
                        let mut g = log.lock();
                        let t = g.next_time() as i64;
                        let row = [
                            Value::Integer(t),
                            Value::Text("r".into()),
                            Value::Text("main".into()),
                            Value::Text(format!("{w:02x}{i:038x}")),
                            Value::Text("update".into()),
                        ];
                        if g.append("updates", &row).is_err() {
                            continue;
                        }
                        match queue.stage() {
                            Ok(t) => t,
                            Err(_) => continue,
                        }
                    };
                    if queue.await_durable(ticket).is_ok() {
                        acked += 1;
                    }
                }
                acked
            })
        })
        .collect();
    let durable = handles.into_iter().map(|h| h.join().unwrap()).sum();
    queue.shutdown();
    sealer.join();
    Outcome { durable }
}

/// Dry-runs the workload with no faults armed so every failpoint on
/// the path registers itself, then returns the matrix rows.
fn enumerate_sites(s: &Scenario) -> Vec<String> {
    s.reset();
    let path = TempPath::new("crash-matrix-dry", "log");
    let c = cluster();
    let out = workload(&path, Box::new(RoteGuard(Arc::clone(&c))));
    assert_eq!(out.durable, APPENDS, "fault-free workload must not fail");
    // A fault-free reopen also registers the recovery-path sites
    // (salvage, rote::recover) that only fire on restart.
    drop(open_log(&path, Box::new(RoteGuard(c))).expect("fault-free reopen"));
    // And the group-commit pipeline registers its enqueue/seal/ack
    // sites, which the serial workload never crosses.
    let gc_path = TempPath::new("crash-matrix-dry-gc", "log");
    let gc = cluster();
    let out = pipeline_workload(&gc_path, Box::new(RoteGuard(gc)));
    assert_eq!(out.durable, APPENDS, "fault-free pipeline must not fail");
    let mut sites = s.registered();
    sites.sort();
    sites
}

/// Runs one (site, fault) trial; returns an error description on
/// contract violation.
fn trial(s: &Scenario, site: &str, spec: FaultSpec, flavor: &str) -> Result<(), String> {
    s.reset();
    let path = TempPath::new(&format!("crash-matrix-{}", site.replace(':', "_")), "log");
    // The counter cluster outlives the "crash": ROTE nodes are an
    // external service, not enclave state.
    let c = cluster();

    // The pipeline sites only fire under the group-commit workload;
    // everything else runs the serial per-request-flush workload.
    let run = if site.starts_with("core::commit::") {
        pipeline_workload
    } else {
        workload
    };
    s.set(site, spec);
    let out = run(&path, Box::new(RoteGuard(Arc::clone(&c))));

    // Restart: clear the crash latch, reopen against the surviving
    // journal and the surviving counter service.
    s.reset();
    let mut log = open_log(&path, Box::new(RoteGuard(Arc::clone(&c))))
        .map_err(|e| format!("{site} [{flavor}]: reopen failed: {e}"))?;
    let entries = log.entries();
    if entries < out.durable {
        return Err(format!(
            "{site} [{flavor}]: durable prefix lost: {entries} < {}",
            out.durable
        ));
    }
    if entries > APPENDS {
        return Err(format!(
            "{site} [{flavor}]: recovered more than was written: {entries} > {APPENDS}"
        ));
    }
    log.verify()
        .map_err(|e| format!("{site} [{flavor}]: chain verify failed: {e}"))?;
    log.query(GIT_SOUNDNESS, &[])
        .map_err(|e| format!("{site} [{flavor}]: invariant query failed: {e}"))?;
    // Derived view state must be reconstructible from the recovered
    // base tables, no matter where the crash hit: re-register (which
    // reseeds the backing tables), refresh, and compare against the
    // full-scan reference.
    libseal::Checker::install(&GitModule, &mut log)
        .map_err(|e| format!("{site} [{flavor}]: view install failed: {e}"))?;
    log.db_mut()
        .refresh_matviews()
        .map_err(|e| format!("{site} [{flavor}]: view refresh failed: {e}"))?;
    let view = log
        .query("SELECT * FROM mv_git_soundness", &[])
        .map_err(|e| format!("{site} [{flavor}]: view query failed: {e}"))?;
    let full = log
        .query(GIT_SOUNDNESS, &[])
        .map_err(|e| format!("{site} [{flavor}]: reference query failed: {e}"))?;
    let mut got: Vec<String> = view.rows.iter().map(|r| format!("{r:?}")).collect();
    let mut want: Vec<String> = full.rows.iter().map(|r| format!("{r:?}")).collect();
    got.sort();
    want.sort();
    if got != want {
        return Err(format!(
            "{site} [{flavor}]: view diverged from full scan after reopen: \
             {} view rows vs {} reference rows",
            got.len(),
            want.len()
        ));
    }
    let report = log.recovery_report();
    if report.attested_counter > report.durable_counter + 1 {
        return Err(format!(
            "{site} [{flavor}]: unreconciled counter: attested {} vs durable {}",
            report.attested_counter, report.durable_counter
        ));
    }
    println!(
        "  ok {site:<32} [{flavor:>7}] durable {} recovered {entries} \
         (salvaged {}B, rolled forward {}, window {})",
        out.durable, report.salvaged_bytes, report.rolled_forward, report.crash_window
    );
    Ok(())
}

fn main() {
    let s = failpoint::scenario();
    let sites = enumerate_sites(&s);
    println!(
        "crash matrix: {} failpoints on the audited write path",
        sites.len()
    );

    let mut failures = Vec::new();
    let mut trials = 0;
    for site in &sites {
        trials += 1;
        if let Err(e) = trial(&s, site, FaultSpec::crash(), "crash") {
            failures.push(e);
        }
        // Transient I/O error: the process survives, recovery is a
        // reopen of whatever the failed operation left behind.
        trials += 1;
        if let Err(e) = trial(&s, site, FaultSpec::error().times(1), "error") {
            failures.push(e);
        }
    }
    // Torn writes on the raw file-write sites: the frame is cut
    // mid-`write(2)` and must be salvaged, not trusted.
    for site in ["sealdb::journal::append", "sealdb::compact::write"] {
        if sites.iter().any(|x| x == site) {
            trials += 1;
            if let Err(e) = trial(&s, site, FaultSpec::partial_write(9), "torn") {
                failures.push(e);
            }
        }
    }
    s.reset();

    println!("crash matrix: {trials} trials, {} failures", failures.len());
    if !failures.is_empty() {
        for f in &failures {
            eprintln!("FAIL {f}");
        }
        std::process::exit(1);
    }
}

//! CI gate: the crash matrix. Enumerate every failpoint the audited
//! write path crosses (append, per-request flush, compaction, journal
//! sync, ROTE rounds, recovery itself), simulate a crash at each one,
//! restart, and assert the recovery contract:
//!
//!   1. the reopen succeeds (a crash never corrupts, it only truncates),
//!   2. every entry whose append *and* flush returned success is still
//!      there (the durable prefix),
//!   3. no more than the attempted appends are there (salvage never
//!      invents records),
//!   4. the hash chain and signed head verify,
//!   5. the SSM invariant queries still run,
//!   6. the ROTE counter — which survives the enclave crash, as the
//!      external service does in §5.1 — reconciles with the log.
//!
//! Torn writes (a crash mid-`write(2)`) are exercised separately on
//! the two raw-write sites. Runtime is bounded: one fixed six-append
//! workload per (site, fault) pair, tens of trials total.
//!
//! ```sh
//! cargo run --release -p libseal-bench --bin crash_matrix
//! ```

use std::sync::Arc;

use libseal::log::{AuditLog, LogBacking, RollbackGuard, RoteGuard};
use libseal::ssm::git::GIT_SOUNDNESS;
use libseal::{GitModule, ServiceModule};
use libseal_crypto::ed25519::SigningKey;
use libseal_rote::{Cluster, ClusterConfig, QuorumPolicy};
use libseal_sealdb::Value;
use plat::failpoint::{self, FaultSpec, Scenario};
use plat::tmp::TempPath;

/// Appends attempted by one workload run.
const APPENDS: u64 = 6;

fn cluster() -> Arc<Cluster> {
    let mut cfg = ClusterConfig::new(1);
    cfg.deadline = std::time::Duration::from_millis(200);
    cfg.retries = 0;
    cfg.backoff = std::time::Duration::from_millis(1);
    cfg.policy = QuorumPolicy::FailStop;
    Arc::new(Cluster::with_config(cfg, b"crash-matrix").expect("cluster"))
}

fn open_log(path: &TempPath, guard: Box<dyn RollbackGuard>) -> libseal::Result<AuditLog> {
    let ssm = GitModule;
    AuditLog::open(
        LogBacking::Disk(path.to_path_buf()),
        [7u8; 32],
        SigningKey::from_seed(&[1u8; 32]),
        guard,
        ssm.schema_sql(),
        ssm.tables(),
    )
}

/// What the dying process managed to get done.
struct Outcome {
    /// Appends whose append *and* per-request flush both succeeded —
    /// the prefix recovery must preserve.
    durable: u64,
}

/// The fixed workload: four audited appends (flushed per request, as
/// the paper's per-request synchronous flush mandates), a compaction,
/// two more appends. Any step may fail once the armed fault fires;
/// later steps then fail too (the failpoint crash latch), exactly as
/// in a dead process.
fn workload(path: &TempPath, guard: Box<dyn RollbackGuard>) -> Outcome {
    let mut durable = 0;
    let Ok(mut log) = open_log(path, guard) else {
        return Outcome { durable };
    };
    let append_one = |log: &mut AuditLog, i: u64| -> bool {
        let t = log.next_time() as i64;
        let appended = log
            .append(
                "updates",
                &[
                    Value::Integer(t),
                    Value::Text("r".into()),
                    Value::Text("main".into()),
                    Value::Text(format!("{i:040x}")),
                    Value::Text("update".into()),
                ],
            )
            .is_ok();
        appended && log.flush().is_ok()
    };
    for i in 0..4 {
        if append_one(&mut log, i) {
            durable += 1;
        }
    }
    let _ = log.db_mut().compact();
    for i in 4..APPENDS {
        if append_one(&mut log, i) {
            durable += 1;
        }
    }
    Outcome { durable }
}

/// Dry-runs the workload with no faults armed so every failpoint on
/// the path registers itself, then returns the matrix rows.
fn enumerate_sites(s: &Scenario) -> Vec<String> {
    s.reset();
    let path = TempPath::new("crash-matrix-dry", "log");
    let c = cluster();
    let out = workload(&path, Box::new(RoteGuard(Arc::clone(&c))));
    assert_eq!(out.durable, APPENDS, "fault-free workload must not fail");
    // A fault-free reopen also registers the recovery-path sites
    // (salvage, rote::recover) that only fire on restart.
    drop(open_log(&path, Box::new(RoteGuard(c))).expect("fault-free reopen"));
    let mut sites = s.registered();
    sites.sort();
    sites
}

/// Runs one (site, fault) trial; returns an error description on
/// contract violation.
fn trial(s: &Scenario, site: &str, spec: FaultSpec, flavor: &str) -> Result<(), String> {
    s.reset();
    let path = TempPath::new(&format!("crash-matrix-{}", site.replace(':', "_")), "log");
    // The counter cluster outlives the "crash": ROTE nodes are an
    // external service, not enclave state.
    let c = cluster();

    s.set(site, spec);
    let out = workload(&path, Box::new(RoteGuard(Arc::clone(&c))));

    // Restart: clear the crash latch, reopen against the surviving
    // journal and the surviving counter service.
    s.reset();
    let log = open_log(&path, Box::new(RoteGuard(Arc::clone(&c))))
        .map_err(|e| format!("{site} [{flavor}]: reopen failed: {e}"))?;
    let entries = log.entries();
    if entries < out.durable {
        return Err(format!(
            "{site} [{flavor}]: durable prefix lost: {entries} < {}",
            out.durable
        ));
    }
    if entries > APPENDS {
        return Err(format!(
            "{site} [{flavor}]: recovered more than was written: {entries} > {APPENDS}"
        ));
    }
    log.verify()
        .map_err(|e| format!("{site} [{flavor}]: chain verify failed: {e}"))?;
    log.query(GIT_SOUNDNESS, &[])
        .map_err(|e| format!("{site} [{flavor}]: invariant query failed: {e}"))?;
    let report = log.recovery_report();
    if report.attested_counter > report.durable_counter + 1 {
        return Err(format!(
            "{site} [{flavor}]: unreconciled counter: attested {} vs durable {}",
            report.attested_counter, report.durable_counter
        ));
    }
    println!(
        "  ok {site:<32} [{flavor:>7}] durable {} recovered {entries} \
         (salvaged {}B, rolled forward {}, window {})",
        out.durable, report.salvaged_bytes, report.rolled_forward, report.crash_window
    );
    Ok(())
}

fn main() {
    let s = failpoint::scenario();
    let sites = enumerate_sites(&s);
    println!("crash matrix: {} failpoints on the audited write path", sites.len());

    let mut failures = Vec::new();
    let mut trials = 0;
    for site in &sites {
        trials += 1;
        if let Err(e) = trial(&s, site, FaultSpec::crash(), "crash") {
            failures.push(e);
        }
        // Transient I/O error: the process survives, recovery is a
        // reopen of whatever the failed operation left behind.
        trials += 1;
        if let Err(e) = trial(&s, site, FaultSpec::error().times(1), "error") {
            failures.push(e);
        }
    }
    // Torn writes on the raw file-write sites: the frame is cut
    // mid-`write(2)` and must be salvaged, not trusted.
    for site in ["sealdb::journal::append", "sealdb::compact::write"] {
        if sites.iter().any(|x| x == site) {
            trials += 1;
            if let Err(e) = trial(&s, site, FaultSpec::partial_write(9), "torn") {
                failures.push(e);
            }
        }
    }
    s.reset();

    println!("crash matrix: {trials} trials, {} failures", failures.len());
    if !failures.is_empty() {
        for f in &failures {
            eprintln!("FAIL {f}");
        }
        std::process::exit(1);
    }
}

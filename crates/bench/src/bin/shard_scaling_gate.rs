//! CI gate: the sharded audit plane must actually scale the audit
//! pipeline. One audited Git server is driven by a closed loop of
//! persistent HTTPS clients with a deliberately slow ROTE counter
//! round (4 ms) and small commit batches, so the per-shard sealer
//! pipeline — not TLS or the service — is the throughput ceiling.
//! With one shard every append in the process funnels through one
//! sealer; with four shards the fleet runs four independent sealers,
//! so audited throughput must scale.
//!
//! The gate fails unless:
//!
//!   1. 4 shards achieve ≥ 2.8× the 1-shard audited throughput under
//!      identical load, with the whole fleet (epoch-checkpoint chain
//!      included) verifying clean after drain, and
//!   2. a 2-shard disk-backed fleet survives a mid-load shard
//!      restart: service continues, the restarted shard recovers its
//!      journal, and the fleet verifies clean after drain.
//!
//! ```sh
//! cargo run --release -p libseal-bench --bin shard_scaling_gate
//! ```

use std::sync::Arc;
use std::time::Duration;

use libseal::plane::AuditPlane;
use libseal::{GitModule, GuardConfig, LibSealConfig, LogBacking, ShardedPlane};
use libseal_bench::*;
use libseal_httpx::http::Request;
use libseal_services::apache::{ApacheConfig, ApacheServer};
use libseal_services::git::GitBackend;
use libseal_services::{HttpsClient, LoadGenerator, Service, TlsMode};
use libseal_sgxsim::cost::CostModel;

/// Simulated ROTE counter round per seal: slow enough that the
/// sealer pipeline is unambiguously the bottleneck shards multiply.
const ROTE_LATENCY: Duration = Duration::from_micros(4000);
/// Commit batch cap: keeps the per-shard ceiling near
/// `max_batch / ROTE_LATENCY` appends per second.
const MAX_BATCH: usize = 4;
/// Required speedup of 4 shards over 1.
const MIN_SPEEDUP: f64 = 2.8;
/// Closed-loop clients and server workers.
const CLIENTS: usize = 48;

fn plane_config(id: &BenchIdentity, shards: usize, backing: LogBacking) -> LibSealConfig {
    LibSealConfig::builder(id.cert.clone(), id.key.clone())
        // Isolate the seal pipeline: no simulated transition tax.
        .cost_model(CostModel::free())
        .check_interval(0)
        .guard(GuardConfig::Rote {
            f: 1,
            latency: ROTE_LATENCY,
        })
        .group_commit(MAX_BATCH, Duration::ZERO)
        .tcs_count(64)
        .backing(backing)
        .ssm(Arc::new(GitModule))
        .shards(shards)
        .epoch_interval(256)
        .build()
}

/// Per-client Git push stream: every request is a logged pair.
fn push_request(client: usize, i: u64) -> Request {
    let branch = format!("refs/heads/b{}", i % 4);
    let cid: String = libseal_crypto::sha2::Sha256::digest(format!("{client}:{i}").as_bytes())
        .iter()
        .take(20)
        .map(|b| format!("{b:02x}"))
        .collect();
    Request::new(
        "POST",
        &format!("/repo/repo-{client}/git-receive-pack"),
        format!("old {cid} {branch}\n").into_bytes(),
    )
}

fn start_server(plane: Arc<dyn AuditPlane>) -> ApacheServer {
    ApacheServer::start(
        ApacheConfig::new(
            TlsMode::LibSeal(plane),
            Arc::new(Arc::new(GitBackend::new())),
        )
        .workers(CLIENTS)
        .event_loop(false),
    )
    .expect("server")
}

/// One scaling point: serve the closed loop, drain, verify the fleet
/// through the retained plane handle, return audited throughput.
fn run_point(id: &BenchIdentity, shards: usize) -> f64 {
    let plane =
        libseal::plane::build_plane(plane_config(id, shards, LogBacking::Memory)).expect("plane");
    assert_eq!(plane.shards(), shards);
    let server = start_server(plane.clone());
    let client = HttpsClient::new(server.addr(), id.roots(), "localhost");
    let stats = LoadGenerator {
        clients: CLIENTS,
        duration: bench_secs(),
        persistent: true,
        ..LoadGenerator::default()
    }
    .run(&client, push_request);
    server.drain();
    assert!(stats.requests > 0, "load generator completed no requests");
    plane
        .verify_log(0)
        .expect("fleet verification after drain");
    stats.throughput()
}

/// Mid-load shard restart on a disk-backed 2-shard fleet: the
/// restarted shard must recover its journal, service must continue,
/// and the fleet must verify clean after drain.
fn restart_trial(id: &BenchIdentity) -> Result<(), String> {
    let base = bench_log_path(BenchConfig::Disk);
    let plane = ShardedPlane::open(plane_config(id, 2, LogBacking::Disk(base.clone())))
        .expect("sharded plane");
    let server = start_server(plane.clone());
    let addr = server.addr();
    let roots = id.roots();

    let load = std::thread::spawn(move || {
        let client = HttpsClient::new(addr, roots, "localhost");
        LoadGenerator {
            clients: 8,
            duration: Duration::from_millis(1500),
            persistent: true,
            ..LoadGenerator::default()
        }
        .run(&client, push_request)
    });

    std::thread::sleep(Duration::from_millis(400));
    let served_before = server.served();
    plane
        .restart_shard(1)
        .map_err(|e| format!("shard restart failed: {e}"))?;
    let stats = load.join().expect("load thread");
    let served_after = server.served();
    server.drain();

    // Cleanup the temp journals regardless of verdict.
    let verdict = (|| {
        if stats.requests == 0 {
            return Err("no requests completed during the restart trial".into());
        }
        if served_after <= served_before {
            return Err(format!(
                "service stalled across the restart ({served_before} -> {served_after})"
            ));
        }
        plane
            .verify_fleet(0)
            .map_err(|e| format!("fleet verification after restart: {e}"))
    })();
    for suffix in ["shard0", "shard1", "manifest"] {
        let _ = std::fs::remove_file(format!("{}.{suffix}", base.display()));
    }
    verdict
}

fn main() {
    let id = BenchIdentity::new();
    let t1 = run_point(&id, 1);
    let t4 = run_point(&id, 4);
    let speedup = t4 / t1.max(1e-9);

    print_table(
        "shard-scaling gate: audited Git push throughput (ROTE round 4 ms, batch cap 4)",
        &["shards", "req/s"],
        &[
            vec!["1".into(), rate(t1)],
            vec!["4".into(), rate(t4)],
        ],
    );
    println!("speedup {speedup:.1}x (need ≥ {MIN_SPEEDUP}x)");

    let mut failed = false;
    if speedup < MIN_SPEEDUP {
        eprintln!("FAIL: 4-shard speedup {speedup:.2}x < {MIN_SPEEDUP}x");
        failed = true;
    }
    match restart_trial(&id) {
        Ok(()) => println!("restart trial: shard 1 restarted mid-load, fleet verified clean"),
        Err(e) => {
            eprintln!("FAIL: {e}");
            failed = true;
        }
    }
    if failed {
        std::process::exit(1);
    }
    println!("shard-scaling gate passed");
}

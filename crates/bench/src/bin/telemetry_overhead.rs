//! CI gate: the telemetry subsystem must cost less than 5% throughput
//! on the hottest audited path (enclave call + log append), measured
//! against the same binary with the global registry disabled (every
//! handle inert — the "no-op registry" baseline).
//!
//! ```sh
//! cargo run --release -p libseal-bench --bin telemetry_overhead
//! ```
//!
//! Exits non-zero when the gate fails.

use std::sync::Arc;
use std::time::Instant;

use libseal::{GitModule, LibSeal, LibSealConfig};
use libseal_bench::{bench_secs, print_table, rate, BenchIdentity};
use libseal_sealdb::Value;
use libseal_sgxsim::cost::CostModel;

/// Allowed throughput regression with telemetry on.
const MAX_OVERHEAD_PCT: f64 = 5.0;
/// Interleaved measurement rounds per mode.
const ROUNDS: usize = 3;

fn audited_appends_for(ls: &Arc<LibSeal>, secs: std::time::Duration) -> f64 {
    let t0 = Instant::now();
    let mut ops = 0u64;
    while t0.elapsed() < secs {
        ls.with_log(0, |log| {
            let t = log.next_time() as i64;
            log.append(
                "updates",
                &[
                    Value::Integer(t),
                    Value::Text("repo".into()),
                    Value::Text("refs/heads/main".into()),
                    Value::Text(format!("c{t}")),
                    Value::Text("update".into()),
                ],
            )
            .expect("append");
        })
        .expect("enclave call");
        ops += 1;
    }
    ops as f64 / t0.elapsed().as_secs_f64()
}

fn main() {
    let id = BenchIdentity::new();
    let ls = LibSeal::new(
        LibSealConfig::builder(id.cert.clone(), id.key.clone())
            .ssm(Arc::new(GitModule))
            .cost_model(CostModel::free())
            .check_interval(0)
            // Measure the per-pair sealing path this gate's 5% budget
            // was calibrated for: under group commit, direct appends
            // stage without signing, which shrinks the denominator and
            // would turn the gate into a histogram micro-benchmark.
            .no_group_commit()
            .build(),
    )
    .expect("libseal");

    let registry = libseal_telemetry::global();
    let phase = bench_secs() / 2;

    // Warm up buckets, registry entries and the log before measuring.
    audited_appends_for(&ls, phase / 4);

    // Interleave the two modes so drift hits both equally; keep the
    // best round of each (robust against interference dips).
    let mut best_on: f64 = 0.0;
    let mut best_off: f64 = 0.0;
    for _ in 0..ROUNDS {
        registry.set_enabled(false);
        best_off = best_off.max(audited_appends_for(&ls, phase));
        registry.set_enabled(true);
        best_on = best_on.max(audited_appends_for(&ls, phase));
    }

    let overhead = (best_off - best_on) / best_off * 100.0;
    print_table(
        "telemetry overhead gate (audited appends)",
        &["mode", "ops/s", "overhead"],
        &[
            vec!["telemetry off".into(), rate(best_off), "-".into()],
            vec![
                "telemetry on".into(),
                rate(best_on),
                format!("{overhead:+.1}%"),
            ],
        ],
    );

    let appends = registry.counter("core_appends_total").get();
    assert!(appends > 0, "telemetry-on phase recorded no appends");

    if overhead > MAX_OVERHEAD_PCT {
        eprintln!(
            "FAIL: telemetry costs {overhead:.1}% throughput (budget {MAX_OVERHEAD_PCT:.1}%)"
        );
        std::process::exit(1);
    }
    println!("PASS: telemetry overhead {overhead:.1}% <= {MAX_OVERHEAD_PCT:.1}%");
}

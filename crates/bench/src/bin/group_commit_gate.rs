//! CI gate: group commit must actually amortise the per-request audit
//! costs. One audited Git server (disk-backed log, ROTE counter with a
//! realistic in-rack round latency, synchronous ecalls) is driven by a
//! closed loop of persistent HTTPS clients. With per-append sealing,
//! audited throughput flat-lines at the counter round + fsync rate no
//! matter how many clients push; with the group-commit pipeline the
//! sealer binds whole batches at once, so throughput must scale.
//!
//! The gate fails unless:
//!
//!   1. 8 concurrent clients achieve ≥ 3× the single-client
//!      throughput, and
//!   2. telemetry confirms the mechanism: under 8 clients the run
//!      performs at least 2 appends per counter bind and per journal
//!      fsync (i.e. batches really formed — the speedup is
//!      amortisation, not noise).
//!
//! ```sh
//! cargo run --release -p libseal-bench --bin group_commit_gate
//! ```

use std::sync::Arc;
use std::time::Duration;

use libseal::{GitModule, GuardConfig, LibSeal, LibSealConfig, LogBacking};
use libseal_bench::*;
use libseal_httpx::http::Request;
use libseal_services::apache::{ApacheConfig, ApacheServer};
use libseal_services::git::GitBackend;
use libseal_services::{HttpsClient, LoadGenerator, TlsMode};
use libseal_sgxsim::cost::CostModel;

/// Simulated per-node ROTE request latency: the §5.1 in-rack counter
/// round every seal must wait for. This is the cost group commit
/// amortises, so it is charged realistically rather than zeroed.
const ROTE_LATENCY: Duration = Duration::from_micros(2000);
/// Required speedup of 8 clients over 1.
const MIN_SPEEDUP: f64 = 3.0;
/// Required appends per counter bind / per fsync under 8 clients.
const MIN_AMORTISATION: f64 = 2.0;

fn instance(id: &BenchIdentity) -> Arc<LibSeal> {
    let cfg = LibSealConfig::builder(id.cert.clone(), id.key.clone())
        // Zero the simulated transition tax: this gate isolates the
        // seal pipeline (counter rounds + fsyncs), not the SGX model.
        .cost_model(CostModel::free())
        .check_interval(0)
        .guard(GuardConfig::Rote {
            f: 1,
            latency: ROTE_LATENCY,
        })
        .backing(LogBacking::Disk(bench_log_path(BenchConfig::Disk)))
        .ssm(Arc::new(GitModule))
        .build(); // group commit is on by default for audited instances
    LibSeal::new(cfg).expect("libseal")
}

/// Per-client Git push stream: every request is a logged pair.
fn push_request(client: usize, i: u64) -> Request {
    let branch = format!("refs/heads/b{}", i % 4);
    let cid: String = libseal_crypto::sha2::Sha256::digest(format!("{client}:{i}").as_bytes())
        .iter()
        .take(20)
        .map(|b| format!("{b:02x}"))
        .collect();
    Request::new(
        "POST",
        &format!("/repo/repo-{client}/git-receive-pack"),
        format!("old {cid} {branch}\n").into_bytes(),
    )
}

struct Point {
    throughput: f64,
    appends: u64,
    binds: u64,
    fsyncs: u64,
}

fn run_point(id: &BenchIdentity, clients: usize, workers: usize) -> Point {
    let appends = libseal_telemetry::counter("core_appends_total");
    let binds = libseal_telemetry::counter("core_counter_binds_total");
    let fsyncs = libseal_telemetry::counter("sealdb_journal_fsyncs_total");
    let (a0, b0, f0) = (appends.get(), binds.get(), fsyncs.get());

    let ls = instance(id);
    let server = ApacheServer::start(
        ApacheConfig::new(TlsMode::LibSeal(ls), Arc::new(Arc::new(GitBackend::new())))
            .workers(workers),
    )
    .expect("server");
    let client = HttpsClient::new(server.addr(), id.roots(), "localhost");
    let stats = LoadGenerator {
        clients,
        duration: bench_secs(),
        persistent: true,
        ..LoadGenerator::default()
    }
    .run(&client, push_request);
    server.stop();
    assert!(stats.requests > 0, "load generator completed no requests");

    Point {
        throughput: stats.throughput(),
        appends: appends.get() - a0,
        binds: binds.get() - b0,
        fsyncs: fsyncs.get() - f0,
    }
}

fn per(n: u64, d: u64) -> f64 {
    n as f64 / (d as f64).max(1.0)
}

fn main() {
    let id = BenchIdentity::new();
    // One worker per client in both runs, so admission control never
    // differs between the two points.
    let p1 = run_point(&id, 1, 8);
    let p8 = run_point(&id, 8, 8);

    let speedup = p8.throughput / p1.throughput.max(1e-9);
    let appends_per_bind = per(p8.appends, p8.binds);
    let appends_per_fsync = per(p8.appends, p8.fsyncs);
    print_table(
        "group-commit gate: audited Git push throughput (ROTE round 2 ms, disk log)",
        &["clients", "req/s", "appends", "counter binds", "fsyncs"],
        &[
            vec![
                "1".into(),
                rate(p1.throughput),
                p1.appends.to_string(),
                p1.binds.to_string(),
                p1.fsyncs.to_string(),
            ],
            vec![
                "8".into(),
                rate(p8.throughput),
                p8.appends.to_string(),
                p8.binds.to_string(),
                p8.fsyncs.to_string(),
            ],
        ],
    );
    println!(
        "speedup {speedup:.1}x (need ≥ {MIN_SPEEDUP:.0}x); 8-client appends/bind \
         {appends_per_bind:.1}, appends/fsync {appends_per_fsync:.1} \
         (need ≥ {MIN_AMORTISATION:.0})"
    );

    let mut failed = false;
    if speedup < MIN_SPEEDUP {
        eprintln!("FAIL: 8-client speedup {speedup:.2}x < {MIN_SPEEDUP}x");
        failed = true;
    }
    if appends_per_bind < MIN_AMORTISATION {
        eprintln!("FAIL: {appends_per_bind:.2} appends per counter bind — batches not forming");
        failed = true;
    }
    if appends_per_fsync < MIN_AMORTISATION {
        eprintln!("FAIL: {appends_per_fsync:.2} appends per fsync — batches not forming");
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
    println!("group-commit gate passed");
}

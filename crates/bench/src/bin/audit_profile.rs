//! Developer utility: breakdown of the per-request audit cost.
use libseal::log::{AuditLog, LogBacking, NoGuard};
use libseal::{Checker, GitModule, ServiceModule};
use libseal_crypto::ed25519::SigningKey;
use libseal_httpx::http::{Request, Response};
use std::collections::BTreeMap;
use std::time::Instant;

fn main() {
    let ssm = GitModule;
    let mut log = AuditLog::open(
        LogBacking::Memory,
        [0u8; 32],
        SigningKey::from_seed(&[1u8; 32]),
        Box::new(NoGuard),
        ssm.schema_sql(),
        ssm.tables(),
    )
    .unwrap();
    let mut latest: BTreeMap<String, String> = BTreeMap::new();
    let n = 500u64;
    let mut t_log = std::time::Duration::ZERO;
    let mut t_check = std::time::Duration::ZERO;
    let mut t_trim = std::time::Duration::ZERO;
    let mut since = 0;
    for i in 1..=n {
        let (req, rsp) = if i % 3 == 0 {
            let mut ad = String::new();
            for (b, c) in &latest {
                ad.push_str(&format!("{c} {b}\n"));
            }
            (
                Request::new(
                    "GET",
                    "/repo/r/info/refs?service=git-upload-pack",
                    Vec::new(),
                ),
                Response::new(200, ad.into_bytes()),
            )
        } else {
            let branch = format!("refs/heads/b{}", i % 4);
            let cid = format!("{i:040x}");
            latest.insert(branch.clone(), cid.clone());
            (
                Request::new(
                    "POST",
                    "/repo/r/git-receive-pack",
                    format!("o {cid} {branch}\n").into_bytes(),
                ),
                Response::new(200, b"ok\n".to_vec()),
            )
        };
        let t0 = Instant::now();
        ssm.log_pair(&req.to_bytes(), &rsp.to_bytes(), &mut log)
            .unwrap();
        t_log += t0.elapsed();
        since += 1;
        if since >= 10 {
            since = 0;
            let t0 = Instant::now();
            let o = Checker::run_checks(&ssm, &log).unwrap();
            t_check += t0.elapsed();
            assert_eq!(o.total_violations(), 0);
            let t0 = Instant::now();
            log.trim(ssm.trim_queries()).unwrap();
            t_trim += t0.elapsed();
        }
    }
    println!(
        "per request: log_pair {:.0}us, check {:.0}us, trim {:.0}us",
        t_log.as_secs_f64() * 1e6 / n as f64,
        t_check.as_secs_f64() * 1e6 / n as f64,
        t_trim.as_secs_f64() * 1e6 / n as f64
    );
}

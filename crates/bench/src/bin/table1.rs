//! Tab. 1: lines of code and enclave-interface size per module.
//!
//! The paper reports 344,900 LOC total (78.1% LibreSSL) with 209
//! ecalls and 55 ocalls. This binary computes the same inventory for
//! the reproduction by counting the workspace's Rust sources and the
//! declared enclave interface.
//!
//! ```sh
//! cargo run --release -p libseal-bench --bin table1
//! ```

use libseal_bench::print_table;
use std::path::{Path, PathBuf};

fn count_loc(dir: &Path) -> u64 {
    let mut total = 0;
    let Ok(entries) = std::fs::read_dir(dir) else {
        return 0;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            total += count_loc(&path);
        } else if path.extension().is_some_and(|e| e == "rs") {
            if let Ok(text) = std::fs::read_to_string(&path) {
                total += text.lines().filter(|l| !l.trim().is_empty()).count() as u64;
            }
        }
    }
    total
}

fn workspace_root() -> PathBuf {
    // crates/bench -> workspace root.
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("workspace root")
        .to_path_buf()
}

fn main() {
    let root = workspace_root();
    // Module mapping to the paper's Tab. 1 rows.
    let groups: &[(&str, &[&str], u64, u64)] = &[
        // (paper row, crate dirs, ecalls, ocalls)
        (
            "TLS library (LibreSSL ~ tlsx+crypto)",
            &["crates/tlsx/src", "crates/crypto/src"],
            0,
            0,
        ),
        (
            "Enclave shim layer (termination/shadowing/callbacks)",
            &["crates/core/src", "crates/sgxsim/src"],
            11, // the declared LibSEAL enclave interface
            5,  // bio_read, bio_write, malloc, log_flush, info_callback
        ),
        ("Async transitions (lthread)", &["crates/lthread/src"], 1, 1),
        ("SQLite (sealdb)", &["crates/sealdb/src"], 0, 0),
        (
            "Audit logging + SSMs + services",
            &["crates/httpx/src", "crates/rote/src", "crates/services/src"],
            0,
            0,
        ),
    ];

    let mut rows = Vec::new();
    let mut total = 0u64;
    let mut counts = Vec::new();
    for (label, dirs, ecalls, ocalls) in groups {
        let loc: u64 = dirs.iter().map(|d| count_loc(&root.join(d))).sum();
        total += loc;
        counts.push((label, loc, *ecalls, *ocalls));
    }
    for (label, loc, ecalls, ocalls) in &counts {
        rows.push(vec![
            label.to_string(),
            loc.to_string(),
            format!("{:.1}%", *loc as f64 / total as f64 * 100.0),
            ecalls.to_string(),
            ocalls.to_string(),
        ]);
    }
    let ecalls_total: u64 = counts.iter().map(|c| c.2).sum();
    let ocalls_total: u64 = counts.iter().map(|c| c.3).sum();
    rows.push(vec![
        "Total".to_string(),
        total.to_string(),
        "100%".to_string(),
        ecalls_total.to_string(),
        ocalls_total.to_string(),
    ]);
    print_table(
        "Tab 1: lines of code and enclave interface of the reproduction",
        &["module", "LOC", "share", "#ecalls", "#ocalls"],
        &rows,
    );
    println!(
        "\npaper: 344,900 LOC total (78.1% LibreSSL), 209 ecalls / 55 ocalls. \
         The Rust reproduction is far smaller because the TLS stack is purpose-built \
         and the interface is expressed as 11 coarse ecalls rather than the SDK's \
         per-function wrappers."
    );
}

//! Fig. 5c: Dropbox request latency (commit_batch and list) through a
//! Squid proxy, across native / LibSEAL-mem / LibSEAL-disk.
//!
//! Paper anchors: commit_batch median 363 ms native, 370 ms mem,
//! 377 ms disk — marginal increases over a 76 ms WAN floor.
//!
//! ```sh
//! cargo run --release -p libseal-bench --bin fig5c
//! ```

use std::sync::Arc;
use std::time::{Duration, Instant};

use libseal::DropboxModule;
use libseal_bench::*;
use libseal_httpx::http::Request;
use libseal_services::apache::{ApacheConfig, ApacheServer};
use libseal_services::dropbox::DropboxServer;
use libseal_services::squid::{SquidConfig, SquidProxy};
use libseal_services::{HttpsClient, TlsMode};

struct Quartiles {
    p25: f64,
    p50: f64,
    p75: f64,
}

fn quartiles(mut v: Vec<f64>) -> Quartiles {
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let pick = |q: f64| v[((v.len() - 1) as f64 * q) as usize];
    Quartiles {
        p25: pick(0.25),
        p50: pick(0.5),
        p75: pick(0.75),
    }
}

fn run_config(
    id: &BenchIdentity,
    config: Option<BenchConfig>,
    ops: usize,
) -> (Quartiles, Quartiles) {
    // Origin with the measured 76 ms WAN latency to Dropbox (§6.4).
    let origin = Arc::new(DropboxServer::with_wan_latency(Duration::from_millis(76)));
    let origin_server = ApacheServer::start(
        ApacheConfig::new(
            TlsMode::Native {
                cert: id.cert.clone(),
                key: id.key.clone(),
            },
            Arc::new(origin),
        )
        .workers(2)
        .event_loop(false),
    )
    .expect("origin");

    let tls = match config {
        None => TlsMode::Native {
            cert: id.cert.clone(),
            key: id.key.clone(),
        },
        Some(c) => TlsMode::LibSeal(libseal_instance(
            id,
            c,
            Some(Arc::new(DropboxModule)),
            2,
            100, // the §6.5 optimal interval for Dropbox
            false,
        )),
    };
    let proxy = SquidProxy::start(
        SquidConfig::new(tls, origin_server.addr(), id.roots(), "localhost")
            .workers(2)
            .event_loop(false),
    )
    .expect("proxy");

    let client = HttpsClient::new(proxy.addr(), id.roots(), "localhost");
    let mut conn = client.connect().expect("connect");
    let mut commit_lat = Vec::new();
    let mut list_lat = Vec::new();
    for i in 0..ops as u64 {
        // Alternate commits and lists, as the Drago et al. benchmark's
        // create/delete/poll mix does.
        let (req, bucket) = if i % 2 == 0 {
            let body = format!(
                r#"{{"account":"acct","host":"h","commits":[{{"file":"f{i}.bin","blocks":["{:064x}"],"size":4096}}]}}"#,
                i
            );
            (
                Request::new("POST", "/dropbox/commit_batch", body.into_bytes()),
                0,
            )
        } else {
            (
                Request::new(
                    "POST",
                    "/dropbox/list",
                    br#"{"account":"acct","host":"h"}"#.to_vec(),
                ),
                1,
            )
        };
        let t0 = Instant::now();
        conn.request(&req).expect("request");
        let ms = t0.elapsed().as_secs_f64() * 1000.0;
        if bucket == 0 {
            commit_lat.push(ms);
        } else {
            list_lat.push(ms);
        }
    }
    conn.close();
    proxy.stop();
    origin_server.stop();
    (quartiles(commit_lat), quartiles(list_lat))
}

fn main() {
    let id = BenchIdentity::new();
    let ops = if full_sweep() { 120 } else { 40 };
    let mut rows = Vec::new();
    for (label, config) in [
        ("native", None),
        ("LibSEAL-mem", Some(BenchConfig::Mem)),
        ("LibSEAL-disk", Some(BenchConfig::Disk)),
    ] {
        let (commit, list) = run_config(&id, config, ops);
        rows.push(vec![
            label.to_string(),
            "commit_batch".to_string(),
            format!("{:.0}", commit.p25),
            format!("{:.0}", commit.p50),
            format!("{:.0}", commit.p75),
        ]);
        rows.push(vec![
            label.to_string(),
            "list".to_string(),
            format!("{:.0}", list.p25),
            format!("{:.0}", list.p50),
            format!("{:.0}", list.p75),
        ]);
    }
    print_table(
        "Fig 5c: Dropbox latency through Squid (76 ms WAN floor)",
        &["config", "message", "p25 (ms)", "median (ms)", "p75 (ms)"],
        &rows,
    );
    println!(
        "\npaper anchors: medians 363/370/377 ms for commit_batch — LibSEAL adds only a \
         few ms over the WAN floor"
    );
}

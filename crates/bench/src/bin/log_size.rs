//! §6.5 log-size model: bytes of audit log per workload unit.
//!
//! Paper anchors: Git ~530 B per branch/tag pointer; ownCloud
//! 124-131 B per (single-character) update; Dropbox ~64 B of blocklist
//! hash per file (plus fixed metadata).
//!
//! ```sh
//! cargo run --release -p libseal-bench --bin log_size
//! ```

use libseal::log::{AuditLog, LogBacking, NoGuard};
use libseal::{DropboxModule, GitModule, OwnCloudModule, ServiceModule};
use libseal_bench::print_table;
use libseal_crypto::ed25519::SigningKey;
use libseal_httpx::http::{Request, Response};

fn fresh_log(ssm: &dyn ServiceModule) -> AuditLog {
    AuditLog::open(
        LogBacking::Memory,
        [0u8; 32],
        SigningKey::from_seed(&[1u8; 32]),
        Box::new(NoGuard),
        ssm.schema_sql(),
        ssm.tables(),
    )
    .expect("log")
}

fn main() {
    let n: u64 = 200;
    let mut rows = Vec::new();

    // Git: one branch pointer update per request.
    {
        let ssm = GitModule;
        let mut log = fresh_log(&ssm);
        // Trim-state baseline: measure marginal cost per pointer.
        let before = log.size_bytes();
        for i in 0..n {
            let body = format!("old {:040x} refs/heads/branch-{i}\n", i);
            let req = Request::new("POST", "/repo/r/git-receive-pack", body.into_bytes());
            let rsp = Response::new(200, b"ok\n".to_vec());
            ssm.log_pair(&req.to_bytes(), &rsp.to_bytes(), &mut log)
                .unwrap();
        }
        let per = (log.size_bytes() - before) as f64 / n as f64;
        rows.push(vec![
            "Git".to_string(),
            "branch/tag pointer".to_string(),
            format!("{per:.0}"),
            "530".to_string(),
        ]);
    }

    // ownCloud: one single-character update per request.
    {
        let ssm = OwnCloudModule;
        let mut log = fresh_log(&ssm);
        let before = log.size_bytes();
        for i in 0..n {
            let body = format!(r#"{{"doc":"d","client":"c","ops":[{{"content":"x"}}],"i":{i}}}"#);
            let req = Request::new("POST", "/owncloud/sync", body.into_bytes());
            let rsp = format!(r#"{{"acks":[{}],"ops":[]}}"#, i + 1);
            ssm.log_pair(
                &req.to_bytes(),
                &Response::new(200, rsp.into_bytes()).to_bytes(),
                &mut log,
            )
            .unwrap();
        }
        let per = (log.size_bytes() - before) as f64 / n as f64;
        rows.push(vec![
            "ownCloud".to_string(),
            "single-char update".to_string(),
            format!("{per:.0}"),
            "124-131".to_string(),
        ]);
    }

    // Dropbox: one file (one 32-byte blocklist hash) per request.
    {
        let ssm = DropboxModule;
        let mut log = fresh_log(&ssm);
        let before = log.size_bytes();
        for i in 0..n {
            let body = format!(
                r#"{{"account":"a","host":"h","commits":[{{"file":"f{i}","blocks":["{:064x}"],"size":4096}}]}}"#,
                i
            );
            let req = Request::new("POST", "/dropbox/commit_batch", body.into_bytes());
            ssm.log_pair(
                &req.to_bytes(),
                &Response::new(200, br#"{"ok":true}"#.to_vec()).to_bytes(),
                &mut log,
            )
            .unwrap();
        }
        let per = (log.size_bytes() - before) as f64 / n as f64;
        rows.push(vec![
            "Dropbox".to_string(),
            "file (blocklist hash)".to_string(),
            format!("{per:.0}"),
            "~64 (hash) + metadata".to_string(),
        ]);
    }

    print_table(
        "§6.5: audit log bytes per workload unit (including hash-chain rows)",
        &["service", "unit", "measured B/unit", "paper B/unit"],
        &rows,
    );
    println!(
        "\nnotes: measured sizes include this implementation's per-entry chain row \
         (payload copy + 32-byte hash), roughly doubling the paper's data-only figures"
    );
}

//! Fig. 7c: multi-core scalability — throughput of Apache and Squid
//! (native and LibSEAL) as the number of server worker threads grows
//! from 1 to 4.
//!
//! Paper shape: near-linear scaling for all four configurations.
//!
//! **Host caveat**: on a machine with fewer cores than workers the
//! curve flattens — the binary prints the detected parallelism so the
//! reader can judge (the paper itself stopped at 4 cores for the same
//! reason).
//!
//! ```sh
//! cargo run --release -p libseal-bench --bin fig7c
//! ```

use std::sync::Arc;

use libseal_bench::*;
use libseal_httpx::http::Request;
use libseal_services::apache::{ApacheConfig, ApacheServer};
use libseal_services::squid::{SquidConfig, SquidProxy};
use libseal_services::{HttpsClient, LoadGenerator, StaticContentRouter, TlsMode};

fn apache_point(id: &BenchIdentity, libseal: bool, cores: usize) -> f64 {
    let tls = if libseal {
        TlsMode::LibSeal(libseal_instance(
            id,
            BenchConfig::Process,
            None,
            cores,
            0,
            false,
        ))
    } else {
        TlsMode::Native {
            cert: id.cert.clone(),
            key: id.key.clone(),
        }
    };
    let server = ApacheServer::start(
        ApacheConfig::new(tls, Arc::new(StaticContentRouter))
            .workers(cores)
            .event_loop(false),
    )
    .expect("server");
    let client = HttpsClient::new(server.addr(), id.roots(), "localhost");
    let stats = LoadGenerator {
        clients: cores * 2,
        duration: bench_secs(),
        persistent: false,
        ..LoadGenerator::default()
    }
    .run(&client, |_, _| {
        Request::new("GET", "/content/1024", Vec::new())
    });
    server.stop();
    stats.throughput()
}

fn squid_point(id: &BenchIdentity, libseal: bool, cores: usize) -> f64 {
    let origin = ApacheServer::start(
        ApacheConfig::new(
            TlsMode::Native {
                cert: id.cert.clone(),
                key: id.key.clone(),
            },
            Arc::new(StaticContentRouter),
        )
        .workers(2)
        .event_loop(false),
    )
    .expect("origin");
    let tls = if libseal {
        TlsMode::LibSeal(libseal_instance(
            id,
            BenchConfig::Process,
            None,
            cores,
            0,
            false,
        ))
    } else {
        TlsMode::Native {
            cert: id.cert.clone(),
            key: id.key.clone(),
        }
    };
    let proxy = SquidProxy::start(
        SquidConfig::new(tls, origin.addr(), id.roots(), "localhost")
            .workers(cores)
            .event_loop(false),
    )
    .expect("proxy");
    let client = HttpsClient::new(proxy.addr(), id.roots(), "localhost");
    let stats = LoadGenerator {
        clients: cores * 2,
        duration: bench_secs(),
        persistent: false,
        ..LoadGenerator::default()
    }
    .run(&client, |_, _| {
        Request::new("GET", "/content/1024", Vec::new())
    });
    proxy.stop();
    origin.stop();
    stats.throughput()
}

fn main() {
    let id = BenchIdentity::new();
    let parallelism = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!("host parallelism: {parallelism} hardware thread(s)");
    if parallelism < 4 {
        println!(
            "NOTE: fewer cores than the paper's 4-core testbed — scaling \
             flattens once workers exceed cores"
        );
    }

    let mut rows = Vec::new();
    for cores in 1..=4usize {
        let a_native = apache_point(&id, false, cores);
        let a_libseal = apache_point(&id, true, cores);
        let s_native = squid_point(&id, false, cores);
        let s_libseal = squid_point(&id, true, cores);
        rows.push(vec![
            cores.to_string(),
            rate(a_native),
            rate(a_libseal),
            rate(s_native),
            rate(s_libseal),
        ]);
    }
    print_table(
        "Fig 7c: throughput (req/s) vs #cores (worker threads)",
        &[
            "#cores",
            "Apache-LibreSSL",
            "Apache-LibSEAL",
            "Squid-LibreSSL",
            "Squid-LibSEAL",
        ],
        &rows,
    );
    println!("\npaper shape: near-linear growth for all four lines up to 4 cores");
}

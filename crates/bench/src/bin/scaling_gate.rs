//! CI gate: invariant checking must scale near-linearly in log size.
//!
//! Before the indexed executor, the correlated-subquery soundness
//! invariants were quadratic: a 10× larger log cost ~100× more to
//! check. With the key-column hash indexes the per-row subquery scans
//! a constant-size bucket, so 10× more entries should cost ~10× more.
//! This gate appends honest 2 000- and 20 000-entry logs for each of
//! the three services (key cardinality grows with the log, as it does
//! in real deployments, so index buckets stay small), times one
//! soundness invariant on each, and fails if the 10× log costs more
//! than 20× the time.
//!
//! ```sh
//! cargo run --release -p libseal-bench --bin scaling_gate
//! ```

use std::time::{Duration, Instant};

use libseal::log::{AuditLog, LogBacking, NoGuard};
use libseal::ssm::dropbox::DB_PHANTOM_FILE;
use libseal::ssm::git::GIT_SOUNDNESS;
use libseal::ssm::owncloud::OC_SNAPSHOT_SOUND;
use libseal::{DropboxModule, GitModule, OwnCloudModule, ServiceModule};
use libseal_crypto::ed25519::SigningKey;
use libseal_sealdb::Value;

/// Sub-quadratic tolerance: a 10× log may cost at most this factor.
const MAX_FACTOR: f64 = 20.0;
/// Small-log times are clamped up to this floor so timer noise on a
/// sub-100µs measurement cannot trip the gate.
const FLOOR: Duration = Duration::from_micros(100);

fn fresh_log(ssm: &dyn ServiceModule) -> AuditLog {
    AuditLog::open(
        LogBacking::Memory,
        [0u8; 32],
        SigningKey::from_seed(&[1u8; 32]),
        Box::new(NoGuard),
        ssm.schema_sql(),
        ssm.tables(),
    )
    .expect("log")
}

fn text(s: impl Into<String>) -> Value {
    Value::Text(s.into())
}

/// Honest Git history: each push is immediately advertised, so the
/// soundness subquery always resolves to the advertised commit.
fn git_log(n: usize) -> AuditLog {
    let mut log = fresh_log(&GitModule);
    let repos = (n / 10).max(1);
    for i in 0..n / 2 {
        let (repo, branch, cid) = (
            format!("r{}", i % repos),
            format!("b{}", i % 16),
            format!("{i:040x}"),
        );
        let t = log.next_time() as i64;
        log.append(
            "updates",
            &[
                Value::Integer(t),
                text(&repo),
                text(&branch),
                text(&cid),
                text("update"),
            ],
        )
        .unwrap();
        let t = log.next_time() as i64;
        log.append(
            "advertisements",
            &[Value::Integer(t), text(repo), text(branch), text(cid)],
        )
        .unwrap();
    }
    log
}

/// Honest ownCloud history: every served snapshot repeats the latest
/// saved snapshot of its document.
fn owncloud_log(n: usize) -> AuditLog {
    let mut log = fresh_log(&OwnCloudModule);
    let docs = (n / 10).max(1);
    for i in 0..n / 2 {
        let (doc, content) = (format!("d{}", i % docs), format!("v{i}"));
        for kind in ["snapshot_save", "snapshot_sent"] {
            let t = log.next_time() as i64;
            log.append(
                "docupdates",
                &[
                    Value::Integer(t),
                    text(&doc),
                    text("alice"),
                    text(kind),
                    Value::Integer(i as i64),
                    text(&content),
                ],
            )
            .unwrap();
        }
    }
    log
}

/// Honest Dropbox history: every listed file was committed earlier.
fn dropbox_log(n: usize) -> AuditLog {
    let mut log = fresh_log(&DropboxModule);
    let files = (n / 10).max(1);
    for i in 0..n / 2 {
        let file = format!("f{}", i % files);
        for table in ["commit_batch", "list"] {
            let t = log.next_time() as i64;
            log.append(
                table,
                &[
                    Value::Integer(t),
                    text(&file),
                    text(format!("blk{i}")),
                    text("acct"),
                    text("h1"),
                    Value::Integer(1),
                ],
            )
            .unwrap();
        }
    }
    log
}

/// One timed clean invariant pass.
fn time_once(log: &AuditLog, sql: &str) -> Duration {
    let start = Instant::now();
    let r = log.query(sql, &[]).unwrap();
    let elapsed = start.elapsed();
    assert!(r.is_empty(), "workload violated its own invariant");
    elapsed
}

/// Minimum-of-5 wall times for both logs, with the measurements
/// interleaved so a transient machine-wide slowdown inflates both
/// sides of the ratio rather than one.
fn time_pair(small: &AuditLog, large: &AuditLog, sql: &str) -> (Duration, Duration) {
    time_once(small, sql); // warm-up, untimed
    time_once(large, sql);
    let (mut t_small, mut t_large) = (Duration::MAX, Duration::MAX);
    for _ in 0..5 {
        t_small = t_small.min(time_once(small, sql));
        t_large = t_large.min(time_once(large, sql));
    }
    (t_small, t_large)
}

type BuildLog = fn(usize) -> AuditLog;

fn main() {
    const SMALL: usize = 2_000;
    const LARGE: usize = 20_000;
    let services: [(&str, BuildLog, &str); 3] = [
        ("git/soundness", git_log, GIT_SOUNDNESS),
        (
            "owncloud/snapshot-soundness",
            owncloud_log,
            OC_SNAPSHOT_SOUND,
        ),
        ("dropbox/phantom-file", dropbox_log, DB_PHANTOM_FILE),
    ];
    let mut failed = false;
    for (name, build, sql) in services {
        let (small, large) = (build(SMALL), build(LARGE));
        let (t_small, t_large) = time_pair(&small, &large, sql);
        let t_small = t_small.max(FLOOR);
        let factor = t_large.as_secs_f64() / t_small.as_secs_f64();
        let verdict = if factor < MAX_FACTOR { "ok" } else { "FAIL" };
        println!(
            "{name}: {SMALL} entries {t_small:?}, {LARGE} entries {t_large:?} \
             ({factor:.1}x, limit {MAX_FACTOR:.0}x) .. {verdict}"
        );
        failed |= factor >= MAX_FACTOR;
    }
    if failed {
        eprintln!("scaling gate FAILED: invariant checking is super-linear in log size");
        std::process::exit(1);
    }
    println!("scaling gate passed");
}

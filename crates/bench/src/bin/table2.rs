//! Tab. 2: Apache throughput with vs without asynchronous enclave
//! calls, across content sizes.
//!
//! Paper shape: async calls improve throughput by ≥57%, with larger
//! gains (≈2×) for bigger content where more ocalls are saved.
//!
//! ```sh
//! cargo run --release -p libseal-bench --bin table2
//! ```

use std::sync::Arc;

use libseal_bench::*;
use libseal_httpx::http::Request;
use libseal_services::apache::{ApacheConfig, ApacheServer};
use libseal_services::{HttpsClient, LoadGenerator, StaticContentRouter, TlsMode};

fn run_point(id: &BenchIdentity, size: usize, workers: usize, sync_calls: bool) -> f64 {
    let ls = libseal_instance(id, BenchConfig::Process, None, workers, 0, sync_calls);
    let server = ApacheServer::start(
        ApacheConfig::new(TlsMode::LibSeal(ls), Arc::new(StaticContentRouter))
            .workers(workers)
            .event_loop(false),
    )
    .expect("server");
    let client = HttpsClient::new(server.addr(), id.roots(), "localhost");
    let path = format!("/content/{size}");
    let stats = LoadGenerator {
        clients: workers * 2,
        duration: bench_secs(),
        persistent: false,
        ..LoadGenerator::default()
    }
    .run(&client, |_, _| Request::new("GET", &path, Vec::new()));
    server.stop();
    stats.throughput()
}

fn main() {
    let id = BenchIdentity::new();
    let workers = 8;
    let sizes: [usize; 4] = [0, 1 << 10, 10 << 10, 64 << 10];

    let mut sync_row = vec!["No async. calls".to_string()];
    let mut async_row = vec!["With async. calls".to_string()];
    let mut improv_row = vec!["Improvement".to_string()];
    for &size in &sizes {
        let sync = run_point(&id, size, workers, true);
        let asynchronous = run_point(&id, size, workers, false);
        sync_row.push(rate(sync));
        async_row.push(rate(asynchronous));
        improv_row.push(format!(
            "{:+.0}%",
            (asynchronous - sync) / sync.max(1e-9) * 100.0
        ));
    }
    print_table(
        "Tab 2: Apache throughput (req/s) with LibSEAL, sync vs async enclave calls",
        &["configuration", "0 Byte", "1 KB", "10 KB", "64 KB"],
        &[sync_row, async_row, improv_row],
    );
    println!("\npaper shape: async >= +57% everywhere, growing with content size");
}

//! Fig. 5b: ownCloud latency vs throughput (native, LibSEAL-mem,
//! LibSEAL-disk).
//!
//! Paper anchors: 115 → 100 req/s (-13%); disk adds nothing on top of
//! mem because the PHP engine is the bottleneck.
//!
//! ```sh
//! cargo run --release -p libseal-bench --bin fig5b
//! ```

use std::sync::Arc;
use std::time::Duration;

use libseal::OwnCloudModule;
use libseal_bench::*;
use libseal_httpx::http::Request;
use libseal_services::apache::{ApacheConfig, ApacheServer};
use libseal_services::owncloud::OwnCloudServer;
use libseal_services::{HttpsClient, LoadGenerator, TlsMode};

/// Each client edits its own document: a join, then a stream of edits
/// (single characters with an occasional paragraph, §6.4).
fn edit_request(client: usize, i: u64) -> Request {
    let doc = format!("doc-{client}");
    let who = format!("client-{client}");
    if i == 0 {
        Request::new(
            "POST",
            "/owncloud/join",
            format!(r#"{{"doc":"{doc}","client":"{who}"}}"#).into_bytes(),
        )
    } else {
        let content = if i.is_multiple_of(5) {
            format!("paragraph {i}: lorem ipsum dolor sit amet consectetur")
        } else {
            format!("+{}", (b'a' + (i % 26) as u8) as char)
        };
        Request::new(
            "POST",
            "/owncloud/sync",
            format!(r#"{{"doc":"{doc}","client":"{who}","ops":[{{"content":"{content}"}}]}}"#)
                .into_bytes(),
        )
    }
}

fn run_point(
    id: &BenchIdentity,
    config: Option<BenchConfig>,
    clients: usize,
    workers: usize,
) -> (f64, f64) {
    let tls = match config {
        None => TlsMode::Native {
            cert: id.cert.clone(),
            key: id.key.clone(),
        },
        Some(c) => TlsMode::LibSeal(libseal_instance(
            id,
            c,
            Some(Arc::new(OwnCloudModule)),
            workers,
            75, // the §6.5 optimal interval for ownCloud
            false,
        )),
    };
    // The PHP engine bottleneck (§6.4): ~8 ms of application work.
    let oc = Arc::new(OwnCloudServer::with_php_delay(Duration::from_millis(8)));
    let server = ApacheServer::start(
        ApacheConfig::new(tls, Arc::new(oc))
            .workers(workers)
            .event_loop(false),
    )
    .expect("server");
    let client = HttpsClient::new(server.addr(), id.roots(), "localhost");
    let stats = LoadGenerator {
        clients,
        duration: bench_secs(),
        persistent: true,
        ..LoadGenerator::default()
    }
    .run(&client, edit_request);
    server.stop();
    (
        stats.throughput(),
        stats.mean_latency.as_secs_f64() * 1000.0,
    )
}

fn main() {
    let id = BenchIdentity::new();
    let client_counts: Vec<usize> = if full_sweep() {
        vec![1, 2, 4, 8, 16]
    } else {
        vec![1, 4, 8]
    };
    // One worker per persistent client (see fig5a).
    let workers = *client_counts.iter().max().unwrap();

    let mut rows = Vec::new();
    let mut peaks = Vec::new();
    for (label, config) in [
        ("native", None),
        ("LibSEAL-mem", Some(BenchConfig::Mem)),
        ("LibSEAL-disk", Some(BenchConfig::Disk)),
    ] {
        let mut peak: f64 = 0.0;
        for &clients in &client_counts {
            let (tput, lat) = run_point(&id, config, clients, workers);
            peak = peak.max(tput);
            rows.push(vec![
                label.to_string(),
                clients.to_string(),
                rate(tput),
                format!("{lat:.1}"),
            ]);
        }
        peaks.push((label, peak));
    }
    print_table(
        "Fig 5b: ownCloud latency vs throughput (document edit workload)",
        &[
            "config",
            "clients",
            "throughput (req/s)",
            "mean latency (ms)",
        ],
        &rows,
    );
    let native_peak = peaks[0].1;
    let summary: Vec<Vec<String>> = peaks
        .iter()
        .map(|(l, p)| vec![l.to_string(), rate(*p), overhead_pct(native_peak, *p)])
        .collect();
    print_table(
        "Fig 5b summary: peak throughput per configuration",
        &["config", "peak req/s", "vs native"],
        &summary,
    );
    println!("\npaper anchors: -13% for mem; disk ≈ mem (PHP engine is the bottleneck)");
}

//! CI gate: the event-driven service core must deliver both halves of
//! its promise.
//!
//!   1. **Capacity** — one reactor thread holds ≥ 5000 concurrent
//!      established-and-idle STLS sessions (the thread-per-connection
//!      model would need 5000 stacks), and the parked sessions stay
//!      serviceable under concurrent active load.
//!   2. **Amortisation** — batched pumps and fused write+take calls
//!      make the event path cross the enclave boundary measurably
//!      less often per request than the threaded baseline, confirmed
//!      by the sgxsim transition counters rather than wall-clock.
//!
//! ```sh
//! cargo run --release -p libseal-bench --bin event_loop_gate
//! ```

use std::sync::Arc;

use libseal::{LibSeal, LibSealConfig};
use libseal_bench::*;
use libseal_httpx::http::Request;
use libseal_services::apache::{ApacheConfig, ApacheServer, StaticContentRouter};
use libseal_services::{HttpsClient, LoadGenerator, TlsMode};
use libseal_sgxsim::cost::CostModel;

/// Concurrent idle sessions one reactor must hold.
const MIN_IDLE_SESSIONS: usize = 5000;
/// Event-mode transitions per request must be at most this fraction
/// of the threaded baseline ("measurably fewer", not noise).
const MAX_TRANSITION_RATIO: f64 = 0.9;

fn instance(id: &BenchIdentity) -> Arc<LibSeal> {
    LibSeal::new(
        LibSealConfig::builder(id.cert.clone(), id.key.clone())
            // Zero the simulated transition tax: this gate counts
            // boundary crossings, it does not price them.
            .cost_model(CostModel::free())
            .check_interval(0)
            .build(),
    )
    .expect("libseal")
}

/// Total enclave entries so far: synchronous, asynchronous and
/// batched ecalls each cross the boundary once.
fn transitions() -> u64 {
    libseal_telemetry::counter("sgxsim_ecalls_total").get()
        + libseal_telemetry::counter("sgxsim_async_ecalls_total").get()
        + libseal_telemetry::counter("sgxsim_batch_ecalls_total").get()
}

/// Part 1: park `MIN_IDLE_SESSIONS` established sessions on one
/// reactor, run active load over them, prove they all still serve.
fn capacity_gate(id: &BenchIdentity) -> Result<(), String> {
    let ls = instance(id);
    let server = ApacheServer::start(
        ApacheConfig::new(TlsMode::LibSeal(ls), Arc::new(StaticContentRouter)).workers(2),
    )
    .expect("server");
    let client = HttpsClient::new(server.addr(), id.roots(), "localhost");

    let mut parked = Vec::with_capacity(MIN_IDLE_SESSIONS);
    for i in 0..MIN_IDLE_SESSIONS {
        let mut conn = client
            .connect()
            .map_err(|e| format!("connect #{i} failed: {e}"))?;
        let rsp = conn
            .request(&Request::new("GET", "/content/16", Vec::new()))
            .map_err(|e| format!("establish #{i} failed: {e}"))?;
        if rsp.status != 200 {
            return Err(format!("establish #{i}: status {}", rsp.status));
        }
        parked.push(conn);
    }
    let open = libseal_telemetry::gauge("services_event_open_connections").get();
    if open < MIN_IDLE_SESSIONS as i64 {
        return Err(format!(
            "reactor reports {open} open connections, need >= {MIN_IDLE_SESSIONS}"
        ));
    }

    // Active traffic while the crowd is parked.
    let mut active = client.connect().map_err(|e| e.to_string())?;
    for _ in 0..100 {
        let rsp = active
            .request(&Request::new("GET", "/content/512", Vec::new()))
            .map_err(|e| format!("active request failed: {e}"))?;
        if rsp.status != 200 {
            return Err(format!("active request: status {}", rsp.status));
        }
    }
    active.close();

    // Every parked session must still be alive.
    for (i, conn) in parked.iter_mut().enumerate() {
        let rsp = conn
            .request(&Request::new("GET", "/content/16", Vec::new()))
            .map_err(|e| format!("parked session #{i} died: {e}"))?;
        if rsp.status != 200 {
            return Err(format!("parked session #{i}: status {}", rsp.status));
        }
    }
    for conn in &mut parked {
        conn.close();
    }
    server.stop();
    println!("capacity: {open} concurrent sessions held and re-served on one reactor");
    Ok(())
}

/// Part 2: enclave transitions per request, event vs threaded.
fn transitions_per_request(id: &BenchIdentity, event: bool) -> f64 {
    let t0 = transitions();
    let ls = instance(id);
    let server = ApacheServer::start(
        ApacheConfig::new(TlsMode::LibSeal(ls), Arc::new(StaticContentRouter))
            .workers(8)
            .event_loop(event),
    )
    .expect("server");
    let client = HttpsClient::new(server.addr(), id.roots(), "localhost");
    let stats = LoadGenerator {
        clients: 8,
        duration: bench_secs(),
        persistent: true,
        ..LoadGenerator::default()
    }
    .run(&client, |_, _| {
        Request::new("GET", "/content/256", Vec::new())
    });
    server.stop();
    assert!(stats.requests > 0, "load generator completed no requests");
    (transitions() - t0) as f64 / stats.requests as f64
}

fn main() {
    let id = BenchIdentity::new();

    let capacity = capacity_gate(&id);

    let threaded = transitions_per_request(&id, false);
    let event = transitions_per_request(&id, true);
    let ratio = event / threaded.max(1e-9);
    print_table(
        "event-loop gate: enclave transitions per request (8 persistent clients)",
        &["serving model", "transitions/request"],
        &[
            vec!["threaded".into(), format!("{threaded:.2}")],
            vec!["event".into(), format!("{event:.2}")],
        ],
    );
    println!(
        "event/threaded transition ratio {ratio:.2} (need <= {MAX_TRANSITION_RATIO}); \
         capacity target {MIN_IDLE_SESSIONS} idle sessions"
    );

    let mut failed = false;
    if let Err(e) = capacity {
        eprintln!("FAIL: capacity gate: {e}");
        failed = true;
    }
    if ratio > MAX_TRANSITION_RATIO {
        eprintln!(
            "FAIL: event mode crossed the boundary {event:.2}x per request vs {threaded:.2}x \
             threaded — batching is not amortising transitions"
        );
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
    println!("event-loop gate passed");
}

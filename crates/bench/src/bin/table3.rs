//! Tab. 3: asynchronous enclave calls while varying the number of SGX
//! worker threads (48 lthread tasks per thread, 1 KB content).
//!
//! Paper shape: throughput grows with SGX threads until the CPU
//! saturates (3 threads on the paper's 4-core box), then declines from
//! contention.
//!
//! ```sh
//! cargo run --release -p libseal-bench --bin table3
//! ```

use std::sync::Arc;

use libseal_bench::*;
use libseal_httpx::http::Request;
use libseal_lthread::{RuntimeConfig, WaitMode};
use libseal_services::apache::{ApacheConfig, ApacheServer};
use libseal_services::{HttpsClient, LoadGenerator, StaticContentRouter, TlsMode};

fn main() {
    let id = BenchIdentity::new();
    let workers = 4;
    let mut rows = Vec::new();
    for sgx_threads in [1usize, 2, 3, 4] {
        let ls = libseal_instance_with_rt(
            &id,
            None,
            RuntimeConfig {
                sgx_threads,
                lthreads_per_thread: 48,
                slots: workers,
                stack_size: 256 * 1024,
                wait_mode: WaitMode::Poller,
            },
        );
        let server = ApacheServer::start(
            ApacheConfig::new(TlsMode::LibSeal(ls), Arc::new(StaticContentRouter))
                .workers(workers)
                .event_loop(false),
        )
        .expect("server");
        let client = HttpsClient::new(server.addr(), id.roots(), "localhost");
        let (stats, cpu) = with_cpu_percent(|| {
            LoadGenerator {
                clients: workers * 2,
                duration: bench_secs(),
                persistent: false,
                ..LoadGenerator::default()
            }
            .run(&client, |_, _| {
                Request::new("GET", "/content/1024", Vec::new())
            })
        });
        server.stop();
        rows.push(vec![
            sgx_threads.to_string(),
            rate(stats.throughput()),
            ms(stats.mean_latency),
            format!("{cpu:.0}"),
        ]);
    }
    print_table(
        "Tab 3: async enclave calls, varying #SGX threads (48 lthreads/thread, 1 KB)",
        &["#SGX threads", "throughput (req/s)", "latency (ms)", "%CPU"],
        &rows,
    );
    println!("\npaper shape: rises to a peak at ~3 threads (CPU saturation), then dips");
}

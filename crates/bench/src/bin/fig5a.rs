//! Fig. 5a: Git service latency vs throughput under increasing client
//! load, across the four configurations (native, LibSEAL-process,
//! LibSEAL-mem, LibSEAL-disk).
//!
//! Paper anchors: native peaks at 491 req/s; -process 472 (-4%);
//! -mem 452 (-8%); -disk 425 (-14%).
//!
//! ```sh
//! cargo run --release -p libseal-bench --bin fig5a
//! ```

use std::sync::Arc;

use libseal::GitModule;
use libseal_bench::*;
use libseal_httpx::http::Request;
use libseal_services::apache::{ApacheConfig, ApacheServer};
use libseal_services::git::GitBackend;
use libseal_services::{HttpsClient, LoadGenerator, TlsMode};

/// Deterministic per-client Git op stream: each client works on its
/// own repository (like distinct users), pushing twice then fetching.
fn git_request(client: usize, i: u64) -> Request {
    let repo = format!("repo-{client}");
    if i % 3 == 2 {
        Request::new(
            "GET",
            &format!("/repo/{repo}/info/refs?service=git-upload-pack"),
            Vec::new(),
        )
    } else {
        let branch = format!("refs/heads/b{}", i % 4);
        let cid: String = libseal_crypto::sha2::Sha256::digest(format!("{client}:{i}").as_bytes())
            .iter()
            .take(20)
            .map(|b| format!("{b:02x}"))
            .collect();
        Request::new(
            "POST",
            &format!("/repo/{repo}/git-receive-pack"),
            format!("old {cid} {branch}\n").into_bytes(),
        )
    }
}

fn run_point(
    id: &BenchIdentity,
    config: BenchConfig,
    clients: usize,
    workers: usize,
) -> (f64, f64) {
    let tls = match config {
        BenchConfig::Native => TlsMode::Native {
            cert: id.cert.clone(),
            key: id.key.clone(),
        },
        _ => TlsMode::LibSeal(libseal_instance(
            id,
            config,
            Some(Arc::new(GitModule)),
            workers,
            10, // this implementation's optimal check/trim interval (our Fig 6)
            false,
        )),
    };
    let backend = Arc::new(GitBackend::new());
    // The real Git backend costs several ms per request (the paper's
    // native peak of 491 req/s on 4 cores implies ~8 ms of CPU per
    // request); model that work so relative overheads are meaningful.
    let router = libseal_services::apache::DelayRouter {
        delay: std::time::Duration::from_millis(4),
        busy: true, // CPU-bound, like the real git-http-backend
        inner: Arc::new(backend),
    };
    let server = ApacheServer::start(
        ApacheConfig::new(tls, Arc::new(router))
            .workers(workers)
            .event_loop(false),
    )
    .expect("server");
    let client = HttpsClient::new(server.addr(), id.roots(), "localhost");
    let stats = LoadGenerator {
        clients,
        duration: bench_secs(),
        persistent: true,
        ..LoadGenerator::default()
    }
    .run(&client, git_request);
    server.stop();
    (
        stats.throughput(),
        stats.mean_latency.as_secs_f64() * 1000.0,
    )
}

fn main() {
    let id = BenchIdentity::new();
    let client_counts: Vec<usize> = if full_sweep() {
        vec![1, 2, 4, 8, 16, 32]
    } else {
        vec![1, 4, 8, 16]
    };
    // Persistent connections pin a worker each; provision one worker
    // per client so the load generator is never admission-limited.
    let workers = *client_counts.iter().max().unwrap();

    let mut rows = Vec::new();
    let mut peaks = Vec::new();
    for config in [
        BenchConfig::Native,
        BenchConfig::Process,
        BenchConfig::Mem,
        BenchConfig::Disk,
    ] {
        let mut peak: f64 = 0.0;
        for &clients in &client_counts {
            let (tput, lat) = run_point(&id, config, clients, workers);
            peak = peak.max(tput);
            rows.push(vec![
                config.label().to_string(),
                clients.to_string(),
                rate(tput),
                format!("{lat:.1}"),
            ]);
        }
        peaks.push((config.label(), peak));
    }
    print_table(
        "Fig 5a: Git latency vs throughput (replayed commit workload)",
        &[
            "config",
            "clients",
            "throughput (req/s)",
            "mean latency (ms)",
        ],
        &rows,
    );

    let native_peak = peaks[0].1;
    let mut summary = Vec::new();
    for (label, peak) in &peaks {
        summary.push(vec![
            label.to_string(),
            rate(*peak),
            overhead_pct(native_peak, *peak),
        ]);
    }
    print_table(
        "Fig 5a summary: peak throughput per configuration",
        &["config", "peak req/s", "vs native"],
        &summary,
    );
    println!("\npaper anchors: process -4%, mem -8%, disk -14% vs native");
}

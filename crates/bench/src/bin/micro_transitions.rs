//! §4.2 micro-benchmark: the three transition-elimination
//! optimisations.
//!
//! The paper instruments Apache and finds that (1) the untrusted
//! memory pool, (2) in-enclave locks/RNG and (3) keeping ex_data
//! outside together cut ecalls by up to 31% and ocalls by up to 49%,
//! improving throughput by up to 70%.
//!
//! This binary replays a per-request call pattern modelled on that
//! instrumentation against the simulated enclave, toggling the
//! optimisations, and reports transition counts and throughput.
//!
//! ```sh
//! cargo run --release -p libseal-bench --bin micro_transitions
//! ```

use std::sync::Arc;
use std::time::Instant;

use libseal_bench::*;
use libseal_sgxsim::cost::CostModel;
use libseal_sgxsim::enclave::{Enclave, EnclaveBuilder};
use libseal_sgxsim::pool::MemoryPool;

#[derive(Clone, Copy)]
struct Opts {
    pool: bool,
    in_enclave_rng: bool,
    ex_data_outside: bool,
}

/// Per-request pattern (from the paper's Apache instrumentation, per
/// TLS request). The proportions matter: only part of the traffic is
/// removable by the optimisations — socket I/O ocalls and the TLS
/// protocol ecalls remain — which is why the paper lands at -31%
/// ecalls / -49% ocalls rather than eliminating everything.
const ALLOCS_PER_REQ: usize = 3; // removable by opt 1 (2 ocalls each)
const RNG_PER_REQ: usize = 1; // removable by opt 2
const LOCKS_PER_REQ: usize = 1; // removable by opt 2
const EXDATA_PER_REQ: usize = 3; // removable by opt 3 (1 ecall each)
const FIXED_ECALLS: usize = 4; // TLS protocol entries that must remain
const FIXED_OCALLS: usize = 7; // socket read/write/poll that must remain

fn run(enclave: &Arc<Enclave<()>>, opts: Opts, requests: u64) -> (f64, u64, u64) {
    let services = enclave.services();
    services.stats().reset();
    let pool = if opts.pool {
        MemoryPool::new(256, 16)
    } else {
        MemoryPool::disabled(256)
    };
    let t0 = Instant::now();
    for _ in 0..requests {
        // The request's main processing ecall (ssl_read path).
        enclave
            .ecall("ssl_read", |_, sv| {
                for _ in 0..ALLOCS_PER_REQ {
                    let _block = pool.alloc(sv); // ocalls when disabled
                }
                for _ in 0..RNG_PER_REQ {
                    if opts.in_enclave_rng {
                        let mut b = [0u8; 16];
                        sv.fill_random(&mut b);
                    } else {
                        sv.ocall("read_urandom", || ());
                    }
                }
                for _ in 0..LOCKS_PER_REQ {
                    if !opts.in_enclave_rng {
                        // Without optimisation 2 the pthread lock is an
                        // ocall; with it, SDK locks stay inside.
                        sv.ocall("pthread_mutex", || ());
                    }
                }
            })
            .expect("ecall");
        // Application ex_data accesses (Apache stores the request in
        // the TLS object).
        for _ in 0..EXDATA_PER_REQ {
            if opts.ex_data_outside {
                // Shadow access outside: no transition.
            } else {
                enclave.ecall("get_ex_data", |_, _| ()).expect("ecall");
            }
        }
        // TLS protocol entries and socket I/O that no optimisation can
        // remove (ssl_pending, handshake state checks, reads/writes).
        for _ in 0..FIXED_ECALLS {
            enclave.ecall("ssl_state", |_, _| ()).expect("ecall");
        }
        // The response write ecall plus its socket-I/O ocalls.
        enclave
            .ecall("ssl_write", |_, sv| {
                for _ in 0..FIXED_OCALLS {
                    sv.ocall("socket_io", || ());
                }
            })
            .expect("ecall");
    }
    let elapsed = t0.elapsed();
    let snap = enclave.services().stats().snapshot();
    (
        requests as f64 / elapsed.as_secs_f64(),
        snap.ecalls,
        snap.ocalls,
    )
}

fn main() {
    let enclave = Arc::new(
        EnclaveBuilder::new(b"transition-opts")
            .cost_model(CostModel::default())
            .tcs_count(4)
            .build(|_| ()),
    );
    let requests = if full_sweep() { 20_000 } else { 4_000 };

    let configs = [
        (
            "no optimisations",
            Opts {
                pool: false,
                in_enclave_rng: false,
                ex_data_outside: false,
            },
        ),
        (
            "+ memory pool (opt 1)",
            Opts {
                pool: true,
                in_enclave_rng: false,
                ex_data_outside: false,
            },
        ),
        (
            "+ in-enclave locks/RNG (opt 2)",
            Opts {
                pool: true,
                in_enclave_rng: true,
                ex_data_outside: false,
            },
        ),
        (
            "+ ex_data outside (opt 3)",
            Opts {
                pool: true,
                in_enclave_rng: true,
                ex_data_outside: true,
            },
        ),
    ];

    let mut rows = Vec::new();
    let mut baseline: Option<(f64, u64, u64)> = None;
    for (label, opts) in configs {
        let (rps, ecalls, ocalls) = run(&enclave, opts, requests);
        let (brps, becalls, bocalls) = *baseline.get_or_insert((rps, ecalls, ocalls));
        rows.push(vec![
            label.to_string(),
            format!("{:.2}", ecalls as f64 / requests as f64),
            format!("{:.2}", ocalls as f64 / requests as f64),
            format!("{:+.0}%", (1.0 - ecalls as f64 / becalls as f64) * -100.0),
            format!("{:+.0}%", (1.0 - ocalls as f64 / bocalls as f64) * -100.0),
            rate(rps),
            overhead_pct(brps, rps),
        ]);
    }
    print_table(
        "§4.2 micro: transition-elimination optimisations",
        &[
            "configuration",
            "ecalls/req",
            "ocalls/req",
            "ecall delta",
            "ocall delta",
            "req/s",
            "throughput delta",
        ],
        &rows,
    );
    println!("\npaper anchors: up to -31% ecalls, -49% ocalls, +70% throughput");
}

//! Fig. 7a: Apache maximum throughput vs content size, STLS-native vs
//! LibSEAL (no auditing), non-persistent connections.
//!
//! Paper shape: 23-25% overhead for tiny content (handshake-bound),
//! falling to ~1% at 100 MB where the transfer dominates.
//!
//! ```sh
//! cargo run --release -p libseal-bench --bin fig7a
//! ```

use std::sync::Arc;

use libseal_bench::*;
use libseal_httpx::http::Request;
use libseal_services::apache::{ApacheConfig, ApacheServer};
use libseal_services::{HttpsClient, LoadGenerator, StaticContentRouter, TlsMode};

fn run_point(id: &BenchIdentity, config: BenchConfig, size: usize, workers: usize) -> f64 {
    let tls = match config {
        BenchConfig::Native => TlsMode::Native {
            cert: id.cert.clone(),
            key: id.key.clone(),
        },
        _ => TlsMode::LibSeal(libseal_instance(id, config, None, workers, 0, false)),
    };
    let server = ApacheServer::start(
        ApacheConfig::new(tls, Arc::new(StaticContentRouter))
            .workers(workers)
            .event_loop(false),
    )
    .expect("server");
    let client = HttpsClient::new(server.addr(), id.roots(), "localhost");
    let path = format!("/content/{size}");
    let stats = LoadGenerator {
        clients: workers * 2,
        duration: bench_secs(),
        persistent: false, // new TLS connection per request (worst case)
        ..LoadGenerator::default()
    }
    .run(&client, |_, _| Request::new("GET", &path, Vec::new()));
    server.stop();
    stats.throughput()
}

fn main() {
    let id = BenchIdentity::new();
    let workers = 4;
    let mut sizes: Vec<usize> = vec![0, 1 << 10, 10 << 10, 64 << 10, 512 << 10, 1 << 20];
    if full_sweep() {
        sizes.push(10 << 20);
        sizes.push(100 << 20);
    }

    let mut rows = Vec::new();
    for &size in &sizes {
        let native = run_point(&id, BenchConfig::Native, size, workers);
        let libseal = run_point(&id, BenchConfig::Process, size, workers);
        rows.push(vec![
            human_size(size),
            rate(native),
            rate(libseal),
            overhead_pct(native, libseal),
        ]);
    }
    print_table(
        "Fig 7a: Apache throughput vs content size (non-persistent connections)",
        &[
            "content",
            "Apache-LibreSSL (req/s)",
            "Apache-LibSEAL (req/s)",
            "overhead",
        ],
        &rows,
    );
    println!("\npaper shape: ~23-25% overhead at small sizes, ~1-2% at very large sizes");
}

fn human_size(s: usize) -> String {
    if s >= 1 << 20 {
        format!("{} MB", s >> 20)
    } else if s >= 1 << 10 {
        format!("{} KB", s >> 10)
    } else {
        format!("{s} B")
    }
}

//! Ablation: what each layer of the audit-log design costs.
//!
//! DESIGN.md calls out the log's integrity stack — hash chain, head
//! signature, rollback counter, sealed journal, per-pair fsync. This
//! binary measures append cost as the layers accumulate, showing where
//! the paper's "LibSEAL-mem vs LibSEAL-disk" gap comes from.
//!
//! ```sh
//! cargo run --release -p libseal-bench --bin ablation
//! ```

use std::time::{Duration, Instant};

use libseal::log::{AuditLog, HwCounterGuard, LogBacking, NoGuard, RollbackGuard, RoteGuard};
use libseal::{GitModule, ServiceModule};
use libseal_bench::*;
use libseal_crypto::ed25519::SigningKey;
use libseal_sealdb::{Database, Value};

const N: u64 = 300;

fn time_per_op(mut f: impl FnMut(u64)) -> f64 {
    let t0 = Instant::now();
    for i in 0..N {
        f(i);
    }
    t0.elapsed().as_secs_f64() * 1e6 / N as f64
}

fn audit_log(backing: LogBacking, guard: Box<dyn RollbackGuard>) -> AuditLog {
    let ssm = GitModule;
    AuditLog::open(
        backing,
        [0u8; 32],
        SigningKey::from_seed(&[1u8; 32]),
        guard,
        ssm.schema_sql(),
        ssm.tables(),
    )
    .expect("log")
}

fn append(log: &mut AuditLog, i: u64) {
    let t = log.next_time() as i64;
    log.append(
        "updates",
        &[
            Value::Integer(t),
            Value::Text("repo".into()),
            Value::Text("refs/heads/main".into()),
            Value::Text(format!("{i:040x}")),
            Value::Text("update".into()),
        ],
    )
    .expect("append");
}

fn main() {
    let mut rows = Vec::new();

    // Layer 0: a bare relational insert (no audit machinery).
    {
        let mut db = Database::new();
        db.execute(
            "CREATE TABLE updates(time INTEGER, repo TEXT, branch TEXT, cid TEXT, type TEXT)",
        )
        .unwrap();
        let us = time_per_op(|i| {
            db.execute_with(
                "INSERT INTO updates VALUES (?, 'repo', 'refs/heads/main', ?, 'update')",
                &[Value::Integer(i as i64), Value::Text(format!("{i:040x}"))],
            )
            .unwrap();
        });
        rows.push(vec!["bare INSERT (sealdb)".into(), format!("{us:.1}")]);
    }

    // Layer 1: + hash chain + Ed25519 head signature (in-memory).
    {
        let mut log = audit_log(LogBacking::Memory, Box::new(NoGuard));
        let us = time_per_op(|i| append(&mut log, i));
        rows.push(vec![
            "+ hash chain + signed head (mem)".into(),
            format!("{us:.1}"),
        ]);
    }

    // Layer 2: + ROTE rollback counter (f = 1 quorum, in-process).
    {
        let cluster = libseal_rote::Cluster::new(1, Duration::ZERO, b"ablate").unwrap();
        let mut log = audit_log(LogBacking::Memory, Box::new(RoteGuard(std::sync::Arc::new(cluster))));
        let us = time_per_op(|i| append(&mut log, i));
        rows.push(vec!["+ ROTE quorum counter".into(), format!("{us:.1}")]);
    }

    // Layer 3: + sealed journal on disk, buffered (no fsync).
    {
        let cluster = libseal_rote::Cluster::new(1, Duration::ZERO, b"ablate").unwrap();
        let path = bench_log_path(BenchConfig::Disk);
        let mut log = audit_log(
            LogBacking::DiskNoSync(path.clone()),
            Box::new(RoteGuard(std::sync::Arc::new(cluster))),
        );
        let us = time_per_op(|i| append(&mut log, i));
        rows.push(vec![
            "+ sealed journal (buffered)".into(),
            format!("{us:.1}"),
        ]);
        let _ = std::fs::remove_file(&path);
    }

    // Layer 4: + fsync per append (the paper's per-pair durability).
    {
        let cluster = libseal_rote::Cluster::new(1, Duration::ZERO, b"ablate").unwrap();
        let path = bench_log_path(BenchConfig::Disk);
        let mut log = audit_log(
            LogBacking::Disk(path.clone()),
            Box::new(RoteGuard(std::sync::Arc::new(cluster))),
        );
        let us = time_per_op(|i| {
            append(&mut log, i);
            log.flush().unwrap();
        });
        rows.push(vec!["+ fsync per append".into(), format!("{us:.1}")]);
        let _ = std::fs::remove_file(&path);
    }

    // Alternative rollback guard: the raw SGX hardware counter, to show
    // why the paper rejects it (§5.1).
    {
        let counter =
            libseal_sgxsim::MonotonicCounter::with_properties(Duration::from_millis(100), 1 << 30);
        let mut log = audit_log(LogBacking::Memory, Box::new(HwCounterGuard(counter)));
        let t0 = Instant::now();
        for i in 0..5 {
            append(&mut log, i);
        }
        let us = t0.elapsed().as_secs_f64() * 1e6 / 5.0;
        rows.push(vec![
            "ALT: SGX hardware counter instead of ROTE".into(),
            format!("{us:.0}"),
        ]);
    }

    print_table(
        "Ablation: audit-log append cost by design layer",
        &["configuration", "us per append"],
        &rows,
    );
    println!(
        "\nreading: the chain+signature dominates the in-memory cost; the ROTE \
         quorum is cheap (MACs); durable disk adds the fsync; the SGX hardware \
         counter (~100 ms per increment) is why LibSEAL uses ROTE (§5.1)."
    );
    let _ = GitModule.name();
}

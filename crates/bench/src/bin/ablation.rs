//! Ablation: what each layer of the audit-log design costs.
//!
//! DESIGN.md calls out the log's integrity stack — hash chain, head
//! signature, rollback counter, sealed journal, per-pair fsync. This
//! binary measures append cost as the layers accumulate, showing where
//! the paper's "LibSEAL-mem vs LibSEAL-disk" gap comes from.
//!
//! Latencies are reported from telemetry [`Histogram`]s (the same
//! log-linear instrument behind `/metrics`), and the footer
//! cross-checks the per-layer numbers against the counters the
//! instrumented crates themselves recorded.
//!
//! ```sh
//! cargo run --release -p libseal-bench --bin ablation
//! ```

use std::time::{Duration, Instant};

use libseal::log::{AuditLog, HwCounterGuard, LogBacking, NoGuard, RollbackGuard, RoteGuard};
use libseal::{GitModule, ServiceModule};
use libseal_bench::*;
use libseal_crypto::ed25519::SigningKey;
use libseal_sealdb::{Database, Value};
use libseal_telemetry::{Histogram, HistogramSnapshot};

const N: u64 = 300;

/// Runs `f` N times, recording each call into a fresh telemetry
/// histogram; quantiles come from its log-linear buckets.
fn measure(mut f: impl FnMut(u64)) -> HistogramSnapshot {
    let h = Histogram::new();
    for i in 0..N {
        let t0 = Instant::now();
        f(i);
        h.record_duration(t0.elapsed());
    }
    h.snapshot()
}

fn us(ns: u64) -> String {
    format!("{:.1}", ns as f64 / 1000.0)
}

fn row(label: &str, s: &HistogramSnapshot) -> Vec<String> {
    vec![
        label.into(),
        us(s.mean()),
        us(s.percentile(0.5)),
        us(s.percentile(0.95)),
    ]
}

fn audit_log(backing: LogBacking, guard: Box<dyn RollbackGuard>) -> AuditLog {
    let ssm = GitModule;
    AuditLog::open(
        backing,
        [0u8; 32],
        SigningKey::from_seed(&[1u8; 32]),
        guard,
        ssm.schema_sql(),
        ssm.tables(),
    )
    .expect("log")
}

fn append(log: &mut AuditLog, i: u64) {
    let t = log.next_time() as i64;
    log.append(
        "updates",
        &[
            Value::Integer(t),
            Value::Text("repo".into()),
            Value::Text("refs/heads/main".into()),
            Value::Text(format!("{i:040x}")),
            Value::Text("update".into()),
        ],
    )
    .expect("append");
}

fn main() {
    let mut rows = Vec::new();

    // Layer 0: a bare relational insert (no audit machinery).
    {
        let mut db = Database::new();
        db.execute(
            "CREATE TABLE updates(time INTEGER, repo TEXT, branch TEXT, cid TEXT, type TEXT)",
        )
        .unwrap();
        let s = measure(|i| {
            db.execute_with(
                "INSERT INTO updates VALUES (?, 'repo', 'refs/heads/main', ?, 'update')",
                &[Value::Integer(i as i64), Value::Text(format!("{i:040x}"))],
            )
            .unwrap();
        });
        rows.push(row("bare INSERT (sealdb)", &s));
    }

    // Layer 1: + hash chain + Ed25519 head signature (in-memory).
    {
        let mut log = audit_log(LogBacking::Memory, Box::new(NoGuard));
        let s = measure(|i| append(&mut log, i));
        rows.push(row("+ hash chain + signed head (mem)", &s));
    }

    // Layer 2: + ROTE rollback counter (f = 1 quorum, in-process).
    {
        let cluster = libseal_rote::Cluster::new(1, Duration::ZERO, b"ablate").unwrap();
        let mut log = audit_log(
            LogBacking::Memory,
            Box::new(RoteGuard(std::sync::Arc::new(cluster))),
        );
        let s = measure(|i| append(&mut log, i));
        rows.push(row("+ ROTE quorum counter", &s));
    }

    // Layer 3: + sealed journal on disk, buffered (no fsync).
    {
        let cluster = libseal_rote::Cluster::new(1, Duration::ZERO, b"ablate").unwrap();
        let path = bench_log_path(BenchConfig::Disk);
        let mut log = audit_log(
            LogBacking::DiskNoSync(path.clone()),
            Box::new(RoteGuard(std::sync::Arc::new(cluster))),
        );
        let s = measure(|i| append(&mut log, i));
        rows.push(row("+ sealed journal (buffered)", &s));
        let _ = std::fs::remove_file(&path);
    }

    // Layer 4: + fsync per append (the paper's per-pair durability).
    {
        let cluster = libseal_rote::Cluster::new(1, Duration::ZERO, b"ablate").unwrap();
        let path = bench_log_path(BenchConfig::Disk);
        let mut log = audit_log(
            LogBacking::Disk(path.clone()),
            Box::new(RoteGuard(std::sync::Arc::new(cluster))),
        );
        let s = measure(|i| {
            append(&mut log, i);
            log.flush().unwrap();
        });
        rows.push(row("+ fsync per append", &s));
        let _ = std::fs::remove_file(&path);
    }

    // Alternative rollback guard: the raw SGX hardware counter, to show
    // why the paper rejects it (§5.1).
    {
        let counter =
            libseal_sgxsim::MonotonicCounter::with_properties(Duration::from_millis(100), 1 << 30);
        let mut log = audit_log(LogBacking::Memory, Box::new(HwCounterGuard(counter)));
        let h = Histogram::new();
        for i in 0..5 {
            let t0 = Instant::now();
            append(&mut log, i);
            h.record_duration(t0.elapsed());
        }
        let s = h.snapshot();
        rows.push(vec![
            "ALT: SGX hardware counter instead of ROTE".into(),
            format!("{:.0}", s.mean() as f64 / 1000.0),
            format!("{:.0}", s.percentile(0.5) as f64 / 1000.0),
            format!("{:.0}", s.percentile(0.95) as f64 / 1000.0),
        ]);
    }

    print_table(
        "Ablation: audit-log append cost by design layer",
        &["configuration", "mean us", "p50 us", "p95 us"],
        &rows,
    );

    // Cross-check against what the instrumented crates recorded into
    // the process-wide registry while the layers ran.
    let reg = libseal_telemetry::global();
    let append_ns = reg.histogram("core_append_ns").snapshot();
    println!(
        "\ntelemetry cross-check: core_append_ns count={} mean={}us p95={}us, \
         sealdb_journal_fsyncs_total={}, rote_round_ns p50={}us",
        append_ns.count(),
        us(append_ns.mean()),
        us(append_ns.percentile(0.95)),
        reg.counter("sealdb_journal_fsyncs_total").get(),
        us(reg.histogram("rote_round_ns").snapshot().percentile(0.5)),
    );
    println!(
        "\nreading: the chain+signature dominates the in-memory cost; the ROTE \
         quorum is cheap (MACs); durable disk adds the fsync; the SGX hardware \
         counter (~100 ms per increment) is why LibSEAL uses ROTE (§5.1)."
    );
    let _ = GitModule.name();
}

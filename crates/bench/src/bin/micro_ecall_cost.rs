//! §4.3/§6.8 micro-benchmark: the cost of one synchronous ecall as
//! more threads execute inside the enclave.
//!
//! Paper anchors: ~8,500 cycles with one thread, ~170,000 cycles with
//! 48 threads (20×). The simulator charges these costs; this binary
//! measures that the end-to-end wall-clock cost matches the model, and
//! contrasts it with the async slot handoff.
//!
//! ```sh
//! cargo run --release -p libseal-bench --bin micro_ecall_cost
//! ```

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

use libseal_bench::*;
use libseal_lthread::{AsyncRuntime, RuntimeConfig, WaitMode};
use libseal_sgxsim::cost::CostModel;
use libseal_sgxsim::enclave::EnclaveBuilder;

fn main() {
    let model = CostModel::default();
    let ghz = model.clock_ghz;
    let parallelism = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!("host parallelism: {parallelism} hardware thread(s)");
    println!(
        "(beyond that thread count, measured wall-clock per call includes OS \
         scheduling on top of the modelled contention)"
    );

    // Synchronous ecall cost under contention.
    let mut rows = Vec::new();
    for threads in [1usize, 2, 4, 8, 16, 32, 48] {
        let enclave = Arc::new(
            EnclaveBuilder::new(b"ecall-cost")
                .cost_model(model.clone())
                .tcs_count(threads as u64 + 2)
                .build(|_| ()),
        );
        let stop = Arc::new(AtomicBool::new(false));
        let mut handles = Vec::new();
        for _ in 0..threads {
            let enclave = Arc::clone(&enclave);
            let stop = Arc::clone(&stop);
            handles.push(std::thread::spawn(move || {
                let mut calls = 0u64;
                let t0 = Instant::now();
                while !stop.load(Ordering::Acquire) {
                    let _ = enclave.ecall("noop", |_, _| ());
                    calls += 1;
                }
                (calls, t0.elapsed())
            }));
        }
        std::thread::sleep(bench_secs().min(std::time::Duration::from_secs(1)));
        stop.store(true, Ordering::Release);
        let mut total_calls = 0u64;
        let mut total_time = std::time::Duration::ZERO;
        for h in handles {
            let (calls, dt) = h.join().unwrap();
            total_calls += calls;
            total_time += dt;
        }
        let ns_per_call = total_time.as_nanos() as f64 / total_calls.max(1) as f64;
        let cycles = ns_per_call * ghz;
        rows.push(vec![
            threads.to_string(),
            format!("{:.0}", ns_per_call),
            format!("{:.0}", cycles),
            format!("{:.0}", model.transition_cycles(threads as u64)),
        ]);
    }
    print_table(
        "§6.8 micro: synchronous ecall cost vs in-enclave thread count",
        &[
            "threads",
            "measured ns/ecall",
            "measured cycles",
            "model cycles",
        ],
        &rows,
    );

    // Async slot handoff for contrast.
    let enclave = Arc::new(
        EnclaveBuilder::new(b"ecall-cost-async")
            .cost_model(model.clone())
            .tcs_count(8)
            .build(|_| ()),
    );
    let rt = AsyncRuntime::start(
        enclave,
        RuntimeConfig {
            sgx_threads: 3,
            lthreads_per_thread: 8,
            slots: 1,
            stack_size: 128 * 1024,
            wait_mode: WaitMode::BusyWait,
        },
    )
    .unwrap();
    let t0 = Instant::now();
    let iters = 5_000u64;
    for _ in 0..iters {
        rt.async_ecall(0, |_, _, _| ());
    }
    let ns = t0.elapsed().as_nanos() as f64 / iters as f64;
    println!(
        "\nasync ecall via slots: {:.0} ns/call ({:.0} cycles) — the §4.3 mechanism \
         replaces the transition with a slot handoff",
        ns,
        ns * ghz
    );
    rt.shutdown();
    println!("\npaper anchors: 8,500 cycles at 1 thread; ~170,000 at 48 (20x)");
}

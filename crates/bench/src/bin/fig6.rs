//! Fig. 6: normalized invariant-checking + trimming time as a function
//! of the check interval, for all three services.
//!
//! Paper shape: a U-curve — checking too often pays the fixed pass
//! cost repeatedly; checking too rarely makes each pass expensive
//! because the untrimmed log has grown. Minima at ~25 requests (Git),
//! ~75 (ownCloud) and ~100 (Dropbox).
//!
//! ```sh
//! cargo run --release -p libseal-bench --bin fig6
//! ```

use std::collections::BTreeMap;
use std::time::Instant;

use libseal::log::{AuditLog, LogBacking, NoGuard};
use libseal::{Checker, DropboxModule, GitModule, OwnCloudModule, ServiceModule};
use libseal_bench::*;
use libseal_crypto::ed25519::SigningKey;
use libseal_httpx::http::{Request, Response};

fn fresh_log(ssm: &dyn ServiceModule) -> AuditLog {
    AuditLog::open(
        LogBacking::Memory,
        [0u8; 32],
        SigningKey::from_seed(&[1u8; 32]),
        Box::new(NoGuard),
        ssm.schema_sql(),
        ssm.tables(),
    )
    .expect("log")
}

/// Generates protocol-consistent request/response pairs (an honest
/// service): violations would block trimming and distort the curve.
trait Workload {
    fn next_pair(&mut self) -> (Vec<u8>, Vec<u8>);
}

/// Git: pushes over four branches; every third request fetches and the
/// advertisement faithfully lists every live branch.
#[derive(Default)]
struct GitWorkload {
    i: u64,
    latest: BTreeMap<String, String>,
}

impl Workload for GitWorkload {
    fn next_pair(&mut self) -> (Vec<u8>, Vec<u8>) {
        self.i += 1;
        let i = self.i;
        if i.is_multiple_of(3) {
            let mut advert = String::new();
            for (branch, cid) in &self.latest {
                advert.push_str(&format!("{cid} {branch}\n"));
            }
            let req = Request::new(
                "GET",
                "/repo/r/info/refs?service=git-upload-pack",
                Vec::new(),
            );
            (
                req.to_bytes(),
                Response::new(200, advert.into_bytes()).to_bytes(),
            )
        } else {
            let branch = format!("refs/heads/b{}", i % 4);
            let cid = format!("{i:040x}");
            self.latest.insert(branch.clone(), cid.clone());
            let req = Request::new(
                "POST",
                "/repo/r/git-receive-pack",
                format!("old {cid} {branch}\n").into_bytes(),
            );
            (
                req.to_bytes(),
                Response::new(200, b"ok\n".to_vec()).to_bytes(),
            )
        }
    }
}

/// ownCloud: a client streams edits and periodically saves a snapshot
/// (enabling trimming of everything before it).
#[derive(Default)]
struct OwnCloudWorkload {
    i: u64,
    seq: u64,
}

impl Workload for OwnCloudWorkload {
    fn next_pair(&mut self) -> (Vec<u8>, Vec<u8>) {
        self.i += 1;
        if self.i.is_multiple_of(20) {
            let req = Request::new(
                "POST",
                "/owncloud/leave",
                format!(
                    r#"{{"doc":"d","client":"c","snapshot":"v{}","seq":{}}}"#,
                    self.i, self.seq
                )
                .into_bytes(),
            );
            (
                req.to_bytes(),
                Response::new(200, br#"{"ok":true}"#.to_vec()).to_bytes(),
            )
        } else {
            self.seq += 1;
            let req = Request::new(
                "POST",
                "/owncloud/sync",
                format!(
                    r#"{{"doc":"d","client":"c","ops":[{{"content":"+x{}"}}]}}"#,
                    self.i
                )
                .into_bytes(),
            );
            let rsp = format!(r#"{{"acks":[{}],"ops":[]}}"#, self.seq);
            (
                req.to_bytes(),
                Response::new(200, rsp.into_bytes()).to_bytes(),
            )
        }
    }
}

/// Dropbox: commits rotate over a bounded working set of files; every
/// fourth request lists — faithfully.
#[derive(Default)]
struct DropboxWorkload {
    i: u64,
    files: BTreeMap<String, String>,
}

impl Workload for DropboxWorkload {
    fn next_pair(&mut self) -> (Vec<u8>, Vec<u8>) {
        self.i += 1;
        let i = self.i;
        if i.is_multiple_of(4) {
            let items: Vec<String> = self
                .files
                .iter()
                .map(|(f, b)| format!(r#"{{"file":"{f}","blocks":["{b}"],"size":10}}"#))
                .collect();
            let req = Request::new(
                "POST",
                "/dropbox/list",
                br#"{"account":"a","host":"h"}"#.to_vec(),
            );
            let rsp = format!(r#"{{"files":[{}]}}"#, items.join(","));
            (
                req.to_bytes(),
                Response::new(200, rsp.into_bytes()).to_bytes(),
            )
        } else {
            let file = format!("f{}", i % 25);
            let blocks = format!("{i:064x}");
            self.files.insert(file.clone(), blocks.clone());
            let req = Request::new(
                "POST",
                "/dropbox/commit_batch",
                format!(
                    r#"{{"account":"a","host":"h","commits":[{{"file":"{file}","blocks":["{blocks}"],"size":10}}]}}"#
                )
                .into_bytes(),
            );
            (
                req.to_bytes(),
                Response::new(200, br#"{"ok":true}"#.to_vec()).to_bytes(),
            )
        }
    }
}

/// How the checker is driven over the sweep.
#[derive(Clone, Copy, PartialEq)]
enum Mode {
    /// Paper's design: a full-scan check and a trim, coupled, every
    /// `interval` requests. Trimming is what keeps checks affordable,
    /// hence the U-curve.
    FullScan,
    /// Delta-maintained views: an incremental check every `interval`
    /// requests, trimming decoupled at a fixed period (every
    /// [`TRIM_EVERY`] requests). With O(rows-touched) checks the trim
    /// period no longer has to track the check period — that is the
    /// point of the re-run.
    Incremental,
}

/// Fixed trim period in [`Mode::Incremental`]: trimming becomes a
/// memory-bound decision (EPC pressure), not a check-cost one.
const TRIM_EVERY: usize = 300;

fn run_service<W: Workload>(
    ssm: &dyn ServiceModule,
    make_workload: impl Fn() -> W,
    intervals: &[usize],
    requests: u64,
    mode: Mode,
) -> Vec<f64> {
    let mut out = Vec::new();
    for &interval in intervals {
        // Fresh workload AND fresh log per leg: the generated traffic
        // must be consistent with what this log has seen.
        let mut workload = make_workload();
        let mut log = fresh_log(ssm);
        if mode == Mode::Incremental {
            Checker::install(ssm, &mut log).expect("install views");
        }
        let mut spent = std::time::Duration::ZERO;
        let mut since = 0usize;
        let mut since_trim = 0usize;
        for _ in 0..requests {
            let (req, rsp) = workload.next_pair();
            ssm.log_pair(&req, &rsp, &mut log).expect("log");
            since += 1;
            since_trim += 1;
            if since >= interval {
                since = 0;
                let t0 = Instant::now();
                let outcome = match mode {
                    Mode::FullScan => Checker::run_checks(ssm, &log).expect("check"),
                    Mode::Incremental => {
                        Checker::run_checks_incremental(ssm, &mut log).expect("check")
                    }
                };
                assert_eq!(
                    outcome.total_violations(),
                    0,
                    "honest workload must stay clean"
                );
                if mode == Mode::FullScan || since_trim >= TRIM_EVERY {
                    since_trim = 0;
                    log.trim(ssm.trim_queries()).expect("trim");
                }
                spent += t0.elapsed();
            }
        }
        out.push(spent.as_secs_f64() * 1e6 / requests as f64);
    }
    out
}

fn main() {
    let intervals = [1usize, 5, 10, 25, 50, 75, 100, 150, 200, 250, 300];
    let requests: u64 = if full_sweep() { 1500 } else { 600 };

    let git = run_service(
        &GitModule,
        GitWorkload::default,
        &intervals,
        requests,
        Mode::FullScan,
    );
    let oc = run_service(
        &OwnCloudModule,
        OwnCloudWorkload::default,
        &intervals,
        requests,
        Mode::FullScan,
    );
    let db = run_service(
        &DropboxModule,
        DropboxWorkload::default,
        &intervals,
        requests,
        Mode::FullScan,
    );

    let giti = run_service(
        &GitModule,
        GitWorkload::default,
        &intervals,
        requests,
        Mode::Incremental,
    );
    let oci = run_service(
        &OwnCloudModule,
        OwnCloudWorkload::default,
        &intervals,
        requests,
        Mode::Incremental,
    );
    let dbi = run_service(
        &DropboxModule,
        DropboxWorkload::default,
        &intervals,
        requests,
        Mode::Incremental,
    );

    let table = |vals: [&[f64]; 3]| {
        let mut rows = Vec::new();
        for (k, &interval) in intervals.iter().enumerate() {
            rows.push(vec![
                interval.to_string(),
                format!("{:.1}", vals[0][k]),
                format!("{:.1}", vals[1][k]),
                format!("{:.1}", vals[2][k]),
            ]);
        }
        rows
    };
    print_table(
        "Fig 6: normalized invariant checking + trimming time (us per request)",
        &["interval (#requests)", "Git", "ownCloud", "Dropbox"],
        &table([&git, &oc, &db]),
    );
    print_table(
        &format!("Fig 6 re-run: incremental checker, trim decoupled (every {TRIM_EVERY} requests)"),
        &["interval (#requests)", "Git", "ownCloud", "Dropbox"],
        &table([&giti, &oci, &dbi]),
    );

    let best = |v: &[f64]| {
        intervals[v
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .map(|(i, _)| i)
            .unwrap_or(0)]
    };
    println!(
        "\nfull-scan minima: Git at {}, ownCloud at {}, Dropbox at {} requests",
        best(&git),
        best(&oc),
        best(&db)
    );
    println!(
        "incremental minima: Git at {}, ownCloud at {}, Dropbox at {} requests",
        best(&giti),
        best(&oci),
        best(&dbi)
    );
    println!("paper anchors: optimal intervals 25 (Git), 75 (ownCloud), 100 (Dropbox)");
}

//! EPC-pressure ablation (§2.5): enclave memory beyond the EPC limit
//! pays paging costs.
//!
//! The audit log lives inside the enclave; if it outgrew the ~93 MB
//! usable EPC, every query would start swapping 4 KB pages at high
//! cost. This binary sweeps an in-enclave working set across the EPC
//! limit and measures touch throughput, showing the cliff — and why
//! LibSEAL's log trimming (§5.1) matters beyond disk usage.
//!
//! ```sh
//! cargo run --release -p libseal-bench --bin epc_pressure
//! ```

use std::time::Instant;

use libseal_bench::print_table;
use libseal_sgxsim::cost::CostModel;
use libseal_sgxsim::enclave::EnclaveBuilder;

fn main() {
    // A small EPC so the sweep is quick; the ratio to the limit is
    // what matters.
    let limit: u64 = 16 * 1024 * 1024;
    let model = CostModel {
        epc_limit_bytes: limit,
        ..CostModel::default()
    };
    let enclave = EnclaveBuilder::new(b"epc-pressure")
        .cost_model(model)
        .build(|_| ());

    let mut rows = Vec::new();
    let touch_bytes: u64 = 256 * 1024;
    for fraction in [25u64, 50, 75, 100, 110, 125, 150, 200] {
        let working_set = limit * fraction / 100;
        enclave
            .ecall("alloc", |_, sv| {
                let cur = sv.epc_resident();
                if working_set > cur {
                    sv.epc_alloc(working_set - cur);
                } else {
                    sv.epc_free(cur - working_set);
                }
            })
            .unwrap();
        let iters = 200u64;
        let t0 = Instant::now();
        enclave
            .ecall("touch", |_, sv| {
                for _ in 0..iters {
                    sv.epc_touch(touch_bytes);
                }
            })
            .unwrap();
        let elapsed = t0.elapsed();
        let mbps = (touch_bytes * iters) as f64 / (1024.0 * 1024.0) / elapsed.as_secs_f64();
        let swaps = enclave.services().stats().snapshot().epc_page_swaps;
        enclave.services().stats().reset();
        rows.push(vec![
            format!("{fraction}%"),
            format!("{:.1}", working_set as f64 / (1024.0 * 1024.0)),
            format!("{mbps:.0}"),
            swaps.to_string(),
        ]);
    }
    print_table(
        "EPC pressure: in-enclave touch throughput vs working-set size (16 MB EPC)",
        &[
            "working set / EPC",
            "working set (MB)",
            "touch MB/s",
            "page swaps",
        ],
        &rows,
    );
    println!(
        "\nreading: throughput collapses once the working set exceeds the EPC — \
         the §2.5 paging cliff that makes log trimming (§5.1) a performance \
         feature, not just a disk-space one."
    );
}

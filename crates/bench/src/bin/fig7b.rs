//! Fig. 7b: Squid proxy latency vs throughput at 1 KB content,
//! STLS-native vs LibSEAL.
//!
//! Paper anchors: 850 → 590 req/s (-31%); the proxy's two TLS legs
//! double the handshake and crypto work, amplifying the enclave tax.
//!
//! ```sh
//! cargo run --release -p libseal-bench --bin fig7b
//! ```

use std::sync::Arc;

use libseal_bench::*;
use libseal_httpx::http::Request;
use libseal_services::apache::{ApacheConfig, ApacheServer};
use libseal_services::squid::{SquidConfig, SquidProxy};
use libseal_services::{HttpsClient, LoadGenerator, StaticContentRouter, TlsMode};

fn run_point(id: &BenchIdentity, libseal: bool, clients: usize, workers: usize) -> (f64, f64) {
    // Origin HTTP server on a separate "machine".
    let origin = ApacheServer::start(
        ApacheConfig::new(
            TlsMode::Native {
                cert: id.cert.clone(),
                key: id.key.clone(),
            },
            Arc::new(StaticContentRouter),
        )
        .workers(2)
        .event_loop(false),
    )
    .expect("origin");

    let tls = if libseal {
        TlsMode::LibSeal(libseal_instance(
            id,
            BenchConfig::Process,
            None,
            workers,
            0,
            false,
        ))
    } else {
        TlsMode::Native {
            cert: id.cert.clone(),
            key: id.key.clone(),
        }
    };
    let proxy = SquidProxy::start(
        SquidConfig::new(tls, origin.addr(), id.roots(), "localhost")
            .workers(workers)
            .event_loop(false),
    )
    .expect("proxy");

    let client = HttpsClient::new(proxy.addr(), id.roots(), "localhost");
    let stats = LoadGenerator {
        clients,
        duration: bench_secs(),
        persistent: false, // fresh client connection => two handshakes
        ..LoadGenerator::default()
    }
    .run(&client, |_, _| {
        Request::new("GET", "/content/1024", Vec::new())
    });
    proxy.stop();
    origin.stop();
    (
        stats.throughput(),
        stats.mean_latency.as_secs_f64() * 1000.0,
    )
}

fn main() {
    let id = BenchIdentity::new();
    let workers = 4;
    let client_counts: Vec<usize> = if full_sweep() {
        vec![1, 2, 4, 8, 16]
    } else {
        vec![1, 4, 8]
    };

    let mut rows = Vec::new();
    let mut peaks = Vec::new();
    for (label, libseal) in [("Squid-LibreSSL", false), ("Squid-LibSEAL", true)] {
        let mut peak: f64 = 0.0;
        for &clients in &client_counts {
            let (tput, lat) = run_point(&id, libseal, clients, workers);
            peak = peak.max(tput);
            rows.push(vec![
                label.to_string(),
                clients.to_string(),
                rate(tput),
                format!("{lat:.1}"),
            ]);
        }
        peaks.push((label, peak));
    }
    print_table(
        "Fig 7b: Squid latency vs throughput (1 KB content, non-persistent)",
        &[
            "config",
            "clients",
            "throughput (req/s)",
            "mean latency (ms)",
        ],
        &rows,
    );
    println!(
        "\npeaks: {} {} req/s, {} {} req/s ({})",
        peaks[0].0,
        rate(peaks[0].1),
        peaks[1].0,
        rate(peaks[1].1),
        overhead_pct(peaks[0].1, peaks[1].1)
    );
    println!("paper anchors: 850 vs 590 req/s (-31%) — larger than Apache's overhead");
}

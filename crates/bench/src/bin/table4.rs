//! Tab. 4: asynchronous enclave calls while varying the number of
//! lthread tasks per SGX thread (3 SGX threads, 1 KB content).
//!
//! Paper shape: throughput is flat (~1,700 req/s on their hardware);
//! too few lthreads mainly hurts latency.
//!
//! ```sh
//! cargo run --release -p libseal-bench --bin table4
//! ```

use std::sync::Arc;

use libseal_bench::*;
use libseal_httpx::http::Request;
use libseal_lthread::{RuntimeConfig, WaitMode};
use libseal_services::apache::{ApacheConfig, ApacheServer};
use libseal_services::{HttpsClient, LoadGenerator, StaticContentRouter, TlsMode};

fn main() {
    let id = BenchIdentity::new();
    let workers = 4;
    let mut rows = Vec::new();
    for lthreads in [12usize, 24, 36, 48] {
        let ls = libseal_instance_with_rt(
            &id,
            None,
            RuntimeConfig {
                sgx_threads: 3,
                lthreads_per_thread: lthreads,
                slots: workers,
                stack_size: 256 * 1024,
                wait_mode: WaitMode::Poller,
            },
        );
        let server = ApacheServer::start(
            ApacheConfig::new(TlsMode::LibSeal(ls), Arc::new(StaticContentRouter))
                .workers(workers)
                .event_loop(false),
        )
        .expect("server");
        let client = HttpsClient::new(server.addr(), id.roots(), "localhost");
        let (stats, cpu) = with_cpu_percent(|| {
            LoadGenerator {
                clients: workers * 2,
                duration: bench_secs(),
                persistent: false,
                ..LoadGenerator::default()
            }
            .run(&client, |_, _| {
                Request::new("GET", "/content/1024", Vec::new())
            })
        });
        server.stop();
        rows.push(vec![
            lthreads.to_string(),
            rate(stats.throughput()),
            ms(stats.mean_latency),
            format!("{cpu:.0}"),
        ]);
    }
    print_table(
        "Tab 4: async enclave calls, varying #lthread tasks per thread (3 SGX threads, 1 KB)",
        &[
            "#lthread tasks",
            "throughput (req/s)",
            "latency (ms)",
            "%CPU",
        ],
        &rows,
    );
    println!("\npaper shape: throughput roughly flat; latency worst with too few lthreads");
}

//! Micro-benchmarks for the hot paths underlying the paper's tables:
//! crypto primitives, STLS handshake and records, sealdb query
//! execution, audit-log appends, and enclave transitions (synchronous
//! vs asynchronous).
//!
//! Criterion-free: each benchmark warms up briefly, then runs batches
//! until a wall-clock budget (`LIBSEAL_BENCH_SECS`, default 2 s per
//! benchmark) is spent, and reports mean time per iteration plus
//! derived throughput. Run with `cargo bench -p libseal-bench`.

use std::sync::Arc;
use std::time::{Duration, Instant};

use libseal::log::{AuditLog, LogBacking, NoGuard};
use libseal::{GitModule, ServiceModule};
use libseal_crypto::aead::ChaCha20Poly1305;
use libseal_crypto::ed25519::SigningKey;
use libseal_crypto::sha2::Sha256;
use libseal_crypto::x25519;
use libseal_lthread::{AsyncRuntime, RuntimeConfig, WaitMode};
use libseal_sealdb::{Database, Value};
use libseal_sgxsim::cost::CostModel;
use libseal_sgxsim::enclave::EnclaveBuilder;
use libseal_tlsx::cert::CertificateAuthority;
use libseal_tlsx::ssl::{ReadOutcome, Ssl, SslConfig};

/// Per-iteration throughput unit, mirroring criterion's `Throughput`.
enum Throughput {
    None,
    Bytes(u64),
    Elements(u64),
}

fn bench_budget() -> Duration {
    let secs: f64 = std::env::var("LIBSEAL_BENCH_SECS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2.0);
    Duration::from_secs_f64(secs.clamp(0.05, 120.0))
}

/// Times `f` until the budget is spent and prints one result line.
fn bench(group: &str, name: &str, throughput: Throughput, mut f: impl FnMut()) {
    let budget = bench_budget();
    // Warm-up: a fixed slice of the budget, also used to size batches
    // so the timing loop checks the clock ~100x per run.
    let warmup_end = Instant::now() + budget / 10;
    let mut warmup_iters = 0u64;
    while Instant::now() < warmup_end {
        f();
        warmup_iters += 1;
    }
    let batch = (warmup_iters / 10).max(1);

    let mut iters = 0u64;
    let t0 = Instant::now();
    while t0.elapsed() < budget {
        for _ in 0..batch {
            f();
        }
        iters += batch;
    }
    let per_iter = t0.elapsed().as_secs_f64() / iters as f64;
    let rate = match throughput {
        Throughput::None => String::new(),
        Throughput::Bytes(b) => {
            format!("  {:>10.1} MiB/s", b as f64 / per_iter / (1024.0 * 1024.0))
        }
        Throughput::Elements(n) => format!("  {:>10.0} elem/s", n as f64 / per_iter),
    };
    println!(
        "{group}/{name:<32} {:>12.3} us/iter{rate}   ({iters} iters)",
        per_iter * 1e6
    );
}

fn bench_crypto() {
    let data_1k = vec![0xa5u8; 1024];
    let data_16k = vec![0xa5u8; 16 * 1024];

    bench("crypto", "sha256_16k", Throughput::Bytes(16 * 1024), || {
        Sha256::digest(&data_16k);
    });

    let aead = ChaCha20Poly1305::new(&[7u8; 32]);
    bench(
        "crypto",
        "chacha20poly1305_seal_16k",
        Throughput::Bytes(16 * 1024),
        || {
            aead.seal(&[1u8; 12], b"", &data_16k);
        },
    );

    let key = SigningKey::from_seed(&[3u8; 32]);
    bench("crypto", "ed25519_sign_1k", Throughput::Elements(1), || {
        key.sign(&data_1k);
    });
    let sig = key.sign(&data_1k);
    let vk = key.verifying_key();
    bench(
        "crypto",
        "ed25519_verify_1k",
        Throughput::Elements(1),
        || {
            vk.verify(&data_1k, &sig).unwrap();
        },
    );
    bench("crypto", "x25519_dh", Throughput::Elements(1), || {
        let _ = x25519::shared_secret(&[5u8; 32], &x25519::public_key(&[6u8; 32]));
    });
}

fn handshake_pair() -> (Ssl, Ssl) {
    let ca = CertificateAuthority::new("BenchCA", &[0x42; 32]);
    let (key, cert) = ca.issue_identity("bench", &[0x43; 32]).unwrap();
    let client_cfg = SslConfig::client(vec![ca.root_key()]);
    let server_cfg = SslConfig::server(cert, key);
    let mut client = Ssl::new(client_cfg, [1u8; 64]);
    let mut server = Ssl::new(server_cfg, [2u8; 64]);
    client.do_handshake().unwrap();
    for _ in 0..8 {
        let a = client.take_output();
        if !a.is_empty() {
            server.provide_input(&a);
        }
        let _ = server.do_handshake();
        let b = server.take_output();
        if !b.is_empty() {
            client.provide_input(&b);
        }
        let _ = client.do_handshake();
        if client.is_established() && server.is_established() {
            break;
        }
    }
    (client, server)
}

fn bench_tls() {
    bench("stls", "full_handshake", Throughput::None, || {
        let (client, server) = handshake_pair();
        assert!(client.is_established() && server.is_established());
    });

    let (mut client, mut server) = handshake_pair();
    let payload = vec![0x5au8; 16 * 1024];
    bench(
        "stls",
        "record_roundtrip_16k",
        Throughput::Bytes(16 * 1024),
        || {
            client.ssl_write(&payload).unwrap();
            let wire = client.take_output();
            server.provide_input(&wire);
            let mut got = 0usize;
            while got < payload.len() {
                match server.ssl_read().unwrap() {
                    ReadOutcome::Data(d) => got += d.len(),
                    _ => break,
                }
            }
            assert_eq!(got, payload.len());
        },
    );
}

fn bench_sealdb() {
    {
        let mut db = Database::new();
        db.execute("CREATE TABLE t(a INTEGER, b TEXT, c TEXT)")
            .unwrap();
        let mut i = 0i64;
        bench("sealdb", "insert_row", Throughput::None, || {
            i += 1;
            db.execute_with(
                "INSERT INTO t VALUES (?, ?, ?)",
                &[
                    Value::Integer(i),
                    Value::Text("branch".into()),
                    Value::Text("0123456789abcdef0123".into()),
                ],
            )
            .unwrap();
        });
    }

    // The paper's Git soundness invariant over a trimmed-size log.
    {
        let mut db = Database::new();
        db.execute(
            "CREATE TABLE updates(time INTEGER, repo TEXT, branch TEXT, cid TEXT, type TEXT)",
        )
        .unwrap();
        db.execute("CREATE TABLE advertisements(time INTEGER, repo TEXT, branch TEXT, cid TEXT)")
            .unwrap();
        for i in 0..25i64 {
            db.execute_with(
                "INSERT INTO updates VALUES (?, 'r', ?, ?, 'update')",
                &[
                    Value::Integer(i * 2),
                    Value::Text(format!("b{}", i % 4)),
                    Value::Text(format!("c{i}")),
                ],
            )
            .unwrap();
            db.execute_with(
                "INSERT INTO advertisements VALUES (?, 'r', ?, ?)",
                &[
                    Value::Integer(i * 2 + 1),
                    Value::Text(format!("b{}", i % 4)),
                    Value::Text(format!("c{i}")),
                ],
            )
            .unwrap();
        }
        let q = "SELECT * FROM advertisements a WHERE cid != (
            SELECT u.cid FROM updates u WHERE u.repo = a.repo AND
            u.branch = a.branch AND u.time < a.time ORDER BY
            u.time DESC LIMIT 1)";
        bench(
            "sealdb",
            "git_soundness_query_50rows",
            Throughput::None,
            || {
                let r = db.query(q, &[]).unwrap();
                assert!(r.is_empty());
            },
        );
    }

    // The same invariant at 200 log rows, planner on vs off: the
    // indexed/memoized executor vs the naive nested-loop interpreter.
    {
        let build = |planner: bool| {
            let mut db = Database::new();
            db.set_planner_enabled(planner);
            db.execute(
                "CREATE TABLE updates(time INTEGER, repo TEXT, branch TEXT, cid TEXT, type TEXT)",
            )
            .unwrap();
            db.execute(
                "CREATE TABLE advertisements(time INTEGER, repo TEXT, branch TEXT, cid TEXT)",
            )
            .unwrap();
            for col in ["time", "repo", "branch"] {
                db.execute(&format!("CREATE INDEX ix_u_{col} ON updates({col})"))
                    .unwrap();
                db.execute(&format!("CREATE INDEX ix_a_{col} ON advertisements({col})"))
                    .unwrap();
            }
            for i in 0..100i64 {
                db.execute_with(
                    "INSERT INTO updates VALUES (?, ?, ?, ?, 'update')",
                    &[
                        Value::Integer(i * 2),
                        Value::Text(format!("r{}", i % 10)),
                        Value::Text(format!("b{}", i % 4)),
                        Value::Text(format!("c{i}")),
                    ],
                )
                .unwrap();
                db.execute_with(
                    "INSERT INTO advertisements VALUES (?, ?, ?, ?)",
                    &[
                        Value::Integer(i * 2 + 1),
                        Value::Text(format!("r{}", i % 10)),
                        Value::Text(format!("b{}", i % 4)),
                        Value::Text(format!("c{i}")),
                    ],
                )
                .unwrap();
            }
            db
        };
        let q = "SELECT * FROM advertisements a WHERE cid != (
            SELECT u.cid FROM updates u WHERE u.repo = a.repo AND
            u.branch = a.branch AND u.time < a.time ORDER BY
            u.time DESC LIMIT 1)";
        let db = build(true);
        bench(
            "sealdb",
            "git_soundness_200rows_planner_on",
            Throughput::None,
            || {
                let r = db.query(q, &[]).unwrap();
                assert!(r.is_empty());
            },
        );
        let db = build(false);
        bench(
            "sealdb",
            "git_soundness_200rows_planner_off",
            Throughput::None,
            || {
                let r = db.query(q, &[]).unwrap();
                assert!(r.is_empty());
            },
        );
    }
}

fn bench_audit_log() {
    let ssm = GitModule;
    let mut log = AuditLog::open(
        LogBacking::Memory,
        [0u8; 32],
        SigningKey::from_seed(&[1u8; 32]),
        Box::new(NoGuard),
        ssm.schema_sql(),
        ssm.tables(),
    )
    .unwrap();
    bench("audit_log", "append_signed_entry", Throughput::None, || {
        let t = log.next_time() as i64;
        log.append(
            "updates",
            &[
                Value::Integer(t),
                Value::Text("r".into()),
                Value::Text("main".into()),
                Value::Text(format!("{t:040x}")),
                Value::Text("update".into()),
            ],
        )
        .unwrap();
    });
}

fn bench_transitions() {
    let enclave = Arc::new(
        EnclaveBuilder::new(b"bench")
            .cost_model(CostModel::default())
            .tcs_count(8)
            .build(|_| ()),
    );
    bench(
        "enclave_transitions",
        "sync_ecall_1_thread",
        Throughput::None,
        || {
            enclave.ecall("noop", |_, _| ()).unwrap();
        },
    );

    let rt = AsyncRuntime::start(
        Arc::clone(&enclave),
        RuntimeConfig {
            sgx_threads: 1,
            lthreads_per_thread: 4,
            slots: 1,
            stack_size: 128 * 1024,
            wait_mode: WaitMode::BusyWait,
        },
    )
    .unwrap();
    bench(
        "enclave_transitions",
        "async_ecall_slot_handoff",
        Throughput::None,
        || {
            rt.async_ecall(0, |_, _, _| ());
        },
    );
    rt.shutdown();
}

fn main() {
    // `cargo test`/`cargo bench` pass harness flags like --bench or
    // filter strings; honour the no-run probe and ignore the rest.
    if std::env::args().any(|a| a == "--list") {
        println!("micro: bench");
        return;
    }
    println!(
        "micro benchmarks ({}s budget per benchmark; set LIBSEAL_BENCH_SECS to adjust)",
        bench_budget().as_secs_f64()
    );
    bench_crypto();
    bench_tls();
    bench_sealdb();
    bench_audit_log();
    bench_transitions();
}

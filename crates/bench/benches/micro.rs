//! Criterion micro-benchmarks for the hot paths underlying the paper's
//! tables: crypto primitives, STLS handshake and records, sealdb
//! query execution, audit-log appends, and enclave transitions
//! (synchronous vs asynchronous).

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion, Throughput};

use libseal::log::{AuditLog, LogBacking, NoGuard};
use libseal::{GitModule, ServiceModule};
use libseal_crypto::aead::ChaCha20Poly1305;
use libseal_crypto::ed25519::SigningKey;
use libseal_crypto::sha2::Sha256;
use libseal_crypto::x25519;
use libseal_lthread::{AsyncRuntime, RuntimeConfig, WaitMode};
use libseal_sealdb::{Database, Value};
use libseal_sgxsim::cost::CostModel;
use libseal_sgxsim::enclave::EnclaveBuilder;
use libseal_tlsx::cert::CertificateAuthority;
use libseal_tlsx::ssl::{ReadOutcome, Ssl, SslConfig};

fn bench_crypto(c: &mut Criterion) {
    let mut g = c.benchmark_group("crypto");
    let data_1k = vec![0xa5u8; 1024];
    let data_16k = vec![0xa5u8; 16 * 1024];

    g.throughput(Throughput::Bytes(16 * 1024));
    g.bench_function("sha256_16k", |b| b.iter(|| Sha256::digest(&data_16k)));

    let aead = ChaCha20Poly1305::new(&[7u8; 32]);
    g.throughput(Throughput::Bytes(16 * 1024));
    g.bench_function("chacha20poly1305_seal_16k", |b| {
        b.iter(|| aead.seal(&[1u8; 12], b"", &data_16k))
    });

    g.throughput(Throughput::Elements(1));
    let key = SigningKey::from_seed(&[3u8; 32]);
    g.bench_function("ed25519_sign_1k", |b| b.iter(|| key.sign(&data_1k)));
    let sig = key.sign(&data_1k);
    let vk = key.verifying_key();
    g.bench_function("ed25519_verify_1k", |b| {
        b.iter(|| vk.verify(&data_1k, &sig).unwrap())
    });
    g.bench_function("x25519_dh", |b| {
        b.iter(|| x25519::shared_secret(&[5u8; 32], &x25519::public_key(&[6u8; 32])))
    });
    g.finish();
}

fn handshake_pair() -> (Ssl, Ssl) {
    let ca = CertificateAuthority::new("BenchCA", &[0x42; 32]);
    let (key, cert) = ca.issue_identity("bench", &[0x43; 32]);
    let client_cfg = SslConfig::client(vec![ca.root_key()]);
    let server_cfg = SslConfig::server(cert, key);
    let mut client = Ssl::new(client_cfg, [1u8; 64]);
    let mut server = Ssl::new(server_cfg, [2u8; 64]);
    client.do_handshake().unwrap();
    for _ in 0..8 {
        let a = client.take_output();
        if !a.is_empty() {
            server.provide_input(&a);
        }
        let _ = server.do_handshake();
        let b = server.take_output();
        if !b.is_empty() {
            client.provide_input(&b);
        }
        let _ = client.do_handshake();
        if client.is_established() && server.is_established() {
            break;
        }
    }
    (client, server)
}

fn bench_tls(c: &mut Criterion) {
    let mut g = c.benchmark_group("stls");
    g.bench_function("full_handshake", |b| {
        b.iter(|| {
            let (client, server) = handshake_pair();
            assert!(client.is_established() && server.is_established());
        })
    });

    let (mut client, mut server) = handshake_pair();
    let payload = vec![0x5au8; 16 * 1024];
    g.throughput(Throughput::Bytes(16 * 1024));
    g.bench_function("record_roundtrip_16k", |b| {
        b.iter(|| {
            client.ssl_write(&payload).unwrap();
            let wire = client.take_output();
            server.provide_input(&wire);
            let mut got = 0usize;
            while got < payload.len() {
                match server.ssl_read().unwrap() {
                    ReadOutcome::Data(d) => got += d.len(),
                    _ => break,
                }
            }
            assert_eq!(got, payload.len());
        })
    });
    g.finish();
}

fn bench_sealdb(c: &mut Criterion) {
    let mut g = c.benchmark_group("sealdb");

    g.bench_function("insert_row", |b| {
        let mut db = Database::new();
        db.execute("CREATE TABLE t(a INTEGER, b TEXT, c TEXT)").unwrap();
        let mut i = 0i64;
        b.iter(|| {
            i += 1;
            db.execute_with(
                "INSERT INTO t VALUES (?, ?, ?)",
                &[
                    Value::Integer(i),
                    Value::Text("branch".into()),
                    Value::Text("0123456789abcdef0123".into()),
                ],
            )
            .unwrap()
        })
    });

    // The paper's Git soundness invariant over a trimmed-size log.
    g.bench_function("git_soundness_query_50rows", |b| {
        let mut db = Database::new();
        db.execute(
            "CREATE TABLE updates(time INTEGER, repo TEXT, branch TEXT, cid TEXT, type TEXT)",
        )
        .unwrap();
        db.execute(
            "CREATE TABLE advertisements(time INTEGER, repo TEXT, branch TEXT, cid TEXT)",
        )
        .unwrap();
        for i in 0..25i64 {
            db.execute_with(
                "INSERT INTO updates VALUES (?, 'r', ?, ?, 'update')",
                &[
                    Value::Integer(i * 2),
                    Value::Text(format!("b{}", i % 4)),
                    Value::Text(format!("c{i}")),
                ],
            )
            .unwrap();
            db.execute_with(
                "INSERT INTO advertisements VALUES (?, 'r', ?, ?)",
                &[
                    Value::Integer(i * 2 + 1),
                    Value::Text(format!("b{}", i % 4)),
                    Value::Text(format!("c{i}")),
                ],
            )
            .unwrap();
        }
        let q = "SELECT * FROM advertisements a WHERE cid != (
            SELECT u.cid FROM updates u WHERE u.repo = a.repo AND
            u.branch = a.branch AND u.time < a.time ORDER BY
            u.time DESC LIMIT 1)";
        b.iter(|| {
            let r = db.query(q, &[]).unwrap();
            assert!(r.is_empty());
        })
    });
    g.finish();
}

fn bench_audit_log(c: &mut Criterion) {
    let mut g = c.benchmark_group("audit_log");
    g.bench_function("append_signed_entry", |b| {
        let ssm = GitModule;
        let mut log = AuditLog::open(
            LogBacking::Memory,
            [0u8; 32],
            SigningKey::from_seed(&[1u8; 32]),
            Box::new(NoGuard),
            ssm.schema_sql(),
            ssm.tables(),
        )
        .unwrap();
        b.iter(|| {
            let t = log.next_time() as i64;
            log.append(
                "updates",
                &[
                    Value::Integer(t),
                    Value::Text("r".into()),
                    Value::Text("main".into()),
                    Value::Text(format!("{t:040x}")),
                    Value::Text("update".into()),
                ],
            )
            .unwrap();
        });
    });
    g.finish();
}

fn bench_transitions(c: &mut Criterion) {
    let mut g = c.benchmark_group("enclave_transitions");
    let enclave = Arc::new(
        EnclaveBuilder::new(b"bench")
            .cost_model(CostModel::default())
            .tcs_count(8)
            .build(|_| ()),
    );
    g.bench_function("sync_ecall_1_thread", |b| {
        b.iter(|| enclave.ecall("noop", |_, _| ()).unwrap())
    });

    let rt = AsyncRuntime::start(
        Arc::clone(&enclave),
        RuntimeConfig {
            sgx_threads: 1,
            lthreads_per_thread: 4,
            slots: 1,
            stack_size: 128 * 1024,
            wait_mode: WaitMode::BusyWait,
        },
    )
    .unwrap();
    g.bench_function("async_ecall_slot_handoff", |b| {
        b.iter(|| rt.async_ecall(0, |_, _, _| ()))
    });
    rt.shutdown();
    g.finish();
}

criterion_group!(
    benches,
    bench_crypto,
    bench_tls,
    bench_sealdb,
    bench_audit_log,
    bench_transitions
);
criterion_main!(benches);

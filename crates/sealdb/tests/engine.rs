//! End-to-end tests of the sealdb engine, centred on the exact SQL the
//! LibSEAL paper runs: the Git audit schema, its soundness and
//! completeness invariants, the `branchcnt` view, and the trimming
//! queries (§1, §3.1, §5.1, §6.2) — all verbatim.

use libseal_sealdb::{Database, Value};

fn git_db() -> Database {
    let mut db = Database::new();
    db.execute("CREATE TABLE updates(time INTEGER, repo TEXT, branch TEXT, cid TEXT, type TEXT)")
        .unwrap();
    db.execute("CREATE TABLE advertisements(time INTEGER, repo TEXT, branch TEXT, cid TEXT)")
        .unwrap();
    // The paper's auxiliary view (§6.2), verbatim.
    db.execute(
        "CREATE VIEW branchcnt AS
         SELECT DISTINCT a.time,a.repo,COUNT(u.branch) AS cnt
         FROM advertisements a
         JOIN updates u ON u.time < a.time AND u.repo = a.repo
         WHERE u.type != 'delete' AND u.time = (SELECT MAX(time)
            FROM updates WHERE branch = u.branch
            AND repo = u.repo AND time < a.time) GROUP BY a.time,a.repo,a.branch",
    )
    .unwrap();
    db
}

fn push(db: &mut Database, time: i64, repo: &str, branch: &str, cid: &str, kind: &str) {
    db.execute_with(
        "INSERT INTO updates VALUES (?, ?, ?, ?, ?)",
        &[
            Value::Integer(time),
            Value::Text(repo.into()),
            Value::Text(branch.into()),
            Value::Text(cid.into()),
            Value::Text(kind.into()),
        ],
    )
    .unwrap();
}

fn advertise(db: &mut Database, time: i64, repo: &str, branch: &str, cid: &str) {
    db.execute_with(
        "INSERT INTO advertisements VALUES (?, ?, ?, ?)",
        &[
            Value::Integer(time),
            Value::Text(repo.into()),
            Value::Text(branch.into()),
            Value::Text(cid.into()),
        ],
    )
    .unwrap();
}

/// The paper's Git soundness invariant (§6.2), verbatim.
const SOUNDNESS: &str = "SELECT * FROM advertisements a WHERE cid != (
    SELECT u.cid FROM updates u WHERE u.repo = a.repo AND
    u.branch = a.branch AND u.time < a.time ORDER BY
    u.time DESC LIMIT 1)";

/// The paper's Git completeness invariant (§1), verbatim.
const COMPLETENESS: &str = "SELECT time, repo FROM advertisements
    NATURAL JOIN branchcnt
    GROUP BY time, repo, cnt HAVING COUNT(branch) != cnt";

#[test]
fn git_soundness_clean_history_passes() {
    let mut db = git_db();
    push(&mut db, 1, "r", "main", "c1", "update");
    advertise(&mut db, 2, "r", "main", "c1");
    push(&mut db, 3, "r", "main", "c2", "update");
    advertise(&mut db, 4, "r", "main", "c2");
    let r = db.query(SOUNDNESS, &[]).unwrap();
    assert!(r.is_empty(), "no violations expected: {:?}", r.rows);
}

#[test]
fn git_soundness_detects_rollback() {
    let mut db = git_db();
    push(&mut db, 1, "r", "main", "c1", "update");
    push(&mut db, 2, "r", "main", "c2", "update");
    // Rollback attack: the server advertises the OLD commit c1.
    advertise(&mut db, 3, "r", "main", "c1");
    let r = db.query(SOUNDNESS, &[]).unwrap();
    assert_eq!(r.rows.len(), 1);
    assert_eq!(r.rows[0][0], Value::Integer(3));
}

#[test]
fn git_soundness_detects_teleport() {
    let mut db = git_db();
    push(&mut db, 1, "r", "main", "c1", "update");
    push(&mut db, 2, "r", "dev", "d9", "update");
    // Teleport attack: main advertised as pointing at dev's commit.
    advertise(&mut db, 3, "r", "main", "d9");
    advertise(&mut db, 4, "r", "dev", "d9");
    let r = db.query(SOUNDNESS, &[]).unwrap();
    assert_eq!(r.rows.len(), 1, "{:?}", r.rows);
    assert_eq!(r.rows[0][2], Value::Text("main".into()));
}

#[test]
fn git_completeness_detects_reference_deletion() {
    let mut db = git_db();
    push(&mut db, 1, "r", "main", "c1", "update");
    push(&mut db, 2, "r", "dev", "d1", "update");
    // The server only advertises main: dev was silently dropped.
    advertise(&mut db, 3, "r", "main", "c1");
    let r = db.query(COMPLETENESS, &[]).unwrap();
    assert_eq!(r.rows.len(), 1, "{:?}", r.rows);
    assert_eq!(r.rows[0][0], Value::Integer(3));
}

#[test]
fn git_completeness_clean_advertisement_passes() {
    let mut db = git_db();
    push(&mut db, 1, "r", "main", "c1", "update");
    push(&mut db, 2, "r", "dev", "d1", "update");
    advertise(&mut db, 3, "r", "main", "c1");
    advertise(&mut db, 3, "r", "dev", "d1");
    let r = db.query(COMPLETENESS, &[]).unwrap();
    assert!(r.is_empty(), "{:?}", r.rows);
}

#[test]
fn git_completeness_ignores_deleted_branches() {
    let mut db = git_db();
    push(&mut db, 1, "r", "main", "c1", "update");
    push(&mut db, 2, "r", "dev", "d1", "update");
    push(&mut db, 3, "r", "dev", "d1", "delete");
    // dev was legitimately deleted; advertising only main is fine.
    advertise(&mut db, 4, "r", "main", "c1");
    let r = db.query(COMPLETENESS, &[]).unwrap();
    assert!(r.is_empty(), "{:?}", r.rows);
}

#[test]
fn git_trimming_queries_work() {
    let mut db = git_db();
    push(&mut db, 1, "r", "main", "c1", "update");
    push(&mut db, 2, "r", "main", "c2", "update");
    push(&mut db, 3, "r", "dev", "d1", "update");
    advertise(&mut db, 4, "r", "main", "c2");
    advertise(&mut db, 4, "r", "dev", "d1");
    // The paper's trimming queries (§5.1), verbatim.
    db.execute("DELETE FROM advertisements").unwrap();
    let r = db
        .execute(
            "DELETE FROM updates WHERE time NOT IN
             (SELECT MAX(time) FROM updates GROUP BY repo, branch)",
        )
        .unwrap();
    assert_eq!(r.rows_affected, 1); // Only (1, main, c1) removed.
    let left = db
        .query("SELECT branch, cid FROM updates ORDER BY branch", &[])
        .unwrap();
    assert_eq!(left.rows.len(), 2);
    assert_eq!(left.rows[0][1], Value::Text("d1".into()));
    assert_eq!(left.rows[1][1], Value::Text("c2".into()));
    // Invariants still hold after trimming followed by new traffic.
    advertise(&mut db, 5, "r", "main", "c2");
    advertise(&mut db, 5, "r", "dev", "d1");
    assert!(db.query(SOUNDNESS, &[]).unwrap().is_empty());
    assert!(db.query(COMPLETENESS, &[]).unwrap().is_empty());
}

#[test]
fn multi_repo_isolation() {
    let mut db = git_db();
    push(&mut db, 1, "r1", "main", "a1", "update");
    push(&mut db, 2, "r2", "main", "b1", "update");
    advertise(&mut db, 3, "r1", "main", "a1");
    advertise(&mut db, 3, "r2", "main", "b1");
    assert!(db.query(SOUNDNESS, &[]).unwrap().is_empty());
    // Cross-repo confusion would be a violation.
    advertise(&mut db, 4, "r1", "main", "b1");
    assert_eq!(db.query(SOUNDNESS, &[]).unwrap().rows.len(), 1);
}

// ---- General engine behaviour -----------------------------------------

#[test]
fn aggregates_and_group_by() {
    let mut db = Database::new();
    db.execute("CREATE TABLE s(grp TEXT, v INTEGER)").unwrap();
    db.execute("INSERT INTO s VALUES ('a', 1), ('a', 2), ('b', 5), ('b', NULL), ('c', 10)")
        .unwrap();
    let r = db
        .query(
            "SELECT grp, COUNT(*), COUNT(v), SUM(v), AVG(v), MIN(v), MAX(v)
             FROM s GROUP BY grp ORDER BY grp",
            &[],
        )
        .unwrap();
    assert_eq!(r.rows.len(), 3);
    // Group 'b': COUNT(*)=2, COUNT(v)=1 (NULL ignored), SUM=5.
    assert_eq!(r.rows[1][1], Value::Integer(2));
    assert_eq!(r.rows[1][2], Value::Integer(1));
    assert_eq!(r.rows[1][3], Value::Integer(5));
}

#[test]
fn count_distinct() {
    let mut db = Database::new();
    db.execute("CREATE TABLE t(x INTEGER)").unwrap();
    db.execute("INSERT INTO t VALUES (1), (1), (2), (NULL)")
        .unwrap();
    let r = db.query("SELECT COUNT(DISTINCT x) FROM t", &[]).unwrap();
    assert_eq!(r.scalar().unwrap(), &Value::Integer(2));
}

#[test]
fn having_filters_groups() {
    let mut db = Database::new();
    db.execute("CREATE TABLE t(g TEXT, v INTEGER)").unwrap();
    db.execute("INSERT INTO t VALUES ('a',1),('a',2),('b',1)")
        .unwrap();
    let r = db
        .query("SELECT g FROM t GROUP BY g HAVING COUNT(*) > 1", &[])
        .unwrap();
    assert_eq!(r.rows.len(), 1);
    assert_eq!(r.rows[0][0], Value::Text("a".into()));
}

#[test]
fn order_by_desc_and_limit_offset() {
    let mut db = Database::new();
    db.execute("CREATE TABLE t(v INTEGER)").unwrap();
    db.execute("INSERT INTO t VALUES (3),(1),(4),(1),(5),(9),(2),(6)")
        .unwrap();
    let r = db
        .query("SELECT v FROM t ORDER BY v DESC LIMIT 3 OFFSET 1", &[])
        .unwrap();
    let vals: Vec<i64> = r
        .rows
        .iter()
        .map(|row| match row[0] {
            Value::Integer(i) => i,
            _ => panic!(),
        })
        .collect();
    assert_eq!(vals, vec![6, 5, 4]);
}

#[test]
fn left_join_pads_nulls() {
    let mut db = Database::new();
    db.execute("CREATE TABLE l(id INTEGER, n TEXT)").unwrap();
    db.execute("CREATE TABLE r(id INTEGER, m TEXT)").unwrap();
    db.execute("INSERT INTO l VALUES (1,'a'),(2,'b')").unwrap();
    db.execute("INSERT INTO r VALUES (1,'x')").unwrap();
    let res = db
        .query(
            "SELECT l.n, r.m FROM l LEFT JOIN r ON l.id = r.id ORDER BY l.id",
            &[],
        )
        .unwrap();
    assert_eq!(res.rows.len(), 2);
    assert_eq!(res.rows[1][1], Value::Null);
}

#[test]
fn exists_and_not_exists() {
    let mut db = Database::new();
    db.execute("CREATE TABLE t(v INTEGER)").unwrap();
    db.execute("INSERT INTO t VALUES (1)").unwrap();
    let r = db
        .query(
            "SELECT 'yes' WHERE EXISTS (SELECT 1 FROM t WHERE v = 1)",
            &[],
        )
        .unwrap();
    assert_eq!(r.rows.len(), 1);
    let r = db
        .query(
            "SELECT 'yes' WHERE NOT EXISTS (SELECT 1 FROM t WHERE v = 2)",
            &[],
        )
        .unwrap();
    assert_eq!(r.rows.len(), 1);
}

#[test]
fn correlated_exists() {
    let mut db = Database::new();
    db.execute("CREATE TABLE a(x INTEGER)").unwrap();
    db.execute("CREATE TABLE b(y INTEGER)").unwrap();
    db.execute("INSERT INTO a VALUES (1),(2),(3)").unwrap();
    db.execute("INSERT INTO b VALUES (2),(3),(4)").unwrap();
    let r = db
        .query(
            "SELECT x FROM a WHERE EXISTS (SELECT 1 FROM b WHERE b.y = a.x) ORDER BY x",
            &[],
        )
        .unwrap();
    assert_eq!(r.rows.len(), 2);
    assert_eq!(r.rows[0][0], Value::Integer(2));
}

#[test]
fn null_three_valued_logic() {
    let mut db = Database::new();
    db.execute("CREATE TABLE t(v INTEGER)").unwrap();
    db.execute("INSERT INTO t VALUES (1), (NULL), (2)").unwrap();
    // NULL != 1 is unknown, so the NULL row is not returned.
    let r = db.query("SELECT v FROM t WHERE v != 1", &[]).unwrap();
    assert_eq!(r.rows.len(), 1);
    // IS NULL finds it.
    let r = db.query("SELECT v FROM t WHERE v IS NULL", &[]).unwrap();
    assert_eq!(r.rows.len(), 1);
    // NOT IN with NULL in the subquery result yields no rows.
    db.execute("CREATE TABLE u(w INTEGER)").unwrap();
    db.execute("INSERT INTO u VALUES (1), (NULL)").unwrap();
    let r = db
        .query("SELECT v FROM t WHERE v NOT IN (SELECT w FROM u)", &[])
        .unwrap();
    assert!(r.is_empty());
}

#[test]
fn update_statement_applies() {
    let mut db = Database::new();
    db.execute("CREATE TABLE t(id INTEGER, v INTEGER)").unwrap();
    db.execute("INSERT INTO t VALUES (1, 10), (2, 20)").unwrap();
    let r = db.execute("UPDATE t SET v = v + 1 WHERE id = 2").unwrap();
    assert_eq!(r.rows_affected, 1);
    let r = db.query("SELECT v FROM t WHERE id = 2", &[]).unwrap();
    assert_eq!(r.scalar().unwrap(), &Value::Integer(21));
}

#[test]
fn scalar_functions() {
    let db = Database::new();
    let r = db
        .query(
            "SELECT ABS(-3), LENGTH('hello'), UPPER('ab'), LOWER('AB'),
                    SUBSTR('hello', 2, 3), COALESCE(NULL, NULL, 7), IFNULL(NULL, 'd'),
                    NULLIF(1, 1), TYPEOF(2.5)",
            &[],
        )
        .unwrap();
    let row = &r.rows[0];
    assert_eq!(row[0], Value::Integer(3));
    assert_eq!(row[1], Value::Integer(5));
    assert_eq!(row[2], Value::Text("AB".into()));
    assert_eq!(row[3], Value::Text("ab".into()));
    assert_eq!(row[4], Value::Text("ell".into()));
    assert_eq!(row[5], Value::Integer(7));
    assert_eq!(row[6], Value::Text("d".into()));
    assert_eq!(row[7], Value::Null);
    assert_eq!(row[8], Value::Text("real".into()));
}

#[test]
fn arithmetic_semantics() {
    let db = Database::new();
    let r = db
        .query("SELECT 7 / 2, 7.0 / 2, 7 % 3, 1 / 0, 'a' || 'b' || 3", &[])
        .unwrap();
    let row = &r.rows[0];
    assert_eq!(row[0], Value::Integer(3)); // integer division
    assert_eq!(row[1], Value::Real(3.5));
    assert_eq!(row[2], Value::Integer(1));
    assert_eq!(row[3], Value::Null); // division by zero
    assert_eq!(row[4], Value::Text("ab3".into()));
}

#[test]
fn case_expressions() {
    let mut db = Database::new();
    db.execute("CREATE TABLE t(v INTEGER)").unwrap();
    db.execute("INSERT INTO t VALUES (1), (5), (NULL)").unwrap();
    let r = db
        .query(
            "SELECT CASE WHEN v IS NULL THEN 'none'
                         WHEN v > 3 THEN 'big' ELSE 'small' END FROM t",
            &[],
        )
        .unwrap();
    let texts: Vec<String> = r.rows.iter().map(|row| row[0].to_string()).collect();
    assert_eq!(texts, vec!["small", "big", "none"]);
}

#[test]
fn subquery_in_from_clause() {
    let mut db = Database::new();
    db.execute("CREATE TABLE t(g TEXT, v INTEGER)").unwrap();
    db.execute("INSERT INTO t VALUES ('a',1),('a',2),('b',7)")
        .unwrap();
    let r = db
        .query(
            "SELECT MAX(total) FROM (SELECT g, SUM(v) AS total FROM t GROUP BY g) sums",
            &[],
        )
        .unwrap();
    assert_eq!(r.scalar().unwrap(), &Value::Integer(7));
}

#[test]
fn persistence_roundtrip() {
    use libseal_sealdb::{PlainCodec, SyncPolicy};
    let path = plat::tmp::TempPath::new("sealdb-e2e", "db");
    {
        let mut db = Database::open(&path, Box::new(PlainCodec), SyncPolicy::EveryRecord).unwrap();
        db.execute("CREATE TABLE t(a INTEGER, b TEXT)").unwrap();
        db.execute_with(
            "INSERT INTO t VALUES (?, ?)",
            &[Value::Integer(1), Value::Text("one".into())],
        )
        .unwrap();
        db.execute_with(
            "INSERT INTO t VALUES (?, ?)",
            &[Value::Integer(2), Value::Text("two".into())],
        )
        .unwrap();
        db.execute("DELETE FROM t WHERE a = 1").unwrap();
    }
    let db = Database::open(&path, Box::new(PlainCodec), SyncPolicy::EveryRecord).unwrap();
    let r = db.query("SELECT a, b FROM t", &[]).unwrap();
    assert_eq!(r.rows.len(), 1);
    assert_eq!(r.rows[0][1], Value::Text("two".into()));
}

#[test]
fn compaction_preserves_data_and_shrinks_journal() {
    use libseal_sealdb::{PlainCodec, SyncPolicy};
    let path = plat::tmp::TempPath::new("sealdb-compact", "db");
    {
        let mut db = Database::open(&path, Box::new(PlainCodec), SyncPolicy::Never).unwrap();
        db.execute("CREATE TABLE t(a INTEGER)").unwrap();
        for i in 0..100 {
            db.execute_with("INSERT INTO t VALUES (?)", &[Value::Integer(i)])
                .unwrap();
        }
        db.execute("DELETE FROM t WHERE a < 90").unwrap();
        let before = db.journal_size_bytes();
        db.compact().unwrap();
        assert!(db.journal_size_bytes() < before);
    }
    let db = Database::open(&path, Box::new(PlainCodec), SyncPolicy::Never).unwrap();
    let r = db.query("SELECT COUNT(*) FROM t", &[]).unwrap();
    assert_eq!(r.scalar().unwrap(), &Value::Integer(10));
}

#[test]
fn view_over_view_queries() {
    let mut db = Database::new();
    db.execute("CREATE TABLE t(v INTEGER)").unwrap();
    db.execute("INSERT INTO t VALUES (1),(2),(3),(4)").unwrap();
    db.execute("CREATE VIEW evens AS SELECT v FROM t WHERE v % 2 = 0")
        .unwrap();
    db.execute("CREATE VIEW big_evens AS SELECT v FROM evens WHERE v > 2")
        .unwrap();
    let r = db.query("SELECT v FROM big_evens", &[]).unwrap();
    assert_eq!(r.rows.len(), 1);
    assert_eq!(r.rows[0][0], Value::Integer(4));
}

#[test]
fn errors_are_reported() {
    let mut db = Database::new();
    assert!(db.query("SELECT * FROM missing", &[]).is_err());
    db.execute("CREATE TABLE t(a INTEGER)").unwrap();
    assert!(db.query("SELECT nope FROM t", &[]).is_err());
    assert!(db.execute("CREATE TABLE t(a INTEGER)").is_err());
    assert!(db
        .execute("CREATE TABLE IF NOT EXISTS t(a INTEGER)")
        .is_ok());
    assert!(db.execute("INSERT INTO t VALUES (1, 2)").is_err());
    assert!(db.execute_with("INSERT INTO t VALUES (?)", &[]).is_err());
}

#[test]
fn affinity_applied_on_insert() {
    let mut db = Database::new();
    db.execute("CREATE TABLE t(a INTEGER, b TEXT)").unwrap();
    db.execute("INSERT INTO t VALUES ('42', 7)").unwrap();
    let r = db.query("SELECT TYPEOF(a), TYPEOF(b) FROM t", &[]).unwrap();
    assert_eq!(r.rows[0][0], Value::Text("integer".into()));
    assert_eq!(r.rows[0][1], Value::Text("text".into()));
}

#[test]
fn distinct_dedupes() {
    let mut db = Database::new();
    db.execute("CREATE TABLE t(v INTEGER)").unwrap();
    db.execute("INSERT INTO t VALUES (1),(1),(2),(2),(2)")
        .unwrap();
    let r = db
        .query("SELECT DISTINCT v FROM t ORDER BY v", &[])
        .unwrap();
    assert_eq!(r.rows.len(), 2);
}

#[test]
fn select_without_from() {
    let db = Database::new();
    let r = db.query("SELECT 1 + 2 AS three", &[]).unwrap();
    assert_eq!(r.columns, vec!["three"]);
    assert_eq!(r.scalar().unwrap(), &Value::Integer(3));
}

#[test]
fn like_patterns() {
    let mut db = Database::new();
    db.execute("CREATE TABLE t(s TEXT)").unwrap();
    db.execute("INSERT INTO t VALUES ('refs/heads/main'), ('refs/tags/v1'), ('other')")
        .unwrap();
    let r = db
        .query("SELECT s FROM t WHERE s LIKE 'refs/%' ORDER BY s", &[])
        .unwrap();
    assert_eq!(r.rows.len(), 2);
    let r = db
        .query("SELECT s FROM t WHERE s NOT LIKE 'refs/%'", &[])
        .unwrap();
    assert_eq!(r.rows.len(), 1);
}

fn assert_indexes_consistent(db: &Database) {
    for t in db.catalog().tables_sorted() {
        assert!(t.indexes_consistent(), "indexes on {} inconsistent", t.name);
    }
}

#[test]
fn index_ddl_and_dml_maintenance() {
    let mut db = Database::new();
    db.execute("CREATE TABLE t(a INTEGER, b TEXT)").unwrap();
    db.execute("CREATE INDEX ix_a ON t(a)").unwrap();
    assert_eq!(db.catalog().table("t").unwrap().index_names(), vec!["ix_a"]);
    // Duplicate name rejected, IF NOT EXISTS tolerated.
    assert!(db.execute("CREATE INDEX ix_a ON t(b)").is_err());
    db.execute("CREATE INDEX IF NOT EXISTS ix_a ON t(b)")
        .unwrap();

    for i in 0..50 {
        db.execute_with(
            "INSERT INTO t VALUES (?, ?)",
            &[Value::Integer(i % 7), Value::Text(format!("s{i}"))],
        )
        .unwrap();
    }
    assert_indexes_consistent(&db);
    let r = db
        .query("SELECT COUNT(*) FROM t WHERE a = ?", &[Value::Integer(3)])
        .unwrap();
    assert_eq!(r.scalar().unwrap(), &Value::Integer(7));

    db.execute("DELETE FROM t WHERE a = 3").unwrap();
    assert_indexes_consistent(&db);
    assert!(db
        .query("SELECT * FROM t WHERE a = 3", &[])
        .unwrap()
        .is_empty());

    db.execute("UPDATE t SET a = 3 WHERE a = 4").unwrap();
    assert_indexes_consistent(&db);
    let r = db.query("SELECT COUNT(*) FROM t WHERE a = 3", &[]).unwrap();
    assert_eq!(r.scalar().unwrap(), &Value::Integer(7));

    db.execute("DROP INDEX ix_a").unwrap();
    assert!(db.catalog().table("t").unwrap().index_names().is_empty());
    assert!(db.execute("DROP INDEX ix_a").is_err());
    db.execute("DROP INDEX IF EXISTS ix_a").unwrap();
}

#[test]
fn indexes_survive_journal_replay() {
    use libseal_sealdb::{PlainCodec, SyncPolicy};
    let path = plat::tmp::TempPath::new("sealdb-ixreplay", "db");
    {
        let mut db = Database::open(&path, Box::new(PlainCodec), SyncPolicy::Never).unwrap();
        db.execute("CREATE TABLE t(a INTEGER, b INTEGER)").unwrap();
        db.execute("CREATE INDEX ix_a ON t(a)").unwrap();
        for i in 0..40 {
            db.execute_with(
                "INSERT INTO t VALUES (?, ?)",
                &[Value::Integer(i % 5), Value::Integer(i)],
            )
            .unwrap();
        }
        db.execute("DELETE FROM t WHERE a = 1").unwrap();
    }
    let db = Database::open(&path, Box::new(PlainCodec), SyncPolicy::Never).unwrap();
    assert_eq!(db.catalog().table("t").unwrap().index_names(), vec!["ix_a"]);
    assert_indexes_consistent(&db);
    let r = db
        .query("SELECT COUNT(*) FROM t WHERE a = ?", &[Value::Integer(2)])
        .unwrap();
    assert_eq!(r.scalar().unwrap(), &Value::Integer(8));
}

#[test]
fn compaction_preserves_indexes() {
    use libseal_sealdb::{PlainCodec, SyncPolicy};
    let path = plat::tmp::TempPath::new("sealdb-ixcompact", "db");
    {
        let mut db = Database::open(&path, Box::new(PlainCodec), SyncPolicy::Never).unwrap();
        db.execute("CREATE TABLE t(a INTEGER)").unwrap();
        db.execute("CREATE INDEX ix_a ON t(a)").unwrap();
        for i in 0..60 {
            db.execute_with("INSERT INTO t VALUES (?)", &[Value::Integer(i % 4)])
                .unwrap();
        }
        db.execute("DELETE FROM t WHERE a = 0").unwrap();
        db.compact().unwrap();
        assert_indexes_consistent(&db);
    }
    let db = Database::open(&path, Box::new(PlainCodec), SyncPolicy::Never).unwrap();
    assert_eq!(db.catalog().table("t").unwrap().index_names(), vec!["ix_a"]);
    assert_indexes_consistent(&db);
    let r = db.query("SELECT COUNT(*) FROM t WHERE a = 2", &[]).unwrap();
    assert_eq!(r.scalar().unwrap(), &Value::Integer(15));
}

#[test]
fn planner_toggle_equivalence_on_git_workload() {
    let build = |planner: bool| {
        let mut db = git_db();
        db.set_planner_enabled(planner);
        db.execute("CREATE INDEX ix_u_repo ON updates(repo)")
            .unwrap();
        db.execute("CREATE INDEX ix_a_repo ON advertisements(repo)")
            .unwrap();
        for i in 0..30i64 {
            let repo = if i % 2 == 0 { "r1" } else { "r2" };
            push(&mut db, i, repo, "main", &format!("{i:040x}"), "update");
            advertise(&mut db, i, repo, "main", &format!("{i:040x}"));
        }
        db
    };
    let on = build(true);
    let off = build(false);
    for sql in [
        "SELECT * FROM updates WHERE repo = 'r1'",
        "SELECT u.time, a.time FROM updates u JOIN advertisements a ON u.repo = a.repo AND u.time = a.time",
        "SELECT repo, COUNT(*) FROM updates GROUP BY repo",
    ] {
        let a = on.query(sql, &[]).unwrap();
        let b = off.query(sql, &[]).unwrap();
        assert_eq!(a.columns, b.columns, "{sql}");
        assert_eq!(a.rows, b.rows, "{sql}");
    }
}

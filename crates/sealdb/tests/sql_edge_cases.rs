//! Edge-case coverage for the SQL engine: the behaviours the paper's
//! queries rely on indirectly, plus classic NULL/aggregation corners.

use libseal_sealdb::{Database, Value};

fn db_with(sql: &str) -> Database {
    let mut db = Database::new();
    db.execute(sql).unwrap();
    db
}

#[test]
fn natural_join_multiple_shared_columns() {
    let mut db = db_with(
        "CREATE TABLE a(x INTEGER, y INTEGER, p TEXT);
         CREATE TABLE b(x INTEGER, y INTEGER, q TEXT);",
    );
    db.execute("INSERT INTO a VALUES (1, 1, 'p11'), (1, 2, 'p12'), (2, 1, 'p21')")
        .unwrap();
    db.execute("INSERT INTO b VALUES (1, 1, 'q11'), (2, 1, 'q21'), (3, 3, 'q33')")
        .unwrap();
    let r = db
        .query("SELECT x, y, p, q FROM a NATURAL JOIN b ORDER BY x", &[])
        .unwrap();
    assert_eq!(r.rows.len(), 2);
    assert_eq!(r.rows[0][2], Value::Text("p11".into()));
    assert_eq!(r.rows[0][3], Value::Text("q11".into()));
    assert_eq!(r.rows[1][2], Value::Text("p21".into()));
}

#[test]
fn natural_join_without_shared_columns_is_cross() {
    let mut db = db_with("CREATE TABLE a(x INTEGER); CREATE TABLE b(y INTEGER);");
    db.execute("INSERT INTO a VALUES (1), (2)").unwrap();
    db.execute("INSERT INTO b VALUES (10), (20)").unwrap();
    let r = db.query("SELECT x, y FROM a NATURAL JOIN b", &[]).unwrap();
    assert_eq!(r.rows.len(), 4);
}

#[test]
fn order_by_output_alias_and_position() {
    let mut db = db_with("CREATE TABLE t(a INTEGER, b INTEGER);");
    db.execute("INSERT INTO t VALUES (1, 30), (2, 10), (3, 20)")
        .unwrap();
    let r = db
        .query("SELECT a, b AS bee FROM t ORDER BY bee", &[])
        .unwrap();
    assert_eq!(r.rows[0][0], Value::Integer(2));
    let r = db.query("SELECT a, b FROM t ORDER BY 2 DESC", &[]).unwrap();
    assert_eq!(r.rows[0][0], Value::Integer(1));
}

#[test]
fn order_by_column_not_in_projection() {
    let mut db = db_with("CREATE TABLE t(a INTEGER, b INTEGER);");
    db.execute("INSERT INTO t VALUES (1, 3), (2, 1), (3, 2)")
        .unwrap();
    let r = db.query("SELECT a FROM t ORDER BY b", &[]).unwrap();
    let got: Vec<&Value> = r.rows.iter().map(|row| &row[0]).collect();
    assert_eq!(
        got,
        vec![&Value::Integer(2), &Value::Integer(3), &Value::Integer(1)]
    );
}

#[test]
fn group_by_expression() {
    let mut db = db_with("CREATE TABLE t(v INTEGER);");
    db.execute("INSERT INTO t VALUES (1), (2), (3), (4), (5)")
        .unwrap();
    let r = db
        .query(
            "SELECT v % 2, COUNT(*) FROM t GROUP BY v % 2 ORDER BY 1",
            &[],
        )
        .unwrap();
    assert_eq!(r.rows.len(), 2);
    assert_eq!(r.rows[0][1], Value::Integer(2)); // evens
    assert_eq!(r.rows[1][1], Value::Integer(3)); // odds
}

#[test]
fn aggregates_over_empty_table() {
    let db = db_with("CREATE TABLE t(v INTEGER);");
    let r = db
        .query(
            "SELECT COUNT(*), COUNT(v), SUM(v), AVG(v), MIN(v), MAX(v) FROM t",
            &[],
        )
        .unwrap();
    assert_eq!(r.rows.len(), 1);
    assert_eq!(r.rows[0][0], Value::Integer(0));
    assert_eq!(r.rows[0][1], Value::Integer(0));
    assert_eq!(r.rows[0][2], Value::Null);
    assert_eq!(r.rows[0][3], Value::Null);
    assert_eq!(r.rows[0][4], Value::Null);
    assert_eq!(r.rows[0][5], Value::Null);
}

#[test]
fn having_without_group_by() {
    let mut db = db_with("CREATE TABLE t(v INTEGER);");
    db.execute("INSERT INTO t VALUES (1), (2)").unwrap();
    let r = db
        .query("SELECT SUM(v) FROM t HAVING SUM(v) > 2", &[])
        .unwrap();
    assert_eq!(r.rows.len(), 1);
    let r = db
        .query("SELECT SUM(v) FROM t HAVING SUM(v) > 5", &[])
        .unwrap();
    assert!(r.rows.is_empty());
}

#[test]
fn between_and_not_between() {
    let mut db = db_with("CREATE TABLE t(v INTEGER);");
    db.execute("INSERT INTO t VALUES (1), (5), (10)").unwrap();
    let r = db
        .query("SELECT v FROM t WHERE v BETWEEN 2 AND 9", &[])
        .unwrap();
    assert_eq!(r.rows.len(), 1);
    let r = db
        .query(
            "SELECT v FROM t WHERE v NOT BETWEEN 2 AND 9 ORDER BY v",
            &[],
        )
        .unwrap();
    assert_eq!(r.rows.len(), 2);
    // Bounds are inclusive.
    let r = db
        .query("SELECT v FROM t WHERE v BETWEEN 1 AND 5", &[])
        .unwrap();
    assert_eq!(r.rows.len(), 2);
}

#[test]
fn in_list_with_expressions() {
    let mut db = db_with("CREATE TABLE t(v INTEGER);");
    db.execute("INSERT INTO t VALUES (2), (4), (6)").unwrap();
    let r = db
        .query(
            "SELECT v FROM t WHERE v IN (1 + 1, 10, 3 * 2) ORDER BY v",
            &[],
        )
        .unwrap();
    assert_eq!(r.rows.len(), 2);
}

#[test]
fn scalar_subquery_empty_is_null() {
    let mut db = db_with("CREATE TABLE t(v INTEGER); CREATE TABLE u(w INTEGER);");
    db.execute("INSERT INTO t VALUES (1)").unwrap();
    let r = db
        .query("SELECT (SELECT w FROM u) IS NULL FROM t", &[])
        .unwrap();
    assert_eq!(r.scalar().unwrap(), &Value::Integer(1));
}

#[test]
fn nested_correlated_subqueries() {
    // Two levels of correlation, as in the paper's branchcnt view.
    let mut db = db_with("CREATE TABLE ev(t INTEGER, k TEXT, v INTEGER);");
    for (t, k, v) in [
        (1, "a", 10),
        (2, "a", 20),
        (3, "b", 5),
        (4, "a", 30),
        (5, "b", 7),
    ] {
        db.execute_with(
            "INSERT INTO ev VALUES (?, ?, ?)",
            &[Value::Integer(t), Value::Text(k.into()), Value::Integer(v)],
        )
        .unwrap();
    }
    // For each row: is it the latest event of its key?
    let r = db
        .query(
            "SELECT t FROM ev e WHERE e.t = (SELECT MAX(t) FROM ev WHERE k = e.k) ORDER BY t",
            &[],
        )
        .unwrap();
    let got: Vec<&Value> = r.rows.iter().map(|row| &row[0]).collect();
    assert_eq!(got, vec![&Value::Integer(4), &Value::Integer(5)]);
}

#[test]
fn update_with_correlated_subquery_filter() {
    let mut db = db_with("CREATE TABLE t(id INTEGER, v INTEGER); CREATE TABLE m(id INTEGER);");
    db.execute("INSERT INTO t VALUES (1, 0), (2, 0), (3, 0)")
        .unwrap();
    db.execute("INSERT INTO m VALUES (1), (3)").unwrap();
    let r = db
        .execute("UPDATE t SET v = 9 WHERE id IN (SELECT id FROM m)")
        .unwrap();
    assert_eq!(r.rows_affected, 2);
    let r = db.query("SELECT SUM(v) FROM t", &[]).unwrap();
    assert_eq!(r.scalar().unwrap(), &Value::Integer(18));
}

#[test]
fn delete_everything_and_reuse() {
    let mut db = db_with("CREATE TABLE t(v INTEGER);");
    db.execute("INSERT INTO t VALUES (1), (2)").unwrap();
    assert_eq!(db.execute("DELETE FROM t").unwrap().rows_affected, 2);
    db.execute("INSERT INTO t VALUES (7)").unwrap();
    let r = db.query("SELECT COUNT(*) FROM t", &[]).unwrap();
    assert_eq!(r.scalar().unwrap(), &Value::Integer(1));
}

#[test]
fn text_comparison_and_concat_affinities() {
    let mut db = db_with("CREATE TABLE t(s TEXT, n INTEGER);");
    db.execute("INSERT INTO t VALUES ('abc', 5)").unwrap();
    // TEXT vs INTEGER never compare equal (distinct type classes).
    let r = db.query("SELECT COUNT(*) FROM t WHERE s = 5", &[]).unwrap();
    assert_eq!(r.scalar().unwrap(), &Value::Integer(0));
    // Concat renders both as text.
    let r = db.query("SELECT s || n FROM t", &[]).unwrap();
    assert_eq!(r.scalar().unwrap(), &Value::Text("abc5".into()));
}

#[test]
fn limit_zero_and_offset_beyond_end() {
    let mut db = db_with("CREATE TABLE t(v INTEGER);");
    db.execute("INSERT INTO t VALUES (1), (2), (3)").unwrap();
    assert!(db
        .query("SELECT v FROM t LIMIT 0", &[])
        .unwrap()
        .rows
        .is_empty());
    assert!(db
        .query("SELECT v FROM t LIMIT 5 OFFSET 10", &[])
        .unwrap()
        .rows
        .is_empty());
    let r = db
        .query("SELECT v FROM t ORDER BY v LIMIT 1, 2", &[])
        .unwrap();
    assert_eq!(r.rows.len(), 2); // MySQL-style offset, count
    assert_eq!(r.rows[0][0], Value::Integer(2));
}

#[test]
fn distinct_with_nulls() {
    let mut db = db_with("CREATE TABLE t(v INTEGER);");
    db.execute("INSERT INTO t VALUES (NULL), (NULL), (1)")
        .unwrap();
    let r = db.query("SELECT DISTINCT v FROM t", &[]).unwrap();
    assert_eq!(r.rows.len(), 2, "NULLs group together under DISTINCT");
}

#[test]
fn case_without_else_yields_null() {
    let db = db_with("CREATE TABLE t(v INTEGER);");
    let _ = db;
    let mut db = Database::new();
    let r = db.execute("SELECT CASE WHEN 1 = 2 THEN 'x' END").unwrap();
    assert_eq!(r.scalar().unwrap(), &Value::Null);
}

#[test]
fn quoted_identifiers_roundtrip() {
    let mut db = Database::new();
    db.execute(r#"CREATE TABLE "my table"("a col" INTEGER)"#)
        .unwrap();
    db.execute(r#"INSERT INTO "my table" VALUES (7)"#).unwrap();
    let r = db.query(r#"SELECT "a col" FROM "my table""#, &[]).unwrap();
    assert_eq!(r.scalar().unwrap(), &Value::Integer(7));
}

#[test]
fn view_columns_usable_in_predicates() {
    let mut db = db_with("CREATE TABLE t(g TEXT, v INTEGER);");
    db.execute("INSERT INTO t VALUES ('a', 1), ('a', 2), ('b', 5)")
        .unwrap();
    db.execute("CREATE VIEW sums AS SELECT g, SUM(v) AS total FROM t GROUP BY g")
        .unwrap();
    let r = db
        .query("SELECT g FROM sums WHERE total > 2 ORDER BY g", &[])
        .unwrap();
    assert_eq!(r.rows.len(), 2);
}

#[test]
fn self_join_with_aliases() {
    let mut db = db_with("CREATE TABLE t(id INTEGER, parent INTEGER);");
    db.execute("INSERT INTO t VALUES (1, 0), (2, 1), (3, 1), (4, 2)")
        .unwrap();
    let r = db
        .query(
            "SELECT child.id, parent.id FROM t child JOIN t parent
             ON child.parent = parent.id ORDER BY child.id",
            &[],
        )
        .unwrap();
    assert_eq!(r.rows.len(), 3);
    assert_eq!(r.rows[2][0], Value::Integer(4));
    assert_eq!(r.rows[2][1], Value::Integer(2));
}

#[test]
fn exists_short_circuits_with_limit() {
    let mut db = db_with("CREATE TABLE t(v INTEGER);");
    for i in 0..50 {
        db.execute_with("INSERT INTO t VALUES (?)", &[Value::Integer(i)])
            .unwrap();
    }
    let r = db
        .query(
            "SELECT COUNT(*) FROM t a WHERE EXISTS
               (SELECT 1 FROM t b WHERE b.v = a.v + 1 LIMIT 1)",
            &[],
        )
        .unwrap();
    assert_eq!(r.scalar().unwrap(), &Value::Integer(49));
}

//! Delta-maintained materialized view semantics: incremental refresh
//! must always agree with a from-scratch evaluation of the view query.

use libseal_sealdb::journal::{PlainCodec, SyncPolicy};
use libseal_sealdb::{Database, MatViewSpec, RescanRule, SourceRule, Value};
use plat::tmp::TempPath;

/// A miniature soundness invariant: a `sent` row with no matching
/// `recv` row is a violation. The NOT EXISTS is untimed, so a later
/// recv can clear an earlier violation — the rescan-rule case.
const FULL: &str = "SELECT s.time, s.doc FROM sent s \
  WHERE NOT EXISTS (SELECT 1 FROM recv r WHERE r.doc = s.doc AND r.content = s.content)";
const DELTA: &str = "SELECT s.time, s.doc FROM sent s \
  WHERE s.time = ?1 \
  AND NOT EXISTS (SELECT 1 FROM recv r WHERE r.doc = s.doc AND r.content = s.content)";

fn spec() -> MatViewSpec {
    MatViewSpec {
        name: "mv_unsound".into(),
        full_sql: FULL.into(),
        delta_sql: DELTA.into(),
        partition_col: 0,
        sources: vec![
            SourceRule {
                table: "sent".into(),
                partition_col: Some("time".into()),
                rescan: None,
            },
            SourceRule {
                table: "recv".into(),
                partition_col: None,
                rescan: Some(RescanRule {
                    sql: "SELECT s.time FROM sent s WHERE s.doc = ?1 AND s.content = ?2".into(),
                    bind_cols: vec!["doc".into(), "content".into()],
                }),
            },
        ],
    }
}

fn schema(db: &mut Database) {
    db.execute("CREATE TABLE sent(time INTEGER, doc TEXT, content TEXT)")
        .unwrap();
    db.execute("CREATE TABLE recv(time INTEGER, doc TEXT, content TEXT)")
        .unwrap();
    db.execute("CREATE INDEX idx_sent_doc ON sent(doc)")
        .unwrap();
    db.execute("CREATE INDEX idx_recv_doc ON recv(doc)")
        .unwrap();
}

fn send(db: &mut Database, time: i64, doc: &str, content: &str) {
    db.execute_with(
        "INSERT INTO sent VALUES (?, ?, ?)",
        &[
            Value::Integer(time),
            Value::Text(doc.into()),
            Value::Text(content.into()),
        ],
    )
    .unwrap();
}

fn recv(db: &mut Database, time: i64, doc: &str, content: &str) {
    db.execute_with(
        "INSERT INTO recv VALUES (?, ?, ?)",
        &[
            Value::Integer(time),
            Value::Text(doc.into()),
            Value::Text(content.into()),
        ],
    )
    .unwrap();
}

/// Sorted (time, doc) pairs from any two-column result set.
fn pairs(db: &Database, sql: &str) -> Vec<(i64, String)> {
    let mut out: Vec<(i64, String)> = db
        .query(sql, &[])
        .unwrap()
        .rows
        .into_iter()
        .map(|r| match (&r[0], &r[1]) {
            (Value::Integer(t), Value::Text(d)) => (*t, d.clone()),
            other => panic!("unexpected row {other:?}"),
        })
        .collect();
    out.sort();
    out
}

fn assert_view_matches_full(db: &Database) {
    assert_eq!(
        pairs(db, "SELECT time, doc FROM mv_unsound"),
        pairs(db, FULL),
        "materialized view diverged from full evaluation"
    );
}

#[test]
fn registration_seeds_from_existing_rows() {
    let mut db = Database::new();
    schema(&mut db);
    send(&mut db, 1, "a", "x");
    send(&mut db, 2, "b", "y");
    recv(&mut db, 3, "a", "x");
    db.register_matview(spec()).unwrap();
    assert_eq!(db.matview_lag(), 0);
    assert_eq!(
        pairs(&db, "SELECT time, doc FROM mv_unsound"),
        vec![(2, "b".to_string())]
    );
}

#[test]
fn inserts_dirty_only_their_partition_and_refresh_converges() {
    let mut db = Database::new();
    schema(&mut db);
    db.register_matview(spec()).unwrap();
    send(&mut db, 1, "a", "x");
    assert_eq!(db.matview_lag(), 1);
    send(&mut db, 2, "b", "y");
    assert_eq!(db.matview_lag(), 2);
    let refreshed = db.refresh_matviews().unwrap();
    assert_eq!(refreshed, 2);
    assert_eq!(db.matview_lag(), 0);
    assert_view_matches_full(&db);
    // A matching recv clears the time-1 violation via the rescan rule.
    recv(&mut db, 3, "a", "x");
    assert_eq!(db.matview_lag(), 1, "rescan should re-dirty partition 1");
    db.refresh_matviews().unwrap();
    assert_eq!(
        pairs(&db, "SELECT time, doc FROM mv_unsound"),
        vec![(2, "b".to_string())]
    );
    assert_view_matches_full(&db);
    // A recv matching nothing dirties nothing.
    recv(&mut db, 4, "zz", "zz");
    assert_eq!(db.matview_lag(), 0);
}

#[test]
fn delete_and_update_force_full_rebuild() {
    let mut db = Database::new();
    schema(&mut db);
    send(&mut db, 1, "a", "x");
    send(&mut db, 2, "b", "y");
    recv(&mut db, 3, "b", "y");
    db.register_matview(spec()).unwrap();
    assert_view_matches_full(&db);
    // Deleting the recv row resurrects the time-2 violation.
    db.execute("DELETE FROM recv WHERE doc = 'b'").unwrap();
    assert!(db.matview_lag() > 0);
    db.refresh_matviews().unwrap();
    assert_eq!(
        pairs(&db, "SELECT time, doc FROM mv_unsound"),
        vec![(1, "a".to_string()), (2, "b".to_string())]
    );
    assert_view_matches_full(&db);
    // An UPDATE on a source table also forces a rebuild.
    db.execute("UPDATE sent SET content = 'z' WHERE doc = 'a'")
        .unwrap();
    assert!(db.matview_lag() > 0);
    db.refresh_matviews().unwrap();
    assert_view_matches_full(&db);
}

plat::prop! {
    #![cases(48)]

    fn randomized_incremental_equals_full_scan(g) {
            let mut db = Database::new();
            schema(&mut db);
            db.register_matview(spec()).unwrap();
            let docs = ["a", "b", "c"];
            let mut time = 0i64;
            for _ in 0..g.usize_in(1..40) {
                time += 1;
                let doc = docs[g.usize_in(0..docs.len())];
                let content = docs[g.usize_in(0..docs.len())];
                match g.usize_in(0..10) {
                    0..=4 => send(&mut db, time, doc, content),
                    5..=7 => recv(&mut db, time, doc, content),
                    8 => {
                        db.execute_with(
                            "DELETE FROM recv WHERE doc = ?",
                            &[Value::Text(doc.into())],
                        )
                        .unwrap();
                    }
                    _ => {
                        db.refresh_matviews().unwrap();
                        assert_view_matches_full(&db);
                    }
                }
            }
            db.refresh_matviews().unwrap();
            assert_view_matches_full(&db);
    }
}

#[test]
fn reopen_reseeds_views_from_recovered_base_tables() {
    let path = TempPath::new("matview_reopen", "db");
    {
        let mut db = Database::open(&path, Box::new(PlainCodec), SyncPolicy::Manual).unwrap();
        schema(&mut db);
        db.register_matview(spec()).unwrap();
        send(&mut db, 1, "a", "x");
        send(&mut db, 2, "b", "y");
        recv(&mut db, 3, "a", "x");
        db.refresh_matviews().unwrap();
        assert_view_matches_full(&db);
        db.sync_journal().unwrap();
    }
    // Reopen: the backing table definition replays from the journal
    // but its derived rows were never journaled.
    let mut db = Database::open(&path, Box::new(PlainCodec), SyncPolicy::Manual).unwrap();
    assert!(db.catalog().table("mv_unsound").is_some());
    assert_eq!(
        db.query("SELECT * FROM mv_unsound", &[])
            .unwrap()
            .rows
            .len(),
        0
    );
    // Re-registration (what the audit layer does on open) reseeds.
    db.register_matview(spec()).unwrap();
    assert_view_matches_full(&db);
    assert_eq!(
        pairs(&db, "SELECT time, doc FROM mv_unsound"),
        vec![(2, "b".to_string())]
    );
}

#[test]
fn compaction_drops_derived_rows_but_keeps_definitions() {
    let path = TempPath::new("matview_compact", "db");
    {
        let mut db = Database::open(&path, Box::new(PlainCodec), SyncPolicy::Manual).unwrap();
        schema(&mut db);
        send(&mut db, 1, "a", "x");
        db.register_matview(spec()).unwrap();
        assert_view_matches_full(&db);
        db.compact().unwrap();
        db.sync_journal().unwrap();
    }
    let mut db = Database::open(&path, Box::new(PlainCodec), SyncPolicy::Manual).unwrap();
    assert!(db.catalog().table("mv_unsound").is_some());
    assert_eq!(
        db.query("SELECT * FROM mv_unsound", &[])
            .unwrap()
            .rows
            .len(),
        0
    );
    db.register_matview(spec()).unwrap();
    assert_eq!(
        pairs(&db, "SELECT time, doc FROM mv_unsound"),
        vec![(1, "a".to_string())]
    );
}

//! Optimized-vs-naive executor equivalence (deterministic `plat::check`
//! harness).
//!
//! The optimizing interpreter (hash joins, index scans, subquery
//! memoization) must be observationally identical to the naive
//! nested-loop interpreter: same output columns, same rows, same row
//! *order*. Each case builds the same random database twice — once with
//! the planner enabled, once disabled — runs random queries against
//! both, and asserts exact equality. Random DML is interleaved and the
//! planner-side hash indexes are checked for consistency after every
//! mutation.

use libseal_sealdb::{Database, Value};
use plat::check::Gen;

/// A planner-on / planner-off database pair kept in lockstep.
struct Pair {
    on: Database,
    off: Database,
}

impl Pair {
    fn new() -> Pair {
        let on = Database::new();
        let mut off = Database::new();
        off.set_planner_enabled(false);
        Pair { on, off }
    }

    fn exec(&mut self, sql: &str, params: &[Value]) {
        self.on.execute_with(sql, params).unwrap();
        self.off.execute_with(sql, params).unwrap();
        for t in self.on.catalog().tables_sorted() {
            assert!(
                t.indexes_consistent(),
                "indexes on {} inconsistent after: {sql}",
                t.name
            );
        }
    }

    fn check(&self, sql: &str, params: &[Value]) {
        let a = self.on.query(sql, params).unwrap();
        let b = self.off.query(sql, params).unwrap();
        assert_eq!(a.columns, b.columns, "columns differ for: {sql}");
        assert_eq!(a.rows, b.rows, "rows differ for: {sql}");
    }
}

/// Small value domain so equality predicates and join keys actually
/// match: NULLs, colliding integers/reals (2 vs 2.0), short strings,
/// and the occasional NaN to exercise the planner's fallback paths.
fn small_value(g: &mut Gen) -> Value {
    match g.below(16) {
        0 | 1 => Value::Null,
        2..=8 => Value::Integer(g.i64_in(0..5)),
        9..=12 => Value::Text((*g.pick(&["x", "y", "z"])).to_string()),
        13 => Value::Real(g.i64_in(0..5) as f64),
        14 => Value::Real(0.5),
        _ => {
            if g.below(4) == 0 {
                Value::Real(f64::NAN)
            } else {
                Value::Integer(g.i64_in(0..5))
            }
        }
    }
}

const TYPES: [&str; 4] = ["INTEGER", "TEXT", "REAL", "BLOB"];

/// Creates `t0`/`t1` (both with columns `c0..c2`, random declared
/// types), fills them with random rows, and declares random indexes.
fn build_schema(g: &mut Gen, p: &mut Pair) {
    for t in ["t0", "t1"] {
        let cols: Vec<String> = (0..3)
            .map(|c| format!("c{c} {}", *g.pick(&TYPES)))
            .collect();
        p.exec(&format!("CREATE TABLE {t}({})", cols.join(", ")), &[]);
        let rows = g.usize_in(0..30);
        for _ in 0..rows {
            let vals = [small_value(g), small_value(g), small_value(g)];
            p.exec(&format!("INSERT INTO {t} VALUES (?, ?, ?)"), &vals);
        }
        for c in 0..3 {
            if g.bool() {
                p.exec(&format!("CREATE INDEX ix_{t}_c{c} ON {t}(c{c})"), &[]);
            }
        }
    }
}

fn random_dml(g: &mut Gen, p: &mut Pair) {
    let t = *g.pick(&["t0", "t1"]);
    let c = g.index(3);
    match g.below(3) {
        0 => {
            let vals = [small_value(g), small_value(g), small_value(g)];
            p.exec(&format!("INSERT INTO {t} VALUES (?, ?, ?)"), &vals);
        }
        1 => p.exec(
            &format!("DELETE FROM {t} WHERE c{c} = ?"),
            &[small_value(g)],
        ),
        _ => {
            let set = g.index(3);
            p.exec(
                &format!("UPDATE {t} SET c{set} = ? WHERE c{c} = ?"),
                &[small_value(g), small_value(g)],
            );
        }
    }
}

fn random_query(g: &mut Gen, p: &Pair) {
    let ta = *g.pick(&["t0", "t1"]);
    let tb = *g.pick(&["t0", "t1"]);
    let (ci, cj, ck) = (g.index(3), g.index(3), g.index(3));
    match g.below(9) {
        // Single-table equality filter (index-scan fast path).
        0 => p.check(
            &format!("SELECT * FROM {ta} WHERE c{ci} = ?"),
            &[small_value(g)],
        ),
        // Equality conjunct plus a residual non-equi conjunct.
        1 => p.check(
            &format!("SELECT * FROM {ta} WHERE c{ci} = ? AND c{cj} > ?"),
            &[small_value(g), small_value(g)],
        ),
        // Hash inner join on one equi key.
        2 => p.check(
            &format!("SELECT a.c0, b.c1 FROM {ta} a JOIN {tb} b ON a.c{ci} = b.c{cj}"),
            &[],
        ),
        // Inner join with an equi key and a residual conjunct.
        3 => p.check(
            &format!(
                "SELECT a.c0, b.c2 FROM {ta} a JOIN {tb} b \
                 ON a.c{ci} = b.c{cj} AND a.c{ck} > ?"
            ),
            &[small_value(g)],
        ),
        // LEFT JOIN: unmatched left rows must pad identically.
        4 => p.check(
            &format!("SELECT * FROM {ta} a LEFT JOIN {tb} b ON a.c{ci} = b.c{cj}"),
            &[],
        ),
        // NATURAL JOIN over all shared columns.
        5 => p.check(&format!("SELECT * FROM {ta} NATURAL JOIN {tb}"), &[]),
        // Correlated scalar subquery (memoization path).
        6 => p.check(
            &format!(
                "SELECT c0, (SELECT COUNT(*) FROM {tb} b WHERE b.c{cj} = {ta}.c{ci}) \
                 FROM {ta}"
            ),
            &[],
        ),
        // IN / EXISTS subqueries.
        7 => {
            if g.bool() {
                p.check(
                    &format!("SELECT * FROM {ta} WHERE c{ci} IN (SELECT c{cj} FROM {tb})"),
                    &[],
                );
            } else {
                p.check(
                    &format!(
                        "SELECT * FROM {ta} WHERE EXISTS \
                         (SELECT 1 FROM {tb} b WHERE b.c{cj} = {ta}.c{ci})"
                    ),
                    &[],
                );
            }
        }
        // Aggregation over a possibly-indexed grouping column.
        _ => p.check(
            &format!("SELECT c{ci}, COUNT(*) FROM {ta} GROUP BY c{ci}"),
            &[],
        ),
    }
}

plat::prop! {
    #![cases(48)]

    fn optimized_executor_matches_naive(g) {
        let mut p = Pair::new();
        build_schema(g, &mut p);
        for _ in 0..g.usize_in(4..12) {
            if g.below(3) == 0 {
                random_dml(g, &mut p);
            }
            random_query(g, &p);
        }
    }

    fn index_scan_with_nan_matches_naive(g) {
        // Force NaN into an indexed key column: the index is poisoned
        // and every optimized path must fall back without changing
        // results.
        let mut p = Pair::new();
        p.exec("CREATE TABLE t0(c0 REAL, c1 INTEGER)", &[]);
        p.exec("CREATE INDEX ix_t0_c0 ON t0(c0)", &[]);
        for _ in 0..g.usize_in(1..12) {
            p.exec(
                "INSERT INTO t0 VALUES (?, ?)",
                &[small_value(g), small_value(g)],
            );
        }
        p.exec(
            "INSERT INTO t0 VALUES (?, ?)",
            &[Value::Real(f64::NAN), Value::Integer(1)],
        );
        p.check("SELECT * FROM t0 WHERE c0 = ?", &[small_value(g)]);
        p.check(
            "SELECT a.c1, b.c1 FROM t0 a JOIN t0 b ON a.c0 = b.c0",
            &[],
        );
    }
}

//! Property-based tests for the sealdb engine invariants.

use libseal_sealdb::{Database, PlainCodec, SyncPolicy, Value};
use proptest::prelude::*;

fn value_strategy() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<i64>().prop_map(Value::Integer),
        (-1e12f64..1e12).prop_map(Value::Real),
        "[a-z]{0,12}".prop_map(Value::Text),
        proptest::collection::vec(any::<u8>(), 0..16).prop_map(Value::Blob),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn total_cmp_is_a_total_order(
        a in value_strategy(),
        b in value_strategy(),
        c in value_strategy(),
    ) {
        use std::cmp::Ordering;
        // Antisymmetry.
        prop_assert_eq!(a.total_cmp(&b), b.total_cmp(&a).reverse());
        // Transitivity.
        if a.total_cmp(&b) != Ordering::Greater && b.total_cmp(&c) != Ordering::Greater {
            prop_assert_ne!(a.total_cmp(&c), Ordering::Greater);
        }
        // Reflexivity.
        prop_assert_eq!(a.total_cmp(&a), Ordering::Equal);
    }

    #[test]
    fn group_key_agrees_with_equality(a in value_strategy(), b in value_strategy()) {
        use std::cmp::Ordering;
        if a.total_cmp(&b) == Ordering::Equal {
            prop_assert_eq!(a.group_key(), b.group_key());
        } else {
            prop_assert_ne!(a.group_key(), b.group_key());
        }
    }

    #[test]
    fn count_matches_inserted(values in proptest::collection::vec(any::<i64>(), 0..40)) {
        let mut db = Database::new();
        db.execute("CREATE TABLE t(v INTEGER)").unwrap();
        for v in &values {
            db.execute_with("INSERT INTO t VALUES (?)", &[Value::Integer(*v)]).unwrap();
        }
        let r = db.query("SELECT COUNT(*) FROM t", &[]).unwrap();
        prop_assert_eq!(r.scalar().unwrap(), &Value::Integer(values.len() as i64));
    }

    #[test]
    fn order_by_sorts(values in proptest::collection::vec(-1000i64..1000, 1..40)) {
        let mut db = Database::new();
        db.execute("CREATE TABLE t(v INTEGER)").unwrap();
        for v in &values {
            db.execute_with("INSERT INTO t VALUES (?)", &[Value::Integer(*v)]).unwrap();
        }
        let r = db.query("SELECT v FROM t ORDER BY v", &[]).unwrap();
        let got: Vec<i64> = r.rows.iter().map(|row| match row[0] {
            Value::Integer(i) => i,
            _ => unreachable!(),
        }).collect();
        let mut expected = values.clone();
        expected.sort_unstable();
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn distinct_matches_set(values in proptest::collection::vec(0i64..20, 0..60)) {
        let mut db = Database::new();
        db.execute("CREATE TABLE t(v INTEGER)").unwrap();
        for v in &values {
            db.execute_with("INSERT INTO t VALUES (?)", &[Value::Integer(*v)]).unwrap();
        }
        let r = db.query("SELECT DISTINCT v FROM t", &[]).unwrap();
        let set: std::collections::HashSet<i64> = values.iter().copied().collect();
        prop_assert_eq!(r.rows.len(), set.len());
    }

    #[test]
    fn sum_matches(values in proptest::collection::vec(-1000i64..1000, 1..40)) {
        let mut db = Database::new();
        db.execute("CREATE TABLE t(v INTEGER)").unwrap();
        for v in &values {
            db.execute_with("INSERT INTO t VALUES (?)", &[Value::Integer(*v)]).unwrap();
        }
        let r = db.query("SELECT SUM(v) FROM t", &[]).unwrap();
        prop_assert_eq!(r.scalar().unwrap(), &Value::Integer(values.iter().sum()));
    }

    #[test]
    fn journal_replay_reproduces_state(
        ops in proptest::collection::vec((0i64..50, any::<bool>()), 1..40),
        seed in any::<u32>(),
    ) {
        let mut path = std::env::temp_dir();
        path.push(format!("sealdb-prop-{}-{seed}.db", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let live_rows = {
            let mut db = Database::open(&path, Box::new(PlainCodec), SyncPolicy::Never).unwrap();
            db.execute("CREATE TABLE t(v INTEGER)").unwrap();
            for (v, del) in &ops {
                if *del {
                    db.execute_with("DELETE FROM t WHERE v = ?", &[Value::Integer(*v)]).unwrap();
                } else {
                    db.execute_with("INSERT INTO t VALUES (?)", &[Value::Integer(*v)]).unwrap();
                }
            }
            db.query("SELECT v FROM t ORDER BY v", &[]).unwrap().rows
        };
        let db = Database::open(&path, Box::new(PlainCodec), SyncPolicy::Never).unwrap();
        let replayed = db.query("SELECT v FROM t ORDER BY v", &[]).unwrap().rows;
        std::fs::remove_file(&path).unwrap();
        prop_assert_eq!(live_rows, replayed);
    }

    #[test]
    fn text_values_roundtrip_through_params(s in "\\PC{0,30}") {
        let mut db = Database::new();
        db.execute("CREATE TABLE t(s TEXT)").unwrap();
        db.execute_with("INSERT INTO t VALUES (?)", &[Value::Text(s.clone())]).unwrap();
        let r = db.query("SELECT s FROM t", &[]).unwrap();
        prop_assert_eq!(r.scalar().unwrap(), &Value::Text(s));
    }
}

//! Property-based tests for the sealdb engine invariants
//! (deterministic `plat::check` harness; same properties and case
//! counts as the original proptest suite).

use libseal_sealdb::{Database, PlainCodec, SyncPolicy, Value};
use plat::check::Gen;
use plat::tmp::TempPath;

fn value(g: &mut Gen) -> Value {
    match g.usize_in(0..5) {
        0 => Value::Null,
        1 => Value::Integer(g.i64()),
        2 => Value::Real(g.f64_in(-1e12, 1e12)),
        3 => Value::Text(g.lowercase(0..13)),
        _ => Value::Blob(g.bytes(0..16)),
    }
}

plat::prop! {
    #![cases(64)]

    fn total_cmp_is_a_total_order(g) {
        use std::cmp::Ordering;
        let (a, b, c) = (value(g), value(g), value(g));
        // Antisymmetry.
        assert_eq!(a.total_cmp(&b), b.total_cmp(&a).reverse());
        // Transitivity.
        if a.total_cmp(&b) != Ordering::Greater && b.total_cmp(&c) != Ordering::Greater {
            assert_ne!(a.total_cmp(&c), Ordering::Greater);
        }
        // Reflexivity.
        assert_eq!(a.total_cmp(&a), Ordering::Equal);
    }

    fn group_key_agrees_with_equality(g) {
        use std::cmp::Ordering;
        let (a, b) = (value(g), value(g));
        if a.total_cmp(&b) == Ordering::Equal {
            assert_eq!(a.group_key(), b.group_key());
        } else {
            assert_ne!(a.group_key(), b.group_key());
        }
    }

    fn count_matches_inserted(g) {
        let values: Vec<i64> = (0..g.usize_in(0..40)).map(|_| g.i64()).collect();
        let mut db = Database::new();
        db.execute("CREATE TABLE t(v INTEGER)").unwrap();
        for v in &values {
            db.execute_with("INSERT INTO t VALUES (?)", &[Value::Integer(*v)]).unwrap();
        }
        let r = db.query("SELECT COUNT(*) FROM t", &[]).unwrap();
        assert_eq!(r.scalar().unwrap(), &Value::Integer(values.len() as i64));
    }

    fn order_by_sorts(g) {
        let values: Vec<i64> = (0..g.usize_in(1..40)).map(|_| g.i64_in(-1000..1000)).collect();
        let mut db = Database::new();
        db.execute("CREATE TABLE t(v INTEGER)").unwrap();
        for v in &values {
            db.execute_with("INSERT INTO t VALUES (?)", &[Value::Integer(*v)]).unwrap();
        }
        let r = db.query("SELECT v FROM t ORDER BY v", &[]).unwrap();
        let got: Vec<i64> = r.rows.iter().map(|row| match row[0] {
            Value::Integer(i) => i,
            _ => unreachable!(),
        }).collect();
        let mut expected = values.clone();
        expected.sort_unstable();
        assert_eq!(got, expected);
    }

    fn distinct_matches_set(g) {
        let values: Vec<i64> = (0..g.usize_in(0..60)).map(|_| g.i64_in(0..20)).collect();
        let mut db = Database::new();
        db.execute("CREATE TABLE t(v INTEGER)").unwrap();
        for v in &values {
            db.execute_with("INSERT INTO t VALUES (?)", &[Value::Integer(*v)]).unwrap();
        }
        let r = db.query("SELECT DISTINCT v FROM t", &[]).unwrap();
        let set: std::collections::HashSet<i64> = values.iter().copied().collect();
        assert_eq!(r.rows.len(), set.len());
    }

    fn sum_matches(g) {
        let values: Vec<i64> = (0..g.usize_in(1..40)).map(|_| g.i64_in(-1000..1000)).collect();
        let mut db = Database::new();
        db.execute("CREATE TABLE t(v INTEGER)").unwrap();
        for v in &values {
            db.execute_with("INSERT INTO t VALUES (?)", &[Value::Integer(*v)]).unwrap();
        }
        let r = db.query("SELECT SUM(v) FROM t", &[]).unwrap();
        assert_eq!(r.scalar().unwrap(), &Value::Integer(values.iter().sum()));
    }

    fn journal_replay_reproduces_state(g) {
        let ops: Vec<(i64, bool)> = (0..g.usize_in(1..40))
            .map(|_| (g.i64_in(0..50), g.bool()))
            .collect();
        let path = TempPath::new("sealdb-prop", "db");
        let live_rows = {
            let mut db = Database::open(&path, Box::new(PlainCodec), SyncPolicy::Never).unwrap();
            db.execute("CREATE TABLE t(v INTEGER)").unwrap();
            for (v, del) in &ops {
                if *del {
                    db.execute_with("DELETE FROM t WHERE v = ?", &[Value::Integer(*v)]).unwrap();
                } else {
                    db.execute_with("INSERT INTO t VALUES (?)", &[Value::Integer(*v)]).unwrap();
                }
            }
            db.query("SELECT v FROM t ORDER BY v", &[]).unwrap().rows
        };
        let db = Database::open(&path, Box::new(PlainCodec), SyncPolicy::Never).unwrap();
        let replayed = db.query("SELECT v FROM t ORDER BY v", &[]).unwrap().rows;
        assert_eq!(live_rows, replayed);
    }

    fn text_values_roundtrip_through_params(g) {
        let s = g.unicode_string(0..31);
        let mut db = Database::new();
        db.execute("CREATE TABLE t(s TEXT)").unwrap();
        db.execute_with("INSERT INTO t VALUES (?)", &[Value::Text(s.clone())]).unwrap();
        let r = db.query("SELECT s FROM t", &[]).unwrap();
        assert_eq!(r.scalar().unwrap(), &Value::Text(s));
    }
}

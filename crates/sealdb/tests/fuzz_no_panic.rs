//! Malformed-input fuzzing: arbitrary byte strings fed through the
//! full parse/plan/execute pipeline must return typed `DbError`s,
//! never panic. A panic inside the audit enclave is an availability
//! violation the log cannot record, so the engine's error discipline
//! is itself part of the integrity story.

use libseal_sealdb::{Database, Value};
use plat::check::Gen;

/// Valid statements used as mutation seeds: corrupting real SQL
/// reaches much deeper into the parser/executor than pure noise.
const TEMPLATES: &[&str] = &[
    "SELECT a, b FROM t WHERE a > 1 ORDER BY b LIMIT 3",
    "SELECT COUNT(*), MAX(a) FROM t GROUP BY b HAVING COUNT(*) > 1",
    "SELECT * FROM t x JOIN t y ON x.a = y.a WHERE NOT EXISTS (SELECT 1 FROM t z WHERE z.a = x.a + 1)",
    "INSERT INTO t(a, b) VALUES (1, 'x''y'), (2, x'0aff')",
    "UPDATE t SET b = b || 'suffix' WHERE a BETWEEN 1 AND 5",
    "DELETE FROM t WHERE b LIKE 'x%' OR a IN (1, 2, 3)",
    "CREATE TABLE u(a INTEGER PRIMARY KEY, b TEXT)",
    "CREATE INDEX idx_u ON u(b)",
    "SELECT CASE WHEN a > 1 THEN 'big' ELSE 'small' END FROM t",
    "SELECT 1.5e3 + 2 * -4 % 3, 'é', ?1 FROM t",
];

fn fixture() -> Database {
    let mut db = Database::new();
    db.execute("CREATE TABLE t(a INTEGER, b TEXT)").unwrap();
    db.execute("INSERT INTO t VALUES (1, 'x'), (2, 'y'), (3, 'é')")
        .unwrap();
    db
}

/// One arbitrary SQL-ish input: raw bytes, printable noise, or a
/// corrupted valid statement.
fn arbitrary_sql(g: &mut Gen) -> String {
    match g.usize_in(0..3) {
        0 => String::from_utf8_lossy(&g.bytes(0..64)).into_owned(),
        1 => g.printable_ascii(0..64),
        _ => {
            let mut s = TEMPLATES[g.usize_in(0..TEMPLATES.len())].to_string();
            for _ in 0..g.usize_in(1..4) {
                if s.is_empty() {
                    break;
                }
                // Splice noise at a char boundary.
                let mut at = g.usize_in(0..s.len() + 1);
                while !s.is_char_boundary(at) {
                    at -= 1;
                }
                let noise = String::from_utf8_lossy(&g.bytes(0..6)).into_owned();
                let del = g.usize_in(0..8);
                let mut end = (at + del).min(s.len());
                while !s.is_char_boundary(end) {
                    end += 1;
                }
                s.replace_range(at..end, &noise);
            }
            s
        }
    }
}

plat::prop! {
    #![cases(2000)]

    fn arbitrary_input_never_panics_the_engine(g) {
        let mut db = fixture();
        let sql = arbitrary_sql(g);
        // Read-only path: must return Ok or a typed error, never panic.
        let _ = db.query(&sql, &[]);
        let _ = db.query(&sql, &[Value::Integer(7), Value::Text("p".into())]);
        // Mutating path (parser + executor + DDL).
        let _ = db.execute(&sql);
        let _ = db.execute_with(&sql, &[Value::Null]);
        // The database must still be usable afterwards.
        db.query("SELECT COUNT(*) FROM t", &[]).unwrap();
    }
}

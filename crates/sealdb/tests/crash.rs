//! Fault-injected crash tests for the journal and compaction paths.
//!
//! Every test opens a `plat::failpoint::scenario()` first (a global
//! lock) so fault-injected tests serialize across the process. A
//! simulated crash latches every later failpoint as failed; recovery
//! then runs under `scenario.reset()`, exactly like a restarted
//! process reading what the dead one left behind.

use libseal_sealdb::journal::{PlainCodec, SyncPolicy};
use libseal_sealdb::{Database, Value};
use plat::failpoint::{self, FaultSpec};
use plat::tmp::TempPath;

fn seeded_db(path: &TempPath, rows: i64) -> Database {
    let mut db = Database::open(path, Box::new(PlainCodec), SyncPolicy::Manual).unwrap();
    db.execute("CREATE TABLE t(a INTEGER, b TEXT)").unwrap();
    for i in 0..rows {
        db.execute_with(
            "INSERT INTO t VALUES (?, ?)",
            &[Value::Integer(i), Value::Text(format!("row{i}"))],
        )
        .unwrap();
    }
    db.sync_journal().unwrap();
    db
}

fn row_count(db: &Database) -> i64 {
    match db.query("SELECT COUNT(*) FROM t", &[]).unwrap().scalar() {
        Some(Value::Integer(n)) => *n,
        _ => 0,
    }
}

/// The ISSUE's headline regression: `compact()` used to truncate the
/// journal before rewriting the snapshot, so a crash mid-compaction
/// destroyed the entire log. Now a crash at ANY point of the
/// compaction protocol leaves a journal that recovers every row.
#[test]
fn crash_at_every_compact_failpoint_preserves_the_log() {
    let s = failpoint::scenario();
    for site in [
        "sealdb::compact::write",
        "sealdb::compact::sync",
        "sealdb::compact::rename",
        "sealdb::compact::sync_dir",
    ] {
        s.reset();
        let path = TempPath::new(&format!("sealdb-crash-{}", site.replace(':', "_")), "log");
        {
            let mut db = seeded_db(&path, 20);
            s.set(site, FaultSpec::crash());
            let r = db.compact();
            if site == "sealdb::compact::sync_dir" {
                // The rename already happened: the snapshot is fully in
                // place, only its directory-entry durability is in
                // doubt, and the API still reports the failure.
                assert!(r.is_err());
            } else {
                assert!(r.is_err(), "compact must fail when {site} crashes");
            }
            // The "process" is now dead; drop the handle as a crash
            // would.
        }
        s.reset(); // restart
        let db = Database::open(&path, Box::new(PlainCodec), SyncPolicy::Manual).unwrap();
        assert_eq!(
            row_count(&db),
            20,
            "rows lost after crash at {site}: the log must survive compaction crashes"
        );
    }
}

/// A partial write of the snapshot temp file (torn page mid-compact)
/// must leave the live journal untouched, and the half-written temp
/// must be cleaned up on reopen.
#[test]
fn torn_snapshot_write_leaves_live_journal_intact() {
    let s = failpoint::scenario();
    let path = TempPath::new("sealdb-crash-tornsnap", "log");
    {
        let mut db = seeded_db(&path, 10);
        s.set("sealdb::compact::write", FaultSpec::partial_write(7));
        assert!(db.compact().is_err());
    }
    s.reset();
    let db = Database::open(&path, Box::new(PlainCodec), SyncPolicy::Manual).unwrap();
    assert_eq!(row_count(&db), 10);
    // No *.compact-* litter survives the reopen.
    let parent = path.path().parent().unwrap();
    let name = path
        .path()
        .file_name()
        .unwrap()
        .to_string_lossy()
        .into_owned();
    for e in std::fs::read_dir(parent).unwrap().flatten() {
        assert!(
            !e.file_name()
                .to_string_lossy()
                .starts_with(&format!("{name}.compact-")),
            "stale snapshot temp left behind"
        );
    }
}

/// A torn append (crash mid-`write(2)`) is salvaged on reopen: every
/// record before the torn frame replays, the torn bytes are dropped
/// and reported.
#[test]
fn torn_append_is_salvaged_on_reopen() {
    let s = failpoint::scenario();
    let path = TempPath::new("sealdb-crash-tornapp", "log");
    {
        let mut db = seeded_db(&path, 5);
        // The next journal append persists only 9 bytes of its frame.
        s.set("sealdb::journal::append", FaultSpec::partial_write(9));
        assert!(db
            .execute_with(
                "INSERT INTO t VALUES (?, ?)",
                &[Value::Integer(99), Value::Null]
            )
            .is_err());
    }
    s.reset();
    let db = Database::open(&path, Box::new(PlainCodec), SyncPolicy::Manual).unwrap();
    assert_eq!(row_count(&db), 5, "synced prefix must survive");
    let salvage = db.salvage_report().expect("salvage must be reported");
    assert_eq!(salvage.lost_bytes, 9);
}

/// Compaction happening *after* a successful compaction (generation
/// numbers advancing) still recovers at every crash point.
#[test]
fn repeated_compaction_generations_survive_crashes() {
    let s = failpoint::scenario();
    let path = TempPath::new("sealdb-crash-gen", "log");
    {
        let mut db = seeded_db(&path, 8);
        db.compact().unwrap(); // generation 1, clean
        db.execute_with(
            "INSERT INTO t VALUES (?, ?)",
            &[Value::Integer(100), Value::Null],
        )
        .unwrap();
        db.sync_journal().unwrap();
        s.set("sealdb::compact::rename", FaultSpec::crash());
        assert!(db.compact().is_err()); // generation 2, crashes
    }
    s.reset();
    let db = Database::open(&path, Box::new(PlainCodec), SyncPolicy::Manual).unwrap();
    assert_eq!(row_count(&db), 9);
}

/// Regression found by the crash matrix: when the directory sync
/// *after* the rename fails transiently, the snapshot is already the
/// live journal — the writer must switch to it. Before the fix it
/// kept appending to the unlinked pre-compaction inode, so every
/// later row vanished on restart.
#[test]
fn writes_after_failed_dir_sync_survive_restart() {
    let s = failpoint::scenario();
    let path = TempPath::new("sealdb-crash-dirsync", "log");
    {
        let mut db = seeded_db(&path, 4);
        s.set("sealdb::compact::sync_dir", FaultSpec::error().times(1));
        assert!(db.compact().is_err());
        db.execute_with(
            "INSERT INTO t VALUES (?, ?)",
            &[Value::Integer(4), Value::Null],
        )
        .unwrap();
        db.sync_journal().unwrap();
    }
    s.reset();
    let db = Database::open(&path, Box::new(PlainCodec), SyncPolicy::Manual).unwrap();
    assert_eq!(row_count(&db), 5, "post-compaction append lost");
}

/// An injected I/O error (not a crash) during compaction leaves the
/// database usable and the journal intact — and a later, clean
/// compaction succeeds.
#[test]
fn failed_compaction_is_retryable() {
    let s = failpoint::scenario();
    let path = TempPath::new("sealdb-crash-retry", "log");
    let mut db = seeded_db(&path, 6);
    s.set("sealdb::compact::sync", FaultSpec::error().times(1));
    assert!(db.compact().is_err());
    assert_eq!(row_count(&db), 6);
    db.compact().unwrap();
    assert_eq!(row_count(&db), 6);
    // And the compacted journal replays.
    drop(db);
    let db = Database::open(&path, Box::new(PlainCodec), SyncPolicy::Manual).unwrap();
    assert_eq!(row_count(&db), 6);
}

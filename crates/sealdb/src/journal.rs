//! Durability: a statement-granularity write-ahead journal.
//!
//! LibSEAL "synchronously flushes the log to persistent storage after
//! each request/response pair" (§5.1). The journal appends every
//! mutating statement (with its bound parameters) as a length-prefixed
//! record and fsyncs; recovery replays the records. A codec hook lets
//! the enclave layer seal each record (encrypt + authenticate) before
//! it touches the untrusted disk.
//!
//! Record format (before the codec): `tag u8, sql_len u32le, sql bytes,
//! param_count u32le, params…` with each param as `type u8 + payload`.
//!
//! # Crash consistency
//!
//! Two failure modes are distinguished on recovery:
//!
//! - A **torn tail** — the file ends inside the final frame, as a
//!   crash mid-append leaves it. [`Journal::replay`] salvages: the
//!   torn frame is truncated away and every preceding record is
//!   replayed, provided it decodes (for a sealing codec, provided it
//!   authenticates). The salvage is reported via
//!   [`Journal::last_salvage`] so callers can reconcile the lost tail
//!   against their rollback counter.
//! - **Mid-file corruption or a codec/MAC failure** — evidence of
//!   tampering, fatal as before. (A corrupted length prefix is
//!   indistinguishable from a torn tail by framing alone; the
//!   rollback-counter reconciliation above the journal is what bounds
//!   how much history a forged "torn tail" can make disappear.)
//!
//! Compaction is atomic: [`Journal::rewrite`] writes the snapshot to a
//! generation-numbered temp file, fsyncs it, renames it over the live
//! journal and fsyncs the parent directory, so a crash at any point
//! leaves either the full old journal or the full new snapshot.

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom};
use std::path::{Path, PathBuf};

use crate::value::Value;
use crate::{DbError, Result};

/// Counts every fsync the journal issues (appends, truncations,
/// compaction snapshots and directory syncs alike).
fn fsync_counter() -> &'static libseal_telemetry::Counter {
    static C: std::sync::OnceLock<libseal_telemetry::Counter> = std::sync::OnceLock::new();
    C.get_or_init(|| libseal_telemetry::counter("sealdb_journal_fsyncs_total"))
}

/// Transforms journal records on their way to and from disk.
///
/// The default [`PlainCodec`] is the identity; LibSEAL installs a
/// sealing codec so the provider cannot read or forge records.
pub trait JournalCodec: Send {
    /// Encodes a record for storage.
    ///
    /// # Errors
    ///
    /// Implementations fail when they can no longer encode safely
    /// (e.g. a sealing codec whose nonce space for the current epoch
    /// is exhausted); the statement is then rejected instead of being
    /// persisted unsafely.
    fn encode(&self, plain: &[u8]) -> Result<Vec<u8>>;
    /// Decodes a stored record.
    ///
    /// # Errors
    ///
    /// Implementations fail on tampered or undecryptable records.
    fn decode(&self, stored: &[u8]) -> Result<Vec<u8>>;
}

/// Identity codec.
pub struct PlainCodec;

impl JournalCodec for PlainCodec {
    fn encode(&self, plain: &[u8]) -> Result<Vec<u8>> {
        Ok(plain.to_vec())
    }
    fn decode(&self, stored: &[u8]) -> Result<Vec<u8>> {
        Ok(stored.to_vec())
    }
}

/// Synchronous flushing policy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SyncPolicy {
    /// fsync after every record.
    EveryRecord,
    /// fsync only on explicit [`Journal::sync_now`] calls — the
    /// paper's configuration: LibSEAL flushes once per
    /// request/response pair (§5.1).
    Manual,
    /// Leave flushing to the OS (used by the `-mem`-style configs).
    Never,
}

/// What [`Journal::replay`] salvaged from a torn tail.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SalvageInfo {
    /// File offset the journal was truncated back to.
    pub offset: u64,
    /// Bytes of torn frame dropped.
    pub lost_bytes: u64,
}

/// An append-only statement journal.
pub struct Journal {
    path: PathBuf,
    file: File,
    codec: Box<dyn JournalCodec>,
    sync: SyncPolicy,
    /// Compaction generation (names the next rewrite temp file).
    generation: u64,
    /// Torn-tail salvage performed by the last [`Journal::replay`].
    salvage: Option<SalvageInfo>,
}

/// One recovered journal entry.
#[derive(Debug, Clone, PartialEq)]
pub struct JournalEntry {
    /// The SQL text.
    pub sql: String,
    /// Bound parameters.
    pub params: Vec<Value>,
}

impl Journal {
    /// Opens (creating if needed) a journal at `path`.
    ///
    /// # Errors
    ///
    /// I/O errors are surfaced as [`DbError::Io`].
    pub fn open(
        path: impl AsRef<Path>,
        codec: Box<dyn JournalCodec>,
        sync: SyncPolicy,
    ) -> Result<Journal> {
        let path = path.as_ref().to_path_buf();
        // A crash mid-compaction can leave a stale snapshot temp file
        // next to the journal; it was never renamed into place, so it
        // is dead weight — remove it.
        remove_stale_rewrite_temps(&path);
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .read(true)
            .open(&path)
            .map_err(DbError::io)?;
        Ok(Journal {
            path,
            file,
            codec,
            sync,
            generation: 0,
            salvage: None,
        })
    }

    /// Appends one statement record and (policy permitting) fsyncs.
    ///
    /// # Errors
    ///
    /// I/O errors are surfaced as [`DbError::Io`].
    pub fn append(&mut self, sql: &str, params: &[Value]) -> Result<()> {
        let plain = encode_record(sql, params)?;
        let stored = self.codec.encode(&plain)?;
        let mut framed = Vec::with_capacity(4 + stored.len());
        framed.extend_from_slice(&frame_len(stored.len())?.to_le_bytes());
        framed.extend_from_slice(&stored);
        plat::failpoint::write_all("sealdb::journal::append", &mut self.file, &framed)
            .map_err(DbError::io)?;
        if self.sync == SyncPolicy::EveryRecord {
            plat::failpoint::check("sealdb::journal::sync").map_err(DbError::io)?;
            self.file.sync_data().map_err(DbError::io)?;
            fsync_counter().inc();
        }
        Ok(())
    }

    /// Reads every record back (for recovery), salvaging a torn tail.
    ///
    /// A file ending inside its final frame is what a crash mid-append
    /// leaves behind: the torn frame is truncated away (the salvage is
    /// reported by [`Journal::last_salvage`]) and every record before
    /// it is returned — provided each decodes, so under a sealing
    /// codec nothing unauthenticated is ever salvaged. A record that
    /// fails to decode is tampering and stays fatal.
    ///
    /// # Errors
    ///
    /// Fails on I/O errors or codec rejection.
    pub fn replay(&mut self) -> Result<Vec<JournalEntry>> {
        self.salvage = None;
        self.file.seek(SeekFrom::Start(0)).map_err(DbError::io)?;
        let mut buf = Vec::new();
        self.file.read_to_end(&mut buf).map_err(DbError::io)?;
        let mut entries = Vec::new();
        let mut i = 0usize;
        let mut torn: Option<usize> = None;
        while i + 4 <= buf.len() {
            let len = u32::from_le_bytes(buf[i..i + 4].try_into().unwrap()) as usize;
            if i + 4 + len > buf.len() {
                // Frame extends past EOF: torn tail.
                torn = Some(i);
                break;
            }
            let plain = self.codec.decode(&buf[i + 4..i + 4 + len])?;
            entries.push(decode_record(&plain)?);
            i += 4 + len;
        }
        if torn.is_none() && i < buf.len() {
            // Fewer than 4 trailing bytes: a torn length prefix.
            torn = Some(i);
        }
        if let Some(offset) = torn {
            plat::failpoint::check("sealdb::journal::salvage").map_err(DbError::io)?;
            self.file.set_len(offset as u64).map_err(DbError::io)?;
            self.file.sync_all().map_err(DbError::io)?;
            fsync_counter().inc();
            self.salvage = Some(SalvageInfo {
                offset: offset as u64,
                lost_bytes: (buf.len() - offset) as u64,
            });
        }
        self.file.seek(SeekFrom::End(0)).map_err(DbError::io)?;
        Ok(entries)
    }

    /// The torn-tail salvage performed by the last [`Journal::replay`],
    /// if any.
    pub fn last_salvage(&self) -> Option<SalvageInfo> {
        self.salvage
    }

    /// Forces buffered records to stable storage.
    ///
    /// # Errors
    ///
    /// I/O errors are surfaced as [`DbError::Io`].
    pub fn sync_now(&mut self) -> Result<()> {
        plat::failpoint::check("sealdb::journal::sync").map_err(DbError::io)?;
        let r = self.file.sync_data().map_err(DbError::io);
        if r.is_ok() {
            fsync_counter().inc();
        }
        r
    }

    /// Truncates the journal (after a snapshot/compaction).
    ///
    /// The truncation is always made durable — file and parent
    /// directory fsynced regardless of [`SyncPolicy`] — because losing
    /// the *ordering* of a truncation against a snapshot rewrite on
    /// crash corrupts the journal even under `Manual` sync.
    ///
    /// # Errors
    ///
    /// I/O errors are surfaced as [`DbError::Io`].
    pub fn truncate(&mut self) -> Result<()> {
        plat::failpoint::check("sealdb::journal::truncate").map_err(DbError::io)?;
        self.file.set_len(0).map_err(DbError::io)?;
        self.file.seek(SeekFrom::End(0)).map_err(DbError::io)?;
        self.file.sync_all().map_err(DbError::io)?;
        fsync_counter().inc();
        sync_parent_dir(&self.path).map_err(DbError::io)?;
        Ok(())
    }

    /// Atomically replaces the journal's contents with `records` (the
    /// snapshot produced by compaction).
    ///
    /// Protocol: write every record to a generation-numbered temp file
    /// next to the journal, fsync it, rename it over the live journal,
    /// then fsync the parent directory. A crash before the rename
    /// leaves the old journal fully intact (plus a stale temp file that
    /// [`Journal::open`] removes); a crash after it leaves the complete
    /// new snapshot. There is no window in which the log is lost.
    ///
    /// # Errors
    ///
    /// I/O errors are surfaced as [`DbError::Io`]; on error the live
    /// journal is untouched.
    pub fn rewrite(&mut self, records: &[(String, Vec<Value>)]) -> Result<()> {
        self.generation += 1;
        let tmp_path = rewrite_temp_path(&self.path, self.generation);
        let result = self.rewrite_into(&tmp_path, records);
        if result.is_err() && !plat::failpoint::crash_active() {
            // A real (non-crash) failure: clean up the partial temp
            // file. A simulated crash leaves it, as a real crash
            // would; Journal::open removes it on recovery.
            let _ = std::fs::remove_file(&tmp_path);
        }
        result
    }

    fn rewrite_into(&mut self, tmp_path: &Path, records: &[(String, Vec<Value>)]) -> Result<()> {
        let mut tmp = File::create(tmp_path).map_err(DbError::io)?;
        for (sql, params) in records {
            let plain = encode_record(sql, params)?;
            let stored = self.codec.encode(&plain)?;
            let mut framed = Vec::with_capacity(4 + stored.len());
            framed.extend_from_slice(&frame_len(stored.len())?.to_le_bytes());
            framed.extend_from_slice(&stored);
            plat::failpoint::write_all("sealdb::compact::write", &mut tmp, &framed)
                .map_err(DbError::io)?;
        }
        plat::failpoint::check("sealdb::compact::sync").map_err(DbError::io)?;
        tmp.sync_all().map_err(DbError::io)?;
        fsync_counter().inc();
        drop(tmp);
        plat::failpoint::check("sealdb::compact::rename").map_err(DbError::io)?;
        std::fs::rename(tmp_path, &self.path).map_err(DbError::io)?;
        // Once the rename has happened the old handle points at the
        // unlinked pre-compaction file; the snapshot MUST become the
        // live journal now, even if the directory sync below fails —
        // otherwise later appends land on the orphaned inode and
        // vanish on restart while the rollback counter keeps counting
        // them.
        self.file = OpenOptions::new()
            .append(true)
            .read(true)
            .open(&self.path)
            .map_err(DbError::io)?;
        plat::failpoint::check("sealdb::compact::sync_dir").map_err(DbError::io)?;
        sync_parent_dir(&self.path).map_err(DbError::io)?;
        Ok(())
    }

    /// The journal file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Current journal size in bytes.
    pub fn size_bytes(&self) -> u64 {
        self.file.metadata().map(|m| m.len()).unwrap_or(0)
    }
}

/// The temp-file name for rewrite generation `generation` of `path`.
fn rewrite_temp_path(path: &Path, generation: u64) -> PathBuf {
    let name = path
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| "journal".to_string());
    path.with_file_name(format!(
        "{name}.compact-{}-{generation}",
        std::process::id()
    ))
}

/// Removes leftover `*.compact-*` temp files from a crashed rewrite.
fn remove_stale_rewrite_temps(path: &Path) {
    let Some(name) = path.file_name().map(|n| n.to_string_lossy().into_owned()) else {
        return;
    };
    let parent = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p.to_path_buf(),
        _ => PathBuf::from("."),
    };
    let prefix = format!("{name}.compact-");
    if let Ok(entries) = std::fs::read_dir(parent) {
        for e in entries.flatten() {
            if e.file_name().to_string_lossy().starts_with(&prefix) {
                let _ = std::fs::remove_file(e.path());
            }
        }
    }
}

/// Fsyncs the directory containing `path`, making a rename/truncate in
/// it durable.
fn sync_parent_dir(path: &Path) -> std::io::Result<()> {
    let parent = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p.to_path_buf(),
        _ => PathBuf::from("."),
    };
    File::open(parent)?.sync_all()?;
    fsync_counter().inc();
    Ok(())
}

/// Hard cap on any length field in the journal wire format. Well
/// under the `u32` frame limit so length arithmetic cannot overflow,
/// and far larger than any legitimate audited statement. Oversized
/// payloads are rejected with a typed error instead of silently
/// truncating the length on an `as u32` narrowing.
pub const MAX_RECORD_BYTES: usize = 1 << 28;

/// Checked conversion of a payload length into a wire `u32`.
fn frame_len(n: usize) -> Result<u32> {
    if n > MAX_RECORD_BYTES {
        return Err(DbError::exec(format!(
            "journal record too large: {n} bytes (max {MAX_RECORD_BYTES})"
        )));
    }
    Ok(n as u32)
}

fn encode_value(out: &mut Vec<u8>, v: &Value) -> Result<()> {
    match v {
        Value::Null => out.push(0),
        Value::Integer(i) => {
            out.push(1);
            out.extend_from_slice(&i.to_le_bytes());
        }
        Value::Real(f) => {
            out.push(2);
            out.extend_from_slice(&f.to_le_bytes());
        }
        Value::Text(s) => {
            out.push(3);
            out.extend_from_slice(&frame_len(s.len())?.to_le_bytes());
            out.extend_from_slice(s.as_bytes());
        }
        Value::Blob(b) => {
            out.push(4);
            out.extend_from_slice(&frame_len(b.len())?.to_le_bytes());
            out.extend_from_slice(b);
        }
    }
    Ok(())
}

fn decode_value(buf: &[u8], i: &mut usize) -> Result<Value> {
    let tag = *buf
        .get(*i)
        .ok_or_else(|| DbError::exec("journal value truncated"))?;
    *i += 1;
    let take = |i: &mut usize, n: usize| -> Result<&[u8]> {
        let s = buf
            .get(*i..*i + n)
            .ok_or_else(|| DbError::exec("journal value truncated"))?;
        *i += n;
        Ok(s)
    };
    match tag {
        0 => Ok(Value::Null),
        1 => Ok(Value::Integer(i64::from_le_bytes(
            take(i, 8)?.try_into().unwrap(),
        ))),
        2 => Ok(Value::Real(f64::from_le_bytes(
            take(i, 8)?.try_into().unwrap(),
        ))),
        3 => {
            let len = u32::from_le_bytes(take(i, 4)?.try_into().unwrap()) as usize;
            let bytes = take(i, len)?;
            Ok(Value::Text(
                String::from_utf8(bytes.to_vec())
                    .map_err(|_| DbError::exec("journal text not UTF-8"))?,
            ))
        }
        4 => {
            let len = u32::from_le_bytes(take(i, 4)?.try_into().unwrap()) as usize;
            Ok(Value::Blob(take(i, len)?.to_vec()))
        }
        _ => Err(DbError::exec("unknown journal value tag")),
    }
}

fn encode_record(sql: &str, params: &[Value]) -> Result<Vec<u8>> {
    let mut out = Vec::with_capacity(16 + sql.len());
    out.push(1u8); // record version tag
    out.extend_from_slice(&frame_len(sql.len())?.to_le_bytes());
    out.extend_from_slice(sql.as_bytes());
    out.extend_from_slice(&frame_len(params.len())?.to_le_bytes());
    for p in params {
        encode_value(&mut out, p)?;
    }
    Ok(out)
}

fn decode_record(buf: &[u8]) -> Result<JournalEntry> {
    let mut i = 0usize;
    if buf.first() != Some(&1u8) {
        return Err(DbError::exec("unknown journal record version"));
    }
    i += 1;
    let sql_len = u32::from_le_bytes(
        buf.get(i..i + 4)
            .ok_or_else(|| DbError::exec("journal record truncated"))?
            .try_into()
            .unwrap(),
    ) as usize;
    i += 4;
    let sql = String::from_utf8(
        buf.get(i..i + sql_len)
            .ok_or_else(|| DbError::exec("journal record truncated"))?
            .to_vec(),
    )
    .map_err(|_| DbError::exec("journal SQL not UTF-8"))?;
    i += sql_len;
    let n = u32::from_le_bytes(
        buf.get(i..i + 4)
            .ok_or_else(|| DbError::exec("journal record truncated"))?
            .try_into()
            .unwrap(),
    ) as usize;
    i += 4;
    let mut params = Vec::with_capacity(n);
    for _ in 0..n {
        params.push(decode_value(buf, &mut i)?);
    }
    Ok(JournalEntry { sql, params })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> plat::tmp::TempPath {
        plat::tmp::TempPath::new(&format!("sealdb-journal-{name}"), "log")
    }

    #[test]
    fn roundtrip() {
        let path = tmp("rt");
        let mut j = Journal::open(&path, Box::new(PlainCodec), SyncPolicy::Never).unwrap();
        j.append(
            "INSERT INTO t VALUES (?, ?)",
            &[Value::Integer(1), Value::Text("x".into())],
        )
        .unwrap();
        j.append("DELETE FROM t", &[]).unwrap();
        let entries = j.replay().unwrap();
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].params[1], Value::Text("x".into()));
        assert_eq!(entries[1].sql, "DELETE FROM t");
    }

    #[test]
    fn oversized_record_is_rejected_not_truncated() {
        // A blob one byte over the cap must fail with a typed Exec
        // error; the journal file must stay untouched so later appends
        // and replays still work.
        let path = tmp("oversize");
        let mut j = Journal::open(&path, Box::new(PlainCodec), SyncPolicy::Never).unwrap();
        j.append("A", &[]).unwrap();
        let big = Value::Blob(vec![0u8; MAX_RECORD_BYTES + 1]);
        let err = j.append("INSERT INTO t VALUES (?)", &[big]).unwrap_err();
        assert!(
            matches!(err, DbError::Exec(ref m) if m.contains("too large")),
            "want typed oversize error, got {err:?}"
        );
        j.append("B", &[]).unwrap();
        let entries = j.replay().unwrap();
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].sql, "A");
        assert_eq!(entries[1].sql, "B");
    }

    #[test]
    fn survives_reopen() {
        let path = tmp("reopen");
        {
            let mut j =
                Journal::open(&path, Box::new(PlainCodec), SyncPolicy::EveryRecord).unwrap();
            j.append("CREATE TABLE t(a)", &[]).unwrap();
        }
        let mut j = Journal::open(&path, Box::new(PlainCodec), SyncPolicy::Never).unwrap();
        let entries = j.replay().unwrap();
        assert_eq!(entries.len(), 1);
    }

    #[test]
    fn truncate_clears() {
        let path = tmp("trunc");
        let mut j = Journal::open(&path, Box::new(PlainCodec), SyncPolicy::Never).unwrap();
        j.append("X", &[]).unwrap();
        j.truncate().unwrap();
        assert!(j.replay().unwrap().is_empty());
        j.append("Y", &[]).unwrap();
        assert_eq!(j.replay().unwrap().len(), 1);
    }

    #[test]
    fn all_value_types_roundtrip() {
        let path = tmp("vals");
        let mut j = Journal::open(&path, Box::new(PlainCodec), SyncPolicy::Never).unwrap();
        let params = vec![
            Value::Null,
            Value::Integer(-7),
            Value::Real(2.5),
            Value::Text("héllo".into()),
            Value::Blob(vec![0, 255, 3]),
        ];
        j.append("S", &params).unwrap();
        assert_eq!(j.replay().unwrap()[0].params, params);
    }

    #[test]
    fn salvages_torn_tail() {
        let path = tmp("cut");
        let full_len;
        {
            let mut j = Journal::open(&path, Box::new(PlainCodec), SyncPolicy::Never).unwrap();
            j.append("INSERT INTO t VALUES (1)", &[]).unwrap();
            j.append("INSERT INTO t VALUES (2)", &[]).unwrap();
            full_len = j.size_bytes();
        }
        // Chop 3 bytes off: the second record becomes a torn tail.
        let data = std::fs::read(&path).unwrap();
        std::fs::write(&path, &data[..data.len() - 3]).unwrap();
        let mut j = Journal::open(&path, Box::new(PlainCodec), SyncPolicy::Never).unwrap();
        let entries = j.replay().unwrap();
        assert_eq!(entries.len(), 1, "intact prefix record survives");
        let info = j.last_salvage().expect("salvage reported");
        assert_eq!(info.offset + info.lost_bytes + 3, full_len);
        // The torn frame was truncated away; appends work again.
        assert_eq!(j.size_bytes(), info.offset);
        j.append("INSERT INTO t VALUES (3)", &[]).unwrap();
        let entries = j.replay().unwrap();
        assert_eq!(entries.len(), 2);
        assert!(j.last_salvage().is_none(), "clean replay clears salvage");
    }

    #[test]
    fn salvages_torn_length_prefix() {
        let path = tmp("cutlen");
        {
            let mut j = Journal::open(&path, Box::new(PlainCodec), SyncPolicy::Never).unwrap();
            j.append("A", &[]).unwrap();
        }
        // Leave only 2 bytes of the next frame's length prefix.
        let data = std::fs::read(&path).unwrap();
        let mut cut = data.clone();
        cut.extend_from_slice(&[7, 0]);
        std::fs::write(&path, &cut).unwrap();
        let mut j = Journal::open(&path, Box::new(PlainCodec), SyncPolicy::Never).unwrap();
        assert_eq!(j.replay().unwrap().len(), 1);
        assert_eq!(
            j.last_salvage(),
            Some(SalvageInfo {
                offset: data.len() as u64,
                lost_bytes: 2
            })
        );
    }

    /// A codec with a 1-byte checksum: decode rejects corrupt records,
    /// standing in for the sealing codec's MAC.
    struct SumCodec;

    impl JournalCodec for SumCodec {
        fn encode(&self, plain: &[u8]) -> Result<Vec<u8>> {
            let sum = plain.iter().fold(0u8, |a, &b| a.wrapping_add(b));
            let mut out = vec![sum];
            out.extend_from_slice(plain);
            Ok(out)
        }
        fn decode(&self, stored: &[u8]) -> Result<Vec<u8>> {
            let (&sum, body) = stored
                .split_first()
                .ok_or_else(|| DbError::exec("record too short"))?;
            if body.iter().fold(0u8, |a, &b| a.wrapping_add(b)) != sum {
                return Err(DbError::exec("record failed to authenticate"));
            }
            Ok(body.to_vec())
        }
    }

    #[test]
    fn midfile_corruption_stays_fatal() {
        let path = tmp("corrupt");
        {
            let mut j = Journal::open(&path, Box::new(SumCodec), SyncPolicy::Never).unwrap();
            j.append("INSERT INTO t VALUES (1)", &[]).unwrap();
            j.append("INSERT INTO t VALUES (2)", &[]).unwrap();
        }
        // Flip a byte inside the first record's payload: tampering,
        // not a torn tail — salvage must NOT kick in.
        let mut data = std::fs::read(&path).unwrap();
        data[8] ^= 0xff;
        std::fs::write(&path, &data).unwrap();
        let mut j = Journal::open(&path, Box::new(SumCodec), SyncPolicy::Never).unwrap();
        assert!(j.replay().is_err());
        assert!(j.last_salvage().is_none());
    }

    #[test]
    fn rewrite_replaces_contents_atomically() {
        let path = tmp("rw");
        let mut j = Journal::open(&path, Box::new(PlainCodec), SyncPolicy::Never).unwrap();
        for i in 0..5 {
            j.append(&format!("S{i}"), &[]).unwrap();
        }
        j.rewrite(&[
            ("SNAP1".to_string(), vec![]),
            ("SNAP2".to_string(), vec![Value::Integer(9)]),
        ])
        .unwrap();
        let entries = j.replay().unwrap();
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].sql, "SNAP1");
        assert_eq!(entries[1].params, vec![Value::Integer(9)]);
        // The handle is live after the swap.
        j.append("AFTER", &[]).unwrap();
        assert_eq!(j.replay().unwrap().len(), 3);
    }

    #[test]
    fn open_removes_stale_rewrite_temp() {
        let path = tmp("stale");
        std::fs::write(&path, b"").unwrap();
        let stale = rewrite_temp_path(path.path(), 3);
        std::fs::write(&stale, b"half a snapshot").unwrap();
        let _j = Journal::open(&path, Box::new(PlainCodec), SyncPolicy::Never).unwrap();
        assert!(!stale.exists(), "stale compaction temp not cleaned up");
    }
}

//! Durability: a statement-granularity write-ahead journal.
//!
//! LibSEAL "synchronously flushes the log to persistent storage after
//! each request/response pair" (§5.1). The journal appends every
//! mutating statement (with its bound parameters) as a length-prefixed
//! record and fsyncs; recovery replays the records. A codec hook lets
//! the enclave layer seal each record (encrypt + authenticate) before
//! it touches the untrusted disk.
//!
//! Record format (before the codec): `tag u8, sql_len u32le, sql bytes,
//! param_count u32le, params…` with each param as `type u8 + payload`.

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use crate::value::Value;
use crate::{DbError, Result};

/// Transforms journal records on their way to and from disk.
///
/// The default [`PlainCodec`] is the identity; LibSEAL installs a
/// sealing codec so the provider cannot read or forge records.
pub trait JournalCodec: Send {
    /// Encodes a record for storage.
    fn encode(&self, plain: &[u8]) -> Vec<u8>;
    /// Decodes a stored record.
    ///
    /// # Errors
    ///
    /// Implementations fail on tampered or undecryptable records.
    fn decode(&self, stored: &[u8]) -> Result<Vec<u8>>;
}

/// Identity codec.
pub struct PlainCodec;

impl JournalCodec for PlainCodec {
    fn encode(&self, plain: &[u8]) -> Vec<u8> {
        plain.to_vec()
    }
    fn decode(&self, stored: &[u8]) -> Result<Vec<u8>> {
        Ok(stored.to_vec())
    }
}

/// Synchronous flushing policy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SyncPolicy {
    /// fsync after every record.
    EveryRecord,
    /// fsync only on explicit [`Journal::sync_now`] calls — the
    /// paper's configuration: LibSEAL flushes once per
    /// request/response pair (§5.1).
    Manual,
    /// Leave flushing to the OS (used by the `-mem`-style configs).
    Never,
}

/// An append-only statement journal.
pub struct Journal {
    path: PathBuf,
    file: File,
    codec: Box<dyn JournalCodec>,
    sync: SyncPolicy,
}

/// One recovered journal entry.
#[derive(Debug, Clone, PartialEq)]
pub struct JournalEntry {
    /// The SQL text.
    pub sql: String,
    /// Bound parameters.
    pub params: Vec<Value>,
}

impl Journal {
    /// Opens (creating if needed) a journal at `path`.
    ///
    /// # Errors
    ///
    /// I/O errors are surfaced as [`DbError::Io`].
    pub fn open(
        path: impl AsRef<Path>,
        codec: Box<dyn JournalCodec>,
        sync: SyncPolicy,
    ) -> Result<Journal> {
        let path = path.as_ref().to_path_buf();
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .read(true)
            .open(&path)
            .map_err(DbError::io)?;
        Ok(Journal {
            path,
            file,
            codec,
            sync,
        })
    }

    /// Appends one statement record and (policy permitting) fsyncs.
    ///
    /// # Errors
    ///
    /// I/O errors are surfaced as [`DbError::Io`].
    pub fn append(&mut self, sql: &str, params: &[Value]) -> Result<()> {
        let plain = encode_record(sql, params);
        let stored = self.codec.encode(&plain);
        let mut framed = Vec::with_capacity(4 + stored.len());
        framed.extend_from_slice(&(stored.len() as u32).to_le_bytes());
        framed.extend_from_slice(&stored);
        self.file.write_all(&framed).map_err(DbError::io)?;
        if self.sync == SyncPolicy::EveryRecord {
            self.file.sync_data().map_err(DbError::io)?;
        }
        Ok(())
    }

    /// Reads every record back (for recovery).
    ///
    /// # Errors
    ///
    /// Fails on I/O errors, truncated frames, or codec rejection.
    pub fn replay(&mut self) -> Result<Vec<JournalEntry>> {
        self.file.seek(SeekFrom::Start(0)).map_err(DbError::io)?;
        let mut buf = Vec::new();
        self.file.read_to_end(&mut buf).map_err(DbError::io)?;
        let mut entries = Vec::new();
        let mut i = 0usize;
        while i + 4 <= buf.len() {
            let len = u32::from_le_bytes(buf[i..i + 4].try_into().unwrap()) as usize;
            i += 4;
            if i + len > buf.len() {
                return Err(DbError::exec("journal truncated mid-record"));
            }
            let plain = self.codec.decode(&buf[i..i + len])?;
            entries.push(decode_record(&plain)?);
            i += len;
        }
        self.file.seek(SeekFrom::End(0)).map_err(DbError::io)?;
        Ok(entries)
    }

    /// Forces buffered records to stable storage.
    ///
    /// # Errors
    ///
    /// I/O errors are surfaced as [`DbError::Io`].
    pub fn sync_now(&mut self) -> Result<()> {
        self.file.sync_data().map_err(DbError::io)
    }

    /// Truncates the journal (after a snapshot/compaction).
    ///
    /// # Errors
    ///
    /// I/O errors are surfaced as [`DbError::Io`].
    pub fn truncate(&mut self) -> Result<()> {
        self.file.set_len(0).map_err(DbError::io)?;
        self.file.seek(SeekFrom::End(0)).map_err(DbError::io)?;
        if self.sync == SyncPolicy::EveryRecord {
            self.file.sync_all().map_err(DbError::io)?;
        }
        Ok(())
    }

    /// The journal file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Current journal size in bytes.
    pub fn size_bytes(&self) -> u64 {
        self.file.metadata().map(|m| m.len()).unwrap_or(0)
    }
}

fn encode_value(out: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Null => out.push(0),
        Value::Integer(i) => {
            out.push(1);
            out.extend_from_slice(&i.to_le_bytes());
        }
        Value::Real(f) => {
            out.push(2);
            out.extend_from_slice(&f.to_le_bytes());
        }
        Value::Text(s) => {
            out.push(3);
            out.extend_from_slice(&(s.len() as u32).to_le_bytes());
            out.extend_from_slice(s.as_bytes());
        }
        Value::Blob(b) => {
            out.push(4);
            out.extend_from_slice(&(b.len() as u32).to_le_bytes());
            out.extend_from_slice(b);
        }
    }
}

fn decode_value(buf: &[u8], i: &mut usize) -> Result<Value> {
    let tag = *buf
        .get(*i)
        .ok_or_else(|| DbError::exec("journal value truncated"))?;
    *i += 1;
    let take = |i: &mut usize, n: usize| -> Result<&[u8]> {
        let s = buf
            .get(*i..*i + n)
            .ok_or_else(|| DbError::exec("journal value truncated"))?;
        *i += n;
        Ok(s)
    };
    match tag {
        0 => Ok(Value::Null),
        1 => Ok(Value::Integer(i64::from_le_bytes(
            take(i, 8)?.try_into().unwrap(),
        ))),
        2 => Ok(Value::Real(f64::from_le_bytes(
            take(i, 8)?.try_into().unwrap(),
        ))),
        3 => {
            let len = u32::from_le_bytes(take(i, 4)?.try_into().unwrap()) as usize;
            let bytes = take(i, len)?;
            Ok(Value::Text(
                String::from_utf8(bytes.to_vec())
                    .map_err(|_| DbError::exec("journal text not UTF-8"))?,
            ))
        }
        4 => {
            let len = u32::from_le_bytes(take(i, 4)?.try_into().unwrap()) as usize;
            Ok(Value::Blob(take(i, len)?.to_vec()))
        }
        _ => Err(DbError::exec("unknown journal value tag")),
    }
}

fn encode_record(sql: &str, params: &[Value]) -> Vec<u8> {
    let mut out = Vec::with_capacity(16 + sql.len());
    out.push(1u8); // record version tag
    out.extend_from_slice(&(sql.len() as u32).to_le_bytes());
    out.extend_from_slice(sql.as_bytes());
    out.extend_from_slice(&(params.len() as u32).to_le_bytes());
    for p in params {
        encode_value(&mut out, p);
    }
    out
}

fn decode_record(buf: &[u8]) -> Result<JournalEntry> {
    let mut i = 0usize;
    if buf.first() != Some(&1u8) {
        return Err(DbError::exec("unknown journal record version"));
    }
    i += 1;
    let sql_len = u32::from_le_bytes(
        buf.get(i..i + 4)
            .ok_or_else(|| DbError::exec("journal record truncated"))?
            .try_into()
            .unwrap(),
    ) as usize;
    i += 4;
    let sql = String::from_utf8(
        buf.get(i..i + sql_len)
            .ok_or_else(|| DbError::exec("journal record truncated"))?
            .to_vec(),
    )
    .map_err(|_| DbError::exec("journal SQL not UTF-8"))?;
    i += sql_len;
    let n = u32::from_le_bytes(
        buf.get(i..i + 4)
            .ok_or_else(|| DbError::exec("journal record truncated"))?
            .try_into()
            .unwrap(),
    ) as usize;
    i += 4;
    let mut params = Vec::with_capacity(n);
    for _ in 0..n {
        params.push(decode_value(buf, &mut i)?);
    }
    Ok(JournalEntry { sql, params })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> plat::tmp::TempPath {
        plat::tmp::TempPath::new(&format!("sealdb-journal-{name}"), "log")
    }

    #[test]
    fn roundtrip() {
        let path = tmp("rt");
        let mut j = Journal::open(&path, Box::new(PlainCodec), SyncPolicy::Never).unwrap();
        j.append("INSERT INTO t VALUES (?, ?)", &[Value::Integer(1), Value::Text("x".into())])
            .unwrap();
        j.append("DELETE FROM t", &[]).unwrap();
        let entries = j.replay().unwrap();
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].params[1], Value::Text("x".into()));
        assert_eq!(entries[1].sql, "DELETE FROM t");
    }

    #[test]
    fn survives_reopen() {
        let path = tmp("reopen");
        {
            let mut j = Journal::open(&path, Box::new(PlainCodec), SyncPolicy::EveryRecord).unwrap();
            j.append("CREATE TABLE t(a)", &[]).unwrap();
        }
        let mut j = Journal::open(&path, Box::new(PlainCodec), SyncPolicy::Never).unwrap();
        let entries = j.replay().unwrap();
        assert_eq!(entries.len(), 1);
    }

    #[test]
    fn truncate_clears() {
        let path = tmp("trunc");
        let mut j = Journal::open(&path, Box::new(PlainCodec), SyncPolicy::Never).unwrap();
        j.append("X", &[]).unwrap();
        j.truncate().unwrap();
        assert!(j.replay().unwrap().is_empty());
        j.append("Y", &[]).unwrap();
        assert_eq!(j.replay().unwrap().len(), 1);
    }

    #[test]
    fn all_value_types_roundtrip() {
        let path = tmp("vals");
        let mut j = Journal::open(&path, Box::new(PlainCodec), SyncPolicy::Never).unwrap();
        let params = vec![
            Value::Null,
            Value::Integer(-7),
            Value::Real(2.5),
            Value::Text("héllo".into()),
            Value::Blob(vec![0, 255, 3]),
        ];
        j.append("S", &params).unwrap();
        assert_eq!(j.replay().unwrap()[0].params, params);
    }

    #[test]
    fn detects_truncation() {
        let path = tmp("cut");
        {
            let mut j = Journal::open(&path, Box::new(PlainCodec), SyncPolicy::Never).unwrap();
            j.append("INSERT INTO t VALUES (1)", &[]).unwrap();
        }
        // Chop off the tail.
        let data = std::fs::read(&path).unwrap();
        std::fs::write(&path, &data[..data.len() - 3]).unwrap();
        let mut j = Journal::open(&path, Box::new(PlainCodec), SyncPolicy::Never).unwrap();
        assert!(j.replay().is_err());
    }
}

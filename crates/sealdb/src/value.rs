//! Dynamically-typed SQL values with SQLite-style semantics.
//!
//! Values are dynamically typed; column type declarations assign an
//! *affinity* that nudges inserted values, as in SQLite. Comparisons
//! follow SQLite's cross-type ordering (NULL < numbers < TEXT < BLOB)
//! and `NULL` propagates through operators (three-valued logic lives in
//! the expression evaluator).

use std::cmp::Ordering;
use std::fmt;

/// A single SQL value.
#[derive(Clone, Debug)]
pub enum Value {
    /// SQL NULL.
    Null,
    /// 64-bit signed integer.
    Integer(i64),
    /// 64-bit float.
    Real(f64),
    /// UTF-8 string.
    Text(String),
    /// Raw bytes.
    Blob(Vec<u8>),
}

/// Column type affinity, per SQLite's type system.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Affinity {
    /// Prefer integers.
    Integer,
    /// Prefer floats.
    Real,
    /// Prefer text.
    Text,
    /// Store as-is.
    Blob,
    /// Prefer numbers, keep text otherwise.
    Numeric,
}

impl Affinity {
    /// Maps a declared column type name to an affinity (simplified
    /// version of SQLite's rules).
    pub fn from_decl(decl: &str) -> Affinity {
        let up = decl.to_ascii_uppercase();
        if up.contains("INT") {
            Affinity::Integer
        } else if up.contains("CHAR") || up.contains("TEXT") || up.contains("CLOB") {
            Affinity::Text
        } else if up.contains("BLOB") || up.is_empty() {
            Affinity::Blob
        } else if up.contains("REAL") || up.contains("FLOA") || up.contains("DOUB") {
            Affinity::Real
        } else {
            Affinity::Numeric
        }
    }

    /// Applies the affinity to a value being stored.
    pub fn apply(&self, v: Value) -> Value {
        match (self, v) {
            (Affinity::Integer | Affinity::Numeric, Value::Text(s)) => {
                if let Ok(i) = s.trim().parse::<i64>() {
                    Value::Integer(i)
                } else if let Ok(f) = s.trim().parse::<f64>() {
                    Value::Real(f)
                } else {
                    Value::Text(s)
                }
            }
            (Affinity::Integer, Value::Real(f)) if f.fract() == 0.0 && f.abs() < 9e15 => {
                Value::Integer(f as i64)
            }
            (Affinity::Real, Value::Integer(i)) => Value::Real(i as f64),
            (Affinity::Real, Value::Text(s)) => {
                if let Ok(f) = s.trim().parse::<f64>() {
                    Value::Real(f)
                } else {
                    Value::Text(s)
                }
            }
            (Affinity::Text, Value::Integer(i)) => Value::Text(i.to_string()),
            (Affinity::Text, Value::Real(f)) => Value::Text(fmt_real(f)),
            (_, v) => v,
        }
    }
}

fn fmt_real(f: f64) -> String {
    if f.fract() == 0.0 && f.abs() < 1e15 {
        format!("{:.1}", f)
    } else {
        format!("{}", f)
    }
}

impl Value {
    /// Whether this value is NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// SQL truthiness: numbers are true when non-zero; NULL is unknown
    /// (`None`).
    pub fn to_bool(&self) -> Option<bool> {
        match self {
            Value::Null => None,
            Value::Integer(i) => Some(*i != 0),
            Value::Real(f) => Some(*f != 0.0),
            Value::Text(s) => Some(s.trim().parse::<f64>().map(|f| f != 0.0).unwrap_or(false)),
            Value::Blob(_) => Some(false),
        }
    }

    /// Numeric view for arithmetic, if any.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Integer(i) => Some(*i as f64),
            Value::Real(f) => Some(*f),
            Value::Text(s) => s.trim().parse::<f64>().ok(),
            _ => None,
        }
    }

    /// SQL equality: `None` when either side is NULL.
    pub fn sql_eq(&self, other: &Value) -> Option<bool> {
        if self.is_null() || other.is_null() {
            return None;
        }
        Some(self.total_cmp(other) == Ordering::Equal)
    }

    /// SQL ordering comparison: `None` when either side is NULL.
    pub fn sql_cmp(&self, other: &Value) -> Option<Ordering> {
        if self.is_null() || other.is_null() {
            return None;
        }
        Some(self.total_cmp(other))
    }

    /// Total cross-type ordering used for ORDER BY, GROUP BY and
    /// DISTINCT: NULL < numeric < TEXT < BLOB; numerics compare by
    /// value.
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        use Value::*;
        fn class(v: &Value) -> u8 {
            match v {
                Null => 0,
                Integer(_) | Real(_) => 1,
                Text(_) => 2,
                Blob(_) => 3,
            }
        }
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Integer(a), Integer(b)) => a.cmp(b),
            (Real(a), Real(b)) => a.partial_cmp(b).unwrap_or(Ordering::Equal),
            (Integer(a), Real(b)) => (*a as f64).partial_cmp(b).unwrap_or(Ordering::Equal),
            (Real(a), Integer(b)) => a.partial_cmp(&(*b as f64)).unwrap_or(Ordering::Equal),
            (Text(a), Text(b)) => a.cmp(b),
            (Blob(a), Blob(b)) => a.cmp(b),
            (a, b) => class(a).cmp(&class(b)),
        }
    }

    /// A stable key usable for hashing groups and DISTINCT sets.
    pub fn group_key(&self) -> String {
        match self {
            Value::Null => "n".to_string(),
            Value::Integer(i) => format!("i{i}"),
            Value::Real(f) => {
                // Integral reals group with integers, as in SQLite.
                if f.fract() == 0.0 && f.abs() < 9e15 {
                    format!("i{}", *f as i64)
                } else {
                    format!("r{}", f.to_bits())
                }
            }
            Value::Text(s) => format!("t{s}"),
            Value::Blob(b) => {
                let mut k = String::with_capacity(1 + b.len() * 2);
                k.push('b');
                for byte in b {
                    k.push_str(&format!("{byte:02x}"));
                }
                k
            }
        }
    }

    /// Estimated in-memory footprint in bytes (for EPC accounting).
    pub fn size_bytes(&self) -> usize {
        match self {
            Value::Null => 1,
            Value::Integer(_) | Value::Real(_) => 9,
            Value::Text(s) => 13 + s.len(),
            Value::Blob(b) => 13 + b.len(),
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.total_cmp(other) == Ordering::Equal
    }
}

impl fmt::Display for Value {
    /// Renders like the sqlite3 shell: NULL as empty, reals with at
    /// least one decimal, blobs as hex.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => Ok(()),
            Value::Integer(i) => write!(f, "{i}"),
            Value::Real(r) => write!(f, "{}", fmt_real(*r)),
            Value::Text(s) => write!(f, "{s}"),
            Value::Blob(b) => {
                for byte in b {
                    write!(f, "{byte:02x}")?;
                }
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn affinity_from_decl() {
        assert_eq!(Affinity::from_decl("INTEGER"), Affinity::Integer);
        assert_eq!(Affinity::from_decl("int"), Affinity::Integer);
        assert_eq!(Affinity::from_decl("VARCHAR(20)"), Affinity::Text);
        assert_eq!(Affinity::from_decl("TEXT"), Affinity::Text);
        assert_eq!(Affinity::from_decl("BLOB"), Affinity::Blob);
        assert_eq!(Affinity::from_decl("REAL"), Affinity::Real);
        assert_eq!(Affinity::from_decl("DECIMAL"), Affinity::Numeric);
    }

    #[test]
    fn integer_affinity_converts_text() {
        let v = Affinity::Integer.apply(Value::Text(" 42 ".into()));
        assert_eq!(v, Value::Integer(42));
        let v = Affinity::Integer.apply(Value::Text("abc".into()));
        assert_eq!(v, Value::Text("abc".into()));
    }

    #[test]
    fn text_affinity_stringifies() {
        assert_eq!(
            Affinity::Text.apply(Value::Integer(7)),
            Value::Text("7".into())
        );
    }

    #[test]
    fn cross_type_ordering() {
        assert_eq!(Value::Null.total_cmp(&Value::Integer(0)), Ordering::Less);
        assert_eq!(
            Value::Integer(5).total_cmp(&Value::Text("a".into())),
            Ordering::Less
        );
        assert_eq!(
            Value::Text("z".into()).total_cmp(&Value::Blob(vec![0])),
            Ordering::Less
        );
        assert_eq!(
            Value::Integer(2).total_cmp(&Value::Real(2.0)),
            Ordering::Equal
        );
        assert_eq!(
            Value::Integer(2).total_cmp(&Value::Real(2.5)),
            Ordering::Less
        );
    }

    #[test]
    fn null_propagates_in_eq() {
        assert_eq!(Value::Null.sql_eq(&Value::Integer(1)), None);
        assert_eq!(Value::Integer(1).sql_eq(&Value::Integer(1)), Some(true));
        assert_eq!(Value::Integer(1).sql_eq(&Value::Integer(2)), Some(false));
    }

    #[test]
    fn truthiness() {
        assert_eq!(Value::Integer(0).to_bool(), Some(false));
        assert_eq!(Value::Integer(3).to_bool(), Some(true));
        assert_eq!(Value::Null.to_bool(), None);
        assert_eq!(Value::Text("1".into()).to_bool(), Some(true));
        assert_eq!(Value::Text("x".into()).to_bool(), Some(false));
    }

    #[test]
    fn group_keys_distinguish_types() {
        assert_ne!(
            Value::Integer(1).group_key(),
            Value::Text("1".into()).group_key()
        );
        assert_eq!(Value::Real(1.0).group_key(), Value::Integer(1).group_key());
    }

    #[test]
    fn display_matches_sqlite_shell() {
        assert_eq!(Value::Null.to_string(), "");
        assert_eq!(Value::Integer(42).to_string(), "42");
        assert_eq!(Value::Text("hi".into()).to_string(), "hi");
        assert_eq!(Value::Real(1.5).to_string(), "1.5");
        assert_eq!(Value::Real(2.0).to_string(), "2.0");
    }
}

//! The `Database` facade: parse, plan-free execute, journal, recover.

use crate::ast::{Expr, SelectItem, Stmt};
use crate::catalog::Catalog;
use crate::exec::{exec_select, Ctx, Rows};
use crate::journal::{Journal, JournalCodec, SalvageInfo, SyncPolicy};
use crate::parser;
use crate::value::Value;
use crate::view::{backing_column_name, MatView, MatViewSpec, PartitionKey};
use crate::{DbError, Result};

/// Process-wide database metrics.
struct DbMetrics {
    query_ns: libseal_telemetry::Histogram,
    statements: libseal_telemetry::Counter,
    compactions: libseal_telemetry::Counter,
}

fn db_metrics() -> &'static DbMetrics {
    static M: std::sync::OnceLock<DbMetrics> = std::sync::OnceLock::new();
    M.get_or_init(|| DbMetrics {
        query_ns: libseal_telemetry::histogram("sealdb_query_ns"),
        statements: libseal_telemetry::counter("sealdb_statements_total"),
        compactions: libseal_telemetry::counter("sealdb_compactions_total"),
    })
}

/// Result of executing one statement.
#[derive(Debug, Clone, Default)]
pub struct QueryResult {
    /// Output column names (SELECT only).
    pub columns: Vec<String>,
    /// Result rows (SELECT only).
    pub rows: Vec<Vec<Value>>,
    /// Rows inserted/updated/deleted (DML only).
    pub rows_affected: usize,
}

impl QueryResult {
    /// Whether the result set is empty.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// First value of the first row, if any.
    pub fn scalar(&self) -> Option<&Value> {
        self.rows.first().and_then(|r| r.first())
    }
}

/// An embedded relational database (the workspace's SQLite stand-in).
pub struct Database {
    catalog: Catalog,
    journal: Option<Journal>,
    /// Set while replaying so recovered statements are not re-journaled.
    replaying: bool,
    /// Use the optimizing executor (hash joins, index probes, subquery
    /// memoization). On by default; turned off to get the reference
    /// nested-loop executor for equivalence testing and benchmarks.
    planner: bool,
    /// Torn-tail salvage performed while replaying the journal on
    /// [`Database::open`], if any.
    salvage: Option<SalvageInfo>,
    /// Registered delta-maintained materialized views.
    matviews: Vec<MatView>,
}

impl Default for Database {
    fn default() -> Self {
        Self::new()
    }
}

impl Database {
    /// Creates an in-memory database.
    pub fn new() -> Database {
        Database {
            catalog: Catalog::new(),
            journal: None,
            replaying: false,
            planner: true,
            salvage: None,
            matviews: Vec::new(),
        }
    }

    /// Enables or disables the optimizing executor. With it off every
    /// query runs on the naive nested-loop paths; results must be
    /// identical either way.
    pub fn set_planner_enabled(&mut self, enabled: bool) {
        self.planner = enabled;
    }

    /// Whether the optimizing executor is enabled.
    pub fn planner_enabled(&self) -> bool {
        self.planner
    }

    /// Opens a database persisted at `path`, replaying any existing
    /// journal.
    ///
    /// # Errors
    ///
    /// Fails on I/O errors or if the journal is corrupt.
    pub fn open(
        path: impl AsRef<std::path::Path>,
        codec: Box<dyn JournalCodec>,
        sync: SyncPolicy,
    ) -> Result<Database> {
        let mut journal = Journal::open(path, codec, sync)?;
        let entries = journal.replay()?;
        let mut db = Database::new();
        db.salvage = journal.last_salvage();
        db.replaying = true;
        for e in entries {
            db.execute_with(&e.sql, &e.params)?;
        }
        db.replaying = false;
        db.journal = Some(journal);
        Ok(db)
    }

    /// The torn-tail salvage performed while opening this database, if
    /// recovery had to drop a torn final frame. Callers (the audit
    /// layer) reconcile the lost tail against their rollback counter.
    pub fn salvage_report(&self) -> Option<SalvageInfo> {
        self.salvage
    }

    /// Executes one or more `;`-separated statements without
    /// parameters; returns the result of the last one.
    ///
    /// # Errors
    ///
    /// Parse, schema and execution errors.
    pub fn execute(&mut self, sql: &str) -> Result<QueryResult> {
        let stmts = parser::parse(sql)?;
        if stmts.is_empty() {
            return Err(DbError::parse("empty statement"));
        }
        let mut last = QueryResult::default();
        for stmt in &stmts {
            last = self.execute_stmt(stmt, &[], None)?;
        }
        Ok(last)
    }

    /// Executes a single statement with bound `?` parameters.
    ///
    /// # Errors
    ///
    /// Parse, schema and execution errors.
    pub fn execute_with(&mut self, sql: &str, params: &[Value]) -> Result<QueryResult> {
        let stmt = parser::parse_one(sql)?;
        self.execute_stmt(&stmt, params, Some(sql))
    }

    /// Runs a read-only query (convenience wrapper).
    ///
    /// # Errors
    ///
    /// As [`Database::execute_with`]; also fails if `sql` is not a
    /// SELECT.
    pub fn query(&self, sql: &str, params: &[Value]) -> Result<QueryResult> {
        let start = std::time::Instant::now();
        let stmt = parser::parse_one(sql)?;
        let Stmt::Select(sel) = stmt else {
            return Err(DbError::exec("query() requires a SELECT statement"));
        };
        let ctx = Ctx::with_planner(&self.catalog, params, self.planner);
        let rows = exec_select(&ctx, &sel, None)?;
        let m = db_metrics();
        m.statements.inc();
        m.query_ns.record_duration(start.elapsed());
        Ok(rows_to_result(rows))
    }

    fn execute_stmt(
        &mut self,
        stmt: &Stmt,
        params: &[Value],
        journal_sql: Option<&str>,
    ) -> Result<QueryResult> {
        db_metrics().statements.inc();
        let result = match stmt {
            Stmt::Select(sel) => {
                let ctx = Ctx::with_planner(&self.catalog, params, self.planner);
                let rows = exec_select(&ctx, sel, None)?;
                return Ok(rows_to_result(rows)); // No journaling for reads.
            }
            Stmt::CreateTable {
                name,
                columns,
                if_not_exists,
            } => {
                self.catalog.create_table(name, columns, *if_not_exists)?;
                QueryResult::default()
            }
            Stmt::CreateView {
                name,
                query,
                if_not_exists,
            } => {
                self.catalog
                    .create_view(name, query.clone(), *if_not_exists)?;
                QueryResult::default()
            }
            Stmt::DropTable { name, if_exists } => {
                self.catalog.drop_table(name, *if_exists)?;
                QueryResult::default()
            }
            Stmt::DropView { name, if_exists } => {
                self.catalog.drop_view(name, *if_exists)?;
                QueryResult::default()
            }
            Stmt::CreateIndex {
                name,
                table,
                column,
                if_not_exists,
            } => {
                self.catalog
                    .create_index(name, table, column, *if_not_exists)?;
                QueryResult::default()
            }
            Stmt::DropIndex { name, if_exists } => {
                self.catalog.drop_index(name, *if_exists)?;
                QueryResult::default()
            }
            Stmt::Insert {
                table,
                columns,
                rows,
            } => self.exec_insert(table, columns.as_deref(), rows, params)?,
            Stmt::Delete { table, filter } => self.exec_delete(table, filter.as_ref(), params)?,
            Stmt::Update {
                table,
                sets,
                filter,
            } => self.exec_update(table, sets, filter.as_ref(), params)?,
        };
        if !self.replaying && self.journal.is_some() {
            // Journal the original text when we have it; otherwise a
            // canonical re-rendering of the statement.
            let rendered;
            let sql = match journal_sql {
                Some(s) => s,
                None => {
                    rendered = render_stmt(stmt);
                    &rendered
                }
            };
            if let Some(j) = self.journal.as_mut() {
                j.append(sql, params)?;
            }
        }
        Ok(result)
    }

    fn exec_insert(
        &mut self,
        table: &str,
        columns: Option<&[String]>,
        rows: &[Vec<Expr>],
        params: &[Value],
    ) -> Result<QueryResult> {
        // Evaluate all rows against the current catalog first.
        let evaluated: Vec<Vec<Value>> = {
            let ctx = Ctx::with_planner(&self.catalog, params, self.planner);
            let mut out = Vec::with_capacity(rows.len());
            for row in rows {
                let mut vals = Vec::with_capacity(row.len());
                for e in row {
                    vals.push(eval_standalone(&ctx, e)?);
                }
                out.push(vals);
            }
            out
        };
        let t = self
            .catalog
            .table_mut(table)
            .ok_or_else(|| DbError::schema(format!("no such table: {table}")))?;
        let col_indices: Vec<usize> = match columns {
            None => (0..t.columns.len()).collect(),
            Some(names) => {
                let mut idx = Vec::with_capacity(names.len());
                for n in names {
                    idx.push(t.column_index(n).ok_or_else(|| {
                        DbError::schema(format!("table {table} has no column {n}"))
                    })?);
                }
                idx
            }
        };
        // Clone applied rows only when a materialized view tracks
        // inserts into this table.
        let tracked = self
            .matviews
            .iter()
            .any(|v| v.spec.sources.iter().any(|s| s.table == *table));
        let mut inserted: Vec<Vec<Value>> = Vec::new();
        let mut affected = 0;
        for vals in evaluated {
            if vals.len() != col_indices.len() {
                return Err(DbError::exec(format!(
                    "{} values for {} columns",
                    vals.len(),
                    col_indices.len()
                )));
            }
            let mut row = vec![Value::Null; t.columns.len()];
            for (v, &ci) in vals.into_iter().zip(col_indices.iter()) {
                row[ci] = t.columns[ci].affinity.apply(v);
            }
            if tracked {
                inserted.push(row.clone());
            }
            t.rows.push(row);
            t.index_appended_row();
            affected += 1;
        }
        if tracked {
            self.note_inserts(table, &inserted)?;
        }
        Ok(QueryResult {
            rows_affected: affected,
            ..Default::default()
        })
    }

    fn exec_delete(
        &mut self,
        table: &str,
        filter: Option<&Expr>,
        params: &[Value],
    ) -> Result<QueryResult> {
        let keep: Vec<bool> = {
            let t = self
                .catalog
                .table(table)
                .ok_or_else(|| DbError::schema(format!("no such table: {table}")))?;
            let cols: Vec<crate::exec::ColMeta> = t
                .columns
                .iter()
                .map(|c| crate::exec::ColMeta {
                    table: Some(t.name.clone()),
                    name: c.name.clone(),
                })
                .collect();
            let ctx = Ctx::with_planner(&self.catalog, params, self.planner);
            let mut keep = Vec::with_capacity(t.rows.len());
            for row in &t.rows {
                let matched = match filter {
                    None => true,
                    Some(f) => {
                        let env = crate::exec::env_for(&cols, row);
                        crate::exec::eval(&ctx, f, &env, None)?.to_bool() == Some(true)
                    }
                };
                keep.push(!matched);
            }
            keep
        };
        let t = self.catalog.table_mut(table).expect("checked above");
        let before = t.rows.len();
        let mut it = keep.iter();
        t.rows
            .retain(|_| *it.next().expect("keep mask matches rows"));
        let removed = before - t.rows.len();
        if removed > 0 {
            // Deletion shifts row positions; rebuild.
            t.rebuild_indexes();
            self.note_table_mutation(table);
        }
        Ok(QueryResult {
            rows_affected: removed,
            ..Default::default()
        })
    }

    fn exec_update(
        &mut self,
        table: &str,
        sets: &[(String, Expr)],
        filter: Option<&Expr>,
        params: &[Value],
    ) -> Result<QueryResult> {
        let updates: Vec<Option<Vec<(usize, Value)>>> = {
            let t = self
                .catalog
                .table(table)
                .ok_or_else(|| DbError::schema(format!("no such table: {table}")))?;
            let cols: Vec<crate::exec::ColMeta> = t
                .columns
                .iter()
                .map(|c| crate::exec::ColMeta {
                    table: Some(t.name.clone()),
                    name: c.name.clone(),
                })
                .collect();
            let set_indices: Vec<usize> = sets
                .iter()
                .map(|(n, _)| {
                    t.column_index(n)
                        .ok_or_else(|| DbError::schema(format!("table {table} has no column {n}")))
                })
                .collect::<Result<_>>()?;
            let ctx = Ctx::with_planner(&self.catalog, params, self.planner);
            let mut out = Vec::with_capacity(t.rows.len());
            for row in &t.rows {
                let env = crate::exec::env_for(&cols, row);
                let matched = match filter {
                    None => true,
                    Some(f) => crate::exec::eval(&ctx, f, &env, None)?.to_bool() == Some(true),
                };
                if matched {
                    let mut assignments = Vec::with_capacity(sets.len());
                    for ((_, e), &ci) in sets.iter().zip(set_indices.iter()) {
                        let v = crate::exec::eval(&ctx, e, &env, None)?;
                        assignments.push((ci, v));
                    }
                    out.push(Some(assignments));
                } else {
                    out.push(None);
                }
            }
            out
        };
        let t = self.catalog.table_mut(table).expect("checked above");
        let mut affected = 0;
        for (row, upd) in t.rows.iter_mut().zip(updates) {
            if let Some(assignments) = upd {
                for (ci, v) in assignments {
                    row[ci] = t.columns[ci].affinity.apply(v);
                }
                affected += 1;
            }
        }
        if affected > 0 {
            t.rebuild_indexes();
            self.note_table_mutation(table);
        }
        Ok(QueryResult {
            rows_affected: affected,
            ..Default::default()
        })
    }

    /// Marks every view sourcing `table` fully dirty (DELETE/UPDATE
    /// can invalidate arbitrary partitions, so the next refresh
    /// recomputes from scratch).
    fn note_table_mutation(&mut self, table: &str) {
        for v in &mut self.matviews {
            if v.spec.sources.iter().any(|s| s.table == table) {
                v.full_dirty = true;
                v.dirty.clear();
            }
        }
    }

    /// Applies per-source dirty-tracking rules for rows just inserted
    /// into `table`.
    fn note_inserts(&mut self, table: &str, rows: &[Vec<Value>]) -> Result<()> {
        // Detach the view list so rescan lookups can borrow the
        // catalog; restored before returning.
        let mut views = std::mem::take(&mut self.matviews);
        let res = self.note_inserts_inner(table, rows, &mut views);
        self.matviews = views;
        res
    }

    fn note_inserts_inner(
        &self,
        table: &str,
        rows: &[Vec<Value>],
        views: &mut [MatView],
    ) -> Result<()> {
        let col_index = |name: &str| -> Result<usize> {
            self.catalog
                .table(table)
                .and_then(|t| t.column_index(name))
                .ok_or_else(|| {
                    DbError::schema(format!("matview source {table} has no column {name}"))
                })
        };
        for v in views.iter_mut() {
            for rule in v.spec.sources.iter().filter(|s| s.table == table) {
                if let Some(pcol) = &rule.partition_col {
                    if !v.full_dirty {
                        let ci = col_index(pcol)?;
                        for row in rows {
                            v.dirty.insert(PartitionKey(row[ci].clone()));
                        }
                    }
                }
                if let Some(rescan) = &rule.rescan {
                    let stmt = parser::parse_one(&rescan.sql)?;
                    let Stmt::Select(sel) = stmt else {
                        return Err(DbError::exec("matview rescan requires a SELECT"));
                    };
                    let bind_idx: Vec<usize> = rescan
                        .bind_cols
                        .iter()
                        .map(|c| col_index(c))
                        .collect::<Result<_>>()?;
                    for row in rows {
                        if v.full_dirty {
                            break;
                        }
                        let binds: Vec<Value> = bind_idx.iter().map(|&i| row[i].clone()).collect();
                        let ctx = Ctx::with_planner(&self.catalog, &binds, self.planner);
                        let hits = exec_select(&ctx, &sel, None)?;
                        for hit in hits.data {
                            if let Some(p) = hit.first() {
                                v.dirty.insert(PartitionKey(p.clone()));
                            }
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Registers a delta-maintained materialized view and seeds its
    /// backing table from a full evaluation of the view query.
    ///
    /// The backing table definition (and an index on the partition
    /// column) is journaled as ordinary DDL so recovery re-creates it;
    /// the derived rows are never journaled — re-registering after a
    /// reopen reseeds them from the recovered base tables. Registering
    /// a name that is already registered replaces the definition and
    /// reseeds.
    ///
    /// # Errors
    ///
    /// Parse/schema errors in the view queries, or I/O errors while
    /// journaling the definition.
    pub fn register_matview(&mut self, spec: MatViewSpec) -> Result<()> {
        plat::failpoint::check("sealdb::view::journal").map_err(DbError::io)?;
        // Full evaluation: yields the output column shape and the
        // initial contents in one pass.
        let seed = self.query(&spec.full_sql, &[])?;
        if spec.partition_col >= seed.columns.len() {
            return Err(DbError::schema(format!(
                "matview {}: partition column {} out of range ({} output columns)",
                spec.name,
                spec.partition_col,
                seed.columns.len()
            )));
        }
        let mut cols: Vec<String> = Vec::with_capacity(seed.columns.len());
        for raw in &seed.columns {
            let name = backing_column_name(raw, &cols);
            cols.push(name);
        }
        let create = format!(
            "CREATE TABLE IF NOT EXISTS {}({})",
            spec.name,
            cols.join(", ")
        );
        self.execute_with(&create, &[])?;
        let index = format!(
            "CREATE INDEX IF NOT EXISTS mvix_{}_part ON {}({})",
            spec.name, spec.name, cols[spec.partition_col]
        );
        self.execute_with(&index, &[])?;
        // Seed directly: derived rows bypass the journal.
        let t = self
            .catalog
            .table_mut(&spec.name)
            .ok_or_else(|| DbError::schema(format!("matview {} backing table lost", spec.name)))?;
        t.rows = seed.rows;
        t.rebuild_indexes();
        self.matviews.retain(|v| v.spec.name != spec.name);
        let mut view = MatView::new(spec);
        view.full_dirty = false;
        self.matviews.push(view);
        Ok(())
    }

    /// Re-evaluates every dirty partition of every registered view
    /// (and fully rebuilds views marked wholly dirty). Returns the
    /// number of partitions refreshed, counting a full rebuild as one.
    ///
    /// # Errors
    ///
    /// Query errors from the view's delta/full SQL; the dirty state of
    /// a view is consumed only once its refresh succeeds.
    pub fn refresh_matviews(&mut self) -> Result<usize> {
        if self.matviews.iter().all(|v| v.lag() == 0) {
            return Ok(0);
        }
        plat::failpoint::check("sealdb::view::apply_delta").map_err(DbError::io)?;
        let mut views = std::mem::take(&mut self.matviews);
        let res = self.refresh_matviews_inner(&mut views);
        self.matviews = views;
        res
    }

    fn refresh_matviews_inner(&mut self, views: &mut [MatView]) -> Result<usize> {
        let mut refreshed = 0;
        for v in views.iter_mut() {
            if v.lag() == 0 {
                continue;
            }
            if v.full_dirty {
                let fresh = self.query(&v.spec.full_sql, &[])?;
                let t = self.catalog.table_mut(&v.spec.name).ok_or_else(|| {
                    DbError::schema(format!("matview {} backing table lost", v.spec.name))
                })?;
                t.rows = fresh.rows;
                t.rebuild_indexes();
                v.full_dirty = false;
                v.dirty.clear();
                refreshed += 1;
                continue;
            }
            let parts = std::mem::take(&mut v.dirty);
            let stmt = parser::parse_one(&v.spec.delta_sql)?;
            let Stmt::Select(sel) = stmt else {
                return Err(DbError::exec("matview delta requires a SELECT"));
            };
            let width = self
                .catalog
                .table(&v.spec.name)
                .map(|t| t.columns.len())
                .unwrap_or(0);
            let mut fresh: Vec<Vec<Value>> = Vec::new();
            for p in &parts {
                let bind = [p.0.clone()];
                let ctx = Ctx::with_planner(&self.catalog, &bind, self.planner);
                let rows = exec_select(&ctx, &sel, None)?;
                for row in rows.data {
                    if row.len() != width {
                        return Err(DbError::exec(format!(
                            "matview {}: delta row width {} != backing width {width}",
                            v.spec.name,
                            row.len()
                        )));
                    }
                    fresh.push(row);
                }
            }
            let pcol = v.spec.partition_col;
            let t = self.catalog.table_mut(&v.spec.name).ok_or_else(|| {
                DbError::schema(format!("matview {} backing table lost", v.spec.name))
            })?;
            t.rows
                .retain(|r| !parts.contains(&PartitionKey(r[pcol].clone())));
            t.rows.extend(fresh);
            t.rebuild_indexes();
            refreshed += parts.len();
        }
        Ok(refreshed)
    }

    /// Pending refresh work across all registered views: dirty
    /// partitions plus one unit per pending full rebuild.
    pub fn matview_lag(&self) -> usize {
        self.matviews.iter().map(|v| v.lag()).sum()
    }

    /// Names of registered materialized views (backing tables).
    pub fn matview_names(&self) -> Vec<&str> {
        self.matviews.iter().map(|v| v.spec.name.as_str()).collect()
    }

    /// Forces journalled records to stable storage (no-op in memory).
    ///
    /// # Errors
    ///
    /// I/O errors from the underlying fsync.
    pub fn sync_journal(&mut self) -> Result<()> {
        if let Some(j) = self.journal.as_mut() {
            j.sync_now()?;
        }
        Ok(())
    }

    /// Compacts persistent storage: atomically replaces the journal
    /// with a snapshot (schema + data dump).
    ///
    /// The snapshot is written to a temp file and renamed over the
    /// journal ([`Journal::rewrite`]), so a crash at any point during
    /// compaction leaves either the complete old journal or the
    /// complete snapshot — never an empty or partial log.
    ///
    /// # Errors
    ///
    /// I/O errors while rewriting the journal; the live journal is
    /// untouched on error.
    pub fn compact(&mut self) -> Result<()> {
        let Some(journal) = self.journal.as_mut() else {
            return Ok(());
        };
        // Matview backing rows are derived data: dump their schema so
        // recovery keeps the definition, but skip the rows — the next
        // registration reseeds them from the recovered base tables.
        let backing: std::collections::HashSet<&str> =
            self.matviews.iter().map(|v| v.spec.name.as_str()).collect();
        let mut records: Vec<(String, Vec<Value>)> = Vec::new();
        for t in self.catalog.tables_sorted() {
            let cols: Vec<String> = t
                .columns
                .iter()
                .map(|c| {
                    let mut s = c.name.clone();
                    if !c.decl_type.is_empty() {
                        s.push(' ');
                        s.push_str(&c.decl_type);
                    }
                    if c.primary_key {
                        s.push_str(" PRIMARY KEY");
                    }
                    s
                })
                .collect();
            records.push((
                format!("CREATE TABLE {}({})", t.name, cols.join(", ")),
                vec![],
            ));
            if backing.contains(t.name.as_str()) {
                for (ix_name, col_name) in t.indexes_sorted() {
                    records.push((
                        format!("CREATE INDEX {ix_name} ON {}({col_name})", t.name),
                        vec![],
                    ));
                }
                continue;
            }
            for row in &t.rows {
                let placeholders = vec!["?"; row.len()].join(", ");
                records.push((
                    format!("INSERT INTO {} VALUES ({placeholders})", t.name),
                    row.clone(),
                ));
            }
            for (ix_name, col_name) in t.indexes_sorted() {
                records.push((
                    format!("CREATE INDEX {ix_name} ON {}({col_name})", t.name),
                    vec![],
                ));
            }
        }
        for (name, query) in self.catalog.views_sorted() {
            // Views are re-created from their stored AST via a dump of
            // the original text; regenerate a canonical form.
            records.push((
                format!("CREATE VIEW {name} AS {}", render_select(query)),
                vec![],
            ));
        }
        journal.rewrite(&records)?;
        db_metrics().compactions.inc();
        Ok(())
    }

    /// Approximate size of all table data in bytes.
    pub fn size_bytes(&self) -> usize {
        self.catalog.size_bytes()
    }

    /// Size of the on-disk journal in bytes (0 for in-memory).
    pub fn journal_size_bytes(&self) -> u64 {
        self.journal.as_ref().map(|j| j.size_bytes()).unwrap_or(0)
    }

    /// Read access to the catalog (tests and tooling).
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }
}

fn rows_to_result(rows: Rows) -> QueryResult {
    QueryResult {
        columns: rows.cols.into_iter().map(|c| c.name).collect(),
        rows: rows.data,
        rows_affected: 0,
    }
}

fn eval_standalone(ctx: &Ctx<'_>, e: &Expr) -> Result<Value> {
    let cols: [crate::exec::ColMeta; 0] = [];
    let row: [Value; 0] = [];
    let env = crate::exec::env_for(&cols, &row);
    crate::exec::eval(ctx, e, &env, None)
}

/// Renders any statement back to canonical SQL (for the journal).
pub fn render_stmt(stmt: &Stmt) -> String {
    match stmt {
        Stmt::Select(s) => render_select(s),
        Stmt::CreateTable {
            name,
            columns,
            if_not_exists,
        } => {
            let cols: Vec<String> = columns
                .iter()
                .map(|c| {
                    let mut s = c.name.clone();
                    if !c.decl_type.is_empty() {
                        s.push(' ');
                        s.push_str(&c.decl_type);
                    }
                    if c.primary_key {
                        s.push_str(" PRIMARY KEY");
                    }
                    s
                })
                .collect();
            format!(
                "CREATE TABLE {}{}({})",
                if *if_not_exists { "IF NOT EXISTS " } else { "" },
                name,
                cols.join(", ")
            )
        }
        Stmt::CreateView {
            name,
            query,
            if_not_exists,
        } => format!(
            "CREATE VIEW {}{} AS {}",
            if *if_not_exists { "IF NOT EXISTS " } else { "" },
            name,
            render_select(query)
        ),
        Stmt::CreateIndex {
            name,
            table,
            column,
            if_not_exists,
        } => format!(
            "CREATE INDEX {}{} ON {}({})",
            if *if_not_exists { "IF NOT EXISTS " } else { "" },
            name,
            table,
            column
        ),
        Stmt::DropIndex { name, if_exists } => format!(
            "DROP INDEX {}{}",
            if *if_exists { "IF EXISTS " } else { "" },
            name
        ),
        Stmt::DropTable { name, if_exists } => format!(
            "DROP TABLE {}{}",
            if *if_exists { "IF EXISTS " } else { "" },
            name
        ),
        Stmt::DropView { name, if_exists } => format!(
            "DROP VIEW {}{}",
            if *if_exists { "IF EXISTS " } else { "" },
            name
        ),
        Stmt::Insert {
            table,
            columns,
            rows,
        } => {
            let cols = match columns {
                Some(c) => format!("({})", c.join(", ")),
                None => String::new(),
            };
            let rendered: Vec<String> = rows
                .iter()
                .map(|r| {
                    let vals: Vec<String> = r.iter().map(render_expr).collect();
                    format!("({})", vals.join(", "))
                })
                .collect();
            format!("INSERT INTO {table}{cols} VALUES {}", rendered.join(", "))
        }
        Stmt::Delete { table, filter } => match filter {
            Some(f) => format!("DELETE FROM {table} WHERE {}", render_expr(f)),
            None => format!("DELETE FROM {table}"),
        },
        Stmt::Update {
            table,
            sets,
            filter,
        } => {
            let assigns: Vec<String> = sets
                .iter()
                .map(|(c, e)| format!("{c} = {}", render_expr(e)))
                .collect();
            let mut s = format!("UPDATE {table} SET {}", assigns.join(", "));
            if let Some(f) = filter {
                s.push_str(&format!(" WHERE {}", render_expr(f)));
            }
            s
        }
    }
}

/// Renders a SELECT AST back to SQL (round-trip for view snapshots).
pub fn render_select(sel: &crate::ast::Select) -> String {
    let mut s = String::from("SELECT ");
    if sel.distinct {
        s.push_str("DISTINCT ");
    }
    let projs: Vec<String> = sel
        .projections
        .iter()
        .map(|p| match p {
            SelectItem::Star => "*".to_string(),
            SelectItem::QualifiedStar(t) => format!("{t}.*"),
            SelectItem::Expr { expr, alias } => {
                let mut e = render_expr(expr);
                if let Some(a) = alias {
                    e.push_str(&format!(" AS {a}"));
                }
                e
            }
        })
        .collect();
    s.push_str(&projs.join(", "));
    if let Some(from) = &sel.from {
        s.push_str(" FROM ");
        s.push_str(&render_table_ref(&from.first));
        for j in &from.joins {
            match j.kind {
                crate::ast::JoinKind::Natural => {
                    s.push_str(" NATURAL JOIN ");
                    s.push_str(&render_table_ref(&j.table));
                }
                crate::ast::JoinKind::Left => {
                    s.push_str(" LEFT JOIN ");
                    s.push_str(&render_table_ref(&j.table));
                    if let Some(on) = &j.on {
                        s.push_str(" ON ");
                        s.push_str(&render_expr(on));
                    }
                }
                crate::ast::JoinKind::Inner => {
                    s.push_str(" JOIN ");
                    s.push_str(&render_table_ref(&j.table));
                    if let Some(on) = &j.on {
                        s.push_str(" ON ");
                        s.push_str(&render_expr(on));
                    }
                }
            }
        }
    }
    if let Some(f) = &sel.filter {
        s.push_str(" WHERE ");
        s.push_str(&render_expr(f));
    }
    if !sel.group_by.is_empty() {
        s.push_str(" GROUP BY ");
        let gs: Vec<String> = sel.group_by.iter().map(render_expr).collect();
        s.push_str(&gs.join(", "));
    }
    if let Some(h) = &sel.having {
        s.push_str(" HAVING ");
        s.push_str(&render_expr(h));
    }
    if !sel.order_by.is_empty() {
        s.push_str(" ORDER BY ");
        let os: Vec<String> = sel
            .order_by
            .iter()
            .map(|o| {
                let mut e = render_expr(&o.expr);
                if o.desc {
                    e.push_str(" DESC");
                }
                e
            })
            .collect();
        s.push_str(&os.join(", "));
    }
    if let Some(l) = &sel.limit {
        s.push_str(" LIMIT ");
        s.push_str(&render_expr(l));
    }
    if let Some(o) = &sel.offset {
        s.push_str(" OFFSET ");
        s.push_str(&render_expr(o));
    }
    s
}

fn render_table_ref(t: &crate::ast::TableRef) -> String {
    match t {
        crate::ast::TableRef::Named { name, alias } => match alias {
            Some(a) => format!("{name} {a}"),
            None => name.clone(),
        },
        crate::ast::TableRef::Subquery { query, alias } => {
            let base = format!("({})", render_select(query));
            match alias {
                Some(a) => format!("{base} {a}"),
                None => base,
            }
        }
    }
}

fn render_expr(e: &Expr) -> String {
    use crate::ast::{BinOp, UnOp};
    match e {
        Expr::Literal(Value::Text(s)) => format!("'{}'", s.replace('\'', "''")),
        Expr::Literal(v) if v.is_null() => "NULL".to_string(),
        Expr::Literal(v) => v.to_string(),
        Expr::Param(i) => format!("?{}", i + 1),
        Expr::Column { table, name } => match table {
            Some(t) => format!("{t}.{name}"),
            None => name.clone(),
        },
        Expr::Unary { op, expr } => match op {
            UnOp::Neg => format!("-({})", render_expr(expr)),
            UnOp::Not => format!("NOT ({})", render_expr(expr)),
        },
        Expr::Binary { op, left, right } => {
            let o = match op {
                BinOp::Eq => "=",
                BinOp::Ne => "!=",
                BinOp::Lt => "<",
                BinOp::Le => "<=",
                BinOp::Gt => ">",
                BinOp::Ge => ">=",
                BinOp::And => "AND",
                BinOp::Or => "OR",
                BinOp::Add => "+",
                BinOp::Sub => "-",
                BinOp::Mul => "*",
                BinOp::Div => "/",
                BinOp::Rem => "%",
                BinOp::Concat => "||",
            };
            format!("({} {o} {})", render_expr(left), render_expr(right))
        }
        Expr::Function {
            name,
            args,
            star,
            distinct,
        } => {
            if *star {
                format!("{name}(*)")
            } else {
                let a: Vec<String> = args.iter().map(render_expr).collect();
                format!(
                    "{name}({}{})",
                    if *distinct { "DISTINCT " } else { "" },
                    a.join(", ")
                )
            }
        }
        Expr::IsNull { expr, negated } => format!(
            "({} IS {}NULL)",
            render_expr(expr),
            if *negated { "NOT " } else { "" }
        ),
        Expr::InList {
            expr,
            list,
            negated,
        } => {
            let items: Vec<String> = list.iter().map(render_expr).collect();
            format!(
                "({} {}IN ({}))",
                render_expr(expr),
                if *negated { "NOT " } else { "" },
                items.join(", ")
            )
        }
        Expr::InSubquery {
            expr,
            query,
            negated,
        } => format!(
            "({} {}IN ({}))",
            render_expr(expr),
            if *negated { "NOT " } else { "" },
            render_select(query)
        ),
        Expr::Exists { query, negated } => format!(
            "({}EXISTS ({}))",
            if *negated { "NOT " } else { "" },
            render_select(query)
        ),
        Expr::Subquery(q) => format!("({})", render_select(q)),
        Expr::Between {
            expr,
            low,
            high,
            negated,
        } => format!(
            "({} {}BETWEEN {} AND {})",
            render_expr(expr),
            if *negated { "NOT " } else { "" },
            render_expr(low),
            render_expr(high)
        ),
        Expr::Like {
            expr,
            pattern,
            negated,
        } => format!(
            "({} {}LIKE {})",
            render_expr(expr),
            if *negated { "NOT " } else { "" },
            render_expr(pattern)
        ),
        Expr::Case {
            operand,
            branches,
            else_expr,
        } => {
            let mut s = String::from("CASE");
            if let Some(o) = operand {
                s.push(' ');
                s.push_str(&render_expr(o));
            }
            for (w, t) in branches {
                s.push_str(&format!(" WHEN {} THEN {}", render_expr(w), render_expr(t)));
            }
            if let Some(e) = else_expr {
                s.push_str(&format!(" ELSE {}", render_expr(e)));
            }
            s.push_str(" END");
            s
        }
    }
}
